/**
 * @file
 * Unit tests for the common subsystem: angles, RNG, matrices, stats,
 * env helpers, the thread pool and table formatting.
 */

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/matrix.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "common/types.hh"

namespace triq
{
namespace
{

TEST(Angles, WrapAngle)
{
    EXPECT_NEAR(wrapAngle(0.0), 0.0, 1e-12);
    EXPECT_NEAR(wrapAngle(kPi), kPi, 1e-12);
    EXPECT_NEAR(wrapAngle(-kPi), kPi, 1e-12); // (-pi, pi] convention.
    EXPECT_NEAR(wrapAngle(3 * kPi), kPi, 1e-12);
    EXPECT_NEAR(wrapAngle(2 * kPi + 0.5), 0.5, 1e-12);
    EXPECT_NEAR(wrapAngle(-2 * kPi - 0.5), -0.5, 1e-12);
}

TEST(Angles, ZeroAndSame)
{
    EXPECT_TRUE(isZeroAngle(4 * kPi));
    EXPECT_FALSE(isZeroAngle(0.1));
    EXPECT_TRUE(sameAngle(0.25, 0.25 + 2 * kPi));
    EXPECT_FALSE(sameAngle(0.25, -0.25));
}

TEST(Rng, DeterministicAndSeedSensitive)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(42);
    for (int i = 0; i < 100; ++i)
        differs = differs || a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, StringSeeds)
{
    Rng a("ibmq14/day1"), b("ibmq14/day1"), c("ibmq14/day2");
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        int k = rng.uniformInt(13);
        EXPECT_GE(k, 0);
        EXPECT_LT(k, 13);
    }
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    RunningStats st;
    for (int i = 0; i < 50000; ++i)
        st.push(rng.normal());
    EXPECT_NEAR(st.mean(), 0.0, 0.02);
    EXPECT_NEAR(st.stddev(), 1.0, 0.02);
}

TEST(Rng, LogNormalMedian)
{
    Rng rng(13);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(rng.logNormal(0.05, 0.5));
    // Median of the distribution equals the median parameter.
    EXPECT_NEAR(quantile(xs, 0.5), 0.05, 0.003);
    for (double x : xs)
        EXPECT_GT(x, 0.0);
}

TEST(Rng, ForkIndependentOfOrder)
{
    Rng base(99);
    Rng f1 = base.fork(1);
    Rng f2 = base.fork(2);
    Rng base2(99);
    Rng f2b = base2.fork(2);
    EXPECT_EQ(f2.next(), f2b.next());
    EXPECT_NE(f1.next(), f2.next());
}

TEST(Rng, BernoulliEdges)
{
    Rng rng(3);
    for (int i = 0; i < 10; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Matrix, IdentityAndMultiply)
{
    Matrix i2 = Matrix::identity(2);
    Matrix x{{0, 1}, {1, 0}};
    EXPECT_TRUE((x * i2).approxEqual(x));
    EXPECT_TRUE((x * x).approxEqual(i2));
}

TEST(Matrix, KronDimensions)
{
    Matrix a = Matrix::identity(2);
    Matrix b(3, 3);
    Matrix k = a.kron(b);
    EXPECT_EQ(k.rows(), 6);
    EXPECT_EQ(k.cols(), 6);
}

TEST(Matrix, KronValues)
{
    Matrix x{{0, 1}, {1, 0}};
    Matrix z{{1, 0}, {0, -1}};
    Matrix k = x.kron(z);
    // (X kron Z)[0][2] = x[0][1]*z[0][0] = 1.
    EXPECT_EQ(k(0, 2), Cplx(1, 0));
    EXPECT_EQ(k(1, 3), Cplx(-1, 0));
    EXPECT_EQ(k(2, 0), Cplx(1, 0));
}

TEST(Matrix, DaggerAndUnitary)
{
    Cplx i1(0, 1);
    double s = 1 / std::sqrt(2.0);
    Matrix h{{s, s}, {s, -s}};
    EXPECT_TRUE(h.isUnitary());
    Matrix y{{0, -i1}, {i1, 0}};
    EXPECT_TRUE(y.isUnitary());
    EXPECT_TRUE(y.dagger().approxEqual(y)); // Y is Hermitian.
    Matrix not_unitary{{1, 1}, {0, 1}};
    EXPECT_FALSE(not_unitary.isUnitary());
}

TEST(Matrix, EqualUpToPhase)
{
    Matrix x{{0, 1}, {1, 0}};
    Cplx phase = std::exp(Cplx(0, 0.73));
    EXPECT_TRUE((x * phase).equalUpToPhase(x));
    EXPECT_FALSE((x * Cplx(2, 0)).equalUpToPhase(x));
    Matrix z{{1, 0}, {0, -1}};
    EXPECT_FALSE(x.equalUpToPhase(z));
}

TEST(Matrix, ShapeErrorsPanic)
{
    Matrix a(2, 3), b(2, 3);
    EXPECT_THROW(a * b, PanicError);
    EXPECT_THROW(a.at(2, 0), PanicError);
}

TEST(Stats, Basics)
{
    std::vector<double> xs{1.0, 2.0, 4.0};
    EXPECT_NEAR(mean(xs), 7.0 / 3, 1e-12);
    EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
    EXPECT_EQ(minOf(xs), 1.0);
    EXPECT_EQ(maxOf(xs), 4.0);
    EXPECT_NEAR(quantile(xs, 0.5), 2.0, 1e-12);
    EXPECT_NEAR(quantile(xs, 0.0), 1.0, 1e-12);
    EXPECT_NEAR(quantile(xs, 1.0), 4.0, 1e-12);
}

TEST(Stats, GeomeanRejectsNonPositive)
{
    EXPECT_THROW(geomean({1.0, 0.0}), FatalError);
    EXPECT_THROW(mean({}), PanicError);
}

TEST(Stats, RunningMatchesBatch)
{
    Rng rng(5);
    std::vector<double> xs;
    RunningStats st;
    for (int i = 0; i < 1000; ++i) {
        double x = rng.uniform(-3, 7);
        xs.push_back(x);
        st.push(x);
    }
    EXPECT_NEAR(st.mean(), mean(xs), 1e-9);
    EXPECT_NEAR(st.stddev(), stddev(xs), 1e-9);
    EXPECT_EQ(st.min(), minOf(xs));
    EXPECT_EQ(st.max(), maxOf(xs));
    EXPECT_EQ(st.count(), 1000);
}

TEST(Table, AlignmentAndCsv)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);

    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_NE(csv.str().find("name,value"), std::string::npos);
    EXPECT_NE(csv.str().find("b,22"), std::string::npos);
}

TEST(Table, CsvQuoting)
{
    Table t;
    t.addRow({"a,b", "say \"hi\""});
    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_EQ(csv.str(), "\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, RowWidthMismatchPanics)
{
    Table t;
    t.setHeader({"one", "two"});
    EXPECT_THROW(t.addRow({"only"}), PanicError);
}

TEST(Formatting, Helpers)
{
    EXPECT_EQ(fmtF(1.23456, 2), "1.23");
    EXPECT_EQ(fmtI(-42), "-42");
    EXPECT_EQ(fmtFactor(2.5), "2.50x");
    EXPECT_EQ(fmtFactor(std::nan("")), "-");
}

TEST(Rng, StreamIsPureFunctionOfSeedAndIndex)
{
    Rng a = Rng::stream(7, 0), b = Rng::stream(7, 0);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.next(), b.next());
    // Different indices (and different seeds) give unrelated streams.
    Rng c = Rng::stream(7, 1), d = Rng::stream(8, 0);
    Rng a2 = Rng::stream(7, 0);
    bool differs_idx = false, differs_seed = false;
    for (int i = 0; i < 50; ++i) {
        uint64_t r = a2.next();
        differs_idx = differs_idx || c.next() != r;
        differs_seed = differs_seed || d.next() != r;
    }
    EXPECT_TRUE(differs_idx);
    EXPECT_TRUE(differs_seed);
}

TEST(Rng, StreamsAreStatisticallyIndependent)
{
    // Adjacent chunk streams must not be shifted copies of each other:
    // their uniforms should be uncorrelated.
    Rng a = Rng::stream(99, 4), b = Rng::stream(99, 5);
    double sum_ab = 0.0, sum_a = 0.0, sum_b = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = a.uniform(), y = b.uniform();
        sum_ab += x * y;
        sum_a += x;
        sum_b += y;
    }
    double cov = sum_ab / n - (sum_a / n) * (sum_b / n);
    EXPECT_NEAR(cov, 0.0, 0.01);
}

TEST(Env, EnvIntParsesAndFallsBack)
{
    unsetenv("TRIQ_TEST_ENVINT");
    EXPECT_EQ(envInt("TRIQ_TEST_ENVINT", 42), 42);
    setenv("TRIQ_TEST_ENVINT", "17", 1);
    EXPECT_EQ(envInt("TRIQ_TEST_ENVINT", 42), 17);
    setenv("TRIQ_TEST_ENVINT", "bogus", 1);
    EXPECT_EQ(envInt("TRIQ_TEST_ENVINT", 42), 42);
    setenv("TRIQ_TEST_ENVINT", "17abc", 1);
    EXPECT_EQ(envInt("TRIQ_TEST_ENVINT", 42), 42);
    setenv("TRIQ_TEST_ENVINT", "0", 1);
    EXPECT_EQ(envInt("TRIQ_TEST_ENVINT", 42), 42);     // below min 1
    EXPECT_EQ(envInt("TRIQ_TEST_ENVINT", 42, 0), 0);   // min 0 accepts
    setenv("TRIQ_TEST_ENVINT", "-3", 1);
    EXPECT_EQ(envInt("TRIQ_TEST_ENVINT", 42, 0), 42);
    // Out of range: past the explicit 1e9 cap and past LONG_MAX (the
    // strtol ERANGE path) both fall back, never truncate or wrap.
    setenv("TRIQ_TEST_ENVINT", "1000000001", 1);
    EXPECT_EQ(envInt("TRIQ_TEST_ENVINT", 42), 42);
    setenv("TRIQ_TEST_ENVINT", "99999999999999999999999", 1);
    EXPECT_EQ(envInt("TRIQ_TEST_ENVINT", 42), 42);
    unsetenv("TRIQ_TEST_ENVINT");
}

TEST(Env, EnvIntWarnsOnMalformedValue)
{
    // The warn-never-silent contract: a malformed knob (TRIQ_TRIALS=10x)
    // must produce a visible diagnostic, not just quietly fall back.
    setenv("TRIQ_TEST_ENVINT", "10x", 1);
    testing::internal::CaptureStderr();
    EXPECT_EQ(envInt("TRIQ_TEST_ENVINT", 42), 42);
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("TRIQ_TEST_ENVINT"), std::string::npos) << err;
    EXPECT_NE(err.find("10x"), std::string::npos) << err;

    // A well-formed value stays silent.
    setenv("TRIQ_TEST_ENVINT", "10", 1);
    testing::internal::CaptureStderr();
    EXPECT_EQ(envInt("TRIQ_TEST_ENVINT", 42), 10);
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
    unsetenv("TRIQ_TEST_ENVINT");
}

TEST(Env, EnvDoubleParsesAndFallsBack)
{
    unsetenv("TRIQ_TEST_ENVDBL");
    EXPECT_DOUBLE_EQ(envDouble("TRIQ_TEST_ENVDBL", 0.25), 0.25);
    setenv("TRIQ_TEST_ENVDBL", "0.05", 1);
    EXPECT_DOUBLE_EQ(envDouble("TRIQ_TEST_ENVDBL", 0.25), 0.05);
    setenv("TRIQ_TEST_ENVDBL", "1e-3", 1);
    EXPECT_DOUBLE_EQ(envDouble("TRIQ_TEST_ENVDBL", 0.25), 1e-3);
    setenv("TRIQ_TEST_ENVDBL", "-1", 1);
    EXPECT_DOUBLE_EQ(envDouble("TRIQ_TEST_ENVDBL", 0.25, -5.0), -1.0);
    // Out of range: a value past DBL_MAX overflows to +inf under
    // strtod (ERANGE) and must fall back, not propagate infinity.
    setenv("TRIQ_TEST_ENVDBL", "1e999", 1);
    EXPECT_DOUBLE_EQ(envDouble("TRIQ_TEST_ENVDBL", 0.25), 0.25);
    unsetenv("TRIQ_TEST_ENVDBL");
}

TEST(Env, EnvDoubleWarnsOnMalformedValue)
{
    for (const char *bad : {"0.05x", "nan", "inf", "-0.1", ""}) {
        setenv("TRIQ_TEST_ENVDBL", bad, 1);
        testing::internal::CaptureStderr();
        EXPECT_DOUBLE_EQ(envDouble("TRIQ_TEST_ENVDBL", 0.25), 0.25)
            << "value: " << bad;
        EXPECT_NE(testing::internal::GetCapturedStderr().find(
                      "TRIQ_TEST_ENVDBL"),
                  std::string::npos)
            << "value: " << bad;
    }
    unsetenv("TRIQ_TEST_ENVDBL");
}

TEST(ThreadPool, RunsEveryJobAcrossWorkers)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::atomic<long> sum{0};
    parallelFor(pool, 1000, [&](int i) { sum += i; });
    EXPECT_EQ(sum.load(), 999L * 1000 / 2);
    // The pool is reusable after wait().
    parallelFor(pool, 10, [&](int) { sum += 1; });
    EXPECT_EQ(sum.load(), 999L * 1000 / 2 + 10);
}

TEST(ThreadPool, PropagatesJobExceptions)
{
    ThreadPool pool(2);
    EXPECT_THROW(parallelFor(pool, 8,
                             [&](int i) {
                                 if (i == 5)
                                     panic("boom from job ", i);
                             }),
                 PanicError);
    // Still usable after an error.
    std::atomic<int> ok{0};
    parallelFor(pool, 4, [&](int) { ++ok; });
    EXPECT_EQ(ok.load(), 4);
}

} // namespace
} // namespace triq
