/**
 * @file
 * Adaptive-scheduler tests: cost-model monotonicity, decision
 * boundaries under a pinned fake calibration, calibration parsing,
 * batched thread-pool fan-out (coverage + exception propagation), and
 * the end-to-end contract that scheduling never changes simulation
 * results (bit-identical histograms for serial / adaptive / forced
 * threaded on fig07 circuits).
 *
 * Everything here runs with small trial counts and a worker handful so
 * the suite stays fast under ASan/UBSan/TSan (ctest -L sched).
 */

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/sched.hh"
#include "common/thread_pool.hh"
#include "core/compiler.hh"
#include "device/machines.hh"
#include "service/sweep.hh"
#include "sim/executor.hh"
#include "workloads/benchmarks.hh"

namespace triq
{
namespace
{

/** A pinned calibration so decision tests are machine-independent. */
SchedCalib
fakeCalib(int threads = 8)
{
    SchedCalib c;
    c.perTaskOverheadUs = 10.0;
    c.poolSpawnUs = 1000.0;
    c.ampOpsPerUs = 1000.0;
    c.hardwareThreads = threads;
    return c;
}

TEST(SchedCalibration, ParseRoundTrip)
{
    SchedCalib c = fakeCalib(6);
    auto parsed = parseSchedCalib(schedCalibString(c));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(parsed->perTaskOverheadUs, c.perTaskOverheadUs);
    EXPECT_DOUBLE_EQ(parsed->poolSpawnUs, c.poolSpawnUs);
    EXPECT_DOUBLE_EQ(parsed->ampOpsPerUs, c.ampOpsPerUs);
    EXPECT_EQ(parsed->hardwareThreads, 6);
}

TEST(SchedCalibration, ParseThreeFieldsUsesHardwareThreads)
{
    auto parsed = parseSchedCalib("1.5,200,800");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(parsed->perTaskOverheadUs, 1.5);
    EXPECT_GE(parsed->hardwareThreads, 1);
}

TEST(SchedCalibration, ParseRejectsMalformed)
{
    EXPECT_FALSE(parseSchedCalib("").has_value());
    EXPECT_FALSE(parseSchedCalib("1,2").has_value());
    EXPECT_FALSE(parseSchedCalib("1,2,3,4,5").has_value());
    EXPECT_FALSE(parseSchedCalib("a,b,c").has_value());
    EXPECT_FALSE(parseSchedCalib("1,-2,3").has_value());
    EXPECT_FALSE(parseSchedCalib("0,2,3").has_value());
    EXPECT_FALSE(parseSchedCalib("1,2,3junk").has_value());
    EXPECT_FALSE(parseSchedCalib("1,,3").has_value());
    EXPECT_FALSE(parseSchedCalib("nan,2,3").has_value());
}

TEST(SchedCalibration, MeasuredValuesArePositive)
{
    SchedCalib c = measureSchedCalib();
    EXPECT_GT(c.perTaskOverheadUs, 0.0);
    EXPECT_GT(c.poolSpawnUs, 0.0);
    EXPECT_GT(c.ampOpsPerUs, 0.0);
    EXPECT_GE(c.hardwareThreads, 1);
}

TEST(SchedCostModel, ChunkEstimateMonotone)
{
    SchedCalib c = fakeCalib();
    double base = estimateChunkUs(c, 6, 40, 64, 0.5);
    EXPECT_GT(base, 0.0);
    EXPECT_GE(estimateChunkUs(c, 8, 40, 64, 0.5), base);
    EXPECT_GE(estimateChunkUs(c, 6, 80, 64, 0.5), base);
    EXPECT_GE(estimateChunkUs(c, 6, 40, 128, 0.5), base);
    EXPECT_GE(estimateChunkUs(c, 6, 40, 64, 0.9), base);
    EXPECT_LE(estimateChunkUs(c, 6, 40, 64, 0.1), base);
}

TEST(SchedCostModel, GroupAndPresampleEstimatesMonotone)
{
    SchedCalib c = fakeCalib();
    double g = estimateGroupUs(c, 6, 40);
    EXPECT_GT(g, 0.0);
    EXPECT_GE(estimateGroupUs(c, 8, 40), g);
    EXPECT_GE(estimateGroupUs(c, 6, 80), g);

    double p = estimatePresampleUs(c, 30, 64);
    EXPECT_GT(p, 0.0);
    EXPECT_GE(estimatePresampleUs(c, 60, 64), p);
    EXPECT_GE(estimatePresampleUs(c, 30, 128), p);
}

TEST(SchedCostModel, CompileEstimateMonotone)
{
    SchedCalib c = fakeCalib();
    double base = estimateCompileUs(c, 14, 20, 100);
    EXPECT_GT(base, 0.0);
    EXPECT_GE(estimateCompileUs(c, 20, 20, 100), base);
    EXPECT_GE(estimateCompileUs(c, 14, 40, 100), base);
    EXPECT_GE(estimateCompileUs(c, 14, 20, 200), base);
}

TEST(SchedPlan, TinyJobStaysSerial)
{
    SchedCalib c = fakeCalib();
    SchedDecision d = planParallel(c, 4, 1.0);
    EXPECT_FALSE(d.threaded);
    EXPECT_EQ(d.threads, 1);
    EXPECT_EQ(d.tasks, 0);
    EXPECT_STREQ(d.mode(), "serial");
    EXPECT_DOUBLE_EQ(d.predictedMs, d.predictedSerialMs);
}

TEST(SchedPlan, BigJobGoesThreadedWithAmortizedBatches)
{
    SchedCalib c = fakeCalib(8);
    SchedDecision d = planParallel(c, 1000, 1000.0, 0, true);
    ASSERT_TRUE(d.threaded);
    EXPECT_STREQ(d.mode(), "threaded");
    EXPECT_GE(d.threads, 2);
    EXPECT_LE(d.threads, 8);
    EXPECT_GE(d.itemsPerTask, 1);
    // The task list must cover every item, no more than one short task.
    EXPECT_EQ(d.tasks, (1000 + d.itemsPerTask - 1) / d.itemsPerTask);
    // The win must clear the margin the plan promises.
    EXPECT_LT(d.predictedMs, d.predictedSerialMs);
}

TEST(SchedPlan, BatchesAmortizeDispatchOverhead)
{
    SchedCalib c = fakeCalib(4);
    // 10000 cheap items: per-task overhead (10us) dwarfs one item
    // (1us), so tasks must carry many items each.
    SchedDecision d = planParallel(c, 10000, 1.0, 0, true);
    ASSERT_TRUE(d.threaded);
    EXPECT_GE(d.itemsPerTask, 50); // >= kAmortizeFactor * 10 / 1 floor
    // ...but never more tasks than needed for balance: a few per
    // worker at most.
    EXPECT_LE(d.tasks, 4 * 4 + 1);
}

TEST(SchedPlan, MaxThreadsOneForcesSerial)
{
    SchedCalib c = fakeCalib();
    SchedDecision d = planParallel(c, 1000, 1000.0, 1, true);
    EXPECT_FALSE(d.threaded);
}

TEST(SchedPlan, SingleThreadMachineStaysSerial)
{
    SchedCalib c = fakeCalib(1);
    SchedDecision d = planParallel(c, 1000, 1000.0, 0, true);
    EXPECT_FALSE(d.threaded);
}

TEST(SchedPlan, ColdPoolSpawnCanFlipTheDecision)
{
    SchedCalib c = fakeCalib(4);
    c.poolSpawnUs = 1e7; // absurdly expensive spawn
    // Worth threading once the pool exists...
    SchedDecision hot = planParallel(c, 64, 500.0, 0, true);
    EXPECT_TRUE(hot.threaded);
    // ...but not worth paying the spawn for.
    SchedDecision cold = planParallel(c, 64, 500.0, 0, false);
    EXPECT_FALSE(cold.threaded);
}

TEST(SchedPlan, EmptyAndSingleItemJobsAreSerial)
{
    SchedCalib c = fakeCalib();
    EXPECT_FALSE(planParallel(c, 0, 100.0).threaded);
    EXPECT_FALSE(planParallel(c, 1, 1e9).threaded);
    EXPECT_FALSE(planForced(c, 0, 100.0, 8).threaded);
    EXPECT_FALSE(planForced(c, 1, 1e9, 8).threaded);
}

TEST(SchedPlan, ForcedSerialNeverThreads)
{
    SchedCalib c = fakeCalib();
    SchedDecision d = planForced(c, 1000, 1000.0, 1, true);
    EXPECT_FALSE(d.threaded);
    EXPECT_EQ(d.threads, 1);
}

TEST(SchedPlan, ForcedThreadedThreadsEvenWhenTheModelSaysNo)
{
    SchedCalib c = fakeCalib(8);
    // Tiny job the model would keep serial...
    ASSERT_FALSE(planParallel(c, 8, 1.0, 0, true).threaded);
    // ...still threads when forced, batched by the same rule.
    SchedDecision d = planForced(c, 8, 1.0, 4, true);
    ASSERT_TRUE(d.threaded);
    EXPECT_LE(d.threads, 4);
    EXPECT_GE(d.itemsPerTask, 1);
    EXPECT_EQ(d.tasks, (8 + d.itemsPerTask - 1) / d.itemsPerTask);
}

TEST(ThreadPoolBatch, ParallelForRangesCoversEveryItemOnce)
{
    ThreadPool pool(3);
    for (int items : {1, 7, 64, 100}) {
        for (int per_task : {1, 3, 64, 1000}) {
            std::vector<std::atomic<int>> hits(items);
            for (auto &h : hits)
                h.store(0);
            parallelForRanges(pool, items, per_task,
                              [&hits](int lo, int hi) {
                                  for (int i = lo; i < hi; ++i)
                                      hits[i].fetch_add(1);
                              });
            for (int i = 0; i < items; ++i)
                EXPECT_EQ(hits[i].load(), 1)
                    << "items=" << items << " per_task=" << per_task
                    << " i=" << i;
        }
    }
}

TEST(ThreadPoolBatch, ZeroItemsIsANoOp)
{
    ThreadPool pool(2);
    parallelForRanges(pool, 0, 4, [](int, int) { FAIL(); });
    pool.submitBatch({}); // empty batch: no lock storm, no wake
    pool.wait();
}

TEST(ThreadPoolBatch, ParallelForPropagatesExceptions)
{
    ThreadPool pool(3);
    EXPECT_THROW(parallelFor(pool, 64,
                             [](int i) {
                                 if (i == 37)
                                     throw std::runtime_error("job 37");
                             }),
                 std::runtime_error);
    // The pool must stay usable after a propagated failure.
    std::atomic<int> ran{0};
    parallelFor(pool, 16, [&ran](int) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolBatch, ParallelForRangesPropagatesExceptions)
{
    ThreadPool pool(2);
    EXPECT_THROW(parallelForRanges(pool, 100, 8,
                                   [](int lo, int) {
                                       if (lo >= 48)
                                           throw std::runtime_error("hi");
                                   }),
                 std::runtime_error);
}

TEST(ThreadPoolBatch, EnsureWorkersGrowsThePool)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    pool.ensureWorkers(3);
    EXPECT_EQ(pool.size(), 3);
    pool.ensureWorkers(2); // never shrinks
    EXPECT_EQ(pool.size(), 3);
    std::atomic<int> ran{0};
    parallelFor(pool, 9, [&ran](int) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 9);
}

TEST(ThreadPoolBatch, ProcessPoolIsSharedAndMarkedStarted)
{
    ThreadPool &a = processPool(2);
    EXPECT_TRUE(processPoolStarted());
    ThreadPool &b = processPool(1);
    EXPECT_EQ(&a, &b);
    EXPECT_GE(b.size(), 2); // never shrinks below an earlier request
}

TEST(SchedEnv, ThreadKnobsTreatZeroAsAdaptive)
{
    setenv("TRIQ_SIM_THREADS", "0", 1);
    EXPECT_EQ(defaultSimThreads(1), 0);
    unsetenv("TRIQ_SIM_THREADS");
    EXPECT_EQ(defaultSimThreads(1), 1);

    setenv("TRIQ_SWEEP_THREADS", "0", 1);
    EXPECT_EQ(defaultSweepThreads(), 0);
    setenv("TRIQ_SWEEP_THREADS", "3", 1);
    EXPECT_EQ(defaultSweepThreads(), 3);
    unsetenv("TRIQ_SWEEP_THREADS");
    EXPECT_EQ(defaultSweepThreads(), 0);
}

/**
 * The end-to-end contract: scheduling decides only *where* work runs.
 * Serial, adaptive and forced-threaded execution of the same compiled
 * fig07 circuit must agree bit for bit.
 */
TEST(SchedDeterminism, Fig07HistogramsIdenticalAcrossModes)
{
    Device dev = makeIbmQ14();
    Calibration calib = dev.calibrate(3);
    const int trials = 192;
    for (const char *name : {"BV4", "QFT", "Adder"}) {
        Circuit program = makeBenchmark(name);
        CompileOptions copts;
        copts.emitAssembly = false;
        CompileResult compiled =
            compileForDevice(program, dev, calib, copts);

        ExecOptions serial;
        serial.threads = 1;
        ExecutionResult r_serial = executeNoisy(
            compiled.hwCircuit, dev, calib, trials, 99, serial);

        ExecOptions adaptive;
        adaptive.threads = -1;
        ExecutionResult r_adaptive = executeNoisy(
            compiled.hwCircuit, dev, calib, trials, 99, adaptive);

        ExecOptions forced;
        forced.threads = 3;
        ExecutionResult r_forced = executeNoisy(
            compiled.hwCircuit, dev, calib, trials, 99, forced);
        EXPECT_TRUE(r_forced.sched.threaded) << name;

        EXPECT_EQ(r_serial.histogram, r_adaptive.histogram) << name;
        EXPECT_EQ(r_serial.histogram, r_forced.histogram) << name;
        EXPECT_EQ(r_serial.successRate, r_adaptive.successRate) << name;
        EXPECT_EQ(r_serial.successRate, r_forced.successRate) << name;
        EXPECT_EQ(r_serial.simulatedTrajectories,
                  r_adaptive.simulatedTrajectories)
            << name;
        EXPECT_EQ(r_serial.simulatedTrajectories,
                  r_forced.simulatedTrajectories)
            << name;

        // The decision is observable either way.
        EXPECT_FALSE(r_serial.sched.threaded) << name;
        EXPECT_GE(r_adaptive.sched.predictedSerialMs, 0.0) << name;
        EXPECT_GE(r_adaptive.sched.actualMs, 0.0) << name;
    }
}

TEST(SchedDeterminism, SweepResultsIdenticalAcrossModes)
{
    SweepConfig cfg;
    for (const char *name : {"BV4", "Toffoli", "QFT"})
        cfg.programs.push_back({name, makeBenchmark(name)});
    cfg.devices = {makeIbmQ5(), makeIbmQ14()};
    cfg.days = {0, 1};
    cfg.levels = {OptLevel::OneQOptC, OptLevel::OneQOptCN};
    cfg.options.emitAssembly = false;
    cfg.driftThreshold = -1.0;

    auto espsOf = [](const SweepResult &r) {
        std::vector<double> esps;
        for (const SweepCell &c : r.cells)
            esps.push_back(c.esp);
        return esps;
    };

    cfg.threads = 1;
    CompileCache cache_serial;
    SweepResult serial = runSweep(cfg, &cache_serial);
    EXPECT_EQ(serial.stats.schedMode, "serial");
    EXPECT_EQ(serial.stats.threads, 1);

    cfg.threads = -1;
    CompileCache cache_adaptive;
    SweepResult adaptive = runSweep(cfg, &cache_adaptive);

    cfg.threads = 3;
    CompileCache cache_forced;
    SweepResult forced = runSweep(cfg, &cache_forced);
    EXPECT_EQ(forced.stats.schedMode, "threaded");
    EXPECT_GE(forced.stats.schedTasks, 1);

    EXPECT_EQ(espsOf(serial), espsOf(adaptive));
    EXPECT_EQ(espsOf(serial), espsOf(forced));
    EXPECT_EQ(serial.stats.compiles, adaptive.stats.compiles);
    EXPECT_EQ(serial.stats.compiles, forced.stats.compiles);
    EXPECT_EQ(serial.stats.cacheHits, forced.stats.cacheHits);
}

} // namespace
} // namespace triq
