/**
 * @file
 * Build smoke test: exercises one path through every subsystem linked so
 * far. Real per-module suites live in the sibling test files.
 */

#include <gtest/gtest.h>

#include "core/unitary.hh"
#include "device/machines.hh"
#include "sim/statevector.hh"

namespace triq
{
namespace
{

TEST(Smoke, BellState)
{
    Circuit c(2, "bell");
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    StateVector sv(2);
    sv.applyCircuit(c);
    EXPECT_NEAR(sv.probability(0), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability(3), 0.5, 1e-12);
}

TEST(Smoke, DevicesConstruct)
{
    auto devices = allStudyDevices();
    ASSERT_EQ(devices.size(), 7u);
    EXPECT_EQ(devices[0].numQubits(), 5);
    EXPECT_EQ(devices[1].topology().numEdges(), 18);
    EXPECT_EQ(devices[2].topology().numEdges(), 22);
    EXPECT_TRUE(devices[6].topology().fullyConnected());
}

} // namespace
} // namespace triq
