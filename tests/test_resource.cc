/**
 * @file
 * Resource-governor tests: envBytes parsing, the committed-memory
 * ledger and its RAII guard under concurrency, the simulation memory
 * formulas (including uint64 saturation at high qubit counts), the
 * admission cost model, and the executor's degrade chain (full plan ->
 * low-memory plan -> structured ResourceError) with its bit-identity
 * contract. Carries the "server" ctest label so sanitizer builds
 * exercise the concurrent reserve/release paths.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "common/env.hh"
#include "common/resource.hh"
#include "core/compiler.hh"
#include "device/machines.hh"
#include "service/cost_model.hh"
#include "sim/executor.hh"
#include "sim/sim_cost.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

namespace
{

/** Scoped budget override on the process governor (always restored). */
struct BudgetGuard
{
    explicit BudgetGuard(uint64_t bytes)
        : old_(processGovernor().budgetBytes())
    {
        processGovernor().setBudgetBytes(bytes);
    }
    ~BudgetGuard() { processGovernor().setBudgetBytes(old_); }
    uint64_t old_;
};

} // namespace

// ---------------------------------------------------------------------
// envBytes.
// ---------------------------------------------------------------------

TEST(EnvBytes, ParsesPlainAndSuffixed)
{
    setenv("TRIQ_TEST_BYTES", "12345", 1);
    EXPECT_EQ(envBytes("TRIQ_TEST_BYTES", 7), 12345ull);
    setenv("TRIQ_TEST_BYTES", "4K", 1);
    EXPECT_EQ(envBytes("TRIQ_TEST_BYTES", 7), 4ull << 10);
    setenv("TRIQ_TEST_BYTES", "256M", 1);
    EXPECT_EQ(envBytes("TRIQ_TEST_BYTES", 7), 256ull << 20);
    setenv("TRIQ_TEST_BYTES", "2g", 1);
    EXPECT_EQ(envBytes("TRIQ_TEST_BYTES", 7), 2ull << 30);
    setenv("TRIQ_TEST_BYTES", "1T", 1);
    EXPECT_EQ(envBytes("TRIQ_TEST_BYTES", 7), 1ull << 40);
    // Tolerated unit tails: 256MB, 256MiB, 256Mi.
    setenv("TRIQ_TEST_BYTES", "256MB", 1);
    EXPECT_EQ(envBytes("TRIQ_TEST_BYTES", 7), 256ull << 20);
    setenv("TRIQ_TEST_BYTES", "256MiB", 1);
    EXPECT_EQ(envBytes("TRIQ_TEST_BYTES", 7), 256ull << 20);
    setenv("TRIQ_TEST_BYTES", "256Mi", 1);
    EXPECT_EQ(envBytes("TRIQ_TEST_BYTES", 7), 256ull << 20);
    setenv("TRIQ_TEST_BYTES", "0", 1);
    EXPECT_EQ(envBytes("TRIQ_TEST_BYTES", 7), 0ull);
    unsetenv("TRIQ_TEST_BYTES");
    EXPECT_EQ(envBytes("TRIQ_TEST_BYTES", 7), 7ull);
}

TEST(EnvBytes, RejectsGarbageNegativeAndOverflow)
{
    setenv("TRIQ_TEST_BYTES", "bogus", 1);
    EXPECT_EQ(envBytes("TRIQ_TEST_BYTES", 7), 7ull);
    setenv("TRIQ_TEST_BYTES", "12Q", 1);
    EXPECT_EQ(envBytes("TRIQ_TEST_BYTES", 7), 7ull);
    setenv("TRIQ_TEST_BYTES", "12Mx", 1);
    EXPECT_EQ(envBytes("TRIQ_TEST_BYTES", 7), 7ull);
    // strtoull silently wraps negatives; envBytes must not.
    setenv("TRIQ_TEST_BYTES", "-5", 1);
    EXPECT_EQ(envBytes("TRIQ_TEST_BYTES", 7), 7ull);
    setenv("TRIQ_TEST_BYTES", " -5M", 1);
    EXPECT_EQ(envBytes("TRIQ_TEST_BYTES", 7), 7ull);
    // 2^64 overflows; so does a shifted suffix product.
    setenv("TRIQ_TEST_BYTES", "18446744073709551616", 1);
    EXPECT_EQ(envBytes("TRIQ_TEST_BYTES", 7), 7ull);
    setenv("TRIQ_TEST_BYTES", "99999999999999999G", 1);
    EXPECT_EQ(envBytes("TRIQ_TEST_BYTES", 7), 7ull);
    // Below an explicit floor.
    setenv("TRIQ_TEST_BYTES", "512", 1);
    EXPECT_EQ(envBytes("TRIQ_TEST_BYTES", 7, 1024), 7ull);
    unsetenv("TRIQ_TEST_BYTES");
}

TEST(FormatBytes, HumanReadable)
{
    EXPECT_EQ(formatBytes(640), "640 B");
    EXPECT_EQ(formatBytes(4ull << 10), "4.0 KiB");
    EXPECT_EQ(formatBytes(256ull << 20), "256.0 MiB");
    EXPECT_EQ(formatBytes(3ull << 29), "1.5 GiB");
}

// ---------------------------------------------------------------------
// Governor ledger.
// ---------------------------------------------------------------------

TEST(ResourceGovernor, ReserveReleaseAndRefuse)
{
    ResourceGovernor gov(1000);
    EXPECT_EQ(gov.budgetBytes(), 1000ull);
    EXPECT_TRUE(gov.wouldFit(1000));
    EXPECT_FALSE(gov.wouldFit(1001));
    EXPECT_TRUE(gov.tryReserve(600));
    EXPECT_EQ(gov.committedBytes(), 600ull);
    EXPECT_FALSE(gov.tryReserve(500)); // 1100 > 1000
    EXPECT_EQ(gov.committedBytes(), 600ull) << "refusal must not commit";
    EXPECT_TRUE(gov.tryReserve(400));
    gov.release(1000);
    EXPECT_EQ(gov.committedBytes(), 0ull);

    ResourceStats s = gov.stats();
    EXPECT_EQ(s.reservations, 2);
    EXPECT_EQ(s.refusals, 1);
    EXPECT_EQ(s.peakBytes, 1000ull);
}

TEST(ResourceGovernor, ThrowingReserveCarriesStructuredFields)
{
    ResourceGovernor gov(100);
    gov.reserve(60, "first");
    try {
        gov.reserve(50, "second");
        FAIL() << "expected ResourceError";
    } catch (const ResourceError &e) {
        EXPECT_EQ(e.attemptedBytes, 50ull);
        EXPECT_EQ(e.budgetBytes, 100ull);
        EXPECT_EQ(e.committedBytes, 60ull);
        EXPECT_NE(std::string(e.what()).find("second"),
                  std::string::npos);
    }
    gov.release(60);
}

TEST(ResourceGovernor, UnlimitedBudgetAlwaysFitsButTracks)
{
    ResourceGovernor gov(0);
    EXPECT_TRUE(gov.wouldFit(~uint64_t{0}));
    EXPECT_TRUE(gov.tryReserve(1ull << 40));
    EXPECT_EQ(gov.committedBytes(), 1ull << 40);
    gov.release(1ull << 40);
    EXPECT_EQ(gov.stats().peakBytes, 1ull << 40);
}

TEST(ResourceGovernor, RaiiGuardReleasesOnScopeExitAndMove)
{
    ResourceGovernor gov(1000);
    {
        MemReservation r(gov, 700, "guard");
        EXPECT_EQ(gov.committedBytes(), 700ull);
        MemReservation moved = std::move(r);
        EXPECT_EQ(gov.committedBytes(), 700ull);
        moved.releaseNow();
        EXPECT_EQ(gov.committedBytes(), 0ull);
        moved.releaseNow(); // idempotent
        EXPECT_EQ(gov.committedBytes(), 0ull);
    }
    {
        MemReservation r(gov, 300, "scoped");
    }
    EXPECT_EQ(gov.committedBytes(), 0ull);
    EXPECT_THROW(MemReservation(gov, 1001, "too big"), ResourceError);
}

TEST(ResourceGovernor, ConcurrentReserveReleaseNeverOvercommits)
{
    // 8 threads hammer a budget that only fits 4 concurrent
    // reservations; under TSan/ASan this also proves the locking.
    ResourceGovernor gov(4 * 100);
    std::vector<std::thread> threads;
    std::atomic<long> granted{0};
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < 2000; ++i) {
                if (gov.tryReserve(100)) {
                    uint64_t c = gov.committedBytes();
                    EXPECT_LE(c, 400ull);
                    ++granted;
                    gov.release(100);
                }
            }
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(gov.committedBytes(), 0ull);
    EXPECT_GT(granted.load(), 0);
    EXPECT_LE(gov.stats().peakBytes, 400ull);
}

// ---------------------------------------------------------------------
// Simulation memory formulas.
// ---------------------------------------------------------------------

TEST(SimCost, StateAndDensityBytes)
{
    EXPECT_EQ(stateVectorBytes(1), 32ull);        // 2 amplitudes * 16 B
    EXPECT_EQ(stateVectorBytes(10), 16ull << 10); // 2^10 * 16
    EXPECT_EQ(densityMatrixBytes(5), 16ull << 10); // 4^5 * 16
    // 72 qubits: 2^76 B saturates uint64 instead of wrapping to garbage
    // that would *pass* a budget check.
    EXPECT_EQ(stateVectorBytes(72), ~uint64_t{0});
    EXPECT_EQ(densityMatrixBytes(40), ~uint64_t{0});
}

TEST(SimCost, PredictionsOrderedAndMonotonic)
{
    // The low-memory plan never predicts more than the full plan, and
    // more workers never predict less.
    for (int q = 2; q <= 30; q += 4) {
        EXPECT_LE(predictLowMemSimulationBytes(q),
                  predictSimulationBytes(q, 1));
        EXPECT_LE(predictSimulationBytes(q, 1),
                  predictSimulationBytes(q, 8));
    }
    // Saturated predictions stay saturated.
    EXPECT_EQ(predictSimulationBytes(72, 8), ~uint64_t{0});
    EXPECT_EQ(predictLowMemSimulationBytes(72), ~uint64_t{0});
}

// ---------------------------------------------------------------------
// Admission cost model.
// ---------------------------------------------------------------------

TEST(CostModel, AdmitsUnderBudgetRejectsOver)
{
    BudgetGuard guard(256ull << 20); // 256 MiB
    // 10 qubits: trivially fits.
    AdmissionVerdict small = checkAdmission(10, 4, 20, 60, 0.0, true);
    EXPECT_TRUE(small.fits);
    EXPECT_GT(small.predictedBytes, 0ull);
    EXPECT_EQ(small.budgetBytes, 256ull << 20);
    // 72 qubits: cannot fit even degraded; the verdict carries the
    // predicted cost and budget for the server.budget reply.
    AdmissionVerdict big = checkAdmission(72, 1, 1000, 3000, 0.0, true);
    EXPECT_FALSE(big.fits);
    EXPECT_EQ(big.predictedBytes, ~uint64_t{0});
    EXPECT_NE(big.reason.find("memory budget"), std::string::npos);
    // Same request, compile-only: no state vector, fits.
    AdmissionVerdict co = checkAdmission(72, 1, 1000, 3000, 0.0, false);
    EXPECT_TRUE(co.fits);
}

TEST(CostModel, DegradedPlanAdmitsWhatFullPlanCannot)
{
    // Budget sized between the low-memory plan (2 states) and the full
    // fan-out plan (1 + 2*workers states + checkpoint budget): the
    // verdict must admit, because the executor degrades automatically.
    const int q = 20; // 16 MiB per state
    uint64_t low = predictLowMemSimulationBytes(q);
    uint64_t full = predictSimulationBytes(q, 8);
    ASSERT_LT(low, full);
    BudgetGuard guard(low + (full - low) / 2);
    AdmissionVerdict v = checkAdmission(q, 8, 100, 300, 0.0, true);
    EXPECT_TRUE(v.fits);
}

TEST(CostModel, RejectsOnPredictedDeadlineOverrun)
{
    BudgetGuard guard(0); // memory unlimited; deadline is the limiter
    AdmissionVerdict v =
        checkAdmission(72, 1, 100000, 300000, 0.001, false);
    EXPECT_FALSE(v.fits);
    EXPECT_NE(v.reason.find("deadline"), std::string::npos);
}

// ---------------------------------------------------------------------
// Executor degrade chain.
// ---------------------------------------------------------------------

namespace
{

ExecutionResult
runBV8(int threads)
{
    Device dev = makeIbmQ14();
    Calibration calib = dev.calibrate(0);
    CompileOptions opts;
    CompileResult res =
        compileForDevice(makeBenchmark("BV8"), dev, calib, opts);
    ExecOptions eo;
    eo.threads = threads;
    return executeNoisy(res.hwCircuit, dev, calib, 500, 99, eo);
}

} // namespace

TEST(ExecutorGovernor, LowMemoryPlanIsBitIdentical)
{
    ExecutionResult full = runBV8(2);
    // A budget that fits the low-memory plan but not the full plan
    // forces the degraded path (serial, no checkpoints, no dedup) —
    // which must produce bit-identical results.
    BudgetGuard guard(1ull << 20);
    ExecutionResult degraded = runBV8(2);
    EXPECT_EQ(full.histogram, degraded.histogram);
    EXPECT_EQ(full.successRate, degraded.successRate);
    EXPECT_EQ(full.esp, degraded.esp);
}

TEST(ExecutorGovernor, ImpossibleBudgetThrowsStructuredError)
{
    BudgetGuard guard(1024); // fits nothing
    try {
        runBV8(1);
        FAIL() << "expected ResourceError";
    } catch (const ResourceError &e) {
        EXPECT_GT(e.attemptedBytes, 1024ull);
        EXPECT_EQ(e.budgetBytes, 1024ull);
    }
    // The refused run must not leak reservations.
    EXPECT_EQ(processGovernor().committedBytes(), 0ull);
}

TEST(ExecutorGovernor, ReservationsDrainAfterSuccessfulRun)
{
    runBV8(2);
    EXPECT_EQ(processGovernor().committedBytes(), 0ull);
}
