/**
 * @file
 * Router tests: adjacency constraints, swap accounting, final-map
 * consistency, and the semantics-preservation property over random
 * circuits and random calibrations.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "common/rng.hh"
#include "core/decompose.hh"
#include "core/router.hh"
#include "core/unitary.hh"
#include "device/machines.hh"

namespace triq
{
namespace
{

ReliabilityMatrix
matrixFor(const Device &dev, uint64_t seed)
{
    Calibration calib = dev.averageCalibration();
    Rng rng(seed);
    for (auto &e : calib.err2q)
        e = rng.uniform(0.01, 0.3);
    return ReliabilityMatrix(dev.topology(), calib, dev.vendor());
}

/**
 * Check that the routed circuit equals the program under the initial
 * placement: program qubit p's line corresponds to hardware qubit
 * initialMap[p], with the router's swaps undone via the final map.
 *
 * Strategy: extend the program to full device width by placing program
 * qubit p at initialMap[p], then append SWAP gates that permute the
 * routed circuit's final placement back to the initial placement, and
 * compare unitaries.
 */
void
expectRoutingPreservesSemantics(const Circuit &program,
                                const RoutingResult &routed,
                                const Topology &topo)
{
    ASSERT_LE(topo.numQubits(), 12);
    // Reference: program embedded at the initial placement.
    Circuit ref(topo.numQubits(), "ref");
    for (const auto &g : program.gates()) {
        if (g.kind == GateKind::Measure)
            continue;
        Gate hw = g;
        for (int k = 0; k < g.arity(); ++k)
            hw.qubits[static_cast<size_t>(k)] =
                routed.initialMap[static_cast<size_t>(g.qubit(k))];
        ref.add(hw);
    }
    // Routed circuit + permutation restoring initial placement.
    Circuit undo(topo.numQubits(), "undo");
    for (const auto &g : routed.circuit.gates())
        if (g.kind != GateKind::Measure)
            undo.add(g);
    // Permutation: program qubit p sits at finalMap[p], must go back to
    // initialMap[p]. Apply transpositions greedily.
    std::vector<int> pos(topo.numQubits());
    for (int h = 0; h < topo.numQubits(); ++h)
        pos[static_cast<size_t>(h)] = h;
    // where[h] = current location of the state that started at h.
    std::vector<int> where(topo.numQubits());
    for (int h = 0; h < topo.numQubits(); ++h)
        where[static_cast<size_t>(h)] = h;
    // The routed circuit moved the state initially at initialMap[p] to
    // finalMap[p]; build that permutation for all qubits via the swap
    // trace instead: replay swaps.
    for (const auto &g : routed.circuit.gates())
        if (g.kind == GateKind::Swap) {
            for (auto &w : where)
                if (w == g.qubit(0))
                    w = g.qubit(1);
                else if (w == g.qubit(1))
                    w = g.qubit(0);
        }
    // Append swaps (any pair; unitary check only) to undo.
    for (int h = 0; h < topo.numQubits(); ++h) {
        // Find the state that started at h and bring it home.
        int cur = where[static_cast<size_t>(h)];
        if (cur == h)
            continue;
        undo.add(Gate::swap(cur, h));
        for (auto &w : where)
            if (w == cur)
                w = h;
            else if (w == h)
                w = cur;
    }
    EXPECT_TRUE(sameUnitary(undo, ref)) << program.name();
}

TEST(Router, AdjacentGatesPassThrough)
{
    Device dev = makeIbmQ5();
    ReliabilityMatrix rel = matrixFor(dev, 1);
    Circuit c(2, "adj");
    c.add(Gate::cnot(0, 1));
    Mapping m;
    m.progToHw = {0, 1};
    RoutingResult r = routeCircuit(c, m, dev.topology(), rel);
    EXPECT_EQ(r.swapCount, 0);
    EXPECT_EQ(r.circuit.numGates(), 1);
}

TEST(Router, InsertsSwapsForDistantPairs)
{
    // Line of 4: CNOT between the ends needs swaps.
    Device dev = makeRigettiAgave();
    ReliabilityMatrix rel = matrixFor(dev, 2);
    Circuit c(4, "far");
    c.add(Gate::cnot(0, 3));
    Mapping m;
    m.progToHw = {0, 1, 2, 3};
    RoutingResult r = routeCircuit(c, m, dev.topology(), rel);
    EXPECT_EQ(r.swapCount, 2);
    for (const auto &g : r.circuit.gates()) {
        if (isTwoQubitGate(g.kind)) {
            EXPECT_TRUE(
                dev.topology().adjacent(g.qubit(0), g.qubit(1)));
        }
    }
    // Final map differs from initial (the control moved).
    EXPECT_NE(r.finalMap, r.initialMap);
}

TEST(Router, FullyConnectedNeverSwaps)
{
    Device dev = makeUmdTi();
    ReliabilityMatrix rel = matrixFor(dev, 3);
    Rng rng(55);
    Circuit c(5, "dense");
    for (int i = 0; i < 30; ++i) {
        int a = rng.uniformInt(5);
        int b = (a + 1 + rng.uniformInt(4)) % 5;
        c.add(Gate::cnot(a, b));
    }
    Mapping m;
    m.progToHw = {0, 1, 2, 3, 4};
    RoutingResult r = routeCircuit(c, m, dev.topology(), rel);
    EXPECT_EQ(r.swapCount, 0);
    EXPECT_EQ(r.finalMap, r.initialMap);
}

TEST(Router, MeasureFollowsItsQubit)
{
    Device dev = makeRigettiAgave();
    ReliabilityMatrix rel = matrixFor(dev, 4);
    Circuit c(4, "meas");
    c.add(Gate::cnot(0, 3)); // Forces swaps before measurement.
    c.add(Gate::measure(0));
    c.add(Gate::measure(3));
    Mapping m;
    m.progToHw = {0, 1, 2, 3};
    RoutingResult r = routeCircuit(c, m, dev.topology(), rel);
    std::vector<ProgQubit> measured = r.circuit.measuredQubits();
    // The measured hardware qubits must be exactly where program
    // qubits 0 and 3 ended up.
    std::vector<HwQubit> expect{r.finalMap[0], r.finalMap[3]};
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(measured, expect);
}

class RouterProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RouterProperty, PreservesSemanticsOnRandomCircuits)
{
    uint64_t seed = GetParam();
    Rng rng(seed);
    // Random device among the small ones.
    Device dev = seed % 3 == 0   ? makeIbmQ5()
                 : seed % 3 == 1 ? makeRigettiAgave()
                                 : makeUmdTi();
    int n = std::min(4, dev.numQubits());
    Circuit c(n, "rand");
    for (int i = 0; i < 12; ++i) {
        switch (rng.uniformInt(3)) {
          case 0:
            c.add(Gate::h(rng.uniformInt(n)));
            break;
          case 1:
            c.add(Gate::t(rng.uniformInt(n)));
            break;
          default: {
            int a = rng.uniformInt(n);
            int b = (a + 1 + rng.uniformInt(n - 1)) % n;
            c.add(Gate::cnot(a, b));
            break;
          }
        }
    }
    ReliabilityMatrix rel = matrixFor(dev, seed * 7 + 1);
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    MappingOptions mopts;
    mopts.kind = MapperKind::Greedy;
    Mapping m = mapQubits(info, rel, mopts);
    RoutingResult r = routeCircuit(c, m, dev.topology(), rel);
    for (const auto &g : r.circuit.gates()) {
        if (isTwoQubitGate(g.kind)) {
            ASSERT_TRUE(dev.topology().adjacent(g.qubit(0), g.qubit(1)))
                << g.str();
        }
    }
    expectRoutingPreservesSemantics(c, r, dev.topology());
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, RouterProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{24}));

TEST(Router, RejectsNonCnotBasis)
{
    Device dev = makeIbmQ5();
    ReliabilityMatrix rel = matrixFor(dev, 5);
    Circuit c(3, "bad");
    c.add(Gate::ccx(0, 1, 2));
    Mapping m;
    m.progToHw = {0, 1, 2};
    EXPECT_THROW(routeCircuit(c, m, dev.topology(), rel), PanicError);
}

TEST(Router, MappingWidthMismatchIsFatal)
{
    Device dev = makeIbmQ5();
    ReliabilityMatrix rel = matrixFor(dev, 6);
    Circuit c(3, "w");
    c.add(Gate::cnot(0, 1));
    Mapping m;
    m.progToHw = {0, 1}; // Too short.
    EXPECT_THROW(routeCircuit(c, m, dev.topology(), rel), FatalError);
}

} // namespace
} // namespace triq
