/**
 * @file
 * Scheduling tests: gate durations, ASAP start times, total duration,
 * idle-gap extraction and barrier handling.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "core/schedule.hh"

namespace triq
{
namespace
{

const GateDurations kDur{0.1, 0.4, 3.0};

TEST(Schedule, GateDurations)
{
    EXPECT_DOUBLE_EQ(gateDurationUs(Gate::h(0), kDur), 0.1);
    EXPECT_DOUBLE_EQ(gateDurationUs(Gate::u2(0, 0, 0), kDur), 0.1);
    EXPECT_DOUBLE_EQ(gateDurationUs(Gate::u3(0, 1, 2, 3), kDur), 0.2);
    EXPECT_DOUBLE_EQ(gateDurationUs(Gate::cnot(0, 1), kDur), 0.4);
    EXPECT_DOUBLE_EQ(gateDurationUs(Gate::swap(0, 1), kDur), 1.2);
    EXPECT_DOUBLE_EQ(gateDurationUs(Gate::measure(0), kDur), 3.0);
    // Virtual-Z gates are classical frame updates: free.
    EXPECT_DOUBLE_EQ(gateDurationUs(Gate::rz(0, 1.0), kDur), 0.0);
    EXPECT_DOUBLE_EQ(gateDurationUs(Gate::t(0), kDur), 0.0);
    EXPECT_DOUBLE_EQ(gateDurationUs(Gate::barrier(), kDur), 0.0);
}

TEST(Schedule, SerialChain)
{
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::h(0));
    c.add(Gate::measure(0));
    ScheduleInfo s = scheduleCircuit(c, kDur);
    EXPECT_DOUBLE_EQ(s.startUs[0], 0.0);
    EXPECT_DOUBLE_EQ(s.startUs[1], 0.1);
    EXPECT_DOUBLE_EQ(s.startUs[2], 0.2);
    EXPECT_DOUBLE_EQ(s.totalUs, 3.2);
    EXPECT_TRUE(s.gaps.empty());
}

TEST(Schedule, ParallelGates)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::h(1));
    ScheduleInfo s = scheduleCircuit(c, kDur);
    EXPECT_DOUBLE_EQ(s.startUs[0], 0.0);
    EXPECT_DOUBLE_EQ(s.startUs[1], 0.0);
    EXPECT_DOUBLE_EQ(s.totalUs, 0.1);
}

TEST(Schedule, IdleGapDetected)
{
    // q0 runs three gates while q1 idles after its first, then both
    // join in a CNOT: q1 accumulates a gap.
    Circuit c(2);
    c.add(Gate::h(0));       // 0: q0 [0.0, 0.1)
    c.add(Gate::h(1));       // 1: q1 [0.0, 0.1)
    c.add(Gate::h(0));       // 2: q0 [0.1, 0.2)
    c.add(Gate::h(0));       // 3: q0 [0.2, 0.3)
    c.add(Gate::cnot(0, 1)); // 4: starts at 0.3
    ScheduleInfo s = scheduleCircuit(c, kDur);
    ASSERT_EQ(s.gaps.size(), 1u);
    EXPECT_EQ(s.gaps[0].qubit, 1);
    EXPECT_EQ(s.gaps[0].afterGate, 1);
    EXPECT_NEAR(s.gaps[0].us, 0.2, 1e-12);
}

TEST(Schedule, VirtualZCausesNoGap)
{
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::rz(0, 1.0)); // Free: no time passes.
    c.add(Gate::h(0));
    ScheduleInfo s = scheduleCircuit(c, kDur);
    EXPECT_TRUE(s.gaps.empty());
    EXPECT_DOUBLE_EQ(s.totalUs, 0.2);
}

TEST(Schedule, BarrierAlignsStarts)
{
    Circuit c(2);
    c.add(Gate::h(0));       // [0.0, 0.1)
    c.add(Gate::barrier());
    c.add(Gate::h(1));       // Must start at 0.1, not 0.
    ScheduleInfo s = scheduleCircuit(c, kDur);
    EXPECT_DOUBLE_EQ(s.startUs[2], 0.1);
}

TEST(Schedule, BusyTimeAccounting)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    c.add(Gate::measure(1));
    ScheduleInfo s = scheduleCircuit(c, kDur);
    EXPECT_DOUBLE_EQ(s.busyUs[0], 0.1 + 0.4);
    EXPECT_DOUBLE_EQ(s.busyUs[1], 0.4 + 3.0);
}

TEST(Schedule, InitialIdleNotCounted)
{
    // A qubit that only acts late has no gap before its first gate:
    // |0> idling is harmless.
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::h(0));
    c.add(Gate::h(1));
    ScheduleInfo s = scheduleCircuit(c, kDur);
    EXPECT_TRUE(s.gaps.empty());
}

} // namespace
} // namespace triq
