/**
 * @file
 * Frontend tests: lexer tokens, ScaffLite parsing/lowering semantics
 * (checked against hand-built circuits by unitary), loop unrolling,
 * diagnostics, and the OpenQASM importer.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "core/unitary.hh"
#include "lang/lexer.hh"
#include "lang/lower.hh"
#include "lang/parser.hh"
#include "lang/qasm_parser.hh"
#include "workloads/benchmarks.hh"

namespace triq
{
namespace
{

TEST(Lexer, BasicTokens)
{
    auto toks = tokenize("module m { qreg q[4]; rz(pi/2) q[0]; }");
    ASSERT_GE(toks.size(), 10u);
    EXPECT_TRUE(toks[0].isIdent("module"));
    EXPECT_TRUE(toks[1].isIdent("m"));
    EXPECT_TRUE(toks[2].is("{"));
    EXPECT_EQ(toks.back().kind, TokKind::End);
}

TEST(Lexer, NumbersAndRanges)
{
    auto toks = tokenize("0..3 1.5 2e3 7");
    EXPECT_EQ(toks[0].kind, TokKind::Int);
    EXPECT_EQ(toks[0].intValue, 0);
    EXPECT_TRUE(toks[1].is(".."));
    EXPECT_EQ(toks[2].intValue, 3);
    EXPECT_EQ(toks[3].kind, TokKind::Float);
    EXPECT_DOUBLE_EQ(toks[3].floatValue, 1.5);
    EXPECT_EQ(toks[4].kind, TokKind::Float);
    EXPECT_DOUBLE_EQ(toks[4].floatValue, 2000.0);
    EXPECT_EQ(toks[5].kind, TokKind::Int);
}

TEST(Lexer, CommentsAndArrow)
{
    auto toks = tokenize("a // line comment\n/* block\n */ -> b");
    EXPECT_TRUE(toks[0].isIdent("a"));
    EXPECT_TRUE(toks[1].is("->"));
    EXPECT_TRUE(toks[2].isIdent("b"));
}

TEST(Lexer, LinesTracked)
{
    auto toks = tokenize("a\nb\n  c");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[2].line, 3);
    EXPECT_EQ(toks[2].col, 3);
}

TEST(Lexer, RejectsGarbage)
{
    EXPECT_THROW(tokenize("a $ b"), FatalError);
    EXPECT_THROW(tokenize("/* unterminated"), FatalError);
}

TEST(ScaffLite, BvProgramMatchesBuilder)
{
    const char *src = R"(
        // Bernstein-Vazirani, hidden string 111.
        module bv4 {
            qreg q[4];
            x q[3];
            for i in 0..3 { h q[i]; }
            for i in 0..2 { cnot q[i], q[3]; }
            for i in 0..2 { h q[i]; }
            for i in 0..2 { measure q[i]; }
        }
    )";
    Circuit parsed = compileScaffLite(src);
    Circuit built = makeBV(4);
    EXPECT_EQ(parsed.numQubits(), 4);
    EXPECT_EQ(parsed.measuredQubits(), built.measuredQubits());
    EXPECT_TRUE(sameUnitary(parsed, built));
    EXPECT_EQ(idealOutcome(parsed), idealOutcome(built));
}

TEST(ScaffLite, ExpressionsFold)
{
    Circuit c = compileScaffLite(R"(
        module expr {
            qreg q[2];
            rz(pi/4 + pi/4) q[0];
            rx(-(2*pi)/4) q[1];
        }
    )");
    EXPECT_EQ(c.numGates(), 2);
    EXPECT_NEAR(c.gate(0).params[0], kPi / 2, 1e-12);
    EXPECT_NEAR(c.gate(1).params[0], -kPi / 2, 1e-12);
}

TEST(ScaffLite, NestedLoopsAndIndexArithmetic)
{
    Circuit c = compileScaffLite(R"(
        module nest {
            qreg q[6];
            for i in 0..1 {
                for j in 0..2 {
                    h q[3*i + j];
                }
            }
        }
    )");
    EXPECT_EQ(c.numGates(), 6);
    for (int g = 0; g < 6; ++g)
        EXPECT_EQ(c.gate(g).qubit(0), g);
}

TEST(ScaffLite, MultipleRegistersConcatenate)
{
    Circuit c = compileScaffLite(R"(
        module two {
            qreg a[2];
            qreg b[2];
            x a[1];
            x b[0];
        }
    )");
    EXPECT_EQ(c.numQubits(), 4);
    EXPECT_EQ(c.gate(0).qubit(0), 1);
    EXPECT_EQ(c.gate(1).qubit(0), 2); // b[0] follows a[0..1].
}

TEST(ScaffLite, CompositeGatesAndBarrier)
{
    Circuit c = compileScaffLite(R"(
        module comp {
            qreg q[3];
            toffoli q[0], q[1], q[2];
            barrier;
            fredkin q[2], q[0], q[1];
        }
    )");
    EXPECT_EQ(c.gate(0).kind, GateKind::Ccx);
    EXPECT_EQ(c.gate(1).kind, GateKind::Barrier);
    EXPECT_EQ(c.gate(2).kind, GateKind::Cswap);
}

TEST(ScaffLite, Diagnostics)
{
    // Unknown gate.
    EXPECT_THROW(compileScaffLite(
                     "module m { qreg q[1]; frobnicate q[0]; }"),
                 FatalError);
    // Out-of-range index.
    EXPECT_THROW(compileScaffLite("module m { qreg q[1]; x q[3]; }"),
                 FatalError);
    // Unknown register.
    EXPECT_THROW(compileScaffLite("module m { qreg q[1]; x r[0]; }"),
                 FatalError);
    // Unknown loop variable.
    EXPECT_THROW(compileScaffLite("module m { qreg q[2]; x q[i]; }"),
                 FatalError);
    // Syntax error.
    EXPECT_THROW(compileScaffLite("module m { qreg q[2] x q[0]; }"),
                 FatalError);
    // No qubits.
    EXPECT_THROW(compileScaffLite("module m { }"), FatalError);
    // Shadowed loop variable.
    EXPECT_THROW(compileScaffLite(R"(module m { qreg q[2];
        for i in 0..1 { for i in 0..1 { x q[i]; } } })"),
                 FatalError);
}

TEST(ScaffLite, WrongOperandCount)
{
    EXPECT_THROW(
        compileScaffLite("module m { qreg q[2]; cnot q[0]; }"),
        FatalError);
    EXPECT_THROW(
        compileScaffLite("module m { qreg q[2]; rz q[0]; }"),
        FatalError);
}

TEST(Qasm, ParsesSimpleProgram)
{
    Circuit c = parseOpenQasm(R"(
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[3];
        creg c[3];
        h q[0];
        u3(pi/2, 0, pi) q[1];
        cx q[0],q[2];
        barrier q;
        measure q[0] -> c[0];
    )");
    EXPECT_EQ(c.numQubits(), 3);
    EXPECT_EQ(c.gate(0).kind, GateKind::H);
    EXPECT_EQ(c.gate(1).kind, GateKind::U3);
    EXPECT_NEAR(c.gate(1).params[0], kPi / 2, 1e-12);
    EXPECT_EQ(c.gate(2).kind, GateKind::Cnot);
    EXPECT_EQ(c.gate(3).kind, GateKind::Barrier);
    EXPECT_EQ(c.measuredQubits(), (std::vector<ProgQubit>{0}));
}

TEST(Qasm, AngleArithmetic)
{
    Circuit c = parseOpenQasm(
        "OPENQASM 2.0; qreg q[1]; u1(3*pi/4) q[0]; rz(-pi/2) q[0];");
    EXPECT_NEAR(c.gate(0).params[0], 3 * kPi / 4, 1e-12);
    EXPECT_NEAR(c.gate(1).params[0], -kPi / 2, 1e-12);
}

TEST(Qasm, Rejections)
{
    EXPECT_THROW(parseOpenQasm("qreg q[2];"), FatalError);
    EXPECT_THROW(
        parseOpenQasm("OPENQASM 2.0; qreg q[1]; zz q[0];"),
        FatalError);
    EXPECT_THROW(
        parseOpenQasm("OPENQASM 2.0; qreg q[1]; x q[4];"),
        FatalError);
    EXPECT_THROW(parseOpenQasm("OPENQASM 2.0; x q[0];"), FatalError);
}

} // namespace
} // namespace triq
