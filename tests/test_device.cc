/**
 * @file
 * Unit tests for the device subsystem: topologies, gate sets,
 * calibration synthesis and the seven machine models.
 */

#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/stats.hh"
#include "device/machines.hh"

namespace triq
{
namespace
{

TEST(Topology, LineRingFullGrid)
{
    Topology line = Topology::line(5);
    EXPECT_EQ(line.numEdges(), 4);
    EXPECT_EQ(line.distance(0, 4), 4);
    EXPECT_TRUE(line.connected());

    Topology ring = Topology::ring(6);
    EXPECT_EQ(ring.numEdges(), 6);
    EXPECT_EQ(ring.distance(0, 3), 3);
    EXPECT_EQ(ring.distance(0, 5), 1);

    Topology full = Topology::full(5);
    EXPECT_TRUE(full.fullyConnected());
    EXPECT_EQ(full.numEdges(), 10);

    Topology grid = Topology::grid(3, 4);
    EXPECT_EQ(grid.numQubits(), 12);
    EXPECT_EQ(grid.numEdges(), 3 * 3 + 2 * 4);
    EXPECT_EQ(grid.distance(0, 11), 5);
}

TEST(Topology, EdgeQueriesAndDirection)
{
    Topology t(3);
    int e = t.addEdge(1, 0, true);
    EXPECT_EQ(t.edgeBetween(0, 1), e);
    EXPECT_EQ(t.edgeBetween(1, 0), e);
    EXPECT_EQ(t.edgeBetween(0, 2), -1);
    EXPECT_TRUE(t.adjacent(0, 1));
    EXPECT_FALSE(t.adjacent(1, 2));
    // Edge is directed 1 -> 0.
    EXPECT_TRUE(t.orientationNative(1, 0));
    EXPECT_FALSE(t.orientationNative(0, 1));
    EXPECT_FALSE(t.connected());
    EXPECT_EQ(t.distance(0, 2), -1);
}

TEST(Topology, RejectsBadEdges)
{
    Topology t(3);
    EXPECT_THROW(t.addEdge(0, 0), FatalError);
    EXPECT_THROW(t.addEdge(0, 5), FatalError);
    t.addEdge(0, 1);
    EXPECT_THROW(t.addEdge(1, 0), FatalError); // Duplicate.
}

TEST(GateSetTest, Describe)
{
    EXPECT_NE(GateSet::ibm().describe().find("CNOT"), std::string::npos);
    EXPECT_NE(GateSet::rigetti().describe().find("CZ"),
              std::string::npos);
    EXPECT_NE(GateSet::umd().describe().find("XX"), std::string::npos);
    EXPECT_TRUE(GateSet::ibm().virtualZ);
}

TEST(CalibrationTest, DeterministicPerDeviceDay)
{
    Device dev = makeIbmQ14();
    Calibration a = dev.calibrate(5);
    Calibration b = dev.calibrate(5);
    EXPECT_EQ(a.err2q, b.err2q);
    EXPECT_EQ(a.err1q, b.err1q);
    Calibration c = dev.calibrate(6);
    EXPECT_NE(a.err2q, c.err2q);
}

TEST(CalibrationTest, ChronicVsDriftSpatialStructure)
{
    // Superconducting devices keep their per-edge quality ordering
    // across days far more than the drift-dominated ion trap does.
    auto agreement = [](const Device &dev) {
        int agree = 0, total = 0;
        for (int day = 1; day <= 10; ++day) {
            Calibration d1 = dev.calibrate(day);
            Calibration d2 = dev.calibrate(day + 1);
            for (size_t i = 0; i < d1.err2q.size(); ++i)
                for (size_t j = i + 1; j < d1.err2q.size(); ++j) {
                    bool o1 = d1.err2q[i] < d1.err2q[j];
                    bool o2 = d2.err2q[i] < d2.err2q[j];
                    agree += o1 == o2;
                    ++total;
                }
        }
        return static_cast<double>(agree) / total;
    };
    double sc = agreement(makeIbmQ16());
    double ti = agreement(makeUmdTi());
    EXPECT_GT(sc, 0.65);
    EXPECT_GT(sc, ti + 0.05);
}

TEST(CalibrationTest, DriftDominatedReshuffles)
{
    // Trapped-ion: pair ordering decorrelates between days.
    Device dev = makeUmdTi();
    int flips = 0, total = 0;
    for (int day = 1; day < 12; ++day) {
        Calibration a = dev.calibrate(day);
        Calibration b = dev.calibrate(day + 1);
        for (size_t i = 0; i < a.err2q.size(); ++i)
            for (size_t j = i + 1; j < a.err2q.size(); ++j) {
                bool o1 = a.err2q[i] < a.err2q[j];
                bool o2 = b.err2q[i] < b.err2q[j];
                flips += o1 != o2;
                ++total;
            }
    }
    EXPECT_GT(static_cast<double>(flips) / total, 0.2);
}

TEST(CalibrationTest, MeansApproximatelyPreserved)
{
    Device dev = makeIbmQ14();
    RunningStats twoq;
    for (int day = 0; day < 60; ++day) {
        Calibration c = dev.calibrate(day);
        for (double e : c.err2q)
            twoq.push(e);
    }
    // Log-normal synthesis is mean-preserving up to clamping.
    EXPECT_NEAR(twoq.mean(), dev.noiseSpec().mean2q,
                0.3 * dev.noiseSpec().mean2q);
}

TEST(CalibrationTest, SaveLoadRoundTrip)
{
    Device dev = makeRigettiAspen1();
    Calibration c = dev.calibrate(9);
    std::stringstream ss;
    c.save(ss);
    Calibration back = Calibration::load(ss);
    EXPECT_EQ(back.numQubits, c.numQubits);
    EXPECT_EQ(back.err2q.size(), c.err2q.size());
    for (size_t i = 0; i < c.err2q.size(); ++i)
        EXPECT_DOUBLE_EQ(back.err2q[i], c.err2q[i]);
    for (size_t i = 0; i < c.errRO.size(); ++i)
        EXPECT_DOUBLE_EQ(back.errRO[i], c.errRO[i]);
    EXPECT_DOUBLE_EQ(back.durations.twoQ, c.durations.twoQ);
}

TEST(CalibrationTest, LoadRejectsGarbage)
{
    std::stringstream ss("not a calibration");
    EXPECT_THROW(Calibration::load(ss), FatalError);
}

TEST(CalibrationTest, AverageCalibrationUniform)
{
    Device dev = makeIbmQ5();
    Calibration avg = dev.averageCalibration();
    for (double e : avg.err2q)
        EXPECT_DOUBLE_EQ(e, dev.noiseSpec().mean2q);
    for (double e : avg.errRO)
        EXPECT_DOUBLE_EQ(e, dev.noiseSpec().meanRO);
}

TEST(Machines, Fig1Characteristics)
{
    auto devs = allStudyDevices();
    ASSERT_EQ(devs.size(), 7u);
    // Qubit and 2Q-gate counts straight from Fig. 1.
    const int qubits[] = {5, 14, 16, 4, 16, 16, 5};
    const int gates[] = {6, 18, 22, 3, 18, 18, 10};
    for (size_t i = 0; i < devs.size(); ++i) {
        EXPECT_EQ(devs[i].numQubits(), qubits[i]) << devs[i].name();
        EXPECT_EQ(devs[i].topology().numEdges(), gates[i])
            << devs[i].name();
        EXPECT_TRUE(devs[i].topology().connected()) << devs[i].name();
    }
    EXPECT_DOUBLE_EQ(devs[0].noiseSpec().mean2q, 0.0476);
    EXPECT_DOUBLE_EQ(devs[1].noiseSpec().mean2q, 0.0795);
    EXPECT_DOUBLE_EQ(devs[6].noiseSpec().coherenceUs, 1.5e6);
}

TEST(Machines, IbmDirectedRigettiUmdNot)
{
    for (const auto &dev : allStudyDevices()) {
        for (const auto &e : dev.topology().edges()) {
            if (dev.vendor() == Vendor::IBM)
                EXPECT_TRUE(e.directed) << dev.name();
            else
                EXPECT_FALSE(e.directed) << dev.name();
        }
    }
}

TEST(Machines, Ibmq5HasTriangles)
{
    // The bowtie supports 3-qubit benchmarks without swaps.
    Topology t = makeIbmQ5().topology();
    EXPECT_TRUE(t.adjacent(0, 1) && t.adjacent(1, 2) && t.adjacent(0, 2));
    EXPECT_TRUE(t.adjacent(2, 3) && t.adjacent(3, 4) && t.adjacent(2, 4));
}

TEST(Machines, UniqueNames)
{
    std::set<std::string> names;
    for (const auto &d : allStudyDevices())
        names.insert(d.name());
    EXPECT_EQ(names.size(), 7u);
}

TEST(Machines, Google72Grid)
{
    Device g = makeGoogle72();
    EXPECT_EQ(g.numQubits(), 72);
    EXPECT_TRUE(g.topology().connected());
}

TEST(Machines, Example8MatchesFig6Layout)
{
    Device d = makeExample8();
    EXPECT_EQ(d.numQubits(), 8);
    EXPECT_EQ(d.topology().numEdges(), 10);
    EXPECT_EQ(fig6Reliabilities().size(), 10u);
}

TEST(DeviceTest, RejectsDisconnectedTopology)
{
    Topology t(4);
    t.addEdge(0, 1);
    NoiseSpec spec{0.001, 0.01, 0.01, 100, 0.1, 0.1, {0.1, 0.3, 1.0}};
    EXPECT_THROW(Device("bad", std::move(t), GateSet::ibm(), spec),
                 FatalError);
}

} // namespace
} // namespace triq
