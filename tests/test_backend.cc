/**
 * @file
 * Backend tests: OpenQASM round-trips through the importer with the
 * same unitary; Quil and UMD assembly contain the expected directives;
 * out-of-set gates are rejected.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "core/backend.hh"
#include "core/compiler.hh"
#include "core/unitary.hh"
#include "device/machines.hh"
#include "lang/qasm_parser.hh"
#include "workloads/benchmarks.hh"

namespace triq
{
namespace
{

TEST(Backend, QasmRoundTripPreservesUnitary)
{
    Device dev = makeIbmQ5();
    Calibration calib = dev.calibrate(0);
    for (const char *bench : {"BV4", "Toffoli", "Peres"}) {
        CompileOptions opts;
        CompileResult res =
            compileForDevice(makeBenchmark(bench), dev, calib, opts);
        std::string qasm = toOpenQasm(res.hwCircuit);
        Circuit back = parseOpenQasm(qasm);
        EXPECT_EQ(back.numQubits(), res.hwCircuit.numQubits());
        EXPECT_TRUE(sameUnitary(back, res.hwCircuit)) << bench;
        EXPECT_EQ(back.measuredQubits(),
                  res.hwCircuit.measuredQubits());
    }
}

TEST(Backend, QasmHeaderAndRegisters)
{
    Circuit c(3, "demo");
    c.add(Gate::u2(0, 0.0, kPi));
    c.add(Gate::cnot(0, 1));
    c.add(Gate::measure(1));
    std::string qasm = toOpenQasm(c);
    EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(qasm.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(qasm.find("cx q[0],q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("measure q[1] -> c[1];"), std::string::npos);
}

TEST(Backend, QasmRejectsRigettiGates)
{
    Circuit c(2);
    c.add(Gate::cz(0, 1));
    EXPECT_THROW(toOpenQasm(c), FatalError);
}

TEST(Backend, QuilFormat)
{
    Circuit c(2, "q");
    c.add(Gate::rz(0, kPi / 2));
    c.add(Gate::rx(0, kPi / 2));
    c.add(Gate::cz(0, 1));
    c.add(Gate::measure(0));
    std::string quil = toQuil(c);
    EXPECT_NE(quil.find("DECLARE ro BIT[2]"), std::string::npos);
    EXPECT_NE(quil.find("RZ(1.5707963"), std::string::npos);
    EXPECT_NE(quil.find("RX(1.5707963"), std::string::npos);
    EXPECT_NE(quil.find("CZ 0 1"), std::string::npos);
    EXPECT_NE(quil.find("MEASURE 0 ro[0]"), std::string::npos);
}

TEST(Backend, QuilRejectsIbmGates)
{
    Circuit c(2);
    c.add(Gate::u2(0, 0, 0));
    EXPECT_THROW(toQuil(c), FatalError);
}

TEST(Backend, UmdAsmFormat)
{
    Circuit c(2, "ti");
    c.add(Gate::rxy(0, kPi / 2, 0.3));
    c.add(Gate::xx(0, 1, kPi / 4));
    c.add(Gate::rz(1, -kPi / 2));
    c.add(Gate::measure(1));
    std::string asm_text = toUmdAsm(c);
    EXPECT_NE(asm_text.find("ions 2"), std::string::npos);
    EXPECT_NE(asm_text.find("rxy 0"), std::string::npos);
    EXPECT_NE(asm_text.find("ms 0 1"), std::string::npos);
    EXPECT_NE(asm_text.find("detect 1"), std::string::npos);
}

TEST(Backend, DispatchByVendor)
{
    Circuit ibm(1);
    ibm.add(Gate::u1(0, 0.5));
    EXPECT_NE(emitAssembly(ibm, Vendor::IBM).find("OPENQASM"),
              std::string::npos);
    Circuit rig(1);
    rig.add(Gate::rz(0, 0.5));
    EXPECT_NE(emitAssembly(rig, Vendor::Rigetti).find("DECLARE"),
              std::string::npos);
    Circuit umd(1);
    umd.add(Gate::rz(0, 0.5));
    EXPECT_NE(emitAssembly(umd, Vendor::UMD).find("ions"),
              std::string::npos);
}

TEST(Backend, FullPipelineAssemblyParsesBack)
{
    // The compiler's emitted OpenQASM must parse back losslessly for
    // every study benchmark that fits IBMQ14.
    Device dev = makeIbmQ14();
    Calibration calib = dev.calibrate(1);
    for (const std::string &name : benchmarkNames()) {
        CompileOptions opts;
        CompileResult res =
            compileForDevice(makeBenchmark(name), dev, calib, opts);
        Circuit back = parseOpenQasm(res.assembly);
        EXPECT_EQ(back.count2q(), res.stats.twoQ) << name;
    }
}

} // namespace
} // namespace triq
