/**
 * @file
 * Tests for the ScaffLite writer round trip and the compilation
 * verification API, plus the extra workloads (Grover, GHZ).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/unitary.hh"
#include "device/machines.hh"
#include "lang/lower.hh"
#include "lang/scaff_writer.hh"
#include "sim/verify.hh"
#include "workloads/benchmarks.hh"

namespace triq
{
namespace
{

TEST(ScaffWriter, RoundTripsEveryBenchmark)
{
    for (const auto &name : benchmarkNames()) {
        Circuit original = makeBenchmark(name);
        std::string source = toScaffLite(original);
        Circuit back = compileScaffLite(source);
        EXPECT_EQ(back.numQubits(), original.numQubits()) << name;
        EXPECT_EQ(back.measuredQubits(), original.measuredQubits())
            << name;
        EXPECT_TRUE(sameUnitary(back, original)) << name << "\n"
                                                 << source;
    }
}

TEST(ScaffWriter, RoundTripsExtraWorkloads)
{
    for (const Circuit &c : {makeGrover2(), makeGhzRoundTrip(4)}) {
        Circuit back = compileScaffLite(toScaffLite(c));
        EXPECT_TRUE(sameUnitary(back, c)) << c.name();
    }
}

TEST(ScaffWriter, PiMultiplesStayExact)
{
    Circuit c(1);
    c.add(Gate::rz(0, kPi / 8));
    c.add(Gate::rx(0, -kPi / 2));
    Circuit back = compileScaffLite(toScaffLite(c));
    EXPECT_DOUBLE_EQ(back.gate(0).params[0], kPi / 8);
    EXPECT_DOUBLE_EQ(back.gate(1).params[0], -kPi / 2);
}

TEST(ScaffWriter, RejectsDeviceLevelGates)
{
    Circuit c(1);
    c.add(Gate::u2(0, 0.0, kPi));
    EXPECT_THROW(toScaffLite(c), FatalError);
    Circuit x(2);
    x.add(Gate::xx(0, 1, kPi / 4));
    EXPECT_THROW(toScaffLite(x), FatalError);
}

TEST(Verify, AcceptsEveryCompiledBenchmark)
{
    Device dev = makeIbmQ14();
    Calibration calib = dev.calibrate(2);
    for (const auto &name : benchmarkNames()) {
        Circuit program = makeBenchmark(name);
        CompileOptions opts;
        opts.emitAssembly = false;
        CompileResult res = compileForDevice(program, dev, calib, opts);
        VerificationResult v = verifyCompilation(program, res);
        EXPECT_TRUE(v.equivalent)
            << name << " maxDeviation=" << v.maxDeviation;
        EXPECT_LT(v.totalVariation, 1e-7) << name;
    }
}

TEST(Verify, DetectsCorruptedCompilation)
{
    Device dev = makeIbmQ5();
    Calibration calib = dev.calibrate(0);
    Circuit program = makeBenchmark("BV4");
    CompileOptions opts;
    opts.emitAssembly = false;
    CompileResult res = compileForDevice(program, dev, calib, opts);
    // Sabotage: flip a measured hardware qubit just before readout.
    Circuit broken(res.hwCircuit.numQubits(), "broken");
    HwQubit victim = res.hwCircuit.measuredQubits().front();
    for (const auto &g : res.hwCircuit.gates()) {
        if (g.kind == GateKind::Measure && g.qubit(0) == victim)
            broken.add(Gate::u3(victim, kPi, 0.0, kPi)); // X pulse.
        broken.add(g);
    }
    CompileResult tampered = res;
    tampered.hwCircuit = broken;
    VerificationResult v = verifyCompilation(program, tampered);
    EXPECT_FALSE(v.equivalent);
    EXPECT_GT(v.maxDeviation, 0.5);
}

TEST(Verify, RequiresMeasurement)
{
    Device dev = makeIbmQ5();
    Circuit program(2, "nomeas");
    program.add(Gate::h(0));
    CompileResult res;
    EXPECT_THROW(verifyCompilation(program, res), FatalError);
}

TEST(ExtraWorkloads, GroverFindsEveryMarkedItem)
{
    for (uint64_t marked = 0; marked < 4; ++marked)
        EXPECT_EQ(idealOutcome(makeGrover2(marked)), marked);
    EXPECT_THROW(makeGrover2(4), FatalError);
}

TEST(ExtraWorkloads, GhzRoundTripDeterministic)
{
    for (int n : {2, 3, 5})
        EXPECT_EQ(idealOutcome(makeGhzRoundTrip(n)), 1u) << n;
    EXPECT_THROW(makeGhzRoundTrip(1), FatalError);
}

TEST(ExtraWorkloads, ShippedProgramFilesCompile)
{
    // The generated .scaff files in examples/programs must stay in
    // sync with the built-in generators.
    struct Entry
    {
        const char *file;
        const char *bench;
    };
    const Entry entries[] = {
        {"examples/programs/bv4.scaff", "BV4"},
        {"examples/programs/hs4.scaff", "HS4"},
        {"examples/programs/toffoli.scaff", "Toffoli"},
        {"examples/programs/qft.scaff", "QFT"},
        {"examples/programs/adder.scaff", "Adder"},
    };
    for (const auto &e : entries) {
        Circuit from_file = [&] {
            try {
                return compileScaffLiteFile(e.file);
            } catch (const FatalError &) {
                // Running from another directory: try the source root.
                return compileScaffLiteFile(std::string(TRIQ_SOURCE_DIR) +
                                            "/" + e.file);
            }
        }();
        EXPECT_TRUE(sameUnitary(from_file, makeBenchmark(e.bench)))
            << e.file;
    }
}

} // namespace
} // namespace triq
