/**
 * @file
 * Workload tests: every study benchmark has the right size and the
 * right deterministic answer; chains alternate correctly; supremacy
 * circuits match the paper's scaling shape.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "core/decompose.hh"
#include "device/topology.hh"
#include "workloads/benchmarks.hh"
#include "workloads/supremacy.hh"

namespace triq
{
namespace
{

TEST(Benchmarks, TwelveNames)
{
    EXPECT_EQ(benchmarkNames().size(), 12u);
    for (const auto &name : benchmarkNames()) {
        Circuit c = makeBenchmark(name);
        EXPECT_EQ(c.name(), name == "QFT" ? "QFT" : c.name());
        EXPECT_GT(c.numGates(), 0) << name;
        EXPECT_FALSE(c.measuredQubits().empty()) << name;
    }
    EXPECT_THROW(makeBenchmark("nope"), FatalError);
}

TEST(Benchmarks, QubitCounts)
{
    EXPECT_EQ(makeBenchmark("BV4").numQubits(), 4);
    EXPECT_EQ(makeBenchmark("BV6").numQubits(), 6);
    EXPECT_EQ(makeBenchmark("BV8").numQubits(), 8);
    EXPECT_EQ(makeBenchmark("HS2").numQubits(), 2);
    EXPECT_EQ(makeBenchmark("HS4").numQubits(), 4);
    EXPECT_EQ(makeBenchmark("HS6").numQubits(), 6);
    EXPECT_EQ(makeBenchmark("Toffoli").numQubits(), 3);
    EXPECT_EQ(makeBenchmark("Fredkin").numQubits(), 3);
    EXPECT_EQ(makeBenchmark("Or").numQubits(), 3);
    EXPECT_EQ(makeBenchmark("Peres").numQubits(), 3);
    EXPECT_EQ(makeBenchmark("QFT").numQubits(), 4);
    EXPECT_EQ(makeBenchmark("Adder").numQubits(), 4);
}

TEST(Benchmarks, BvRecoversHiddenString)
{
    for (uint64_t hidden : {0b101ull, 0b111ull, 0b010ull, 0b001ull})
        EXPECT_EQ(idealOutcome(makeBV(4, hidden)), hidden)
            << "hidden=" << hidden;
    // Default hidden string is all-ones (star interaction shape).
    EXPECT_EQ(idealOutcome(makeBV(6)), 0b11111u);
    Circuit bv = decomposeToCnotBasis(makeBV(6));
    EXPECT_EQ(bv.count2q(), 5);
}

TEST(Benchmarks, HiddenShiftRecoversShift)
{
    for (uint64_t shift : {0b1111ull, 0b0110ull, 0b1001ull, 0b0000ull})
        EXPECT_EQ(idealOutcome(makeHiddenShift(4, shift)), shift)
            << "shift=" << shift;
    EXPECT_EQ(idealOutcome(makeHiddenShift(6)), 0b111111u);
    // Disjoint 2-qubit edges: n/2 distinct interacting pairs.
    Circuit hs = makeHiddenShift(6);
    int czs = hs.countIf(
        [](const Gate &g) { return g.kind == GateKind::Cz; });
    EXPECT_EQ(czs, 6); // Two oracle layers of 3 pairs.
}

TEST(Benchmarks, LogicGateAnswers)
{
    EXPECT_EQ(idealOutcome(makeToffoli()), 0b111u);
    EXPECT_EQ(idealOutcome(makeFredkin()), 0b101u);
    EXPECT_EQ(idealOutcome(makeOr()), 0b101u);   // a=1, b=0, or=1.
    EXPECT_EQ(idealOutcome(makePeres()), 0b101u); // a=1, b->0, c->1.
}

TEST(Benchmarks, AdderComputesSumAndCarry)
{
    // a=1, b=1, cin=0: sum=0 (qubit 1), carry=1 (qubit 3), a restored.
    uint64_t out = idealOutcome(makeAdder());
    EXPECT_EQ(out, 0b1100u);
}

TEST(Benchmarks, QftRoundTrip)
{
    for (uint64_t x : {0b0101ull, 0b1111ull, 0b0010ull})
        EXPECT_EQ(idealOutcome(makeQft(4, x)), x);
    EXPECT_EQ(idealOutcome(makeQft(3, 0b110)), 0b110u);
}

TEST(Benchmarks, QftGateCount)
{
    // n(n-1)/2 controlled-phase gates per direction.
    Circuit q = qftCircuit(5);
    int cps = q.countIf(
        [](const Gate &g) { return g.kind == GateKind::Cphase; });
    EXPECT_EQ(cps, 10);
}

class ChainLength : public ::testing::TestWithParam<int>
{
};

TEST_P(ChainLength, ToffoliParity)
{
    int k = GetParam();
    uint64_t out = idealOutcome(makeToffoliChain(k));
    // Controls stay 11; the target toggles k times.
    EXPECT_EQ(out & 0b11u, 0b11u);
    EXPECT_EQ((out >> 2) & 1, static_cast<uint64_t>(k % 2));
}

TEST_P(ChainLength, FredkinAlternates)
{
    int k = GetParam();
    uint64_t out = idealOutcome(makeFredkinChain(k));
    // Control stays 1; (a, b) = (1, 0) swaps each iteration.
    EXPECT_EQ(out & 1u, 1u);
    uint64_t a = (out >> 1) & 1, b = (out >> 2) & 1;
    if (k % 2 == 1) {
        EXPECT_EQ(a, 0u);
        EXPECT_EQ(b, 1u);
    } else {
        EXPECT_EQ(a, 1u);
        EXPECT_EQ(b, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Lengths, ChainLength, ::testing::Range(1, 9));

TEST(Benchmarks, InvalidSizesRejected)
{
    EXPECT_THROW(makeBV(1), FatalError);
    EXPECT_THROW(makeHiddenShift(3), FatalError);
    EXPECT_THROW(makeToffoliChain(0), FatalError);
    EXPECT_THROW(makeFredkinChain(-1), FatalError);
}

TEST(Supremacy, PaperScaleGateCount)
{
    // 72 qubits, depth 128: about 2032 2Q gates in the paper.
    Circuit c = makeSupremacy(6, 12, 128, 1);
    EXPECT_EQ(c.numQubits(), 72);
    EXPECT_NEAR(c.count2q(), 2032, 100);
    EXPECT_EQ(c.measuredQubits().size(), 72u);
}

TEST(Supremacy, DeterministicPerSeed)
{
    Circuit a = makeSupremacy(4, 4, 16, 7);
    Circuit b = makeSupremacy(4, 4, 16, 7);
    ASSERT_EQ(a.numGates(), b.numGates());
    for (int i = 0; i < a.numGates(); ++i)
        EXPECT_TRUE(a.gate(i) == b.gate(i));
    Circuit c = makeSupremacy(4, 4, 16, 8);
    bool same = a.numGates() == c.numGates();
    if (same)
        for (int i = 0; i < a.numGates(); ++i)
            same = same && a.gate(i) == c.gate(i);
    EXPECT_FALSE(same);
}

TEST(Supremacy, CzPatternsTouchAllEdgesOverTime)
{
    Circuit c = makeSupremacy(4, 4, 16, 3, false);
    Topology grid = Topology::grid(4, 4);
    std::set<int> used;
    for (const auto &g : c.gates())
        if (g.kind == GateKind::Cz) {
            int e = grid.edgeBetween(g.qubit(0), g.qubit(1));
            ASSERT_NE(e, -1) << "CZ off the grid: " << g.str();
            used.insert(e);
        }
    EXPECT_EQ(static_cast<int>(used.size()), grid.numEdges());
}

TEST(Supremacy, NoRepeated1qOnSameQubit)
{
    // The generator avoids the same random 1Q gate twice in a row on a
    // qubit (Google construction).
    Circuit c = makeSupremacy(3, 3, 24, 5, false);
    std::vector<GateKind> last(9, GateKind::Barrier);
    std::vector<double> lastp(9, -99);
    for (const auto &g : c.gates()) {
        if (!isOneQubitGate(g.kind) || g.kind == GateKind::H)
            continue;
        int q = g.qubit(0);
        bool same = g.kind == last[static_cast<size_t>(q)] &&
                    std::abs(g.params[0] -
                             lastp[static_cast<size_t>(q)]) < 1e-12;
        EXPECT_FALSE(same) << g.str();
        last[static_cast<size_t>(q)] = g.kind;
        lastp[static_cast<size_t>(q)] = g.params[0];
    }
}

} // namespace
} // namespace triq
