/**
 * @file
 * Crash-report bundles: round-trip fidelity of CrashBundle write/load,
 * and the end-to-end contract — a triqc invocation that hits an
 * internal error (deterministically injected via TRIQ_FAULT=panic)
 * dumps a bundle, and `triqc --replay <dir>` reproduces the exact
 * invocation from that one artifact.
 *
 * The end-to-end cases drive the real triqc binary (path baked in as
 * TRIQ_TRIQC_PATH) through std::system, because the contract under
 * test is the process-level one: exit codes, files on disk, and
 * byte-identical assembly between a replay and a direct run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "core/crash_report.hh"
#include "device/machines.hh"
#include "service/server.hh"

using namespace triq;
namespace fs = std::filesystem;

namespace
{

/** Fresh scratch directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        std::string tmpl =
            (fs::temp_directory_path() / "triq_crash_XXXXXX").string();
        char *made = mkdtemp(tmpl.data());
        if (!made)
            throw std::runtime_error("mkdtemp failed");
        path = made;
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
calText(const Calibration &c)
{
    std::ostringstream os;
    c.save(os);
    return os.str();
}

#ifdef TRIQ_TRIQC_PATH
/** Run a shell command; returns the process exit code. */
int
runCmd(const std::string &cmd)
{
    int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}
#endif

} // namespace

TEST(CrashReport, BundleRoundTripsEveryField)
{
    Device dev = allStudyDevices().front();

    CrashBundle b;
    b.programText = "qreg q[3];\nX q[0];\nCNOT q[0], q[1];\n";
    b.hasProgram = true;
    b.qasm = true;
    b.device = dev.name();
    b.day = 7;
    b.calibration = dev.calibrate(7);
    b.hasCalibration = true;
    b.level = "c";
    b.mapper = "greedy";
    b.peephole = true;
    b.strictCalibration = true;
    b.budgetMs = 250.5;
    b.nodeBudget = 12345;
    b.seed = 0xDEADBEEFull;
    b.trials = 777;
    b.simThreads = 3;
    b.simFusion = -1;
    b.error = "test panic message";

    TempDir tmp;
    std::string dir = (tmp.path / "bundle").string();
    b.write(dir);

    for (const char *f :
         {"program.txt", "calibration.txt", "options.txt", "error.txt"})
        EXPECT_TRUE(fs::exists(fs::path(dir) / f)) << f;
    EXPECT_NE(slurp(fs::path(dir) / "error.txt").find("test panic"),
              std::string::npos);

    CrashBundle r = CrashBundle::load(dir);
    EXPECT_EQ(r.programText, b.programText);
    EXPECT_TRUE(r.hasProgram);
    EXPECT_EQ(r.qasm, b.qasm);
    EXPECT_EQ(r.device, b.device);
    EXPECT_EQ(r.day, b.day);
    EXPECT_TRUE(r.hasCalibration);
    EXPECT_EQ(calText(r.calibration), calText(b.calibration));
    EXPECT_EQ(r.level, b.level);
    EXPECT_EQ(r.mapper, b.mapper);
    EXPECT_EQ(r.peephole, b.peephole);
    EXPECT_EQ(r.strictCalibration, b.strictCalibration);
    EXPECT_DOUBLE_EQ(r.budgetMs, b.budgetMs);
    EXPECT_EQ(r.nodeBudget, b.nodeBudget);
    EXPECT_EQ(r.seed, b.seed);
    EXPECT_EQ(r.trials, b.trials);
    EXPECT_EQ(r.simThreads, b.simThreads);
    EXPECT_EQ(r.simFusion, b.simFusion);
}

TEST(CrashReport, BenchOnlyBundleOmitsProgramFile)
{
    CrashBundle b;
    b.benchName = "BV4";
    b.error = "boom";

    TempDir tmp;
    std::string dir = (tmp.path / "bundle").string();
    b.write(dir);
    EXPECT_FALSE(fs::exists(fs::path(dir) / "program.txt"));
    EXPECT_FALSE(fs::exists(fs::path(dir) / "calibration.txt"));

    CrashBundle r = CrashBundle::load(dir);
    EXPECT_EQ(r.benchName, "BV4");
    EXPECT_FALSE(r.hasProgram);
    EXPECT_FALSE(r.hasCalibration);
}

TEST(CrashReport, RequestIdEnvAndSchedContextRoundTrip)
{
    // The server-mode fields: a daemon bundle is tagged with the
    // request id, the TRIQ_* environment at crash time, and the
    // scheduler decision in force — everything `triqc --replay` needs
    // to reproduce a server-side run outside the server.
    CrashBundle b;
    b.benchName = "BV4";
    b.requestId = "c3-r17";
    b.envKnobs = {"TRIQ_CACHE=1", "TRIQ_SWEEP_THREADS=4"};
    b.schedMode = "threaded";
    b.schedThreads = 4;
    b.schedItemsPerTask = 8;
    b.error = "boom";

    TempDir tmp;
    std::string dir = (tmp.path / "bundle").string();
    b.write(dir);

    std::string env = slurp(fs::path(dir) / "environment.txt");
    EXPECT_NE(env.find("TRIQ_CACHE=1"), std::string::npos) << env;
    EXPECT_NE(env.find("TRIQ_SWEEP_THREADS=4"), std::string::npos);

    CrashBundle r = CrashBundle::load(dir);
    EXPECT_EQ(r.requestId, "c3-r17");
    EXPECT_EQ(r.envKnobs, b.envKnobs);
    EXPECT_EQ(r.schedMode, "threaded");
    EXPECT_EQ(r.schedThreads, 4);
    EXPECT_EQ(r.schedItemsPerTask, 8);
}

TEST(CrashReport, CliBundlesOmitServerOnlyFields)
{
    // A plain CLI bundle has no request id, env capture or sched
    // decision; neither file section may appear, and loading one in a
    // newer build leaves the fields at their defaults.
    CrashBundle b;
    b.benchName = "BV4";
    b.error = "boom";

    TempDir tmp;
    std::string dir = (tmp.path / "bundle").string();
    b.write(dir);
    EXPECT_FALSE(fs::exists(fs::path(dir) / "environment.txt"));
    EXPECT_EQ(slurp(fs::path(dir) / "options.txt").find("request_id"),
              std::string::npos);

    CrashBundle r = CrashBundle::load(dir);
    EXPECT_TRUE(r.requestId.empty());
    EXPECT_TRUE(r.envKnobs.empty());
    EXPECT_TRUE(r.schedMode.empty());
}

TEST(CrashReport, CaptureTriqEnvSeesOnlyTriqKnobs)
{
    ASSERT_EQ(setenv("TRIQ_TEST_CAPTURE_KNOB", "abc", 1), 0);
    ASSERT_EQ(setenv("NOT_TRIQ_TEST_KNOB", "zzz", 1), 0);
    std::vector<std::string> knobs = captureTriqEnv();
    unsetenv("TRIQ_TEST_CAPTURE_KNOB");
    unsetenv("NOT_TRIQ_TEST_KNOB");

    bool saw_triq = false;
    for (const std::string &kv : knobs) {
        EXPECT_EQ(kv.rfind("TRIQ_", 0), 0u) << kv;
        if (kv == "TRIQ_TEST_CAPTURE_KNOB=abc")
            saw_triq = true;
    }
    EXPECT_TRUE(saw_triq);
    EXPECT_TRUE(std::is_sorted(knobs.begin(), knobs.end()));
}

TEST(CrashReport, ApplyTriqEnvSetsKnobsButNeverRearmsFaults)
{
    unsetenv("TRIQ_FAULT");
    unsetenv("TRIQ_FAULT_SEED");
    unsetenv("TRIQ_TEST_APPLY_KNOB");

    // The bundle's inputs are post-injection, so re-applying the fault
    // knobs would inject twice on replay; they are skipped by contract.
    int applied = applyTriqEnv({"TRIQ_TEST_APPLY_KNOB=42",
                                "TRIQ_FAULT=panic", "TRIQ_FAULT_SEED=3",
                                "malformed-no-equals", "=no-name"});
    EXPECT_EQ(applied, 1);
    const char *v = getenv("TRIQ_TEST_APPLY_KNOB");
    ASSERT_TRUE(v);
    EXPECT_STREQ(v, "42");
    EXPECT_EQ(getenv("TRIQ_FAULT"), nullptr);
    EXPECT_EQ(getenv("TRIQ_FAULT_SEED"), nullptr);
    unsetenv("TRIQ_TEST_APPLY_KNOB");
}

TEST(CrashReport, LoadRejectsMissingOrEmptyBundles)
{
    TempDir tmp;
    EXPECT_THROW(CrashBundle::load((tmp.path / "nope").string()),
                 FatalError);

    // A directory whose options.txt names no program source at all is
    // not replayable and must be rejected, not half-loaded.
    fs::path dir = tmp.path / "empty";
    fs::create_directories(dir);
    std::ofstream(dir / "options.txt") << "device=IBMQ5\n";
    EXPECT_THROW(CrashBundle::load(dir.string()), FatalError);
}

TEST(CrashReport, DefaultDirNamesThisProcess)
{
    std::string dir = defaultCrashDir();
    EXPECT_EQ(dir.rfind("triq-crash-", 0), 0u) << dir;
    EXPECT_GT(dir.size(), std::string("triq-crash-").size());
}

TEST(CrashReport, ResolveCrashDirProbesMonotonicSuffixes)
{
    TempDir tmp;
    std::string base = (tmp.path / "triq-crash-42").string();

    // Free name: used verbatim.
    EXPECT_EQ(resolveCrashDir(base), base);

    // Occupied (a recycled PID's bundle): first free suffix, never the
    // base itself — earlier evidence is sacred.
    fs::create_directories(base);
    EXPECT_EQ(resolveCrashDir(base), base + ".1");
    fs::create_directories(base + ".1");
    fs::create_directories(base + ".2");
    EXPECT_EQ(resolveCrashDir(base), base + ".3");

    // A plain *file* squatting the name also counts as a collision.
    std::string file_base = (tmp.path / "squatted").string();
    std::ofstream(file_base) << "not a directory";
    EXPECT_EQ(resolveCrashDir(file_base), file_base + ".1");
}

#ifdef TRIQ_TRIQC_PATH

TEST(CrashReport, PanicDumpsBundleAndReplayReproducesAssembly)
{
    TempDir tmp;
    std::string bundle = (tmp.path / "bundle").string();
    std::string scaff =
        std::string(TRIQ_SOURCE_DIR) + "/examples/programs/qft.scaff";
    std::string common = " -d IBMQ14 -O cn -m greedy --day 3 --peephole ";

    // 1. Injected internal fault: exit code 2 (TriQ bug), bundle on disk.
    int rc = runCmd("TRIQ_FAULT=panic " TRIQ_TRIQC_PATH + common + scaff +
                    " --crash-dir " + bundle + " -o /dev/null 2>/dev/null");
    EXPECT_EQ(rc, 2);
    ASSERT_TRUE(fs::is_directory(bundle));
    for (const char *f :
         {"program.txt", "calibration.txt", "options.txt", "error.txt"})
        EXPECT_TRUE(fs::exists(fs::path(bundle) / f)) << f;
    EXPECT_NE(slurp(fs::path(bundle) / "error.txt").find("injected"),
              std::string::npos);
    EXPECT_EQ(slurp(fs::path(bundle) / "program.txt"), slurp(scaff));

    // 2. Replay from the bundle alone (no flags, no TRIQ_FAULT):
    //    compiles cleanly and emits assembly.
    std::string replay_out = (tmp.path / "replay.s").string();
    rc = runCmd(std::string(TRIQ_TRIQC_PATH) + " --replay " + bundle +
                " -o " + replay_out + " 2>/dev/null");
    EXPECT_EQ(rc, 0);

    // 3. The replay must be byte-identical to a direct run with the
    //    original flags — the bundle captured the whole invocation.
    std::string direct_out = (tmp.path / "direct.s").string();
    rc = runCmd(std::string(TRIQ_TRIQC_PATH) + common + scaff + " -o " +
                direct_out + " 2>/dev/null");
    EXPECT_EQ(rc, 0);
    EXPECT_EQ(slurp(replay_out), slurp(direct_out));
    EXPECT_FALSE(slurp(replay_out).empty());
}

TEST(CrashReport, CleanRunLeavesNoBundle)
{
    TempDir tmp;
    std::string bundle = (tmp.path / "bundle").string();
    int rc = runCmd(std::string(TRIQ_TRIQC_PATH) +
                    " --bench BV4 -d IBMQ5 --crash-dir " + bundle +
                    " -o /dev/null 2>/dev/null");
    EXPECT_EQ(rc, 0);
    EXPECT_FALSE(fs::exists(bundle));
}

TEST(CrashReport, SecondCrashDoesNotOverwriteFirstBundle)
{
    TempDir tmp;
    std::string bundle = (tmp.path / "bundle").string();
    std::string crash_cmd = "TRIQ_FAULT=panic " TRIQ_TRIQC_PATH
                            " --bench BV4 -d IBMQ5 --crash-dir " +
                            bundle + " -o /dev/null 2>/dev/null";

    ASSERT_EQ(runCmd(crash_cmd), 2);
    ASSERT_TRUE(fs::is_directory(bundle));
    std::string first_error = slurp(fs::path(bundle) / "error.txt");

    // Same directory requested again (a recycled PID / rerun in the
    // same cwd): the new bundle lands beside the old one, suffixed.
    ASSERT_EQ(runCmd(crash_cmd), 2);
    EXPECT_TRUE(fs::is_directory(bundle + ".1"));
    EXPECT_TRUE(fs::exists(fs::path(bundle + ".1") / "error.txt"));
    EXPECT_EQ(slurp(fs::path(bundle) / "error.txt"), first_error);
}

TEST(CrashReport, ReplayOfBenchBundleMatchesDirectRun)
{
    TempDir tmp;
    std::string bundle = (tmp.path / "bundle").string();
    int rc = runCmd("TRIQ_FAULT=panic " TRIQ_TRIQC_PATH
                    " --bench Toffoli -d UMDTI -O 1q --crash-dir " +
                    bundle + " -o /dev/null 2>/dev/null");
    EXPECT_EQ(rc, 2);
    ASSERT_TRUE(fs::is_directory(bundle));
    EXPECT_FALSE(fs::exists(fs::path(bundle) / "program.txt"));

    std::string replay_out = (tmp.path / "replay.s").string();
    rc = runCmd(std::string(TRIQ_TRIQC_PATH) + " --replay " + bundle +
                " -o " + replay_out + " 2>/dev/null");
    EXPECT_EQ(rc, 0);

    std::string direct_out = (tmp.path / "direct.s").string();
    rc = runCmd(std::string(TRIQ_TRIQC_PATH) +
                " --bench Toffoli -d UMDTI -O 1q -o " + direct_out +
                " 2>/dev/null");
    EXPECT_EQ(rc, 0);
    EXPECT_EQ(slurp(replay_out), slurp(direct_out));
    EXPECT_FALSE(slurp(replay_out).empty());
}

TEST(CrashReport, ServerModeBundleReplaysThroughTriqc)
{
    // The full server-mode loop: a panicking daemon request dumps a
    // bundle tagged with its request id, and that bundle alone —
    // handed to the ordinary CLI on another machine, as it were —
    // reproduces the compile cleanly.
    TempDir tmp;
    ServerConfig cfg;
    cfg.crashDir = (tmp.path / "server-crash").string();
    Server server(std::move(cfg));

    std::string reply = server.processLine(
        "t", "{\"id\":\"replay-me\",\"op\":\"compile\",\"bench\":\"BV4\","
             "\"device\":\"IBMQ5\",\"fault\":\"panic\"}");
    JsonParseResult r = parseJson(reply);
    ASSERT_TRUE(r.ok) << reply;
    const JsonValue *err = r.value.find("error");
    ASSERT_TRUE(err) << reply;
    std::string bundle = err->getString("crash_dir");
    ASSERT_TRUE(fs::is_directory(bundle)) << reply;
    EXPECT_NE(slurp(fs::path(bundle) / "options.txt")
                  .find("request_id=replay-me"),
              std::string::npos);

    std::string replay_out = (tmp.path / "replay.s").string();
    int rc = runCmd(std::string(TRIQ_TRIQC_PATH) + " --replay " + bundle +
                    " -o " + replay_out + " 2>/dev/null");
    EXPECT_EQ(rc, 0);
    EXPECT_FALSE(slurp(replay_out).empty());
}

#endif // TRIQ_TRIQC_PATH
