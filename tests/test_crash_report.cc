/**
 * @file
 * Crash-report bundles: round-trip fidelity of CrashBundle write/load,
 * and the end-to-end contract — a triqc invocation that hits an
 * internal error (deterministically injected via TRIQ_FAULT=panic)
 * dumps a bundle, and `triqc --replay <dir>` reproduces the exact
 * invocation from that one artifact.
 *
 * The end-to-end cases drive the real triqc binary (path baked in as
 * TRIQ_TRIQC_PATH) through std::system, because the contract under
 * test is the process-level one: exit codes, files on disk, and
 * byte-identical assembly between a replay and a direct run.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "core/crash_report.hh"
#include "device/machines.hh"

using namespace triq;
namespace fs = std::filesystem;

namespace
{

/** Fresh scratch directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        std::string tmpl =
            (fs::temp_directory_path() / "triq_crash_XXXXXX").string();
        char *made = mkdtemp(tmpl.data());
        if (!made)
            throw std::runtime_error("mkdtemp failed");
        path = made;
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
calText(const Calibration &c)
{
    std::ostringstream os;
    c.save(os);
    return os.str();
}

#ifdef TRIQ_TRIQC_PATH
/** Run a shell command; returns the process exit code. */
int
runCmd(const std::string &cmd)
{
    int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}
#endif

} // namespace

TEST(CrashReport, BundleRoundTripsEveryField)
{
    Device dev = allStudyDevices().front();

    CrashBundle b;
    b.programText = "qreg q[3];\nX q[0];\nCNOT q[0], q[1];\n";
    b.hasProgram = true;
    b.qasm = true;
    b.device = dev.name();
    b.day = 7;
    b.calibration = dev.calibrate(7);
    b.hasCalibration = true;
    b.level = "c";
    b.mapper = "greedy";
    b.peephole = true;
    b.strictCalibration = true;
    b.budgetMs = 250.5;
    b.nodeBudget = 12345;
    b.seed = 0xDEADBEEFull;
    b.trials = 777;
    b.simThreads = 3;
    b.simFusion = -1;
    b.error = "test panic message";

    TempDir tmp;
    std::string dir = (tmp.path / "bundle").string();
    b.write(dir);

    for (const char *f :
         {"program.txt", "calibration.txt", "options.txt", "error.txt"})
        EXPECT_TRUE(fs::exists(fs::path(dir) / f)) << f;
    EXPECT_NE(slurp(fs::path(dir) / "error.txt").find("test panic"),
              std::string::npos);

    CrashBundle r = CrashBundle::load(dir);
    EXPECT_EQ(r.programText, b.programText);
    EXPECT_TRUE(r.hasProgram);
    EXPECT_EQ(r.qasm, b.qasm);
    EXPECT_EQ(r.device, b.device);
    EXPECT_EQ(r.day, b.day);
    EXPECT_TRUE(r.hasCalibration);
    EXPECT_EQ(calText(r.calibration), calText(b.calibration));
    EXPECT_EQ(r.level, b.level);
    EXPECT_EQ(r.mapper, b.mapper);
    EXPECT_EQ(r.peephole, b.peephole);
    EXPECT_EQ(r.strictCalibration, b.strictCalibration);
    EXPECT_DOUBLE_EQ(r.budgetMs, b.budgetMs);
    EXPECT_EQ(r.nodeBudget, b.nodeBudget);
    EXPECT_EQ(r.seed, b.seed);
    EXPECT_EQ(r.trials, b.trials);
    EXPECT_EQ(r.simThreads, b.simThreads);
    EXPECT_EQ(r.simFusion, b.simFusion);
}

TEST(CrashReport, BenchOnlyBundleOmitsProgramFile)
{
    CrashBundle b;
    b.benchName = "BV4";
    b.error = "boom";

    TempDir tmp;
    std::string dir = (tmp.path / "bundle").string();
    b.write(dir);
    EXPECT_FALSE(fs::exists(fs::path(dir) / "program.txt"));
    EXPECT_FALSE(fs::exists(fs::path(dir) / "calibration.txt"));

    CrashBundle r = CrashBundle::load(dir);
    EXPECT_EQ(r.benchName, "BV4");
    EXPECT_FALSE(r.hasProgram);
    EXPECT_FALSE(r.hasCalibration);
}

TEST(CrashReport, LoadRejectsMissingOrEmptyBundles)
{
    TempDir tmp;
    EXPECT_THROW(CrashBundle::load((tmp.path / "nope").string()),
                 FatalError);

    // A directory whose options.txt names no program source at all is
    // not replayable and must be rejected, not half-loaded.
    fs::path dir = tmp.path / "empty";
    fs::create_directories(dir);
    std::ofstream(dir / "options.txt") << "device=IBMQ5\n";
    EXPECT_THROW(CrashBundle::load(dir.string()), FatalError);
}

TEST(CrashReport, DefaultDirNamesThisProcess)
{
    std::string dir = defaultCrashDir();
    EXPECT_EQ(dir.rfind("triq-crash-", 0), 0u) << dir;
    EXPECT_GT(dir.size(), std::string("triq-crash-").size());
}

TEST(CrashReport, ResolveCrashDirProbesMonotonicSuffixes)
{
    TempDir tmp;
    std::string base = (tmp.path / "triq-crash-42").string();

    // Free name: used verbatim.
    EXPECT_EQ(resolveCrashDir(base), base);

    // Occupied (a recycled PID's bundle): first free suffix, never the
    // base itself — earlier evidence is sacred.
    fs::create_directories(base);
    EXPECT_EQ(resolveCrashDir(base), base + ".1");
    fs::create_directories(base + ".1");
    fs::create_directories(base + ".2");
    EXPECT_EQ(resolveCrashDir(base), base + ".3");

    // A plain *file* squatting the name also counts as a collision.
    std::string file_base = (tmp.path / "squatted").string();
    std::ofstream(file_base) << "not a directory";
    EXPECT_EQ(resolveCrashDir(file_base), file_base + ".1");
}

#ifdef TRIQ_TRIQC_PATH

TEST(CrashReport, PanicDumpsBundleAndReplayReproducesAssembly)
{
    TempDir tmp;
    std::string bundle = (tmp.path / "bundle").string();
    std::string scaff =
        std::string(TRIQ_SOURCE_DIR) + "/examples/programs/qft.scaff";
    std::string common = " -d IBMQ14 -O cn -m greedy --day 3 --peephole ";

    // 1. Injected internal fault: exit code 2 (TriQ bug), bundle on disk.
    int rc = runCmd("TRIQ_FAULT=panic " TRIQ_TRIQC_PATH + common + scaff +
                    " --crash-dir " + bundle + " -o /dev/null 2>/dev/null");
    EXPECT_EQ(rc, 2);
    ASSERT_TRUE(fs::is_directory(bundle));
    for (const char *f :
         {"program.txt", "calibration.txt", "options.txt", "error.txt"})
        EXPECT_TRUE(fs::exists(fs::path(bundle) / f)) << f;
    EXPECT_NE(slurp(fs::path(bundle) / "error.txt").find("injected"),
              std::string::npos);
    EXPECT_EQ(slurp(fs::path(bundle) / "program.txt"), slurp(scaff));

    // 2. Replay from the bundle alone (no flags, no TRIQ_FAULT):
    //    compiles cleanly and emits assembly.
    std::string replay_out = (tmp.path / "replay.s").string();
    rc = runCmd(std::string(TRIQ_TRIQC_PATH) + " --replay " + bundle +
                " -o " + replay_out + " 2>/dev/null");
    EXPECT_EQ(rc, 0);

    // 3. The replay must be byte-identical to a direct run with the
    //    original flags — the bundle captured the whole invocation.
    std::string direct_out = (tmp.path / "direct.s").string();
    rc = runCmd(std::string(TRIQ_TRIQC_PATH) + common + scaff + " -o " +
                direct_out + " 2>/dev/null");
    EXPECT_EQ(rc, 0);
    EXPECT_EQ(slurp(replay_out), slurp(direct_out));
    EXPECT_FALSE(slurp(replay_out).empty());
}

TEST(CrashReport, CleanRunLeavesNoBundle)
{
    TempDir tmp;
    std::string bundle = (tmp.path / "bundle").string();
    int rc = runCmd(std::string(TRIQ_TRIQC_PATH) +
                    " --bench BV4 -d IBMQ5 --crash-dir " + bundle +
                    " -o /dev/null 2>/dev/null");
    EXPECT_EQ(rc, 0);
    EXPECT_FALSE(fs::exists(bundle));
}

TEST(CrashReport, SecondCrashDoesNotOverwriteFirstBundle)
{
    TempDir tmp;
    std::string bundle = (tmp.path / "bundle").string();
    std::string crash_cmd = "TRIQ_FAULT=panic " TRIQ_TRIQC_PATH
                            " --bench BV4 -d IBMQ5 --crash-dir " +
                            bundle + " -o /dev/null 2>/dev/null";

    ASSERT_EQ(runCmd(crash_cmd), 2);
    ASSERT_TRUE(fs::is_directory(bundle));
    std::string first_error = slurp(fs::path(bundle) / "error.txt");

    // Same directory requested again (a recycled PID / rerun in the
    // same cwd): the new bundle lands beside the old one, suffixed.
    ASSERT_EQ(runCmd(crash_cmd), 2);
    EXPECT_TRUE(fs::is_directory(bundle + ".1"));
    EXPECT_TRUE(fs::exists(fs::path(bundle + ".1") / "error.txt"));
    EXPECT_EQ(slurp(fs::path(bundle) / "error.txt"), first_error);
}

TEST(CrashReport, ReplayOfBenchBundleMatchesDirectRun)
{
    TempDir tmp;
    std::string bundle = (tmp.path / "bundle").string();
    int rc = runCmd("TRIQ_FAULT=panic " TRIQ_TRIQC_PATH
                    " --bench Toffoli -d UMDTI -O 1q --crash-dir " +
                    bundle + " -o /dev/null 2>/dev/null");
    EXPECT_EQ(rc, 2);
    ASSERT_TRUE(fs::is_directory(bundle));
    EXPECT_FALSE(fs::exists(fs::path(bundle) / "program.txt"));

    std::string replay_out = (tmp.path / "replay.s").string();
    rc = runCmd(std::string(TRIQ_TRIQC_PATH) + " --replay " + bundle +
                " -o " + replay_out + " 2>/dev/null");
    EXPECT_EQ(rc, 0);

    std::string direct_out = (tmp.path / "direct.s").string();
    rc = runCmd(std::string(TRIQ_TRIQC_PATH) +
                " --bench Toffoli -d UMDTI -O 1q -o " + direct_out +
                " 2>/dev/null");
    EXPECT_EQ(rc, 0);
    EXPECT_EQ(slurp(replay_out), slurp(direct_out));
    EXPECT_FALSE(slurp(replay_out).empty());
}

#endif // TRIQ_TRIQC_PATH
