/**
 * @file
 * Unit tests for the gate IR: Gate properties, Circuit bookkeeping and
 * the dependency DAG.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/circuit.hh"

namespace triq
{
namespace
{

TEST(GateTest, ArityAndParams)
{
    EXPECT_EQ(gateArity(GateKind::H), 1);
    EXPECT_EQ(gateArity(GateKind::Cnot), 2);
    EXPECT_EQ(gateArity(GateKind::Ccx), 3);
    EXPECT_EQ(gateArity(GateKind::Barrier), 0);
    EXPECT_EQ(gateNumParams(GateKind::U3), 3);
    EXPECT_EQ(gateNumParams(GateKind::Rxy), 2);
    EXPECT_EQ(gateNumParams(GateKind::Rz), 1);
    EXPECT_EQ(gateNumParams(GateKind::X), 0);
}

TEST(GateTest, Predicates)
{
    EXPECT_TRUE(isOneQubitGate(GateKind::U2));
    EXPECT_FALSE(isOneQubitGate(GateKind::Measure));
    EXPECT_TRUE(isTwoQubitGate(GateKind::Xx));
    EXPECT_TRUE(isCompositeGate(GateKind::Cswap));
    EXPECT_FALSE(isUnitaryGate(GateKind::Measure));
    EXPECT_FALSE(isUnitaryGate(GateKind::Barrier));
    for (GateKind k : {GateKind::Z, GateKind::S, GateKind::Sdg,
                       GateKind::T, GateKind::Tdg, GateKind::Rz,
                       GateKind::U1})
        EXPECT_TRUE(isVirtualZGate(k)) << gateName(k);
    EXPECT_FALSE(isVirtualZGate(GateKind::U2));
    EXPECT_FALSE(isVirtualZGate(GateKind::X));
}

TEST(GateTest, ConstructorsAndStr)
{
    Gate g = Gate::cnot(1, 3);
    EXPECT_EQ(g.qubit(0), 1);
    EXPECT_EQ(g.qubit(1), 3);
    EXPECT_TRUE(g.actsOn(3));
    EXPECT_FALSE(g.actsOn(2));
    EXPECT_EQ(g.str(), "cnot q1, q3");
    EXPECT_EQ(Gate::rz(0, kPi / 2).str(), "rz(1.5708) q0");
    EXPECT_THROW(g.qubit(2), PanicError);
}

TEST(GateTest, DuplicateOperandRejected)
{
    EXPECT_THROW(Gate::cnot(2, 2), FatalError);
    EXPECT_THROW(Gate::ccx(0, 1, 1), FatalError);
}

TEST(GateTest, Equality)
{
    EXPECT_TRUE(Gate::rz(1, 0.5) == Gate::rz(1, 0.5));
    EXPECT_FALSE(Gate::rz(1, 0.5) == Gate::rz(1, 0.6));
    EXPECT_FALSE(Gate::rz(1, 0.5) == Gate::rz(2, 0.5));
    EXPECT_FALSE(Gate::x(0) == Gate::y(0));
}

TEST(CircuitTest, AddValidatesRange)
{
    Circuit c(2);
    c.add(Gate::h(1));
    EXPECT_THROW(c.add(Gate::h(2)), FatalError);
    EXPECT_THROW(c.add(Gate::h(-1)), FatalError);
}

TEST(CircuitTest, CountsAndQubitSets)
{
    Circuit c(4, "t");
    c.add(Gate::h(0));
    c.add(Gate::x(1));
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cz(1, 2));
    c.add(Gate::measure(0));
    c.add(Gate::measure(2));
    EXPECT_EQ(c.count1q(), 2);
    EXPECT_EQ(c.count2q(), 2);
    EXPECT_EQ(c.measuredQubits(), (std::vector<ProgQubit>{0, 2}));
    EXPECT_EQ(c.activeQubits(), (std::vector<ProgQubit>{0, 1, 2}));
    EXPECT_EQ(c.numGates(), 6);
}

TEST(CircuitTest, DepthSerialVsParallel)
{
    Circuit serial(1);
    for (int i = 0; i < 5; ++i)
        serial.add(Gate::h(0));
    EXPECT_EQ(serial.depth(), 5);

    Circuit parallel(5);
    for (int q = 0; q < 5; ++q)
        parallel.add(Gate::h(q));
    EXPECT_EQ(parallel.depth(), 1);
}

TEST(CircuitTest, BarrierIncreasesDepth)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::barrier());
    c.add(Gate::h(1)); // Must wait for the barrier.
    EXPECT_EQ(c.depth(), 2);
}

TEST(CircuitTest, AppendChecksWidth)
{
    Circuit a(2), b(2), c(3);
    b.add(Gate::h(0));
    a.append(b);
    EXPECT_EQ(a.numGates(), 1);
    EXPECT_THROW(a.append(c), FatalError);
}

TEST(DagTest, LinearDependencies)
{
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::t(0));
    c.add(Gate::h(0));
    CircuitDag dag(c);
    EXPECT_TRUE(dag.preds(0).empty());
    EXPECT_EQ(dag.preds(1), (std::vector<int>{0}));
    EXPECT_EQ(dag.preds(2), (std::vector<int>{1}));
    EXPECT_EQ(dag.succs(0), (std::vector<int>{1}));
    EXPECT_EQ(dag.numLevels(), 3);
}

TEST(DagTest, TwoQubitJoin)
{
    Circuit c(2);
    c.add(Gate::h(0));    // 0
    c.add(Gate::h(1));    // 1
    c.add(Gate::cnot(0, 1)); // 2: depends on both
    CircuitDag dag(c);
    EXPECT_EQ(dag.preds(2), (std::vector<int>{0, 1}));
    EXPECT_EQ(dag.level(2), 1);
    EXPECT_EQ(dag.level(0), 0);
    auto levels = dag.levels();
    ASSERT_EQ(levels.size(), 2u);
    EXPECT_EQ(levels[0], (std::vector<int>{0, 1}));
    EXPECT_EQ(levels[1], (std::vector<int>{2}));
}

TEST(DagTest, BarrierFencesAllQubits)
{
    Circuit c(2);
    c.add(Gate::h(0));     // 0
    c.add(Gate::barrier()); // 1
    c.add(Gate::h(1));     // 2: must depend on the barrier
    CircuitDag dag(c);
    EXPECT_EQ(dag.preds(1), (std::vector<int>{0}));
    EXPECT_EQ(dag.preds(2), (std::vector<int>{1}));
    EXPECT_EQ(dag.numLevels(), 3);
}

TEST(DagTest, ProgramOrderIsTopological)
{
    // Property: for every gate, all preds have smaller indices.
    Circuit c(4, "mix");
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(2, 3));
    c.add(Gate::cnot(1, 2));
    c.add(Gate::barrier());
    c.add(Gate::measure(0));
    c.add(Gate::measure(3));
    CircuitDag dag(c);
    for (int i = 0; i < c.numGates(); ++i)
        for (int p : dag.preds(i)) {
            EXPECT_LT(p, i);
            EXPECT_GE(dag.level(i), dag.level(p) + 1);
        }
}

} // namespace
} // namespace triq
