/**
 * @file
 * Quaternion tests: algebraic identities plus the property that the
 * quaternion composition of any 1Q gate sequence matches the matrix
 * product up to global phase, and that Euler decompositions round-trip.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/quaternion.hh"
#include "core/unitary.hh"

namespace triq
{
namespace
{

/** SU(2) matrix of a quaternion: w*I - i(x X + y Y + z Z). */
Matrix
quatMatrix(const Quaternion &q)
{
    Cplx i1(0, 1);
    return Matrix{{q.w - i1 * q.z, -i1 * q.x - q.y},
                  {-i1 * q.x + q.y, q.w + i1 * q.z}};
}

/** A random 1Q gate for property sweeps. */
Gate
randomOneQGate(Rng &rng)
{
    switch (rng.uniformInt(13)) {
      case 0:
        return Gate::x(0);
      case 1:
        return Gate::y(0);
      case 2:
        return Gate::z(0);
      case 3:
        return Gate::h(0);
      case 4:
        return Gate::s(0);
      case 5:
        return Gate::sdg(0);
      case 6:
        return Gate::t(0);
      case 7:
        return Gate::tdg(0);
      case 8:
        return Gate::rx(0, rng.uniform(-kPi, kPi));
      case 9:
        return Gate::ry(0, rng.uniform(-kPi, kPi));
      case 10:
        return Gate::rz(0, rng.uniform(-kPi, kPi));
      case 11:
        return Gate::rxy(0, rng.uniform(-kPi, kPi),
                         rng.uniform(-kPi, kPi));
      default:
        return Gate::u3(0, rng.uniform(0, kPi), rng.uniform(-kPi, kPi),
                        rng.uniform(-kPi, kPi));
    }
}

TEST(Quaternion, IdentityAndInverse)
{
    Quaternion id = Quaternion::identity();
    EXPECT_TRUE(id.isIdentity());
    Quaternion q = Quaternion::fromAxisAngle(0, 1, 0, 1.1);
    EXPECT_FALSE(q.isIdentity());
    EXPECT_TRUE((q * q.inverse()).isIdentity());
    EXPECT_NEAR(q.norm(), 1.0, 1e-12);
}

TEST(Quaternion, ZRotationDetection)
{
    EXPECT_TRUE(Quaternion::fromGate(Gate::rz(0, 0.7)).isZRotation());
    EXPECT_TRUE(Quaternion::fromGate(Gate::t(0)).isZRotation());
    EXPECT_FALSE(Quaternion::fromGate(Gate::h(0)).isZRotation());
    EXPECT_TRUE(Quaternion::identity().isZRotation());
}

TEST(Quaternion, EveryGateMatchesItsMatrix)
{
    Rng rng(2024);
    for (int i = 0; i < 200; ++i) {
        Gate g = randomOneQGate(rng);
        Quaternion q = Quaternion::fromGate(g);
        EXPECT_TRUE(quatMatrix(q).equalUpToPhase(gateMatrix(g), 1e-7))
            << g.str();
    }
}

TEST(Quaternion, ProductMatchesMatrixProduct)
{
    Rng rng(77);
    for (int rep = 0; rep < 100; ++rep) {
        Quaternion acc = Quaternion::identity();
        Matrix m = Matrix::identity(2);
        int len = 1 + rng.uniformInt(8);
        for (int i = 0; i < len; ++i) {
            Gate g = randomOneQGate(rng);
            acc = (Quaternion::fromGate(g) * acc).normalized();
            m = gateMatrix(g) * m;
        }
        EXPECT_TRUE(quatMatrix(acc).equalUpToPhase(m, 1e-6));
    }
}

class EulerRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(EulerRoundTrip, ZyzReconstructs)
{
    Rng rng(1000 + GetParam());
    Quaternion q = Quaternion::fromAxisAngle(
        rng.normal(), rng.normal(), rng.normal(),
        rng.uniform(-kPi, kPi));
    EulerAngles e = q.toZYZ();
    EXPECT_GE(e.beta, -1e-12);
    EXPECT_LE(e.beta, kPi + 1e-12);
    Quaternion back = Quaternion::fromAxisAngle(0, 0, 1, e.alpha) *
                      Quaternion::fromAxisAngle(0, 1, 0, e.beta) *
                      Quaternion::fromAxisAngle(0, 0, 1, e.gamma);
    EXPECT_TRUE(back.approxEqual(q, 1e-6))
        << "alpha=" << e.alpha << " beta=" << e.beta
        << " gamma=" << e.gamma;
}

TEST_P(EulerRoundTrip, ZxzReconstructs)
{
    Rng rng(5000 + GetParam());
    Quaternion q = Quaternion::fromAxisAngle(
        rng.normal(), rng.normal(), rng.normal(),
        rng.uniform(-kPi, kPi));
    EulerAngles e = q.toZXZ();
    Quaternion back = Quaternion::fromAxisAngle(0, 0, 1, e.alpha) *
                      Quaternion::fromAxisAngle(1, 0, 0, e.beta) *
                      Quaternion::fromAxisAngle(0, 0, 1, e.gamma);
    EXPECT_TRUE(back.approxEqual(q, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(RandomRotations, EulerRoundTrip,
                         ::testing::Range(0, 50));

TEST(Quaternion, EulerDegenerateCases)
{
    // Pure Z rotation: beta == 0, everything in alpha.
    EulerAngles e = Quaternion::fromGate(Gate::rz(0, 0.8)).toZYZ();
    EXPECT_NEAR(e.beta, 0.0, 1e-9);
    EXPECT_NEAR(e.alpha + e.gamma, 0.8, 1e-9);

    // beta == pi (X gate in ZXZ).
    EulerAngles ex = Quaternion::fromGate(Gate::x(0)).toZXZ();
    EXPECT_NEAR(ex.beta, kPi, 1e-9);
}

TEST(Quaternion, HamiltonAntiCommutation)
{
    // XY = iZ in SU(2) language: quaternion i*j = k.
    Quaternion qx{0, 1, 0, 0}, qy{0, 0, 1, 0};
    Quaternion qxy = qx * qy;
    EXPECT_NEAR(qxy.z, 1.0, 1e-12);
    Quaternion qyx = qy * qx;
    EXPECT_NEAR(qyx.z, -1.0, 1e-12);
}

} // namespace
} // namespace triq
