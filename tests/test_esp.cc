/**
 * @file
 * ESP-model tests: per-gate error probabilities, product composition,
 * coherence factors and monotonicity properties.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "core/esp.hh"
#include "device/machines.hh"

namespace triq
{
namespace
{

Calibration
simpleCalib(const Topology &topo)
{
    Calibration c;
    c.numQubits = topo.numQubits();
    c.err1q.assign(c.numQubits, 0.01);
    c.errRO.assign(c.numQubits, 0.05);
    c.t2Us.assign(c.numQubits, 100.0);
    c.err2q.assign(topo.numEdges(), 0.04);
    c.durations = {0.1, 0.4, 3.0};
    return c;
}

TEST(Esp, GateErrorProbabilities)
{
    Topology t = Topology::line(3);
    Calibration c = simpleCalib(t);
    EXPECT_DOUBLE_EQ(gateErrorProb(Gate::u2(0, 0, 0), t, c), 0.01);
    EXPECT_NEAR(gateErrorProb(Gate::u3(0, 1, 2, 3), t, c),
                1 - 0.99 * 0.99, 1e-12);
    EXPECT_DOUBLE_EQ(gateErrorProb(Gate::rz(0, 1.0), t, c), 0.0);
    EXPECT_DOUBLE_EQ(gateErrorProb(Gate::cnot(0, 1), t, c), 0.04);
    EXPECT_NEAR(gateErrorProb(Gate::swap(1, 2), t, c),
                1 - std::pow(0.96, 3), 1e-12);
    EXPECT_DOUBLE_EQ(gateErrorProb(Gate::measure(2), t, c), 0.05);
    EXPECT_DOUBLE_EQ(gateErrorProb(Gate::barrier(), t, c), 0.0);
}

TEST(Esp, NonAdjacent2qIsFatal)
{
    Topology t = Topology::line(3);
    Calibration c = simpleCalib(t);
    EXPECT_THROW(gateErrorProb(Gate::cnot(0, 2), t, c), FatalError);
}

TEST(Esp, ProductOfGateSuccesses)
{
    Topology t = Topology::line(2);
    Calibration c = simpleCalib(t);
    c.t2Us.assign(2, 1e18); // No decoherence term.
    Circuit circ(2);
    circ.add(Gate::u2(0, 0, 0));
    circ.add(Gate::cnot(0, 1));
    circ.add(Gate::measure(0));
    circ.add(Gate::measure(1));
    double esp = estimatedSuccessProbability(circ, t, c);
    EXPECT_NEAR(esp, 0.99 * 0.96 * 0.95 * 0.95, 1e-9);
}

TEST(Esp, CoherencePenalizesIdle)
{
    Topology t = Topology::line(2);
    Calibration c = simpleCalib(t);
    // Same circuit; one calibration with tiny T2.
    Circuit circ(2);
    circ.add(Gate::u2(1, 0, 0));
    for (int i = 0; i < 8; ++i)
        circ.add(Gate::u2(0, 0, 0)); // q1 idles 0.7us.
    circ.add(Gate::cnot(0, 1));
    double esp_long = estimatedSuccessProbability(circ, t, c);
    Calibration c2 = c;
    c2.t2Us.assign(2, 1.0);
    double esp_short = estimatedSuccessProbability(circ, t, c2);
    EXPECT_LT(esp_short, esp_long);
    // Idle factor ~ exp(-0.7/1.0) on q1.
    EXPECT_NEAR(esp_short / esp_long, std::exp(-0.7 / 1.0), 0.01);
}

TEST(Esp, MoreGatesLowerEsp)
{
    Topology t = Topology::line(2);
    Calibration c = simpleCalib(t);
    Circuit a(2), b(2);
    a.add(Gate::cnot(0, 1));
    a.add(Gate::measure(0));
    b.add(Gate::cnot(0, 1));
    b.add(Gate::cnot(0, 1));
    b.add(Gate::measure(0));
    EXPECT_GT(estimatedSuccessProbability(a, t, c),
              estimatedSuccessProbability(b, t, c));
}

TEST(Esp, VirtualZIsFree)
{
    Topology t = Topology::line(2);
    Calibration c = simpleCalib(t);
    Circuit a(2), b(2);
    a.add(Gate::cnot(0, 1));
    b.add(Gate::rz(0, 0.3));
    b.add(Gate::cnot(0, 1));
    b.add(Gate::t(1));
    b.add(Gate::u1(0, -0.2));
    EXPECT_DOUBLE_EQ(estimatedSuccessProbability(a, t, c),
                     estimatedSuccessProbability(b, t, c));
}

TEST(Esp, PerfectCalibrationGivesOne)
{
    Topology t = Topology::full(3);
    Calibration c;
    c.numQubits = 3;
    c.err1q.assign(3, 0.0);
    c.errRO.assign(3, 0.0);
    c.t2Us.assign(3, 1e18);
    c.err2q.assign(t.numEdges(), 0.0);
    c.durations = {0.1, 0.4, 3.0};
    Circuit circ(3);
    circ.add(Gate::h(0));
    circ.add(Gate::cnot(0, 1));
    circ.add(Gate::measure(0));
    EXPECT_DOUBLE_EQ(estimatedSuccessProbability(circ, t, c), 1.0);
}

} // namespace
} // namespace triq
