/**
 * @file
 * Gate-unitary tests: all matrices unitary across parameter sweeps,
 * embedding correctness against Kronecker products, circuit unitaries
 * of known circuits.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "common/rng.hh"
#include "core/unitary.hh"

namespace triq
{
namespace
{

class ParamSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ParamSweep, RotationsAreUnitary)
{
    double t = GetParam();
    for (const Gate &g :
         {Gate::rx(0, t), Gate::ry(0, t), Gate::rz(0, t),
          Gate::rxy(0, t, 0.3), Gate::u1(0, t), Gate::u2(0, t, -t),
          Gate::u3(0, t, 0.2, -0.7), Gate::cphase(0, 1, t),
          Gate::xx(0, 1, t)})
        EXPECT_TRUE(gateMatrix(g).isUnitary(1e-9)) << g.str();
}

INSTANTIATE_TEST_SUITE_P(Angles, ParamSweep,
                         ::testing::Values(-kPi, -1.7, -kPi / 2, -0.3,
                                           0.0, 0.3, kPi / 2, 1.7, kPi,
                                           2.9));

TEST(Unitary, FixedGatesAreUnitary)
{
    for (const Gate &g :
         {Gate::i(0), Gate::x(0), Gate::y(0), Gate::z(0), Gate::h(0),
          Gate::s(0), Gate::sdg(0), Gate::t(0), Gate::tdg(0),
          Gate::cnot(0, 1), Gate::cz(0, 1), Gate::swap(0, 1),
          Gate::ccx(0, 1, 2), Gate::ccz(0, 1, 2), Gate::cswap(0, 1, 2)})
        EXPECT_TRUE(gateMatrix(g).isUnitary(1e-12)) << g.str();
}

TEST(Unitary, KnownIdentities)
{
    // H Z H = X.
    Circuit hzh(1);
    hzh.add(Gate::h(0));
    hzh.add(Gate::z(0));
    hzh.add(Gate::h(0));
    Circuit x(1);
    x.add(Gate::x(0));
    EXPECT_TRUE(sameUnitary(hzh, x));

    // S S = Z; T T = S.
    Circuit ss(1);
    ss.add(Gate::s(0));
    ss.add(Gate::s(0));
    Circuit z(1);
    z.add(Gate::z(0));
    EXPECT_TRUE(sameUnitary(ss, z));

    Circuit tt(1);
    tt.add(Gate::t(0));
    tt.add(Gate::t(0));
    Circuit s(1);
    s.add(Gate::s(0));
    EXPECT_TRUE(sameUnitary(tt, s));
}

TEST(Unitary, CnotControlIsOperandZero)
{
    // CNOT|10> (control=bit0 set) flips the target -> |11>.
    Matrix m = gateMatrix(Gate::cnot(0, 1));
    EXPECT_EQ(m(3, 1), Cplx(1, 0));
    EXPECT_EQ(m(2, 2), Cplx(1, 0));
}

TEST(Unitary, EmbedMatchesKron)
{
    // Gate on qubit 1 of 2: embed == M kron I (qubit 0 is the LSB).
    Gate g = Gate::h(1);
    Matrix embedded = embedGate(2, g);
    Matrix expected = gateMatrix(Gate::h(0)).kron(Matrix::identity(2));
    EXPECT_TRUE(embedded.approxEqual(expected, 1e-12));

    Gate g0 = Gate::h(0);
    Matrix embedded0 = embedGate(2, g0);
    Matrix expected0 = Matrix::identity(2).kron(gateMatrix(Gate::h(0)));
    EXPECT_TRUE(embedded0.approxEqual(expected0, 1e-12));
}

TEST(Unitary, EmbedTwoQubitReversedOperands)
{
    // cnot(1,0) on a 2-qubit register: control = qubit 1.
    Matrix m = embedGate(2, Gate::cnot(1, 0));
    // |10> (bit1 set) -> |11>.
    EXPECT_EQ(m(3, 2), Cplx(1, 0));
    EXPECT_EQ(m(1, 1), Cplx(1, 0));
    EXPECT_TRUE(m.isUnitary());
}

TEST(Unitary, SwapNetworkReverses)
{
    // Swapping (0,1)(1,2)(0,1) reverses a 3-qubit register: it maps
    // basis |b2 b1 b0> to |b0 b1 b2>.
    Circuit c(3);
    c.add(Gate::swap(0, 1));
    c.add(Gate::swap(1, 2));
    c.add(Gate::swap(0, 1));
    Matrix u = circuitUnitary(c);
    for (int b = 0; b < 8; ++b) {
        int rev = ((b & 1) << 2) | (b & 2) | ((b >> 2) & 1);
        EXPECT_EQ(u(rev, b), Cplx(1, 0)) << b;
    }
}

TEST(Unitary, GlobalPhaseEquivalence)
{
    // Rz(t) and U1(t) differ only by a global phase.
    Circuit a(1), b(1);
    a.add(Gate::rz(0, 1.234));
    b.add(Gate::u1(0, 1.234));
    EXPECT_TRUE(sameUnitary(a, b));
    EXPECT_FALSE(
        circuitUnitary(a).approxEqual(circuitUnitary(b), 1e-9));
}

TEST(Unitary, RejectsMeasure)
{
    Circuit c(1);
    c.add(Gate::measure(0));
    EXPECT_THROW(circuitUnitary(c), PanicError);
}

TEST(Unitary, RandomCircuitsAreUnitary)
{
    Rng rng(31337);
    for (int rep = 0; rep < 20; ++rep) {
        Circuit c(3);
        for (int i = 0; i < 15; ++i) {
            switch (rng.uniformInt(4)) {
              case 0:
                c.add(Gate::h(rng.uniformInt(3)));
                break;
              case 1:
                c.add(Gate::rz(rng.uniformInt(3),
                               rng.uniform(-kPi, kPi)));
                break;
              case 2: {
                int a = rng.uniformInt(3);
                int b = (a + 1 + rng.uniformInt(2)) % 3;
                c.add(Gate::cnot(a, b));
                break;
              }
              default:
                c.add(Gate::rx(rng.uniformInt(3),
                               rng.uniform(-kPi, kPi)));
                break;
            }
        }
        EXPECT_TRUE(circuitUnitary(c).isUnitary(1e-9));
    }
}

} // namespace
} // namespace triq
