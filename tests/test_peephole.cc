/**
 * @file
 * Peephole-pass tests: pairs cancel exactly when legal, semantics are
 * always preserved (property over random circuits), fences block.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/peephole.hh"
#include "core/unitary.hh"

namespace triq
{
namespace
{

TEST(Peephole, AdjacentCnotPairCancels)
{
    Circuit c(2);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(0, 1));
    PeepholeStats stats;
    Circuit out = cancelInversePairs(c, &stats);
    EXPECT_EQ(out.numGates(), 0);
    EXPECT_EQ(stats.cancelled, 2);
}

TEST(Peephole, ReversedCnotDoesNotCancel)
{
    Circuit c(2);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(1, 0));
    Circuit out = cancelInversePairs(c);
    EXPECT_EQ(out.numGates(), 2);
}

TEST(Peephole, DisjointGatesBetweenPairAreTransparent)
{
    Circuit c(4);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::h(2));
    c.add(Gate::cnot(2, 3));
    c.add(Gate::cnot(0, 1));
    Circuit out = cancelInversePairs(c);
    EXPECT_EQ(out.numGates(), 2);
    EXPECT_TRUE(sameUnitary(out, c));
}

TEST(Peephole, SharedQubitBlocks)
{
    Circuit c(2);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::t(1)); // Phase on the target blocks cancellation.
    c.add(Gate::cnot(0, 1));
    Circuit out = cancelInversePairs(c);
    EXPECT_EQ(out.numGates(), 3);
}

TEST(Peephole, BarrierAndMeasureBlock)
{
    Circuit b(2);
    b.add(Gate::h(0));
    b.add(Gate::barrier());
    b.add(Gate::h(0));
    EXPECT_EQ(cancelInversePairs(b).numGates(), 3);

    Circuit m(2);
    m.add(Gate::x(0));
    m.add(Gate::measure(0));
    m.add(Gate::x(0));
    EXPECT_EQ(cancelInversePairs(m).numGates(), 3);
}

TEST(Peephole, CascadeToFixpoint)
{
    // h x x h: inner X pair cancels first, exposing the H pair.
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::x(0));
    c.add(Gate::x(0));
    c.add(Gate::h(0));
    PeepholeStats stats;
    Circuit out = cancelInversePairs(c, &stats);
    EXPECT_EQ(out.numGates(), 0);
    EXPECT_EQ(stats.cancelled, 4);
    EXPECT_GE(stats.iterations, 2);
}

TEST(Peephole, ParametrizedGatesAreNotSelfInverse)
{
    Circuit c(1);
    c.add(Gate::rz(0, 0.4));
    c.add(Gate::rz(0, 0.4));
    EXPECT_EQ(cancelInversePairs(c).numGates(), 2);
}

class PeepholeProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(PeepholeProperty, PreservesSemantics)
{
    Rng rng(GetParam() * 31 + 5);
    Circuit c(3);
    for (int i = 0; i < 25; ++i) {
        switch (rng.uniformInt(5)) {
          case 0:
            c.add(Gate::h(rng.uniformInt(3)));
            break;
          case 1:
            c.add(Gate::x(rng.uniformInt(3)));
            break;
          case 2:
            c.add(Gate::t(rng.uniformInt(3)));
            break;
          default: {
            int a = rng.uniformInt(3);
            int b = (a + 1 + rng.uniformInt(2)) % 3;
            c.add(Gate::cnot(a, b));
            break;
          }
        }
    }
    Circuit out = cancelInversePairs(c);
    EXPECT_LE(out.numGates(), c.numGates());
    EXPECT_TRUE(sameUnitary(out, c));
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, PeepholeProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{30}));

} // namespace
} // namespace triq
