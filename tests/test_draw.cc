/**
 * @file
 * Circuit-renderer tests: structural properties of the ASCII output
 * (every gate appears, connectors align, truncation marker).
 */

#include <gtest/gtest.h>

#include "core/draw.hh"
#include "workloads/benchmarks.hh"

namespace triq
{
namespace
{

TEST(Draw, SingleQubitLabels)
{
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::t(0));
    c.add(Gate::measure(0));
    std::string art = drawCircuit(c);
    EXPECT_NE(art.find("q0"), std::string::npos);
    EXPECT_NE(art.find("H"), std::string::npos);
    EXPECT_NE(art.find("T"), std::string::npos);
    EXPECT_NE(art.find("M"), std::string::npos);
}

TEST(Draw, CnotSymbolsAndConnector)
{
    Circuit c(3);
    c.add(Gate::cnot(0, 2));
    std::string art = drawCircuit(c);
    // Control '*', target 'X', and a '|' on the pass-through wire.
    EXPECT_NE(art.find("*"), std::string::npos);
    EXPECT_NE(art.find("X"), std::string::npos);
    EXPECT_NE(art.find("|"), std::string::npos);
}

TEST(Draw, ParallelGatesShareColumn)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::h(1));
    std::string art = drawCircuit(c);
    // Both H's at the same column offset.
    size_t l0 = art.find("q0");
    size_t l1 = art.find("q1");
    size_t h0 = art.find('H', l0);
    size_t h1 = art.find('H', l1);
    ASSERT_NE(h0, std::string::npos);
    ASSERT_NE(h1, std::string::npos);
    EXPECT_EQ(h0 - l0, h1 - l1);
}

TEST(Draw, BarrierColumn)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::barrier());
    c.add(Gate::h(1));
    std::string art = drawCircuit(c);
    EXPECT_NE(art.find("#"), std::string::npos);
}

TEST(Draw, TruncationMarker)
{
    Circuit c(1);
    for (int i = 0; i < 100; ++i)
        c.add(Gate::h(0));
    std::string art = drawCircuit(c, 8);
    EXPECT_NE(art.find("..."), std::string::npos);
}

TEST(Draw, EveryBenchmarkRenders)
{
    for (const auto &name : benchmarkNames()) {
        std::string art = drawCircuit(makeBenchmark(name));
        EXPECT_FALSE(art.empty()) << name;
        // Every qubit wire labeled.
        Circuit c = makeBenchmark(name);
        for (int q = 0; q < c.numQubits(); ++q)
            EXPECT_NE(art.find("q" + std::to_string(q)),
                      std::string::npos)
                << name;
    }
}

TEST(Draw, EmptyCircuit)
{
    EXPECT_EQ(drawCircuit(Circuit(0)), "(empty circuit)\n");
}

} // namespace
} // namespace triq
