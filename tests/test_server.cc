/**
 * @file
 * triqd server-engine tests: the wire format, the protocol surface,
 * admission control, per-client fairness, timeouts, graceful drain,
 * crash containment (a panicking request answers structurally and the
 * daemon keeps serving) and the stats contract. Everything runs
 * against the transport-free Server engine — the same object triqd
 * wraps in a socket — so the suite needs no live daemon.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/resource.hh"
#include "core/crash_report.hh"
#include "service/server.hh"

using namespace triq;
namespace fs = std::filesystem;

namespace
{

/** Fresh scratch directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        std::string tmpl =
            (fs::temp_directory_path() / "triq_server_XXXXXX").string();
        char *made = mkdtemp(tmpl.data());
        if (!made)
            throw std::runtime_error("mkdtemp failed");
        path = made;
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

/** Parse a reply and hand back the object (asserts well-formedness). */
JsonValue
parsed(const std::string &reply)
{
    JsonParseResult r = parseJson(reply);
    EXPECT_TRUE(r.ok) << reply << " -- " << r.error;
    EXPECT_TRUE(r.value.isObject()) << reply;
    return r.value;
}

std::string
errorCode(const JsonValue &v)
{
    const JsonValue *err = v.find("error");
    return err ? err->getString("code") : "";
}

ServerConfig
quietConfig()
{
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.queueCapacity = 64;
    cfg.timeoutMs = 30000.0;
    cfg.drainMs = 500.0;
    cfg.maxRequestBytes = 1 << 20;
    cfg.budgetMs = 0.0;
    cfg.maxTrials = 4096;
    return cfg;
}

} // namespace

// --- wire format ---------------------------------------------------------

TEST(WireTest, ParsesScalarsAndNesting)
{
    JsonParseResult r = parseJson(
        " {\"a\": 1.5, \"b\": [true, null, \"x\\n\"], \"c\": {\"d\": -2}} ");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_DOUBLE_EQ(r.value.getNumber("a"), 1.5);
    const JsonValue *b = r.value.find("b");
    ASSERT_TRUE(b && b->isArray());
    ASSERT_EQ(b->array.size(), 3u);
    EXPECT_TRUE(b->array[0].boolean);
    EXPECT_TRUE(b->array[1].isNull());
    EXPECT_EQ(b->array[2].string, "x\n");
    const JsonValue *c = r.value.find("c");
    ASSERT_TRUE(c && c->isObject());
    EXPECT_DOUBLE_EQ(c->getNumber("d"), -2.0);
}

TEST(WireTest, RejectsMalformedInput)
{
    EXPECT_FALSE(parseJson("").ok);
    EXPECT_FALSE(parseJson("{").ok);
    EXPECT_FALSE(parseJson("{\"a\":}").ok);
    EXPECT_FALSE(parseJson("{\"a\":1,}").ok);
    EXPECT_FALSE(parseJson("\"unterminated").ok);
    EXPECT_FALSE(parseJson("nul").ok);
    EXPECT_FALSE(parseJson("{} trailing").ok);
    EXPECT_FALSE(parseJson("1e999").ok); // non-finite
}

TEST(WireTest, DepthCapStopsDeepNesting)
{
    std::string deep(200, '[');
    deep += std::string(200, ']');
    JsonParseResult r = parseJson(deep, 48);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("deep"), std::string::npos) << r.error;
}

TEST(WireTest, WriterRoundTripsThroughParser)
{
    JsonWriter w;
    w.beginObject();
    w.key("s").value("quote\" slash\\ ctrl\x01");
    w.key("n").value(0.1);
    w.key("i").value(42L);
    w.key("t").value(true);
    w.key("nul").null();
    w.key("arr").beginArray().value(1).value("two").endArray();
    w.endObject();
    JsonParseResult r = parseJson(w.str());
    ASSERT_TRUE(r.ok) << w.str() << " -- " << r.error;
    EXPECT_EQ(r.value.getString("s"), "quote\" slash\\ ctrl\x01");
    EXPECT_DOUBLE_EQ(r.value.getNumber("n"), 0.1);
    EXPECT_DOUBLE_EQ(r.value.getNumber("i"), 42.0);
    EXPECT_TRUE(r.value.getBool("t"));
}

TEST(WireTest, UnicodeEscapesDecodeToUtf8)
{
    JsonParseResult r = parseJson("{\"u\": \"\\u00e9\\u0041\"}");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.value.getString("u"), "\xc3\xa9" "A");
}

// --- protocol surface ----------------------------------------------------

TEST(ServerTest, PingAndStatsAnswerInline)
{
    Server server(quietConfig());
    JsonValue pong =
        parsed(server.processLine("t", "{\"id\":\"p1\",\"op\":\"ping\"}"));
    EXPECT_TRUE(pong.getBool("ok"));
    EXPECT_EQ(pong.getString("id"), "p1");

    JsonValue st =
        parsed(server.processLine("t", "{\"id\":2,\"op\":\"stats\"}"));
    EXPECT_TRUE(st.getBool("ok"));
    const JsonValue *stats = st.find("stats");
    ASSERT_TRUE(stats && stats->isObject());
    EXPECT_GE(stats->getNumber("received"), 2.0);
}

TEST(ServerTest, CompileThenCacheHit)
{
    Server server(quietConfig());
    std::string rq =
        "{\"id\":\"a\",\"op\":\"compile\",\"bench\":\"BV4\","
        "\"device\":\"IBMQ5\"}";
    JsonValue first = parsed(server.processLine("t", rq));
    ASSERT_TRUE(first.getBool("ok")) << errorCode(first);
    EXPECT_EQ(first.getString("source"), "compiled");
    EXPECT_GT(first.getNumber("esp"), 0.0);

    JsonValue second = parsed(server.processLine("t", rq));
    ASSERT_TRUE(second.getBool("ok"));
    EXPECT_EQ(second.getString("source"), "cache_hit");
    EXPECT_EQ(second.getString("fingerprint"),
              first.getString("fingerprint"));
}

TEST(ServerTest, SimulateReportsSuccessRate)
{
    Server server(quietConfig());
    JsonValue r = parsed(server.processLine(
        "t", "{\"id\":1,\"op\":\"simulate\",\"bench\":\"Toffoli\","
             "\"device\":\"UMDTI\",\"trials\":200,\"seed\":7}"));
    ASSERT_TRUE(r.getBool("ok")) << errorCode(r);
    EXPECT_EQ(r.getNumber("trials"), 200.0);
    EXPECT_GT(r.getNumber("success_rate"), 0.5);
    EXPECT_GT(r.getNumber("sim_esp"), 0.0);
}

TEST(ServerTest, ProgramSourceCompiles)
{
    Server server(quietConfig());
    JsonValue r = parsed(server.processLine(
        "t",
        "{\"id\":1,\"op\":\"compile\",\"device\":\"IBMQ5\",\"program\":"
        "\"module bell { qreg q[2]; h q[0]; cnot q[0], q[1]; "
        "measure q[0]; measure q[1]; }\"}"));
    ASSERT_TRUE(r.getBool("ok")) << errorCode(r);
    EXPECT_GE(r.getNumber("two_q"), 1.0);
}

TEST(ServerTest, BadProgramEarnsStructuredDiagnostics)
{
    Server server(quietConfig());
    JsonValue r = parsed(server.processLine(
        "t", "{\"id\":1,\"op\":\"compile\",\"device\":\"IBMQ5\","
             "\"program\":\"qreg q[2];\\nBOGUS(q[0])\"}"));
    EXPECT_FALSE(r.getBool("ok", true));
    EXPECT_EQ(errorCode(r), "input.parse");
    const JsonValue *err = r.find("error");
    ASSERT_TRUE(err);
    EXPECT_TRUE(err->find("diagnostics"));
}

TEST(ServerTest, ProtocolErrorsHaveStableCodes)
{
    Server server(quietConfig());
    EXPECT_EQ(errorCode(parsed(server.processLine("t", "not json"))),
              "proto.parse");
    EXPECT_EQ(errorCode(parsed(server.processLine("t", "[1,2]"))),
              "proto.bad-request");
    EXPECT_EQ(errorCode(parsed(server.processLine("t", "{\"id\":1}"))),
              "proto.bad-request");
    EXPECT_EQ(errorCode(parsed(server.processLine(
                  "t", "{\"id\":1,\"op\":\"launch-missiles\"}"))),
              "proto.bad-request");
    EXPECT_EQ(errorCode(parsed(server.processLine(
                  "t", "{\"id\":1,\"op\":\"compile\",\"bench\":\"BV4\","
                       "\"device\":\"ENIAC\"}"))),
              "proto.bad-request");
    EXPECT_EQ(errorCode(parsed(server.processLine(
                  "t", "{\"id\":1,\"op\":\"compile\",\"bench\":\"Nope\","
                       "\"device\":\"IBMQ5\"}"))),
              "input.invalid");
}

TEST(ServerTest, OversizedFrameRejectedInConstantTime)
{
    ServerConfig cfg = quietConfig();
    cfg.maxRequestBytes = 2048;
    Server server(std::move(cfg));
    std::string big = "{\"op\":\"ping\",\"pad\":\"";
    big += std::string(4096, 'x');
    big += "\"}";
    JsonValue r = parsed(server.processLine("t", big));
    EXPECT_EQ(errorCode(r), "proto.oversized");
}

TEST(ServerTest, TooLargeProgramRefusedPerDevice)
{
    Server server(quietConfig());
    // BV8 needs 8 qubits; IBMQ5 has 5.
    JsonValue r = parsed(server.processLine(
        "t", "{\"id\":1,\"op\":\"compile\",\"bench\":\"BV8\","
             "\"device\":\"IBMQ5\"}"));
    EXPECT_EQ(errorCode(r), "input.too-large");
}

TEST(ServerTest, StrictCalibrationFaultAnswersStructurally)
{
    Server server(quietConfig());
    JsonValue r = parsed(server.processLine(
        "t", "{\"id\":1,\"op\":\"compile\",\"bench\":\"BV4\","
             "\"device\":\"IBMQ5\",\"fault\":\"calib\",\"fault_seed\":3,"
             "\"strict_calibration\":true}"));
    EXPECT_FALSE(r.getBool("ok", true));
    EXPECT_EQ(errorCode(r), "input.invalid");
    // The daemon survives and the next request is clean.
    JsonValue ok = parsed(server.processLine(
        "t", "{\"id\":2,\"op\":\"compile\",\"bench\":\"BV4\","
             "\"device\":\"IBMQ5\"}"));
    EXPECT_TRUE(ok.getBool("ok"));
}

// --- crash containment ---------------------------------------------------

TEST(ServerTest, PanicDumpsTaggedBundleAndKeepsServing)
{
    TempDir tmp;
    ServerConfig cfg = quietConfig();
    cfg.crashDir = (tmp.path / "crash").string();
    Server server(std::move(cfg));

    JsonValue r = parsed(server.processLine(
        "t", "{\"id\":\"boom-1\",\"op\":\"compile\",\"bench\":\"BV4\","
             "\"device\":\"IBMQ5\",\"fault\":\"panic\"}"));
    EXPECT_FALSE(r.getBool("ok", true));
    EXPECT_EQ(errorCode(r), "internal.panic");
    const JsonValue *err = r.find("error");
    ASSERT_TRUE(err);
    std::string dir = err->getString("crash_dir");
    ASSERT_FALSE(dir.empty());
    ASSERT_TRUE(fs::is_directory(dir));

    CrashBundle b = CrashBundle::load(dir);
    EXPECT_EQ(b.requestId, "boom-1");
    EXPECT_EQ(b.benchName, "BV4");
    EXPECT_EQ(b.device, "IBMQ5");

    // Contract: a panic never takes the server down.
    JsonValue after = parsed(server.processLine(
        "t", "{\"id\":2,\"op\":\"compile\",\"bench\":\"BV4\","
             "\"device\":\"IBMQ5\"}"));
    EXPECT_TRUE(after.getBool("ok"));

    JsonValue st =
        parsed(server.processLine("t", "{\"op\":\"stats\"}"));
    EXPECT_EQ(st.find("stats")->getNumber("crashes"), 1.0);
}

// --- admission, fairness, timeout, drain ---------------------------------

namespace
{

/** Collects replies across threads, preserving completion order. */
struct ReplyLog
{
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<std::string> ids;

    Server::Respond
    tagged(std::string tag)
    {
        return [this, tag](std::string reply) {
            JsonParseResult r = parseJson(reply);
            std::string id =
                r.ok ? r.value.getString("id", tag) : tag;
            std::lock_guard<std::mutex> lock(mutex);
            ids.push_back(id.empty() ? tag : id);
            cv.notify_all();
        };
    }

    void
    waitFor(size_t n)
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return ids.size() >= n; });
    }

    long
    indexOf(const std::string &id)
    {
        std::lock_guard<std::mutex> lock(mutex);
        for (size_t i = 0; i < ids.size(); ++i)
            if (ids[i] == id)
                return static_cast<long>(i);
        return -1;
    }
};

std::string
compileFrame(const std::string &id, const std::string &bench = "BV4")
{
    return "{\"id\":\"" + id + "\",\"op\":\"compile\",\"bench\":\"" +
           bench + "\",\"device\":\"IBMQ5\"}";
}

/**
 * Parks the (single) worker deterministically: the blocker request
 * executes instantly, but its respond callback blocks inside the
 * worker until release(). finish() only decrements `active` after
 * respond returns, so the worker slot stays provably occupied — the
 * stand-in for "a slow request is running" in the admission, fairness
 * and drain tests, immune to CI load and compile-speed variance.
 */
struct WorkerGate
{
    std::promise<void> release_;
    std::shared_future<void> gate_ = release_.get_future().share();

    Server::Respond
    hold()
    {
        std::shared_future<void> gate = gate_;
        return [gate](std::string) { gate.wait(); };
    }

    void
    release()
    {
        release_.set_value();
    }
};

/** Spin until the blocker occupies the worker and the queue is empty. */
void
awaitWorkerHeld(Server &server)
{
    ServerStats st = server.stats();
    while (st.active < 1 || st.queueDepth > 0) {
        std::this_thread::yield();
        st = server.stats();
    }
}

} // namespace

TEST(ServerTest, FullQueueShedsLoadImmediately)
{
    ServerConfig cfg = quietConfig();
    cfg.workers = 1;
    cfg.queueCapacity = 2;
    Server server(std::move(cfg));
    server.start();

    // Park the worker, then submit past the queue capacity: of the six
    // arrivals, exactly two fit the queue and four are shed at the
    // door, inline, while the worker never frees up.
    WorkerGate gate;
    server.submit("hog", compileFrame("blocker"), gate.hold());
    awaitWorkerHeld(server);

    int rejected = 0;
    std::mutex m;
    std::condition_variable cv;
    int answered = 0;
    for (int i = 0; i < 6; ++i) {
        server.submit(
            "hog", compileFrame("q" + std::to_string(i)),
            [&](std::string reply) {
                JsonValue v = parsed(reply);
                std::lock_guard<std::mutex> lock(m);
                if (errorCode(v) == "server.overloaded")
                    ++rejected;
                ++answered;
                cv.notify_all();
            });
    }
    {
        // The four rejections are answered inline (before release).
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return answered == 4; });
        EXPECT_EQ(rejected, 4);
    }
    gate.release();
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return answered == 6; });
    }
    EXPECT_EQ(rejected, 4); // the queued two completed normally
    ServerStats st = server.stats();
    EXPECT_EQ(st.rejected, 4);
    server.drain();
}

TEST(ServerTest, RoundRobinInterleavesClients)
{
    ServerConfig cfg = quietConfig();
    cfg.workers = 1;
    Server server(std::move(cfg));
    server.start();

    WorkerGate gate;
    ReplyLog log;
    server.submit("z-hog", compileFrame("blocker"), gate.hold());
    awaitWorkerHeld(server);

    // With the worker parked, client A queues three and client B one.
    // Round-robin must answer B's single request before A's second —
    // one chatty client cannot starve a neighbor. The completion order
    // is fully deterministic: a1, b1, a2, a3.
    server.submit("a", compileFrame("a1", "BV4"), log.tagged("a1"));
    server.submit("a", compileFrame("a2", "BV6"), log.tagged("a2"));
    server.submit("a", compileFrame("a3", "HS2"), log.tagged("a3"));
    server.submit("b", compileFrame("b1", "Peres"), log.tagged("b1"));
    gate.release();
    log.waitFor(4);

    EXPECT_LT(log.indexOf("a1"), log.indexOf("b1"));
    EXPECT_LT(log.indexOf("b1"), log.indexOf("a2"));
    EXPECT_LT(log.indexOf("a2"), log.indexOf("a3"));
    server.drain();
}

TEST(ServerTest, PipeliningClientNeverRunsOnTwoWorkers)
{
    ServerConfig cfg = quietConfig();
    cfg.workers = 2;
    Server server(std::move(cfg));
    server.start();

    // Park client c's first request on worker one. c's second request
    // must NOT be handed to the idle worker two — per-client
    // serialization is what keeps a pipelining client's replies in
    // request order — while a different client sails right through.
    WorkerGate gate;
    ReplyLog log;
    server.submit("c", compileFrame("c1"), gate.hold());
    awaitWorkerHeld(server);
    server.submit("c", compileFrame("c2"), log.tagged("c2"));
    server.submit("d", compileFrame("d1"), log.tagged("d1"));

    // d1 completes on the free worker; c2 stays queued behind c1.
    log.waitFor(1);
    EXPECT_EQ(log.indexOf("d1"), 0);
    EXPECT_EQ(log.indexOf("c2"), -1);

    gate.release();
    log.waitFor(2);
    EXPECT_LT(log.indexOf("d1"), log.indexOf("c2"));
    server.drain();
}

TEST(ServerTest, RepliesStayOrderedWithinOneClient)
{
    ServerConfig cfg = quietConfig();
    cfg.workers = 4;
    Server server(std::move(cfg));
    server.start();

    // A client pipelining eight requests against four workers gets its
    // replies back strictly in request order (the protocol guarantee),
    // because at most one of them is ever in flight.
    ReplyLog log;
    for (int i = 0; i < 8; ++i)
        server.submit("pipeliner", compileFrame("p" + std::to_string(i)),
                      log.tagged("p" + std::to_string(i)));
    log.waitFor(8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(log.indexOf("p" + std::to_string(i)), i);
    server.drain();
}

TEST(ServerTest, QueueWaitPastDeadlineTimesOut)
{
    ServerConfig cfg = quietConfig();
    cfg.workers = 1;
    Server server(std::move(cfg));
    server.start();

    WorkerGate gate;
    server.submit("t", compileFrame("blocker"), gate.hold());
    awaitWorkerHeld(server);

    // Queued behind the parked worker with a (sub-)microsecond
    // deadline: by the time the worker frees up and picks it up, it
    // has provably waited too long.
    std::mutex m;
    std::condition_variable cv;
    std::string code;
    bool got = false;
    server.submit("t",
                  "{\"id\":\"late\",\"op\":\"compile\",\"bench\":\"BV4\","
                  "\"device\":\"IBMQ5\",\"timeout_ms\":0.0001}",
                  [&](std::string reply) {
                      JsonValue v = parsed(reply);
                      std::lock_guard<std::mutex> lock(m);
                      code = errorCode(v);
                      got = true;
                      cv.notify_all();
                  });
    gate.release();
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return got; });
    }
    EXPECT_EQ(code, "server.timeout");
    ServerStats st = server.stats();
    EXPECT_EQ(st.timeouts, 1);
    server.drain();
}

TEST(ServerTest, DrainCancelsQueuedAndRefusesNew)
{
    ServerConfig cfg = quietConfig();
    cfg.workers = 1;
    cfg.drainMs = 0.0; // no grace window: cancel queued work at once
    Server server(std::move(cfg));
    server.start();

    WorkerGate gate;
    ReplyLog log;
    server.submit("t", compileFrame("blocker"), gate.hold());
    awaitWorkerHeld(server);
    for (int i = 0; i < 3; ++i)
        server.submit("t", compileFrame("d" + std::to_string(i)),
                      log.tagged("d" + std::to_string(i)));

    // Drain with the worker still parked: the queued three must be
    // cancelled with structured replies *before* the in-flight blocker
    // is waited out (cancellation precedes the in-flight wait).
    std::thread drainer([&] { server.drain(); });
    log.waitFor(3);
    ServerStats mid = server.stats();
    EXPECT_EQ(mid.cancelled, 3);
    EXPECT_EQ(mid.active, 1); // the blocker is still in flight
    gate.release();
    drainer.join();

    ServerStats st = server.stats();
    EXPECT_EQ(st.cancelled, 3);
    EXPECT_EQ(st.queueDepth, 0);
    EXPECT_EQ(st.active, 0);
    EXPECT_TRUE(server.draining());

    // Post-drain submissions are refused, not dropped.
    JsonValue r = parsed(server.processLine("t", compileFrame("x")));
    EXPECT_EQ(errorCode(r), "server.draining");
}

TEST(ServerTest, StatsCountLatenciesAndCacheHeat)
{
    Server server(quietConfig());
    for (int i = 0; i < 3; ++i)
        parsed(server.processLine("t", compileFrame("r")));
    ServerStats st = server.stats();
    EXPECT_EQ(st.completed, 3);
    EXPECT_EQ(st.latencyCount, 3);
    EXPECT_GT(st.p50Ms, 0.0);
    EXPECT_GE(st.p99Ms, st.p50Ms);
    EXPECT_EQ(st.cache.hits, 2);
    EXPECT_EQ(st.cache.misses, 1);
}

// --- predictive admission (resource governor) ----------------------------

namespace
{

/** Scoped budget override on the process governor (always restored). */
struct BudgetGuard
{
    explicit BudgetGuard(uint64_t bytes)
        : old_(processGovernor().budgetBytes())
    {
        processGovernor().setBudgetBytes(bytes);
    }
    ~BudgetGuard() { processGovernor().setBudgetBytes(old_); }
    uint64_t old_;
};

} // namespace

TEST(ServerTest, BudgetRejectsOversizedSimulationAndKeepsServing)
{
    BudgetGuard budget(256ull << 20); // 256 MiB
    Server server(quietConfig());

    // The fig. 13 shape: a 72-qubit supremacy circuit on the 72-qubit
    // grid. Its state vector saturates the predictor; the reply must be
    // an immediate structured refusal carrying the predicted cost.
    JsonValue r = parsed(server.processLine(
        "t", "{\"id\":\"big\",\"op\":\"simulate\",\"bench\":"
             "\"Sup6x12d8\",\"device\":\"Google72\",\"trials\":10}"));
    EXPECT_EQ(errorCode(r), "server.budget");
    const JsonValue *err = r.find("error");
    ASSERT_NE(err, nullptr);
    EXPECT_GT(err->getNumber("predicted_bytes"), 0.0);
    EXPECT_EQ(err->getNumber("budget_bytes"),
              static_cast<double>(256ull << 20));

    // The daemon keeps serving: an under-budget request on the same
    // connection succeeds, and a *compile* of the very circuit that was
    // refused for simulation is still admitted (no state vector).
    JsonValue ok = parsed(server.processLine(
        "t", "{\"id\":\"small\",\"op\":\"simulate\",\"bench\":\"BV4\","
             "\"device\":\"IBMQ5\",\"trials\":50}"));
    EXPECT_TRUE(ok.getBool("ok", false));
    JsonValue co = parsed(server.processLine(
        "t", "{\"id\":\"co\",\"op\":\"compile\",\"bench\":\"Sup6x12d8\","
             "\"device\":\"Google72\"}"));
    EXPECT_TRUE(co.getBool("ok", false));

    ServerStats st = server.stats();
    EXPECT_EQ(st.budgetRejected, 1);
    EXPECT_EQ(st.completed, 2);
}

TEST(ServerTest, SmallProgramOnWideDeviceIsNotFalselyRejected)
{
    BudgetGuard budget(256ull << 20);
    Server server(quietConfig());
    // BV4 compacts to a handful of qubits even though Google72 is 72
    // wide; admission prices the benchmark, not the device.
    JsonValue r = parsed(server.processLine(
        "t", "{\"id\":1,\"op\":\"simulate\",\"bench\":\"BV4\","
             "\"device\":\"Google72\",\"trials\":10}"));
    EXPECT_TRUE(r.getBool("ok", false)) << r.getString("error");
}

TEST(ServerTest, UnlimitedBudgetAdmitsEverythingAtTheDoor)
{
    BudgetGuard budget(0);
    Server server(quietConfig());
    // With no budget the 72-qubit request passes admission; the
    // executor's own reservation is unlimited too, so the refusal (if
    // any) would come from the allocator — which is exactly why this
    // test only checks the *admission* outcome via stats, using a
    // compile op to avoid actually allocating 2^72 amplitudes.
    JsonValue co = parsed(server.processLine(
        "t", "{\"id\":1,\"op\":\"compile\",\"bench\":\"Sup6x12d8\","
             "\"device\":\"Google72\"}"));
    EXPECT_TRUE(co.getBool("ok", false));
    EXPECT_EQ(server.stats().budgetRejected, 0);
}
