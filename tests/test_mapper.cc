/**
 * @file
 * Mapper tests: interaction extraction, engine validity (injectivity),
 * branch-and-bound optimality against exhaustive search on random
 * instances, SMT/B&B agreement, and the max-min objective semantics.
 */

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <tuple>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/decompose.hh"
#include "core/mapper.hh"
#include "device/machines.hh"
#include "workloads/benchmarks.hh"

namespace triq
{
namespace
{

ReliabilityMatrix
randomMatrix(const Device &dev, uint64_t seed)
{
    Calibration calib = dev.averageCalibration();
    Rng rng(seed);
    for (auto &e : calib.err2q)
        e = rng.uniform(0.01, 0.35);
    for (auto &e : calib.errRO)
        e = rng.uniform(0.01, 0.2);
    return ReliabilityMatrix(dev.topology(), calib, dev.vendor());
}

/** Exhaustive max-min search over all injective placements. */
double
bruteForceBest(const ProgramInfo &info, const ReliabilityMatrix &rel,
               bool include_ro)
{
    std::vector<HwQubit> hw(static_cast<size_t>(rel.numQubits()));
    std::iota(hw.begin(), hw.end(), 0);
    double best = -1.0;
    std::vector<HwQubit> map(static_cast<size_t>(info.numProgQubits));
    // Enumerate placements as permutations of hw prefixes.
    std::sort(hw.begin(), hw.end());
    std::vector<bool> used(hw.size(), false);
    struct Rec
    {
        const ProgramInfo &info;
        const ReliabilityMatrix &rel;
        bool ro;
        std::vector<HwQubit> &map;
        std::vector<bool> &used;
        double &best;
        void
        go(size_t k)
        {
            if (k == map.size()) {
                best = std::max(
                    best, mappingMinReliability(info, rel, map, ro));
                return;
            }
            for (size_t h = 0; h < used.size(); ++h) {
                if (used[h])
                    continue;
                used[h] = true;
                map[k] = static_cast<HwQubit>(h);
                go(k + 1);
                used[h] = false;
            }
        }
    } rec{info, rel, include_ro, map, used, best};
    rec.go(0);
    return best;
}

TEST(ProgramInfoTest, ExtractsPairsAndWeights)
{
    Circuit c(4);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(1, 0)); // Same unordered pair.
    c.add(Gate::cnot(2, 3));
    c.add(Gate::measure(0));
    c.add(Gate::measure(3));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    ASSERT_EQ(info.pairs.size(), 2u);
    EXPECT_EQ(info.pairs[0].a, 0);
    EXPECT_EQ(info.pairs[0].b, 1);
    EXPECT_EQ(info.pairs[0].weight, 2);
    EXPECT_EQ(info.pairs[1].weight, 1);
    EXPECT_EQ(info.measured, (std::vector<ProgQubit>{0, 3}));
}

TEST(MapperTest, TrivialIsIdentity)
{
    Device dev = makeIbmQ5();
    ReliabilityMatrix rel = randomMatrix(dev, 1);
    Circuit c = decomposeToCnotBasis(makeBenchmark("BV4"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    Mapping m = trivialMapping(info, rel);
    for (size_t p = 0; p < m.progToHw.size(); ++p)
        EXPECT_EQ(m.progToHw[p], static_cast<HwQubit>(p));
}

class MapperEngines
    : public ::testing::TestWithParam<std::pair<MapperKind, uint64_t>>
{
};

TEST_P(MapperEngines, ProducesInjectiveValidMapping)
{
    auto [kind, seed] = GetParam();
    Device dev = makeIbmQ14();
    ReliabilityMatrix rel = randomMatrix(dev, seed);
    Circuit c = decomposeToCnotBasis(makeBenchmark("Adder"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    MappingOptions opts;
    opts.kind = kind;
    Mapping m = mapQubits(info, rel, opts);
    ASSERT_EQ(m.progToHw.size(),
              static_cast<size_t>(info.numProgQubits));
    // hwToProg panics on non-injective or out-of-range mappings.
    auto inv = m.hwToProg(dev.numQubits());
    EXPECT_GT(m.minReliability, 0.0);
    EXPECT_NEAR(m.minReliability,
                mappingMinReliability(info, rel, m.progToHw, true),
                1e-12);
}

std::vector<std::pair<MapperKind, uint64_t>>
engineCases()
{
    std::vector<std::pair<MapperKind, uint64_t>> cases;
    for (MapperKind k : {MapperKind::Trivial, MapperKind::Greedy,
                         MapperKind::BranchAndBound, MapperKind::Smt})
        for (uint64_t seed : {1u, 2u, 3u})
            cases.push_back({k, seed});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllEngines, MapperEngines,
                         ::testing::ValuesIn(engineCases()));

class BnbOptimality : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(BnbOptimality, MatchesExhaustiveSearch)
{
    // 4 program qubits on the 5-qubit bowtie: 120 placements, checkable.
    Device dev = makeIbmQ5();
    ReliabilityMatrix rel = randomMatrix(dev, GetParam());
    Circuit c = decomposeToCnotBasis(makeBenchmark("Adder"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    MappingOptions opts;
    opts.kind = MapperKind::BranchAndBound;
    Mapping m = mapQubits(info, rel, opts);
    EXPECT_TRUE(m.optimal);
    double best = bruteForceBest(info, rel, opts.includeReadout);
    EXPECT_NEAR(m.minReliability, best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomCalibrations, BnbOptimality,
                         ::testing::Range(uint64_t{10}, uint64_t{30}));

TEST(MapperTest, SmtAgreesWithBnb)
{
    if (!smtMapperAvailable())
        GTEST_SKIP() << "built without Z3";
    Device dev = makeIbmQ14();
    for (uint64_t seed : {5u, 6u}) {
        ReliabilityMatrix rel = randomMatrix(dev, seed);
        Circuit c = decomposeToCnotBasis(makeBenchmark("BV6"));
        ProgramInfo info = ProgramInfo::fromCircuit(c);
        MappingOptions opts;
        opts.kind = MapperKind::BranchAndBound;
        Mapping bnb = mapQubits(info, rel, opts);
        opts.kind = MapperKind::Smt;
        Mapping smt = mapQubits(info, rel, opts);
        ASSERT_TRUE(bnb.optimal);
        EXPECT_NEAR(smt.minReliability, bnb.minReliability, 1e-9);
    }
}

TEST(MapperTest, ReadoutAffectsObjective)
{
    // One qubit measured, no 2Q gates: the mapper must pick the best
    // readout unit when readout is part of the objective.
    Device dev = makeIbmQ5();
    Calibration calib = dev.averageCalibration();
    calib.errRO = {0.3, 0.3, 0.01, 0.3, 0.3};
    ReliabilityMatrix rel(dev.topology(), calib, dev.vendor());
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::measure(0));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    MappingOptions opts;
    opts.kind = MapperKind::BranchAndBound;
    Mapping m = mapQubits(info, rel, opts);
    EXPECT_EQ(m.progToHw[0], 2);
    EXPECT_NEAR(m.minReliability, 0.99, 1e-12);

    opts.includeReadout = false;
    Mapping m2 = mapQubits(info, rel, opts);
    EXPECT_NEAR(m2.minReliability, 1.0, 1e-12);
}

TEST(MapperTest, ProgramTooLargeIsFatal)
{
    Device dev = makeIbmQ5();
    ReliabilityMatrix rel = randomMatrix(dev, 9);
    Circuit c = decomposeToCnotBasis(makeBV(6));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    EXPECT_THROW(mapQubits(info, rel, MappingOptions{}), FatalError);
}

/** Exhaustive best weighted log-product over all injective placements. */
double
bruteForceBestProduct(const ProgramInfo &info,
                      const ReliabilityMatrix &rel, bool include_ro)
{
    double best = -1e300;
    std::vector<HwQubit> map(static_cast<size_t>(info.numProgQubits));
    std::vector<bool> used(static_cast<size_t>(rel.numQubits()), false);
    struct Rec
    {
        const ProgramInfo &info;
        const ReliabilityMatrix &rel;
        bool ro;
        std::vector<HwQubit> &map;
        std::vector<bool> &used;
        double &best;
        void
        go(size_t k)
        {
            if (k == map.size()) {
                best = std::max(
                    best, mappingLogProduct(info, rel, map, ro));
                return;
            }
            for (size_t h = 0; h < used.size(); ++h) {
                if (used[h])
                    continue;
                used[h] = true;
                map[k] = static_cast<HwQubit>(h);
                go(k + 1);
                used[h] = false;
            }
        }
    } rec{info, rel, include_ro, map, used, best};
    rec.go(0);
    return best;
}

class ProductOptimality : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ProductOptimality, BnbMatchesExhaustiveSearch)
{
    Device dev = makeIbmQ5();
    ReliabilityMatrix rel = randomMatrix(dev, GetParam());
    Circuit c = decomposeToCnotBasis(makeBenchmark("Adder"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    MappingOptions opts;
    opts.kind = MapperKind::BranchAndBound;
    opts.objective = MappingObjective::Product;
    Mapping m = mapQubits(info, rel, opts);
    EXPECT_TRUE(m.optimal);
    double best = bruteForceBestProduct(info, rel, opts.includeReadout);
    EXPECT_NEAR(m.logProduct, best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomCalibrations, ProductOptimality,
                         ::testing::Range(uint64_t{40}, uint64_t{52}));

TEST(MapperTest, MaxMinPrunesBetterThanProduct)
{
    // The paper's scalability argument: for the same instance, the
    // max-min search explores far fewer nodes than the product search.
    Device dev = makeIbmQ16();
    ReliabilityMatrix rel = randomMatrix(dev, 77);
    Circuit c = decomposeToCnotBasis(makeBenchmark("BV8"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    MappingOptions opts;
    opts.kind = MapperKind::BranchAndBound;
    opts.nodeBudget = 5000000;
    opts.objective = MappingObjective::MaxMin;
    Mapping mm = mapQubits(info, rel, opts);
    opts.objective = MappingObjective::Product;
    Mapping pr = mapQubits(info, rel, opts);
    EXPECT_LT(mm.nodesExplored, pr.nodesExplored);
}

TEST(MapperTest, KindParsing)
{
    EXPECT_EQ(mapperKindFromString("trivial"), MapperKind::Trivial);
    EXPECT_EQ(mapperKindFromString("greedy"), MapperKind::Greedy);
    EXPECT_EQ(mapperKindFromString("bnb"), MapperKind::BranchAndBound);
    EXPECT_EQ(mapperKindFromString("smt"), MapperKind::Smt);
    EXPECT_THROW(mapperKindFromString("qiskit"), FatalError);
}

TEST(MapperTest, GreedyNeverBeatenBadlyByTrivial)
{
    // Sanity: greedy should never be worse than the identity layout.
    Device dev = makeIbmQ16();
    for (uint64_t seed = 50; seed < 60; ++seed) {
        ReliabilityMatrix rel = randomMatrix(dev, seed);
        Circuit c = decomposeToCnotBasis(makeBenchmark("BV8"));
        ProgramInfo info = ProgramInfo::fromCircuit(c);
        MappingOptions opts;
        opts.kind = MapperKind::Greedy;
        Mapping greedy = mapQubits(info, rel, opts);
        Mapping trivial = trivialMapping(info, rel);
        EXPECT_GE(greedy.minReliability,
                  trivial.minReliability - 1e-12);
    }
}

// ---------------------------------------------------------------------
// Planner-grade search: every pruning feature must be sound (same
// optimum as exhaustive search) in isolation and in combination, the
// warm-start path must honor its never-worse contract, and the runtime
// vetoes must actually veto.

MappingOptions
plannerOpts(bool bound, bool symmetry, bool dominance)
{
    MappingOptions opts;
    opts.kind = MapperKind::BranchAndBound;
    opts.useStrongBound = bound;
    opts.useSymmetry = symmetry;
    opts.useDominance = dominance;
    return opts;
}

/** The symmetric pair score the search uses (mapper-internal). */
double
symScore(const ReliabilityMatrix &rel, HwQubit a, HwQubit b)
{
    return std::max(rel.pairReliability(a, b),
                    rel.pairReliability(b, a));
}

class ToggleOptimality
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>>
{
};

TEST_P(ToggleOptimality, MaxMinMatchesExhaustiveSearch)
{
    auto [seed, combo] = GetParam();
    Device dev = makeIbmQ5();
    ReliabilityMatrix rel = randomMatrix(dev, seed);
    Circuit c = decomposeToCnotBasis(makeBenchmark("Adder"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    MappingOptions opts =
        plannerOpts(combo & 1, combo & 2, combo & 4);
    Mapping m = mapQubits(info, rel, opts);
    EXPECT_TRUE(m.optimal);
    EXPECT_EQ(m.boundType, (combo & 1) ? "row-relax" : "legacy");
    double best = bruteForceBest(info, rel, opts.includeReadout);
    EXPECT_NEAR(m.minReliability, best, 1e-9);
}

TEST_P(ToggleOptimality, ProductMatchesExhaustiveSearch)
{
    auto [seed, combo] = GetParam();
    Device dev = makeIbmQ5();
    ReliabilityMatrix rel = randomMatrix(dev, seed + 1000);
    Circuit c = decomposeToCnotBasis(makeBenchmark("Adder"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    MappingOptions opts =
        plannerOpts(combo & 1, combo & 2, combo & 4);
    opts.objective = MappingObjective::Product;
    Mapping m = mapQubits(info, rel, opts);
    EXPECT_TRUE(m.optimal);
    double best = bruteForceBestProduct(info, rel, opts.includeReadout);
    EXPECT_NEAR(m.logProduct, best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllToggleCombos, ToggleOptimality,
    ::testing::Combine(::testing::Range(uint64_t{10}, uint64_t{14}),
                       ::testing::Range(0, 8)));

TEST(PlannerSearch, UniformCalibrationKeepsOptimalityWithSymmetry)
{
    // The average calibration is uniform per gate type, so the bowtie's
    // graph automorphisms become real equivalence classes — the case
    // where symmetry pruning actually collapses subtrees. The optimum
    // must survive.
    Device dev = makeIbmQ5();
    ReliabilityMatrix rel(dev.topology(), dev.averageCalibration(),
                          dev.vendor());
    std::vector<int> cls = rel.equivalenceClasses();
    ASSERT_EQ(cls.size(), static_cast<size_t>(rel.numQubits()));
    int num_classes = 0;
    for (size_t h = 0; h < cls.size(); ++h) {
        ASSERT_GE(cls[h], 0);
        ASSERT_LT(cls[h], rel.numQubits());
        num_classes = std::max(num_classes, cls[h] + 1);
        // Same class => identical scoring signature.
        for (size_t h2 = 0; h2 < h; ++h2) {
            if (cls[h2] != cls[h])
                continue;
            EXPECT_EQ(rel.readoutReliability(static_cast<HwQubit>(h2)),
                      rel.readoutReliability(static_cast<HwQubit>(h)));
            for (HwQubit x = 0; x < rel.numQubits(); ++x) {
                if (x == static_cast<HwQubit>(h) ||
                    x == static_cast<HwQubit>(h2))
                    continue;
                EXPECT_EQ(symScore(rel, static_cast<HwQubit>(h), x),
                          symScore(rel, static_cast<HwQubit>(h2), x));
            }
        }
    }
    Circuit c = decomposeToCnotBasis(makeBenchmark("Adder"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    Mapping m = mapQubits(info, rel, plannerOpts(true, true, true));
    EXPECT_TRUE(m.optimal);
    EXPECT_NEAR(m.minReliability, bruteForceBest(info, rel, true),
                1e-9);
    if (num_classes < rel.numQubits()) {
        EXPECT_GT(m.symmetryPruned, 0);
    }
}

TEST(PlannerSearch, StrongBoundNeverExpandsMoreNodes)
{
    // Anytime dominance: the stronger bound prunes a superset of the
    // subtrees the bare incumbent cut prunes, so at any budget the new
    // engine explores no more nodes and returns no worse a value.
    Device dev = makeIbmQ14();
    Circuit c = decomposeToCnotBasis(makeBenchmark("Adder"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    for (uint64_t seed : {21u, 22u, 23u}) {
        ReliabilityMatrix rel = randomMatrix(dev, seed);
        Mapping legacy =
            mapQubits(info, rel, plannerOpts(false, false, false));
        Mapping fresh =
            mapQubits(info, rel, plannerOpts(true, true, true));
        EXPECT_LE(fresh.nodesExplored, legacy.nodesExplored);
        EXPECT_GE(fresh.minReliability, legacy.minReliability - 1e-12);
        EXPECT_GT(fresh.boundPruned, 0);
    }
}

TEST(PlannerSearch, EnvVetoFallsBackToLegacyBound)
{
    Device dev = makeIbmQ5();
    ReliabilityMatrix rel = randomMatrix(dev, 31);
    Circuit c = decomposeToCnotBasis(makeBenchmark("Adder"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    setenv("TRIQ_MAPPER_BOUND", "0", 1);
    Mapping m = mapQubits(info, rel, plannerOpts(true, true, true));
    unsetenv("TRIQ_MAPPER_BOUND");
    EXPECT_EQ(m.boundType, "legacy");
    EXPECT_TRUE(m.optimal);
    EXPECT_NEAR(m.minReliability, bruteForceBest(info, rel, true),
                1e-9);
}

TEST(WarmStart, MatchesColdSearchValue)
{
    // A warm start changes where the incumbent comes from, never what
    // the search proves: value identity with the cold search (the maps
    // themselves may differ between equal-valued optima).
    Device dev = makeIbmQ14();
    Circuit c = decomposeToCnotBasis(makeBenchmark("Adder"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    for (uint64_t seed : {61u, 62u, 63u}) {
        ReliabilityMatrix rel = randomMatrix(dev, seed);
        MappingOptions cold_opts;
        Mapping cold = mapQubits(info, rel, cold_opts);
        ASSERT_TRUE(cold.optimal);
        MappingOptions warm_opts;
        warm_opts.warmStart.resize(
            static_cast<size_t>(info.numProgQubits));
        std::iota(warm_opts.warmStart.begin(),
                  warm_opts.warmStart.end(), 0);
        warm_opts.warmStartOrigin = "test(identity)";
        Mapping warm = mapQubits(info, rel, warm_opts);
        EXPECT_TRUE(warm.optimal);
        EXPECT_TRUE(warm.warmStarted);
        EXPECT_EQ(warm.warmStartOrigin, "test(identity)");
        EXPECT_NEAR(warm.minReliability, cold.minReliability, 1e-12);
    }
}

TEST(WarmStart, StaleOptimumShrinksProofTree)
{
    // The drift scenario: seeding from the (already optimal) cold map
    // can only tighten the root incumbent, so the proof tree shrinks
    // and the value is unchanged.
    Device dev = makeIbmQ14();
    ReliabilityMatrix rel = randomMatrix(dev, 71);
    Circuit c = decomposeToCnotBasis(makeBenchmark("Adder"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    Mapping cold = mapQubits(info, rel, MappingOptions{});
    ASSERT_TRUE(cold.optimal);
    MappingOptions warm_opts;
    warm_opts.warmStart = cold.progToHw;
    warm_opts.warmStartOrigin = "drift(test)";
    Mapping warm = mapQubits(info, rel, warm_opts);
    EXPECT_TRUE(warm.optimal);
    EXPECT_TRUE(warm.warmStarted);
    EXPECT_LE(warm.nodesExplored, cold.nodesExplored);
    EXPECT_NEAR(warm.minReliability, cold.minReliability, 1e-12);
}

TEST(WarmStart, NeverWorseThanColdUnderExhaustedBudget)
{
    // A deliberately terrible warm seed plus a node budget too small
    // to search: the engine must still return at least the cold
    // (greedy-seeded) value, because it keeps the better of the warm
    // and constructive seeds as its incumbent.
    Device dev = makeIbmQ14();
    ReliabilityMatrix rel = randomMatrix(dev, 81);
    Circuit c = decomposeToCnotBasis(makeBenchmark("Adder"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    MappingOptions greedy_opts;
    greedy_opts.kind = MapperKind::Greedy;
    Mapping greedy = mapQubits(info, rel, greedy_opts);
    MappingOptions warm_opts;
    warm_opts.nodeBudget = 1;
    warm_opts.warmStart.resize(
        static_cast<size_t>(info.numProgQubits));
    for (int p = 0; p < info.numProgQubits; ++p)
        warm_opts.warmStart[static_cast<size_t>(p)] =
            dev.numQubits() - 1 - p;
    Mapping warm = mapQubits(info, rel, warm_opts);
    EXPECT_FALSE(warm.optimal);
    EXPECT_GE(warm.minReliability, greedy.minReliability - 1e-12);
}

TEST(WarmStart, InvalidPlacementDegradesToGreedySeed)
{
    Device dev = makeIbmQ5();
    ReliabilityMatrix rel = randomMatrix(dev, 91);
    Circuit c = decomposeToCnotBasis(makeBenchmark("Adder"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    MappingOptions opts;
    opts.warmStart.assign(static_cast<size_t>(info.numProgQubits), 0);
    opts.warmStartOrigin = "test(bogus)";
    Mapping m = mapQubits(info, rel, opts);
    EXPECT_FALSE(m.warmStarted);
    EXPECT_TRUE(m.warmStartOrigin.empty());
    EXPECT_TRUE(m.optimal);
    bool noted = false;
    for (const std::string &n : m.notes)
        noted = noted || n.find("invalid warm-start") != std::string::npos;
    EXPECT_TRUE(noted);
    EXPECT_NEAR(m.minReliability, bruteForceBest(info, rel, true),
                1e-9);
}

TEST(WarmStart, AnytimeUnderExpiredDeadline)
{
    // Deadline already fired: the engine must return the warm seed
    // verbatim (no search, no polish), marked timed out — the anytime
    // floor of the drift-remap path.
    Device dev = makeIbmQ14();
    ReliabilityMatrix rel = randomMatrix(dev, 95);
    Circuit c = decomposeToCnotBasis(makeBenchmark("Adder"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    MappingOptions opts;
    opts.budget = CompileBudget::withDeadlineMs(0.0);
    opts.warmStart.resize(static_cast<size_t>(info.numProgQubits));
    std::iota(opts.warmStart.begin(), opts.warmStart.end(), 0);
    opts.warmStartOrigin = "drift(test)";
    Mapping m = mapQubits(info, rel, opts);
    EXPECT_EQ(m.engine, "warm");
    EXPECT_TRUE(m.timedOut);
    EXPECT_TRUE(m.warmStarted);
    EXPECT_FALSE(m.optimal);
    EXPECT_EQ(m.progToHw, opts.warmStart);
}

TEST(WarmStart, EnvVetoDisablesWarmStart)
{
    Device dev = makeIbmQ5();
    ReliabilityMatrix rel = randomMatrix(dev, 97);
    Circuit c = decomposeToCnotBasis(makeBenchmark("Adder"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    MappingOptions opts;
    opts.warmStart.resize(static_cast<size_t>(info.numProgQubits));
    std::iota(opts.warmStart.begin(), opts.warmStart.end(), 0);
    setenv("TRIQ_MAPPER_WARM", "0", 1);
    Mapping m = mapQubits(info, rel, opts);
    unsetenv("TRIQ_MAPPER_WARM");
    EXPECT_FALSE(m.warmStarted);
    EXPECT_TRUE(m.optimal);
}

} // namespace
} // namespace triq
