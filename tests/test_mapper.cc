/**
 * @file
 * Mapper tests: interaction extraction, engine validity (injectivity),
 * branch-and-bound optimality against exhaustive search on random
 * instances, SMT/B&B agreement, and the max-min objective semantics.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/decompose.hh"
#include "core/mapper.hh"
#include "device/machines.hh"
#include "workloads/benchmarks.hh"

namespace triq
{
namespace
{

ReliabilityMatrix
randomMatrix(const Device &dev, uint64_t seed)
{
    Calibration calib = dev.averageCalibration();
    Rng rng(seed);
    for (auto &e : calib.err2q)
        e = rng.uniform(0.01, 0.35);
    for (auto &e : calib.errRO)
        e = rng.uniform(0.01, 0.2);
    return ReliabilityMatrix(dev.topology(), calib, dev.vendor());
}

/** Exhaustive max-min search over all injective placements. */
double
bruteForceBest(const ProgramInfo &info, const ReliabilityMatrix &rel,
               bool include_ro)
{
    std::vector<HwQubit> hw(static_cast<size_t>(rel.numQubits()));
    std::iota(hw.begin(), hw.end(), 0);
    double best = -1.0;
    std::vector<HwQubit> map(static_cast<size_t>(info.numProgQubits));
    // Enumerate placements as permutations of hw prefixes.
    std::sort(hw.begin(), hw.end());
    std::vector<bool> used(hw.size(), false);
    struct Rec
    {
        const ProgramInfo &info;
        const ReliabilityMatrix &rel;
        bool ro;
        std::vector<HwQubit> &map;
        std::vector<bool> &used;
        double &best;
        void
        go(size_t k)
        {
            if (k == map.size()) {
                best = std::max(
                    best, mappingMinReliability(info, rel, map, ro));
                return;
            }
            for (size_t h = 0; h < used.size(); ++h) {
                if (used[h])
                    continue;
                used[h] = true;
                map[k] = static_cast<HwQubit>(h);
                go(k + 1);
                used[h] = false;
            }
        }
    } rec{info, rel, include_ro, map, used, best};
    rec.go(0);
    return best;
}

TEST(ProgramInfoTest, ExtractsPairsAndWeights)
{
    Circuit c(4);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(1, 0)); // Same unordered pair.
    c.add(Gate::cnot(2, 3));
    c.add(Gate::measure(0));
    c.add(Gate::measure(3));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    ASSERT_EQ(info.pairs.size(), 2u);
    EXPECT_EQ(info.pairs[0].a, 0);
    EXPECT_EQ(info.pairs[0].b, 1);
    EXPECT_EQ(info.pairs[0].weight, 2);
    EXPECT_EQ(info.pairs[1].weight, 1);
    EXPECT_EQ(info.measured, (std::vector<ProgQubit>{0, 3}));
}

TEST(MapperTest, TrivialIsIdentity)
{
    Device dev = makeIbmQ5();
    ReliabilityMatrix rel = randomMatrix(dev, 1);
    Circuit c = decomposeToCnotBasis(makeBenchmark("BV4"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    Mapping m = trivialMapping(info, rel);
    for (size_t p = 0; p < m.progToHw.size(); ++p)
        EXPECT_EQ(m.progToHw[p], static_cast<HwQubit>(p));
}

class MapperEngines
    : public ::testing::TestWithParam<std::pair<MapperKind, uint64_t>>
{
};

TEST_P(MapperEngines, ProducesInjectiveValidMapping)
{
    auto [kind, seed] = GetParam();
    Device dev = makeIbmQ14();
    ReliabilityMatrix rel = randomMatrix(dev, seed);
    Circuit c = decomposeToCnotBasis(makeBenchmark("Adder"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    MappingOptions opts;
    opts.kind = kind;
    Mapping m = mapQubits(info, rel, opts);
    ASSERT_EQ(m.progToHw.size(),
              static_cast<size_t>(info.numProgQubits));
    // hwToProg panics on non-injective or out-of-range mappings.
    auto inv = m.hwToProg(dev.numQubits());
    EXPECT_GT(m.minReliability, 0.0);
    EXPECT_NEAR(m.minReliability,
                mappingMinReliability(info, rel, m.progToHw, true),
                1e-12);
}

std::vector<std::pair<MapperKind, uint64_t>>
engineCases()
{
    std::vector<std::pair<MapperKind, uint64_t>> cases;
    for (MapperKind k : {MapperKind::Trivial, MapperKind::Greedy,
                         MapperKind::BranchAndBound, MapperKind::Smt})
        for (uint64_t seed : {1u, 2u, 3u})
            cases.push_back({k, seed});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllEngines, MapperEngines,
                         ::testing::ValuesIn(engineCases()));

class BnbOptimality : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(BnbOptimality, MatchesExhaustiveSearch)
{
    // 4 program qubits on the 5-qubit bowtie: 120 placements, checkable.
    Device dev = makeIbmQ5();
    ReliabilityMatrix rel = randomMatrix(dev, GetParam());
    Circuit c = decomposeToCnotBasis(makeBenchmark("Adder"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    MappingOptions opts;
    opts.kind = MapperKind::BranchAndBound;
    Mapping m = mapQubits(info, rel, opts);
    EXPECT_TRUE(m.optimal);
    double best = bruteForceBest(info, rel, opts.includeReadout);
    EXPECT_NEAR(m.minReliability, best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomCalibrations, BnbOptimality,
                         ::testing::Range(uint64_t{10}, uint64_t{30}));

TEST(MapperTest, SmtAgreesWithBnb)
{
    if (!smtMapperAvailable())
        GTEST_SKIP() << "built without Z3";
    Device dev = makeIbmQ14();
    for (uint64_t seed : {5u, 6u}) {
        ReliabilityMatrix rel = randomMatrix(dev, seed);
        Circuit c = decomposeToCnotBasis(makeBenchmark("BV6"));
        ProgramInfo info = ProgramInfo::fromCircuit(c);
        MappingOptions opts;
        opts.kind = MapperKind::BranchAndBound;
        Mapping bnb = mapQubits(info, rel, opts);
        opts.kind = MapperKind::Smt;
        Mapping smt = mapQubits(info, rel, opts);
        ASSERT_TRUE(bnb.optimal);
        EXPECT_NEAR(smt.minReliability, bnb.minReliability, 1e-9);
    }
}

TEST(MapperTest, ReadoutAffectsObjective)
{
    // One qubit measured, no 2Q gates: the mapper must pick the best
    // readout unit when readout is part of the objective.
    Device dev = makeIbmQ5();
    Calibration calib = dev.averageCalibration();
    calib.errRO = {0.3, 0.3, 0.01, 0.3, 0.3};
    ReliabilityMatrix rel(dev.topology(), calib, dev.vendor());
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::measure(0));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    MappingOptions opts;
    opts.kind = MapperKind::BranchAndBound;
    Mapping m = mapQubits(info, rel, opts);
    EXPECT_EQ(m.progToHw[0], 2);
    EXPECT_NEAR(m.minReliability, 0.99, 1e-12);

    opts.includeReadout = false;
    Mapping m2 = mapQubits(info, rel, opts);
    EXPECT_NEAR(m2.minReliability, 1.0, 1e-12);
}

TEST(MapperTest, ProgramTooLargeIsFatal)
{
    Device dev = makeIbmQ5();
    ReliabilityMatrix rel = randomMatrix(dev, 9);
    Circuit c = decomposeToCnotBasis(makeBV(6));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    EXPECT_THROW(mapQubits(info, rel, MappingOptions{}), FatalError);
}

/** Exhaustive best weighted log-product over all injective placements. */
double
bruteForceBestProduct(const ProgramInfo &info,
                      const ReliabilityMatrix &rel, bool include_ro)
{
    double best = -1e300;
    std::vector<HwQubit> map(static_cast<size_t>(info.numProgQubits));
    std::vector<bool> used(static_cast<size_t>(rel.numQubits()), false);
    struct Rec
    {
        const ProgramInfo &info;
        const ReliabilityMatrix &rel;
        bool ro;
        std::vector<HwQubit> &map;
        std::vector<bool> &used;
        double &best;
        void
        go(size_t k)
        {
            if (k == map.size()) {
                best = std::max(
                    best, mappingLogProduct(info, rel, map, ro));
                return;
            }
            for (size_t h = 0; h < used.size(); ++h) {
                if (used[h])
                    continue;
                used[h] = true;
                map[k] = static_cast<HwQubit>(h);
                go(k + 1);
                used[h] = false;
            }
        }
    } rec{info, rel, include_ro, map, used, best};
    rec.go(0);
    return best;
}

class ProductOptimality : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ProductOptimality, BnbMatchesExhaustiveSearch)
{
    Device dev = makeIbmQ5();
    ReliabilityMatrix rel = randomMatrix(dev, GetParam());
    Circuit c = decomposeToCnotBasis(makeBenchmark("Adder"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    MappingOptions opts;
    opts.kind = MapperKind::BranchAndBound;
    opts.objective = MappingObjective::Product;
    Mapping m = mapQubits(info, rel, opts);
    EXPECT_TRUE(m.optimal);
    double best = bruteForceBestProduct(info, rel, opts.includeReadout);
    EXPECT_NEAR(m.logProduct, best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomCalibrations, ProductOptimality,
                         ::testing::Range(uint64_t{40}, uint64_t{52}));

TEST(MapperTest, MaxMinPrunesBetterThanProduct)
{
    // The paper's scalability argument: for the same instance, the
    // max-min search explores far fewer nodes than the product search.
    Device dev = makeIbmQ16();
    ReliabilityMatrix rel = randomMatrix(dev, 77);
    Circuit c = decomposeToCnotBasis(makeBenchmark("BV8"));
    ProgramInfo info = ProgramInfo::fromCircuit(c);
    MappingOptions opts;
    opts.kind = MapperKind::BranchAndBound;
    opts.nodeBudget = 5000000;
    opts.objective = MappingObjective::MaxMin;
    Mapping mm = mapQubits(info, rel, opts);
    opts.objective = MappingObjective::Product;
    Mapping pr = mapQubits(info, rel, opts);
    EXPECT_LT(mm.nodesExplored, pr.nodesExplored);
}

TEST(MapperTest, KindParsing)
{
    EXPECT_EQ(mapperKindFromString("trivial"), MapperKind::Trivial);
    EXPECT_EQ(mapperKindFromString("greedy"), MapperKind::Greedy);
    EXPECT_EQ(mapperKindFromString("bnb"), MapperKind::BranchAndBound);
    EXPECT_EQ(mapperKindFromString("smt"), MapperKind::Smt);
    EXPECT_THROW(mapperKindFromString("qiskit"), FatalError);
}

TEST(MapperTest, GreedyNeverBeatenBadlyByTrivial)
{
    // Sanity: greedy should never be worse than the identity layout.
    Device dev = makeIbmQ16();
    for (uint64_t seed = 50; seed < 60; ++seed) {
        ReliabilityMatrix rel = randomMatrix(dev, seed);
        Circuit c = decomposeToCnotBasis(makeBenchmark("BV8"));
        ProgramInfo info = ProgramInfo::fromCircuit(c);
        MappingOptions opts;
        opts.kind = MapperKind::Greedy;
        Mapping greedy = mapQubits(info, rel, opts);
        Mapping trivial = trivialMapping(info, rel);
        EXPECT_GE(greedy.minReliability,
                  trivial.minReliability - 1e-12);
    }
}

} // namespace
} // namespace triq
