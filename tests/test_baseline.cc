/**
 * @file
 * Vendor-compiler model tests: validity of the emitted circuits, the
 * "first few qubits" layout policy, vendor gating, and the expected
 * inferiority to TriQ's optimized placement on communication-heavy
 * benchmarks.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "baseline/astar_router.hh"
#include "baseline/vendor_compilers.hh"
#include "common/rng.hh"
#include "core/decompose.hh"
#include "core/unitary.hh"
#include "device/machines.hh"
#include "workloads/benchmarks.hh"

namespace triq
{
namespace
{

TEST(Baseline, QiskitLikeEmitsValidIbmCircuit)
{
    Device dev = makeIbmQ14();
    CompileResult res = compileQiskitLike(makeBenchmark("BV6"), dev);
    for (const auto &g : res.hwCircuit.gates()) {
        if (isTwoQubitGate(g.kind)) {
            EXPECT_EQ(g.kind, GateKind::Cnot);
            EXPECT_TRUE(dev.topology().adjacent(g.qubit(0), g.qubit(1)));
            EXPECT_TRUE(
                dev.topology().orientationNative(g.qubit(0), g.qubit(1)));
        }
    }
    EXPECT_NE(res.assembly.find("OPENQASM"), std::string::npos);
}

TEST(Baseline, QuilLikeEmitsValidRigettiCircuit)
{
    Device dev = makeRigettiAspen3();
    CompileResult res = compileQuilLike(makeBenchmark("QFT"), dev);
    for (const auto &g : res.hwCircuit.gates())
        if (isTwoQubitGate(g.kind)) {
            EXPECT_EQ(g.kind, GateKind::Cz);
            EXPECT_TRUE(dev.topology().adjacent(g.qubit(0), g.qubit(1)));
        }
    EXPECT_NE(res.assembly.find("DECLARE"), std::string::npos);
}

TEST(Baseline, LexicographicLayout)
{
    // "It always uses the first few qubits in the device" (Sec. 6.3).
    Device dev = makeIbmQ16();
    CompileResult res = compileQiskitLike(makeBenchmark("Adder"), dev);
    for (size_t p = 0; p < res.initialMap.size(); ++p)
        EXPECT_EQ(res.initialMap[p], static_cast<HwQubit>(p));
}

TEST(Baseline, VendorGating)
{
    EXPECT_THROW(
        compileQiskitLike(makeBenchmark("BV4"), makeRigettiAspen1()),
        FatalError);
    EXPECT_THROW(
        compileQuilLike(makeBenchmark("BV4"), makeIbmQ5()),
        FatalError);
    EXPECT_THROW(
        compileQiskitLike(makeBenchmark("BV4"), makeUmdTi()),
        FatalError);
}

TEST(Baseline, TriqBeatsVendorOn2qCountForBv)
{
    // BV's star interaction graph punishes the identity layout.
    Device dev = makeIbmQ14();
    Calibration calib = dev.calibrate(3);
    CompileResult vendor = compileQiskitLike(makeBenchmark("BV8"), dev);
    CompileOptions opts;
    opts.level = OptLevel::OneQOptCN;
    CompileResult triq =
        compileForDevice(makeBenchmark("BV8"), dev, calib, opts);
    EXPECT_LT(triq.stats.twoQ, vendor.stats.twoQ);
    EXPECT_LT(triq.swapCount, vendor.swapCount);
}

TEST(Baseline, SeedPerturbsRouting)
{
    // The stochastic tie-break may change routing between seeds, but
    // results are deterministic for a fixed seed.
    Device dev = makeIbmQ14();
    Circuit program = makeBenchmark("QFT");
    CompileResult a = compileQiskitLike(program, dev, 7);
    CompileResult b = compileQiskitLike(program, dev, 7);
    EXPECT_EQ(a.stats.twoQ, b.stats.twoQ);
    EXPECT_EQ(a.assembly, b.assembly);
}

TEST(Baseline, TooLargeProgramIsFatal)
{
    EXPECT_THROW(
        compileQuilLike(makeBenchmark("BV6"), makeRigettiAgave()),
        FatalError);
    EXPECT_THROW(
        routeAstarLayered(decomposeToCnotBasis(makeBV(6)),
                          makeRigettiAgave().topology()),
        FatalError);
}

TEST(AstarRouter, AdjacentLayerNeedsNoSwaps)
{
    Topology line = Topology::line(4);
    Circuit c(4);
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(2, 3)); // Disjoint: same layer.
    AstarRoutingResult r = routeAstarLayered(c, line);
    EXPECT_EQ(r.swapCount, 0);
    EXPECT_EQ(r.circuit.count2q(), 2);
}

TEST(AstarRouter, DistantGateGetsMinimalSwaps)
{
    Topology line = Topology::line(4);
    Circuit c(4);
    c.add(Gate::cnot(0, 3));
    AstarRoutingResult r = routeAstarLayered(c, line);
    // Distance 3 -> two swaps suffice and A* must find exactly two.
    EXPECT_EQ(r.swapCount, 2);
    for (const auto &g : r.circuit.gates()) {
        if (isTwoQubitGate(g.kind)) {
            EXPECT_TRUE(line.adjacent(g.qubit(0), g.qubit(1)));
        }
    }
}

TEST(AstarRouter, ParallelLayerSharesSwaps)
{
    // Layer {CNOT(0,2), CNOT(1,3)} on a line: a good joint swap
    // sequence satisfies both gates with 2 swaps (e.g. swap(1,2) fixes
    // both); per-gate greedy would use more.
    Topology line = Topology::line(4);
    Circuit c(4);
    c.add(Gate::cnot(0, 2));
    c.add(Gate::cnot(1, 3));
    AstarRoutingResult r = routeAstarLayered(c, line);
    EXPECT_LE(r.swapCount, 2);
}

TEST(AstarRouter, PreservesSemanticsOnRandomCircuits)
{
    Rng rng(909);
    for (int rep = 0; rep < 10; ++rep) {
        Device dev = rep % 2 == 0 ? makeIbmQ5() : makeRigettiAgave();
        int n = 4;
        Circuit c(n, "astar_rand");
        for (int i = 0; i < 10; ++i) {
            if (rng.uniformInt(3) == 0) {
                c.add(Gate::h(rng.uniformInt(n)));
            } else {
                int a = rng.uniformInt(n);
                int b = (a + 1 + rng.uniformInt(n - 1)) % n;
                c.add(Gate::cnot(a, b));
            }
        }
        AstarRoutingResult r = routeAstarLayered(c, dev.topology());
        // Reference: program embedded at identity placement, with the
        // router's net permutation undone via extra swaps.
        Circuit ref(dev.topology().numQubits());
        for (const auto &g : c.gates()) {
            Gate hw = g;
            ref.add(hw);
        }
        Circuit undo(dev.topology().numQubits());
        for (const auto &g : r.circuit.gates())
            undo.add(g);
        // Bring every displaced qubit home.
        std::vector<int> where(
            static_cast<size_t>(dev.topology().numQubits()));
        for (size_t h = 0; h < where.size(); ++h)
            where[h] = static_cast<int>(h);
        for (const auto &g : r.circuit.gates())
            if (g.kind == GateKind::Swap) {
                for (auto &w : where)
                    if (w == g.qubit(0))
                        w = g.qubit(1);
                    else if (w == g.qubit(1))
                        w = g.qubit(0);
            }
        for (int h = 0; h < dev.topology().numQubits(); ++h) {
            int cur = where[static_cast<size_t>(h)];
            if (cur == h)
                continue;
            undo.add(Gate::swap(cur, h));
            for (auto &w : where)
                if (w == cur)
                    w = h;
                else if (w == h)
                    w = cur;
        }
        EXPECT_TRUE(sameUnitary(undo, ref)) << rep;
    }
}

TEST(AstarRouter, TriqPlacementBeatsAstarOnBv)
{
    // The Sec. 8 gap: identity placement + optimal routing still loses
    // to TriQ's placement on star-shaped interaction graphs.
    Device dev = makeIbmQ14();
    Circuit program = makeBenchmark("BV8");
    Circuit lowered = decomposeToCnotBasis(program);
    AstarRoutingResult astar =
        routeAstarLayered(lowered, dev.topology());
    CompileOptions opts;
    opts.level = OptLevel::OneQOptC;
    opts.emitAssembly = false;
    auto triq = compileForDevice(program, dev, dev.calibrate(3), opts);
    EXPECT_GT(astar.swapCount, triq.swapCount);
}

} // namespace
} // namespace triq
