/**
 * @file
 * Compiler-driver tests: the four Table-1 levels differ exactly as
 * specified; statistics are consistent; ESP ordering across levels is
 * sane on rigged calibrations.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "core/compiler.hh"
#include "core/esp.hh"
#include "device/machines.hh"
#include "sim/verify.hh"
#include "workloads/benchmarks.hh"

namespace triq
{
namespace
{

TEST(Compiler, LevelNames)
{
    EXPECT_EQ(optLevelName(OptLevel::N), "TriQ-N");
    EXPECT_EQ(optLevelName(OptLevel::OneQOpt), "TriQ-1QOpt");
    EXPECT_EQ(optLevelName(OptLevel::OneQOptC), "TriQ-1QOptC");
    EXPECT_EQ(optLevelName(OptLevel::OneQOptCN), "TriQ-1QOptCN");
}

TEST(Compiler, DefaultMappingLevelsUseIdentityPlacement)
{
    Device dev = makeIbmQ14();
    Calibration calib = dev.calibrate(1);
    Circuit program = makeBenchmark("BV4");
    for (OptLevel lvl : {OptLevel::N, OptLevel::OneQOpt}) {
        CompileOptions opts;
        opts.level = lvl;
        CompileResult res = compileForDevice(program, dev, calib, opts);
        for (size_t p = 0; p < res.initialMap.size(); ++p)
            EXPECT_EQ(res.initialMap[p], static_cast<HwQubit>(p))
                << optLevelName(lvl);
    }
}

TEST(Compiler, FusionReducesPulses)
{
    Device dev = makeIbmQ14();
    Calibration calib = dev.calibrate(1);
    Circuit program = makeBenchmark("HS4");
    CompileOptions opts;
    opts.level = OptLevel::N;
    auto naive = compileForDevice(program, dev, calib, opts);
    opts.level = OptLevel::OneQOpt;
    auto fused = compileForDevice(program, dev, calib, opts);
    EXPECT_LT(fused.stats.pulses1q, naive.stats.pulses1q);
    // Same placement, same communication: 2Q counts match.
    EXPECT_EQ(fused.stats.twoQ, naive.stats.twoQ);
}

TEST(Compiler, CommOptReducesSwapsForBv)
{
    Device dev = makeIbmQ14();
    Calibration calib = dev.calibrate(1);
    Circuit program = makeBenchmark("BV8");
    CompileOptions opts;
    opts.level = OptLevel::OneQOpt;
    auto deflt = compileForDevice(program, dev, calib, opts);
    opts.level = OptLevel::OneQOptC;
    auto comm = compileForDevice(program, dev, calib, opts);
    EXPECT_LT(comm.swapCount, deflt.swapCount);
    EXPECT_LT(comm.stats.twoQ, deflt.stats.twoQ);
}

TEST(Compiler, NoiseAwareAvoidsRiggedBadRegion)
{
    // Rig a calibration where the "cheap" identity-region edges are
    // terrible: CN must place elsewhere and achieve much better ESP.
    Device dev = makeIbmQ16();
    Calibration calib = dev.averageCalibration();
    const Topology &topo = dev.topology();
    for (int e = 0; e < topo.numEdges(); ++e) {
        const Coupling &cp = topo.edge(e);
        bool near_origin = cp.a <= 4 || cp.b <= 4;
        calib.err2q[static_cast<size_t>(e)] =
            near_origin ? 0.30 : 0.02;
    }
    Circuit program = makeBenchmark("BV4");
    CompileOptions opts;
    opts.level = OptLevel::OneQOptC;
    auto blind = compileForDevice(program, dev, calib, opts);
    opts.level = OptLevel::OneQOptCN;
    auto aware = compileForDevice(program, dev, calib, opts);
    double esp_blind = estimatedSuccessProbability(
        blind.hwCircuit, topo, calib);
    double esp_aware = estimatedSuccessProbability(
        aware.hwCircuit, topo, calib);
    EXPECT_GT(esp_aware, esp_blind);
    // The noise-aware placement must avoid all rigged-bad edges.
    for (const auto &g : aware.hwCircuit.gates())
        if (isTwoQubitGate(g.kind)) {
            int e = topo.edgeBetween(g.qubit(0), g.qubit(1));
            EXPECT_LT(calib.err2q[static_cast<size_t>(e)], 0.1)
                << g.str();
        }
}

TEST(Compiler, StatsMatchRecount)
{
    Device dev = makeRigettiAspen1();
    Calibration calib = dev.calibrate(2);
    for (const char *name : {"BV6", "QFT", "Fredkin"}) {
        CompileOptions opts;
        CompileResult res =
            compileForDevice(makeBenchmark(name), dev, calib, opts);
        TranslateStats recount = countTranslatedStats(res.hwCircuit);
        EXPECT_EQ(recount.twoQ, res.stats.twoQ) << name;
        EXPECT_EQ(recount.pulses1q, res.stats.pulses1q) << name;
        EXPECT_EQ(recount.virtualZ, res.stats.virtualZ) << name;
    }
}

TEST(Compiler, TooLargeProgramIsFatal)
{
    Device dev = makeRigettiAgave();
    Calibration calib = dev.calibrate(0);
    CompileOptions opts;
    EXPECT_THROW(
        compileForDevice(makeBenchmark("BV6"), dev, calib, opts),
        FatalError);
}

TEST(Compiler, AssemblyToggle)
{
    Device dev = makeUmdTi();
    Calibration calib = dev.calibrate(0);
    CompileOptions opts;
    opts.emitAssembly = false;
    auto no_asm =
        compileForDevice(makeBenchmark("Toffoli"), dev, calib, opts);
    EXPECT_TRUE(no_asm.assembly.empty());
    opts.emitAssembly = true;
    auto with_asm =
        compileForDevice(makeBenchmark("Toffoli"), dev, calib, opts);
    EXPECT_FALSE(with_asm.assembly.empty());
}

TEST(Compiler, CompileTimeRecorded)
{
    Device dev = makeIbmQ5();
    CompileOptions opts;
    auto res = compileForDevice(makeBenchmark("BV4"), dev,
                                dev.calibrate(0), opts);
    EXPECT_GT(res.compileMs, 0.0);
    EXPECT_LT(res.compileMs, 10000.0);
}

TEST(Compiler, ExtendedGateSetHalvesQftPhaseCost)
{
    // The Sec. 6.4 what-if: native CPHASE on a Rigetti-class device.
    Device study = makeRigettiAspen3();
    Device extended(study.name(), study.topology(),
                    GateSet::rigettiExtended(), study.noiseSpec());
    Calibration calib = study.calibrate(3);
    Circuit program = makeBenchmark("QFT");
    CompileOptions opts;
    opts.emitAssembly = true;
    CompileResult base = compileForDevice(program, study, calib, opts);
    CompileResult ext = compileForDevice(program, extended, calib, opts);
    EXPECT_LT(ext.stats.twoQ, base.stats.twoQ);
    // Native CPHASE appears in the compiled circuit and the Quil text.
    EXPECT_GT(ext.hwCircuit.countIf([](const Gate &g) {
        return g.kind == GateKind::Cphase;
    }), 0);
    EXPECT_NE(ext.assembly.find("CPHASE("), std::string::npos);
    // Both remain semantically correct.
    EXPECT_TRUE(verifyCompilation(program, base).equivalent);
    EXPECT_TRUE(verifyCompilation(program, ext).equivalent);
}

TEST(Compiler, NonExtendedTargetsLowerCphaseInline)
{
    // A raw Cphase program still compiles everywhere.
    Circuit program(2, "cp");
    program.add(Gate::h(0));
    program.add(Gate::cphase(0, 1, 0.9));
    program.add(Gate::h(0));
    program.add(Gate::measure(0));
    program.add(Gate::measure(1));
    for (const Device &dev : allStudyDevices()) {
        CompileOptions opts;
        opts.emitAssembly = false;
        CompileResult res =
            compileForDevice(program, dev, dev.calibrate(0), opts);
        EXPECT_TRUE(verifyCompilation(program, res).equivalent)
            << dev.name();
        for (const auto &g : res.hwCircuit.gates())
            EXPECT_NE(g.kind, GateKind::Cphase) << dev.name();
    }
}

TEST(Compiler, MapperEngineConfigurable)
{
    Device dev = makeIbmQ14();
    Calibration calib = dev.calibrate(1);
    Circuit program = makeBenchmark("Adder");
    CompileOptions opts;
    opts.mapping.kind = MapperKind::Greedy;
    auto greedy = compileForDevice(program, dev, calib, opts);
    opts.mapping.kind = MapperKind::BranchAndBound;
    auto bnb = compileForDevice(program, dev, calib, opts);
    // B&B optimizes the same objective at least as well as greedy.
    EXPECT_GE(bnb.mapperObjective, greedy.mapperObjective - 1e-12);
}

} // namespace
} // namespace triq
