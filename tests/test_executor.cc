/**
 * @file
 * Noise-model and executor tests: error-site enumeration, analytic
 * cross-checks of measured success rates, determinism and the modal
 * outcome flag.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "core/compiler.hh"
#include "device/machines.hh"
#include "sim/executor.hh"
#include "sim/noise.hh"
#include "workloads/benchmarks.hh"

namespace triq
{
namespace
{

/** A 2-qubit line device with fully controllable error rates. */
Device
probe(double e1, double e2, double ro, double t2 = 1e18)
{
    Topology t = Topology::line(2);
    NoiseSpec spec{e1, e2, ro, t2, 0.0, 0.0, {0.1, 0.4, 3.0}};
    return Device("Probe2", std::move(t), GateSet::rigetti(), spec);
}

TEST(Noise, SiteEnumeration)
{
    Device dev = probe(0.01, 0.05, 0.1);
    Calibration c = dev.averageCalibration();
    Circuit circ(2);
    circ.add(Gate::rx(0, kPi / 2)); // 1 pulse -> one site (p=0.01)
    circ.add(Gate::rz(0, 1.0));     // virtual -> no site
    circ.add(Gate::cz(0, 1));       // -> one site (p=0.05)
    circ.add(Gate::measure(0));     // readout handled classically
    auto sites = collectErrorSites(circ, dev.topology(), c);
    ASSERT_EQ(sites.size(), 2u);
    EXPECT_DOUBLE_EQ(sites[0].prob, 0.01);
    EXPECT_EQ(sites[0].q1, -1);
    EXPECT_DOUBLE_EQ(sites[1].prob, 0.05);
    EXPECT_EQ(sites[1].q1, 1);
    EXPECT_NEAR(noErrorProbability(sites), 0.99 * 0.95, 1e-12);
}

TEST(Noise, IdleSitesFromCoherence)
{
    Device dev = probe(0.0, 0.0, 0.0, 10.0);
    Calibration c = dev.averageCalibration();
    Circuit circ(2);
    circ.add(Gate::rx(1, kPi / 2));
    for (int i = 0; i < 5; ++i)
        circ.add(Gate::rx(0, kPi / 2)); // q1 idles 0.4us.
    circ.add(Gate::cz(0, 1));
    auto sites = collectErrorSites(circ, dev.topology(), c);
    ASSERT_EQ(sites.size(), 1u);
    EXPECT_TRUE(sites[0].idle);
    EXPECT_EQ(sites[0].q0, 1);
    EXPECT_NEAR(sites[0].prob, 1.0 - std::exp(-0.4 / 10.0), 1e-9);
}

TEST(Executor, ReadoutOnlyErrorsMatchAnalytic)
{
    // Only readout errors: success = (1-ro)^2 exactly (in expectation).
    Device dev = probe(0.0, 0.0, 0.08);
    Calibration c = dev.averageCalibration();
    Circuit circ(2, "ro");
    circ.add(Gate::x(0));
    circ.add(Gate::measure(0));
    circ.add(Gate::measure(1));
    ExecutionResult r = executeNoisy(circ, dev, c, 40000, 7);
    EXPECT_EQ(r.correctOutcome, 1u);
    EXPECT_NEAR(r.successRate, 0.92 * 0.92, 0.01);
    EXPECT_EQ(r.simulatedTrajectories, 0);
    EXPECT_DOUBLE_EQ(r.noErrorProb, 1.0);
}

TEST(Executor, TwoQubitErrorsReduceSuccess)
{
    Device dev = probe(0.0, 0.10, 0.0);
    Calibration c = dev.averageCalibration();
    Circuit circ(2, "chain");
    for (int i = 0; i < 5; ++i)
        circ.add(Gate::cz(0, 1));
    circ.add(Gate::measure(0));
    circ.add(Gate::measure(1));
    ExecutionResult r = executeNoisy(circ, dev, c, 20000, 11);
    // ESP = 0.9^5 ~ 0.59; many sampled Paulis (Z-type) still leave the
    // |00> outcome intact, so success exceeds ESP but stays below 1.
    EXPECT_NEAR(r.esp, std::pow(0.9, 5), 1e-9);
    EXPECT_GT(r.successRate, r.esp - 0.02);
    EXPECT_LT(r.successRate, 1.0);
    EXPECT_GT(r.simulatedTrajectories, 0);
}

TEST(Executor, XErrorAlwaysFlipsOutcome)
{
    // A single 1Q error site with p=1: the injected Pauli is X, Y or Z
    // uniformly; X/Y flip the measured bit, so success ~ 1/3.
    Device dev = probe(1.0, 0.0, 0.0);
    Calibration c = dev.averageCalibration();
    c.err1q = {1.0, 0.0};
    Circuit circ(2, "flip");
    circ.add(Gate::rx(0, 2 * kPi)); // Identity rotation, but one pulse.
    circ.add(Gate::measure(0));
    ExecutionResult r = executeNoisy(circ, dev, c, 30000, 13);
    EXPECT_NEAR(r.successRate, 1.0 / 3.0, 0.01);
}

TEST(Executor, DeterministicForFixedSeed)
{
    Device dev = makeIbmQ5();
    Calibration c = dev.calibrate(2);
    Circuit program = makeBenchmark("Peres");
    CompileOptions opts;
    CompileResult res = compileForDevice(program, dev, c, opts);
    ExecutionResult a = executeNoisy(res.hwCircuit, dev, c, 2000, 99);
    ExecutionResult b = executeNoisy(res.hwCircuit, dev, c, 2000, 99);
    EXPECT_DOUBLE_EQ(a.successRate, b.successRate);
    ExecutionResult d = executeNoisy(res.hwCircuit, dev, c, 2000, 100);
    EXPECT_NE(a.successRate, d.successRate);
}

TEST(Executor, ModalFlagDropsUnderHeavyNoise)
{
    // With near-certain bit flips the correct answer cannot dominate.
    Device dev = probe(0.0, 0.0, 0.95);
    Calibration c = dev.averageCalibration();
    Circuit circ(2, "hopeless");
    circ.add(Gate::x(0));
    circ.add(Gate::measure(0));
    circ.add(Gate::measure(1));
    ExecutionResult r = executeNoisy(circ, dev, c, 5000, 3);
    EXPECT_FALSE(r.correctIsModal);
    EXPECT_LT(r.successRate, 0.2);

    Device good = probe(0.0, 0.0, 0.01);
    ExecutionResult g =
        executeNoisy(circ, good, good.averageCalibration(), 5000, 3);
    EXPECT_TRUE(g.correctIsModal);
}

TEST(Executor, OutcomeForProgramUnscramblesRouting)
{
    Device dev = makeIbmQ14();
    Calibration c = dev.calibrate(4);
    Circuit program = makeBV(6, 0b10110);
    CompileOptions opts;
    CompileResult res = compileForDevice(program, dev, c, opts);
    ExecutionResult r = executeNoisy(res.hwCircuit, dev, c, 100, 5);
    uint64_t recovered = outcomeForProgram(
        r.correctOutcome, res.hwCircuit, res.finalMap,
        program.measuredQubits());
    EXPECT_EQ(recovered, 0b10110u);
}

TEST(Executor, TrialsValidation)
{
    Device dev = probe(0.0, 0.0, 0.0);
    Circuit circ(2, "v");
    circ.add(Gate::measure(0));
    EXPECT_THROW(
        executeNoisy(circ, dev, dev.averageCalibration(), 0),
        FatalError);
    Circuit nomeas(2, "nm");
    nomeas.add(Gate::x(0));
    EXPECT_THROW(
        executeNoisy(nomeas, dev, dev.averageCalibration(), 10),
        FatalError);
}

TEST(Noise, CrosstalkScalesSimultaneousAdjacent2q)
{
    // Line of 4 with two parallel CZs on (0,1) and (2,3): edges are
    // spatially adjacent (qubits 1 and 2 are neighbors) and the gates
    // overlap in time, so both sites scale by (1 + factor).
    Topology t = Topology::line(4);
    NoiseSpec spec{0.0, 0.05, 0.0, 1e18, 0.0, 0.0, {0.1, 0.4, 3.0}};
    spec.crosstalkFactor = 1.0;
    Device dev("XTalk", std::move(t), GateSet::rigetti(), spec);
    Calibration c = dev.averageCalibration();
    EXPECT_DOUBLE_EQ(c.crosstalkFactor, 1.0);

    Circuit parallel(4);
    parallel.add(Gate::cz(0, 1));
    parallel.add(Gate::cz(2, 3));
    auto sites = collectErrorSites(parallel, dev.topology(), c);
    ASSERT_EQ(sites.size(), 2u);
    EXPECT_DOUBLE_EQ(sites[0].prob, 0.10);
    EXPECT_DOUBLE_EQ(sites[1].prob, 0.10);

    // Serialized via a barrier: no temporal overlap, no scaling.
    Circuit serial(4);
    serial.add(Gate::cz(0, 1));
    serial.add(Gate::barrier());
    serial.add(Gate::cz(2, 3));
    auto serial_sites = collectErrorSites(serial, dev.topology(), c);
    ASSERT_EQ(serial_sites.size(), 2u);
    EXPECT_DOUBLE_EQ(serial_sites[0].prob, 0.05);
    EXPECT_DOUBLE_EQ(serial_sites[1].prob, 0.05);
}

TEST(Noise, CrosstalkRequiresSpatialAdjacency)
{
    // Line of 5: CZs on (0,1) and (3,4) are simultaneous but separated
    // by an uninvolved qubit, so no scaling applies.
    Topology t = Topology::line(5);
    NoiseSpec spec{0.0, 0.05, 0.0, 1e18, 0.0, 0.0, {0.1, 0.4, 3.0}};
    spec.crosstalkFactor = 1.0;
    Device dev("XTalk5", std::move(t), GateSet::rigetti(), spec);
    Calibration c = dev.averageCalibration();
    Circuit circ(5);
    circ.add(Gate::cz(0, 1));
    circ.add(Gate::cz(3, 4));
    auto sites = collectErrorSites(circ, dev.topology(), c);
    ASSERT_EQ(sites.size(), 2u);
    EXPECT_DOUBLE_EQ(sites[0].prob, 0.05);
    EXPECT_DOUBLE_EQ(sites[1].prob, 0.05);
}

TEST(Executor, BitIdenticalAcrossThreadCounts)
{
    Device dev = makeIbmQ5();
    Calibration c = dev.calibrate(2);
    Circuit program = makeBenchmark("Peres");
    CompileOptions opts;
    CompileResult res = compileForDevice(program, dev, c, opts);
    ExecOptions serial;
    serial.threads = 1;
    ExecutionResult base =
        executeNoisy(res.hwCircuit, dev, c, 1500, 99, serial);
    EXPECT_GT(base.simulatedTrajectories, 0);
    for (int threads : {2, 8}) {
        ExecOptions t;
        t.threads = threads;
        ExecutionResult r =
            executeNoisy(res.hwCircuit, dev, c, 1500, 99, t);
        EXPECT_DOUBLE_EQ(r.successRate, base.successRate);
        EXPECT_EQ(r.simulatedTrajectories, base.simulatedTrajectories);
        EXPECT_EQ(r.correctOutcome, base.correctOutcome);
        EXPECT_EQ(r.histogram, base.histogram);
    }
    // sortedHistogram: ascending keys, counts summing to trials.
    auto sorted = base.sortedHistogram();
    long total = 0;
    for (size_t i = 0; i < sorted.size(); ++i) {
        if (i > 0) {
            EXPECT_LT(sorted[i - 1].first, sorted[i].first);
        }
        total += sorted[i].second;
    }
    EXPECT_EQ(total, base.trials);
}

TEST(Executor, CheckpointedReplayMatchesFullReplay)
{
    // Certain 1Q error sites force every trial onto the trajectory
    // path, so checkpointed and full replay are both fully exercised.
    Device dev = probe(1.0, 0.3, 0.02);
    Calibration c = dev.averageCalibration();
    c.err1q = {1.0, 1.0};
    Circuit circ(2, "forced");
    for (int i = 0; i < 6; ++i) {
        circ.add(Gate::rx(0, kPi / 3));
        circ.add(Gate::rx(1, kPi / 5));
        circ.add(Gate::cz(0, 1));
    }
    circ.add(Gate::measure(0));
    circ.add(Gate::measure(1));
    // This test exercises the per-trial checkpoint replay engine, so
    // fault-pattern dedup is pinned off (it would collapse the 800
    // trials to their distinct patterns); fusion off keeps the replay
    // strictly gate by gate.
    ExecOptions full;
    full.checkpointInterval = -1; // replay from |00> every time
    full.dedup = -1;
    full.fusion = -1;
    ExecutionResult a = executeNoisy(circ, dev, c, 800, 21, full);
    EXPECT_EQ(a.simulatedTrajectories, a.trials);
    for (int interval : {1, 2, 5, 0}) {
        ExecOptions ck;
        ck.checkpointInterval = interval;
        ck.dedup = -1;
        ck.fusion = -1;
        ExecutionResult b = executeNoisy(circ, dev, c, 800, 21, ck);
        EXPECT_DOUBLE_EQ(b.successRate, a.successRate);
        EXPECT_EQ(b.simulatedTrajectories, a.simulatedTrajectories);
        EXPECT_EQ(b.histogram, a.histogram);
    }
}

TEST(Executor, DefaultSimThreadsEnv)
{
    unsetenv("TRIQ_SIM_THREADS");
    EXPECT_EQ(defaultSimThreads(), 1);
    setenv("TRIQ_SIM_THREADS", "6", 1);
    EXPECT_EQ(defaultSimThreads(), 6);
    setenv("TRIQ_SIM_THREADS", "zero?", 1);
    EXPECT_EQ(defaultSimThreads(), 1);
    unsetenv("TRIQ_SIM_THREADS");
}

TEST(Executor, DefaultTrialsEnv)
{
    unsetenv("TRIQ_TRIALS");
    EXPECT_EQ(defaultTrials(1234), 1234);
    setenv("TRIQ_TRIALS", "77", 1);
    EXPECT_EQ(defaultTrials(1234), 77);
    setenv("TRIQ_TRIALS", "bogus", 1);
    EXPECT_EQ(defaultTrials(1234), 1234);
    unsetenv("TRIQ_TRIALS");
}

} // namespace
} // namespace triq
