/**
 * @file
 * Intra-state kernel parallelism and cache-blocked tiling tests.
 *
 * The contract under test is exact: for every gate family, for every
 * kernel-thread setting, and with tiling on or off, amplitudes must be
 * BIT-identical (memcmp) to the serial untiled path — sharding never
 * changes any per-amplitude arithmetic, only who executes it. The
 * raised 30-qubit ceiling is checked structurally (admission math, no
 * giant allocation ever happens in-process).
 */

#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/resource.hh"
#include "common/rng.hh"
#include "core/compiler.hh"
#include "core/unitary.hh"
#include "device/machines.hh"
#include "service/cost_model.hh"
#include "sim/executor.hh"
#include "sim/fusion.hh"
#include "sim/sim_cost.hh"
#include "sim/statevector.hh"
#include "workloads/benchmarks.hh"

namespace triq
{
namespace
{

/** Bitwise equality of two equal-size states. */
bool
bitIdentical(const StateVector &a, const StateVector &b)
{
    return a.dim() == b.dim() &&
           std::memcmp(a.amps().data(), b.amps().data(),
                       a.dim() * sizeof(Cplx)) == 0;
}

/** A non-trivial dense state: every amplitude nonzero and distinct. */
StateVector
preparedState(int num_qubits, uint64_t seed)
{
    Rng rng(seed);
    StateVector sv(num_qubits);
    for (int q = 0; q < num_qubits; ++q)
        sv.applyGate(Gate::u3(q, rng.uniform(0.1, kPi - 0.1),
                              rng.uniform(-kPi, kPi),
                              rng.uniform(-kPi, kPi)));
    for (int q = 0; q + 1 < num_qubits; ++q)
        sv.applyGate(Gate::cnot(q, q + 1));
    return sv;
}

/**
 * Per-gate-family kernel workloads. Each body applies the family's
 * kernels at qubit positions that exercise every code path: qubit 0
 * (the stride-1 AVX2 layout), middle qubits, and the top qubit (one
 * group per shard-boundary stride).
 */
struct Family
{
    const char *name;
    void (*apply)(StateVector &sv);
};

const Family kFamilies[] = {
    {"dense1q",
     [](StateVector &sv) {
         const Matrix m = gateMatrix(Gate::u3(0, 0.7, -0.3, 1.1));
         sv.applyMatrix1(m, 0);
         sv.applyMatrix1(m, sv.numQubits() / 2);
         sv.applyMatrix1(m, sv.numQubits() - 1);
         sv.applyX(1);
         sv.applyY(2);
         sv.applyZ(0);
     }},
    {"diagonal",
     [](StateVector &sv) {
         sv.applyPhase1(0, Cplx(0.6, 0.8));
         sv.applyRz(sv.numQubits() - 1, 0.9);
         const int qs[3] = {0, 1, sv.numQubits() - 1};
         Cplx table[8];
         for (int i = 0; i < 8; ++i)
             table[i] = Cplx(std::cos(0.1 * i), std::sin(0.1 * i));
         sv.applyDiagonal(table, qs, 3);
     }},
    {"cnot-cz-cphase",
     [](StateVector &sv) {
         const int top = sv.numQubits() - 1;
         sv.applyCnot(0, top);
         sv.applyCnot(top, 0);
         sv.applyCz(1, top);
         sv.applyCphase(0, 2, 1.3);
     }},
    {"swap",
     [](StateVector &sv) {
         sv.applySwap(0, sv.numQubits() - 1);
         sv.applySwap(1, 2);
     }},
    {"fused-dense",
     [](StateVector &sv) {
         const Matrix m1 = gateMatrix(Gate::u3(0, 0.4, 0.2, -0.9));
         Cplx f1[4] = {m1(0, 0), m1(0, 1), m1(1, 0), m1(1, 1)};
         sv.applyFused1(f1, 0); // stride-1 adjacent-pair path
         sv.applyFused1(f1, sv.numQubits() - 1);
         const Matrix m2 = gateMatrix(Gate::xx(0, 1, 0.8));
         Cplx f2[16];
         for (int r = 0; r < 4; ++r)
             for (int c = 0; c < 4; ++c)
                 f2[r * 4 + c] = m2(r, c);
         sv.applyFused2(f2, 0, sv.numQubits() - 1); // stride-1 dense
         sv.applyFused2(f2, 1, 2);                  // general path
         // An 8x8 unitary: ccx's matrix is unitary and asymmetric
         // enough to catch index bugs.
         const Matrix m3 = gateMatrix(Gate::ccx(0, 1, 2));
         Cplx f3[64];
         for (int r = 0; r < 8; ++r)
             for (int c = 0; c < 8; ++c)
                 f3[r * 8 + c] = m3(r, c);
         sv.applyFused3(f3, 0, 1, sv.numQubits() - 1); // stride-1
         sv.applyFused3(f3, 1, 2, 3);                  // general
     }},
};

TEST(Kernels, PerFamilyBitIdenticalAcrossThreadCounts)
{
    // TRIQ_KERNEL_THREADS in {1, 2, 7} plus adaptive (0): every
    // family's amplitudes must match the serial run bit for bit.
    for (const Family &fam : kFamilies) {
        StateVector serial = preparedState(11, 0xC0FFEE);
        serial.setKernelThreads(1);
        fam.apply(serial);
        for (int setting : {2, 7, 0}) {
            StateVector sv = preparedState(11, 0xC0FFEE);
            sv.setKernelThreads(setting);
            fam.apply(sv);
            EXPECT_TRUE(bitIdentical(sv, serial))
                << fam.name << " diverged at kernel threads "
                << setting;
        }
    }
}

TEST(Kernels, SmallRegistersStayExactUnderForcedThreads)
{
    // Below the sharding grain the kernels take the serial fast path;
    // forced thread counts larger than the register must still be
    // exact and must not crash.
    for (int nq : {3, 4}) {
        for (const Family &fam : kFamilies) {
            if (nq < 4 && std::strcmp(fam.name, "fused-dense") == 0)
                continue; // needs 4 distinct qubits
            StateVector serial = preparedState(nq, 7);
            serial.setKernelThreads(1);
            fam.apply(serial);
            StateVector sv = preparedState(nq, 7);
            sv.setKernelThreads(7);
            fam.apply(sv);
            EXPECT_TRUE(bitIdentical(sv, serial))
                << fam.name << " on " << nq << " qubits";
        }
    }
}

TEST(Kernels, ApplyGateCircuitBitIdenticalAcrossThreadCounts)
{
    // Whole-circuit evolution through applyGate (the executor's
    // replay path) across thread settings.
    Rng rng(31);
    Circuit c(10, "mix");
    for (int i = 0; i < 120; ++i) {
        int a = rng.uniformInt(10), b = (a + 1 + rng.uniformInt(9)) % 10;
        switch (rng.uniformInt(6)) {
          case 0:
            c.add(Gate::h(a));
            break;
          case 1:
            c.add(Gate::u3(a, rng.uniform(0, kPi),
                           rng.uniform(-kPi, kPi),
                           rng.uniform(-kPi, kPi)));
            break;
          case 2:
            c.add(Gate::cnot(a, b));
            break;
          case 3:
            c.add(Gate::cphase(a, b, rng.uniform(-kPi, kPi)));
            break;
          case 4:
            c.add(Gate::swap(a, b));
            break;
          default:
            c.add(Gate::rz(a, rng.uniform(-kPi, kPi)));
            break;
        }
    }
    StateVector serial(10);
    serial.setKernelThreads(1);
    serial.applyCircuit(c);
    for (int setting : {2, 7, 0}) {
        StateVector sv(10);
        sv.setKernelThreads(setting);
        sv.applyCircuit(c);
        EXPECT_TRUE(bitIdentical(sv, serial))
            << "kernel threads " << setting;
    }
}

TEST(Kernels, ExecutorHistogramsBitIdenticalAcrossKernelThreads)
{
    // Full executor stack (fusion + dedup + checkpoints) with kernel
    // threading forced on: histograms and rates must equal the serial
    // kernels' run exactly.
    Device dev = makeIbmQ5();
    Calibration calib = dev.calibrate(2);
    CompileOptions copts;
    copts.emitAssembly = false;
    CompileResult res =
        compileForDevice(makeBenchmark("Peres"), dev, calib, copts);
    ExecOptions base;
    base.threads = 1;
    base.kernelThreads = 1;
    ExecutionResult a =
        executeNoisy(res.hwCircuit, dev, calib, 1500, 42, base);
    for (int setting : {2, 7, -1}) {
        ExecOptions opt;
        opt.threads = 1;
        opt.kernelThreads = setting;
        ExecutionResult b =
            executeNoisy(res.hwCircuit, dev, calib, 1500, 42, opt);
        EXPECT_DOUBLE_EQ(b.successRate, a.successRate)
            << "kernel threads " << setting;
        EXPECT_EQ(b.histogram, a.histogram)
            << "kernel threads " << setting;
    }
}

TEST(Kernels, EnvDefaultKernelThreads)
{
    unsetenv("TRIQ_KERNEL_THREADS");
    EXPECT_EQ(defaultKernelThreads(), 1);
    setenv("TRIQ_KERNEL_THREADS", "0", 1);
    EXPECT_EQ(defaultKernelThreads(), 0);
    setenv("TRIQ_KERNEL_THREADS", "5", 1);
    EXPECT_EQ(defaultKernelThreads(), 5);
    setenv("TRIQ_KERNEL_THREADS", "lots", 1);
    EXPECT_EQ(defaultKernelThreads(), 1); // warn-and-fallback
    unsetenv("TRIQ_KERNEL_THREADS");
}

/**
 * A 9-qubit circuit whose tail is a long run of low-qubit gates: the
 * prefix touches high qubits (stays a Pass/unfused region), the tail
 * fuses into >= 2 consecutive tileable ops when tileQubits = 6.
 */
Circuit
tiledCircuit()
{
    Circuit c(9, "tiled");
    for (int q = 0; q < 9; ++q)
        c.add(Gate::h(q));
    c.add(Gate::cnot(7, 8));
    // Low-qubit tail: dense 2-3 qubit regions and a diagonal run.
    Rng rng(5);
    for (int rep = 0; rep < 6; ++rep) {
        c.add(Gate::u3(0, 0.3, 0.1, -0.2));
        c.add(Gate::cnot(0, 1));
        c.add(Gate::u3(1, -0.4, 0.7, 0.2));
        c.add(Gate::cnot(1, 2));
        c.add(Gate::t(0));
        c.add(Gate::cz(0, 2));
        c.add(Gate::rz(1, rng.uniform(-kPi, kPi)));
        c.add(Gate::cphase(1, 2, rng.uniform(-kPi, kPi)));
    }
    return c;
}

TEST(Kernels, TilingEngagesAndIsBitExact)
{
    Circuit c = tiledCircuit();
    FusionOptions untiled;
    untiled.tileQubits = 0;
    FusedProgram plain(c, untiled);
    EXPECT_EQ(plain.stats().tileRuns, 0);

    FusionOptions tiled;
    tiled.tileQubits = 6;
    FusedProgram blocked(c, tiled);
    ASSERT_GT(blocked.stats().tileRuns, 0);
    ASSERT_GE(blocked.stats().tiledOps, 2);

    StateVector a(9), b(9);
    plain.applyAll(a);
    blocked.applyAll(b);
    EXPECT_TRUE(bitIdentical(a, b));

    // Tiling composes with kernel threading (shards are whole tiles).
    StateVector t2(9), t7(9);
    t2.setKernelThreads(2);
    t7.setKernelThreads(7);
    blocked.applyAll(t2);
    blocked.applyAll(t7);
    EXPECT_TRUE(bitIdentical(t2, a));
    EXPECT_TRUE(bitIdentical(t7, a));

    // Partial ranges (checkpoint resume / fault injection boundaries):
    // a split inside a fused op replays plain gates for that op in
    // both programs, so the tiled program must match the untiled one
    // bit for bit at every split point — tiling never changes what a
    // range boundary replays.
    for (int split : {1, 9, 10, 17, 25, c.numGates() - 1}) {
        StateVector p(9), s(9);
        plain.apply(p, 0, split);
        plain.apply(p, split, c.numGates());
        blocked.apply(s, 0, split);
        blocked.apply(s, split, c.numGates());
        EXPECT_TRUE(bitIdentical(s, p)) << "split " << split;
    }
}

TEST(Kernels, TilingDisabledBelowOneTile)
{
    // A register that fits inside one tile never builds tile runs.
    Circuit c(5, "small");
    for (int rep = 0; rep < 6; ++rep) {
        c.add(Gate::u3(0, 0.3, 0.1, -0.2));
        c.add(Gate::cnot(0, 1));
        c.add(Gate::t(1));
        c.add(Gate::cz(1, 2));
    }
    FusionOptions opt;
    opt.tileQubits = 6;
    FusedProgram fused(c, opt);
    EXPECT_EQ(fused.stats().tileRuns, 0);
}

TEST(Kernels, Fig07HistogramsIdenticalTiledVsUntiled)
{
    // The whole Fig. 7 study set through the executor, tiled
    // (TRIQ_SIM_TILE=6, so even small compact registers tile) vs.
    // untiled: bit-identical histograms, every benchmark.
    Device dev = makeIbmQ14();
    Calibration calib = dev.calibrate(2);
    int compared = 0;
    for (const std::string &name : benchmarkNames()) {
        Circuit program = makeBenchmark(name);
        if (program.numQubits() > dev.numQubits())
            continue;
        CompileOptions copts;
        copts.emitAssembly = false;
        CompileResult res =
            compileForDevice(program, dev, calib, copts);
        ExecOptions eo;
        eo.threads = 1;
        eo.fusion = 1;
        setenv("TRIQ_SIM_TILE", "0", 1);
        ExecutionResult untiled =
            executeNoisy(res.hwCircuit, dev, calib, 300, 11, eo);
        setenv("TRIQ_SIM_TILE", "6", 1);
        ExecutionResult tiled =
            executeNoisy(res.hwCircuit, dev, calib, 300, 11, eo);
        unsetenv("TRIQ_SIM_TILE");
        EXPECT_EQ(tiled.histogram, untiled.histogram) << name;
        EXPECT_DOUBLE_EQ(tiled.successRate, untiled.successRate)
            << name;
        ++compared;
    }
    EXPECT_GE(compared, 8);
}

TEST(Kernels, ThirtyQubitCeilingIsStructural)
{
    // The representation accepts 30 qubits; what actually runs is
    // decided by admission math, never by an allocator crash. A
    // 30-qubit state is 16 GiB — the test only does arithmetic.
    EXPECT_EQ(StateVector::maxQubits(), 30);
    EXPECT_THROW(StateVector(31), FatalError);
    EXPECT_EQ(stateVectorBytes(30), uint64_t{16} << 30);

    // Admission against a small budget rejects 30 qubits up front
    // (even the degraded 2-state plan needs 32 GiB)...
    ResourceGovernor tight(uint64_t{1} << 30);
    EXPECT_FALSE(tight.wouldFit(predictLowMemSimulationBytes(30)));
    // ...and the reservation path reports it structurally.
    EXPECT_THROW(tight.reserve(predictLowMemSimulationBytes(30),
                               "30-qubit simulation"),
                 ResourceError);

    // The service-level verdict carries the same numbers: a 30-qubit
    // simulate request against a tight process budget is refused with
    // a sized reason, not a bad_alloc.
    ResourceGovernor &gov = processGovernor();
    const uint64_t saved = gov.budgetBytes();
    gov.setBudgetBytes(uint64_t{1} << 30);
    AdmissionVerdict v = checkAdmission(30, 1, 50, 200, 0.0, true);
    gov.setBudgetBytes(saved);
    EXPECT_FALSE(v.fits);
    EXPECT_GE(v.predictedBytes, uint64_t{32} << 30);
    EXPECT_FALSE(v.reason.empty());

    // And with a roomy budget the same request is admitted — the
    // ceiling itself never rejects.
    gov.setBudgetBytes(uint64_t{128} << 30);
    AdmissionVerdict roomy = checkAdmission(30, 1, 50, 200, 0.0, true);
    gov.setBudgetBytes(saved);
    EXPECT_TRUE(roomy.fits);
}

} // namespace
} // namespace triq
