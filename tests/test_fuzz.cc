/**
 * @file
 * End-to-end fuzzing, in two halves:
 *
 *  1. Generative: random programs are generated as ScaffLite source,
 *     pushed through the entire stack (parse -> lower -> compile for a
 *     random device at a random level -> verify), asserting semantic
 *     equivalence and hardware-constraint compliance every time.
 *
 *  2. Adversarial: a corpus of malformed inputs (truncated programs,
 *     garbage bytes, unknown gates, register overflows, corrupt
 *     calibration text) is fed to every input surface, asserting the
 *     structured-diagnostics contract — errors are *collected*, never
 *     crashes, hangs, or uncaught exceptions.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/compiler.hh"
#include "device/machines.hh"
#include "lang/lower.hh"
#include "lang/qasm_parser.hh"
#include "lang/scaff_writer.hh"
#include "sim/verify.hh"

namespace triq
{
namespace
{

/** Generate a random program circuit over n qubits. */
Circuit
randomProgram(Rng &rng, int n, int gates)
{
    Circuit c(n, "fuzz");
    for (int i = 0; i < gates; ++i) {
        int pick = rng.uniformInt(10);
        int a = rng.uniformInt(n);
        int b = (a + 1 + rng.uniformInt(n - 1)) % n;
        switch (pick) {
          case 0:
            c.add(Gate::h(a));
            break;
          case 1:
            c.add(Gate::x(a));
            break;
          case 2:
            c.add(Gate::t(a));
            break;
          case 3:
            c.add(Gate::rz(a, rng.uniform(-kPi, kPi)));
            break;
          case 4:
            c.add(Gate::ry(a, rng.uniform(-kPi, kPi)));
            break;
          case 5:
          case 6:
            c.add(Gate::cnot(a, b));
            break;
          case 7:
            c.add(Gate::cz(a, b));
            break;
          case 8:
            c.add(Gate::cphase(a, b, rng.uniform(-kPi, kPi)));
            break;
          default:
            if (n >= 3) {
                int t = (b + 1 + rng.uniformInt(n - 2)) % n;
                if (t != a && t != b) {
                    c.add(Gate::ccx(a, b, t));
                    break;
                }
            }
            c.add(Gate::swap(a, b));
            break;
        }
    }
    // Measure a random non-empty subset.
    bool any = false;
    for (int q = 0; q < n; ++q)
        if (rng.bernoulli(0.6)) {
            c.add(Gate::measure(q));
            any = true;
        }
    if (!any)
        c.add(Gate::measure(rng.uniformInt(n)));
    return c;
}

class FullStackFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FullStackFuzz, RandomProgramsSurviveTheWholeStack)
{
    Rng rng(0xF022 + GetParam() * 77);
    auto devices = allStudyDevices();
    const Device &dev = devices[static_cast<size_t>(
        rng.uniformInt(static_cast<int>(devices.size())))];
    int n = 2 + rng.uniformInt(std::min(4, dev.numQubits() - 1));
    Circuit program = randomProgram(rng, n, 8 + rng.uniformInt(18));

    // Round-trip through the language layer first.
    Circuit parsed = compileScaffLite(toScaffLite(program));
    ASSERT_EQ(parsed.numGates(), program.numGates());

    OptLevel level = static_cast<OptLevel>(rng.uniformInt(4));
    CompileOptions opts;
    opts.level = level;
    opts.peephole = rng.bernoulli(0.5);
    opts.mapping.kind =
        rng.bernoulli(0.5) ? MapperKind::Greedy
                           : MapperKind::BranchAndBound;
    Calibration calib = dev.calibrate(rng.uniformInt(30));
    CompileResult res = compileForDevice(parsed, dev, calib, opts);

    // Hardware constraints.
    for (const auto &g : res.hwCircuit.gates()) {
        if (isTwoQubitGate(g.kind)) {
            ASSERT_TRUE(dev.topology().adjacent(g.qubit(0), g.qubit(1)))
                << dev.name() << " " << g.str();
        }
    }

    // Semantics.
    VerificationResult v = verifyCompilation(parsed, res);
    EXPECT_TRUE(v.equivalent)
        << dev.name() << " " << optLevelName(level)
        << " maxDeviation=" << v.maxDeviation << "\n"
        << program.str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullStackFuzz,
                         ::testing::Range(uint64_t{0}, uint64_t{60}));

// ---------------------------------------------------------------------
// Adversarial corpus: malformed front-end inputs.
// ---------------------------------------------------------------------

/** One malformed-input case and which front end it targets. */
struct BadInput
{
    const char *name;
    const char *source;
    bool qasm;
};

const BadInput kBadInputs[] = {
    // ScaffLite: structural damage.
    {"scaff_empty", "", false},
    {"scaff_header_only", "module", false},
    {"scaff_unterminated_module", "module m {", false},
    {"scaff_truncated_stmt", "module m { qreg q[2]; h q[0]", false},
    {"scaff_missing_size", "module m { qreg q[]; }", false},
    {"scaff_trailing_garbage",
     "module m { qreg q[1]; h q[0]; } extra tokens", false},
    {"scaff_missing_semicolon",
     "module m { qreg q[2] x q[0]; }", false},
    {"scaff_bad_expr", "module m { qreg q[2]; rz(*) q[0]; }", false},
    {"scaff_unterminated_comment",
     "module m { qreg q[1]; /* comment", false},
    {"scaff_bad_char", "module m { qreg q[1]; x q[0]; $ }", false},
    {"scaff_for_missing_range",
     "module m { qreg q[4]; for i in 0 { h q[i]; } }", false},
    // ScaffLite: semantic damage (caught by lowering).
    {"scaff_unknown_gate",
     "module m { qreg q[1]; frobnicate q[0]; }", false},
    {"scaff_index_out_of_range",
     "module m { qreg q[1]; x q[5]; }", false},
    {"scaff_unknown_register",
     "module m { qreg q[1]; x r[0]; }", false},
    {"scaff_nonconstant_bound",
     "module m { qreg q[4]; for i in 0..n { h q[i]; } }", false},
    {"scaff_empty_module", "module m { }", false},
    // OpenQASM: structural damage.
    {"qasm_empty", "", true},
    {"qasm_header_only", "OPENQASM", true},
    {"qasm_missing_version", "OPENQASM; qreg q[1];", true},
    {"qasm_no_qreg", "OPENQASM 2.0; x q[0];", true},
    {"qasm_truncated_gate",
     "OPENQASM 2.0; qreg q[2]; cx q[0],", true},
    {"qasm_unterminated_include",
     "OPENQASM 2.0; include \"qelib1.inc\nqreg q[1];", true},
    // OpenQASM: semantic damage.
    {"qasm_register_overflow",
     "OPENQASM 2.0; qreg q[999999999]; x q[0];", true},
    {"qasm_second_reg_overflow",
     "OPENQASM 2.0; qreg a[4000]; qreg b[4000]; x a[0];", true},
    {"qasm_unknown_gate",
     "OPENQASM 2.0; qreg q[2]; zz q[0],q[1];", true},
    {"qasm_bad_arity", "OPENQASM 2.0; qreg q[2]; cx q[0];", true},
    {"qasm_index_out_of_range",
     "OPENQASM 2.0; qreg q[2]; x q[7];", true},
    {"qasm_unknown_qreg", "OPENQASM 2.0; qreg q[2]; x r[0];", true},
    {"qasm_redeclared_qreg",
     "OPENQASM 2.0; qreg q[2]; qreg q[3]; x q[0];", true},
    {"qasm_late_qreg",
     "OPENQASM 2.0; qreg q[2]; x q[0]; qreg r[2];", true},
    {"qasm_division_by_zero",
     "OPENQASM 2.0; qreg q[1]; rz(1/0) q[0];", true},
    // Garbage bytes / wrong format entirely.
    {"qasm_garbage_bytes",
     "\xff\xfe\x00garbage\x80\xc0 OPENQASM", true},
    {"scaff_garbage_bytes", "\x01\x02\xffmodule \xfe{", false},
    {"qasm_elf_header", "\x7f" "ELF\x02\x01\x01", true},
};

class MalformedInput : public ::testing::TestWithParam<BadInput>
{
};

TEST_P(MalformedInput, CollectsDiagnosticsWithoutCrashing)
{
    const BadInput &bad = GetParam();
    Diagnostics diags(bad.name);
    if (bad.qasm)
        parseOpenQasm(bad.source, diags);
    else
        compileScaffLite(bad.source, diags);

    // The contract: every case yields at least one *structured* error,
    // the text and JSON renderings are well-formed, and nothing threw.
    EXPECT_TRUE(diags.hasErrors()) << bad.name;
    EXPECT_FALSE(diags.all().empty()) << bad.name;
    for (const Diagnostic &d : diags.all())
        EXPECT_FALSE(d.code.empty()) << bad.name;
    EXPECT_NE(diags.text().find("error"), std::string::npos) << bad.name;
    std::string json = diags.json();
    EXPECT_EQ(json.front(), '{') << bad.name;
    EXPECT_EQ(json.back(), '}') << bad.name;
    // JSON must stay valid even when the input had raw control bytes.
    for (char ch : json)
        EXPECT_GE(static_cast<unsigned char>(ch), 0x20u) << bad.name;

    // The legacy first-throw API must convert to FatalError — never an
    // uncaught exception or a crash.
    if (bad.qasm)
        EXPECT_THROW(parseOpenQasm(bad.source), FatalError) << bad.name;
    else
        EXPECT_THROW(compileScaffLite(bad.source), FatalError) << bad.name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, MalformedInput, ::testing::ValuesIn(kBadInputs),
    [](const ::testing::TestParamInfo<BadInput> &info) {
        return info.param.name;
    });

TEST(MalformedInputTest, RecoveryReportsMultipleErrorsPerRun)
{
    Diagnostics diags("<multi>");
    parseOpenQasm("OPENQASM 2.0; qreg q[2];\n"
                  "zz q[0],q[1];\n"
                  "x q[9];\n"
                  "cx q[0];\n",
                  diags);
    EXPECT_GE(diags.errorCount(), 3);
}

TEST(MalformedInputTest, ErrorFloodIsCappedNotUnbounded)
{
    // 10k unknown gates: the collector keeps counting but stops
    // storing at maxErrors, so memory stays bounded.
    std::ostringstream src;
    src << "OPENQASM 2.0; qreg q[1];\n";
    for (int i = 0; i < 10000; ++i)
        src << "bogus" << i << " q[0];\n";
    Diagnostics diags("<flood>");
    parseOpenQasm(src.str(), diags);
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_LE(static_cast<int>(diags.all().size()), diags.maxErrors + 16);
}

TEST(MalformedInputTest, RandomByteSoupNeverCrashesEitherFrontEnd)
{
    Rng rng(0xBADF00D);
    for (int iter = 0; iter < 300; ++iter) {
        int len = rng.uniformInt(200);
        std::string soup;
        soup.reserve(static_cast<size_t>(len));
        for (int i = 0; i < len; ++i)
            soup += static_cast<char>(rng.uniformInt(256));
        Diagnostics d1("<soup>"), d2("<soup>");
        parseOpenQasm(soup, d1);     // must not crash or hang
        compileScaffLite(soup, d2);  // must not crash or hang
    }
}

TEST(MalformedInputTest, MutatedValidProgramsNeverCrash)
{
    // Structured mutation: start from a valid program, then truncate,
    // splice garbage, or duplicate chunks — closer to real corruption
    // than pure byte soup.
    const std::string valid =
        "OPENQASM 2.0;\nqreg q[3];\ncreg c[3];\nh q[0];\n"
        "cx q[0],q[1];\ncx q[1],q[2];\nmeasure q[0] -> c[0];\n";
    Rng rng(0xC0FFEE);
    for (int iter = 0; iter < 200; ++iter) {
        std::string mutated = valid;
        switch (rng.uniformInt(3)) {
          case 0: // truncate
            mutated.resize(rng.uniformInt(
                static_cast<int>(valid.size())));
            break;
          case 1: { // splice a garbage byte
            size_t at = static_cast<size_t>(
                rng.uniformInt(static_cast<int>(valid.size())));
            mutated[at] = static_cast<char>(rng.uniformInt(256));
            break;
          }
          default: { // duplicate a chunk
            size_t at = static_cast<size_t>(
                rng.uniformInt(static_cast<int>(valid.size())));
            mutated.insert(at, valid.substr(0, at));
            break;
          }
        }
        Diagnostics diags("<mutated>");
        parseOpenQasm(mutated, diags); // must not crash or hang
    }
}

// ---------------------------------------------------------------------
// Adversarial corpus: corrupt calibration text.
// ---------------------------------------------------------------------

TEST(CorruptCalibrationTest, MalformedStreamsFailWithFatalNotCrash)
{
    const char *cases[] = {
        "",
        "garbage",
        "calibration v9\nqubits 5\n",
        "calibration v1\nqubits -3\n",
        "calibration v1\nqubits 999999999\nedges 1\n",
        "calibration v1\nqubits 2\nedges 99999999999\n",
        "calibration v1\nqubits 2\nedges 1\ndurations 0.1 nope",
        "calibration v1\nqubits 2\nedges 1\ndurations 0.1 0.4 3\n"
        "err1q 0.1", // truncated vector
        "calibration v2\nqubits 2\nedges 1\ndurations 0.1 0.4 3\n",
    };
    for (const char *text : cases) {
        std::istringstream is(text);
        EXPECT_THROW(Calibration::load(is), FatalError) << text;
    }
}

TEST(CorruptCalibrationTest, LoadedGarbageValuesAreSanitizedDownstream)
{
    // A stream that parses but carries poisoned values: validation must
    // repair every one of them in Sanitize mode.
    std::istringstream is(
        "calibration v1\nqubits 2\nedges 1\n"
        "durations 0.1 0.4 3\n"
        "err1q 9e99 2.5\n"
        "errRO -0.5 0.1\n"
        "t2us 0 -5\n"
        "err2q 1e308\n");
    Calibration c = Calibration::load(is);
    Diagnostics diags("calibration");
    int repairs = c.validate(ValidateMode::Sanitize, diags);
    EXPECT_GE(repairs, 6);
    EXPECT_FALSE(diags.hasErrors()); // sanitize repairs, never rejects
    EXPECT_GE(diags.warningCount(), 6);
    for (double v : c.err1q)
        EXPECT_TRUE(v >= 0.0 && v <= 1.0);
    for (double v : c.errRO)
        EXPECT_TRUE(v >= 0.0 && v <= 1.0);
    for (double v : c.t2Us)
        EXPECT_GT(v, 0.0);
}

} // namespace
} // namespace triq
