/**
 * @file
 * End-to-end fuzzing: random programs are generated as ScaffLite
 * source, pushed through the entire stack (parse -> lower -> compile
 * for a random device at a random level -> verify), asserting semantic
 * equivalence and hardware-constraint compliance every time. This is
 * the broadest single correctness net in the suite.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/compiler.hh"
#include "device/machines.hh"
#include "lang/lower.hh"
#include "lang/scaff_writer.hh"
#include "sim/verify.hh"

namespace triq
{
namespace
{

/** Generate a random program circuit over n qubits. */
Circuit
randomProgram(Rng &rng, int n, int gates)
{
    Circuit c(n, "fuzz");
    for (int i = 0; i < gates; ++i) {
        int pick = rng.uniformInt(10);
        int a = rng.uniformInt(n);
        int b = (a + 1 + rng.uniformInt(n - 1)) % n;
        switch (pick) {
          case 0:
            c.add(Gate::h(a));
            break;
          case 1:
            c.add(Gate::x(a));
            break;
          case 2:
            c.add(Gate::t(a));
            break;
          case 3:
            c.add(Gate::rz(a, rng.uniform(-kPi, kPi)));
            break;
          case 4:
            c.add(Gate::ry(a, rng.uniform(-kPi, kPi)));
            break;
          case 5:
          case 6:
            c.add(Gate::cnot(a, b));
            break;
          case 7:
            c.add(Gate::cz(a, b));
            break;
          case 8:
            c.add(Gate::cphase(a, b, rng.uniform(-kPi, kPi)));
            break;
          default:
            if (n >= 3) {
                int t = (b + 1 + rng.uniformInt(n - 2)) % n;
                if (t != a && t != b) {
                    c.add(Gate::ccx(a, b, t));
                    break;
                }
            }
            c.add(Gate::swap(a, b));
            break;
        }
    }
    // Measure a random non-empty subset.
    bool any = false;
    for (int q = 0; q < n; ++q)
        if (rng.bernoulli(0.6)) {
            c.add(Gate::measure(q));
            any = true;
        }
    if (!any)
        c.add(Gate::measure(rng.uniformInt(n)));
    return c;
}

class FullStackFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FullStackFuzz, RandomProgramsSurviveTheWholeStack)
{
    Rng rng(0xF022 + GetParam() * 77);
    auto devices = allStudyDevices();
    const Device &dev = devices[static_cast<size_t>(
        rng.uniformInt(static_cast<int>(devices.size())))];
    int n = 2 + rng.uniformInt(std::min(4, dev.numQubits() - 1));
    Circuit program = randomProgram(rng, n, 8 + rng.uniformInt(18));

    // Round-trip through the language layer first.
    Circuit parsed = compileScaffLite(toScaffLite(program));
    ASSERT_EQ(parsed.numGates(), program.numGates());

    OptLevel level = static_cast<OptLevel>(rng.uniformInt(4));
    CompileOptions opts;
    opts.level = level;
    opts.peephole = rng.bernoulli(0.5);
    opts.mapping.kind =
        rng.bernoulli(0.5) ? MapperKind::Greedy
                           : MapperKind::BranchAndBound;
    Calibration calib = dev.calibrate(rng.uniformInt(30));
    CompileResult res = compileForDevice(parsed, dev, calib, opts);

    // Hardware constraints.
    for (const auto &g : res.hwCircuit.gates()) {
        if (isTwoQubitGate(g.kind)) {
            ASSERT_TRUE(dev.topology().adjacent(g.qubit(0), g.qubit(1)))
                << dev.name() << " " << g.str();
        }
    }

    // Semantics.
    VerificationResult v = verifyCompilation(parsed, res);
    EXPECT_TRUE(v.equivalent)
        << dev.name() << " " << optLevelName(level)
        << " maxDeviation=" << v.maxDeviation << "\n"
        << program.str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullStackFuzz,
                         ::testing::Range(uint64_t{0}, uint64_t{60}));

} // namespace
} // namespace triq
