/**
 * @file
 * Hardened-service contract tests: deadline-aware anytime compilation
 * with graceful degradation, calibration sanitization, deterministic
 * fault injection and the structured compile report. The central
 * invariant under test: a mappable program ALWAYS yields a valid routed
 * circuit — budgets and corrupt inputs may degrade quality, never
 * validity.
 */

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>

#include <gtest/gtest.h>

#include "common/budget.hh"
#include "common/fault_injector.hh"
#include "common/logging.hh"
#include "core/compiler.hh"
#include "device/machines.hh"
#include "service/server.hh"
#include "sim/executor.hh"
#include "sim/verify.hh"
#include "workloads/benchmarks.hh"
#include "workloads/supremacy.hh"

namespace triq
{
namespace
{

Device
deviceByName(const std::string &name)
{
    for (auto &d : allStudyDevices())
        if (d.name() == name)
            return d;
    fatal("test: unknown device ", name);
}

/** Every 2Q gate of a compiled circuit must sit on a coupled pair. */
void
expectRoutedValid(const CompileResult &res, const Device &dev)
{
    for (const auto &g : res.hwCircuit.gates())
        if (isTwoQubitGate(g.kind))
            ASSERT_TRUE(dev.topology().adjacent(g.qubit(0), g.qubit(1)))
                << g.str();
    ASSERT_FALSE(res.initialMap.empty());
}

// ---------------------------------------------------------------------
// CompileBudget basics.
// ---------------------------------------------------------------------

TEST(CompileBudgetTest, DefaultIsUnlimited)
{
    CompileBudget b;
    EXPECT_FALSE(b.limited());
    EXPECT_FALSE(b.expired());
    EXPECT_GT(b.remainingMs(), 1e12);
}

TEST(CompileBudgetTest, ZeroDeadlineExpiresImmediately)
{
    CompileBudget b = CompileBudget::withDeadlineMs(0.0);
    EXPECT_TRUE(b.limited());
    EXPECT_TRUE(b.expired());
    EXPECT_LE(b.remainingMs(), 0.0);
}

TEST(CompileBudgetTest, GenerousDeadlineIsNotExpired)
{
    CompileBudget b = CompileBudget::withDeadlineMs(3600000.0);
    EXPECT_TRUE(b.limited());
    EXPECT_FALSE(b.expired());
}

// ---------------------------------------------------------------------
// The anytime guarantee.
// ---------------------------------------------------------------------

TEST(AnytimeTest, Supremacy72UnderTightDeadlineYieldsValidCircuit)
{
    // The acceptance scenario: a 72-qubit supremacy instance with a
    // deadline far too small for full branch-and-bound. The compile
    // must return a valid routed circuit with the degradation recorded
    // instead of overrunning or throwing.
    Device dev("Grid72", Topology::grid(6, 12), GateSet::ibm(),
               deviceByName("IBMQ14").noiseSpec());
    Circuit program = makeSupremacy(6, 12, 32, 1);
    Calibration calib = dev.calibrate(0);

    CompileOptions opts;
    opts.level = OptLevel::OneQOptCN;
    opts.mapping.kind = MapperKind::BranchAndBound;
    opts.budget = CompileBudget::withDeadlineMs(100.0);
    CompileResult res = compileForDevice(program, dev, calib, opts);

    expectRoutedValid(res, dev);
    EXPECT_TRUE(res.report.deadlineHit);
    EXPECT_TRUE(res.report.degraded);
    EXPECT_FALSE(res.report.degradations.empty());
    EXPECT_FALSE(res.report.mapperOptimal);
    // Whatever rung of the ladder answered, it must identify itself.
    EXPECT_TRUE(res.report.mapperEngine == "greedy" ||
                res.report.mapperEngine == "bnb")
        << res.report.mapperEngine;
}

TEST(AnytimeTest, TightDeadlineStillPreservesSemantics)
{
    // Small enough to verify by state vector: degradation may cost
    // reliability, never correctness.
    Device dev = deviceByName("IBMQ14");
    Circuit program = makeBenchmark("BV8");
    Calibration calib = dev.calibrate(0);

    CompileOptions opts;
    opts.budget = CompileBudget::withDeadlineMs(0.5);
    CompileResult res = compileForDevice(program, dev, calib, opts);

    expectRoutedValid(res, dev);
    VerificationResult v = verifyCompilation(program, res);
    EXPECT_TRUE(v.equivalent) << "maxDeviation=" << v.maxDeviation;
}

TEST(AnytimeTest, AlreadyExpiredBudgetStillCompilesEveryMapper)
{
    Device dev = deviceByName("IBMQ5");
    Circuit program = makeBenchmark("BV4");
    Calibration calib = dev.calibrate(0);
    for (MapperKind kind :
         {MapperKind::Trivial, MapperKind::Greedy,
          MapperKind::BranchAndBound, MapperKind::Smt}) {
        CompileOptions opts;
        opts.mapping.kind = kind;
        opts.budget = CompileBudget::withDeadlineMs(0.0);
        CompileResult res = compileForDevice(program, dev, calib, opts);
        expectRoutedValid(res, dev);
        VerificationResult v = verifyCompilation(program, res);
        EXPECT_TRUE(v.equivalent) << mapperKindName(kind);
    }
}

TEST(AnytimeTest, UnlimitedBudgetReproducesDefaultBitForBit)
{
    // The determinism half of the guarantee: no deadline (or a deadline
    // that never fires) must reproduce today's mapping exactly.
    Device dev = deviceByName("IBMQ14");
    Circuit program = makeBenchmark("QFT");
    Calibration calib = dev.calibrate(3);

    CompileOptions base;
    CompileResult a = compileForDevice(program, dev, calib, base);

    CompileOptions explicit_unlimited = base;
    explicit_unlimited.budget = CompileBudget();
    CompileResult b =
        compileForDevice(program, dev, calib, explicit_unlimited);

    CompileOptions generous = base;
    generous.budget = CompileBudget::withDeadlineMs(3600000.0);
    CompileResult c = compileForDevice(program, dev, calib, generous);

    EXPECT_EQ(a.assembly, b.assembly);
    EXPECT_EQ(a.assembly, c.assembly);
    EXPECT_EQ(a.initialMap, b.initialMap);
    EXPECT_EQ(a.initialMap, c.initialMap);
    EXPECT_EQ(a.swapCount, b.swapCount);
    EXPECT_EQ(a.swapCount, c.swapCount);
    EXPECT_FALSE(b.report.deadlineHit);
    EXPECT_FALSE(c.report.deadlineHit);
}

// ---------------------------------------------------------------------
// Calibration validation: strict vs sanitize.
// ---------------------------------------------------------------------

Calibration
poisonedCalibration(const Device &dev)
{
    Calibration c = dev.calibrate(0);
    c.err1q[0] = std::nan("");
    c.err1q[1] = -0.25;
    c.errRO[0] = 17.0;
    c.t2Us[0] = 0.0;
    if (!c.err2q.empty())
        c.err2q[0] = std::numeric_limits<double>::infinity();
    return c;
}

TEST(CalibrationValidateTest, SanitizeRepairsEveryPoisonedValue)
{
    Device dev = deviceByName("IBMQ14");
    Calibration c = poisonedCalibration(dev);
    Diagnostics diags("calibration");
    int repairs = c.validate(dev.topology(), ValidateMode::Sanitize, diags);
    EXPECT_GE(repairs, 5);
    EXPECT_FALSE(diags.hasErrors());
    EXPECT_GE(diags.warningCount(), 5);
    for (double v : c.err1q) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_TRUE(v >= 0.0 && v < 1.0);
    }
    for (double v : c.err2q)
        EXPECT_TRUE(v >= 0.0 && v < 1.0);
    for (double v : c.t2Us)
        EXPECT_GT(v, 0.0);
}

TEST(CalibrationValidateTest, StrictModeRejectsWithStructuredErrors)
{
    Device dev = deviceByName("IBMQ14");
    Calibration c = poisonedCalibration(dev);
    Diagnostics diags("calibration");
    c.validate(dev.topology(), ValidateMode::Strict, diags);
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_GE(diags.errorCount(), 5);
}

TEST(CalibrationValidateTest, CleanCalibrationPassesBothModes)
{
    Device dev = deviceByName("IBMQ14");
    Calibration c = dev.calibrate(0);
    Diagnostics strict("calibration"), sanitize("calibration");
    EXPECT_EQ(c.validate(dev.topology(), ValidateMode::Strict, strict), 0);
    EXPECT_EQ(
        c.validate(dev.topology(), ValidateMode::Sanitize, sanitize), 0);
    EXPECT_FALSE(strict.hasErrors());
    EXPECT_FALSE(sanitize.hasErrors());
}

TEST(CalibrationValidateTest, DisconnectedTopologyIsAnErrorInBothModes)
{
    Topology topo(4);
    topo.addEdge(0, 1);
    topo.addEdge(2, 3); // two components
    NoiseSpec spec = deviceByName("IBMQ5").noiseSpec();
    Calibration c = synthesizeCalibration(topo, spec, "TestPair", 0);
    for (ValidateMode mode :
         {ValidateMode::Strict, ValidateMode::Sanitize}) {
        Diagnostics diags("calibration");
        c.validate(topo, mode, diags);
        EXPECT_TRUE(diags.hasErrors());
    }
}

TEST(CalibrationValidateTest, QubitCountMismatchIsAnError)
{
    Device dev = deviceByName("IBMQ14");
    Calibration c = dev.calibrate(0);
    c.numQubits = 5; // wrong device's data
    Diagnostics diags("calibration");
    c.validate(dev.topology(), ValidateMode::Sanitize, diags);
    EXPECT_TRUE(diags.hasErrors());
}

TEST(CalibrationValidateTest, CompilerSanitizesAndRecordsRepairs)
{
    Device dev = deviceByName("IBMQ14");
    Calibration c = poisonedCalibration(dev);
    CompileOptions opts;
    CompileResult res =
        compileForDevice(makeBenchmark("BV8"), dev, c, opts);
    expectRoutedValid(res, dev);
    EXPECT_GT(res.report.calibrationRepairs, 0);
    EXPECT_TRUE(res.report.degraded);

    // The caller's calibration is not mutated: sanitization works on a
    // private copy.
    EXPECT_TRUE(std::isnan(c.err1q[0]));
}

TEST(CalibrationValidateTest, CompilerStrictModeThrowsFatal)
{
    Device dev = deviceByName("IBMQ14");
    Calibration c = poisonedCalibration(dev);
    CompileOptions opts;
    opts.strictCalibration = true;
    EXPECT_THROW(compileForDevice(makeBenchmark("BV8"), dev, c, opts),
                 FatalError);
}

// ---------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------

TEST(FaultInjectorTest, DisabledInjectorIsANoOp)
{
    FaultInjector inj;
    EXPECT_FALSE(inj.enabled());
    std::vector<double> v{0.1, 0.2, 0.3};
    std::vector<double> orig = v;
    EXPECT_EQ(inj.corruptValues(v), 0);
    EXPECT_EQ(v, orig);
    EXPECT_EQ(inj.corruptText("hello"), "hello");
}

TEST(FaultInjectorTest, SameSeedSameFaults)
{
    auto corrupt_once = [](uint64_t seed) {
        FaultInjector inj({true, true}, seed);
        std::vector<double> v(32, 0.5);
        inj.corruptValues(v);
        std::string t = inj.corruptText("OPENQASM 2.0; qreg q[4];");
        return std::make_pair(v, t);
    };
    auto [v1, t1] = corrupt_once(42);
    auto [v2, t2] = corrupt_once(42);
    auto [v3, t3] = corrupt_once(43);
    // Bitwise comparison (NaN != NaN), so compare representations.
    ASSERT_EQ(v1.size(), v2.size());
    for (size_t i = 0; i < v1.size(); ++i)
        EXPECT_EQ(std::memcmp(&v1[i], &v2[i], sizeof(double)), 0);
    EXPECT_EQ(t1, t2);
    EXPECT_NE(t1, t3); // different seed, different corruption
}

TEST(FaultInjectorTest, ArmedCorruptValuesAlwaysHitsSomething)
{
    FaultInjector inj({true, false}, 9);
    for (int round = 0; round < 20; ++round) {
        std::vector<double> v(8, 0.01);
        EXPECT_GE(inj.corruptValues(v), 1);
    }
}

TEST(FaultInjectorTest, InjectedCalibrationCompilesUnderSanitization)
{
    Device dev = deviceByName("IBMQ14");
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        Calibration calib = dev.calibrate(0);
        FaultInjector inj({true, false}, seed);
        int n = injectCalibrationFaults(calib, inj);
        EXPECT_GE(n, 1) << "seed " << seed;
        CompileOptions opts;
        CompileResult res =
            compileForDevice(makeBenchmark("BV8"), dev, calib, opts);
        expectRoutedValid(res, dev);
        EXPECT_GT(res.report.calibrationRepairs, 0) << "seed " << seed;
    }
}

TEST(FaultInjectorTest, FromEnvDisabledWhenUnset)
{
    // The suite runs without TRIQ_FAULT set; fromEnv must be inert.
    FaultInjector inj = FaultInjector::fromEnv();
    EXPECT_FALSE(inj.enabled());
}

// ---------------------------------------------------------------------
// Executor guards.
// ---------------------------------------------------------------------

TEST(ExecutorGuardTest, PoisonedCalibrationDoesNotPoisonTheSimulation)
{
    Device dev = deviceByName("IBMQ5");
    Calibration calib = poisonedCalibration(dev);
    CompileResult res =
        compileForDevice(makeBenchmark("BV4"), dev, dev.calibrate(0),
                         CompileOptions{});
    ExecutionResult run = executeNoisy(res.hwCircuit, dev, calib, 200);
    EXPECT_TRUE(std::isfinite(run.successRate));
    EXPECT_GE(run.successRate, 0.0);
    EXPECT_LE(run.successRate, 1.0);
    EXPECT_TRUE(std::isfinite(run.esp));
}

// ---------------------------------------------------------------------
// Structured report / diagnostics rendering.
// ---------------------------------------------------------------------

TEST(CompileReportTest, ReportCarriesEnginesTimingsAndRenders)
{
    Device dev = deviceByName("IBMQ14");
    CompileOptions opts;
    opts.mapping.kind = MapperKind::BranchAndBound;
    CompileResult res = compileForDevice(makeBenchmark("BV8"), dev,
                                         dev.calibrate(0), opts);
    const CompileReport &r = res.report;
    EXPECT_EQ(r.requestedMapper, "bnb");
    EXPECT_EQ(r.mapperEngine, "bnb");
    EXPECT_FALSE(r.degraded);
    EXPECT_FALSE(r.deadlineHit);
    EXPECT_GE(r.passes.size(), 5u); // sanitize..translate at minimum
    for (const auto &p : r.passes) {
        EXPECT_FALSE(p.pass.empty());
        EXPECT_GE(p.ms, 0.0);
    }
    EXPECT_NE(r.str().find("mapper:"), std::string::npos);
    std::string json = r.json();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"mapperEngine\":\"bnb\""), std::string::npos);
}

TEST(CompileReportTest, SmtRequestRecordsLadderInReport)
{
    // Whatever this build has (Z3 or not), requesting SMT under an
    // expired budget must fall down the ladder and say so.
    Device dev = deviceByName("IBMQ5");
    CompileOptions opts;
    opts.mapping.kind = MapperKind::Smt;
    opts.budget = CompileBudget::withDeadlineMs(0.0);
    CompileResult res = compileForDevice(makeBenchmark("BV4"), dev,
                                         dev.calibrate(0), opts);
    EXPECT_EQ(res.report.requestedMapper, "smt");
    EXPECT_NE(res.report.mapperEngine, "smt");
    EXPECT_TRUE(res.report.degraded);
    EXPECT_FALSE(res.report.degradations.empty());
}

TEST(DiagnosticsTest, JsonEscapesControlAndNonAsciiBytes)
{
    Diagnostics diags("<origin\x01>");
    diags.error("test.code", "bad \"bytes\" \x02\xff here", {3, 7});
    std::string json = diags.json();
    for (char ch : json)
        EXPECT_GE(static_cast<unsigned char>(ch), 0x20u);
    EXPECT_NE(json.find("\\u0002"), std::string::npos);
    EXPECT_NE(json.find("\\\""), std::string::npos);
}

TEST(DiagnosticsTest, MergeAndCapBehave)
{
    Diagnostics a("a"), b("b");
    a.maxErrors = 4;
    for (int i = 0; i < 10; ++i)
        b.error("x", "error " + std::to_string(i));
    a.merge(b);
    EXPECT_TRUE(a.truncated());
    EXPECT_EQ(a.errorCount(), 10);
    EXPECT_LE(static_cast<int>(a.all().size()), 4);
}

// --- triqd protocol fuzzing -----------------------------------------------
//
// The server's input surface is a socket: anything can arrive. The
// contract under fuzzing is absolute — every frame, however mangled,
// earns exactly one reply line that this same parser accepts, and the
// engine keeps serving clean requests afterwards.

namespace
{

/** Reply must be a JSON object; returns its error code ("" if ok). */
std::string
replyCode(Server &server, const std::string &frame)
{
    std::string reply = server.processLine("fuzz", frame);
    JsonParseResult r = parseJson(reply);
    EXPECT_TRUE(r.ok) << "unparseable reply: " << reply;
    EXPECT_TRUE(r.value.isObject()) << reply;
    const JsonValue *err = r.value.find("error");
    if (err) {
        EXPECT_FALSE(r.value.getBool("ok", true)) << reply;
        std::string code = err->getString("code");
        EXPECT_FALSE(code.empty()) << reply;
        return code;
    }
    EXPECT_TRUE(r.value.getBool("ok")) << reply;
    return "";
}

} // namespace

TEST(ServerProtocolFuzzTest, TruncatedFramesAlwaysAnswerStructurally)
{
    Server server;
    const std::string whole =
        "{\"id\":\"t1\",\"op\":\"compile\",\"bench\":\"BV4\","
        "\"device\":\"IBMQ5\",\"level\":\"cn\",\"day\":2}";
    // Every prefix of a valid frame is either valid JSON (the full
    // frame) or a parse error — never a hang, never a crash.
    for (size_t cut = 0; cut < whole.size(); ++cut)
        EXPECT_EQ(replyCode(server, whole.substr(0, cut)), "proto.parse")
            << "cut=" << cut;
    EXPECT_EQ(replyCode(server, whole), "");
}

TEST(ServerProtocolFuzzTest, MangledBytesNeverKillTheEngine)
{
    Server server;
    const std::string base =
        "{\"id\":9,\"op\":\"compile\",\"bench\":\"BV4\","
        "\"device\":\"IBMQ5\"}";
    // Deterministic byte corruption at every position: overwrite with
    // a control byte, a quote, a brace and a high bit in turn.
    const char junk[] = {'\x01', '"', '}', '\xff'};
    for (size_t i = 0; i < base.size(); ++i) {
        std::string mangled = base;
        mangled[i] = junk[i % sizeof(junk)];
        replyCode(server, mangled); // asserts reply well-formedness
    }
    // Deterministic pseudo-random garbage lines.
    uint64_t rng = 0x9e3779b97f4a7c15ull;
    for (int round = 0; round < 64; ++round) {
        std::string garbage;
        for (int k = 0; k < 48; ++k) {
            rng = rng * 6364136223846793005ull + 1442695040888963407ull;
            garbage += static_cast<char>(rng >> 56);
        }
        replyCode(server, garbage);
    }
    // And the engine still serves.
    EXPECT_EQ(replyCode(server, base), "");
    ServerStats st = server.stats();
    EXPECT_EQ(st.crashes, 0);
}

TEST(ServerProtocolFuzzTest, OversizedFramesAreSingleStructuredRejections)
{
    ServerConfig cfg;
    cfg.maxRequestBytes = 4096;
    Server server(std::move(cfg));
    for (long size : {4097L, 8192L, 1L << 18}) {
        std::string frame = "{\"op\":\"ping\",\"pad\":\"";
        frame += std::string(static_cast<size_t>(size), 'z');
        frame += "\"}";
        EXPECT_EQ(replyCode(server, frame), "proto.oversized") << size;
    }
    // Exactly at the cap is admitted (and parses).
    std::string fit = "{\"op\":\"ping\",\"pad\":\"";
    fit += std::string(4096 - fit.size() - 2, 'z');
    fit += "\"}";
    ASSERT_EQ(static_cast<long>(fit.size()), 4096L);
    EXPECT_EQ(replyCode(server, fit), "");
}

TEST(ServerProtocolFuzzTest, InterleavedClientsKeepIdCorrelation)
{
    Server server;
    // Four threads stream distinct ids through one engine; every reply
    // must carry its own request's id back (no cross-talk between
    // clients sharing the worker pool and the cache).
    std::vector<std::thread> clients;
    std::atomic<int> mismatches{0};
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&server, &mismatches, c] {
            const std::string who = "client-" + std::to_string(c);
            for (int i = 0; i < 8; ++i) {
                std::string id =
                    who + "-r" + std::to_string(i);
                std::string frame =
                    "{\"id\":\"" + id +
                    "\",\"op\":\"compile\",\"bench\":\"BV4\","
                    "\"device\":\"IBMQ5\",\"day\":" +
                    std::to_string(i % 3) + "}";
                JsonParseResult r =
                    parseJson(server.processLine(who, frame));
                if (!r.ok || r.value.getString("id") != id ||
                    !r.value.getBool("ok"))
                    ++mismatches;
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);
    ServerStats st = server.stats();
    EXPECT_EQ(st.completed, 32);
    EXPECT_EQ(st.crashes, 0);
}

} // namespace
} // namespace triq
