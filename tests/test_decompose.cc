/**
 * @file
 * Decomposition tests: every rewrite in decomposeToCnotBasis preserves
 * the unitary up to global phase, including parameter sweeps for the
 * parametrized gates.
 */

#include <gtest/gtest.h>

#include "core/decompose.hh"
#include "core/unitary.hh"

namespace triq
{
namespace
{

void
expectDecomposes(const Circuit &c)
{
    Circuit lowered = decomposeToCnotBasis(c);
    EXPECT_TRUE(isCnotBasis(lowered));
    EXPECT_TRUE(sameUnitary(lowered, c)) << c.name();
}

TEST(Decompose, Toffoli)
{
    Circuit c(3, "ccx");
    c.add(Gate::ccx(0, 1, 2));
    expectDecomposes(c);
    Circuit lowered = decomposeToCnotBasis(c);
    EXPECT_EQ(lowered.count2q(), 6); // The standard 6-CNOT network.
}

TEST(Decompose, ToffoliOperandOrders)
{
    // All operand permutations must work (controls commute; the
    // decomposition must respect which operand is the target).
    const int perms[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                             {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
    for (const auto &p : perms) {
        Circuit c(3, "ccx_perm");
        c.add(Gate::ccx(p[0], p[1], p[2]));
        expectDecomposes(c);
    }
}

TEST(Decompose, CczAndFredkin)
{
    Circuit ccz(3, "ccz");
    ccz.add(Gate::ccz(0, 1, 2));
    expectDecomposes(ccz);

    Circuit fredkin(3, "cswap");
    fredkin.add(Gate::cswap(0, 1, 2));
    expectDecomposes(fredkin);
}

TEST(Decompose, CzAndSwap)
{
    Circuit cz(2, "cz");
    cz.add(Gate::cz(0, 1));
    expectDecomposes(cz);

    Circuit swap(2, "swap");
    swap.add(Gate::swap(0, 1));
    expectDecomposes(swap);
    EXPECT_EQ(decomposeToCnotBasis(swap).count2q(), 3);
}

class AngleSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(AngleSweep, Cphase)
{
    Circuit c(2, "cphase");
    c.add(Gate::cphase(0, 1, GetParam()));
    expectDecomposes(c);
}

TEST_P(AngleSweep, XxIsing)
{
    Circuit c(2, "xx");
    c.add(Gate::xx(0, 1, GetParam()));
    expectDecomposes(c);
}

INSTANTIATE_TEST_SUITE_P(Angles, AngleSweep,
                         ::testing::Values(-kPi, -1.3, -kPi / 4, 0.0,
                                           0.7, kPi / 4, kPi / 2, 2.8,
                                           kPi));

TEST(Decompose, MixedProgramWithMeasure)
{
    Circuit c(3, "mixed");
    c.add(Gate::h(0));
    c.add(Gate::ccx(0, 1, 2));
    c.add(Gate::barrier());
    c.add(Gate::cphase(1, 2, 0.4));
    c.add(Gate::measure(0));
    c.add(Gate::measure(2));
    Circuit lowered = decomposeToCnotBasis(c);
    EXPECT_TRUE(isCnotBasis(lowered));
    // Non-unitary bookkeeping preserved.
    EXPECT_EQ(lowered.measuredQubits(), c.measuredQubits());
    EXPECT_EQ(lowered.countIf([](const Gate &g) {
        return g.kind == GateKind::Barrier;
    }), 1);
}

TEST(Decompose, CnotBasisPredicate)
{
    Circuit good(2);
    good.add(Gate::h(0));
    good.add(Gate::cnot(0, 1));
    good.add(Gate::measure(1));
    EXPECT_TRUE(isCnotBasis(good));

    Circuit bad(2);
    bad.add(Gate::cz(0, 1));
    EXPECT_FALSE(isCnotBasis(bad));
}

TEST(Decompose, KeepCphasePreservesPhaseStructure)
{
    Circuit c(3, "phase");
    c.add(Gate::cphase(0, 1, 0.7));
    c.add(Gate::cz(1, 2));
    c.add(Gate::ccx(0, 1, 2));
    Circuit kept = decomposeToCnotBasis(c, /*keep_cphase=*/true);
    EXPECT_TRUE(isCnotBasis(kept, true));
    EXPECT_FALSE(isCnotBasis(kept, false));
    EXPECT_TRUE(sameUnitary(kept, c));
    // Both phase gates survive as Cphase; CZ becomes Cphase(pi).
    int cps = kept.countIf(
        [](const Gate &g) { return g.kind == GateKind::Cphase; });
    EXPECT_EQ(cps, 2);
    // Toffoli still expands to CNOTs.
    EXPECT_EQ(kept.countIf([](const Gate &g) {
        return g.kind == GateKind::Cnot;
    }), 6);
}

TEST(Decompose, Idempotent)
{
    Circuit c(3, "nested");
    c.add(Gate::ccx(0, 1, 2));
    c.add(Gate::swap(0, 2));
    Circuit once = decomposeToCnotBasis(c);
    Circuit twice = decomposeToCnotBasis(once);
    EXPECT_EQ(once.numGates(), twice.numGates());
    EXPECT_TRUE(sameUnitary(once, twice));
}

} // namespace
} // namespace triq
