/**
 * @file
 * Translation-pass tests: every vendor lowering must preserve the
 * circuit unitary up to global phase, and pulse counting must follow
 * the Fig. 2 software-visible gate sets.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/translate.hh"
#include "core/unitary.hh"
#include "device/machines.hh"

namespace triq
{
namespace
{

Topology
line2(bool directed)
{
    Topology t(2);
    t.addEdge(0, 1, directed);
    return t;
}

Circuit
translate(const Circuit &c, const Topology &topo, const GateSet &gs,
          bool fuse)
{
    TranslateOptions opts;
    opts.fuseOneQubit = fuse;
    return translateForDevice(c, topo, gs, opts).circuit;
}

class TranslateCnot : public ::testing::TestWithParam<bool>
{
};

TEST_P(TranslateCnot, IbmNativeDirection)
{
    Circuit c(2);
    c.add(Gate::cnot(0, 1));
    Circuit out = translate(c, line2(true), GateSet::ibm(), GetParam());
    EXPECT_TRUE(sameUnitary(out, c));
    // Native orientation: exactly the CNOT, no 1Q gates.
    EXPECT_EQ(out.numGates(), 1);
}

TEST_P(TranslateCnot, IbmReversedDirection)
{
    Circuit c(2);
    c.add(Gate::cnot(1, 0)); // Edge is directed 0 -> 1.
    Circuit out = translate(c, line2(true), GateSet::ibm(), GetParam());
    EXPECT_TRUE(sameUnitary(out, c));
    // The emitted CNOT must follow the hardware direction.
    for (const auto &g : out.gates()) {
        if (g.kind == GateKind::Cnot) {
            EXPECT_EQ(g.qubit(0), 0);
        }
    }
}

TEST_P(TranslateCnot, RigettiCnotViaCz)
{
    Circuit c(2);
    c.add(Gate::cnot(0, 1));
    Circuit out = translate(c, line2(false), GateSet::rigetti(),
                            GetParam());
    EXPECT_TRUE(sameUnitary(out, c));
    int czs = out.countIf(
        [](const Gate &g) { return g.kind == GateKind::Cz; });
    EXPECT_EQ(czs, 1);
    // Only software-visible Rigetti gates may appear.
    for (const auto &g : out.gates()) {
        bool ok = g.kind == GateKind::Cz || g.kind == GateKind::Rz ||
                  g.kind == GateKind::Rx;
        EXPECT_TRUE(ok) << g.str();
        if (g.kind == GateKind::Rx) {
            EXPECT_NEAR(std::abs(g.params[0]), kPi / 2, 1e-9) << g.str();
        }
    }
}

TEST_P(TranslateCnot, UmdCnotViaXx)
{
    Circuit c(2);
    c.add(Gate::cnot(0, 1));
    Circuit out = translate(c, line2(false), GateSet::umd(), GetParam());
    EXPECT_TRUE(sameUnitary(out, c));
    int xxs = out.countIf(
        [](const Gate &g) { return g.kind == GateKind::Xx; });
    EXPECT_EQ(xxs, 1);
    for (const auto &g : out.gates()) {
        bool ok = g.kind == GateKind::Xx || g.kind == GateKind::Rz ||
                  g.kind == GateKind::Rxy;
        EXPECT_TRUE(ok) << g.str();
    }
}

TEST_P(TranslateCnot, SwapExpansion)
{
    Circuit c(2);
    c.add(Gate::swap(0, 1));
    for (const GateSet &gs :
         {GateSet::ibm(), GateSet::rigetti(), GateSet::umd()}) {
        Circuit out = translate(c, line2(gs.vendor == Vendor::IBM), gs,
                                GetParam());
        EXPECT_TRUE(sameUnitary(out, c)) << gs.describe();
    }
}

INSTANTIATE_TEST_SUITE_P(FuseModes, TranslateCnot, ::testing::Bool());

/** A random 1Q gate on qubit q. */
Gate
random1q(Rng &rng, int q)
{
    switch (rng.uniformInt(8)) {
      case 0:
        return Gate::h(q);
      case 1:
        return Gate::x(q);
      case 2:
        return Gate::t(q);
      case 3:
        return Gate::s(q);
      case 4:
        return Gate::rx(q, rng.uniform(-kPi, kPi));
      case 5:
        return Gate::ry(q, rng.uniform(-kPi, kPi));
      case 6:
        return Gate::rz(q, rng.uniform(-kPi, kPi));
      default:
        return Gate::u3(q, rng.uniform(0, kPi), rng.uniform(-kPi, kPi),
                        rng.uniform(-kPi, kPi));
    }
}

class FusionProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FusionProperty, RunsFuseToVendorPulseCaps)
{
    // Any run of 1Q gates must fuse to at most: 2 pulses on IBM (one
    // U3), 2 Rx(pi/2) pulses on Rigetti, 1 Rxy pulse on UMD — plus
    // error-free virtual Z rotations. And stay unitary-equivalent.
    Rng rng(1234 + GetParam());
    Circuit c(1);
    int len = 1 + rng.uniformInt(10);
    for (int i = 0; i < len; ++i)
        c.add(random1q(rng, 0));

    Topology t(1);
    struct Cap
    {
        GateSet gs;
        int maxPulses;
    };
    const Cap caps[] = {
        {GateSet::ibm(), 2},
        {GateSet::rigetti(), 2},
        {GateSet::umd(), 1},
    };
    for (const auto &cap : caps) {
        TranslateOptions opts;
        opts.fuseOneQubit = true;
        TranslateResult res = translateForDevice(c, t, cap.gs, opts);
        EXPECT_LE(res.stats.pulses1q, cap.maxPulses)
            << cap.gs.describe();
        EXPECT_TRUE(sameUnitary(res.circuit, c)) << cap.gs.describe();
    }
}

TEST_P(FusionProperty, FusionNeverIncreasesPulses)
{
    Rng rng(9999 + GetParam());
    Circuit safe(2);
    for (int i = 0; i < 14; ++i) {
        if (rng.uniformInt(4) == 0) {
            bool flip = rng.uniformInt(2) == 1;
            safe.add(Gate::cnot(flip ? 1 : 0, flip ? 0 : 1));
        } else {
            safe.add(random1q(rng, rng.uniformInt(2)));
        }
    }
    Topology t(2);
    t.addEdge(0, 1);
    for (const GateSet &gs :
         {GateSet::ibm(), GateSet::rigetti(), GateSet::umd()}) {
        TranslateOptions fused{true}, naive{false};
        TranslateResult f = translateForDevice(safe, t, gs, fused);
        TranslateResult n = translateForDevice(safe, t, gs, naive);
        EXPECT_LE(f.stats.pulses1q, n.stats.pulses1q) << gs.describe();
        EXPECT_TRUE(sameUnitary(f.circuit, n.circuit))
            << gs.describe();
    }
}

INSTANTIATE_TEST_SUITE_P(RandomRuns, FusionProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{40}));

TEST(TranslateStatsTest, VirtualZMaximized)
{
    // A pure-Z run must emit zero pulses, only virtual rotations.
    Circuit c(1);
    c.add(Gate::t(0));
    c.add(Gate::s(0));
    c.add(Gate::rz(0, 0.3));
    c.add(Gate::z(0));
    Topology t(1);
    for (const GateSet &gs :
         {GateSet::ibm(), GateSet::rigetti(), GateSet::umd()}) {
        TranslateOptions opts;
        TranslateResult res = translateForDevice(c, t, gs, opts);
        EXPECT_EQ(res.stats.pulses1q, 0) << gs.describe();
        EXPECT_LE(res.stats.virtualZ, 1) << gs.describe();
        EXPECT_TRUE(sameUnitary(res.circuit, c)) << gs.describe();
    }
}

TEST(TranslateStatsTest, IdentityRunVanishes)
{
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::h(0));
    c.add(Gate::x(0));
    c.add(Gate::x(0));
    Topology t(1);
    TranslateOptions opts;
    TranslateResult res =
        translateForDevice(c, t, GateSet::umd(), opts);
    EXPECT_EQ(res.circuit.numGates(), 0);
}

} // namespace
} // namespace triq
