/**
 * @file
 * Gate-fusion and fault-pattern-dedup tests: fused replay must match
 * the gate-by-gate path to 1e-12 on random circuits over the full
 * fast-path gate set, partial-range application must fall back
 * correctly at fused-op boundaries, and dedup must reproduce the
 * per-trial engine's histograms bit for bit at any thread count.
 */

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/compiler.hh"
#include "core/unitary.hh"
#include "device/machines.hh"
#include "sim/executor.hh"
#include "sim/fusion.hh"
#include "sim/statevector.hh"
#include "workloads/benchmarks.hh"

namespace triq
{
namespace
{

/**
 * A random circuit over every gate kind the simulator fast-paths,
 * weighted toward the diagonal and 1Q gates fusion targets.
 */
Circuit
randomCircuit(int num_qubits, int num_gates, uint64_t seed)
{
    Rng rng(seed);
    Circuit c(num_qubits, "random");
    auto q = [&] { return rng.uniformInt(num_qubits); };
    auto pair = [&](int &a, int &b) {
        a = q();
        do {
            b = q();
        } while (b == a);
    };
    for (int i = 0; i < num_gates; ++i) {
        int a, b;
        switch (rng.uniformInt(17)) {
          case 0:
            c.add(Gate::i(q()));
            break;
          case 1:
            c.add(Gate::x(q()));
            break;
          case 2:
            c.add(Gate::y(q()));
            break;
          case 3:
            c.add(Gate::z(q()));
            break;
          case 4:
            c.add(Gate::h(q()));
            break;
          case 5:
            c.add(Gate::s(q()));
            break;
          case 6:
            c.add(Gate::sdg(q()));
            break;
          case 7:
            c.add(Gate::t(q()));
            break;
          case 8:
            c.add(Gate::tdg(q()));
            break;
          case 9:
            c.add(Gate::rz(q(), rng.uniform(-kPi, kPi)));
            break;
          case 10:
            c.add(Gate::u1(q(), rng.uniform(-kPi, kPi)));
            break;
          case 11:
            c.add(Gate::u3(q(), rng.uniform(0, kPi),
                           rng.uniform(-kPi, kPi),
                           rng.uniform(-kPi, kPi)));
            break;
          case 12:
            pair(a, b);
            c.add(Gate::cnot(a, b));
            break;
          case 13:
            pair(a, b);
            c.add(Gate::cz(a, b));
            break;
          case 14:
            pair(a, b);
            c.add(Gate::cphase(a, b, rng.uniform(-kPi, kPi)));
            break;
          case 15:
            pair(a, b);
            c.add(Gate::swap(a, b));
            break;
          default:
            pair(a, b);
            c.add(Gate::xx(a, b, rng.uniform(-kPi, kPi)));
            break;
        }
    }
    return c;
}

/** Largest per-amplitude deviation between two states. */
double
maxAmpDelta(const StateVector &a, const StateVector &b)
{
    double worst = 0.0;
    for (uint64_t i = 0; i < a.dim(); ++i)
        worst = std::max(worst,
                         std::abs(a.amplitude(i) - b.amplitude(i)));
    return worst;
}

TEST(Fusion, FusedMatchesUnfusedOnRandomCircuits)
{
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        Circuit c = randomCircuit(5, 120, seed);
        StateVector plain(5);
        plain.applyCircuit(c);
        FusedProgram fused(c);
        StateVector sv(5);
        fused.applyAll(sv);
        EXPECT_LE(maxAmpDelta(sv, plain), 1e-12)
            << "seed " << seed << " diverged";
        // The pass must actually fuse something on circuits this dense.
        EXPECT_GT(fused.stats().fusedGates, 0) << "seed " << seed;
        EXPECT_LT(fused.stats().ops, fused.stats().gates)
            << "seed " << seed;
        EXPECT_LT(fused.stats().modeledCostRatio, 1.0)
            << "seed " << seed;
    }
}

TEST(Fusion, PartialRangesFallBackToOriginalGates)
{
    // Splitting the replay at every possible gate boundary must agree
    // with the uninterrupted gate-by-gate evolution, even when the
    // split lands inside a fused operator.
    Circuit c = randomCircuit(4, 60, 42);
    FusedProgram fused(c);
    ASSERT_GT(fused.stats().fusedGates, 0);
    StateVector plain(4);
    plain.applyCircuit(c);
    for (int split = 0; split <= c.numGates(); ++split) {
        StateVector sv(4);
        fused.apply(sv, 0, split);
        fused.apply(sv, split, c.numGates());
        EXPECT_LE(maxAmpDelta(sv, plain), 1e-12)
            << "split at gate " << split;
    }
}

TEST(Fusion, DiagonalRunsCollapse)
{
    Circuit c(3);
    c.add(Gate::t(0));
    c.add(Gate::rz(1, 0.7));
    c.add(Gate::cz(0, 1));
    c.add(Gate::cphase(1, 2, 0.3));
    c.add(Gate::s(2));
    FusedProgram fused(c);
    EXPECT_EQ(fused.stats().diagonal, 1);
    EXPECT_EQ(fused.stats().fusedGates, 5);
    StateVector plain(3), sv(3);
    // Start from a superposition so every phase is observable.
    for (int q = 0; q < 3; ++q)
        plain.applyGate(Gate::h(q));
    plain.applyCircuit(c);
    for (int q = 0; q < 3; ++q)
        sv.applyGate(Gate::h(q));
    fused.applyAll(sv);
    EXPECT_LE(maxAmpDelta(sv, plain), 1e-12);
}

TEST(Fusion, SameQubitRunsMergeToOneKernel)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::rz(0, 0.4));
    c.add(Gate::h(0));
    c.add(Gate::u3(0, 0.3, 0.2, 0.1));
    FusedProgram fused(c);
    EXPECT_EQ(fused.stats().dense1, 1);
    EXPECT_EQ(fused.stats().fusedGates, 4);
    StateVector plain(2), sv(2);
    plain.applyCircuit(c);
    fused.applyAll(sv);
    EXPECT_LE(maxAmpDelta(sv, plain), 1e-12);
}

TEST(Fusion, FusedKernelsMatchMatrixPath)
{
    // The blocked kernels themselves are exact: applying a gate's
    // matrix through applyFused{1,2,3}/applyDiagonal must equal the
    // established applyMatrix path bit for bit is too strict across
    // compilers, so we require <= 1e-15 per amplitude.
    Rng rng(7);
    StateVector a(3), b(3);
    for (int q = 0; q < 3; ++q) {
        a.applyGate(Gate::h(q));
        b.applyGate(Gate::h(q));
    }
    Gate u = Gate::u3(1, 0.3, 1.1, -0.6);
    Matrix m1 = gateMatrix(u);
    Cplx f1[4] = {m1(0, 0), m1(0, 1), m1(1, 0), m1(1, 1)};
    a.applyMatrix1(m1, 1);
    b.applyFused1(f1, 1);
    EXPECT_LE(maxAmpDelta(a, b), 1e-15);

    Matrix m2 = gateMatrix(Gate::xx(0, 2, 0.9));
    Cplx f2[16];
    for (int r = 0; r < 4; ++r)
        for (int col = 0; col < 4; ++col)
            f2[r * 4 + col] = m2(r, col);
    a.applyMatrix2(m2, 0, 2);
    b.applyFused2(f2, 0, 2);
    EXPECT_LE(maxAmpDelta(a, b), 1e-15);

    // diag over (q0, q2): bit 0 carries S's phase i, bit 1 Z's -1.
    int qs[2] = {0, 2};
    Cplx full[4] = {Cplx(1, 0), Cplx(0, 1), Cplx(-1, 0), Cplx(0, -1)};
    a.applyGate(Gate::s(0));
    a.applyGate(Gate::z(2));
    b.applyDiagonal(full, qs, 2);
    EXPECT_LE(maxAmpDelta(a, b), 1e-12);
}

TEST(Fusion, EnvDefaultToggles)
{
    unsetenv("TRIQ_SIM_FUSION");
    EXPECT_TRUE(defaultSimFusion());
    setenv("TRIQ_SIM_FUSION", "0", 1);
    EXPECT_FALSE(defaultSimFusion());
    setenv("TRIQ_SIM_FUSION", "1", 1);
    EXPECT_TRUE(defaultSimFusion());
    unsetenv("TRIQ_SIM_FUSION");

    unsetenv("TRIQ_SIM_DEDUP");
    EXPECT_TRUE(defaultSimDedup());
    setenv("TRIQ_SIM_DEDUP", "0", 1);
    EXPECT_FALSE(defaultSimDedup());
    unsetenv("TRIQ_SIM_DEDUP");
}

/** Compile one benchmark for IBMQ5 and return its hardware circuit. */
CompileResult
compiledPeres(const Device &dev, const Calibration &c)
{
    Circuit program = makeBenchmark("Peres");
    CompileOptions opts;
    return compileForDevice(program, dev, c, opts);
}

TEST(Dedup, BitIdenticalToPerTrialEngine)
{
    // With fusion pinned off both engines replay the identical gate
    // sequence, so dedup on vs. off must agree bit for bit: same
    // histogram, same success rate, for any thread count.
    Device dev = makeIbmQ5();
    Calibration c = dev.calibrate(2);
    CompileResult res = compiledPeres(dev, c);
    ExecOptions base;
    base.threads = 1;
    base.fusion = -1;
    base.dedup = -1;
    ExecutionResult a = executeNoisy(res.hwCircuit, dev, c, 2000, 99, base);
    EXPECT_GT(a.simulatedTrajectories, 0);
    for (int threads : {1, 2, 8}) {
        ExecOptions d;
        d.threads = threads;
        d.fusion = -1;
        d.dedup = 1;
        ExecutionResult b =
            executeNoisy(res.hwCircuit, dev, c, 2000, 99, d);
        EXPECT_DOUBLE_EQ(b.successRate, a.successRate);
        EXPECT_EQ(b.histogram, a.histogram);
        EXPECT_EQ(b.correctOutcome, a.correctOutcome);
        // Dedup simulates each distinct pattern once — never more
        // trajectories than the per-trial engine's faulty-trial count.
        EXPECT_LE(b.simulatedTrajectories, a.simulatedTrajectories);
        EXPECT_GT(b.simulatedTrajectories, 0);
    }
}

TEST(Dedup, FusionPlusDedupMatchesBaselineHistogram)
{
    // Fusion reassociates floating point, so this equality is the
    // empirical acceptance guarantee (a uniform draw would have to
    // land within ~1e-13 of a cumulative-probability boundary to
    // flip), not an algebraic one.
    Device dev = makeIbmQ5();
    Calibration c = dev.calibrate(2);
    CompileResult res = compiledPeres(dev, c);
    ExecOptions base;
    base.threads = 1;
    base.fusion = -1;
    base.dedup = -1;
    ExecutionResult a = executeNoisy(res.hwCircuit, dev, c, 2000, 99, base);
    for (int threads : {1, 2, 8}) {
        ExecOptions d;
        d.threads = threads;
        d.fusion = 1;
        d.dedup = 1;
        ExecutionResult b =
            executeNoisy(res.hwCircuit, dev, c, 2000, 99, d);
        EXPECT_DOUBLE_EQ(b.successRate, a.successRate);
        EXPECT_EQ(b.histogram, a.histogram);
    }
}

TEST(Dedup, ZeroFaultCircuitSimulatesNothing)
{
    // Readout-only noise: every pattern is empty, so dedup samples all
    // trials from the cached ideal state without one trajectory.
    Topology t = Topology::line(2);
    NoiseSpec spec{0.0, 0.0, 0.05, 1e18, 0.0, 0.0, {0.1, 0.4, 3.0}};
    Device dev("Probe2", std::move(t), GateSet::rigetti(), spec);
    Calibration c = dev.averageCalibration();
    Circuit circ(2, "ro");
    circ.add(Gate::x(0));
    circ.add(Gate::measure(0));
    circ.add(Gate::measure(1));
    ExecOptions d;
    d.dedup = 1;
    ExecutionResult r = executeNoisy(circ, dev, c, 4000, 7, d);
    EXPECT_EQ(r.simulatedTrajectories, 0);
    ExecOptions off;
    off.dedup = -1;
    off.fusion = -1;
    ExecutionResult base = executeNoisy(circ, dev, c, 4000, 7, off);
    EXPECT_EQ(r.histogram, base.histogram);
    EXPECT_DOUBLE_EQ(r.successRate, base.successRate);
}

} // namespace
} // namespace triq
