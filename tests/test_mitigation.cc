/**
 * @file
 * Tests for readout mitigation and the crosstalk-serialization pass.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/compiler.hh"
#include "core/serialize.hh"
#include "core/unitary.hh"
#include "device/machines.hh"
#include "sim/executor.hh"
#include "sim/mitigation.hh"
#include "sim/noise.hh"
#include "workloads/benchmarks.hh"

namespace triq
{
namespace
{

TEST(Mitigation, ExactInversionOfPureReadoutNoise)
{
    // Analytic case: true state |1>, flip probability e. Observed
    // distribution {0: e, 1: 1-e}; mitigation must return {0, 1}.
    const double e = 0.2;
    std::unordered_map<uint64_t, int> hist;
    hist[0] = 2000; // 0.2 of 10000
    hist[1] = 8000;
    std::vector<double> p = mitigateReadoutHistogram(hist, {e});
    EXPECT_NEAR(p[0], 0.0, 1e-12);
    EXPECT_NEAR(p[1], 1.0, 1e-12);
}

TEST(Mitigation, TwoBitFactorizedInversion)
{
    // True outcome 0b10 observed through flips (e0, e1); build the
    // exact observed distribution and invert it.
    const double e0 = 0.1, e1 = 0.25;
    std::unordered_map<uint64_t, int> hist;
    const int n = 1000000;
    // P(observed b0 b1) for true (0, 1).
    hist[0b00] = static_cast<int>(n * (1 - e0) * e1);
    hist[0b01] = static_cast<int>(n * e0 * e1);
    hist[0b10] = static_cast<int>(n * (1 - e0) * (1 - e1));
    hist[0b11] = static_cast<int>(n * e0 * (1 - e1));
    std::vector<double> p = mitigateReadoutHistogram(hist, {e0, e1});
    EXPECT_NEAR(p[0b10], 1.0, 1e-4);
    EXPECT_NEAR(p[0b00] + p[0b01] + p[0b11], 0.0, 1e-4);
}

TEST(Mitigation, RecoversExecutorReadoutLoss)
{
    // Readout-only noise: mitigation should restore success to ~1.
    Topology t = Topology::line(3);
    NoiseSpec spec{0.0, 0.0, 0.12, 1e18, 0.0, 0.0, {0.1, 0.4, 3.0}};
    Device dev("RoOnly", std::move(t), GateSet::rigetti(), spec);
    Calibration calib = dev.averageCalibration();
    Circuit circ(3, "ro");
    circ.add(Gate::x(0));
    circ.add(Gate::x(2));
    for (int q = 0; q < 3; ++q)
        circ.add(Gate::measure(q));
    ExecutionResult run = executeNoisy(circ, dev, calib, 60000, 9);
    EXPECT_LT(run.successRate, 0.75);
    std::vector<double> ro = measuredReadoutErrors(circ, calib);
    double fixed =
        mitigatedSuccess(run.histogram, ro, run.correctOutcome);
    EXPECT_NEAR(fixed, 1.0, 0.02);
}

TEST(Mitigation, Validation)
{
    std::unordered_map<uint64_t, int> hist{{0, 10}};
    EXPECT_THROW(mitigateReadoutHistogram(hist, {0.6}), FatalError);
    EXPECT_THROW(mitigateReadoutHistogram({}, {0.1}), FatalError);
    std::unordered_map<uint64_t, int> wide{{4, 1}};
    EXPECT_THROW(mitigateReadoutHistogram(wide, {0.1, 0.1}),
                 FatalError);
}

TEST(Serialize, InsertsBarrierBetweenAdjacentParallel2q)
{
    Topology t = Topology::line(4);
    Circuit c(4);
    c.add(Gate::cz(0, 1));
    c.add(Gate::cz(2, 3)); // Adjacent via (1,2): must be fenced.
    Circuit out = serializeAdjacentTwoQ(c, t);
    EXPECT_EQ(out.countIf([](const Gate &g) {
        return g.kind == GateKind::Barrier;
    }), 1);
    EXPECT_TRUE(sameUnitary(out, c));
}

TEST(Serialize, LeavesDistantParallel2qAlone)
{
    Topology t = Topology::line(5);
    Circuit c(5);
    c.add(Gate::cz(0, 1));
    c.add(Gate::cz(3, 4)); // Separated by qubit 2: fine in parallel.
    Circuit out = serializeAdjacentTwoQ(c, t);
    EXPECT_EQ(out.countIf([](const Gate &g) {
        return g.kind == GateKind::Barrier;
    }), 0);
}

TEST(Serialize, EliminatesCrosstalkSites)
{
    // After serialization, no error site may carry an inflated
    // probability.
    Topology t = Topology::grid(2, 3);
    NoiseSpec spec{0.0, 0.05, 0.0, 1e18, 0.0, 0.0, {0.1, 0.4, 3.0}};
    spec.crosstalkFactor = 1.0;
    Device dev("Xt", std::move(t), GateSet::rigetti(), spec);
    Calibration calib = dev.averageCalibration();
    Circuit c(6);
    c.add(Gate::cz(0, 1));
    c.add(Gate::cz(3, 4));
    c.add(Gate::cz(2, 5));
    Circuit serialized = serializeAdjacentTwoQ(c, dev.topology());
    auto sites = collectErrorSites(serialized, dev.topology(), calib);
    for (const auto &s : sites)
        EXPECT_NEAR(s.prob, 0.05, 1e-12);
    // The unserialized version does have inflated sites.
    auto raw = collectErrorSites(c, dev.topology(), calib);
    bool inflated = false;
    for (const auto &s : raw)
        inflated = inflated || s.prob > 0.05 + 1e-12;
    EXPECT_TRUE(inflated);
}

TEST(Serialize, PreservesSemanticsOnCompiledBenchmark)
{
    Device dev = makeIbmQ14();
    Calibration calib = dev.calibrate(1);
    CompileOptions opts;
    opts.emitAssembly = false;
    CompileResult res =
        compileForDevice(makeBenchmark("HS6"), dev, calib, opts);
    Circuit serialized =
        serializeAdjacentTwoQ(res.hwCircuit, dev.topology());
    EXPECT_GE(serialized.numGates(), res.hwCircuit.numGates());
    EXPECT_EQ(serialized.count2q(), res.hwCircuit.count2q());
    EXPECT_EQ(serialized.measuredQubits(),
              res.hwCircuit.measuredQubits());
}

} // namespace
} // namespace triq
