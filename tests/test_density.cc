/**
 * @file
 * Density-matrix simulator tests: pure-state agreement with the
 * state-vector simulator, channel algebra (trace preservation,
 * dephasing semantics), and the headline cross-validation — the
 * Monte-Carlo executor's success rate converges to the exact value.
 */

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/compiler.hh"
#include "device/machines.hh"
#include "sim/density.hh"
#include "sim/executor.hh"
#include "workloads/benchmarks.hh"

namespace triq
{
namespace
{

TEST(Density, PureStateMatchesStateVector)
{
    Circuit c(3);
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    c.add(Gate::u3(2, 0.7, 0.3, -0.4));
    c.add(Gate::xx(1, 2, kPi / 4));
    DensityMatrix rho(3);
    rho.applyCircuit(c);
    StateVector sv(3);
    sv.applyCircuit(c);
    for (uint64_t b = 0; b < 8; ++b)
        EXPECT_NEAR(rho.probability(b), sv.probability(b), 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(Density, ChannelsPreserveTrace)
{
    DensityMatrix rho(2);
    rho.applyGate(Gate::h(0));
    rho.applyGate(Gate::cnot(0, 1));
    rho.applyPauliChannel1(0, 0.3);
    rho.applyPauliChannel2(0, 1, 0.2);
    rho.applyDephasing(1, 0.4);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(Density, FullDepolarizing1qOnPlusState)
{
    // |+> under the uniform Pauli channel with p: X leaves |+>, Y and Z
    // map it to |->; coherence scales by (1 - 4p/3).
    const double p = 0.3;
    DensityMatrix rho(1);
    rho.applyGate(Gate::h(0));
    rho.applyPauliChannel1(0, p);
    // Probability of measuring |0> stays 1/2 by symmetry...
    EXPECT_NEAR(rho.probability(0), 0.5, 1e-12);
    // ...but a second H reveals the lost coherence.
    rho.applyGate(Gate::h(0));
    double expected = 0.5 * (1.0 + (1.0 - 4.0 * p / 3.0));
    EXPECT_NEAR(rho.probability(0), expected, 1e-12);
}

TEST(Density, DephasingKillsOffDiagonals)
{
    // Full dephasing (p = 1/2 of Z) destroys |+><+| coherence entirely:
    // rho' = (rho + Z rho Z)/2.
    DensityMatrix rho(1);
    rho.applyGate(Gate::h(0));
    rho.applyDephasing(0, 0.5);
    rho.applyGate(Gate::h(0));
    EXPECT_NEAR(rho.probability(0), 0.5, 1e-12);
    EXPECT_NEAR(rho.probability(1), 0.5, 1e-12);
}

TEST(Density, MeasurementDistributionMarginal)
{
    DensityMatrix rho(2);
    rho.applyGate(Gate::h(0));
    rho.applyGate(Gate::cnot(0, 1));
    std::vector<double> d0 = rho.measurementDistribution({0});
    EXPECT_NEAR(d0[0], 0.5, 1e-12);
    EXPECT_NEAR(d0[1], 0.5, 1e-12);
    std::vector<double> dall = rho.measurementDistribution({0, 1});
    EXPECT_NEAR(dall[0], 0.5, 1e-12);
    EXPECT_NEAR(dall[3], 0.5, 1e-12);
    EXPECT_NEAR(dall[1] + dall[2], 0.0, 1e-12);
}

TEST(Density, SizeLimits)
{
    EXPECT_THROW(DensityMatrix(0), FatalError);
    EXPECT_THROW(DensityMatrix(DensityMatrix::maxQubits() + 1),
                 FatalError);
    DensityMatrix rho(2);
    EXPECT_THROW(rho.applyGate(Gate::ccx(0, 1, 1)), FatalError);
}

class ExecutorConvergence
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ExecutorConvergence, MonteCarloMatchesExact)
{
    // The headline cross-validation: run the full compile pipeline,
    // compute the exact noise-averaged success probability, and check
    // the sampling executor lands within Monte-Carlo error.
    Device dev = makeIbmQ5();
    Calibration calib = dev.calibrate(4);
    Circuit program = makeBenchmark(GetParam());
    CompileOptions opts;
    opts.emitAssembly = false;
    CompileResult res = compileForDevice(program, dev, calib, opts);

    double exact = exactSuccessProbability(res.hwCircuit, dev, calib);
    const int trials = 20000;
    ExecutionResult mc =
        executeNoisy(res.hwCircuit, dev, calib, trials, 2026);
    double sigma = std::sqrt(exact * (1.0 - exact) / trials);
    EXPECT_NEAR(mc.successRate, exact, 5.0 * sigma + 1e-6)
        << "exact=" << exact << " mc=" << mc.successRate;
    // ESP never exceeds the exact success probability by much: ESP
    // counts every fault as fatal.
    EXPECT_LT(mc.esp, exact + 0.02);
}

INSTANTIATE_TEST_SUITE_P(SmallBenchmarks, ExecutorConvergence,
                         ::testing::Values("BV4", "HS4", "Toffoli",
                                           "Peres", "Adder"));

TEST(Density, EspOrderingPredictsExactSuccessOrdering)
{
    // The toolflow's central modeling assumption (Sec. 4.2): the
    // reliability-product estimate ranks configurations the same way
    // the real (here: exact noise-averaged) success probability does.
    // Check rank agreement across benchmarks and calibration days.
    Device dev = makeIbmQ5();
    std::vector<std::pair<double, double>> points; // (esp, exact)
    for (int day : {1, 2, 3}) {
        Calibration calib = dev.calibrate(day);
        for (const char *name :
             {"BV4", "HS2", "HS4", "Toffoli", "Peres", "Adder"}) {
            CompileOptions opts;
            opts.emitAssembly = false;
            CompileResult res = compileForDevice(makeBenchmark(name),
                                                 dev, calib, opts);
            double exact =
                exactSuccessProbability(res.hwCircuit, dev, calib);
            ExecutionResult quick =
                executeNoisy(res.hwCircuit, dev, calib, 50, 1);
            points.push_back({quick.esp, exact});
        }
    }
    // Concordant pair fraction (Kendall-style) must be high.
    int concordant = 0, total = 0;
    for (size_t i = 0; i < points.size(); ++i)
        for (size_t j = i + 1; j < points.size(); ++j) {
            double d_esp = points[i].first - points[j].first;
            double d_exact = points[i].second - points[j].second;
            if (std::abs(d_esp) < 1e-3 || std::abs(d_exact) < 1e-3)
                continue; // Ties carry no ranking signal.
            ++total;
            concordant += (d_esp > 0) == (d_exact > 0);
        }
    ASSERT_GT(total, 40);
    EXPECT_GT(static_cast<double>(concordant) / total, 0.85)
        << concordant << "/" << total;
}

TEST(Density, KernelThreadingBitIdentical)
{
    // Channel mixing is plain amplitude arithmetic over gate-kernel
    // outputs, and the kernels are bit-identical for any thread
    // setting, so every probability must match EXACTLY (EXPECT_EQ on
    // doubles) between serial and forced-threaded kernels.
    Circuit c(4);
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    c.add(Gate::u3(2, 0.7, 0.3, -0.4));
    c.add(Gate::xx(1, 2, kPi / 4));
    c.add(Gate::cnot(2, 3));
    auto run = [&](int setting) {
        DensityMatrix rho(4);
        rho.setKernelThreads(setting);
        rho.applyCircuit(c);
        rho.applyPauliChannel1(0, 0.25);
        rho.applyPauliChannel2(1, 2, 0.1);
        rho.applyDephasing(3, 0.4);
        return rho.measurementDistribution({0, 1, 2, 3});
    };
    const std::vector<double> serial = run(1);
    for (int setting : {2, 7, 0})
        EXPECT_EQ(run(setting), serial) << "setting " << setting;
}

TEST(Density, ExactSuccessKernelThreadingBitIdentical)
{
    // exactSuccessProbability honors TRIQ_KERNEL_THREADS; the exact
    // value must not depend on it, down to the last bit.
    Device dev = makeIbmQ5();
    Calibration calib = dev.calibrate(3);
    CompileOptions opts;
    opts.emitAssembly = false;
    CompileResult res =
        compileForDevice(makeBenchmark("Peres"), dev, calib, opts);
    unsetenv("TRIQ_KERNEL_THREADS");
    const double serial = exactSuccessProbability(res.hwCircuit, dev, calib);
    for (const char *setting : {"2", "7", "0"}) {
        setenv("TRIQ_KERNEL_THREADS", setting, 1);
        EXPECT_EQ(exactSuccessProbability(res.hwCircuit, dev, calib),
                  serial)
            << "TRIQ_KERNEL_THREADS=" << setting;
    }
    unsetenv("TRIQ_KERNEL_THREADS");
}

TEST(Density, CapInheritsRaisedStateVectorCeiling)
{
    // The 30-qubit state-vector ceiling vectorizes to 15 density
    // qubits. The cap is a representation bound; admission still
    // decides what actually runs (see sim_cost).
    EXPECT_EQ(StateVector::maxQubits(), 30);
    EXPECT_EQ(DensityMatrix::maxQubits(), 15);
}

TEST(Density, ExactSuccessPerfectCalibrationIsOne)
{
    Device dev = makeUmdTi();
    Calibration zero = dev.averageCalibration();
    std::fill(zero.err1q.begin(), zero.err1q.end(), 0.0);
    std::fill(zero.err2q.begin(), zero.err2q.end(), 0.0);
    std::fill(zero.errRO.begin(), zero.errRO.end(), 0.0);
    std::fill(zero.t2Us.begin(), zero.t2Us.end(), 1e18);
    CompileOptions opts;
    opts.emitAssembly = false;
    CompileResult res =
        compileForDevice(makeBenchmark("Toffoli"), dev, zero, opts);
    EXPECT_NEAR(exactSuccessProbability(res.hwCircuit, dev, zero), 1.0,
                1e-9);
}

} // namespace
} // namespace triq
