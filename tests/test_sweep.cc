/**
 * @file
 * Compile-cache and sweep-engine tests: fingerprint sensitivity, the
 * cache-hit determinism contract (a hit is byte-identical to a cold
 * compile), drift-threshold boundary behavior, budget/cache exclusion,
 * eviction, runSweep grid semantics, and thread-safety of concurrent
 * sweep workers (this suite carries the "sweep" ctest label so
 * sanitizer builds can target it).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "core/decompose.hh"
#include "core/esp.hh"
#include "core/fingerprint.hh"
#include "device/machines.hh"
#include "service/sweep.hh"
#include "service/sweep_journal.hh"
#include "service/sweep_matrix.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

namespace
{

CompileOptions
baseOptions(OptLevel level)
{
    CompileOptions opts;
    opts.level = level;
    opts.emitAssembly = false;
    return opts;
}

CompileFingerprint
fingerprintOf(const Circuit &program, const Device &dev, int day,
              OptLevel level)
{
    Circuit lowered =
        decomposeToCnotBasis(program, dev.gateSet().nativeCphase);
    return fingerprintCompile(lowered, dev, dev.calibrate(day),
                              baseOptions(level));
}

} // namespace

// --- fingerprints --------------------------------------------------------

TEST(Fingerprint, SensitiveToEveryInputComponent)
{
    Device q5 = makeIbmQ5();
    Device q14 = makeIbmQ14();
    Circuit bv = makeBenchmark("BV4");
    Circuit toff = makeBenchmark("Toffoli");

    CompileFingerprint base =
        fingerprintOf(bv, q5, 0, OptLevel::OneQOptCN);

    // Program changes the key.
    EXPECT_FALSE(base ==
                 fingerprintOf(toff, q5, 0, OptLevel::OneQOptCN));
    // Device changes the key.
    EXPECT_FALSE(base ==
                 fingerprintOf(bv, q14, 0, OptLevel::OneQOptCN));
    // Calibration day changes a noise-aware key.
    EXPECT_FALSE(base == fingerprintOf(bv, q5, 1, OptLevel::OneQOptCN));
    // Options change the key.
    EXPECT_FALSE(base == fingerprintOf(bv, q5, 0, OptLevel::OneQOptC));
    // Same inputs reproduce the key exactly.
    EXPECT_TRUE(base == fingerprintOf(bv, q5, 0, OptLevel::OneQOptCN));
}

TEST(Fingerprint, CircuitNameIsNotContent)
{
    Circuit a = makeBenchmark("BV4");
    Circuit b = a;
    b.setName("renamed");
    EXPECT_EQ(circuitFingerprint(a), circuitFingerprint(b));
}

TEST(Fingerprint, BudgetIsExcludedFromOptions)
{
    CompileOptions plain = baseOptions(OptLevel::OneQOptCN);
    CompileOptions budgeted = plain;
    budgeted.budget = CompileBudget::withDeadlineMs(1.0);
    EXPECT_EQ(compileOptionsFingerprint(plain),
              compileOptionsFingerprint(budgeted));
}

TEST(Fingerprint, NonCnLevelsShareCleanCalibrationDays)
{
    // The synthesized feeds are clean (no sanitize repairs), and the
    // C level maps against the device average — so two days produce
    // the same key for C but different keys for CN.
    Device dev = makeIbmQ14();
    Circuit bv = makeBenchmark("BV4");
    EXPECT_TRUE(fingerprintOf(bv, dev, 0, OptLevel::OneQOptC) ==
                fingerprintOf(bv, dev, 5, OptLevel::OneQOptC));
    EXPECT_FALSE(fingerprintOf(bv, dev, 0, OptLevel::OneQOptCN) ==
                 fingerprintOf(bv, dev, 5, OptLevel::OneQOptCN));
}

TEST(Fingerprint, StructuralTwinsDoNotShareStableKeys)
{
    // Aspen1 and Aspen3 share a topology and gate set; only their
    // calibration models differ. Their keys — including the
    // calibration-independent stableKey the drift path searches — must
    // still be distinct, or a sweep would silently reuse one machine's
    // mapping on the other.
    Device a1 = makeRigettiAspen1();
    Device a3 = makeRigettiAspen3();
    Circuit bv = makeBenchmark("BV4");
    CompileFingerprint f1 = fingerprintOf(bv, a1, 0, OptLevel::OneQOptCN);
    CompileFingerprint f3 = fingerprintOf(bv, a3, 0, OptLevel::OneQOptCN);
    EXPECT_NE(f1.device, f3.device);
    EXPECT_NE(f1.stableKey(), f3.stableKey());
}

// --- cache hits ----------------------------------------------------------

TEST(CompileCache, HitIsByteIdenticalToColdCompile)
{
    Device dev = makeIbmQ14();
    Circuit program = makeBenchmark("QFT");
    Calibration calib = dev.calibrate(2);
    CompileOptions opts = baseOptions(OptLevel::OneQOptCN);

    CompileCache cache;
    CachedCompile first = compileThroughCache(&cache, program, dev, 2,
                                              calib, opts);
    ASSERT_EQ(first.source, CellSource::Compiled);

    CachedCompile second = compileThroughCache(&cache, program, dev, 2,
                                               calib, opts);
    ASSERT_EQ(second.source, CellSource::CacheHit);
    EXPECT_EQ(second.result.get(), first.result.get());

    // The contract: the memoized artifact is the same bytes a cold
    // compile produces — routed circuit, maps, stats, assembly and
    // report (timings excluded).
    CompileResult cold = compileForDevice(program, dev, calib, opts);
    EXPECT_EQ(canonicalCompileResultText(*second.result),
              canonicalCompileResultText(cold));
    EXPECT_EQ(compileResultDigest(*second.result),
              compileResultDigest(cold));
}

TEST(CompileCache, BudgetedCompilesAreNeverInserted)
{
    Device dev = makeIbmQ5();
    Circuit program = makeBenchmark("BV4");
    Calibration calib = dev.calibrate(0);
    CompileOptions opts = baseOptions(OptLevel::OneQOptCN);
    opts.budget = CompileBudget::withDeadlineMs(60000.0);

    CompileCache cache;
    CachedCompile cc =
        compileThroughCache(&cache, program, dev, 0, calib, opts);
    EXPECT_EQ(cc.source, CellSource::Compiled);
    EXPECT_EQ(cache.size(), 0u);
    // The same cell again: still a cold compile, never a hit.
    cc = compileThroughCache(&cache, program, dev, 0, calib, opts);
    EXPECT_EQ(cc.source, CellSource::Compiled);
}

TEST(CompileCache, FifoEvictionRespectsCapacity)
{
    Device dev = makeIbmQ5();
    Calibration calib = dev.calibrate(0);
    CompileOptions opts = baseOptions(OptLevel::OneQOptCN);

    CompileCache cache(2);
    const char *names[] = {"BV4", "Toffoli", "Fredkin"};
    std::vector<CompileFingerprint> keys;
    for (const char *name : names) {
        Circuit program = makeBenchmark(name);
        CachedCompile cc =
            compileThroughCache(&cache, program, dev, 0, calib, opts);
        keys.push_back(cc.fingerprint);
    }
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1);
    EXPECT_FALSE(cache.find(keys[0]).has_value()); // oldest gone
    EXPECT_TRUE(cache.find(keys[1]).has_value());
    EXPECT_TRUE(cache.find(keys[2]).has_value());
}

// --- drift ---------------------------------------------------------------

TEST(CompileCache, DriftThresholdBoundaries)
{
    Device dev = makeIbmQ14();
    Circuit program = makeBenchmark("BV4");
    CompileOptions opts = baseOptions(OptLevel::OneQOptCN);
    Calibration day0 = dev.calibrate(0);

    CompileCache cache;
    CachedCompile first =
        compileThroughCache(&cache, program, dev, 0, day0, opts);
    ASSERT_EQ(first.source, CellSource::Compiled);

    // Find a later day where the day-0 artifact's predicted ESP
    // actually degrades, so the boundary is meaningful.
    int drift_day = -1;
    double esp_new = 0.0;
    for (int day = 1; day < 10; ++day) {
        esp_new = estimatedSuccessProbability(
            first.result->hwCircuit, dev.topology(),
            dev.calibrate(day));
        if (esp_new < first.espAtCompile) {
            drift_day = day;
            break;
        }
    }
    ASSERT_GT(drift_day, 0) << "no degrading day in the feed";
    Calibration dayN = dev.calibrate(drift_day);
    CompileFingerprint key = fingerprintOf(program, dev, drift_day,
                                           OptLevel::OneQOptCN);
    double degradation = 1.0 - esp_new / first.espAtCompile;

    // Just under the measured degradation: refuse (recompile).
    EXPECT_FALSE(cache
                     .findDriftTolerant(key, dev.topology(), dayN,
                                        degradation * 0.9)
                     .has_value());
    // Just over it: reuse.
    auto reused = cache.findDriftTolerant(key, dev.topology(), dayN,
                                          degradation * 1.1);
    ASSERT_TRUE(reused.has_value());
    EXPECT_EQ(reused->result.get(), first.result.get());
    // Negative threshold always refuses, even for zero drift.
    EXPECT_FALSE(cache
                     .findDriftTolerant(key, dev.topology(), day0, -1.0)
                     .has_value());
    // An *improved* day reuses at threshold zero.
    for (int day = 1; day < 10; ++day) {
        Calibration c = dev.calibrate(day);
        if (estimatedSuccessProbability(first.result->hwCircuit,
                                        dev.topology(), c) >=
            first.espAtCompile) {
            EXPECT_TRUE(cache
                            .findDriftTolerant(key, dev.topology(), c,
                                               0.0)
                            .has_value());
            break;
        }
    }
    EXPECT_GE(cache.stats().driftChecks, 3);
}

TEST(Sweep, DriftReplayRecompilesOnlyDegradedCells)
{
    // Two-day CN sweep with a generous threshold: day 0 compiles
    // everything; day 1 either reuses (within threshold) or recompiles
    // (past it), and the two outcomes partition day 1 exactly.
    SweepConfig cfg;
    for (const char *name : {"BV4", "Toffoli", "Fredkin", "Peres"})
        cfg.programs.push_back({name, makeBenchmark(name)});
    cfg.devices = {makeIbmQ5(), makeUmdTi()};
    cfg.days = {0, 1};
    cfg.levels = {OptLevel::OneQOptCN};
    cfg.options.emitAssembly = false;
    cfg.driftThreshold = 0.05;
    cfg.threads = 2;

    CompileCache cache;
    SweepResult res = runSweep(cfg, &cache);

    int day0_compiled = 0, day1_reused = 0, day1_compiled = 0;
    for (const SweepCell &cell : res.cells) {
        if (cell.day == 0) {
            EXPECT_EQ(cell.source, CellSource::Compiled);
            ++day0_compiled;
        } else if (cell.source == CellSource::DriftReuse) {
            // Reuse is honest: predicted ESP lost at most 5%.
            EXPECT_GE(cell.esp, cell.espAtCompile * 0.95);
            ++day1_reused;
        } else {
            EXPECT_EQ(cell.source, CellSource::Compiled);
            ++day1_compiled;
        }
    }
    EXPECT_EQ(day0_compiled, 8);
    EXPECT_EQ(day1_reused + day1_compiled, 8);
    EXPECT_EQ(res.stats.driftReuses, day1_reused);
    EXPECT_EQ(res.stats.compiles, day0_compiled + day1_compiled);
    CompileCache::Stats cs = cache.stats();
    EXPECT_EQ(cs.driftInvalidations, day1_compiled);
    EXPECT_EQ(cs.driftReuses, day1_reused);
}

// --- the engine ----------------------------------------------------------

TEST(Sweep, GridSemanticsAndStatsAreConsistent)
{
    SweepConfig cfg;
    cfg.programs.push_back({"BV8", makeBenchmark("BV8")}); // 9 qubits
    cfg.programs.push_back({"BV4", makeBenchmark("BV4")});
    cfg.devices = {makeIbmQ5(), makeIbmQ14()};
    cfg.days = {0, 1};
    cfg.levels = {OptLevel::OneQOptC, OptLevel::OneQOptCN};
    cfg.options.emitAssembly = false;
    cfg.threads = 2;

    CompileCache cache;
    SweepResult res = runSweep(cfg, &cache);

    // Grid order and size: programs x devices x days x levels.
    ASSERT_EQ(res.cells.size(), 2u * 2 * 2 * 2);
    // BV8 does not fit IBMQ5: those four cells are skipped.
    for (const SweepCell &cell : res.cells) {
        bool too_big = cell.programIndex == 0 && cell.deviceIndex == 0;
        EXPECT_EQ(cell.source == CellSource::Skipped, too_big);
        if (cell.source != CellSource::Skipped) {
            ASSERT_TRUE(cell.result != nullptr);
            EXPECT_GT(cell.esp, 0.0);
        }
    }
    EXPECT_EQ(res.stats.skipped, 4);
    EXPECT_EQ(res.stats.cells, 12);
    // Every evaluated cell is accounted for exactly once.
    EXPECT_EQ(res.stats.cells, res.stats.compiles +
                                   res.stats.cacheHits +
                                   res.stats.driftReuses);
    // Day-1 C cells share day-0's artifacts (clean feeds): 3 hits.
    EXPECT_EQ(res.stats.cacheHits, 3);
    EXPECT_EQ(res.stats.compiles, 9);
}

TEST(Sweep, ResultsAreIndependentOfThreadCountAndCacheUse)
{
    SweepConfig cfg;
    for (const char *name : {"BV4", "Toffoli", "QFT"})
        cfg.programs.push_back({name, makeBenchmark(name)});
    cfg.devices = {makeIbmQ5(), makeIbmQ14(), makeUmdTi()};
    cfg.days = {0, 1};
    cfg.levels = {OptLevel::OneQOptC, OptLevel::OneQOptCN};
    cfg.options.emitAssembly = false;

    // Cold serial without a cache is the reference.
    SweepConfig serial = cfg;
    serial.useCache = false;
    serial.threads = 1;
    SweepResult ref = runSweep(serial, nullptr);
    for (const SweepCell &cell : ref.cells) {
        if (cell.source != CellSource::Skipped) {
            EXPECT_EQ(cell.source, CellSource::Compiled);
        }
    }

    // Parallel + cached must produce byte-identical artifacts, cell
    // for cell, however many workers run.
    for (int threads : {1, 4, 8}) {
        SweepConfig par = cfg;
        par.threads = threads;
        CompileCache cache;
        SweepResult res = runSweep(par, &cache);
        ASSERT_EQ(res.cells.size(), ref.cells.size());
        for (size_t i = 0; i < res.cells.size(); ++i) {
            const SweepCell &a = ref.cells[i];
            const SweepCell &b = res.cells[i];
            EXPECT_EQ(a.source == CellSource::Skipped,
                      b.source == CellSource::Skipped);
            if (a.source == CellSource::Skipped)
                continue;
            EXPECT_EQ(canonicalCompileResultText(*a.result),
                      canonicalCompileResultText(*b.result))
                << "cell " << i << " at " << threads << " threads";
            EXPECT_DOUBLE_EQ(a.esp, b.esp);
        }
    }
}

TEST(Sweep, WarmSweepCompilesNothing)
{
    SweepConfig cfg;
    for (const char *name : {"BV4", "Toffoli"})
        cfg.programs.push_back({name, makeBenchmark(name)});
    cfg.devices = {makeIbmQ5()};
    cfg.days = {0, 1};
    cfg.levels = {OptLevel::OneQOptC, OptLevel::OneQOptCN};
    cfg.options.emitAssembly = false;
    cfg.threads = 2;

    CompileCache cache;
    SweepResult cold = runSweep(cfg, &cache);
    EXPECT_GT(cold.stats.compiles, 0);

    SweepResult warm = runSweep(cfg, &cache);
    EXPECT_EQ(warm.stats.compiles, 0);
    EXPECT_EQ(warm.stats.cacheHits, warm.stats.cells);
    for (size_t i = 0; i < warm.cells.size(); ++i) {
        if (warm.cells[i].source != CellSource::Skipped) {
            EXPECT_EQ(warm.cells[i].result.get(),
                      cold.cells[i].result.get());
        }
    }
}

TEST(Sweep, EmptyGridDimensionIsFatal)
{
    SweepConfig cfg;
    cfg.devices = {makeIbmQ5()};
    cfg.days = {0};
    cfg.levels = {OptLevel::OneQOptCN};
    EXPECT_THROW(runSweep(cfg, nullptr), FatalError);
}

// --- concurrency ---------------------------------------------------------

TEST(CompileCache, SurvivesConcurrentMixedAccess)
{
    // Hammer one cache from many workers mixing find / insert /
    // drift-lookup on a small key population. Run under
    // -DTRIQ_SANITIZE=ON this is the data-race check for the sweep
    // engine's shared-cache usage.
    Device dev = makeIbmQ5();
    Calibration day0 = dev.calibrate(0);
    Calibration day1 = dev.calibrate(1);
    CompileOptions opts = baseOptions(OptLevel::OneQOptCN);

    const char *names[] = {"BV4", "Toffoli", "Fredkin", "Or", "Peres"};
    std::vector<Circuit> programs;
    std::vector<CompileFingerprint> keys;
    std::vector<std::shared_ptr<const CompileResult>> results;
    for (const char *name : names) {
        Circuit p = makeBenchmark(name);
        Circuit lowered =
            decomposeToCnotBasis(p, dev.gateSet().nativeCphase);
        keys.push_back(fingerprintCompile(lowered, dev, day0, opts));
        results.push_back(std::make_shared<const CompileResult>(
            compileForDevice(p, dev, day0, opts, &lowered)));
        programs.push_back(std::move(p));
    }

    CompileCache cache;
    std::atomic<long> found{0};
    ThreadPool pool(8);
    parallelFor(pool, 64, [&](int i) {
        size_t k = static_cast<size_t>(i) % keys.size();
        switch (i % 4) {
          case 0:
            cache.insert(keys[k], results[k], 0.5, 0);
            break;
          case 1:
            if (cache.find(keys[k]))
                found.fetch_add(1);
            break;
          case 2: {
            CompileFingerprint day1_key = keys[k];
            day1_key.calibration = calibrationSignature(day1);
            cache.findDriftTolerant(day1_key, dev.topology(), day1,
                                    0.5);
            break;
          }
          default:
            cache.stats();
            cache.size();
            break;
        }
    });
    // Everything inserted is findable afterwards, unscathed.
    for (size_t k = 0; k < keys.size(); ++k) {
        auto e = cache.find(keys[k]);
        ASSERT_TRUE(e.has_value());
        EXPECT_EQ(e->result.get(), results[k].get());
    }
}

TEST(CompileCache, ConcurrentEvictionPressureKeepsInvariants)
{
    // A capacity-4 FIFO hammered by 8 workers inserting 80 distinct
    // keys: every counter identity must hold afterwards, nothing may be
    // lost or corrupted, and the map must never exceed its cap. This is
    // the worst case for the eviction bookkeeping (map_, order_ and
    // newestByStable_ churning together under contention); under
    // -DTRIQ_SANITIZE=ON it doubles as the race check.
    Device dev = makeIbmQ5();
    CompileOptions opts = baseOptions(OptLevel::OneQOptCN);

    const char *names[] = {"BV4", "Toffoli", "Fredkin", "Or", "Peres"};
    std::vector<CompileFingerprint> keys;
    std::vector<std::shared_ptr<const CompileResult>> results;
    for (const char *name : names) {
        Circuit p = makeBenchmark(name);
        Circuit lowered =
            decomposeToCnotBasis(p, dev.gateSet().nativeCphase);
        std::shared_ptr<const CompileResult> artifact =
            std::make_shared<const CompileResult>(
                compileForDevice(p, dev, dev.calibrate(0), opts,
                                 &lowered));
        // CN keys are calibration-sensitive, so 16 days x 5 programs
        // give 80 distinct keys that all share 5 artifacts.
        for (int day = 0; day < 16; ++day) {
            keys.push_back(fingerprintCompile(lowered, dev,
                                              dev.calibrate(day), opts));
            results.push_back(artifact);
        }
    }

    constexpr size_t kCapacity = 4;
    CompileCache cache(kCapacity);
    ThreadPool pool(8);
    parallelFor(pool, 400, [&](int i) {
        size_t k = static_cast<size_t>(i) % keys.size();
        switch (i % 3) {
          case 0:
            cache.insert(keys[k], results[k], 0.5, 0);
            break;
          case 1: {
            std::optional<CompileCache::Entry> e = cache.find(keys[k]);
            // A hit must hand back the exact artifact inserted under
            // that key — an eviction may lose the entry, never mangle
            // it into a neighbor's.
            if (e)
                EXPECT_EQ(e->result.get(), results[k].get());
            break;
          }
          default:
            cache.contains(keys[k]);
            break;
        }
    });

    CompileCache::Stats st = cache.stats();
    EXPECT_LE(cache.size(), kCapacity);
    EXPECT_EQ(st.inserts - st.evictions,
              static_cast<long>(cache.size()));
    EXPECT_EQ(st.lookups, st.hits + st.misses);
    EXPECT_GT(st.inserts, 0);
    EXPECT_GT(st.evictions, 0); // ~134 inserts through 4 slots must evict

    // Whatever survived is intact and findable.
    size_t survivors = 0;
    for (size_t k = 0; k < keys.size(); ++k) {
        std::optional<CompileCache::Entry> e = cache.find(keys[k]);
        if (!e)
            continue;
        ++survivors;
        EXPECT_EQ(e->result.get(), results[k].get());
    }
    EXPECT_EQ(survivors, cache.size());
}

TEST(CompileCache, ConcurrentBudgetedCompilesNeverInsert)
{
    // Budget-armed compiles are wall-clock dependent, so the cache must
    // refuse them even when many workers race through
    // compileThroughCache on the same cell — zero inserts, every call
    // a cold compile, no thread ever served another's deadline-shaped
    // artifact.
    Device dev = makeIbmQ5();
    Calibration calib = dev.calibrate(0);
    Circuit bv = makeBenchmark("BV4");
    CompileOptions opts = baseOptions(OptLevel::OneQOptCN);
    opts.budget = CompileBudget::withDeadlineMs(1e6); // armed, generous

    CompileCache cache;
    std::atomic<int> cold{0};
    ThreadPool pool(8);
    parallelFor(pool, 32, [&](int) {
        CachedCompile out =
            compileThroughCache(&cache, bv, dev, 0, calib, opts);
        ASSERT_TRUE(out.result);
        if (out.source == CellSource::Compiled)
            cold.fetch_add(1);
    });

    EXPECT_EQ(cold.load(), 32);
    EXPECT_EQ(cache.size(), 0u);
    CompileCache::Stats st = cache.stats();
    EXPECT_EQ(st.inserts, 0);
    EXPECT_EQ(st.hits, 0);
}

TEST(Sweep, ConcurrentSweepsShareOneCacheSafely)
{
    // Two full sweeps over the same grid run simultaneously against one
    // cache; both must come back complete and identical.
    SweepConfig cfg;
    for (const char *name : {"BV4", "Toffoli", "Fredkin"})
        cfg.programs.push_back({name, makeBenchmark(name)});
    cfg.devices = {makeIbmQ5(), makeUmdTi()};
    cfg.days = {0, 1};
    cfg.levels = {OptLevel::OneQOptCN};
    cfg.options.emitAssembly = false;
    cfg.threads = 2;

    CompileCache cache;
    SweepResult a, b;
    std::thread t1([&] { a = runSweep(cfg, &cache); });
    std::thread t2([&] { b = runSweep(cfg, &cache); });
    t1.join();
    t2.join();

    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (size_t i = 0; i < a.cells.size(); ++i) {
        ASSERT_TRUE(a.cells[i].result && b.cells[i].result);
        EXPECT_EQ(canonicalCompileResultText(*a.cells[i].result),
                  canonicalCompileResultText(*b.cells[i].result));
    }
}

// --- crash-safe journal + resume -----------------------------------------

namespace
{

namespace fs = std::filesystem;

/** Fresh scratch directory, removed on destruction. */
struct JournalDir
{
    fs::path path;

    JournalDir()
    {
        std::string tmpl =
            (fs::temp_directory_path() / "triq_journal_XXXXXX").string();
        char *made = mkdtemp(tmpl.data());
        if (!made)
            throw std::runtime_error("mkdtemp failed");
        path = made;
    }
    ~JournalDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

/** A grid with skips, cross-day cache hits and drift reuses. */
SweepConfig
journalConfig(const std::string &journal_path)
{
    SweepConfig cfg;
    cfg.programs.push_back({"BV8", makeBenchmark("BV8")}); // skips IBMQ5
    cfg.programs.push_back({"BV4", makeBenchmark("BV4")});
    cfg.programs.push_back({"Toffoli", makeBenchmark("Toffoli")});
    cfg.devices = {makeIbmQ5(), makeIbmQ14()};
    cfg.days = {0, 1, 2};
    cfg.levels = {OptLevel::OneQOptC, OptLevel::OneQOptCN};
    cfg.options.emitAssembly = false;
    cfg.driftThreshold = 0.05;
    cfg.threads = 2;
    cfg.journalPath = journal_path;
    return cfg;
}

/** The deterministic matrix a journaled run renders. */
std::string
matrixOf(const SweepConfig &cfg, const SweepResult &res)
{
    std::ostringstream os;
    writeSweepMatrix(os, cfg, res, nullptr, /*deterministic=*/true);
    return os.str();
}

/** Keep the first `lines` journal lines plus `extra_bytes` of the next
 *  (a torn tail, when extra_bytes > 0). */
void
truncateJournal(const fs::path &p, int lines, int extra_bytes)
{
    std::ifstream in(p, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::string keep, line;
    for (int i = 0; i < lines && std::getline(in, line); ++i)
        keep += line + "\n";
    if (extra_bytes > 0 && std::getline(in, line))
        keep += line.substr(
            0, std::min<size_t>(line.size() - 1,
                                static_cast<size_t>(extra_bytes)));
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << keep;
}

} // namespace

TEST(SweepJournal, RoundTripsCellsAndArtifacts)
{
    JournalDir dir;
    std::string jp = (dir.path / "cells.jsonl").string();
    SweepConfig cfg = journalConfig(jp);
    CompileCache cache;
    SweepResult res = runSweep(cfg, &cache);

    JournalData jd;
    ASSERT_TRUE(loadSweepJournal(jp, jd));
    EXPECT_EQ(jd.gridFingerprint, sweepGridFingerprint(cfg));
    // Every cell is journaled exactly once (last-wins dedup is a
    // no-op on a clean run).
    EXPECT_EQ(jd.cells.size(), res.cells.size());

    // Restored artifacts are bit-identical to the live ones.
    std::map<uint64_t, const JournalArtifact *> arts;
    for (const JournalArtifact &a : jd.artifacts)
        arts[a.fingerprint.combined()] = &a;
    int compared = 0;
    for (const SweepCell &cell : res.cells) {
        if (!cell.result || cell.source == CellSource::DriftReuse)
            continue;
        auto it = arts.find(cell.fingerprint.combined());
        ASSERT_NE(it, arts.end());
        const CompileResult &a = *it->second->result;
        const CompileResult &b = *cell.result;
        ASSERT_EQ(a.hwCircuit.numGates(), b.hwCircuit.numGates());
        for (int gi = 0; gi < a.hwCircuit.numGates(); ++gi) {
            const Gate &ga = a.hwCircuit.gate(gi);
            const Gate &gb = b.hwCircuit.gate(gi);
            ASSERT_EQ(ga.kind, gb.kind);
            ASSERT_EQ(ga.qubits, gb.qubits);
            for (int k = 0; k < 3; ++k)
                ASSERT_EQ(ga.params[k], gb.params[k])
                    << "gate parameter must round-trip bit-exactly";
        }
        ++compared;
    }
    EXPECT_GT(compared, 0);
}

TEST(SweepJournal, PrefixResumeRendersByteIdenticalMatrix)
{
    JournalDir dir;
    std::string jp = (dir.path / "cells.jsonl").string();
    SweepConfig cfg = journalConfig(jp);

    std::string full_matrix;
    long full_lines = 0;
    {
        CompileCache cache;
        SweepResult res = runSweep(cfg, &cache);
        full_matrix = matrixOf(cfg, res);
        std::ifstream in(jp);
        std::string l;
        while (std::getline(in, l))
            ++full_lines;
    }

    // Chop the journal at several points — including one mid-line torn
    // tail — and resume each time; the matrix must never change.
    for (int keep : {1, 5, static_cast<int>(full_lines) / 2,
                     static_cast<int>(full_lines) - 1}) {
        SCOPED_TRACE("keep=" + std::to_string(keep));
        JournalDir d2;
        std::string jp2 = (d2.path / "cells.jsonl").string();
        fs::copy_file(jp, jp2, fs::copy_options::overwrite_existing);
        truncateJournal(jp2, keep, keep % 2 ? 17 : 0);
        SweepConfig cfg2 = journalConfig(jp2);
        cfg2.resume = true;
        CompileCache cache;
        SweepResult res = runSweep(cfg2, &cache);
        EXPECT_EQ(matrixOf(cfg2, res), full_matrix);
        if (keep > 1) {
            EXPECT_GT(res.stats.restoredCells, 0);
        }
    }
}

TEST(SweepJournal, ResumedJournalIsItselfResumable)
{
    // Kill -> resume -> kill -> resume: the appended journal must stay
    // loadable and complete.
    JournalDir dir;
    std::string jp = (dir.path / "cells.jsonl").string();
    SweepConfig cfg = journalConfig(jp);
    std::string full_matrix;
    {
        CompileCache cache;
        full_matrix = matrixOf(cfg, runSweep(cfg, &cache));
    }
    truncateJournal(jp, 6, 0);
    SweepConfig cfg2 = journalConfig(jp);
    cfg2.resume = true;
    {
        CompileCache cache;
        runSweep(cfg2, &cache);
    }
    truncateJournal(jp, 20, 0);
    {
        CompileCache cache;
        SweepResult res = runSweep(cfg2, &cache);
        EXPECT_EQ(matrixOf(cfg2, res), full_matrix);
    }
}

TEST(SweepJournal, ResumeRefusesForeignGrid)
{
    JournalDir dir;
    std::string jp = (dir.path / "cells.jsonl").string();
    SweepConfig cfg = journalConfig(jp);
    {
        CompileCache cache;
        runSweep(cfg, &cache);
    }
    // A different drift threshold is a different grid.
    SweepConfig other = journalConfig(jp);
    other.driftThreshold = 0.25;
    other.resume = true;
    CompileCache cache;
    EXPECT_THROW(runSweep(other, &cache), FatalError);
}

TEST(SweepJournal, MissingJournalResumesFresh)
{
    JournalDir dir;
    std::string jp = (dir.path / "absent.jsonl").string();
    SweepConfig cfg = journalConfig(jp);
    cfg.resume = true;
    CompileCache cache;
    SweepResult res = runSweep(cfg, &cache);
    EXPECT_EQ(res.stats.restoredCells, 0);
    JournalData jd;
    EXPECT_TRUE(loadSweepJournal(jp, jd));
    EXPECT_EQ(jd.cells.size(), res.cells.size());
}

TEST(SweepJournal, GridFingerprintSeesEveryDimension)
{
    SweepConfig base = journalConfig("");
    uint64_t fp = sweepGridFingerprint(base);

    SweepConfig c1 = base;
    c1.programs.pop_back();
    EXPECT_NE(sweepGridFingerprint(c1), fp);
    SweepConfig c2 = base;
    c2.days.push_back(7);
    EXPECT_NE(sweepGridFingerprint(c2), fp);
    SweepConfig c3 = base;
    c3.levels = {OptLevel::OneQOptCN};
    EXPECT_NE(sweepGridFingerprint(c3), fp);
    SweepConfig c4 = base;
    c4.driftThreshold = 0.2;
    EXPECT_NE(sweepGridFingerprint(c4), fp);
    SweepConfig c5 = base;
    c5.useCache = false;
    EXPECT_NE(sweepGridFingerprint(c5), fp);
    // Thread count is deliberately NOT part of the grid: results are
    // thread-independent, so a resume may use a different fan-out.
    SweepConfig c6 = base;
    c6.threads = 7;
    EXPECT_EQ(sweepGridFingerprint(c6), fp);
}

// --- real-binary kill + resume -------------------------------------------
//
// Drives the actual triq-sweep tool: start a journaled sweep, SIGKILL
// it mid-run (once the journal shows progress), resume, and require
// the resumed matrix to be byte-identical to an uninterrupted run's.

#ifdef TRIQ_SWEEP_PATH

#include <csignal>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

namespace
{

std::string
slurpFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

long
journalLines(const fs::path &p)
{
    std::ifstream in(p);
    std::string l;
    long n = 0;
    while (std::getline(in, l))
        ++n;
    return n;
}

} // namespace

TEST(SweepJournalCli, KilledSweepResumesByteIdentical)
{
    JournalDir dir;
    fs::path manifest = dir.path / "grid.txt";
    {
        std::ofstream m(manifest);
        m << "program BV4 BV8 Toffoli QFT Adder\n"
             "device IBMQ14 UMDTI\n"
             "days 0..5\n"
             "level c cn\n"
             "drift 0.05\n"
             "threads 2\n";
    }

    fs::path full_json = dir.path / "full.json";
    fs::path full_journal = dir.path / "full.jsonl";
    std::string base = std::string(TRIQ_SWEEP_PATH) + " --manifest " +
                       manifest.string();
    int rc = std::system((base + " --journal " + full_journal.string() +
                          " -o " + full_json.string() + " 2>/dev/null")
                             .c_str());
    ASSERT_EQ(rc, 0);
    std::string full_matrix = slurpFile(full_json);
    ASSERT_FALSE(full_matrix.empty());

    // Launch the same grid again and SIGKILL it once the journal shows
    // at least a few resolved cells.
    fs::path kill_json = dir.path / "killed.json";
    fs::path kill_journal = dir.path / "killed.jsonl";
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        int devnull = open("/dev/null", O_WRONLY);
        if (devnull >= 0) {
            dup2(devnull, 1);
            dup2(devnull, 2);
        }
        execl(TRIQ_SWEEP_PATH, TRIQ_SWEEP_PATH, "--manifest",
              manifest.string().c_str(), "--journal",
              kill_journal.string().c_str(), "-o",
              kill_json.string().c_str(), static_cast<char *>(nullptr));
        _exit(127);
    }
    bool killed = false;
    for (int spin = 0; spin < 20000; ++spin) {
        if (journalLines(kill_journal) >= 4) {
            kill(pid, SIGKILL);
            killed = true;
            break;
        }
        int status = 0;
        if (waitpid(pid, &status, WNOHANG) == pid) {
            // The run outpaced the poller and finished — resuming a
            // complete journal must still be byte-identical, so the
            // test below stays meaningful either way.
            pid = -1;
            break;
        }
        usleep(100);
    }
    if (pid > 0) {
        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, 0), pid);
        if (killed)
            ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
    }

    // Resume and compare byte for byte.
    fs::path resumed_json = dir.path / "resumed.json";
    rc = std::system((base + " --journal " + kill_journal.string() +
                      " --resume -o " + resumed_json.string() +
                      " 2>/dev/null")
                         .c_str());
    ASSERT_EQ(rc, 0);
    EXPECT_EQ(slurpFile(resumed_json), full_matrix);
}

#endif // TRIQ_SWEEP_PATH
