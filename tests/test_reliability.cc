/**
 * @file
 * Reliability-matrix tests, anchored on the paper's own worked example
 * (Fig. 6), plus path optimality checked against brute-force search.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "common/rng.hh"
#include "core/reliability.hh"
#include "device/machines.hh"

namespace triq
{
namespace
{

/** The Fig. 6 example matrix built from the figure's reliabilities. */
ReliabilityMatrix
fig6Matrix()
{
    static Device dev = makeExample8();
    Calibration calib = dev.averageCalibration();
    std::vector<double> rels = fig6Reliabilities();
    for (size_t e = 0; e < rels.size(); ++e)
        calib.err2q[e] = 1.0 - rels[e];
    // Use a non-IBM vendor so no orientation-fix terms perturb the
    // figure's pure-2Q arithmetic.
    return ReliabilityMatrix(dev.topology(), calib, Vendor::Rigetti);
}

TEST(Reliability, Fig6WorkedExample)
{
    ReliabilityMatrix rel = fig6Matrix();
    // (1,6): swap 1 next to 5 (0.9^3) then gate 5-6 (0.8).
    EXPECT_NEAR(rel.pairReliability(1, 6), 0.9 * 0.9 * 0.9 * 0.8, 1e-9);
    EXPECT_EQ(rel.bestNeighbor(1, 6), 5);
}

TEST(Reliability, Fig6SelectedEntries)
{
    ReliabilityMatrix rel = fig6Matrix();
    // Adjacent pairs: direct gate.
    EXPECT_NEAR(rel.pairReliability(0, 1), 0.9, 1e-9);
    EXPECT_NEAR(rel.pairReliability(1, 2), 0.8, 1e-9);
    // Row 0 of the printed matrix.
    EXPECT_NEAR(rel.pairReliability(0, 2), 0.583, 0.01);
    EXPECT_NEAR(rel.pairReliability(0, 3), 0.336, 0.01);
    EXPECT_NEAR(rel.pairReliability(0, 4), 0.9, 1e-9);
    EXPECT_NEAR(rel.pairReliability(0, 7), 0.24, 0.01);
    // The matrix is *asymmetric* by construction — it moves the control
    // next to the target. Fig. 6(b) itself shows (0,2) = 0.58 but
    // (2,0) = 0.46: moving q0 along strong edges beats moving q2.
    EXPECT_NEAR(rel.pairReliability(2, 0), 0.46, 0.01);
    EXPECT_NEAR(rel.pairReliability(3, 0), 0.33, 0.01);
    EXPECT_NEAR(rel.pairReliability(6, 1), 0.46, 0.01);
}

TEST(Reliability, SwapPathMatchesReliability)
{
    ReliabilityMatrix rel = fig6Matrix();
    for (int c = 0; c < 8; ++c) {
        for (int t = 0; t < 8; ++t) {
            if (c == t)
                continue;
            std::vector<HwQubit> path = rel.swapPath(c, t);
            ASSERT_GE(path.size(), 2u);
            EXPECT_EQ(path.front(), c);
            EXPECT_EQ(path.back(), t);
            double prod = 1.0;
            for (size_t i = 0; i + 1 < path.size(); ++i)
                prod *= rel.swapReliability(path[i], path[i + 1]);
            EXPECT_NEAR(prod, rel.swapPathReliability(c, t), 1e-9);
        }
    }
}

TEST(Reliability, PathOptimalityBruteForce)
{
    // Random edge reliabilities: Floyd-Warshall path must beat every
    // exhaustively enumerated simple path.
    Device dev = makeExample8();
    Calibration calib = dev.averageCalibration();
    Rng rng(404);
    for (auto &e : calib.err2q)
        e = rng.uniform(0.02, 0.4);
    ReliabilityMatrix rel(dev.topology(), calib, Vendor::Rigetti);
    const Topology &topo = dev.topology();

    // DFS all simple paths between two nodes, tracking best product.
    struct Dfs
    {
        const Topology &topo;
        const ReliabilityMatrix &rel;
        double best = 0.0;
        std::vector<bool> seen;
        void
        run(HwQubit cur, HwQubit goal, double prod)
        {
            if (cur == goal) {
                best = std::max(best, prod);
                return;
            }
            for (HwQubit nb : topo.neighbors(cur)) {
                if (seen[static_cast<size_t>(nb)])
                    continue;
                seen[static_cast<size_t>(nb)] = true;
                run(nb, goal, prod * rel.swapReliability(cur, nb));
                seen[static_cast<size_t>(nb)] = false;
            }
        }
    };
    for (int c = 0; c < 8; ++c) {
        for (int t = 0; t < 8; ++t) {
            if (c == t)
                continue;
            Dfs dfs{topo, rel, 0.0,
                    std::vector<bool>(8, false)};
            dfs.seen[static_cast<size_t>(c)] = true;
            dfs.run(c, t, 1.0);
            EXPECT_NEAR(rel.swapPathReliability(c, t), dfs.best, 1e-9)
                << c << "->" << t;
        }
    }
}

TEST(Reliability, IbmOrientationPenalty)
{
    // On a directed IBM edge, the reversed gate is less reliable.
    Topology t(2);
    t.addEdge(0, 1, true);
    Calibration calib;
    calib.numQubits = 2;
    calib.err1q = {0.01, 0.01};
    calib.errRO = {0.02, 0.02};
    calib.t2Us = {50.0, 50.0};
    calib.err2q = {0.05};
    calib.durations = {0.1, 0.4, 3.0};
    ReliabilityMatrix rel(t, calib, Vendor::IBM);
    EXPECT_NEAR(rel.gateReliability(0, 1), 0.95, 1e-12);
    EXPECT_NEAR(rel.gateReliability(1, 0),
                0.95 * std::pow(0.99, 4), 1e-12);
    EXPECT_GT(rel.pairReliability(0, 1), rel.pairReliability(1, 0));

    // A non-IBM vendor ignores direction.
    ReliabilityMatrix rel2(t, calib, Vendor::Rigetti);
    EXPECT_NEAR(rel2.gateReliability(1, 0), 0.95, 1e-12);
}

TEST(Reliability, ReadoutVector)
{
    Device dev = makeIbmQ5();
    Calibration calib = dev.calibrate(0);
    ReliabilityMatrix rel(dev.topology(), calib, dev.vendor());
    for (int q = 0; q < 5; ++q)
        EXPECT_NEAR(rel.readoutReliability(q),
                    1.0 - calib.errRO[static_cast<size_t>(q)], 1e-12);
}

TEST(Reliability, FullyConnectedNeedsNoSwaps)
{
    Device dev = makeUmdTi();
    Calibration calib = dev.calibrate(1);
    ReliabilityMatrix rel(dev.topology(), calib, dev.vendor());
    for (int i = 0; i < 5; ++i)
        for (int j = 0; j < 5; ++j)
            if (i != j) {
                // The end-to-end entry can only improve on the direct
                // gate (taking t' = i gives exactly the direct gate).
                EXPECT_GE(rel.pairReliability(i, j),
                          rel.gateReliability(i, j) - 1e-12);
                // Swap paths exist but the router never consults them:
                // every pair is already adjacent.
                auto path = rel.swapPath(i, j);
                EXPECT_EQ(path.front(), i);
                EXPECT_EQ(path.back(), j);
            }
}

TEST(Reliability, MaxPairReliability)
{
    ReliabilityMatrix rel = fig6Matrix();
    EXPECT_NEAR(rel.maxPairReliability(), 0.9, 1e-9);
}

TEST(Reliability, MismatchedCalibrationRejected)
{
    Device dev = makeIbmQ5();
    Calibration wrong = makeIbmQ14().calibrate(0);
    EXPECT_THROW(
        ReliabilityMatrix(dev.topology(), wrong, dev.vendor()),
        FatalError);
}

} // namespace
} // namespace triq
