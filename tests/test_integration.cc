/**
 * @file
 * End-to-end pipeline tests: compile benchmarks for real device models
 * at every optimization level, check that the compiled circuit still
 * computes the right answer (ideal simulation), that hardware
 * constraints hold (adjacency, software-visible gates only), and that
 * the noisy executor behaves sanely.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/compiler.hh"
#include "device/machines.hh"
#include "sim/executor.hh"
#include "sim/statevector.hh"
#include "workloads/benchmarks.hh"

namespace triq
{
namespace
{

/**
 * Check that the compiled circuit produces the program's ideal outcome:
 * measured program qubit k sits at finalMap[k]'s compact position.
 */
void
expectSameAnswer(const Circuit &program, const CompileResult &res)
{
    uint64_t want = idealOutcome(program);
    std::vector<ProgQubit> prog_measured = program.measuredQubits();

    std::vector<double> dist = idealMeasurementDistribution(res.hwCircuit);
    uint64_t got_basis = 0;
    double bestp = -1.0;
    for (uint64_t i = 0; i < dist.size(); ++i)
        if (dist[i] > bestp) {
            bestp = dist[i];
            got_basis = i;
        }
    ASSERT_GT(bestp, 0.99) << program.name();

    // The hw circuit measures hardware qubits; measured qubits are
    // sorted ascending in the distribution key. Recover each program
    // qubit's bit through the final map.
    std::vector<ProgQubit> hw_measured = res.hwCircuit.measuredQubits();
    ASSERT_EQ(hw_measured.size(), prog_measured.size());
    for (size_t k = 0; k < prog_measured.size(); ++k) {
        HwQubit h = res.finalMap[static_cast<size_t>(prog_measured[k])];
        auto it =
            std::find(hw_measured.begin(), hw_measured.end(), h);
        ASSERT_NE(it, hw_measured.end())
            << program.name() << ": program qubit " << prog_measured[k]
            << " (hw " << h << ") is not measured";
        size_t pos = static_cast<size_t>(it - hw_measured.begin());
        uint64_t got_bit = (got_basis >> pos) & 1;
        uint64_t want_bit = (want >> k) & 1;
        EXPECT_EQ(got_bit, want_bit)
            << program.name() << " program qubit " << prog_measured[k];
    }
}

struct PipelineCase
{
    std::string device;
    std::string bench;
    OptLevel level;
};

std::string
caseName(const ::testing::TestParamInfo<PipelineCase> &info)
{
    std::string s = info.param.device + "_" + info.param.bench + "_" +
                    optLevelName(info.param.level);
    std::string out;
    for (char c : s)
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += c;
    return out;
}

Device
deviceByName(const std::string &name)
{
    for (auto &d : allStudyDevices())
        if (d.name() == name)
            return d;
    fatal("unknown device ", name);
}

class Pipeline : public ::testing::TestWithParam<PipelineCase>
{
};

TEST_P(Pipeline, PreservesSemanticsAndConstraints)
{
    const auto &pc = GetParam();
    Device dev = deviceByName(pc.device);
    Circuit program = makeBenchmark(pc.bench);
    if (program.numQubits() > dev.numQubits())
        GTEST_SKIP() << "benchmark too large for device";

    CompileOptions opts;
    opts.level = pc.level;
    Calibration calib = dev.calibrate(3);
    CompileResult res = compileForDevice(program, dev, calib, opts);

    // Hardware constraints: 2Q gates on edges, correct gate set.
    for (const auto &g : res.hwCircuit.gates()) {
        if (isTwoQubitGate(g.kind)) {
            EXPECT_TRUE(dev.topology().adjacent(g.qubit(0), g.qubit(1)))
                << g.str();
            switch (dev.vendor()) {
              case Vendor::IBM:
                EXPECT_EQ(g.kind, GateKind::Cnot) << g.str();
                EXPECT_TRUE(dev.topology().orientationNative(g.qubit(0),
                                                             g.qubit(1)))
                    << g.str();
                break;
              case Vendor::Rigetti:
                EXPECT_EQ(g.kind, GateKind::Cz) << g.str();
                break;
              case Vendor::UMD:
                EXPECT_EQ(g.kind, GateKind::Xx) << g.str();
                break;
            }
        }
    }

    // Semantics: the compiled circuit computes the same answer.
    expectSameAnswer(program, res);

    // Assembly is emitted and non-trivial.
    EXPECT_FALSE(res.assembly.empty());
}

std::vector<PipelineCase>
pipelineCases()
{
    std::vector<PipelineCase> cases;
    // Representative devices at every optimization level...
    const std::vector<std::string> devices{"IBMQ5", "IBMQ14", "Agave",
                                           "UMDTI"};
    const std::vector<std::string> benches{"BV4", "HS4", "Toffoli",
                                           "QFT", "Adder"};
    for (const auto &d : devices)
        for (const auto &b : benches)
            for (OptLevel lvl : {OptLevel::N, OptLevel::OneQOpt,
                                 OptLevel::OneQOptC, OptLevel::OneQOptCN})
                cases.push_back({d, b, lvl});
    // ...plus the full 12-benchmark x 7-machine grid of Fig. 12 at the
    // level the cross-platform study uses (skipping combinations the
    // first block already covers).
    for (const Device &dev : allStudyDevices())
        for (const auto &b : benchmarkNames()) {
            bool covered = false;
            for (const auto &c : cases)
                covered = covered ||
                          (c.device == dev.name() && c.bench == b &&
                           c.level == OptLevel::OneQOptCN);
            if (!covered)
                cases.push_back({dev.name(), b, OptLevel::OneQOptCN});
        }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, Pipeline,
                         ::testing::ValuesIn(pipelineCases()), caseName);

TEST(Executor, NoiselessCalibrationIsPerfect)
{
    Device dev = makeIbmQ5();
    Circuit program = makeBenchmark("BV4");
    Calibration zero = dev.averageCalibration();
    std::fill(zero.err1q.begin(), zero.err1q.end(), 0.0);
    std::fill(zero.err2q.begin(), zero.err2q.end(), 0.0);
    std::fill(zero.errRO.begin(), zero.errRO.end(), 0.0);
    std::fill(zero.t2Us.begin(), zero.t2Us.end(), 1e18);
    CompileOptions opts;
    CompileResult res = compileForDevice(program, dev, zero, opts);
    ExecutionResult ex = executeNoisy(res.hwCircuit, dev, zero, 200);
    EXPECT_DOUBLE_EQ(ex.successRate, 1.0);
    EXPECT_DOUBLE_EQ(ex.noErrorProb, 1.0);
    EXPECT_EQ(ex.simulatedTrajectories, 0);
}

TEST(Executor, SuccessTracksEsp)
{
    Device dev = makeIbmQ14();
    Circuit program = makeBenchmark("BV4");
    Calibration calib = dev.calibrate(5);
    CompileOptions opts;
    CompileResult res = compileForDevice(program, dev, calib, opts);
    ExecutionResult ex = executeNoisy(res.hwCircuit, dev, calib, 3000);
    // ESP is a lower-bound-ish estimate: every error is counted fatal,
    // while some sampled faults still yield the right answer.
    EXPECT_GT(ex.successRate, ex.esp - 0.05);
    EXPECT_LT(ex.esp, 1.0);
    EXPECT_GT(ex.successRate, 0.2);
    EXPECT_LT(ex.successRate, 1.0);
}

} // namespace
} // namespace triq
