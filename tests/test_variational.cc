/**
 * @file
 * Variational-workload tests: MaxCut bookkeeping, QAOA circuit
 * structure and physics sanity (noiseless depth-1 QAOA beats random
 * guessing; histogram-based expectation values are consistent), and
 * the TFIM trotterization.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "core/compiler.hh"
#include "device/machines.hh"
#include "sim/executor.hh"
#include "sim/statevector.hh"
#include "workloads/variational.hh"

namespace triq
{
namespace
{

TEST(MaxCut, CutValueAndOptimum)
{
    MaxCutGraph ring4 = MaxCutGraph::ring(4);
    EXPECT_EQ(ring4.cutValue(0b0101), 4); // Alternating: all edges cut.
    EXPECT_EQ(ring4.cutValue(0b0000), 0);
    EXPECT_EQ(ring4.cutValue(0b0001), 2);
    EXPECT_EQ(ring4.maxCut(), 4);
    // Odd ring is frustrated: max cut = n - 1.
    EXPECT_EQ(MaxCutGraph::ring(5).maxCut(), 4);
}

TEST(MaxCut, RandomGraphWellFormed)
{
    MaxCutGraph g = MaxCutGraph::random(6, 8, 42);
    EXPECT_EQ(g.numVertices, 6);
    EXPECT_EQ(g.edges.size(), 8u);
    for (const auto &[a, b] : g.edges) {
        EXPECT_NE(a, b);
        EXPECT_LT(a, 6);
        EXPECT_LT(b, 6);
    }
    // Deterministic per seed.
    MaxCutGraph g2 = MaxCutGraph::random(6, 8, 42);
    EXPECT_EQ(g.edges, g2.edges);
    EXPECT_THROW(MaxCutGraph::random(3, 10, 1), FatalError);
}

TEST(Qaoa, CircuitStructure)
{
    MaxCutGraph g = MaxCutGraph::ring(4);
    Circuit c = makeQaoaMaxCut(g, {0.5, 0.7}, {0.2, 0.3});
    // Per layer: 2 CNOTs per edge; 2 layers x 4 edges x 2 = 16.
    EXPECT_EQ(c.count2q(), 16);
    EXPECT_EQ(c.measuredQubits().size(), 4u);
    EXPECT_THROW(makeQaoaMaxCut(g, {0.5}, {0.2, 0.3}), FatalError);
    EXPECT_THROW(makeQaoaMaxCut(g, {}, {}), FatalError);
}

/** Exact noiseless <cut> of a depth-1 QAOA circuit. */
double
exactCut(const MaxCutGraph &g, double gamma, double beta)
{
    Circuit c = makeQaoaMaxCut(g, {gamma}, {beta});
    std::vector<double> dist = idealMeasurementDistribution(c);
    double expect = 0.0;
    for (uint64_t k = 0; k < dist.size(); ++k)
        expect += dist[k] * g.cutValue(k);
    return expect;
}

/** Best (gamma, beta) over a coarse grid. */
std::pair<double, double>
bestAngles(const MaxCutGraph &g)
{
    double best = -1.0, bg = 0.0, bb = 0.0;
    for (int gi = 1; gi <= 7; ++gi)
        for (int bi = 1; bi <= 7; ++bi) {
            double gamma = gi * kPi / 8.0, beta = bi * kPi / 16.0;
            double v = exactCut(g, gamma, beta);
            if (v > best) {
                best = v;
                bg = gamma;
                bb = beta;
            }
        }
    return {bg, bb};
}

TEST(Qaoa, NoiselessDepth1BeatsRandomGuessing)
{
    // Random assignments cut half the edges in expectation; tuned
    // depth-1 QAOA must do better.
    MaxCutGraph g = MaxCutGraph::ring(4);
    auto [gamma, beta] = bestAngles(g);
    double expect = exactCut(g, gamma, beta);
    EXPECT_GT(expect, 0.5 * static_cast<double>(g.edges.size()) + 0.3);
}

TEST(Qaoa, HistogramExpectationMatchesIdealUnderZeroNoise)
{
    MaxCutGraph g = MaxCutGraph::ring(4);
    Circuit c = makeQaoaMaxCut(g, {kPi / 3}, {kPi / 8});
    Device dev = makeUmdTi();
    Calibration zero = dev.averageCalibration();
    std::fill(zero.err1q.begin(), zero.err1q.end(), 0.0);
    std::fill(zero.err2q.begin(), zero.err2q.end(), 0.0);
    std::fill(zero.errRO.begin(), zero.errRO.end(), 0.0);
    std::fill(zero.t2Us.begin(), zero.t2Us.end(), 1e18);
    CompileOptions opts;
    opts.emitAssembly = false;
    CompileResult res = compileForDevice(c, dev, zero, opts);
    setQuiet(true);
    ExecutionResult run =
        executeNoisy(res.hwCircuit, dev, zero, 20000, 5);
    setQuiet(false);
    std::vector<std::pair<uint64_t, int>> counts;
    long total = 0;
    for (const auto &[key, count] : run.sortedHistogram()) {
        counts.push_back(
            {outcomeForProgram(key, res.hwCircuit, res.finalMap,
                               c.measuredQubits()),
             count});
        total += count;
    }
    EXPECT_EQ(total, run.trials);
    double sampled = expectedCutValue(g, counts);
    std::vector<double> dist = idealMeasurementDistribution(c);
    double exact = 0.0;
    for (uint64_t k = 0; k < dist.size(); ++k)
        exact += dist[k] * g.cutValue(k);
    EXPECT_NEAR(sampled, exact, 0.05);
}

TEST(Qaoa, NoiseDegradesCut)
{
    MaxCutGraph g = MaxCutGraph::ring(4);
    auto [gamma, beta] = bestAngles(g);
    Circuit c = makeQaoaMaxCut(g, {gamma}, {beta});
    Device dev = makeRigettiAgave();
    Calibration calib = dev.calibrate(1);
    CompileOptions opts;
    opts.emitAssembly = false;
    CompileResult res = compileForDevice(c, dev, calib, opts);
    setQuiet(true);
    ExecutionResult run =
        executeNoisy(res.hwCircuit, dev, calib, 8000, 3);
    setQuiet(false);
    std::vector<std::pair<uint64_t, int>> counts =
        run.sortedHistogram();
    for (auto &[key, count] : counts)
        key = outcomeForProgram(key, res.hwCircuit, res.finalMap,
                                c.measuredQubits());
    double noisy = expectedCutValue(g, counts);
    std::vector<double> dist = idealMeasurementDistribution(c);
    double exact = 0.0;
    for (uint64_t k = 0; k < dist.size(); ++k)
        exact += dist[k] * g.cutValue(k);
    EXPECT_LT(noisy, exact);
    // Depolarization drives toward the random-guess mean, not below.
    EXPECT_GT(noisy, 0.45 * static_cast<double>(g.edges.size()));
}

TEST(Tfim, TrotterStructureAndLimits)
{
    Circuit c = makeTfimTrotter(4, 3, 1.0, 0.5, 0.1);
    // 3 bonds x 2 CNOTs x 3 steps.
    EXPECT_EQ(c.count2q(), 18);
    EXPECT_EQ(c.measuredQubits().size(), 4u);
    EXPECT_THROW(makeTfimTrotter(1, 1, 1, 1, 0.1), FatalError);
    EXPECT_THROW(makeTfimTrotter(3, 0, 1, 1, 0.1), FatalError);
}

TEST(Tfim, ZeroFieldPreservesComputationalBasis)
{
    // With h = 0 the evolution is diagonal: |0000> stays put.
    Circuit c = makeTfimTrotter(4, 5, 1.3, 0.0, 0.2);
    StateVector sv(4);
    sv.applyCircuit(c);
    EXPECT_NEAR(sv.probability(0), 1.0, 1e-9);
}

TEST(Tfim, SmallDtApproachesIdentity)
{
    // One tiny step barely moves the state.
    Circuit c = makeTfimTrotter(3, 1, 1.0, 1.0, 1e-4);
    StateVector sv(3);
    sv.applyCircuit(c);
    EXPECT_GT(sv.probability(0), 0.9999);
}

} // namespace
} // namespace triq
