/**
 * @file
 * State-vector simulator tests: gate application against explicit
 * matrices, sampling statistics, marginals and fidelity.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "common/rng.hh"
#include "core/unitary.hh"
#include "sim/statevector.hh"

namespace triq
{
namespace
{

TEST(StateVector, InitialState)
{
    StateVector sv(3);
    EXPECT_EQ(sv.dim(), 8u);
    EXPECT_NEAR(sv.probability(0), 1.0, 1e-12);
    EXPECT_NEAR(sv.normSquared(), 1.0, 1e-12);
}

TEST(StateVector, PauliGates)
{
    StateVector sv(2);
    sv.applyX(0);
    EXPECT_NEAR(sv.probability(1), 1.0, 1e-12);
    sv.applyX(1);
    EXPECT_NEAR(sv.probability(3), 1.0, 1e-12);
    sv.applyZ(0); // Phase only.
    EXPECT_NEAR(sv.probability(3), 1.0, 1e-12);
    sv.applyY(0);
    EXPECT_NEAR(sv.probability(2), 1.0, 1e-12);
}

TEST(StateVector, GateApplicationMatchesEmbeddedMatrix)
{
    // Property: applying a gate equals multiplying by its embedded
    // unitary, column by column.
    Rng rng(17);
    for (int rep = 0; rep < 30; ++rep) {
        Circuit c(3);
        for (int i = 0; i < 6; ++i) {
            switch (rng.uniformInt(5)) {
              case 0:
                c.add(Gate::h(rng.uniformInt(3)));
                break;
              case 1:
                c.add(Gate::u3(rng.uniformInt(3),
                               rng.uniform(0, kPi),
                               rng.uniform(-kPi, kPi),
                               rng.uniform(-kPi, kPi)));
                break;
              case 2: {
                int a = rng.uniformInt(3);
                c.add(Gate::cnot(a, (a + 1) % 3));
                break;
              }
              case 3: {
                int a = rng.uniformInt(3);
                c.add(Gate::xx(a, (a + 1) % 3,
                               rng.uniform(-kPi, kPi)));
                break;
              }
              default:
                c.add(Gate::ccx(0, 1, 2));
                break;
            }
        }
        StateVector sv(3);
        sv.applyCircuit(c);
        Matrix u = circuitUnitary(c);
        for (int b = 0; b < 8; ++b)
            EXPECT_NEAR(std::abs(sv.amplitude(b) - u(b, 0)), 0.0, 1e-9);
    }
}

TEST(StateVector, SamplingFollowsDistribution)
{
    StateVector sv(1);
    sv.applyGate(Gate::ry(0, 2 * std::acos(std::sqrt(0.3))));
    // P(|0>) = 0.3.
    EXPECT_NEAR(sv.probability(0), 0.3, 1e-9);
    Rng rng(23);
    int ones = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        ones += sv.sampleMeasurement(rng) == 1;
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.7, 0.02);
}

TEST(StateVector, DominantBasisState)
{
    StateVector sv(2);
    sv.applyGate(Gate::x(1));
    double p = 0.0;
    EXPECT_EQ(sv.dominantBasisState(&p), 2u);
    EXPECT_NEAR(p, 1.0, 1e-12);
}

TEST(StateVector, FidelityBetweenStates)
{
    StateVector a(2), b(2);
    EXPECT_NEAR(a.fidelityWith(b), 1.0, 1e-12);
    b.applyX(0);
    EXPECT_NEAR(a.fidelityWith(b), 0.0, 1e-12);
    StateVector c(2);
    c.applyGate(Gate::h(0));
    EXPECT_NEAR(a.fidelityWith(c), 0.5, 1e-12);
}

TEST(StateVector, ResetRestoresGround)
{
    StateVector sv(2);
    sv.applyGate(Gate::h(0));
    sv.applyGate(Gate::cnot(0, 1));
    sv.reset();
    EXPECT_NEAR(sv.probability(0), 1.0, 1e-12);
}

TEST(StateVector, MeasurementDistributionMarginalizes)
{
    // Bell pair, measure only qubit 0: P(0) = P(1) = 0.5.
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    c.add(Gate::measure(0));
    std::vector<double> dist = idealMeasurementDistribution(c);
    ASSERT_EQ(dist.size(), 2u);
    EXPECT_NEAR(dist[0], 0.5, 1e-12);
    EXPECT_NEAR(dist[1], 0.5, 1e-12);
}

TEST(StateVector, MeasurementDistributionKeyOrder)
{
    // |q1 q0> = X on qubit 1 only; measure qubits {0, 1}: key bit 1
    // (the second measured qubit) must be set.
    Circuit c(3);
    c.add(Gate::x(1));
    c.add(Gate::measure(0));
    c.add(Gate::measure(1));
    std::vector<double> dist = idealMeasurementDistribution(c);
    ASSERT_EQ(dist.size(), 4u);
    EXPECT_NEAR(dist[2], 1.0, 1e-12);
}

TEST(StateVector, RejectsBadSizes)
{
    EXPECT_THROW(StateVector(0), FatalError);
    EXPECT_THROW(StateVector(StateVector::maxQubits() + 1), FatalError);
    StateVector sv(2);
    EXPECT_THROW(sv.applyGate(Gate::measure(0)), PanicError);
    Circuit wrong(3);
    EXPECT_THROW(sv.applyCircuit(wrong), FatalError);
}

TEST(StateVector, NormPreservedByLongCircuits)
{
    Rng rng(99);
    StateVector sv(4);
    for (int i = 0; i < 200; ++i) {
        int q = rng.uniformInt(4);
        switch (rng.uniformInt(3)) {
          case 0:
            sv.applyGate(Gate::u3(q, rng.uniform(0, kPi),
                                  rng.uniform(-kPi, kPi),
                                  rng.uniform(-kPi, kPi)));
            break;
          case 1:
            sv.applyGate(Gate::h(q));
            break;
          default:
            sv.applyGate(Gate::cnot(q, (q + 1) % 4));
            break;
        }
    }
    EXPECT_NEAR(sv.normSquared(), 1.0, 1e-9);
}

TEST(StateVector, FastPathKernelsMatchMatrixPath)
{
    // Every specialized kernel must agree with the general matrix path
    // it replaces, on a random (normalized-enough) dense state.
    std::vector<Gate> gates = {
        Gate::s(1),          Gate::sdg(2),
        Gate::t(0),          Gate::tdg(1),
        Gate::u1(2, 0.7),    Gate::rz(0, -1.3),
        Gate::cnot(0, 2),    Gate::cnot(2, 0),
        Gate::cz(1, 2),      Gate::cphase(0, 1, 0.9),
        Gate::swap(0, 2),    Gate::swap(1, 0),
    };
    Rng rng(23);
    for (const Gate &g : gates) {
        StateVector fast(3), ref(3);
        for (uint64_t b = 0; b < fast.dim(); ++b) {
            Cplx amp(rng.uniform(-1, 1), rng.uniform(-1, 1));
            fast.amps()[b] = amp;
            ref.amps()[b] = amp;
        }
        fast.applyGate(g); // dispatches to the specialized kernel
        if (g.arity() == 1)
            ref.applyMatrix1(gateMatrix(g), g.qubit(0));
        else
            ref.applyMatrix2(gateMatrix(g), g.qubit(0), g.qubit(1));
        for (uint64_t b = 0; b < fast.dim(); ++b)
            EXPECT_NEAR(std::abs(fast.amplitude(b) - ref.amplitude(b)),
                        0.0, 1e-12)
                << g.str() << " basis " << b;
    }
}

} // namespace
} // namespace triq
