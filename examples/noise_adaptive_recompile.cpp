/**
 * @file
 * Why recompile against fresh calibration data (Sec. 7, "it is already
 * the norm in QC to compile programs for a particular input size, and
 * our work further demonstrates the value of also recompiling
 * applications to account for up-to-date noise data"):
 *
 * Compile BV6 once against day 0's calibration, then keep running that
 * stale binary on later days while the machine drifts — versus
 * recompiling each day. The stale executable degrades whenever the
 * qubits it was placed on go bad; the recompiled one routes around
 * them.
 *
 *   $ ./noise_adaptive_recompile
 */

#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "core/compiler.hh"
#include "device/machines.hh"
#include "sim/executor.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

int
main()
{
    Device dev = makeIbmQ16();
    Circuit program = makeBV(6);
    const int trials = 3000;

    CompileOptions opts;
    opts.level = OptLevel::OneQOptCN;
    CompileResult stale =
        compileForDevice(program, dev, dev.calibrate(0), opts);

    Table tab("stale vs freshly recompiled BV6 on " + dev.name() + " (" +
              std::to_string(trials) + " trials)");
    tab.setHeader({"day", "stale (day-0 binary)", "recompiled daily",
                   "fresh/stale"});
    std::vector<double> ratios;
    for (int day = 1; day <= 10; ++day) {
        Calibration today = dev.calibrate(day);
        ExecutionResult stale_run =
            executeNoisy(stale.hwCircuit, dev, today, trials);
        CompileResult fresh = compileForDevice(program, dev, today, opts);
        ExecutionResult fresh_run =
            executeNoisy(fresh.hwCircuit, dev, today, trials);
        double r = stale_run.successRate > 0
                       ? fresh_run.successRate / stale_run.successRate
                       : 0.0;
        if (r > 0)
            ratios.push_back(r);
        tab.addRow({fmtI(day), fmtF(stale_run.successRate, 3),
                    fmtF(fresh_run.successRate, 3), fmtFactor(r)});
    }
    tab.print(std::cout);
    std::cout << "geomean gain from daily recompilation: "
              << fmtFactor(geomean(ratios)) << "\n";
    return 0;
}
