/**
 * @file
 * High-level-language entry point: compile a ScaffLite program (the
 * repo's C-like Scaffold stand-in) down to device assembly for any of
 * the seven machines — the full Fig. 4 toolflow in one command.
 *
 *   $ ./scafflite_frontend                     # built-in demo program
 *   $ ./scafflite_frontend prog.scaff IBMQ14   # compile a file
 */

#include <iostream>

#include "core/compiler.hh"
#include "device/machines.hh"
#include "lang/lower.hh"
#include "sim/executor.hh"

using namespace triq;

namespace
{

/** A 5-qubit GHZ-preparation-and-verify demo in ScaffLite. */
const char *kDemoProgram = R"(
// GHZ state preparation on 4 qubits, then un-compute back to a
// deterministic basis state so success is checkable on hardware.
module ghz_roundtrip {
    qreg q[4];
    h q[0];
    for i in 0..2 {
        cnot q[i], q[i+1];
    }
    barrier;
    for i in 0..2 {
        cnot q[2-i], q[3-i];
    }
    h q[0];
    x q[3];
    for i in 0..3 {
        measure q[i];
    }
}
)";

} // namespace

int
main(int argc, char **argv)
{
    Circuit program = argc > 1 ? compileScaffLiteFile(argv[1])
                               : compileScaffLite(kDemoProgram);
    std::string dev_name = argc > 2 ? argv[2] : "UMDTI";
    Device dev = [&] {
        for (auto &d : allStudyDevices())
            if (d.name() == dev_name)
                return d;
        std::cerr << "unknown device " << dev_name << "\n";
        std::exit(1);
    }();

    std::cout << "parsed program:\n" << program.str() << "\n";

    Calibration calib = dev.calibrate(0);
    CompileOptions opts;
    CompileResult res = compileForDevice(program, dev, calib, opts);
    std::cout << "compiled for " << dev.name() << " ("
              << dev.gateSet().describe() << ")\n";
    std::cout << res.stats.twoQ << " 2Q gates, " << res.stats.pulses1q
              << " 1Q pulses, " << res.stats.virtualZ
              << " error-free virtual-Z rotations\n\n";
    std::cout << res.assembly << "\n";

    ExecutionResult run = executeNoisy(res.hwCircuit, dev, calib, 2048);
    std::cout << "simulated success rate: " << run.successRate << "\n";
    return 0;
}
