/**
 * @file
 * QAOA MaxCut on noisy hardware models — the optimization application
 * class the paper's introduction motivates.
 *
 * Sweeps the depth-1 QAOA angles for a small MaxCut instance, executes
 * each candidate circuit on two device models (a superconducting grid
 * and the trapped-ion machine), and reports the best expected cut
 * found under noise versus the noiseless optimum — showing how device
 * error rates and topology eat into variational-algorithm quality, and
 * how the fully connected ion trap preserves more of it.
 *
 *   $ ./qaoa_maxcut
 */

#include <iostream>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/compiler.hh"
#include "device/machines.hh"
#include "sim/executor.hh"
#include "workloads/variational.hh"

using namespace triq;

namespace
{

/** Expected cut for one (gamma, beta) point on one device. */
double
evaluate(const MaxCutGraph &graph, double gamma, double beta,
         const Device &dev, const Calibration &calib, int trials)
{
    Circuit qaoa = makeQaoaMaxCut(graph, {gamma}, {beta});
    CompileOptions opts;
    opts.emitAssembly = false;
    CompileResult res = compileForDevice(qaoa, dev, calib, opts);
    ExecutionResult run =
        executeNoisy(res.hwCircuit, dev, calib, trials);
    // The histogram keys follow ascending measured hardware qubits;
    // translate them back into program-vertex order. sortedHistogram()
    // keeps the summation order (and thus the printed expectation)
    // reproducible.
    std::vector<std::pair<uint64_t, int>> counts;
    for (const auto &[key, count] : run.sortedHistogram())
        counts.push_back({outcomeForProgram(key, res.hwCircuit,
                                            res.finalMap,
                                            qaoa.measuredQubits()),
                          count});
    return expectedCutValue(graph, counts);
}

} // namespace

int
main()
{
    // QAOA outputs are distributions, not a single correct answer;
    // silence the executor's non-deterministic-output advisory.
    setQuiet(true);
    MaxCutGraph graph = MaxCutGraph::ring(5);
    const int trials = 1024;
    std::cout << "MaxCut instance: 5-vertex ring, optimum cut = "
              << graph.maxCut() << "\n\n";

    std::vector<Device> devices;
    devices.push_back(makeIbmQ14());
    devices.push_back(makeUmdTi());

    Table tab("depth-1 QAOA angle sweep: best expected cut under noise");
    tab.setHeader({"device", "best gamma", "best beta", "noisy <cut>",
                   "fraction of optimum"});
    for (const Device &dev : devices) {
        Calibration calib = dev.calibrate(1);
        double best_cut = -1.0, best_g = 0.0, best_b = 0.0;
        for (int gi = 1; gi <= 6; ++gi) {
            for (int bi = 1; bi <= 6; ++bi) {
                double gamma = gi * kPi / 7.0;
                double beta = bi * kPi / 14.0;
                double cut =
                    evaluate(graph, gamma, beta, dev, calib, trials);
                if (cut > best_cut) {
                    best_cut = cut;
                    best_g = gamma;
                    best_b = beta;
                }
            }
        }
        tab.addRow({dev.name(), fmtF(best_g, 3), fmtF(best_b, 3),
                    fmtF(best_cut, 3),
                    fmtF(best_cut / graph.maxCut(), 3)});
    }
    tab.print(std::cout);
    std::cout << "\nthe fully connected, low-error trapped-ion model "
                 "retains more of the\nvariational signal than the "
                 "swap-burdened superconducting grid\n";
    return 0;
}
