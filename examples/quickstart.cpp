/**
 * @file
 * Quickstart: build a program with the circuit API, compile it for a
 * real device model with full noise-aware optimization, inspect the
 * generated OpenQASM, and estimate the success rate under the device's
 * calibrated noise.
 *
 *   $ ./quickstart
 */

#include <iostream>

#include "core/compiler.hh"
#include "device/machines.hh"
#include "sim/executor.hh"

using namespace triq;

int
main()
{
    // 1. Write a program against the vendor-neutral gate IR:
    //    Bernstein-Vazirani with hidden string 101.
    Circuit program(4, "bv4_example");
    program.add(Gate::x(3));
    for (int q = 0; q < 4; ++q)
        program.add(Gate::h(q));
    program.add(Gate::cnot(0, 3)); // Hidden-string bit 0.
    program.add(Gate::cnot(2, 3)); // Hidden-string bit 2.
    for (int q = 0; q < 3; ++q)
        program.add(Gate::h(q));
    for (int q = 0; q < 3; ++q)
        program.add(Gate::measure(q));

    // 2. Pick a target machine and the day's calibration snapshot.
    Device dev = makeIbmQ5();
    Calibration calib = dev.calibrate(/*day=*/0);

    // 3. Compile with full noise-aware optimization (TriQ-1QOptCN).
    CompileOptions opts;
    opts.level = OptLevel::OneQOptCN;
    CompileResult result = compileForDevice(program, dev, calib, opts);

    std::cout << "compiled " << program.name() << " for " << dev.name()
              << ": " << result.stats.twoQ << " 2Q gates, "
              << result.stats.pulses1q << " 1Q pulses, "
              << result.swapCount << " swaps\n";
    std::cout << "initial placement:";
    for (size_t p = 0; p < result.initialMap.size(); ++p)
        std::cout << " q" << p << "->Q" << result.initialMap[p];
    std::cout << "\n\n" << result.assembly << "\n";

    // 4. Estimate the on-device success rate with the noisy executor.
    ExecutionResult run =
        executeNoisy(result.hwCircuit, dev, calib, 4096);
    std::cout << "success rate over " << run.trials
              << " trials: " << run.successRate
              << "  (analytic ESP estimate " << run.esp << ")\n";
    uint64_t recovered = outcomeForProgram(
        run.correctOutcome, result.hwCircuit, result.finalMap,
        program.measuredQubits());
    std::cout << "recovered hidden string (bit2 bit1 bit0): 0b";
    for (int b = 2; b >= 0; --b)
        std::cout << ((recovered >> b) & 1);
    std::cout << " — expect 101\n";
    return 0;
}
