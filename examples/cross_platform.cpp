/**
 * @file
 * Cross-platform study in miniature (the paper's Fig. 12 workflow):
 * compile one program for all seven machines from three vendors and
 * compare gate counts, estimated and simulated success rates side by
 * side. Demonstrates that the same core toolflow targets IBM
 * (OpenQASM), Rigetti (Quil) and UMD (TI assembly) purely through
 * device-specific inputs.
 *
 *   $ ./cross_platform [benchmark-name]
 */

#include <iostream>

#include "common/table.hh"
#include "core/compiler.hh"
#include "device/machines.hh"
#include "sim/executor.hh"
#include "workloads/benchmarks.hh"

using namespace triq;

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "Toffoli";
    Circuit program = makeBenchmark(bench);

    Table tab("cross-platform compilation of " + bench +
              " (TriQ-1QOptCN)");
    tab.setHeader({"device", "vendor", "2Q", "1Q pulses", "swaps", "ESP",
                   "success", "format"});
    for (const Device &dev : allStudyDevices()) {
        if (program.numQubits() > dev.numQubits()) {
            tab.addRow({dev.name(), vendorName(dev.vendor()), "X", "X",
                        "X", "-", "-", "-"});
            continue;
        }
        Calibration calib = dev.calibrate(2);
        CompileOptions opts;
        CompileResult res = compileForDevice(program, dev, calib, opts);
        ExecutionResult run =
            executeNoisy(res.hwCircuit, dev, calib, 2048);
        std::string fmt = dev.vendor() == Vendor::IBM ? "OpenQASM"
                          : dev.vendor() == Vendor::Rigetti
                              ? "Quil"
                              : "UMD-TI asm";
        tab.addRow({dev.name(), vendorName(dev.vendor()),
                    fmtI(res.stats.twoQ), fmtI(res.stats.pulses1q),
                    fmtI(res.swapCount), fmtF(run.esp, 3),
                    fmtF(run.successRate, 3), fmt});
    }
    tab.print(std::cout);
    std::cout << "\nfirst lines of each target's executable format:\n";
    for (const Device &dev : allStudyDevices()) {
        if (program.numQubits() > dev.numQubits())
            continue;
        CompileOptions opts;
        CompileResult res =
            compileForDevice(program, dev, dev.calibrate(2), opts);
        std::cout << "--- " << dev.name() << " ---\n"
                  << res.assembly.substr(0, res.assembly.find('\n', 60))
                  << "\n...\n";
    }
    return 0;
}
