/**
 * @file
 * Compile-time scaling demo (Sec. 6.5): generate quantum-supremacy
 * circuits and compile them for a 72-qubit Bristlecone-class grid with
 * noise-aware optimization, reporting compile time and output size at
 * each scale.
 *
 *   $ ./supremacy_compile [max-qubits]
 */

#include <iostream>

#include "common/table.hh"
#include "core/compiler.hh"
#include "device/machines.hh"
#include "workloads/supremacy.hh"

using namespace triq;

int
main(int argc, char **argv)
{
    int max_qubits = argc > 1 ? std::atoi(argv[1]) : 72;

    struct Shape
    {
        int rows, cols, depth;
    };
    const Shape shapes[] = {{2, 3, 16}, {4, 4, 32}, {6, 6, 64},
                            {6, 9, 96}, {6, 12, 128}};

    Device dev72 = makeGoogle72();
    Table tab("supremacy-circuit compilation for " + dev72.name());
    tab.setHeader({"qubits", "depth", "input 2Q", "output 2Q", "swaps",
                   "compile(ms)"});
    for (const auto &s : shapes) {
        int n = s.rows * s.cols;
        if (n > max_qubits)
            break;
        // Compile onto a matching sub-grid so placement is non-trivial
        // but the device is never smaller than the program.
        Device dev(n == 72 ? dev72
                           : Device("Grid" + std::to_string(n),
                                    Topology::grid(s.rows, s.cols),
                                    GateSet::ibm(), dev72.noiseSpec()));
        Circuit program = makeSupremacy(s.rows, s.cols, s.depth, 42);
        CompileOptions opts;
        opts.mapping.kind = MapperKind::Greedy;
        opts.emitAssembly = false;
        CompileResult res =
            compileForDevice(program, dev, dev.calibrate(0), opts);
        tab.addRow({fmtI(n), fmtI(s.depth), fmtI(program.count2q()),
                    fmtI(res.stats.twoQ), fmtI(res.swapCount),
                    fmtF(res.compileMs, 1)});
    }
    tab.print(std::cout);
    std::cout << "compile time scales with qubit count, not gate count "
                 "(Sec. 6.5)\n";
    return 0;
}
