#include "common/env.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace triq
{

int
envInt(const char *name, int fallback, int min_value)
{
    const char *env = std::getenv(name);
    if (!env)
        return fallback;
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(env, &end, 10);
    bool parsed = end != env && *end == '\0' && errno == 0;
    if (!parsed || v < min_value || v > 1000000000L) {
        warn(name, "='", env, "' is not an integer >= ", min_value,
             "; using ", fallback);
        return fallback;
    }
    return static_cast<int>(v);
}

double
envDouble(const char *name, double fallback, double min_value)
{
    const char *env = std::getenv(name);
    if (!env)
        return fallback;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(env, &end);
    bool parsed = end != env && *end == '\0' && errno == 0;
    if (!parsed || !std::isfinite(v) || v < min_value) {
        warn(name, "='", env, "' is not a finite number >= ", min_value,
             "; using ", fallback);
        return fallback;
    }
    return v;
}

unsigned long long
envBytes(const char *name, unsigned long long fallback,
         unsigned long long min_value)
{
    const char *env = std::getenv(name);
    if (!env)
        return fallback;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    // strtoull wraps negative input instead of failing; reject any '-'
    // ahead of the digits explicitly.
    bool negative = false;
    for (const char *p = env; p != end; ++p)
        negative = negative || *p == '-';
    bool parsed = end != env && errno == 0 && !negative;
    unsigned long long shift = 0;
    if (parsed && *end != '\0') {
        switch (*end) {
        case 'k': case 'K': shift = 10; ++end; break;
        case 'm': case 'M': shift = 20; ++end; break;
        case 'g': case 'G': shift = 30; ++end; break;
        case 't': case 'T': shift = 40; ++end; break;
        default: parsed = false; break;
        }
        // Tolerate an explicit unit tail: "256MB", "2GiB".
        if (parsed && (*end == 'i' || *end == 'I'))
            ++end;
        if (parsed && (*end == 'b' || *end == 'B'))
            ++end;
        if (*end != '\0')
            parsed = false;
    }
    bool overflow = shift > 0 && v > (~0ULL >> shift);
    if (!parsed || overflow || v << shift < min_value) {
        warn(name, "='", env, "' is not a byte count >= ", min_value,
             " (expected e.g. 1073741824, 256M, 2G); using ", fallback);
        return fallback;
    }
    return v << shift;
}

} // namespace triq
