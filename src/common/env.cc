#include "common/env.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace triq
{

int
envInt(const char *name, int fallback, int min_value)
{
    const char *env = std::getenv(name);
    if (!env)
        return fallback;
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(env, &end, 10);
    bool parsed = end != env && *end == '\0' && errno == 0;
    if (!parsed || v < min_value || v > 1000000000L) {
        warn(name, "='", env, "' is not an integer >= ", min_value,
             "; using ", fallback);
        return fallback;
    }
    return static_cast<int>(v);
}

double
envDouble(const char *name, double fallback, double min_value)
{
    const char *env = std::getenv(name);
    if (!env)
        return fallback;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(env, &end);
    bool parsed = end != env && *end == '\0' && errno == 0;
    if (!parsed || !std::isfinite(v) || v < min_value) {
        warn(name, "='", env, "' is not a finite number >= ", min_value,
             "; using ", fallback);
        return fallback;
    }
    return v;
}

} // namespace triq
