#include "common/types.hh"

#include <cmath>

namespace triq
{

double
wrapAngle(double a)
{
    double w = std::fmod(a, 2.0 * kPi);
    if (w <= -kPi)
        w += 2.0 * kPi;
    else if (w > kPi)
        w -= 2.0 * kPi;
    return w;
}

bool
isZeroAngle(double a, double tol)
{
    return std::abs(wrapAngle(a)) < tol;
}

bool
sameAngle(double a, double b, double tol)
{
    return isZeroAngle(a - b, tol);
}

} // namespace triq
