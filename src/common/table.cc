#include "common/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace triq
{

Table::Table(std::string title) : title_(std::move(title))
{
}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    if (!header_.empty() && row.size() != header_.size())
        panic("Table::addRow: row width ", row.size(),
              " does not match header width ", header_.size());
    rows_.push_back(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());
    std::vector<size_t> width(ncols, 0);
    auto widen = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    };
    if (!header_.empty())
        widen(header_);
    for (const auto &r : rows_)
        widen(r);

    auto emit = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size(); ++i) {
            os << r[i];
            if (i + 1 < r.size())
                os << std::string(width[i] - r[i].size() + 2, ' ');
        }
        os << '\n';
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t i = 0; i < ncols; ++i)
            total += width[i] + (i + 1 < ncols ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
}

void
Table::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string q = "\"";
        for (char c : s) {
            if (c == '"')
                q += '"';
            q += c;
        }
        q += '"';
        return q;
    };
    auto emit = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size(); ++i) {
            os << quote(r[i]);
            if (i + 1 < r.size())
                os << ',';
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

std::string
fmtF(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtFactor(double v)
{
    if (!std::isfinite(v))
        return "-";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2fx", v);
    return buf;
}

std::string
fmtI(long v)
{
    return std::to_string(v);
}

} // namespace triq
