/**
 * @file
 * A small reusable worker pool for data-parallel simulation work.
 *
 * The trajectory executor shards trials into fixed-size chunks and runs
 * them here; determinism comes from the sharded RNG streams and the
 * chunk-ordered merge, not from any scheduling property of this pool,
 * so workers are free to steal whatever job is next.
 *
 * Jobs must not themselves submit to the same pool (no nesting); the
 * executor's flat chunk fan-out never needs it.
 */

#ifndef TRIQ_COMMON_THREAD_POOL_HH
#define TRIQ_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace triq
{

/** Fixed-size worker pool with a blocking wait and error propagation. */
class ThreadPool
{
  public:
    /**
     * Spawn `num_threads` workers. @pre num_threads >= 1.
     * A 1-thread pool still spawns a worker; callers that want a true
     * serial path should simply not construct a pool.
     */
    explicit ThreadPool(int num_threads);

    /** Drains remaining jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job. Thread-safe. */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished. If any job threw,
     * rethrows the first exception (by submission-processing order is
     * not guaranteed — one of the thrown exceptions).
     */
    void wait();

    /** Worker count. */
    int size() const { return static_cast<int>(workers_.size()); }

    /** Hardware concurrency with a sane floor of 1. */
    static int hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    int active_ = 0;
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

/**
 * Run fn(0) .. fn(num_tasks - 1) across the pool and wait for all of
 * them. Exceptions from any task propagate out (first one wins).
 */
void parallelFor(ThreadPool &pool, int num_tasks,
                 const std::function<void(int)> &fn);

} // namespace triq

#endif // TRIQ_COMMON_THREAD_POOL_HH
