/**
 * @file
 * A small reusable worker pool for data-parallel simulation and
 * compilation work.
 *
 * The trajectory executor shards trials into fixed-size chunks and runs
 * them here; determinism comes from the sharded RNG streams and the
 * chunk-ordered merge, not from any scheduling property of this pool,
 * so workers are free to steal whatever job is next.
 *
 * Jobs must not themselves submit to the same pool (no nesting); the
 * executor's flat chunk fan-out never needs it.
 *
 * Enqueue granularity matters: submitting N jobs one by one takes N
 * lock acquisitions and N condition-variable signals, which is exactly
 * the per-task overhead the adaptive scheduler (common/sched.hh) is
 * built to amortize. submitBatch() enqueues a whole batch under one
 * lock and wakes the workers once; parallelFor/parallelForRanges are
 * built on it.
 */

#ifndef TRIQ_COMMON_THREAD_POOL_HH
#define TRIQ_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace triq
{

/** Fixed-size worker pool with a blocking wait and error propagation. */
class ThreadPool
{
  public:
    /**
     * Spawn `num_threads` workers. @pre num_threads >= 1.
     * A 1-thread pool still spawns a worker; callers that want a true
     * serial path should simply not construct a pool — the adaptive
     * scheduler (common/sched.hh) makes that decision for them.
     */
    explicit ThreadPool(int num_threads);

    /** Drains remaining jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job. Thread-safe. */
    void submit(std::function<void()> job);

    /**
     * Enqueue every job of `jobs` under a single lock acquisition and
     * wake the workers once (one notify_all instead of N notify_one
     * calls). Jobs are moved, never copied. Thread-safe.
     */
    void submitBatch(std::vector<std::function<void()>> jobs);

    /**
     * Block until every submitted job has finished. If any job threw,
     * rethrows the first exception (by submission-processing order is
     * not guaranteed — one of the thrown exceptions).
     */
    void wait();

    /**
     * Grow the pool to at least `num_threads` workers (no-op when it
     * is already that large). Must be called from the control thread
     * that owns the pool, never from a worker job.
     */
    void ensureWorkers(int num_threads);

    /** Worker count. */
    int size() const { return static_cast<int>(workers_.size()); }

    /** Hardware concurrency with a sane floor of 1. */
    static int hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    int active_ = 0;
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

/**
 * The process-wide worker pool, created on first use with at least
 * `min_workers` workers (0 = hardware concurrency) and grown on demand.
 * Keeping one pool hot across executeNoisy/runSweep calls amortizes the
 * worker-spawn cost that used to be paid per call; the scheduler checks
 * processPoolStarted() so its cost model only charges the spawn once.
 *
 * The pool's wait() discipline is single-client: fan out from the main
 * thread, wait, fan out again. Concurrent clients would wait on each
 * other's jobs (harmless but slow) — spawn a private ThreadPool for
 * that instead.
 */
ThreadPool &processPool(int min_workers = 0);

/** Whether processPool() has been created yet (its spawn cost is sunk). */
bool processPoolStarted();

/**
 * Run fn(0) .. fn(num_tasks - 1) across the pool and wait for all of
 * them. Exceptions from any task propagate out (first one wins). The
 * batch is enqueued with one submitBatch call.
 */
void parallelFor(ThreadPool &pool, int num_tasks,
                 const std::function<void(int)> &fn);

/**
 * Run fn(lo, hi) over [0, num_items) in contiguous ranges of
 * `items_per_task` items — ceil(num_items / items_per_task) pool tasks
 * — and wait for all of them. This is the batched fan-out the adaptive
 * scheduler plans: each task carries enough items to amortize its
 * dispatch overhead. Exceptions propagate as in parallelFor.
 */
void parallelForRanges(ThreadPool &pool, int num_items, int items_per_task,
                       const std::function<void(int, int)> &fn);

} // namespace triq

#endif // TRIQ_COMMON_THREAD_POOL_HH
