/**
 * @file
 * Fundamental scalar types and constants shared across the TriQ toolflow.
 */

#ifndef TRIQ_COMMON_TYPES_HH
#define TRIQ_COMMON_TYPES_HH

#include <complex>
#include <cstdint>

namespace triq
{

/** Index of a program (logical) qubit inside a circuit. */
using ProgQubit = int;

/** Index of a hardware (physical) qubit on a device. */
using HwQubit = int;

/** Complex amplitude type used by the simulator and matrix algebra. */
using Cplx = std::complex<double>;

/** Pi, to double precision. */
inline constexpr double kPi = 3.141592653589793238462643383279502884;

/** Numerical tolerance used when comparing angles and amplitudes. */
inline constexpr double kEps = 1e-9;

/**
 * Wrap an angle into the canonical interval (-pi, pi].
 *
 * @param a Angle in radians.
 * @return The equivalent angle in (-pi, pi].
 */
double wrapAngle(double a);

/**
 * Test whether an angle is an integer multiple of 2*pi (i.e. a no-op
 * rotation) within tolerance.
 */
bool isZeroAngle(double a, double tol = 1e-7);

/** Test whether two angles are equal modulo 2*pi within tolerance. */
bool sameAngle(double a, double b, double tol = 1e-7);

} // namespace triq

#endif // TRIQ_COMMON_TYPES_HH
