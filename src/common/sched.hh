/**
 * @file
 * The adaptive cost-model scheduler: decide, per job, whether a batch
 * of independent work items should run serially or on the thread pool,
 * and how many items each pool task should carry so the dispatch
 * overhead is amortized.
 *
 * Why it exists: at the paper's workload sizes the repo's own
 * benchmarks showed threading *losing* to serial (BV8 trajectory
 * thread_speedup 0.88, the cold parallel sweep at ~1.0x) — per-task
 * enqueue/wake overhead plus per-call pool spawn ate the win. The fix
 * is structural, not a tuning constant: estimate the work first, and
 * only go parallel when the model says the overhead is paid for.
 *
 * The model needs three machine constants (SchedCalib):
 *   - perTaskOverheadUs: cost of dispatching one pool task,
 *   - poolSpawnUs: one-time cost of spinning up the worker pool
 *     (charged only while processPool() has not been created yet),
 *   - ampOpsPerUs: amplitude-update throughput, the machine-speed
 *     scalar that converts the consumers' abstract work estimates
 *     (qubits x gates x trials / cells) into microseconds.
 * They are measured once per process on first use (~2 ms) or loaded
 * from TRIQ_SCHED_CALIB ("overhead_us,spawn_us,amp_ops_per_us[,threads]")
 * so servers and benches can pin a calibration.
 *
 * Every decision is *observable*: consumers store the SchedDecision
 * (mode, thread count, items per task, predicted vs. actual ms) in
 * their result/stats structs so benches — and the future triqd server
 * — can report what the scheduler chose and how good the prediction
 * was.
 *
 * Determinism: the scheduler only chooses how work is distributed,
 * never what is computed. Simulation results are bit-identical for
 * every decision because RNG chunking is fixed independently of the
 * task batching (see sim/executor.cc).
 */

#ifndef TRIQ_COMMON_SCHED_HH
#define TRIQ_COMMON_SCHED_HH

#include <optional>
#include <string>

namespace triq
{

/** Machine constants the cost model runs on. */
struct SchedCalib
{
    /** Dispatch cost of one pool task (enqueue + wake + pickup), us. */
    double perTaskOverheadUs = 15.0;

    /** One-time cost of spawning the worker pool, us. */
    double poolSpawnUs = 400.0;

    /**
     * Machine speed: state-vector amplitude updates (one amplitude
     * through a 2x2 rotation) per microsecond. Converts the abstract
     * work-unit estimates below into wall-clock time.
     */
    double ampOpsPerUs = 500.0;

    /** Usable hardware threads (>= 1). */
    int hardwareThreads = 1;
};

/**
 * Measure SchedCalib on this machine: a short amplitude-update loop
 * for ampOpsPerUs and a timed spawn + empty-job storm on a small
 * private pool for the overhead constants. Takes a few milliseconds;
 * call it once (schedCalib() caches it).
 */
SchedCalib measureSchedCalib();

/**
 * Parse a TRIQ_SCHED_CALIB-style string:
 * "overhead_us,spawn_us,amp_ops_per_us[,threads]" (3 or 4 positive
 * comma-separated numbers). Returns nullopt on malformed input.
 */
std::optional<SchedCalib> parseSchedCalib(const std::string &text);

/** Round-trip `c` into the TRIQ_SCHED_CALIB string format. */
std::string schedCalibString(const SchedCalib &c);

/**
 * The process-wide calibration: TRIQ_SCHED_CALIB when set and
 * well-formed (malformed values warn once and fall back), otherwise
 * measured once on first call and cached.
 */
const SchedCalib &schedCalib();

/** One planned fan-out: the mode, the batch size, the predictions. */
struct SchedDecision
{
    /** False = true serial path (no pool is touched at all). */
    bool threaded = false;

    /** Worker threads the plan wants (1 when serial). */
    int threads = 1;

    /** Items carried by each pool task (1 when serial). */
    int itemsPerTask = 1;

    /** Pool tasks the plan enqueues (0 when serial). */
    int tasks = 0;

    /** Model-predicted serial wall clock for the whole job, ms. */
    double predictedSerialMs = 0.0;

    /** Model-predicted wall clock of the *chosen* mode, ms. */
    double predictedMs = 0.0;

    /** Measured wall clock, filled in by the consumer (< 0 = not run). */
    double actualMs = -1.0;

    /** "serial" or "threaded". */
    const char *mode() const { return threaded ? "threaded" : "serial"; }
};

/**
 * Plan a fan-out of `items` independent work items of ~`us_per_item`
 * serial microseconds each.
 *
 * Chooses threaded only when the model predicts a clear win (>= ~25%
 * after overhead) and picks itemsPerTask so each task carries enough
 * work to amortize perTaskOverheadUs while keeping a few tasks per
 * worker for load balance.
 *
 * @param max_threads Ceiling on workers: 0 = hardware threads,
 *        1 forces the serial path, N caps at N.
 * @param pool_hot Pass processPoolStarted(): when the pool already
 *        exists its spawn cost is sunk and is not charged again.
 */
SchedDecision planParallel(const SchedCalib &c, int items,
                           double us_per_item, int max_threads = 0,
                           bool pool_hot = false);

/**
 * Plan a fan-out with the mode forced by the caller (benches and
 * explicit --threads N requests): `threads` <= 1 yields the true
 * serial path; otherwise the fan-out is threaded at `threads` workers
 * but still batched by the same amortization rule as planParallel.
 */
SchedDecision planForced(const SchedCalib &c, int items,
                         double us_per_item, int threads,
                         bool pool_hot = false);

/**
 * Plan the intra-state sharding of ONE kernel pass of `amp_ops`
 * amplitude updates over a state vector (see sim/statevector.hh,
 * "kernel threading"). Unlike planParallel's item fan-outs, the work
 * here is one homogeneous loop, so the plan is simply a thread count:
 * the caller splits the index space into `tasks` contiguous,
 * alignment-preserving ranges.
 *
 * `setting` follows the TRIQ_KERNEL_THREADS convention: 1 = true
 * serial (the pool is never touched), N > 1 = forced to N workers
 * even when the model predicts a loss (benches and bit-identity
 * tests), 0 = adaptive — threaded only when the modeled win clears
 * the same margin planParallel uses, so small registers stay serial
 * and a 1-CPU box always picks the serial path.
 *
 * Determinism: shards are disjoint amplitude groups and kernels carry
 * no cross-group reductions, so every plan computes bit-identical
 * amplitudes — the decision only moves wall-clock time.
 */
SchedDecision planKernel(const SchedCalib &c, double amp_ops, int setting,
                         bool pool_hot = false);

/**
 * Estimated serial microseconds to noisy-simulate one RNG chunk of
 * `chunk_trials` trials of a compact `qubits`-wide circuit with
 * `gates` gates, of which a `faulty_fraction` of trials replay the
 * circuit (the rest sample the cached ideal state).
 * Monotone in every argument.
 */
double estimateChunkUs(const SchedCalib &c, int qubits, int gates,
                       int chunk_trials, double faulty_fraction);

/**
 * Estimated serial microseconds to replay one deduplicated
 * fault-pattern group (one trajectory through the circuit plus a
 * sampling scan). Monotone in qubits and gates.
 */
double estimateGroupUs(const SchedCalib &c, int qubits, int gates);

/**
 * Estimated serial microseconds to pre-sample one RNG chunk's fault
 * patterns (`sites` Bernoulli draws per trial). Monotone in both.
 */
double estimatePresampleUs(const SchedCalib &c, int sites,
                           int chunk_trials);

/**
 * Estimated serial microseconds to compile one sweep cell: a program
 * of `gates` total gates (`gates_2q` two-qubit) onto a `qubits`-qubit
 * device. Dominated by the mapper's per-interaction work, so it grows
 * with gates_2q x qubits^2. Monotone in every argument.
 */
double estimateCompileUs(const SchedCalib &c, int qubits, int gates_2q,
                         int gates);

} // namespace triq

#endif // TRIQ_COMMON_SCHED_HH
