/**
 * @file
 * CompileBudget: a wall-clock deadline plus node budget threaded from
 * the compiler driver through the mapper and scheduling passes so a
 * mappable program *always* yields a routed circuit in bounded time.
 *
 * The budget is deliberately advisory rather than preemptive: passes
 * poll `expired()` at safe points (the branch-and-bound mapper every
 * few thousand nodes, local search between passes) and return their
 * best incumbent instead of continuing. A default-constructed budget is
 * unlimited, so code that never checks the clock behaves bit-for-bit as
 * before — the anytime guarantee only changes behavior when a deadline
 * actually fires (see DESIGN.md, "Error-handling contract").
 */

#ifndef TRIQ_COMMON_BUDGET_HH
#define TRIQ_COMMON_BUDGET_HH

#include <chrono>

namespace triq
{

/** Wall-clock + work budget for one compilation. */
class CompileBudget
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Unlimited: `expired()` is always false and costs no clock read. */
    CompileBudget() = default;

    /** Budget expiring `ms` milliseconds after *now*. */
    static CompileBudget
    withDeadlineMs(double ms)
    {
        CompileBudget b;
        b.hasDeadline_ = true;
        b.deadline_ = Clock::now() +
                      std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double, std::milli>(ms));
        return b;
    }

    /** True when a wall-clock deadline is armed. */
    bool limited() const { return hasDeadline_; }

    /** True when the deadline has passed (never true when unlimited). */
    bool
    expired() const
    {
        return hasDeadline_ && Clock::now() >= deadline_;
    }

    /**
     * Milliseconds until the deadline; negative when already expired.
     * Meaningless (a large positive number) when unlimited.
     */
    double
    remainingMs() const
    {
        if (!hasDeadline_)
            return 1e18;
        return std::chrono::duration<double, std::milli>(deadline_ -
                                                         Clock::now())
            .count();
    }

  private:
    bool hasDeadline_ = false;
    Clock::time_point deadline_{};
};

} // namespace triq

#endif // TRIQ_COMMON_BUDGET_HH
