/**
 * @file
 * ASCII table / CSV formatting used by the benchmark harnesses to print
 * the rows and series the paper's tables and figures report.
 */

#ifndef TRIQ_COMMON_TABLE_HH
#define TRIQ_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace triq
{

/**
 * A simple column-aligned text table with an optional title.
 *
 * Usage:
 * @code
 *   Table t("Fig. 8 (a): IBMQ14 native 1Q ops");
 *   t.setHeader({"bench", "TriQ-N", "TriQ-1QOpt"});
 *   t.addRow({"BV4", "34", "21"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::string title = "");

    /** Set column headers. */
    void setHeader(std::vector<std::string> header);

    /** Append a fully formatted row. */
    void addRow(std::vector<std::string> row);

    /** Number of data rows. */
    int numRows() const { return static_cast<int>(rows_.size()); }

    /** Render as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment, comma separated, quoted as needed). */
    void printCsv(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision (fixed notation). */
std::string fmtF(double v, int precision = 3);

/** Format a double as "x.xx x" improvement factor, or "-" if not finite. */
std::string fmtFactor(double v);

/** Format an integer. */
std::string fmtI(long v);

} // namespace triq

#endif // TRIQ_COMMON_TABLE_HH
