/**
 * @file
 * The process-wide resource governor: a committed-memory budget that
 * every large simulator allocation reserves against *before* touching
 * the allocator, so a request that cannot be afforded fails with a
 * structured, attributable error instead of an OOM kill or a
 * std::bad_alloc abort deep inside a worker thread.
 *
 * The budget comes from TRIQ_MEM_BUDGET ("256M", "2G", plain bytes;
 * 0 = unlimited) or, when the knob is unset, is autodetected from the
 * tightest of the cgroup memory limit (v2 memory.max, v1
 * memory.limit_in_bytes) and /proc/meminfo MemAvailable — the daemon
 * should never promise memory the kernel would kill it for using.
 *
 * Consumers hold reservations through the RAII MemReservation guard;
 * an unaffordable reservation throws ResourceError, which carries the
 * attempted size, the budget and the committed level so every layer
 * (triqc exit 1, triqd `sim.oom` reply, sweep Error cell) can report
 * the same structured facts. See DESIGN.md, "Resource governor".
 */

#ifndef TRIQ_COMMON_RESOURCE_HH
#define TRIQ_COMMON_RESOURCE_HH

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

namespace triq
{

/**
 * A reservation was refused (predicted overrun) or an allocation
 * failed (std::bad_alloc translated at the executor boundary). The
 * numeric fields make the error renderable as a structured `sim.oom`
 * diagnostic at every layer without re-parsing the message.
 */
struct ResourceError : std::runtime_error
{
    ResourceError(const std::string &msg, uint64_t attempted,
                  uint64_t budget, uint64_t committed)
        : std::runtime_error(msg), attemptedBytes(attempted),
          budgetBytes(budget), committedBytes(committed)
    {
    }

    uint64_t attemptedBytes = 0; //!< Bytes the consumer asked for.
    uint64_t budgetBytes = 0;    //!< Budget in force (0 = unlimited).
    uint64_t committedBytes = 0; //!< Already-reserved bytes at refusal.
};

/** Render a byte count like "256.0 MiB" / "1.5 GiB" / "640 B". */
std::string formatBytes(uint64_t bytes);

/** Monotonic counters; read with ResourceGovernor::stats(). */
struct ResourceStats
{
    long reservations = 0;     //!< Successful tryReserve/reserve calls.
    long refusals = 0;         //!< Reservations refused over budget.
    uint64_t committedBytes = 0; //!< Currently reserved.
    uint64_t peakBytes = 0;      //!< High-water mark of committed.
    uint64_t budgetBytes = 0;    //!< Budget in force (0 = unlimited).
};

/**
 * Thread-safe committed-memory ledger. A budget of 0 means unlimited:
 * every reservation succeeds but is still tracked, so peak usage stays
 * observable either way.
 */
class ResourceGovernor
{
  public:
    explicit ResourceGovernor(uint64_t budget_bytes = 0)
        : budget_(budget_bytes)
    {
    }

    /** Budget in force (0 = unlimited). */
    uint64_t budgetBytes() const;

    /** Replace the budget (tests, triqd --mem-budget). Thread-safe. */
    void setBudgetBytes(uint64_t bytes);

    /** Currently committed bytes. */
    uint64_t committedBytes() const;

    /**
     * Would a `bytes` reservation fit right now? Advisory only (the
     * answer can change before a subsequent reserve); the admission
     * cost model uses it to reject predicted overruns up front.
     */
    bool wouldFit(uint64_t bytes) const;

    /**
     * Reserve `bytes` against the budget. @return false when the
     * reservation would exceed it (nothing is committed).
     */
    bool tryReserve(uint64_t bytes);

    /**
     * Reserve `bytes` or throw ResourceError carrying the attempted
     * size, the budget and the committed level. `what` names the
     * consumer for the message ("state vector", "sweep cell", ...).
     */
    void reserve(uint64_t bytes, const std::string &what);

    /** Return `bytes` to the budget. @pre bytes <= committedBytes(). */
    void release(uint64_t bytes);

    ResourceStats stats() const;

  private:
    mutable std::mutex mutex_;
    uint64_t budget_ = 0;
    uint64_t committed_ = 0;
    ResourceStats stats_;
};

/**
 * RAII reservation guard: reserves on construction (throwing
 * ResourceError when over budget), releases on destruction. Movable,
 * not copyable; a default-constructed guard holds nothing (the
 * governor-disabled path costs nothing).
 */
class MemReservation
{
  public:
    MemReservation() = default;

    MemReservation(ResourceGovernor &gov, uint64_t bytes,
                   const std::string &what)
        : gov_(&gov), bytes_(bytes)
    {
        gov.reserve(bytes, what);
    }

    ~MemReservation() { releaseNow(); }

    MemReservation(MemReservation &&o) noexcept
        : gov_(o.gov_), bytes_(o.bytes_)
    {
        o.gov_ = nullptr;
        o.bytes_ = 0;
    }

    MemReservation &
    operator=(MemReservation &&o) noexcept
    {
        if (this != &o) {
            releaseNow();
            gov_ = o.gov_;
            bytes_ = o.bytes_;
            o.gov_ = nullptr;
            o.bytes_ = 0;
        }
        return *this;
    }

    MemReservation(const MemReservation &) = delete;
    MemReservation &operator=(const MemReservation &) = delete;

    /** Bytes held (0 for an empty guard). */
    uint64_t bytes() const { return bytes_; }

    /** Release early (idempotent). */
    void
    releaseNow()
    {
        if (gov_ != nullptr && bytes_ > 0)
            gov_->release(bytes_);
        gov_ = nullptr;
        bytes_ = 0;
    }

  private:
    ResourceGovernor *gov_ = nullptr;
    uint64_t bytes_ = 0;
};

/**
 * The process-wide governor every simulator allocation reserves
 * against. Its budget resolves once on first use: TRIQ_MEM_BUDGET when
 * set ("256M"/"2G"/plain bytes; 0 or a malformed value = unlimited),
 * otherwise detectMemoryBudget().
 */
ResourceGovernor &processGovernor();

/**
 * Autodetect a sane budget: the tightest of the cgroup v2/v1 memory
 * limit and /proc/meminfo MemAvailable, or 0 (unlimited) when neither
 * is readable. Exposed for tests and for triqd startup logging.
 */
uint64_t detectMemoryBudget();

} // namespace triq

#endif // TRIQ_COMMON_RESOURCE_HH
