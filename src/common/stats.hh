/**
 * @file
 * Small statistics helpers used when summarizing experiment results
 * (the paper reports geometric means and max improvement factors).
 */

#ifndef TRIQ_COMMON_STATS_HH
#define TRIQ_COMMON_STATS_HH

#include <vector>

namespace triq
{

/** Arithmetic mean. @pre xs non-empty. */
double mean(const std::vector<double> &xs);

/** Geometric mean. @pre xs non-empty, all entries > 0. */
double geomean(const std::vector<double> &xs);

/** Population standard deviation. @pre xs non-empty. */
double stddev(const std::vector<double> &xs);

/** Minimum. @pre xs non-empty. */
double minOf(const std::vector<double> &xs);

/** Maximum. @pre xs non-empty. */
double maxOf(const std::vector<double> &xs);

/** Linear-interpolated quantile, q in [0, 1]. @pre xs non-empty. */
double quantile(std::vector<double> xs, double q);

/**
 * Running statistics accumulator (Welford) for streaming summaries.
 */
class RunningStats
{
  public:
    RunningStats();

    /** Fold one sample into the summary. */
    void push(double x);

    /** Number of samples pushed. */
    long count() const { return n_; }

    double mean() const;
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;

  private:
    long n_;
    double mean_;
    double m2_;
    double min_;
    double max_;
};

} // namespace triq

#endif // TRIQ_COMMON_STATS_HH
