/**
 * @file
 * Structured diagnostics: the error-reporting channel the front ends
 * and input validators use instead of throwing on the first problem.
 *
 * A Diagnostics collector accumulates any number of Diagnostic records
 * (severity, stable code, message, source span), so one run over a
 * malformed program or calibration feed reports *every* problem it can
 * find. Consumers render the collection as human-readable text
 * (`text()`) or machine-readable JSON (`json()`, the `triqc
 * --diag-json` format), or convert it into the legacy throwing contract
 * with `throwIfErrors()`.
 *
 * Error-handling contract (see DESIGN.md, "Error-handling contract"):
 *  - Diagnostics: expected-bad *input* (parse errors, corrupt
 *    calibration). Recoverable, multiple per run, exit code 1.
 *  - FatalError: user-correctable error raised where no collector is
 *    threaded through (CLI misuse, unreadable files). Exit code 1.
 *  - PanicError: internal invariant violation — a TriQ bug. Exit code 2.
 */

#ifndef TRIQ_COMMON_DIAGNOSTICS_HH
#define TRIQ_COMMON_DIAGNOSTICS_HH

#include <string>
#include <vector>

namespace triq
{

/** Diagnostic severity, ordered by increasing badness. */
enum class DiagSeverity
{
    Note,    //!< Informational context for a previous diagnostic.
    Warning, //!< Suspicious but survivable (e.g. a clamped error rate).
    Error,   //!< The input is invalid; the produced artifact is partial.
};

/** Display name: "note" / "warning" / "error". */
const char *diagSeverityName(DiagSeverity s);

/** Half-open source location; 0 means "not applicable". */
struct SourceSpan
{
    int line = 0;
    int col = 0;
};

/** One structured diagnostic record. */
struct Diagnostic
{
    DiagSeverity severity = DiagSeverity::Error;

    /**
     * Stable machine-readable code, kebab-case within a dotted
     * component prefix, e.g. "qasm.unknown-gate", "calib.nan-error-rate".
     */
    std::string code;

    /** Human-readable description of the problem. */
    std::string message;

    /** Where in the input the problem is (0/0 when not positional). */
    SourceSpan span;

    /** Input name: file path, "<string>", "calibration", ... */
    std::string origin;

    /** "origin:line:col: severity: message [code]" (parts omitted if 0). */
    std::string str() const;
};

/**
 * Accumulator for diagnostics produced by one operation.
 *
 * Collectors cap the number of *errors* they record (`maxErrors`,
 * default 64) so a pathological input cannot flood memory: once the cap
 * is reached further errors are counted but not stored, and
 * `truncated()` reports it.
 */
class Diagnostics
{
  public:
    /** @param origin Default origin stamped on added diagnostics. */
    explicit Diagnostics(std::string origin = "") : origin_(std::move(origin))
    {
    }

    /** Record an error (respecting the cap). */
    void error(std::string code, std::string message, SourceSpan span = {});

    /** Record a warning. */
    void warning(std::string code, std::string message, SourceSpan span = {});

    /** Record a note. */
    void note(std::string code, std::string message, SourceSpan span = {});

    /** All recorded diagnostics in insertion order. */
    const std::vector<Diagnostic> &all() const { return diags_; }

    /** True when at least one error was recorded. */
    bool hasErrors() const { return errorCount_ > 0; }

    /** Total errors seen (including ones dropped past the cap). */
    int errorCount() const { return errorCount_; }

    /** Total warnings seen. */
    int warningCount() const { return warningCount_; }

    /** True when errors past the cap were dropped. */
    bool truncated() const { return truncated_; }

    /** Storage cap for error records. */
    int maxErrors = 64;

    /** Append another collector's records (cap still applies). */
    void merge(const Diagnostics &other);

    /** Human-readable rendering, one diagnostic per line. */
    std::string text() const;

    /**
     * Machine-readable rendering: a JSON object
     * {"errors":N,"warnings":N,"truncated":bool,"diagnostics":[...]}.
     */
    std::string json() const;

    /**
     * Bridge to the throwing contract: when errors were recorded, throw
     * FatalError carrying `context` plus the full text rendering.
     */
    void throwIfErrors(const std::string &context) const;

  private:
    void add(DiagSeverity sev, std::string code, std::string message,
             SourceSpan span);

    std::string origin_;
    std::vector<Diagnostic> diags_;
    int errorCount_ = 0;
    int warningCount_ = 0;
    bool truncated_ = false;
};

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace triq

#endif // TRIQ_COMMON_DIAGNOSTICS_HH
