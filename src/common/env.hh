/**
 * @file
 * Environment-variable helpers shared by the executor and the bench
 * harnesses. All TRIQ_* integer knobs (TRIQ_TRIALS, TRIQ_DAY,
 * TRIQ_SIM_THREADS) funnel through envInt so malformed values produce
 * one consistent warn-and-fallback behavior instead of silent atoi
 * garbage.
 */

#ifndef TRIQ_COMMON_ENV_HH
#define TRIQ_COMMON_ENV_HH

namespace triq
{

/**
 * Read an integer environment variable.
 *
 * @param name Variable name, e.g. "TRIQ_TRIALS".
 * @param fallback Value returned when the variable is unset or invalid.
 * @param min_value Smallest accepted value; anything below it (or any
 *        string that is not a plain decimal integer) triggers a warning
 *        and returns `fallback`.
 */
int envInt(const char *name, int fallback, int min_value = 1);

} // namespace triq

#endif // TRIQ_COMMON_ENV_HH
