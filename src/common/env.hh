/**
 * @file
 * Environment-variable helpers shared by the executor and the bench
 * harnesses. All TRIQ_* integer knobs (TRIQ_TRIALS, TRIQ_DAY,
 * TRIQ_SIM_THREADS) funnel through envInt so malformed values produce
 * one consistent warn-and-fallback behavior instead of silent atoi
 * garbage.
 */

#ifndef TRIQ_COMMON_ENV_HH
#define TRIQ_COMMON_ENV_HH

namespace triq
{

/**
 * Read an integer environment variable.
 *
 * @param name Variable name, e.g. "TRIQ_TRIALS".
 * @param fallback Value returned when the variable is unset or invalid.
 * @param min_value Smallest accepted value; anything below it (or any
 *        string that is not a plain decimal integer, e.g.
 *        TRIQ_TRIALS=10x) triggers one warn() line and returns
 *        `fallback` — malformed knobs are never silently ignored.
 */
int envInt(const char *name, int fallback, int min_value = 1);

/**
 * Read a floating-point environment variable (e.g. TRIQ_SWEEP_DRIFT).
 * Same contract as envInt: unset returns `fallback` silently; a
 * malformed or non-finite value, or one below `min_value`, triggers
 * one warn() line and returns `fallback`.
 */
double envDouble(const char *name, double fallback,
                 double min_value = 0.0);

/**
 * Read a byte-count environment variable (e.g. TRIQ_MEM_BUDGET).
 * Accepts a plain decimal byte count or one with a case-insensitive
 * K/M/G/T suffix (KiB multiples: "256M" = 256·2^20), optionally
 * followed by "B"/"iB" ("256MiB"). Unset returns `fallback` silently;
 * a malformed value, one below `min_value`, or one that overflows
 * uint64 triggers one warn() line and returns `fallback`.
 */
unsigned long long envBytes(const char *name, unsigned long long fallback,
                            unsigned long long min_value = 0);

} // namespace triq

#endif // TRIQ_COMMON_ENV_HH
