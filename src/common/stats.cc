#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace triq
{

namespace
{

void
requireNonEmpty(const std::vector<double> &xs, const char *who)
{
    if (xs.empty())
        panic(who, ": empty sample");
}

} // namespace

double
mean(const std::vector<double> &xs)
{
    requireNonEmpty(xs, "mean");
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    requireNonEmpty(xs, "geomean");
    double s = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            fatal("geomean: non-positive sample ", x);
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(xs.size()));
}

double
stddev(const std::vector<double> &xs)
{
    requireNonEmpty(xs, "stddev");
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size()));
}

double
minOf(const std::vector<double> &xs)
{
    requireNonEmpty(xs, "minOf");
    return *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    requireNonEmpty(xs, "maxOf");
    return *std::max_element(xs.begin(), xs.end());
}

double
quantile(std::vector<double> xs, double q)
{
    requireNonEmpty(xs, "quantile");
    q = std::clamp(q, 0.0, 1.0);
    std::sort(xs.begin(), xs.end());
    double pos = q * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

RunningStats::RunningStats()
    : n_(0), mean_(0.0), m2_(0.0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
}

void
RunningStats::push(double x)
{
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::mean() const
{
    if (n_ == 0)
        panic("RunningStats::mean: no samples");
    return mean_;
}

double
RunningStats::variance() const
{
    if (n_ == 0)
        panic("RunningStats::variance: no samples");
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    if (n_ == 0)
        panic("RunningStats::min: no samples");
    return min_;
}

double
RunningStats::max() const
{
    if (n_ == 0)
        panic("RunningStats::max: no samples");
    return max_;
}

} // namespace triq
