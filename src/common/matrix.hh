/**
 * @file
 * Dense complex matrices used for gate unitaries and equivalence checks.
 *
 * These matrices are tiny (2x2 .. 2^n x 2^n for small n in tests), so the
 * implementation favors clarity over blocking/vectorization.
 */

#ifndef TRIQ_COMMON_MATRIX_HH
#define TRIQ_COMMON_MATRIX_HH

#include <initializer_list>
#include <vector>

#include "common/types.hh"

namespace triq
{

/** A dense, row-major complex matrix. */
class Matrix
{
  public:
    /** Construct an empty (0x0) matrix. */
    Matrix();

    /** Construct a rows x cols zero matrix. */
    Matrix(int rows, int cols);

    /** Construct from a nested initializer list (row major). */
    Matrix(std::initializer_list<std::initializer_list<Cplx>> rows);

    /** The n x n identity matrix. */
    static Matrix identity(int n);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    /** Mutable element access. */
    Cplx &at(int r, int c);

    /** Const element access. */
    const Cplx &at(int r, int c) const;

    Cplx &operator()(int r, int c) { return at(r, c); }
    const Cplx &operator()(int r, int c) const { return at(r, c); }

    /** Matrix product this * rhs. */
    Matrix operator*(const Matrix &rhs) const;

    /** Scalar product. */
    Matrix operator*(const Cplx &s) const;

    /** Matrix sum. */
    Matrix operator+(const Matrix &rhs) const;

    /** Kronecker (tensor) product this (x) rhs. */
    Matrix kron(const Matrix &rhs) const;

    /** Conjugate transpose. */
    Matrix dagger() const;

    /** Frobenius norm. */
    double norm() const;

    /** True if this is unitary within tolerance. */
    bool isUnitary(double tol = 1e-9) const;

    /** Entry-wise equality within tolerance. */
    bool approxEqual(const Matrix &rhs, double tol = 1e-9) const;

    /**
     * Equality up to a global phase: true when there exists a unit-modulus
     * scalar c with this == c * rhs (within tolerance). Quantum gates are
     * physically indistinguishable under global phase, so decomposition
     * checks use this.
     */
    bool equalUpToPhase(const Matrix &rhs, double tol = 1e-7) const;

  private:
    int rows_;
    int cols_;
    std::vector<Cplx> data_;
};

} // namespace triq

#endif // TRIQ_COMMON_MATRIX_HH
