/**
 * @file
 * Deterministic fault injection for robustness testing.
 *
 * A FaultInjector corrupts the pipeline's *inputs* — calibration
 * fields, program text, scalar parameters — so tests and bench
 * harnesses can prove the toolflow degrades gracefully (structured
 * diagnostic, clamped value, fallback mapping) instead of crashing.
 * It never touches internal state: the contract under fault injection
 * is "garbage in, diagnostic out", not "garbage in, garbage out".
 *
 * Activation: construct one explicitly, or via fromEnv() which reads
 *   TRIQ_FAULT       fault classes to arm: comma list of
 *                    "calib", "text", "panic", "all" (unset/empty =
 *                    disabled; "all" = calib+text, panic is by name)
 *   TRIQ_FAULT_SEED  decimal seed (default 1); same seed, same faults
 * so any existing binary (triqc, the benches) can be driven into its
 * degradation paths without a rebuild.
 *
 * The injector lives in src/common and therefore only manipulates
 * primitive data (vectors of doubles, strings); layer-specific helpers
 * (e.g. injectCalibrationFaults in src/device) decide which fields to
 * feed it.
 */

#ifndef TRIQ_COMMON_FAULT_INJECTOR_HH
#define TRIQ_COMMON_FAULT_INJECTOR_HH

#include <string>
#include <vector>

#include "common/rng.hh"

namespace triq
{

/** Deterministic corrupter of pipeline inputs. */
class FaultInjector
{
  public:
    /** Which input classes this injector is armed for. */
    struct Classes
    {
        bool calibration = false; //!< Numeric calibration fields.
        bool text = false;        //!< Program source text.

        /**
         * Deterministic internal panic: the driver raises a PanicError
         * at a well-defined pipeline point so the crash-report path
         * (bundle dump + replay) can be exercised end to end. Not part
         * of "all" — a synthetic crash is opt-in by name only, so the
         * garbage-in suites keep their "diagnostic out" contract.
         */
        bool panic = false;
    };

    /** Disabled injector: every operation is a no-op. */
    FaultInjector() = default;

    /** Armed injector with the given classes and seed. */
    FaultInjector(Classes classes, uint64_t seed)
        : classes_(classes), rng_(seed),
          enabled_(classes.calibration || classes.text || classes.panic)
    {
    }

    /** Build from TRIQ_FAULT / TRIQ_FAULT_SEED (disabled when unset). */
    static FaultInjector fromEnv();

    /** True when any fault class is armed. */
    bool enabled() const { return enabled_; }

    /** True when calibration faults are armed. */
    bool armsCalibration() const { return enabled_ && classes_.calibration; }

    /** True when program-text faults are armed. */
    bool armsText() const { return enabled_ && classes_.text; }

    /** True when a synthetic internal panic is armed. */
    bool armsPanic() const { return enabled_ && classes_.panic; }

    /**
     * A pathological double: NaN, +/-infinity, negative, huge, tiny
     * denormal or exact zero, chosen deterministically.
     */
    double pathologicalValue();

    /**
     * Corrupt roughly `rate` of the entries of a numeric field with
     * pathological values. Returns the number of entries hit (0 when
     * calibration faults are not armed).
     */
    int corruptValues(std::vector<double> &values, double rate = 0.25);

    /** Corrupt a scalar in place; returns true when it was hit. */
    bool corruptScalar(double &value);

    /**
     * Corrupt program text: truncate at a random byte, splice garbage
     * bytes (including invalid UTF-8), or duplicate a chunk. No-op
     * (returns input unchanged) when text faults are not armed.
     */
    std::string corruptText(const std::string &source);

    /** Human-readable summary of what was injected so far. */
    std::string summary() const;

  private:
    Classes classes_{};
    Rng rng_{0};
    bool enabled_ = false;
    int calibrationHits_ = 0;
    int textHits_ = 0;
};

} // namespace triq

#endif // TRIQ_COMMON_FAULT_INJECTOR_HH
