#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace triq
{

namespace
{

std::atomic<bool> quietFlag{false};

} // namespace

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet);
}

void
detail::emit(const char *level, const std::string &msg)
{
    bool is_error =
        std::strcmp(level, "panic") == 0 || std::strcmp(level, "fatal") == 0;
    if (!is_error && quietFlag.load())
        return;
    std::fprintf(stderr, "%s: %s\n", level, msg.c_str());
}

} // namespace triq
