/**
 * @file
 * Deterministic pseudo-random number generation for calibration synthesis
 * and noisy-trajectory simulation.
 *
 * We use xoshiro256** (public domain, Blackman & Vigna) rather than
 * std::mt19937 so that streams are cheap to fork: every (device, day) pair
 * and every simulation trial can own an independent, reproducible stream.
 */

#ifndef TRIQ_COMMON_RNG_HH
#define TRIQ_COMMON_RNG_HH

#include <cstdint>
#include <string>

namespace triq
{

/**
 * A small, fast, seedable random number generator (xoshiro256**).
 *
 * All distributions needed by TriQ (uniform, normal, log-normal,
 * Bernoulli, bounded integers) are provided as member functions so
 * call sites never depend on <random> distribution quirks, keeping
 * results identical across standard libraries.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Construct from a string seed, e.g. "ibmq14/day3". */
    explicit Rng(const std::string &seed);

    /** Next raw 64 random bits. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    int uniformInt(int n);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /** Standard normal deviate (Box-Muller, cached pair). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Log-normal deviate parameterized by the *median* m and the
     * multiplicative spread sigma (standard deviation of ln X).
     * Median-parameterization keeps calibration means interpretable.
     */
    double logNormal(double median, double sigma);

    /** Fork an independent stream keyed by an integer tag. */
    Rng fork(uint64_t tag) const;

    /**
     * Deterministic independent stream keyed by (seed, stream index).
     *
     * Unlike fork(), this is a pure function of its arguments: stream
     * (s, i) is the same Rng no matter where or when it is created,
     * which is what makes chunk-sharded trajectory simulation
     * bit-identical across thread counts — every chunk owns stream
     * (seed, chunk_index) regardless of which worker runs it.
     */
    static Rng stream(uint64_t seed, uint64_t stream_index);

  private:
    uint64_t s_[4];
    double cachedNormal_;
    bool hasCachedNormal_;
};

} // namespace triq

#endif // TRIQ_COMMON_RNG_HH
