#include "common/matrix.hh"

#include <cmath>

#include "common/logging.hh"

namespace triq
{

Matrix::Matrix() : rows_(0), cols_(0)
{
}

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * cols, Cplx(0, 0))
{
    if (rows < 0 || cols < 0)
        panic("Matrix: negative dimensions ", rows, "x", cols);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<Cplx>> rows)
    : rows_(static_cast<int>(rows.size())), cols_(0)
{
    for (const auto &row : rows) {
        if (cols_ == 0)
            cols_ = static_cast<int>(row.size());
        else if (static_cast<int>(row.size()) != cols_)
            panic("Matrix: ragged initializer list");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

Matrix
Matrix::identity(int n)
{
    Matrix m(n, n);
    for (int i = 0; i < n; ++i)
        m.at(i, i) = Cplx(1, 0);
    return m;
}

Cplx &
Matrix::at(int r, int c)
{
    if (r < 0 || r >= rows_ || c < 0 || c >= cols_)
        panic("Matrix::at out of range (", r, ",", c, ") in ", rows_, "x",
              cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
}

const Cplx &
Matrix::at(int r, int c) const
{
    return const_cast<Matrix *>(this)->at(r, c);
}

Matrix
Matrix::operator*(const Matrix &rhs) const
{
    if (cols_ != rhs.rows_)
        panic("Matrix multiply shape mismatch: ", rows_, "x", cols_, " * ",
              rhs.rows_, "x", rhs.cols_);
    Matrix out(rows_, rhs.cols_);
    for (int i = 0; i < rows_; ++i) {
        for (int k = 0; k < cols_; ++k) {
            Cplx a = at(i, k);
            if (a == Cplx(0, 0))
                continue;
            for (int j = 0; j < rhs.cols_; ++j)
                out.at(i, j) += a * rhs.at(k, j);
        }
    }
    return out;
}

Matrix
Matrix::operator*(const Cplx &s) const
{
    Matrix out = *this;
    for (auto &v : out.data_)
        v *= s;
    return out;
}

Matrix
Matrix::operator+(const Matrix &rhs) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        panic("Matrix add shape mismatch");
    Matrix out = *this;
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] += rhs.data_[i];
    return out;
}

Matrix
Matrix::kron(const Matrix &rhs) const
{
    Matrix out(rows_ * rhs.rows_, cols_ * rhs.cols_);
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            for (int k = 0; k < rhs.rows_; ++k)
                for (int l = 0; l < rhs.cols_; ++l)
                    out.at(i * rhs.rows_ + k, j * rhs.cols_ + l) =
                        at(i, j) * rhs.at(k, l);
    return out;
}

Matrix
Matrix::dagger() const
{
    Matrix out(cols_, rows_);
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            out.at(j, i) = std::conj(at(i, j));
    return out;
}

double
Matrix::norm() const
{
    double s = 0.0;
    for (const auto &v : data_)
        s += std::norm(v);
    return std::sqrt(s);
}

bool
Matrix::isUnitary(double tol) const
{
    if (rows_ != cols_)
        return false;
    Matrix p = (*this) * dagger();
    return p.approxEqual(identity(rows_), tol);
}

bool
Matrix::approxEqual(const Matrix &rhs, double tol) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        return false;
    for (size_t i = 0; i < data_.size(); ++i)
        if (std::abs(data_[i] - rhs.data_[i]) > tol)
            return false;
    return true;
}

bool
Matrix::equalUpToPhase(const Matrix &rhs, double tol) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        return false;
    // Find the largest-magnitude entry of rhs to estimate the phase.
    size_t imax = 0;
    double best = -1.0;
    for (size_t i = 0; i < rhs.data_.size(); ++i) {
        double m = std::abs(rhs.data_[i]);
        if (m > best) {
            best = m;
            imax = i;
        }
    }
    if (best < tol)
        return norm() < tol;
    Cplx phase = data_[imax] / rhs.data_[imax];
    if (std::abs(std::abs(phase) - 1.0) > tol)
        return false;
    for (size_t i = 0; i < data_.size(); ++i)
        if (std::abs(data_[i] - phase * rhs.data_[i]) > tol)
            return false;
    return true;
}

} // namespace triq
