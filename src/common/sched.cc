#include "common/sched.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace triq
{

namespace
{

using Clock = std::chrono::steady_clock;

double
usSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::micro>(Clock::now() - t0)
        .count();
}

/**
 * Decision tuning. kAmortizeFactor is the ratio of useful work to
 * dispatch overhead each pool task must carry; kSpeedupMargin is the
 * predicted win threaded mode must show before the plan commits to it
 * (the model is deliberately coarse, so near-ties go to serial — the
 * mode whose prediction error costs nothing).
 */
constexpr double kAmortizeFactor = 32.0;
constexpr double kMinTaskUs = 50.0;
constexpr double kSpeedupMargin = 1.25;
constexpr double kTasksPerThread = 4.0;

/** Keep the DCE honest in the calibration loop. */
std::atomic<double> calib_sink{0.0};

} // namespace

SchedCalib
measureSchedCalib()
{
    SchedCalib c;
    c.hardwareThreads = ThreadPool::hardwareThreads();

    // Machine speed: stream 2x2 rotations over a small amplitude
    // array until ~1.5 ms has elapsed. One iteration of the inner
    // loop updates two amplitudes = two "amp ops".
    {
        std::vector<std::complex<double>> amps(size_t{1} << 12,
                                               {1.0, 0.5});
        const std::complex<double> u(0.8, 0.6), v(0.6, -0.8);
        auto t0 = Clock::now();
        double us = 0.0;
        uint64_t ops = 0;
        do {
            for (size_t i = 0; i + 1 < amps.size(); i += 2) {
                std::complex<double> a = amps[i], b = amps[i + 1];
                amps[i] = u * a + v * b;
                amps[i + 1] = v * a - u * b;
            }
            ops += amps.size();
            us = usSince(t0);
        } while (us < 1500.0);
        calib_sink.store(amps[1].real(), std::memory_order_relaxed);
        c.ampOpsPerUs = std::max(1.0, static_cast<double>(ops) / us);
    }

    // Dispatch overhead: spawn a tiny private pool (that cost is the
    // spawn constant), then push one batch of empty jobs through it.
    {
        auto t0 = Clock::now();
        ThreadPool pool(std::min(2, c.hardwareThreads));
        c.poolSpawnUs = std::max(1.0, usSince(t0));

        constexpr int kJobs = 512;
        std::atomic<int> ran{0};
        std::vector<std::function<void()>> jobs;
        jobs.reserve(kJobs);
        for (int i = 0; i < kJobs; ++i)
            jobs.push_back([&ran] {
                ran.fetch_add(1, std::memory_order_relaxed);
            });
        auto t1 = Clock::now();
        pool.submitBatch(std::move(jobs));
        pool.wait();
        double per_task = usSince(t1) / kJobs;
        if (ran.load() != kJobs)
            panic("measureSchedCalib: pool dropped jobs");
        c.perTaskOverheadUs = std::max(0.05, per_task);
    }
    return c;
}

std::optional<SchedCalib>
parseSchedCalib(const std::string &text)
{
    std::vector<double> vals;
    std::istringstream in(text);
    std::string field;
    while (std::getline(in, field, ',')) {
        errno = 0;
        char *end = nullptr;
        double v = std::strtod(field.c_str(), &end);
        if (end == field.c_str() || *end != '\0' || errno != 0 ||
            !std::isfinite(v) || v <= 0.0)
            return std::nullopt;
        vals.push_back(v);
    }
    if (vals.size() != 3 && vals.size() != 4)
        return std::nullopt;
    SchedCalib c;
    c.perTaskOverheadUs = vals[0];
    c.poolSpawnUs = vals[1];
    c.ampOpsPerUs = vals[2];
    c.hardwareThreads = vals.size() == 4
                            ? std::max(1, static_cast<int>(vals[3]))
                            : ThreadPool::hardwareThreads();
    return c;
}

std::string
schedCalibString(const SchedCalib &c)
{
    std::ostringstream out;
    out << c.perTaskOverheadUs << ',' << c.poolSpawnUs << ','
        << c.ampOpsPerUs << ',' << c.hardwareThreads;
    return out.str();
}

const SchedCalib &
schedCalib()
{
    static SchedCalib cached;
    static std::once_flag once;
    std::call_once(once, [] {
        if (const char *env = std::getenv("TRIQ_SCHED_CALIB")) {
            if (auto parsed = parseSchedCalib(env)) {
                cached = *parsed;
                return;
            }
            warn("TRIQ_SCHED_CALIB='", env,
                 "' is not \"overhead_us,spawn_us,amp_ops_per_us"
                 "[,threads]\"; measuring instead");
        }
        cached = measureSchedCalib();
    });
    return cached;
}

SchedDecision
planParallel(const SchedCalib &c, int items, double us_per_item,
             int max_threads, bool pool_hot)
{
    SchedDecision d;
    us_per_item = std::max(us_per_item, 0.0);
    if (items <= 0) {
        d.predictedSerialMs = 0.0;
        d.predictedMs = 0.0;
        return d;
    }
    const double serial_us = items * us_per_item;
    d.predictedSerialMs = serial_us / 1000.0;
    d.predictedMs = d.predictedSerialMs;

    int t = max_threads > 0 ? std::min(max_threads, c.hardwareThreads)
                            : c.hardwareThreads;
    t = std::min(t, items);
    if (t <= 1)
        return d;

    // Batch size: each task must carry kAmortizeFactor x the dispatch
    // overhead (floored at kMinTaskUs of work), but no more than an
    // even one-task-per-worker split — a larger chunk would idle
    // workers without saving any overhead.
    const double min_task_us =
        std::max(kAmortizeFactor * c.perTaskOverheadUs, kMinTaskUs);
    int chunk = us_per_item > 0.0
                    ? static_cast<int>(
                          std::ceil(min_task_us / us_per_item))
                    : items;
    const int even_split = (items + t - 1) / t;
    chunk = std::clamp(chunk, 1, even_split);
    // When the amortized chunk is far below the even split, cap task
    // count at ~kTasksPerThread per worker: finer batches add overhead
    // without improving balance.
    const int balance_chunk = static_cast<int>(std::ceil(
        items / (kTasksPerThread * t)));
    chunk = std::max(chunk, std::max(1, balance_chunk));

    const int tasks = (items + chunk - 1) / chunk;
    const int eff_threads = std::min(t, tasks);
    const double spawn_us = pool_hot ? 0.0 : c.poolSpawnUs;
    const double threaded_us = spawn_us +
                               tasks * c.perTaskOverheadUs +
                               serial_us / eff_threads;
    if (eff_threads < 2 || threaded_us * kSpeedupMargin >= serial_us)
        return d;

    d.threaded = true;
    d.threads = eff_threads;
    d.itemsPerTask = chunk;
    d.tasks = tasks;
    d.predictedMs = threaded_us / 1000.0;
    return d;
}

SchedDecision
planForced(const SchedCalib &c, int items, double us_per_item,
           int threads, bool pool_hot)
{
    if (threads <= 1 || items <= 1) {
        SchedDecision d;
        d.predictedSerialMs =
            std::max(0, items) * std::max(us_per_item, 0.0) / 1000.0;
        d.predictedMs = d.predictedSerialMs;
        return d;
    }
    // Reuse planParallel's batching, then force the threaded mode the
    // caller asked for even when the model predicts a loss.
    SchedDecision d = planParallel(c, items, us_per_item, threads, pool_hot);
    if (!d.threaded) {
        const int t = std::min(threads, items);
        const double min_task_us =
            std::max(kAmortizeFactor * c.perTaskOverheadUs, kMinTaskUs);
        int chunk = us_per_item > 0.0
                        ? static_cast<int>(
                              std::ceil(min_task_us / us_per_item))
                        : items;
        chunk = std::clamp(chunk, 1, (items + t - 1) / t);
        const int tasks = (items + chunk - 1) / chunk;
        d.threaded = true;
        d.threads = std::min(t, tasks);
        d.itemsPerTask = chunk;
        d.tasks = tasks;
        const double spawn_us = pool_hot ? 0.0 : c.poolSpawnUs;
        d.predictedMs = (spawn_us + tasks * c.perTaskOverheadUs +
                         items * std::max(us_per_item, 0.0) / d.threads) /
                        1000.0;
    }
    return d;
}

SchedDecision
planKernel(const SchedCalib &c, double amp_ops, int setting,
           bool pool_hot)
{
    SchedDecision d;
    amp_ops = std::max(amp_ops, 0.0);
    const double serial_us = amp_ops / c.ampOpsPerUs;
    d.predictedSerialMs = serial_us / 1000.0;
    d.predictedMs = d.predictedSerialMs;
    if (setting == 1)
        return d;

    // One shard per worker: the loop is homogeneous, so finer batching
    // would only add dispatch overhead without improving balance.
    const int t = setting > 1 ? setting
                              : std::max(1, c.hardwareThreads);
    if (t <= 1)
        return d;
    const double spawn_us = pool_hot ? 0.0 : c.poolSpawnUs;
    const double threaded_us =
        spawn_us + t * c.perTaskOverheadUs + serial_us / t;
    if (setting == 0 && threaded_us * kSpeedupMargin >= serial_us)
        return d;

    d.threaded = true;
    d.threads = t;
    d.tasks = t;
    d.itemsPerTask = 1;
    d.predictedMs = threaded_us / 1000.0;
    return d;
}

namespace
{

/** Amp ops for one full pass of `gates` gates over a 2^qubits state. */
double
replayOps(int qubits, int gates)
{
    const double dim =
        std::ldexp(1.0, std::clamp(qubits, 0, 40)); // 2^qubits
    // Each gate touches every amplitude once (1Q fast path) to a few
    // times (dense 2Q); call it 2 amp ops per amplitude per gate.
    return 2.0 * dim * std::max(gates, 0);
}

} // namespace

double
estimateChunkUs(const SchedCalib &c, int qubits, int gates,
                int chunk_trials, double faulty_fraction)
{
    faulty_fraction = std::clamp(faulty_fraction, 0.0, 1.0);
    const double dim = std::ldexp(1.0, std::clamp(qubits, 0, 40));
    // A faulty trial replays ~half the circuit on average (prefix
    // checkpoints skip the clean prefix); a fault-free trial costs one
    // sampling scan. Every trial pays its per-site Bernoulli draws,
    // proxied by the gate count.
    const double faulty_ops = 0.5 * replayOps(qubits, gates) + 2.0 * dim;
    const double clean_ops = 2.0 * dim;
    const double draw_ops = 4.0 * std::max(gates, 0);
    const double per_trial = faulty_fraction * faulty_ops +
                             (1.0 - faulty_fraction) * clean_ops +
                             draw_ops;
    return std::max(chunk_trials, 0) * per_trial / c.ampOpsPerUs;
}

double
estimateGroupUs(const SchedCalib &c, int qubits, int gates)
{
    const double dim = std::ldexp(1.0, std::clamp(qubits, 0, 40));
    // One (partially checkpoint-resumed) trajectory plus the shared
    // sampling scan over the final state.
    return (0.5 * replayOps(qubits, gates) + 2.0 * dim) / c.ampOpsPerUs;
}

double
estimatePresampleUs(const SchedCalib &c, int sites, int chunk_trials)
{
    // One Bernoulli per site per trial plus a couple of bookkeeping
    // draws; a Bernoulli is a handful of amp-op-equivalents.
    return std::max(chunk_trials, 0) *
           (6.0 * std::max(sites, 0) + 16.0) / c.ampOpsPerUs;
}

double
estimateCompileUs(const SchedCalib &c, int qubits, int gates_2q,
                  int gates)
{
    // Mapper work scales with interacting pairs x device placements
    // (~gates_2q x qubits^2); routing/translation with total gates.
    const double q = std::max(qubits, 1);
    const double ops = 3000.0 * std::max(gates, 0) +
                       250.0 * std::max(gates_2q, 0) * q * q;
    return ops / c.ampOpsPerUs;
}

} // namespace triq
