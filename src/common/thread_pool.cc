#include "common/thread_pool.hh"

#include "common/logging.hh"

namespace triq
{

ThreadPool::ThreadPool(int num_threads)
{
    if (num_threads < 1)
        panic("ThreadPool: need at least one thread, got ", num_threads);
    workers_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    if (firstError_) {
        std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(e);
    }
}

int
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ with a drained queue
            job = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        try {
            job();
        } catch (...) {
            std::unique_lock<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0)
                allDone_.notify_all();
        }
    }
}

void
parallelFor(ThreadPool &pool, int num_tasks,
            const std::function<void(int)> &fn)
{
    for (int i = 0; i < num_tasks; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace triq
