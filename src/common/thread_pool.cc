#include "common/thread_pool.hh"

#include <atomic>

#include "common/logging.hh"

namespace triq
{

ThreadPool::ThreadPool(int num_threads)
{
    if (num_threads < 1)
        panic("ThreadPool: need at least one thread, got ", num_threads);
    workers_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
    }
    workReady_.notify_one();
}

void
ThreadPool::submitBatch(std::vector<std::function<void()>> jobs)
{
    if (jobs.empty())
        return;
    const size_t n = jobs.size();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (auto &job : jobs)
            queue_.push_back(std::move(job));
    }
    if (n == 1)
        workReady_.notify_one();
    else
        workReady_.notify_all();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    if (firstError_) {
        std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(e);
    }
}

void
ThreadPool::ensureWorkers(int num_threads)
{
    while (size() < num_threads)
        workers_.emplace_back([this] { workerLoop(); });
}

int
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

namespace
{
std::atomic<bool> process_pool_started{false};
} // namespace

ThreadPool &
processPool(int min_workers)
{
    if (min_workers <= 0)
        min_workers = ThreadPool::hardwareThreads();
    // Flag-then-construct: the flag only matters to the scheduler's
    // cost model (is the spawn cost sunk yet?), so flipping it a hair
    // early is harmless even if construction throws.
    process_pool_started.store(true, std::memory_order_relaxed);
    static ThreadPool pool(min_workers);
    pool.ensureWorkers(min_workers);
    return pool;
}

bool
processPoolStarted()
{
    return process_pool_started.load(std::memory_order_relaxed);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ with a drained queue
            job = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        try {
            job();
        } catch (...) {
            std::unique_lock<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0)
                allDone_.notify_all();
        }
    }
}

void
parallelFor(ThreadPool &pool, int num_tasks,
            const std::function<void(int)> &fn)
{
    std::vector<std::function<void()>> jobs;
    jobs.reserve(static_cast<size_t>(num_tasks));
    for (int i = 0; i < num_tasks; ++i)
        jobs.push_back([&fn, i] { fn(i); });
    pool.submitBatch(std::move(jobs));
    pool.wait();
}

void
parallelForRanges(ThreadPool &pool, int num_items, int items_per_task,
                  const std::function<void(int, int)> &fn)
{
    if (num_items <= 0)
        return;
    if (items_per_task < 1)
        items_per_task = 1;
    const int num_tasks =
        (num_items + items_per_task - 1) / items_per_task;
    std::vector<std::function<void()>> jobs;
    jobs.reserve(static_cast<size_t>(num_tasks));
    for (int t = 0; t < num_tasks; ++t) {
        int lo = t * items_per_task;
        int hi = std::min(num_items, lo + items_per_task);
        jobs.push_back([&fn, lo, hi] { fn(lo, hi); });
    }
    pool.submitBatch(std::move(jobs));
    pool.wait();
}

} // namespace triq
