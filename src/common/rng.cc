#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/types.hh"

namespace triq
{

namespace
{

/** splitmix64: used to expand seeds into full xoshiro state. */
uint64_t
splitmix64(uint64_t &x)
{
    uint64_t z = (x += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

/** FNV-1a hash for string seeds. */
uint64_t
hashString(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

Rng::Rng(uint64_t seed) : cachedNormal_(0.0), hasCachedNormal_(false)
{
    uint64_t x = seed;
    for (auto &w : s_)
        w = splitmix64(x);
}

Rng::Rng(const std::string &seed) : Rng(hashString(seed))
{
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int
Rng::uniformInt(int n)
{
    if (n <= 0)
        panic("Rng::uniformInt: n must be positive, got ", n);
    // Rejection sampling to avoid modulo bias.
    uint64_t un = static_cast<uint64_t>(n);
    uint64_t limit = UINT64_MAX - UINT64_MAX % un;
    uint64_t r;
    do {
        r = next();
    } while (r >= limit);
    return static_cast<int>(r % un);
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    cachedNormal_ = r * std::sin(2.0 * kPi * u2);
    hasCachedNormal_ = true;
    return r * std::cos(2.0 * kPi * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::logNormal(double median, double sigma)
{
    if (median <= 0.0)
        panic("Rng::logNormal: median must be positive, got ", median);
    return median * std::exp(sigma * normal());
}

Rng
Rng::stream(uint64_t seed, uint64_t stream_index)
{
    // Two splitmix64 rounds over (seed, index) so that consecutive
    // stream indices land in unrelated xoshiro states.
    uint64_t x = seed;
    uint64_t h = splitmix64(x);
    x = h ^ (stream_index * 0xD1342543DE82EF95ull);
    return Rng(splitmix64(x));
}

Rng
Rng::fork(uint64_t tag) const
{
    // Derive a child seed from the current state and the tag; the parent
    // state is not advanced, so forks are order-independent.
    uint64_t x = s_[0] ^ rotl(s_[2], 13) ^ (tag * 0xD1342543DE82EF95ull);
    return Rng(splitmix64(x));
}

} // namespace triq
