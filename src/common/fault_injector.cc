#include "common/fault_injector.hh"

#include <cstdlib>
#include <limits>
#include <sstream>

#include "common/env.hh"
#include "common/logging.hh"

namespace triq
{

FaultInjector
FaultInjector::fromEnv()
{
    const char *spec = std::getenv("TRIQ_FAULT");
    if (!spec || !*spec)
        return FaultInjector();
    Classes classes;
    std::string s(spec);
    std::istringstream is(s);
    std::string item;
    while (std::getline(is, item, ',')) {
        if (item == "calib" || item == "calibration")
            classes.calibration = true;
        else if (item == "text" || item == "program")
            classes.text = true;
        else if (item == "all")
            classes.calibration = classes.text = true;
        else if (item == "panic")
            classes.panic = true;
        else if (!item.empty())
            warn("TRIQ_FAULT: unknown fault class '", item,
                 "' ignored (known: calib, text, panic, all)");
    }
    if (!classes.calibration && !classes.text && !classes.panic)
        return FaultInjector();
    uint64_t seed =
        static_cast<uint64_t>(envInt("TRIQ_FAULT_SEED", 1, 0));
    warn("fault injection armed (TRIQ_FAULT=", s, ", seed ", seed, ")");
    return FaultInjector(classes, seed);
}

double
FaultInjector::pathologicalValue()
{
    switch (rng_.uniformInt(7)) {
      case 0:
        return std::numeric_limits<double>::quiet_NaN();
      case 1:
        return std::numeric_limits<double>::infinity();
      case 2:
        return -std::numeric_limits<double>::infinity();
      case 3:
        return -rng_.uniform(0.0, 10.0);
      case 4:
        return rng_.uniform(1.0, 1e12); // An "error rate" above 1.
      case 5:
        return std::numeric_limits<double>::denorm_min();
      default:
        return 0.0;
    }
}

int
FaultInjector::corruptValues(std::vector<double> &values, double rate)
{
    if (!armsCalibration())
        return 0;
    int hits = 0;
    for (double &v : values) {
        if (rng_.bernoulli(rate)) {
            v = pathologicalValue();
            ++hits;
        }
    }
    // Guarantee at least one fault per armed call so "injection ran but
    // nothing happened" cannot silently pass a test.
    if (hits == 0 && !values.empty()) {
        values[static_cast<size_t>(
            rng_.uniformInt(static_cast<int>(values.size())))] =
            pathologicalValue();
        hits = 1;
    }
    calibrationHits_ += hits;
    return hits;
}

bool
FaultInjector::corruptScalar(double &value)
{
    if (!armsCalibration())
        return false;
    value = pathologicalValue();
    ++calibrationHits_;
    return true;
}

std::string
FaultInjector::corruptText(const std::string &source)
{
    if (!armsText() || source.empty())
        return source;
    ++textHits_;
    std::string out = source;
    switch (rng_.uniformInt(3)) {
      case 0: {
        // Truncate mid-stream, possibly mid-token.
        size_t cut = static_cast<size_t>(
            rng_.uniformInt(static_cast<int>(out.size())));
        out.resize(cut);
        break;
      }
      case 1: {
        // Splice garbage bytes, including invalid UTF-8 sequences.
        size_t pos = static_cast<size_t>(
            rng_.uniformInt(static_cast<int>(out.size())));
        static const char garbage[] = {'\xff', '\xfe', '\xc0', '\x80',
                                       '\x01', '@',    '\x7f', '\xbf'};
        std::string junk;
        int n = 1 + rng_.uniformInt(8);
        for (int i = 0; i < n; ++i)
            junk += garbage[rng_.uniformInt(
                static_cast<int>(sizeof(garbage)))];
        out.insert(pos, junk);
        break;
      }
      default: {
        // Duplicate a chunk (redeclarations, repeated headers).
        size_t half = out.size() / 2;
        size_t start = static_cast<size_t>(
            rng_.uniformInt(static_cast<int>(half + 1)));
        size_t len = 1 + static_cast<size_t>(rng_.uniformInt(
                             static_cast<int>(out.size() - half)));
        out.insert(start, out.substr(start, len));
        break;
      }
    }
    return out;
}

std::string
FaultInjector::summary() const
{
    std::ostringstream os;
    os << "fault injection: " << calibrationHits_
       << " calibration value(s), " << textHits_
       << " program text mutation(s)";
    return os.str();
}

} // namespace triq
