#include "common/resource.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/env.hh"
#include "common/logging.hh"

namespace triq
{

std::string
formatBytes(uint64_t bytes)
{
    static const char *kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int unit = 0;
    double v = static_cast<double>(bytes);
    while (v >= 1024.0 && unit < 4) {
        v /= 1024.0;
        ++unit;
    }
    char buf[32];
    if (unit == 0)
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    else
        std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
    return buf;
}

uint64_t
ResourceGovernor::budgetBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return budget_;
}

void
ResourceGovernor::setBudgetBytes(uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    budget_ = bytes;
}

uint64_t
ResourceGovernor::committedBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return committed_;
}

bool
ResourceGovernor::wouldFit(uint64_t bytes) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return budget_ == 0 || bytes <= budget_ - std::min(budget_, committed_);
}

bool
ResourceGovernor::tryReserve(uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (budget_ != 0 &&
        bytes > budget_ - std::min(budget_, committed_)) {
        ++stats_.refusals;
        return false;
    }
    committed_ += bytes;
    ++stats_.reservations;
    stats_.peakBytes = std::max(stats_.peakBytes, committed_);
    return true;
}

void
ResourceGovernor::reserve(uint64_t bytes, const std::string &what)
{
    uint64_t budget, committed;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (budget_ == 0 ||
            bytes <= budget_ - std::min(budget_, committed_)) {
            committed_ += bytes;
            ++stats_.reservations;
            stats_.peakBytes = std::max(stats_.peakBytes, committed_);
            return;
        }
        ++stats_.refusals;
        budget = budget_;
        committed = committed_;
    }
    std::ostringstream msg;
    msg << what << " needs " << formatBytes(bytes)
        << " but the memory budget is " << formatBytes(budget) << " ("
        << formatBytes(committed) << " already committed)";
    throw ResourceError(msg.str(), bytes, budget, committed);
}

void
ResourceGovernor::release(uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (bytes > committed_) {
        warn("ResourceGovernor::release(", bytes, ") exceeds committed ",
             committed_, "; clamping");
        bytes = committed_;
    }
    committed_ -= bytes;
}

ResourceStats
ResourceGovernor::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ResourceStats s = stats_;
    s.committedBytes = committed_;
    s.budgetBytes = budget_;
    return s;
}

namespace
{

/** First line of `path` parsed as a decimal u64; 0 when unreadable. */
uint64_t
readLimitFile(const char *path)
{
    std::ifstream in(path);
    if (!in)
        return 0;
    std::string tok;
    in >> tok;
    if (tok.empty() || tok == "max")
        return 0;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || errno != 0)
        return 0;
    // cgroup v1 reports "no limit" as a huge page-rounded sentinel.
    if (v >= (1ULL << 60))
        return 0;
    return v;
}

/** MemAvailable from /proc/meminfo in bytes; 0 when unreadable. */
uint64_t
readMemAvailable()
{
    std::ifstream in("/proc/meminfo");
    std::string key;
    uint64_t kib = 0;
    while (in >> key) {
        if (key == "MemAvailable:") {
            in >> kib;
            return kib * 1024;
        }
        in.ignore(4096, '\n');
    }
    return 0;
}

} // namespace

uint64_t
detectMemoryBudget()
{
    uint64_t tightest = 0;
    for (uint64_t limit : {
             readLimitFile("/sys/fs/cgroup/memory.max"),
             readLimitFile("/sys/fs/cgroup/memory/memory.limit_in_bytes"),
             readMemAvailable(),
         }) {
        if (limit != 0 && (tightest == 0 || limit < tightest))
            tightest = limit;
    }
    return tightest;
}

ResourceGovernor &
processGovernor()
{
    static ResourceGovernor gov = [] {
        uint64_t budget = envBytes("TRIQ_MEM_BUDGET",
                                   detectMemoryBudget());
        return ResourceGovernor(budget);
    }();
    return gov;
}

} // namespace triq
