#include "common/diagnostics.hh"

#include <sstream>

#include "common/logging.hh"

namespace triq
{

const char *
diagSeverityName(DiagSeverity s)
{
    switch (s) {
      case DiagSeverity::Note:
        return "note";
      case DiagSeverity::Warning:
        return "warning";
      case DiagSeverity::Error:
        return "error";
    }
    return "unknown";
}

std::string
Diagnostic::str() const
{
    std::ostringstream os;
    if (!origin.empty())
        os << origin << ":";
    if (span.line > 0) {
        os << span.line << ":";
        if (span.col > 0)
            os << span.col << ":";
    }
    if (os.tellp() > 0)
        os << " ";
    os << diagSeverityName(severity) << ": " << message;
    if (!code.empty())
        os << " [" << code << "]";
    return os.str();
}

void
Diagnostics::add(DiagSeverity sev, std::string code, std::string message,
                 SourceSpan span)
{
    if (sev == DiagSeverity::Error) {
        ++errorCount_;
        if (errorCount_ > maxErrors) {
            truncated_ = true;
            return;
        }
    } else if (sev == DiagSeverity::Warning) {
        ++warningCount_;
    }
    Diagnostic d;
    d.severity = sev;
    d.code = std::move(code);
    d.message = std::move(message);
    d.span = span;
    d.origin = origin_;
    diags_.push_back(std::move(d));
}

void
Diagnostics::error(std::string code, std::string message, SourceSpan span)
{
    add(DiagSeverity::Error, std::move(code), std::move(message), span);
}

void
Diagnostics::warning(std::string code, std::string message, SourceSpan span)
{
    add(DiagSeverity::Warning, std::move(code), std::move(message), span);
}

void
Diagnostics::note(std::string code, std::string message, SourceSpan span)
{
    add(DiagSeverity::Note, std::move(code), std::move(message), span);
}

void
Diagnostics::merge(const Diagnostics &other)
{
    for (const auto &d : other.diags_) {
        if (d.severity == DiagSeverity::Error) {
            ++errorCount_;
            if (errorCount_ > maxErrors) {
                truncated_ = true;
                continue;
            }
        } else if (d.severity == DiagSeverity::Warning) {
            ++warningCount_;
        }
        diags_.push_back(d);
    }
    truncated_ = truncated_ || other.truncated_;
}

std::string
Diagnostics::text() const
{
    std::ostringstream os;
    for (const auto &d : diags_)
        os << d.str() << "\n";
    if (truncated_)
        os << "(further errors suppressed: " << errorCount_
           << " total)\n";
    return os.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::ostringstream os;
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (c < 0x20 || c >= 0x7f) {
                // Escape control bytes and non-ASCII so garbage input
                // (bad UTF-8 from a fuzzed file) still yields valid JSON.
                static const char hex[] = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << static_cast<char>(c);
            }
        }
    }
    return os.str();
}

std::string
Diagnostics::json() const
{
    std::ostringstream os;
    os << "{\"errors\":" << errorCount_
       << ",\"warnings\":" << warningCount_
       << ",\"truncated\":" << (truncated_ ? "true" : "false")
       << ",\"diagnostics\":[";
    bool first = true;
    for (const auto &d : diags_) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"severity\":\"" << diagSeverityName(d.severity)
           << "\",\"code\":\"" << jsonEscape(d.code)
           << "\",\"message\":\"" << jsonEscape(d.message)
           << "\",\"line\":" << d.span.line << ",\"col\":" << d.span.col
           << ",\"origin\":\"" << jsonEscape(d.origin) << "\"}";
    }
    os << "]}";
    return os.str();
}

void
Diagnostics::throwIfErrors(const std::string &context) const
{
    if (!hasErrors())
        return;
    fatal(context, ": ", errorCount_, " error",
          errorCount_ == 1 ? "" : "s", "\n", text());
}

} // namespace triq
