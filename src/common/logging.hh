/**
 * @file
 * Minimal status/error reporting helpers in the spirit of gem5's
 * logging.hh: panic() for internal invariant violations, fatal() for
 * user/configuration errors, warn()/inform() for status messages.
 */

#ifndef TRIQ_COMMON_LOGGING_HH
#define TRIQ_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace triq
{

/** Thrown by panic(): an internal TriQ bug (should never happen). */
struct PanicError : std::logic_error
{
    using std::logic_error::logic_error;
};

/** Thrown by fatal(): a user-correctable error (bad input, bad config). */
struct FatalError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

namespace detail
{

void emit(const char *level, const std::string &msg);

inline void
format(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
format(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    format(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    format(os, args...);
    return os.str();
}

} // namespace detail

/** Report an internal invariant violation and throw PanicError. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::string msg = detail::concat(args...);
    detail::emit("panic", msg);
    throw PanicError(msg);
}

/** Report a user-correctable error and throw FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::string msg = detail::concat(args...);
    detail::emit("fatal", msg);
    throw FatalError(msg);
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(const Args &...args)
{
    detail::emit("warn", detail::concat(args...));
}

/** Report a normal operating status message. */
template <typename... Args>
void
inform(const Args &...args)
{
    detail::emit("info", detail::concat(args...));
}

/** Globally silence warn()/inform() output (used by tests/benches). */
void setQuiet(bool quiet);

} // namespace triq

#endif // TRIQ_COMMON_LOGGING_HH
