/**
 * @file
 * OpenQASM 2.0 importer covering the subset TriQ's IBM backend emits
 * (plus the common qelib1 1Q/2Q gates), enabling round-trip tests and
 * interchange with other toolchains.
 */

#ifndef TRIQ_LANG_QASM_PARSER_HH
#define TRIQ_LANG_QASM_PARSER_HH

#include <string>

#include "common/diagnostics.hh"
#include "core/circuit.hh"

namespace triq
{

/**
 * Parse OpenQASM 2.0 source into a circuit. Supports: one or more qreg
 * declarations (laid out contiguously), creg (sizes checked, bits
 * otherwise ignored), the gates u1/u2/u3/rx/ry/rz/x/y/z/h/s/sdg/t/tdg/
 * cx/cz/cp/cu1/swap/ccx, barrier (whole register or per-qubit) and
 * measure.
 * @throws FatalError on unsupported constructs.
 */
Circuit parseOpenQasm(const std::string &source);

/**
 * Diagnostic-collecting import: records every problem it can find
 * (recovering at statement boundaries) instead of throwing on the
 * first. The returned circuit is partial when `diags.hasErrors()`.
 */
Circuit parseOpenQasm(const std::string &source, Diagnostics &diags);

} // namespace triq

#endif // TRIQ_LANG_QASM_PARSER_HH
