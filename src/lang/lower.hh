/**
 * @file
 * Lowering from the ScaffLite AST to the gate IR: loops unrolled,
 * angle expressions constant-folded, registers laid out contiguously
 * in declaration order. This mirrors ScaffCC's role in the paper's
 * toolflow (Fig. 4): the compiler proper only ever sees a flat gate
 * list with resolved classical control.
 */

#ifndef TRIQ_LANG_LOWER_HH
#define TRIQ_LANG_LOWER_HH

#include "common/diagnostics.hh"
#include "core/circuit.hh"
#include "lang/ast.hh"

namespace triq
{

/**
 * Lower a parsed module to a circuit.
 * @throws FatalError on semantic errors (unknown gates or registers,
 *         out-of-range indices, non-constant loop bounds).
 */
Circuit lowerToCircuit(const Module &module);

/** Convenience: parse + lower a ScaffLite source string. */
Circuit compileScaffLite(const std::string &source);

/**
 * Diagnostic-collecting parse + lower: syntax errors are collected with
 * statement-level recovery, semantic (lowering) errors are recorded as
 * a "scaff.lower" diagnostic. Returns an empty circuit named "invalid"
 * when `diags.hasErrors()`.
 */
Circuit compileScaffLite(const std::string &source, Diagnostics &diags);

/** Convenience: parse + lower a ScaffLite file from disk. */
Circuit compileScaffLiteFile(const std::string &path);

} // namespace triq

#endif // TRIQ_LANG_LOWER_HH
