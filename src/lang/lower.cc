#include "lang/lower.hh"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "common/logging.hh"
#include "lang/parser.hh"

namespace triq
{

namespace
{

/** Lowering context: register layout and loop-variable bindings. */
class Lowerer
{
  public:
    Circuit
    run(const Module &module)
    {
        // First pass: collect register declarations (any nesting level
        // is rejected; qreg must be at module scope).
        int total = 0;
        for (const auto &stmt : module.body) {
            if (stmt->kind != Stmt::Kind::QregDecl)
                continue;
            if (regs_.count(stmt->regName))
                fatal("line ", stmt->line, ": register '", stmt->regName,
                      "' redeclared");
            if (stmt->regSize < 1)
                fatal("line ", stmt->line, ": register '", stmt->regName,
                      "' must have positive size");
            regs_[stmt->regName] = {total,
                                    static_cast<int>(stmt->regSize)};
            total += static_cast<int>(stmt->regSize);
        }
        if (total == 0)
            fatal("module '", module.name, "' declares no qubits");
        circuit_ = Circuit(total, module.name);
        for (const auto &stmt : module.body)
            lowerStmt(*stmt);
        return std::move(circuit_);
    }

  private:
    struct RegInfo
    {
        int offset;
        int size;
    };

    Circuit circuit_{0};
    std::map<std::string, RegInfo> regs_;
    std::map<std::string, double> vars_;

    double
    eval(const Expr &e, int line) const
    {
        switch (e.kind) {
          case Expr::Kind::Number:
            return e.value;
          case Expr::Kind::Var: {
            if (e.name == "pi")
                return kPi;
            auto it = vars_.find(e.name);
            if (it == vars_.end())
                fatal("line ", line, ": unknown variable '", e.name, "'");
            return it->second;
          }
          case Expr::Kind::Unary:
            return -eval(*e.lhs, line);
          case Expr::Kind::Binary: {
            double a = eval(*e.lhs, line);
            double b = eval(*e.rhs, line);
            switch (e.op) {
              case '+':
                return a + b;
              case '-':
                return a - b;
              case '*':
                return a * b;
              case '/':
                if (b == 0.0)
                    fatal("line ", line, ": division by zero");
                return a / b;
              default:
                panic("lower: unknown operator");
            }
          }
        }
        panic("lower: unknown expression kind");
    }

    ProgQubit
    resolve(const QubitRef &ref, int line) const
    {
        auto it = regs_.find(ref.reg);
        if (it == regs_.end())
            fatal("line ", line, ": unknown register '", ref.reg, "'");
        double idxd = eval(*ref.index, line);
        long idx = std::lround(idxd);
        if (std::abs(idxd - static_cast<double>(idx)) > 1e-9)
            fatal("line ", line, ": non-integer qubit index ", idxd);
        if (idx < 0 || idx >= it->second.size)
            fatal("line ", line, ": index ", idx, " out of range for ",
                  ref.reg, "[", it->second.size, "]");
        return it->second.offset + static_cast<int>(idx);
    }

    void
    lowerStmt(const Stmt &stmt)
    {
        switch (stmt.kind) {
          case Stmt::Kind::QregDecl:
            return; // Handled in the first pass.
          case Stmt::Kind::Barrier:
            circuit_.add(Gate::barrier());
            return;
          case Stmt::Kind::Measure:
            circuit_.add(
                Gate::measure(resolve(stmt.operands[0], stmt.line)));
            return;
          case Stmt::Kind::For: {
            long lo = std::lround(eval(*stmt.loopLo, stmt.line));
            long hi = std::lround(eval(*stmt.loopHi, stmt.line));
            if (vars_.count(stmt.loopVar))
                fatal("line ", stmt.line, ": loop variable '",
                      stmt.loopVar, "' shadows an enclosing loop");
            for (long v = lo; v <= hi; ++v) {
                vars_[stmt.loopVar] = static_cast<double>(v);
                for (const auto &inner : stmt.body)
                    lowerStmt(*inner);
            }
            vars_.erase(stmt.loopVar);
            return;
          }
          case Stmt::Kind::GateCall:
            lowerGate(stmt);
            return;
        }
        panic("lower: unknown statement kind");
    }

    void
    lowerGate(const Stmt &stmt)
    {
        std::vector<ProgQubit> qs;
        qs.reserve(stmt.operands.size());
        for (const auto &ref : stmt.operands)
            qs.push_back(resolve(ref, stmt.line));
        std::vector<double> ps;
        ps.reserve(stmt.params.size());
        for (const auto &p : stmt.params)
            ps.push_back(eval(*p, stmt.line));

        auto need = [&](size_t nq, size_t np) {
            if (qs.size() != nq || ps.size() != np)
                fatal("line ", stmt.line, ": gate '", stmt.gateName,
                      "' expects ", nq, " qubits and ", np,
                      " parameters; got ", qs.size(), " and ", ps.size());
        };
        const std::string &n = stmt.gateName;
        if (n == "x") {
            need(1, 0);
            circuit_.add(Gate::x(qs[0]));
        } else if (n == "y") {
            need(1, 0);
            circuit_.add(Gate::y(qs[0]));
        } else if (n == "z") {
            need(1, 0);
            circuit_.add(Gate::z(qs[0]));
        } else if (n == "h") {
            need(1, 0);
            circuit_.add(Gate::h(qs[0]));
        } else if (n == "s") {
            need(1, 0);
            circuit_.add(Gate::s(qs[0]));
        } else if (n == "sdg") {
            need(1, 0);
            circuit_.add(Gate::sdg(qs[0]));
        } else if (n == "t") {
            need(1, 0);
            circuit_.add(Gate::t(qs[0]));
        } else if (n == "tdg") {
            need(1, 0);
            circuit_.add(Gate::tdg(qs[0]));
        } else if (n == "rx") {
            need(1, 1);
            circuit_.add(Gate::rx(qs[0], ps[0]));
        } else if (n == "ry") {
            need(1, 1);
            circuit_.add(Gate::ry(qs[0], ps[0]));
        } else if (n == "rz") {
            need(1, 1);
            circuit_.add(Gate::rz(qs[0], ps[0]));
        } else if (n == "cnot" || n == "cx") {
            need(2, 0);
            circuit_.add(Gate::cnot(qs[0], qs[1]));
        } else if (n == "cz") {
            need(2, 0);
            circuit_.add(Gate::cz(qs[0], qs[1]));
        } else if (n == "cphase" || n == "cu1") {
            need(2, 1);
            circuit_.add(Gate::cphase(qs[0], qs[1], ps[0]));
        } else if (n == "swap") {
            need(2, 0);
            circuit_.add(Gate::swap(qs[0], qs[1]));
        } else if (n == "toffoli" || n == "ccx") {
            need(3, 0);
            circuit_.add(Gate::ccx(qs[0], qs[1], qs[2]));
        } else if (n == "fredkin" || n == "cswap") {
            need(3, 0);
            circuit_.add(Gate::cswap(qs[0], qs[1], qs[2]));
        } else if (n == "ccz") {
            need(3, 0);
            circuit_.add(Gate::ccz(qs[0], qs[1], qs[2]));
        } else {
            fatal("line ", stmt.line, ": unknown gate '", n, "'");
        }
    }
};

} // namespace

Circuit
lowerToCircuit(const Module &module)
{
    return Lowerer().run(module);
}

Circuit
compileScaffLite(const std::string &source)
{
    return lowerToCircuit(parseScaffLite(source));
}

Circuit
compileScaffLite(const std::string &source, Diagnostics &diags)
{
    Module m = parseScaffLite(source, diags);
    if (diags.hasErrors())
        return Circuit(0, "invalid");
    // Lowering stays first-throw internally; route its FatalError into
    // the collector so callers see one uniform channel.
    try {
        return lowerToCircuit(m);
    } catch (const FatalError &e) {
        diags.error("scaff.lower", e.what());
        return Circuit(0, "invalid");
    }
}

Circuit
compileScaffLiteFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open ScaffLite file '", path, "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return compileScaffLite(ss.str());
}

} // namespace triq
