#include "lang/qasm_parser.hh"

#include <cmath>
#include <map>
#include <memory>

#include "common/logging.hh"
#include "lang/lexer.hh"

namespace triq
{

namespace
{

/** OpenQASM 2.0 parser over the shared token stream. */
class QasmParser
{
  public:
    explicit QasmParser(std::vector<Token> toks) : toks_(std::move(toks))
    {
    }

    Circuit
    parse()
    {
        expectIdent("OPENQASM");
        // Version: lexed as a float (2.0).
        if (peek().kind != TokKind::Float && peek().kind != TokKind::Int)
            err(peek(), "expected version number");
        next();
        expectPunct(";");

        // Optional includes: include "qelib1.inc";
        while (peek().isIdent("include")) {
            next();
            if (peek().kind != TokKind::Str)
                err(peek(), "expected include file name");
            next();
            expectPunct(";");
        }

        // Declarations and statements in order; qregs must all appear
        // before the first gate so the register layout is final.
        while (peek().kind != TokKind::End)
            parseStatement();
        if (total_ == 0)
            fatal("OpenQASM: no qreg declared");
        return std::move(*circuit_);
    }

  private:
    std::vector<Token> toks_;
    size_t pos_ = 0;
    struct RegInfo
    {
        int offset;
        int size;
    };
    std::map<std::string, RegInfo> qregs_;
    std::map<std::string, int> cregs_;
    int total_ = 0;
    std::unique_ptr<Circuit> circuit_;
    std::vector<Gate> pending_;

    const Token &peek() const { return toks_[pos_]; }

    const Token &
    next()
    {
        const Token &t = toks_[pos_];
        if (pos_ + 1 < toks_.size())
            ++pos_;
        return t;
    }

    [[noreturn]] void
    err(const Token &t, const std::string &what) const
    {
        fatal("OpenQASM parse error at line ", t.line, ": ", what,
              " (got '", t.text, "')");
    }

    void
    expectPunct(const char *p)
    {
        if (!peek().is(p))
            err(peek(), std::string("expected '") + p + "'");
        next();
    }

    void
    expectIdent(const char *kw)
    {
        if (!peek().isIdent(kw))
            err(peek(), std::string("expected '") + kw + "'");
        next();
    }

    /** Buffer or emit a gate depending on whether qregs are final. */
    void
    emit(const Gate &g)
    {
        ensureCircuit();
        circuit_->add(g);
    }

    void
    ensureCircuit()
    {
        if (!circuit_)
            circuit_ = std::make_unique<Circuit>(total_, "qasm");
    }

    void
    declareQreg(const std::string &name, int size, int line)
    {
        if (circuit_)
            fatal("OpenQASM line ", line,
                  ": qreg declared after first gate (unsupported)");
        if (qregs_.count(name))
            fatal("OpenQASM line ", line, ": qreg '", name,
                  "' redeclared");
        qregs_[name] = {total_, size};
        total_ += size;
    }

    ProgQubit
    parseQubitOperand(int line)
    {
        std::string reg = parseIdent("qubit register");
        expectPunct("[");
        if (peek().kind != TokKind::Int)
            err(peek(), "expected qubit index");
        long idx = next().intValue;
        expectPunct("]");
        auto it = qregs_.find(reg);
        if (it == qregs_.end())
            fatal("OpenQASM line ", line, ": unknown qreg '", reg, "'");
        if (idx < 0 || idx >= it->second.size)
            fatal("OpenQASM line ", line, ": index ", idx,
                  " out of range for ", reg);
        return it->second.offset + static_cast<int>(idx);
    }

    std::string
    parseIdent(const char *what)
    {
        if (peek().kind != TokKind::Ident)
            err(peek(), std::string("expected ") + what);
        return next().text;
    }

    /** Parse an angle expression: literal, pi, products/quotients. */
    double
    parseAngle()
    {
        double v = parseAngleTerm();
        while (peek().is("+") || peek().is("-")) {
            char op = next().text[0];
            double rhs = parseAngleTerm();
            v = op == '+' ? v + rhs : v - rhs;
        }
        return v;
    }

    double
    parseAngleTerm()
    {
        double v = parseAngleFactor();
        while (peek().is("*") || peek().is("/")) {
            char op = next().text[0];
            double rhs = parseAngleFactor();
            if (op == '/' && rhs == 0.0)
                err(peek(), "division by zero in angle");
            v = op == '*' ? v * rhs : v / rhs;
        }
        return v;
    }

    double
    parseAngleFactor()
    {
        if (peek().is("-")) {
            next();
            return -parseAngleFactor();
        }
        if (peek().is("(")) {
            next();
            double v = parseAngle();
            expectPunct(")");
            return v;
        }
        const Token &t = peek();
        if (t.kind == TokKind::Int || t.kind == TokKind::Float) {
            next();
            return t.floatValue;
        }
        if (t.isIdent("pi")) {
            next();
            return kPi;
        }
        err(t, "expected angle");
    }

    void
    parseStatement()
    {
        const Token &t = peek();
        int line = t.line;
        if (t.isIdent("qreg")) {
            next();
            std::string name = parseIdent("qreg name");
            expectPunct("[");
            if (peek().kind != TokKind::Int)
                err(peek(), "expected qreg size");
            int size = static_cast<int>(next().intValue);
            expectPunct("]");
            expectPunct(";");
            declareQreg(name, size, line);
            return;
        }
        if (t.isIdent("creg")) {
            next();
            std::string name = parseIdent("creg name");
            expectPunct("[");
            if (peek().kind != TokKind::Int)
                err(peek(), "expected creg size");
            cregs_[name] = static_cast<int>(next().intValue);
            expectPunct("]");
            expectPunct(";");
            return;
        }
        if (t.isIdent("barrier")) {
            next();
            // Accept "barrier q;" or "barrier q[0],q[1];" — both fence.
            while (!peek().is(";") && peek().kind != TokKind::End)
                next();
            expectPunct(";");
            ensureCircuit();
            circuit_->add(Gate::barrier());
            return;
        }
        if (t.isIdent("measure")) {
            next();
            ProgQubit q = parseQubitOperand(line);
            expectPunct("->");
            parseIdent("creg name");
            expectPunct("[");
            if (peek().kind != TokKind::Int)
                err(peek(), "expected creg index");
            next();
            expectPunct("]");
            expectPunct(";");
            emit(Gate::measure(q));
            return;
        }
        // Gate application.
        std::string name = parseIdent("gate name");
        std::vector<double> params;
        if (peek().is("(")) {
            next();
            if (!peek().is(")")) {
                params.push_back(parseAngle());
                while (peek().is(",")) {
                    next();
                    params.push_back(parseAngle());
                }
            }
            expectPunct(")");
        }
        std::vector<ProgQubit> qs;
        qs.push_back(parseQubitOperand(line));
        while (peek().is(",")) {
            next();
            qs.push_back(parseQubitOperand(line));
        }
        expectPunct(";");
        emitGate(name, params, qs, line);
    }

    void
    emitGate(const std::string &name, const std::vector<double> &p,
             const std::vector<ProgQubit> &q, int line)
    {
        auto need = [&](size_t nq, size_t np) {
            if (q.size() != nq || p.size() != np)
                fatal("OpenQASM line ", line, ": gate '", name,
                      "' expects ", nq, " qubits / ", np, " params");
        };
        if (name == "u1") {
            need(1, 1);
            emit(Gate::u1(q[0], p[0]));
        } else if (name == "u2") {
            need(1, 2);
            emit(Gate::u2(q[0], p[0], p[1]));
        } else if (name == "u3" || name == "U") {
            need(1, 3);
            emit(Gate::u3(q[0], p[0], p[1], p[2]));
        } else if (name == "rx") {
            need(1, 1);
            emit(Gate::rx(q[0], p[0]));
        } else if (name == "ry") {
            need(1, 1);
            emit(Gate::ry(q[0], p[0]));
        } else if (name == "rz") {
            need(1, 1);
            emit(Gate::rz(q[0], p[0]));
        } else if (name == "x") {
            need(1, 0);
            emit(Gate::x(q[0]));
        } else if (name == "y") {
            need(1, 0);
            emit(Gate::y(q[0]));
        } else if (name == "z") {
            need(1, 0);
            emit(Gate::z(q[0]));
        } else if (name == "h") {
            need(1, 0);
            emit(Gate::h(q[0]));
        } else if (name == "s") {
            need(1, 0);
            emit(Gate::s(q[0]));
        } else if (name == "sdg") {
            need(1, 0);
            emit(Gate::sdg(q[0]));
        } else if (name == "t") {
            need(1, 0);
            emit(Gate::t(q[0]));
        } else if (name == "tdg") {
            need(1, 0);
            emit(Gate::tdg(q[0]));
        } else if (name == "id") {
            need(1, 0);
            emit(Gate::i(q[0]));
        } else if (name == "cx" || name == "CX") {
            need(2, 0);
            emit(Gate::cnot(q[0], q[1]));
        } else if (name == "cz") {
            need(2, 0);
            emit(Gate::cz(q[0], q[1]));
        } else if (name == "cp" || name == "cu1") {
            need(2, 1);
            emit(Gate::cphase(q[0], q[1], p[0]));
        } else if (name == "swap") {
            need(2, 0);
            emit(Gate::swap(q[0], q[1]));
        } else if (name == "ccx") {
            need(3, 0);
            emit(Gate::ccx(q[0], q[1], q[2]));
        } else {
            fatal("OpenQASM line ", line, ": unsupported gate '", name,
                  "'");
        }
    }
};

} // namespace

Circuit
parseOpenQasm(const std::string &source)
{
    return QasmParser(tokenize(source)).parse();
}

} // namespace triq
