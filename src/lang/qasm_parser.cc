#include "lang/qasm_parser.hh"

#include <cmath>
#include <map>
#include <memory>

#include "common/logging.hh"
#include "lang/lexer.hh"

namespace triq
{

namespace
{

/**
 * Importer cap on total declared qubits: far above any simulable or
 * mappable size, low enough that a fuzzed "qreg q[999999999]" cannot
 * drive a giant allocation.
 */
constexpr int kMaxQubits = 4096;

/** Thrown to unwind to the nearest statement-level recovery point. */
struct ParseBail
{
};

/** OpenQASM 2.0 parser over the shared token stream. */
class QasmParser
{
  public:
    QasmParser(std::vector<Token> toks, Diagnostics &diags)
        : toks_(std::move(toks)), diags_(diags)
    {
    }

    Circuit
    parse()
    {
        try {
            expectIdent("OPENQASM");
            // Version: lexed as a float (2.0).
            if (peek().kind != TokKind::Float &&
                peek().kind != TokKind::Int)
                err(peek(), "expected version number");
            next();
            expectPunct(";");

            // Optional includes: include "qelib1.inc";
            while (peek().isIdent("include")) {
                next();
                if (peek().kind != TokKind::Str)
                    err(peek(), "expected include file name");
                next();
                expectPunct(";");
            }
        } catch (const ParseBail &) {
            syncToStmt();
        }

        // Declarations and statements in order; qregs must all appear
        // before the first gate so the register layout is final.
        while (peek().kind != TokKind::End && !tooManyErrors()) {
            try {
                parseStatement();
            } catch (const ParseBail &) {
                syncToStmt();
            }
        }
        if (total_ == 0)
            diags_.error("qasm.no-qreg", "no qreg declared");
        ensureCircuit();
        return std::move(*circuit_);
    }

  private:
    std::vector<Token> toks_;
    Diagnostics &diags_;
    size_t pos_ = 0;
    struct RegInfo
    {
        int offset;
        int size;
    };
    std::map<std::string, RegInfo> qregs_;
    std::map<std::string, int> cregs_;
    int total_ = 0;
    std::unique_ptr<Circuit> circuit_;
    std::vector<Gate> pending_;

    const Token &peek() const { return toks_[pos_]; }

    const Token &
    next()
    {
        const Token &t = toks_[pos_];
        if (pos_ + 1 < toks_.size())
            ++pos_;
        return t;
    }

    bool
    tooManyErrors() const
    {
        return diags_.errorCount() >= diags_.maxErrors;
    }

    /** Recovery: skip to just past the next ';' (or end of input). */
    void
    syncToStmt()
    {
        while (peek().kind != TokKind::End)
            if (next().is(";"))
                return;
    }

    [[noreturn]] void
    err(const Token &t, const std::string &what)
    {
        diags_.error("qasm.parse",
                     what + (t.kind == TokKind::End
                                 ? " (at end of input)"
                                 : " (got '" + t.text + "')"),
                     {t.line, t.col});
        throw ParseBail{};
    }

    /** Semantic error anchored to a statement's first line. */
    [[noreturn]] void
    errAt(int line, std::string code, std::string what)
    {
        diags_.error(std::move(code), std::move(what), {line, 0});
        throw ParseBail{};
    }

    void
    expectPunct(const char *p)
    {
        if (!peek().is(p))
            err(peek(), std::string("expected '") + p + "'");
        next();
    }

    void
    expectIdent(const char *kw)
    {
        if (!peek().isIdent(kw))
            err(peek(), std::string("expected '") + kw + "'");
        next();
    }

    /** Buffer or emit a gate depending on whether qregs are final. */
    void
    emit(const Gate &g)
    {
        ensureCircuit();
        circuit_->add(g);
    }

    void
    ensureCircuit()
    {
        if (!circuit_)
            circuit_ = std::make_unique<Circuit>(total_, "qasm");
    }

    void
    declareQreg(const std::string &name, int size, int line)
    {
        if (circuit_)
            errAt(line, "qasm.late-qreg",
                  "qreg declared after first gate (unsupported)");
        if (qregs_.count(name))
            errAt(line, "qasm.redeclared-qreg",
                  "qreg '" + name + "' redeclared");
        if (size <= 0)
            errAt(line, "qasm.bad-qreg-size",
                  "qreg '" + name + "' has non-positive size " +
                      std::to_string(size));
        if (total_ > kMaxQubits - size)
            errAt(line, "qasm.too-many-qubits",
                  "qreg '" + name + "' overflows the " +
                      std::to_string(kMaxQubits) + "-qubit importer cap");
        qregs_[name] = {total_, size};
        total_ += size;
    }

    /**
     * A syntactically-parsed qubit operand, not yet resolved against
     * the declared registers. Keeping syntax and resolution separate
     * lets a statement be consumed in full before semantic checks run,
     * so a semantic error never desynchronizes statement recovery.
     */
    struct RawOperand
    {
        std::string reg;
        long idx;
        int line;
    };

    RawOperand
    parseRawOperand()
    {
        RawOperand r;
        r.line = peek().line;
        r.reg = parseIdent("qubit register");
        expectPunct("[");
        if (peek().kind != TokKind::Int)
            err(peek(), "expected qubit index");
        r.idx = next().intValue;
        expectPunct("]");
        return r;
    }

    ProgQubit
    resolveOperand(const RawOperand &r)
    {
        auto it = qregs_.find(r.reg);
        if (it == qregs_.end())
            errAt(r.line, "qasm.unknown-qreg",
                  "unknown qreg '" + r.reg + "'");
        if (r.idx < 0 || r.idx >= it->second.size)
            errAt(r.line, "qasm.index-out-of-range",
                  "index " + std::to_string(r.idx) +
                      " out of range for " + r.reg);
        return it->second.offset + static_cast<int>(r.idx);
    }

    std::string
    parseIdent(const char *what)
    {
        if (peek().kind != TokKind::Ident)
            err(peek(), std::string("expected ") + what);
        return next().text;
    }

    /** Parse an angle expression: literal, pi, products/quotients. */
    double
    parseAngle()
    {
        double v = parseAngleTerm();
        while (peek().is("+") || peek().is("-")) {
            char op = next().text[0];
            double rhs = parseAngleTerm();
            v = op == '+' ? v + rhs : v - rhs;
        }
        return v;
    }

    double
    parseAngleTerm()
    {
        double v = parseAngleFactor();
        while (peek().is("*") || peek().is("/")) {
            char op = next().text[0];
            double rhs = parseAngleFactor();
            if (op == '/' && rhs == 0.0)
                err(peek(), "division by zero in angle");
            v = op == '*' ? v * rhs : v / rhs;
        }
        return v;
    }

    double
    parseAngleFactor()
    {
        if (peek().is("-")) {
            next();
            return -parseAngleFactor();
        }
        if (peek().is("(")) {
            next();
            double v = parseAngle();
            expectPunct(")");
            return v;
        }
        const Token &t = peek();
        if (t.kind == TokKind::Int || t.kind == TokKind::Float) {
            next();
            return t.floatValue;
        }
        if (t.isIdent("pi")) {
            next();
            return kPi;
        }
        err(t, "expected angle");
    }

    void
    parseStatement()
    {
        const Token &t = peek();
        int line = t.line;
        if (t.isIdent("qreg")) {
            next();
            std::string name = parseIdent("qreg name");
            expectPunct("[");
            if (peek().kind != TokKind::Int)
                err(peek(), "expected qreg size");
            int size = static_cast<int>(next().intValue);
            expectPunct("]");
            expectPunct(";");
            // Syntax is fully consumed; a semantic failure here must
            // not resynchronize (that would swallow the next stmt).
            try {
                declareQreg(name, size, line);
            } catch (const ParseBail &) {
            }
            return;
        }
        if (t.isIdent("creg")) {
            next();
            std::string name = parseIdent("creg name");
            expectPunct("[");
            if (peek().kind != TokKind::Int)
                err(peek(), "expected creg size");
            cregs_[name] = static_cast<int>(next().intValue);
            expectPunct("]");
            expectPunct(";");
            return;
        }
        if (t.isIdent("barrier")) {
            next();
            // Accept "barrier q;" or "barrier q[0],q[1];" — both fence.
            while (!peek().is(";") && peek().kind != TokKind::End)
                next();
            expectPunct(";");
            ensureCircuit();
            circuit_->add(Gate::barrier());
            return;
        }
        if (t.isIdent("measure")) {
            next();
            RawOperand raw = parseRawOperand();
            expectPunct("->");
            parseIdent("creg name");
            expectPunct("[");
            if (peek().kind != TokKind::Int)
                err(peek(), "expected creg index");
            next();
            expectPunct("]");
            expectPunct(";");
            try {
                emit(Gate::measure(resolveOperand(raw)));
            } catch (const ParseBail &) {
            }
            return;
        }
        // Gate application.
        std::string name = parseIdent("gate name");
        std::vector<double> params;
        if (peek().is("(")) {
            next();
            if (!peek().is(")")) {
                params.push_back(parseAngle());
                while (peek().is(",")) {
                    next();
                    params.push_back(parseAngle());
                }
            }
            expectPunct(")");
        }
        std::vector<RawOperand> raws;
        raws.push_back(parseRawOperand());
        while (peek().is(",")) {
            next();
            raws.push_back(parseRawOperand());
        }
        expectPunct(";");
        try {
            std::vector<ProgQubit> qs;
            qs.reserve(raws.size());
            for (const RawOperand &r : raws)
                qs.push_back(resolveOperand(r));
            emitGate(name, params, qs, line);
        } catch (const ParseBail &) {
        }
    }

    void
    emitGate(const std::string &name, const std::vector<double> &p,
             const std::vector<ProgQubit> &q, int line)
    {
        auto need = [&](size_t nq, size_t np) {
            if (q.size() != nq || p.size() != np)
                errAt(line, "qasm.bad-arity",
                      "gate '" + name + "' expects " +
                          std::to_string(nq) + " qubits / " +
                          std::to_string(np) + " params");
        };
        if (name == "u1") {
            need(1, 1);
            emit(Gate::u1(q[0], p[0]));
        } else if (name == "u2") {
            need(1, 2);
            emit(Gate::u2(q[0], p[0], p[1]));
        } else if (name == "u3" || name == "U") {
            need(1, 3);
            emit(Gate::u3(q[0], p[0], p[1], p[2]));
        } else if (name == "rx") {
            need(1, 1);
            emit(Gate::rx(q[0], p[0]));
        } else if (name == "ry") {
            need(1, 1);
            emit(Gate::ry(q[0], p[0]));
        } else if (name == "rz") {
            need(1, 1);
            emit(Gate::rz(q[0], p[0]));
        } else if (name == "x") {
            need(1, 0);
            emit(Gate::x(q[0]));
        } else if (name == "y") {
            need(1, 0);
            emit(Gate::y(q[0]));
        } else if (name == "z") {
            need(1, 0);
            emit(Gate::z(q[0]));
        } else if (name == "h") {
            need(1, 0);
            emit(Gate::h(q[0]));
        } else if (name == "s") {
            need(1, 0);
            emit(Gate::s(q[0]));
        } else if (name == "sdg") {
            need(1, 0);
            emit(Gate::sdg(q[0]));
        } else if (name == "t") {
            need(1, 0);
            emit(Gate::t(q[0]));
        } else if (name == "tdg") {
            need(1, 0);
            emit(Gate::tdg(q[0]));
        } else if (name == "id") {
            need(1, 0);
            emit(Gate::i(q[0]));
        } else if (name == "cx" || name == "CX") {
            need(2, 0);
            emit(Gate::cnot(q[0], q[1]));
        } else if (name == "cz") {
            need(2, 0);
            emit(Gate::cz(q[0], q[1]));
        } else if (name == "cp" || name == "cu1") {
            need(2, 1);
            emit(Gate::cphase(q[0], q[1], p[0]));
        } else if (name == "swap") {
            need(2, 0);
            emit(Gate::swap(q[0], q[1]));
        } else if (name == "ccx") {
            need(3, 0);
            emit(Gate::ccx(q[0], q[1], q[2]));
        } else {
            errAt(line, "qasm.unknown-gate",
                  "unsupported gate '" + name + "'");
        }
    }
};

} // namespace

Circuit
parseOpenQasm(const std::string &source)
{
    Diagnostics diags("<qasm>");
    Circuit c = parseOpenQasm(source, diags);
    diags.throwIfErrors("OpenQASM parse");
    return c;
}

Circuit
parseOpenQasm(const std::string &source, Diagnostics &diags)
{
    return QasmParser(tokenize(source, diags), diags).parse();
}

} // namespace triq
