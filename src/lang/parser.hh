/**
 * @file
 * Recursive-descent parser for ScaffLite (see ast.hh for the grammar by
 * example). Produces a Module; lowering to the gate IR happens in
 * lang/lower.hh.
 */

#ifndef TRIQ_LANG_PARSER_HH
#define TRIQ_LANG_PARSER_HH

#include <string>

#include "lang/ast.hh"

namespace triq
{

/**
 * Parse a ScaffLite source string into a Module.
 * @throws FatalError with line/column context on syntax errors.
 */
Module parseScaffLite(const std::string &source);

} // namespace triq

#endif // TRIQ_LANG_PARSER_HH
