/**
 * @file
 * Recursive-descent parser for ScaffLite (see ast.hh for the grammar by
 * example). Produces a Module; lowering to the gate IR happens in
 * lang/lower.hh.
 */

#ifndef TRIQ_LANG_PARSER_HH
#define TRIQ_LANG_PARSER_HH

#include <string>

#include "common/diagnostics.hh"
#include "lang/ast.hh"

namespace triq
{

/**
 * Parse a ScaffLite source string into a Module.
 * @throws FatalError with line/column context on syntax errors.
 */
Module parseScaffLite(const std::string &source);

/**
 * Diagnostic-collecting parse: records every syntax error it can find
 * (recovering at statement boundaries) instead of throwing on the
 * first. The returned Module is partial when `diags.hasErrors()`.
 */
Module parseScaffLite(const std::string &source, Diagnostics &diags);

} // namespace triq

#endif // TRIQ_LANG_PARSER_HH
