/**
 * @file
 * ScaffLite exporter: serialize a program-level circuit back into the
 * frontend language. Closes the loop for program interchange — every
 * built-in benchmark ships as a .scaff file generated through this
 * writer, and the round trip (write -> parse -> lower) is tested to be
 * unitary-exact.
 */

#ifndef TRIQ_LANG_SCAFF_WRITER_HH
#define TRIQ_LANG_SCAFF_WRITER_HH

#include <string>

#include "core/circuit.hh"

namespace triq
{

/**
 * Serialize a circuit as a ScaffLite module.
 *
 * Supported kinds: everything the frontend can parse (fixed 1Q gates,
 * Rx/Ry/Rz rotations, CNOT/CZ/CPhase/SWAP, Toffoli/Fredkin/CCZ,
 * Measure, Barrier). Device-level kinds (U1/U2/U3/Rxy/XX) are rejected:
 * export the program, not the compiled artifact.
 *
 * @param c Program circuit.
 * @param module_name Module identifier; defaults to the circuit name
 *        (sanitized), or "main".
 */
std::string toScaffLite(const Circuit &c, std::string module_name = "");

} // namespace triq

#endif // TRIQ_LANG_SCAFF_WRITER_HH
