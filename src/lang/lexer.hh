/**
 * @file
 * Shared lexer for the ScaffLite frontend and the OpenQASM importer.
 *
 * ScaffLite is this repo's stand-in for the Scaffold/ScaffCC toolchain
 * (Sec. 4.1): a small C-like quantum language. The lexer produces a
 * vendor-neutral token stream: identifiers, integer/float literals,
 * punctuation and a few multi-character operators ("->", "..").
 */

#ifndef TRIQ_LANG_LEXER_HH
#define TRIQ_LANG_LEXER_HH

#include <string>
#include <vector>

#include "common/diagnostics.hh"

namespace triq
{

/** Token categories. */
enum class TokKind
{
    Ident,  //!< identifier or keyword
    Int,    //!< integer literal
    Float,  //!< floating literal
    Str,    //!< double-quoted string literal (text excludes quotes)
    Punct,  //!< single or multi character punctuation
    End,    //!< end of input
};

/** One lexed token with source position for diagnostics. */
struct Token
{
    TokKind kind;
    std::string text;
    long intValue = 0;
    double floatValue = 0.0;
    int line = 0;
    int col = 0;

    /** True when this token is the punctuation `p`. */
    bool is(const char *p) const;

    /** True when this token is the identifier/keyword `kw`. */
    bool isIdent(const char *kw) const;
};

/**
 * Tokenize a source string.
 *
 * Comments: both C++-style ("// ...") and C-style slash-star blocks.
 * @throws FatalError on malformed input (bad characters, unterminated
 *         comments).
 */
std::vector<Token> tokenize(const std::string &source);

/**
 * Diagnostic-collecting tokenizer: never throws on bad input. Malformed
 * bytes are recorded in `diags` and skipped, unterminated comments and
 * strings are recorded and closed at end of input, and lexing continues
 * so one pass reports every lexical problem. The returned stream always
 * ends with a TokKind::End token.
 */
std::vector<Token> tokenize(const std::string &source, Diagnostics &diags);

} // namespace triq

#endif // TRIQ_LANG_LEXER_HH
