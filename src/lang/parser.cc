#include "lang/parser.hh"

#include "common/logging.hh"
#include "lang/lexer.hh"

namespace triq
{

namespace
{

/** Thrown to unwind to the nearest statement-level recovery point. */
struct ParseBail
{
};

/** Token-stream cursor with error helpers and statement recovery. */
class Parser
{
  public:
    Parser(std::vector<Token> toks, Diagnostics &diags)
        : toks_(std::move(toks)), diags_(diags)
    {
    }

    Module
    parseModule()
    {
        Module m;
        try {
            expectIdent("module");
            m.name = expectAnyIdent("module name");
            expectPunct("{");
        } catch (const ParseBail &) {
            // Without a module header there is nothing to recover into.
            return m;
        }
        while (!peek().is("}") && peek().kind != TokKind::End &&
               !tooManyErrors()) {
            try {
                m.body.push_back(parseStmt());
            } catch (const ParseBail &) {
                syncToStmt();
            }
        }
        try {
            expectPunct("}");
            if (peek().kind != TokKind::End)
                err(peek(), "trailing input after module");
        } catch (const ParseBail &) {
        }
        return m;
    }

  private:
    std::vector<Token> toks_;
    Diagnostics &diags_;
    size_t pos_ = 0;

    const Token &peek(size_t ahead = 0) const
    {
        size_t i = std::min(pos_ + ahead, toks_.size() - 1);
        return toks_[i];
    }

    const Token &
    next()
    {
        const Token &t = toks_[std::min(pos_, toks_.size() - 1)];
        if (pos_ + 1 < toks_.size())
            ++pos_;
        return t;
    }

    bool
    tooManyErrors() const
    {
        return diags_.errorCount() >= diags_.maxErrors;
    }

    /**
     * Recovery: skip to just past the next ';' (or stop before '}' /
     * end of input) so the statement loop can continue. Guarantees
     * progress whenever the cursor is not already at '}' or End.
     */
    void
    syncToStmt()
    {
        while (peek().kind != TokKind::End && !peek().is("}")) {
            if (next().is(";"))
                return;
        }
    }

    [[noreturn]] void
    err(const Token &t, const std::string &what)
    {
        diags_.error("scaff.parse",
                     what + (t.kind == TokKind::End
                                 ? " (at end of input)"
                                 : " (got '" + t.text + "')"),
                     {t.line, t.col});
        throw ParseBail{};
    }

    void
    expectPunct(const char *p)
    {
        if (!peek().is(p))
            err(peek(), std::string("expected '") + p + "'");
        next();
    }

    void
    expectIdent(const char *kw)
    {
        if (!peek().isIdent(kw))
            err(peek(), std::string("expected '") + kw + "'");
        next();
    }

    std::string
    expectAnyIdent(const char *what)
    {
        if (peek().kind != TokKind::Ident)
            err(peek(), std::string("expected ") + what);
        return next().text;
    }

    std::unique_ptr<Stmt>
    parseStmt()
    {
        auto stmt = std::make_unique<Stmt>();
        stmt->line = peek().line;
        if (peek().isIdent("qreg")) {
            next();
            stmt->kind = Stmt::Kind::QregDecl;
            stmt->regName = expectAnyIdent("register name");
            expectPunct("[");
            if (peek().kind != TokKind::Int)
                err(peek(), "expected register size");
            stmt->regSize = next().intValue;
            expectPunct("]");
            expectPunct(";");
            return stmt;
        }
        if (peek().isIdent("for")) {
            next();
            stmt->kind = Stmt::Kind::For;
            stmt->loopVar = expectAnyIdent("loop variable");
            expectIdent("in");
            stmt->loopLo = parseExpr();
            expectPunct("..");
            stmt->loopHi = parseExpr();
            expectPunct("{");
            while (!peek().is("}") && peek().kind != TokKind::End &&
                   !tooManyErrors()) {
                try {
                    stmt->body.push_back(parseStmt());
                } catch (const ParseBail &) {
                    syncToStmt();
                }
            }
            expectPunct("}");
            return stmt;
        }
        if (peek().isIdent("measure")) {
            next();
            stmt->kind = Stmt::Kind::Measure;
            stmt->operands.push_back(parseQubitRef());
            expectPunct(";");
            return stmt;
        }
        if (peek().isIdent("barrier")) {
            next();
            stmt->kind = Stmt::Kind::Barrier;
            expectPunct(";");
            return stmt;
        }
        // Gate call: name (params)? operand (, operand)* ;
        stmt->kind = Stmt::Kind::GateCall;
        stmt->gateName = expectAnyIdent("gate name");
        if (peek().is("(")) {
            next();
            if (!peek().is(")")) {
                stmt->params.push_back(parseExpr());
                while (peek().is(",")) {
                    next();
                    stmt->params.push_back(parseExpr());
                }
            }
            expectPunct(")");
        }
        stmt->operands.push_back(parseQubitRef());
        while (peek().is(",")) {
            next();
            stmt->operands.push_back(parseQubitRef());
        }
        expectPunct(";");
        return stmt;
    }

    QubitRef
    parseQubitRef()
    {
        QubitRef ref;
        ref.reg = expectAnyIdent("register name");
        expectPunct("[");
        ref.index = parseExpr();
        expectPunct("]");
        return ref;
    }

    // expr := term (('+' | '-') term)*
    // term := factor (('*' | '/') factor)*
    // factor := number | ident | '-' factor | '(' expr ')'
    std::unique_ptr<Expr>
    parseExpr()
    {
        auto lhs = parseTerm();
        while (peek().is("+") || peek().is("-")) {
            char op = next().text[0];
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Binary;
            node->op = op;
            node->lhs = std::move(lhs);
            node->rhs = parseTerm();
            lhs = std::move(node);
        }
        return lhs;
    }

    std::unique_ptr<Expr>
    parseTerm()
    {
        auto lhs = parseFactor();
        while (peek().is("*") || peek().is("/")) {
            char op = next().text[0];
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Binary;
            node->op = op;
            node->lhs = std::move(lhs);
            node->rhs = parseFactor();
            lhs = std::move(node);
        }
        return lhs;
    }

    std::unique_ptr<Expr>
    parseFactor()
    {
        auto node = std::make_unique<Expr>();
        if (peek().is("-")) {
            next();
            node->kind = Expr::Kind::Unary;
            node->lhs = parseFactor();
            return node;
        }
        if (peek().is("(")) {
            next();
            node = parseExpr();
            expectPunct(")");
            return node;
        }
        const Token &t = peek();
        if (t.kind == TokKind::Int || t.kind == TokKind::Float) {
            node->kind = Expr::Kind::Number;
            node->value = t.floatValue;
            next();
            return node;
        }
        if (t.kind == TokKind::Ident) {
            node->kind = Expr::Kind::Var;
            node->name = t.text;
            next();
            return node;
        }
        err(t, "expected expression");
    }
};

} // namespace

Module
parseScaffLite(const std::string &source)
{
    Diagnostics diags("<scafflite>");
    Module m = parseScaffLite(source, diags);
    diags.throwIfErrors("ScaffLite parse");
    return m;
}

Module
parseScaffLite(const std::string &source, Diagnostics &diags)
{
    return Parser(tokenize(source, diags), diags).parseModule();
}

} // namespace triq
