/**
 * @file
 * Abstract syntax tree of the ScaffLite language.
 *
 * ScaffLite programs are C-like modules:
 *
 *   module main {
 *       qreg q[4];
 *       x q[3];
 *       for i in 0..3 { h q[i]; }
 *       cnot q[0], q[3];
 *       measure q[0];
 *   }
 *
 * Like ScaffCC (Sec. 4.1), all classical control is resolved at compile
 * time: loop bounds and angle expressions must fold to constants during
 * lowering.
 */

#ifndef TRIQ_LANG_AST_HH
#define TRIQ_LANG_AST_HH

#include <memory>
#include <string>
#include <vector>

namespace triq
{

/** Arithmetic expression node (constant-folded during lowering). */
struct Expr
{
    enum class Kind
    {
        Number, //!< literal (value)
        Var,    //!< loop variable or named constant (name)
        Unary,  //!< -operand (lhs)
        Binary, //!< lhs op rhs, op in {+,-,*,/}
    };

    Kind kind;
    double value = 0.0;
    std::string name;
    char op = 0;
    std::unique_ptr<Expr> lhs;
    std::unique_ptr<Expr> rhs;
};

/** A qubit reference: register name + index expression. */
struct QubitRef
{
    std::string reg;
    std::unique_ptr<Expr> index;
};

/** Statement node. */
struct Stmt
{
    enum class Kind
    {
        QregDecl, //!< qreg name[size];
        GateCall, //!< name(params...) operands...;
        Measure,  //!< measure operand;
        For,      //!< for var in lo..hi { body }
        Barrier,  //!< barrier;
    };

    Kind kind;

    // QregDecl
    std::string regName;
    long regSize = 0;

    // GateCall
    std::string gateName;
    std::vector<std::unique_ptr<Expr>> params;
    std::vector<QubitRef> operands;

    // For
    std::string loopVar;
    std::unique_ptr<Expr> loopLo;
    std::unique_ptr<Expr> loopHi;
    std::vector<std::unique_ptr<Stmt>> body;

    int line = 0;
};

/** A parsed ScaffLite module. */
struct Module
{
    std::string name;
    std::vector<std::unique_ptr<Stmt>> body;
};

} // namespace triq

#endif // TRIQ_LANG_AST_HH
