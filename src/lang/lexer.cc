#include "lang/lexer.hh"

#include <cctype>
#include <cstdlib>

#include "common/logging.hh"

namespace triq
{

bool
Token::is(const char *p) const
{
    return kind == TokKind::Punct && text == p;
}

bool
Token::isIdent(const char *kw) const
{
    return kind == TokKind::Ident && text == kw;
}

std::vector<Token>
tokenize(const std::string &source)
{
    Diagnostics diags("<source>");
    std::vector<Token> out = tokenize(source, diags);
    diags.throwIfErrors("lexer");
    return out;
}

std::vector<Token>
tokenize(const std::string &source, Diagnostics &diags)
{
    std::vector<Token> out;
    size_t i = 0;
    int line = 1, col = 1;
    auto advance = [&](size_t k) {
        for (size_t j = 0; j < k && i < source.size(); ++j, ++i) {
            if (source[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
    };

    while (i < source.size()) {
        char ch = source[i];
        if (std::isspace(static_cast<unsigned char>(ch))) {
            advance(1);
            continue;
        }
        // Comments.
        if (ch == '/' && i + 1 < source.size()) {
            if (source[i + 1] == '/') {
                while (i < source.size() && source[i] != '\n')
                    advance(1);
                continue;
            }
            if (source[i + 1] == '*') {
                int start_line = line;
                int start_col = col;
                advance(2);
                while (i + 1 < source.size() &&
                       !(source[i] == '*' && source[i + 1] == '/'))
                    advance(1);
                if (i + 1 >= source.size()) {
                    diags.error("lex.unterminated-comment",
                                "unterminated /* comment",
                                {start_line, start_col});
                    advance(source.size() - i); // recover: close at EOF
                    continue;
                }
                advance(2);
                continue;
            }
        }
        Token tok;
        tok.line = line;
        tok.col = col;
        if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
            size_t j = i;
            while (j < source.size() &&
                   (std::isalnum(static_cast<unsigned char>(source[j])) ||
                    source[j] == '_'))
                ++j;
            tok.kind = TokKind::Ident;
            tok.text = source.substr(i, j - i);
            advance(j - i);
            out.push_back(tok);
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(ch)) ||
            (ch == '.' && i + 1 < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
            size_t j = i;
            bool is_float = false;
            while (j < source.size() &&
                   std::isdigit(static_cast<unsigned char>(source[j])))
                ++j;
            // ".." is a range operator, not a decimal point.
            if (j < source.size() && source[j] == '.' &&
                !(j + 1 < source.size() && source[j + 1] == '.')) {
                is_float = true;
                ++j;
                while (j < source.size() &&
                       std::isdigit(static_cast<unsigned char>(source[j])))
                    ++j;
            }
            if (j < source.size() &&
                (source[j] == 'e' || source[j] == 'E')) {
                size_t k = j + 1;
                if (k < source.size() &&
                    (source[k] == '+' || source[k] == '-'))
                    ++k;
                if (k < source.size() &&
                    std::isdigit(static_cast<unsigned char>(source[k]))) {
                    is_float = true;
                    j = k;
                    while (j < source.size() &&
                           std::isdigit(
                               static_cast<unsigned char>(source[j])))
                        ++j;
                }
            }
            std::string text = source.substr(i, j - i);
            if (is_float) {
                tok.kind = TokKind::Float;
                tok.floatValue = std::strtod(text.c_str(), nullptr);
            } else {
                tok.kind = TokKind::Int;
                tok.intValue = std::strtol(text.c_str(), nullptr, 10);
                tok.floatValue = static_cast<double>(tok.intValue);
            }
            tok.text = text;
            advance(j - i);
            out.push_back(tok);
            continue;
        }
        // String literals (used by OpenQASM includes).
        if (ch == '"') {
            advance(1);
            std::string text;
            bool terminated = false;
            while (i < source.size()) {
                if (source[i] == '"') {
                    terminated = true;
                    advance(1);
                    break;
                }
                if (source[i] == '\n')
                    break; // recover: close the string at the newline
                text += source[i];
                advance(1);
            }
            if (!terminated)
                diags.error("lex.unterminated-string",
                            "unterminated string literal",
                            {tok.line, tok.col});
            tok.kind = TokKind::Str;
            tok.text = std::move(text);
            out.push_back(tok);
            continue;
        }
        // Multi-character punctuation.
        if (ch == '-' && i + 1 < source.size() && source[i + 1] == '>') {
            tok.kind = TokKind::Punct;
            tok.text = "->";
            advance(2);
            out.push_back(tok);
            continue;
        }
        if (ch == '.' && i + 1 < source.size() && source[i + 1] == '.') {
            tok.kind = TokKind::Punct;
            tok.text = "..";
            advance(2);
            out.push_back(tok);
            continue;
        }
        static const std::string singles = "(){}[];,=+-*/<>";
        if (singles.find(ch) != std::string::npos) {
            tok.kind = TokKind::Punct;
            tok.text = std::string(1, ch);
            advance(1);
            out.push_back(tok);
            continue;
        }
        // Recover from garbage bytes (fuzzed input, bad UTF-8): record
        // one diagnostic per byte value and skip.
        std::string shown =
            std::isprint(static_cast<unsigned char>(ch))
                ? "'" + std::string(1, ch) + "'"
                : "byte 0x" + [&] {
                      static const char *hex = "0123456789abcdef";
                      unsigned char u = static_cast<unsigned char>(ch);
                      return std::string{hex[u >> 4], hex[u & 0xF]};
                  }();
        diags.error("lex.bad-character",
                    "unexpected character " + shown, {line, col});
        advance(1);
    }
    Token end;
    end.kind = TokKind::End;
    end.line = line;
    end.col = col;
    out.push_back(end);
    return out;
}

} // namespace triq
