/**
 * @file
 * A content-addressed, drift-aware memo of compiled artifacts.
 *
 * Keys are CompileFingerprints (core/fingerprint.hh): canonical IR,
 * device structure, the calibration data the level actually reads, and
 * the CompileOptions. An exact-key hit returns the *same* artifact a
 * cold compile would produce, bit for bit (see DESIGN.md, "Sweep
 * engine & compile cache" — the determinism contract), so the cache is
 * a pure speedup.
 *
 * Drift awareness (the ROADMAP retry-on-drift loop, expressed as cache
 * invalidation): when a noise-aware (CN) cell misses because only the
 * calibration component changed — a new day arrived — the cache can
 * re-score the newest same-(program, device, options) entry's routed
 * circuit under the new data. If its predicted ESP has degraded by at
 * most the caller's threshold, the stale compilation is *reused*
 * (explicitly marked, never claimed bit-identical); past the
 * threshold, the entry is left alone and the caller recompiles. Both
 * outcomes are counted so a feed's drift rate is observable.
 *
 * Thread safety: every method is safe to call concurrently; the sweep
 * engine's workers share one instance. Entries are immutable once
 * inserted and handed out as shared_ptr<const CompileResult>, so hits
 * never copy or race against insertion.
 */

#ifndef TRIQ_SERVICE_COMPILE_CACHE_HH
#define TRIQ_SERVICE_COMPILE_CACHE_HH

#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "core/fingerprint.hh"

namespace triq
{

/** Thread-safe content-addressed store of compiled artifacts. */
class CompileCache
{
  public:
    /** One memoized compilation. */
    struct Entry
    {
        std::shared_ptr<const CompileResult> result;

        /**
         * Predicted ESP of result->hwCircuit under the calibration it
         * was compiled against — the drift baseline.
         */
        double espAtCompile = 0.0;

        /** Calibration component of the entry's key. */
        uint64_t calibrationSig = 0;

        /** Calibration day the entry was compiled for (informational). */
        int day = 0;
    };

    /** Monotonic counters; read with stats(). */
    struct Stats
    {
        long lookups = 0;
        long hits = 0;
        long misses = 0;
        long inserts = 0;
        long evictions = 0;
        long driftChecks = 0;      //!< findDriftTolerant calls.
        long driftReuses = 0;      //!< within-threshold reuses granted.
        long driftInvalidations = 0; //!< past-threshold refusals.
    };

    /**
     * @param max_entries Entry cap; 0 (default) = unbounded. When full,
     *        the oldest inserted entry is evicted (FIFO — sweep access
     *        patterns are one-shot per cell, so recency tracking buys
     *        nothing).
     */
    explicit CompileCache(size_t max_entries = 0)
        : maxEntries_(max_entries)
    {
    }

    /** Exact-key lookup; nullopt on miss. Counts a lookup either way. */
    std::optional<Entry> find(const CompileFingerprint &key);

    /**
     * Stat-free presence probe: true when an exact-key entry exists.
     * Used by the sweep scheduler's cost model to predict hit vs.
     * compile cost without perturbing the lookup/hit/miss counters.
     */
    bool contains(const CompileFingerprint &key) const;

    /**
     * Memoize a compilation under its key. Last writer wins on a
     * duplicate key (both writers hold identical artifacts by the
     * determinism contract, so this is benign).
     *
     * @param esp_at_compile Predicted ESP under the compile-time
     *        calibration (the future drift baseline).
     * @param day Calibration day compiled against.
     */
    void insert(const CompileFingerprint &key,
                std::shared_ptr<const CompileResult> result,
                double esp_at_compile, int day);

    /**
     * Drift-tolerant lookup for a cell whose exact key missed: find
     * the newest entry sharing the key's stableKey() (same program,
     * device and options; any calibration), re-score its routed
     * circuit under `new_calib`, and grant reuse iff
     *
     *   espNew >= espAtCompile * (1 - threshold)
     *
     * i.e. the predicted ESP lost at most `threshold` (relative) to
     * calibration drift.
     *
     * @param key The missing cell's fingerprint.
     * @param topo Device topology (ESP evaluation).
     * @param new_calib The new day's calibration snapshot.
     * @param threshold Max tolerated relative ESP degradation, in
     *        [0, 1]. Negative disables (always refuses).
     * @param esp_new_out When non-null, receives the re-scored ESP of
     *        the candidate (0 when there was no candidate) so the
     *        caller can report the delta.
     * @param stale_out When non-null, receives the drift candidate even
     *        when reuse is refused — the recompile path warm-starts the
     *        mapper from the stale placement (it is usually within a
     *        few swaps of the new optimum). Untouched when there was no
     *        candidate at all.
     * @return The reusable entry, or nullopt when there is no
     *         candidate or it degraded past the threshold.
     */
    std::optional<Entry>
    findDriftTolerant(const CompileFingerprint &key, const Topology &topo,
                      const Calibration &new_calib, double threshold,
                      double *esp_new_out = nullptr,
                      std::optional<Entry> *stale_out = nullptr);

    Stats stats() const;
    size_t size() const;
    void clear();

  private:
    struct KeyHash
    {
        size_t
        operator()(const CompileFingerprint &k) const
        {
            return static_cast<size_t>(k.combined());
        }
    };

    void evictIfFullLocked();

    mutable std::mutex mutex_;
    size_t maxEntries_;
    std::unordered_map<CompileFingerprint, Entry, KeyHash> map_;
    /** stableKey -> key of the newest entry with it (drift candidate). */
    std::unordered_map<uint64_t, CompileFingerprint> newestByStable_;
    /** Insertion order for FIFO eviction. */
    std::deque<CompileFingerprint> order_;
    Stats stats_;
};

/**
 * True when caching is enabled for this process: the TRIQ_CACHE
 * environment knob (default 1; 0 disables every cache lookup and
 * insert, forcing cold compiles — the A/B switch for benchmarking).
 */
bool cacheEnabledFromEnv();

} // namespace triq

#endif // TRIQ_SERVICE_COMPILE_CACHE_HH
