#include "service/sweep_journal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <unordered_map>

#include "common/logging.hh"
#include "service/wire.hh"

namespace triq
{

namespace
{

/** 16-hex rendering of a u64 (no 0x, zero padded). */
std::string
hexU64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Hex string -> u64; false on malformed input. */
bool
parseHexU64(const std::string &s, uint64_t &out)
{
    if (s.empty() || s.size() > 16)
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 16);
    if (end != s.c_str() + s.size() || errno != 0)
        return false;
    out = v;
    return true;
}

/**
 * Doubles round-trip through their IEEE-754 bit pattern, never a
 * decimal rendering — a restored artifact must be bit-identical.
 */
std::string
hexF64(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return hexU64(bits);
}

bool
parseHexF64(const std::string &s, double &out)
{
    uint64_t bits = 0;
    if (!parseHexU64(s, bits))
        return false;
    std::memcpy(&out, &bits, sizeof(out));
    return true;
}

/**
 * Exact circuit codec: one "kind,q0,q1,q2,p0,p1,p2" token per gate
 * (params as f64 bit-pattern hex), gates joined by ';'. Pure ASCII, so
 * it embeds in a JSON string without escaping.
 */
std::string
encodeCircuit(const Circuit &c)
{
    std::string out;
    out.reserve(static_cast<size_t>(c.numGates()) * 24);
    for (const Gate &g : c.gates()) {
        if (!out.empty())
            out.push_back(';');
        out += std::to_string(static_cast<int>(g.kind));
        for (int i = 0; i < 3; ++i) {
            out.push_back(',');
            out += std::to_string(g.qubits[static_cast<size_t>(i)]);
        }
        for (int i = 0; i < 3; ++i) {
            out.push_back(',');
            out += hexF64(g.params[static_cast<size_t>(i)]);
        }
    }
    return out;
}

bool
decodeCircuit(const std::string &text, int num_qubits,
              const std::string &name, Circuit &out)
{
    out = Circuit(num_qubits, name);
    if (text.empty())
        return true;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t end = text.find(';', pos);
        if (end == std::string::npos)
            end = text.size();
        std::string tok = text.substr(pos, end - pos);
        // Split into exactly 7 comma-separated fields.
        std::vector<std::string> f;
        size_t p = 0;
        while (p <= tok.size()) {
            size_t c = tok.find(',', p);
            if (c == std::string::npos)
                c = tok.size();
            f.push_back(tok.substr(p, c - p));
            p = c + 1;
        }
        if (f.size() != 7)
            return false;
        Gate g;
        try {
            g.kind = static_cast<GateKind>(std::stoi(f[0]));
            for (int i = 0; i < 3; ++i)
                g.qubits[static_cast<size_t>(i)] =
                    std::stoi(f[static_cast<size_t>(1 + i)]);
        } catch (const std::exception &) {
            return false;
        }
        for (int i = 0; i < 3; ++i)
            if (!parseHexF64(f[static_cast<size_t>(4 + i)],
                             g.params[static_cast<size_t>(i)]))
                return false;
        out.add(g);
        pos = end + 1;
        if (end == text.size())
            break;
    }
    return true;
}

void
writeFingerprint(JsonWriter &w, const CompileFingerprint &fp)
{
    w.key("fp").beginArray();
    w.value(hexU64(fp.program));
    w.value(hexU64(fp.device));
    w.value(hexU64(fp.calibration));
    w.value(hexU64(fp.options));
    w.endArray();
}

bool
readFingerprint(const JsonValue &v, CompileFingerprint &fp)
{
    const JsonValue *a = v.find("fp");
    if (a == nullptr || !a->isArray() || a->array.size() != 4)
        return false;
    uint64_t parts[4];
    for (size_t i = 0; i < 4; ++i)
        if (!a->array[i].isString() ||
            !parseHexU64(a->array[i].string, parts[i]))
            return false;
    fp.program = parts[0];
    fp.device = parts[1];
    fp.calibration = parts[2];
    fp.options = parts[3];
    return true;
}

bool
readIntArray(const JsonValue &v, const std::string &key,
             std::vector<int> &out)
{
    const JsonValue *a = v.find(key);
    if (a == nullptr || !a->isArray())
        return false;
    out.clear();
    out.reserve(a->array.size());
    for (const JsonValue &e : a->array) {
        if (!e.isNumber())
            return false;
        out.push_back(static_cast<int>(e.number));
    }
    return true;
}

std::optional<CellSource>
parseCellSource(const std::string &s)
{
    for (CellSource src :
         {CellSource::Compiled, CellSource::CacheHit,
          CellSource::DriftReuse, CellSource::Skipped, CellSource::Error})
        if (cellSourceName(src) == s)
            return src;
    return std::nullopt;
}

} // namespace

uint64_t
sweepGridFingerprint(const SweepConfig &config)
{
    Fnv1a h;
    h.u64(static_cast<uint64_t>(config.programs.size()));
    for (const SweepProgram &p : config.programs) {
        h.str(p.name);
        h.u64(circuitFingerprint(p.circuit));
    }
    h.u64(static_cast<uint64_t>(config.devices.size()));
    for (const Device &d : config.devices) {
        h.str(d.name());
        h.u64(topologyFingerprint(d.topology()));
        h.u64(gateSetFingerprint(d.gateSet()));
        h.u64(calibrationSignature(d.averageCalibration()));
    }
    h.u64(static_cast<uint64_t>(config.days.size()));
    for (int day : config.days)
        h.i64(day);
    h.u64(static_cast<uint64_t>(config.levels.size()));
    for (OptLevel l : config.levels)
        h.i64(static_cast<int64_t>(l));
    h.u64(compileOptionsFingerprint(config.options));
    // Resolve env-backed knobs the same way runSweep does: the journal
    // must describe the grid as it will actually be evaluated.
    double drift = config.driftThreshold <= -2.0
                       ? defaultDriftThreshold()
                       : config.driftThreshold;
    h.f64(drift);
    h.b(config.useCache && cacheEnabledFromEnv());
    h.b(config.options.budget.limited());
    return h.value();
}

SweepJournal::SweepJournal(const std::string &path,
                           uint64_t grid_fingerprint, bool resume)
{
    int flags = O_WRONLY | O_CREAT | O_APPEND;
    if (!resume)
        flags |= O_TRUNC;
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0)
        fatal("sweep journal: cannot open '", path,
              "': ", std::strerror(errno));
    if (!resume) {
        JsonWriter w;
        w.beginObject()
            .key("type")
            .value("header")
            .key("version")
            .value(1)
            .key("grid")
            .value(hexU64(grid_fingerprint))
            .endObject();
        writeLine(w.str());
    }
}

SweepJournal::~SweepJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
SweepJournal::noteArtifact(const CompileFingerprint &fp)
{
    std::lock_guard<std::mutex> lock(mutex_);
    journaledArtifacts_.insert(fp.combined());
}

void
SweepJournal::recordCell(
    const JournalCell &cell,
    const std::shared_ptr<const CompileResult> &result, int artifact_day,
    bool artifact_cacheable)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (result != nullptr &&
        journaledArtifacts_.insert(cell.fingerprint.combined()).second) {
        const CompileResult &r = *result;
        JsonWriter w;
        w.beginObject().key("type").value("artifact");
        writeFingerprint(w, cell.fingerprint);
        w.key("name").value(r.hwCircuit.name());
        w.key("qubits").value(r.hwCircuit.numQubits());
        w.key("gates").value(encodeCircuit(r.hwCircuit));
        w.key("imap").beginArray();
        for (HwQubit q : r.initialMap)
            w.value(q);
        w.endArray();
        w.key("fmap").beginArray();
        for (HwQubit q : r.finalMap)
            w.value(q);
        w.endArray();
        w.key("swaps").value(r.swapCount);
        w.key("p1q").value(r.stats.pulses1q);
        w.key("vz").value(r.stats.virtualZ);
        w.key("twoq").value(r.stats.twoQ);
        w.key("obj").value(hexF64(r.mapperObjective));
        w.key("degraded").value(r.report.degraded);
        w.key("cacheable").value(artifact_cacheable);
        w.key("esp_at_compile").value(hexF64(cell.espAtCompile));
        w.key("day").value(artifact_day);
        w.endObject();
        writeLine(w.str());
    }
    JsonWriter w;
    w.beginObject().key("type").value("cell");
    w.key("p").value(cell.programIndex);
    w.key("d").value(cell.deviceIndex);
    w.key("day").value(cell.day);
    w.key("l").value(cell.levelIndex);
    w.key("source").value(cellSourceName(cell.source));
    writeFingerprint(w, cell.fingerprint);
    w.key("esp").value(hexF64(cell.esp));
    w.key("esp_at_compile").value(hexF64(cell.espAtCompile));
    if (!cell.error.empty())
        w.key("error").value(cell.error);
    w.endObject();
    writeLine(w.str());
}

long
SweepJournal::recordsWritten() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return written_;
}

void
SweepJournal::writeLine(const std::string &line)
{
    std::string buf = line;
    buf.push_back('\n');
    size_t off = 0;
    while (off < buf.size()) {
        ssize_t n = ::write(fd_, buf.data() + off, buf.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("sweep journal: write failed: ", std::strerror(errno));
        }
        off += static_cast<size_t>(n);
    }
    // One fsync per record is the durability contract: a SIGKILL can
    // lose at most the line currently being written.
    if (::fdatasync(fd_) != 0 && errno != EINVAL && errno != ENOSYS)
        warn("sweep journal: fdatasync failed: ", std::strerror(errno));
    ++written_;
}

bool
loadSweepJournal(const std::string &path, JournalData &out)
{
    std::ifstream in(path);
    if (!in) {
        warn("sweep journal: cannot read '", path, "'");
        return false;
    }
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    if (lines.empty()) {
        warn("sweep journal: '", path, "' is empty");
        return false;
    }

    // Last-wins cell dedup: a resumed run may re-record a coordinate.
    auto cellKey = [](const JournalCell &c) {
        return (static_cast<uint64_t>(static_cast<uint32_t>(c.day))
                << 32) ^
               (static_cast<uint64_t>(c.programIndex) << 20) ^
               (static_cast<uint64_t>(c.deviceIndex) << 10) ^
               static_cast<uint64_t>(c.levelIndex);
    };
    std::unordered_map<uint64_t, size_t> cell_at;
    std::unordered_set<uint64_t> artifact_seen;
    bool have_header = false;

    for (size_t i = 0; i < lines.size(); ++i) {
        const bool last = i + 1 == lines.size();
        if (lines[i].empty())
            continue;
        JsonParseResult parsed = parseJson(lines[i]);
        if (!parsed.ok || !parsed.value.isObject()) {
            // The final line is allowed to be the torn write a SIGKILL
            // left behind; anything else is corruption worth a warning.
            if (!last)
                warn("sweep journal: skipping malformed line ", i + 1,
                     " of '", path, "'");
            continue;
        }
        const JsonValue &v = parsed.value;
        std::string type = v.getString("type");
        if (type == "header") {
            uint64_t grid = 0;
            if (!parseHexU64(v.getString("grid"), grid)) {
                warn("sweep journal: bad header in '", path, "'");
                return false;
            }
            out.gridFingerprint = grid;
            have_header = true;
        } else if (type == "artifact") {
            JournalArtifact art;
            std::vector<int> imap, fmap;
            if (!readFingerprint(v, art.fingerprint) ||
                !readIntArray(v, "imap", imap) ||
                !readIntArray(v, "fmap", fmap)) {
                if (!last)
                    warn("sweep journal: skipping bad artifact, line ",
                         i + 1);
                continue;
            }
            auto r = std::make_shared<CompileResult>();
            if (!decodeCircuit(v.getString("gates"),
                               static_cast<int>(v.getNumber("qubits")),
                               v.getString("name"), r->hwCircuit)) {
                if (!last)
                    warn("sweep journal: skipping bad artifact, line ",
                         i + 1);
                continue;
            }
            r->initialMap.assign(imap.begin(), imap.end());
            r->finalMap.assign(fmap.begin(), fmap.end());
            r->swapCount = static_cast<int>(v.getNumber("swaps"));
            r->stats.pulses1q = static_cast<int>(v.getNumber("p1q"));
            r->stats.virtualZ = static_cast<int>(v.getNumber("vz"));
            r->stats.twoQ = static_cast<int>(v.getNumber("twoq"));
            if (!parseHexF64(v.getString("obj"), r->mapperObjective))
                r->mapperObjective = 0.0;
            r->report.degraded = v.getBool("degraded");
            art.cacheable = v.getBool("cacheable", true);
            if (!parseHexF64(v.getString("esp_at_compile"),
                             art.espAtCompile))
                art.espAtCompile = 0.0;
            art.day = static_cast<int>(v.getNumber("day"));
            art.result = std::move(r);
            if (artifact_seen.insert(art.fingerprint.combined()).second)
                out.artifacts.push_back(std::move(art));
        } else if (type == "cell") {
            JournalCell c;
            c.programIndex = static_cast<int>(v.getNumber("p", -1));
            c.deviceIndex = static_cast<int>(v.getNumber("d", -1));
            c.day = static_cast<int>(v.getNumber("day", 0));
            c.levelIndex = static_cast<int>(v.getNumber("l", -1));
            auto src = parseCellSource(v.getString("source"));
            if (c.programIndex < 0 || c.deviceIndex < 0 ||
                c.levelIndex < 0 || !src ||
                !readFingerprint(v, c.fingerprint) ||
                !parseHexF64(v.getString("esp"), c.esp) ||
                !parseHexF64(v.getString("esp_at_compile"),
                             c.espAtCompile)) {
                if (!last)
                    warn("sweep journal: skipping bad cell, line ",
                         i + 1);
                continue;
            }
            c.source = *src;
            c.error = v.getString("error");
            auto [it, fresh] =
                cell_at.emplace(cellKey(c), out.cells.size());
            if (fresh)
                out.cells.push_back(std::move(c));
            else
                out.cells[it->second] = std::move(c);
        }
        // Unknown record types are ignored: forward compatibility.
    }
    if (!have_header) {
        warn("sweep journal: '", path, "' has no header");
        return false;
    }
    return true;
}

} // namespace triq
