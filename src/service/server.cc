#include "service/server.hh"

#include <algorithm>
#include <future>

#include "common/diagnostics.hh"
#include "common/env.hh"
#include "common/fault_injector.hh"
#include "common/logging.hh"
#include "common/resource.hh"
#include "core/compiler.hh"
#include "core/crash_report.hh"
#include "core/mapper.hh"
#include "device/machines.hh"
#include "lang/lower.hh"
#include "lang/qasm_parser.hh"
#include "service/cost_model.hh"
#include "service/sweep.hh"
#include "sim/executor.hh"
#include "workloads/benchmarks.hh"

namespace triq
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** Completed-latency ring size: enough for any loadgen campaign. */
constexpr size_t kLatencyRing = 1 << 16;

bool
parseLevel(const std::string &s, OptLevel &out)
{
    if (s == "n")
        out = OptLevel::N;
    else if (s == "1q")
        out = OptLevel::OneQOpt;
    else if (s == "c")
        out = OptLevel::OneQOptC;
    else if (s == "cn")
        out = OptLevel::OneQOptCN;
    else
        return false;
    return true;
}

/** Render a request's `id` member as a reply fragment ("" = absent). */
std::string
renderId(const JsonValue &rq)
{
    const JsonValue *id = rq.find("id");
    if (!id)
        return "";
    JsonWriter w;
    switch (id->kind) {
      case JsonValue::Kind::String:
        w.value(id->string);
        break;
      case JsonValue::Kind::Number:
        w.value(id->number);
        break;
      case JsonValue::Kind::Bool:
        w.value(id->boolean);
        break;
      default:
        return ""; // arrays/objects/null: treat as absent
    }
    return w.str();
}

/** The id as plain text for crash-bundle tagging. */
std::string
idText(const JsonValue &rq)
{
    const JsonValue *id = rq.find("id");
    if (!id)
        return "";
    if (id->isString())
        return id->string;
    if (id->isNumber()) {
        JsonWriter w;
        w.value(id->number);
        return w.str();
    }
    return "";
}

/**
 * Internal signal: the pipeline glue already built the structured
 * error reply; unwind to execute() and send it as-is.
 */
struct ServerReplyError
{
    std::string reply;
};

/** Percentile of an unsorted sample copy (nearest-rank). */
double
percentile(std::vector<double> sample, double p)
{
    if (sample.empty())
        return 0.0;
    size_t rank = static_cast<size_t>(p * (sample.size() - 1) + 0.5);
    rank = std::min(rank, sample.size() - 1);
    std::nth_element(sample.begin(), sample.begin() + rank, sample.end());
    return sample[rank];
}

/**
 * The machines triqd serves: the seven study devices plus the
 * 72-qubit scaling-study grid (its 2^72-amplitude state vector is
 * exactly what predictive admission exists to refuse).
 */
const std::vector<Device> &
serverDevices()
{
    static const std::vector<Device> devices = [] {
        std::vector<Device> d = allStudyDevices();
        d.push_back(makeGoogle72());
        return d;
    }();
    return devices;
}

const Device *
findServerDevice(const std::string &name)
{
    for (const Device &d : serverDevices())
        if (d.name() == name)
            return &d;
    return nullptr;
}

/** Benchmark shape admission feeds the cost predictors. */
struct BenchCost
{
    bool known = false;
    int qubits = 0;
    int gates2q = 0;
    int gates = 0;
};

/**
 * Memoized benchmark gate counts for the submit-time cost prediction.
 * Building a benchmark circuit is cheap but not free (a Sup6x12d128 is
 * thousands of gates), and admission runs on the transport thread —
 * each name is priced once per process. Unknown names report
 * known=false and admission leaves the rejection to the worker's
 * front end (input.invalid carries the better message).
 */
BenchCost
benchCost(const std::string &bench)
{
    static std::mutex m;
    static std::map<std::string, BenchCost> memo;
    if (bench.empty())
        return {};
    std::lock_guard<std::mutex> lock(m);
    auto it = memo.find(bench);
    if (it != memo.end())
        return it->second;
    BenchCost out;
    try {
        Circuit c = makeBenchmark(bench);
        out.known = true;
        out.qubits = c.numQubits();
        out.gates2q = c.count2q();
        out.gates = c.numGates();
    } catch (const FatalError &) {
        // Leave known=false; the worker will refuse it properly.
    }
    memo.emplace(bench, out);
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Config.
// ---------------------------------------------------------------------

void
ServerConfig::applyDefaults()
{
    if (workers <= 0)
        workers = envInt("TRIQ_SERVER_THREADS", 2, 1);
    if (queueCapacity <= 0)
        queueCapacity = envInt("TRIQ_SERVER_QUEUE", 64, 1);
    if (timeoutMs < 0.0)
        timeoutMs = envDouble("TRIQ_SERVER_TIMEOUT_MS", 10000.0, 1.0);
    if (drainMs < 0.0)
        drainMs = envDouble("TRIQ_SERVER_DRAIN_MS", 2000.0, 0.0);
    if (drainHardMs < 0.0)
        drainHardMs = envDouble("TRIQ_SERVER_DRAIN_HARD_MS", 30000.0, 0.0);
    if (maxRequestBytes <= 0)
        maxRequestBytes = envInt("TRIQ_SERVER_MAX_BYTES", 1 << 20, 1024);
    if (budgetMs < 0.0)
        budgetMs = envDouble("TRIQ_SERVER_BUDGET_MS", 0.0, 0.0);
    if (maxTrials <= 0)
        maxTrials = 65536;
}

// ---------------------------------------------------------------------
// Lifecycle.
// ---------------------------------------------------------------------

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg))
{
    cfg_.applyDefaults();
    startTime_ = Clock::now();
    latencies_.reserve(1024);
}

Server::~Server()
{
    drain();
}

void
Server::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_)
        return;
    started_ = true;
    workers_.reserve(cfg_.workers);
    for (int i = 0; i < cfg_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

bool
Server::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return drainRequested_;
}

// ---------------------------------------------------------------------
// Admission.
// ---------------------------------------------------------------------

void
Server::submit(const std::string &client, std::string line, Respond respond)
{
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++counters_.received;
    }

    // Frame-size guard before any parsing: the cap bounds both parser
    // work and queue memory, so an oversized frame is rejected in O(1).
    if (static_cast<long>(line.size()) > cfg_.maxRequestBytes) {
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++counters_.failed;
        }
        respond(errorReply(
            "", "proto.oversized",
            "frame of " + std::to_string(line.size()) +
                " bytes exceeds the " +
                std::to_string(cfg_.maxRequestBytes) + "-byte limit"));
        return;
    }

    JsonParseResult parsed = parseJson(line);
    if (!parsed.ok) {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++counters_.failed;
        // Released before respond below.
    }
    if (!parsed.ok) {
        respond(errorReply("", "proto.parse",
                           parsed.error + " at byte " +
                               std::to_string(parsed.errorAt)));
        return;
    }
    if (!parsed.value.isObject()) {
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++counters_.failed;
        }
        respond(errorReply("", "proto.bad-request",
                           "request frame must be a JSON object"));
        return;
    }

    std::string id_json = renderId(parsed.value);
    std::string op = parsed.value.getString("op");

    // Health and metrics answer inline, bypassing the queue: they must
    // stay responsive precisely when the queue is full or draining.
    if (op == "ping") {
        JsonWriter w;
        w.beginObject();
        if (!id_json.empty())
            w.key("id").raw(id_json);
        w.key("ok").value(true).key("op").value("ping");
        w.endObject();
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++counters_.completed;
        }
        respond(w.str());
        return;
    }
    if (op == "stats") {
        JsonWriter w;
        w.beginObject();
        if (!id_json.empty())
            w.key("id").raw(id_json);
        w.key("ok").value(true).key("op").value("stats");
        w.key("stats").raw(statsJson());
        w.endObject();
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++counters_.completed;
        }
        respond(w.str());
        return;
    }
    if (op != "compile" && op != "simulate") {
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++counters_.failed;
        }
        respond(errorReply(id_json, "proto.bad-request",
                           op.empty()
                               ? "request has no \"op\" member"
                               : "unknown op '" + op + "'"));
        return;
    }

    // Predictive admission (the resource governor's front door): a
    // simulate request whose state memory provably cannot fit the
    // budget — even in the executor's degraded serial plan — is
    // refused *now*, before it occupies a queue slot or a worker.
    // The daemon keeps serving; under-budget requests are unaffected.
    // The simulator runs on the *compacted* mapped register, whose
    // width is at least the benchmark's and at most the device's, so
    // the benchmark width (capped by the device) is the optimistic
    // estimate that never falsely rejects — the executor's own
    // reservation enforces the truth for whatever routing adds.
    // Unknown devices, unknown benchmarks and inline programs fall
    // through to the worker's front end, which owns the better error
    // message (and, for admitted-but-unaffordable runs, the
    // structured sim.oom reply).
    if (op == "simulate") {
        const std::string dev_name =
            parsed.value.getString("device", "IBMQ5");
        const Device *dev = findServerDevice(dev_name);
        BenchCost bc = benchCost(parsed.value.getString("bench"));
        if (dev && bc.known) {
            // Workers = 1: triqd executes each request serially (see
            // executeCompileOrSimulate).
            AdmissionVerdict v = checkAdmission(
                std::min(bc.qubits, dev->numQubits()), 1, bc.gates2q,
                bc.gates, 0.0, true);
            if (!v.fits) {
                {
                    std::lock_guard<std::mutex> lock(statsMutex_);
                    ++counters_.budgetRejected;
                }
                std::string extra =
                    "\"predicted_bytes\": " +
                    std::to_string(v.predictedBytes) +
                    ", \"budget_bytes\": " +
                    std::to_string(v.budgetBytes);
                if (bc.known)
                    extra += ", \"predicted_compile_ms\": " +
                             std::to_string(v.predictedCompileMs);
                respond(errorReply(id_json, "server.budget", v.reason,
                                   extra));
                return;
            }
        }
    }

    start();

    Pending p;
    p.request = std::move(parsed.value);
    p.idJson = id_json;
    p.client = client;
    p.respond = std::move(respond);
    p.enqueued = Clock::now();
    p.timeoutMs = p.request.getNumber("timeout_ms", cfg_.timeoutMs);
    if (p.timeoutMs <= 0.0)
        p.timeoutMs = cfg_.timeoutMs;

    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (drainRequested_) {
            lock.unlock();
            {
                std::lock_guard<std::mutex> slock(statsMutex_);
                ++counters_.cancelled;
            }
            p.respond(errorReply(id_json, "server.draining",
                                 "server is shutting down"));
            return;
        }
        if (queued_ >= cfg_.queueCapacity) {
            lock.unlock();
            {
                std::lock_guard<std::mutex> slock(statsMutex_);
                ++counters_.rejected;
            }
            p.respond(errorReply(
                id_json, "server.overloaded",
                "admission queue is full (" +
                    std::to_string(cfg_.queueCapacity) +
                    " requests); retry with backoff"));
            return;
        }
        queues_[client].push_back(std::move(p));
        ++queued_;
    }
    workReady_.notify_one();
}

std::string
Server::processLine(const std::string &client, const std::string &line)
{
    std::promise<std::string> done;
    std::future<std::string> reply = done.get_future();
    submit(client, line,
           [&done](std::string r) { done.set_value(std::move(r)); });
    return reply.get();
}

// ---------------------------------------------------------------------
// Fair scheduling.
// ---------------------------------------------------------------------

bool
Server::hasEligibleLocked() const
{
    for (const auto &[client, q] : queues_)
        if (!q.empty() && !activeClients_.count(client))
            return true;
    return false;
}

bool
Server::popNext(Pending &out)
{
    std::unique_lock<std::mutex> lock(mutex_);
    // A queued request is eligible only while its client has nothing in
    // flight: one client never occupies two workers at once, so a
    // pipelining client's replies come back in request order (the
    // protocol's within-client guarantee) while distinct clients still
    // execute concurrently.
    workReady_.wait(lock,
                    [this] { return stopping_ || hasEligibleLocked(); });
    if (!hasEligibleLocked())
        return false; // stopping

    // Round-robin across clients: resume after the client served last,
    // wrapping; within a client, FIFO. One chatty client therefore
    // interleaves 1:1 with every waiting neighbor.
    auto it = queues_.upper_bound(lastClient_);
    for (size_t step = 0; step <= queues_.size(); ++step, ++it) {
        if (it == queues_.end())
            it = queues_.begin();
        if (!it->second.empty() && !activeClients_.count(it->first))
            break;
    }
    if (it == queues_.end() || it->second.empty() ||
        activeClients_.count(it->first))
        panic("Server::popNext: eligible request vanished under the lock");
    out = std::move(it->second.front());
    it->second.pop_front();
    lastClient_ = it->first;
    activeClients_.insert(it->first);
    if (it->second.empty())
        queues_.erase(it);
    --queued_;
    ++active_;
    return true;
}

void
Server::finish(Pending &&p)
{
    std::string reply = execute(p);
    try {
        p.respond(std::move(reply));
    } catch (...) {
        // A respond callback that throws (dead socket) must not take
        // the worker down with it.
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --active_;
        activeClients_.erase(p.client);
    }
    // This client's next queued request (if any) just became eligible.
    workReady_.notify_all();
    idle_.notify_all();
}

void
Server::workerLoop()
{
    Pending p;
    while (popNext(p))
        finish(std::move(p));
}

void
Server::drain()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!started_) {
            drainRequested_ = true;
            return;
        }
        drainRequested_ = true;
    }

    // Phase 1: give queued work the drain window to finish.
    auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               cfg_.drainMs));
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait_until(lock, deadline, [this] {
            return queued_ == 0 && active_ == 0;
        });
    }

    // Phase 2: the deadline fired — cancel whatever is still queued.
    std::vector<Pending> cancelled;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &[client, q] : queues_)
            for (Pending &p : q)
                cancelled.push_back(std::move(p));
        queues_.clear();
        queued_ = 0;
    }
    for (Pending &p : cancelled) {
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++counters_.cancelled;
        }
        try {
            p.respond(errorReply(p.idJson, "server.draining",
                                 "cancelled by shutdown drain"));
        } catch (...) {
        }
    }

    // Phase 3: wait out in-flight requests (normally bounded by their
    // budgets and trial caps) under the hard cap, then stop the
    // workers. The cap exists so a genuinely wedged request — a worker
    // stuck on an unbudgeted compile, say — cannot hang SIGTERM or the
    // destructor forever: past it the stuck workers are abandoned
    // (detached) with a warning and the process is expected to exit,
    // which is the only remaining way to reclaim them.
    bool all_idle;
    {
        auto hard =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   cfg_.drainHardMs));
        std::unique_lock<std::mutex> lock(mutex_);
        all_idle = idle_.wait_until(lock, hard,
                                    [this] { return active_ == 0; });
        stopping_ = true;
    }
    workReady_.notify_all();
    if (all_idle) {
        for (std::thread &t : workers_)
            t.join();
    } else {
        int stuck;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stuck = active_;
        }
        warn("Server::drain: ", stuck, " request(s) still in flight ",
             "after the ", cfg_.drainHardMs,
             " ms hard cap; abandoning worker threads (exit to reclaim)");
        for (std::thread &t : workers_)
            t.detach();
    }
    workers_.clear();
}

// ---------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------

std::string
Server::execute(const Pending &p)
{
    double waited_ms = msSince(p.enqueued);
    if (waited_ms > p.timeoutMs) {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++counters_.timeouts;
        return errorReply(p.idJson, "server.timeout",
                          "request waited " + std::to_string(waited_ms) +
                              " ms in queue (timeout " +
                              std::to_string(p.timeoutMs) + " ms)");
    }

    // The bundle context fills in as the request resolves (bench name,
    // post-injection program text, calibration); on panic whatever was
    // reached is what gets dumped.
    CrashBundle crash;
    crash.requestId = idText(p.request);

    try {
        std::string reply = executeCompileOrSimulate(p, crash);
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++counters_.completed;
        }
        recordLatency(msSince(p.enqueued));
        return reply;
    } catch (const ServerReplyError &e) {
        // Structured refusal from inside the pipeline glue.
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++counters_.failed;
        return e.reply;
    } catch (const FatalError &e) {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++counters_.failed;
        return errorReply(p.idJson, "input.invalid", e.what());
    } catch (const std::exception &e) {
        // PanicError or any other escape: a TriQ bug. Dump a bundle
        // tagged with the request id, answer structurally, keep
        // serving.
        crash.error = e.what();
        crash.envKnobs = captureTriqEnv();
        std::string extra;
        try {
            std::string dir = resolveCrashDir(
                cfg_.crashDir.empty() ? defaultCrashDir()
                                      : cfg_.crashDir);
            crash.write(dir);
            extra = "\"crash_dir\": \"" + jsonEscape(dir) + "\"";
            warn("triqd: request ",
                 crash.requestId.empty() ? std::string("<no id>")
                                         : crash.requestId,
                 " panicked; crash report written to '", dir, "/'");
        } catch (...) {
            extra.clear(); // never let bundle I/O take the worker down
        }
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++counters_.crashes;
        }
        return errorReply(p.idJson, "internal.panic", e.what(), extra);
    }
}

std::string
Server::executeCompileOrSimulate(const Pending &p, CrashBundle &crash)
{
    const JsonValue &rq = p.request;
    const std::string op = rq.getString("op");
    auto refuse = [&](const std::string &code, const std::string &msg,
                      const std::string &extra = "") -> ServerReplyError {
        return ServerReplyError{errorReply(p.idJson, code, msg, extra)};
    };

    // Fault injector: a request can arm its own (the loadgen fault
    // mode), else the daemon-wide TRIQ_FAULT env applies.
    FaultInjector inj = FaultInjector::fromEnv();
    if (const JsonValue *fault = rq.find("fault")) {
        if (!fault->isString())
            throw refuse("proto.bad-request",
                         "\"fault\" must be a string of fault classes");
        const std::string &s = fault->string;
        auto has = [&](const char *w) {
            return s.find(w) != std::string::npos;
        };
        FaultInjector::Classes classes;
        classes.calibration = has("calib") || has("all");
        classes.text = has("text") || has("all");
        classes.panic = has("panic");
        inj = FaultInjector(
            classes,
            static_cast<uint64_t>(rq.getNumber("fault_seed", 1.0)));
    }

    // Program front end: a study benchmark by name or inline source.
    Circuit program;
    std::string display;
    const std::string bench = rq.getString("bench");
    const JsonValue *prog = rq.find("program");
    if (!bench.empty() && prog)
        throw refuse("proto.bad-request",
                     "request has both \"bench\" and \"program\"");
    if (!bench.empty()) {
        crash.benchName = bench;
        display = bench;
        try {
            program = makeBenchmark(bench);
        } catch (const FatalError &e) {
            throw refuse("input.invalid", e.what());
        }
    } else if (prog) {
        if (!prog->isString())
            throw refuse("proto.bad-request",
                         "\"program\" must be a string of source text");
        bool qasm =
            rq.getBool("qasm", false) || rq.getString("lang") == "qasm";
        std::string text =
            inj.armsText() ? inj.corruptText(prog->string) : prog->string;
        crash.programText = text;
        crash.hasProgram = true;
        crash.qasm = qasm;
        display = "<program>";
        Diagnostics diags(qasm ? "qasm" : "scaff");
        program = qasm ? parseOpenQasm(text, diags)
                       : compileScaffLite(text, diags);
        if (diags.hasErrors())
            throw refuse("input.parse",
                         "program has " +
                             std::to_string(diags.errorCount()) +
                             " error(s)",
                         "\"diagnostics\": " + diags.json());
    } else {
        throw refuse("proto.bad-request",
                     op + " needs a \"bench\" name or \"program\" source");
    }

    // Device and calibration day.
    const std::string dev_name = rq.getString("device", "IBMQ5");
    const Device *dev = findServerDevice(dev_name);
    if (!dev) {
        std::string known;
        for (const Device &d : serverDevices())
            known += (known.empty() ? "" : ", ") + d.name();
        throw refuse("proto.bad-request", "unknown device '" + dev_name +
                                              "' (known: " + known + ")");
    }
    crash.device = dev->name();
    if (program.numQubits() > dev->numQubits())
        throw refuse("input.too-large",
                     display + " needs " +
                         std::to_string(program.numQubits()) +
                         " qubits but " + dev->name() + " has " +
                         std::to_string(dev->numQubits()));

    const int day = static_cast<int>(rq.getNumber("day", 0.0));
    crash.day = day;
    Calibration calib = dev->calibrate(day);
    if (inj.armsCalibration())
        injectCalibrationFaults(calib, inj);
    crash.calibration = calib;
    crash.hasCalibration = true;

    // Compile options.
    CompileOptions opts;
    const std::string level = rq.getString("level", "cn");
    if (!parseLevel(level, opts.level))
        throw refuse("proto.bad-request",
                     "unknown level '" + level +
                         "' (expected n, 1q, c or cn)");
    crash.level = level;
    const std::string mapper = rq.getString("mapper", "bnb");
    try {
        opts.mapping.kind = mapperKindFromString(mapper);
    } catch (const FatalError &e) {
        throw refuse("proto.bad-request", e.what());
    }
    crash.mapper = mapper;
    opts.peephole = rq.getBool("peephole", false);
    opts.strictCalibration = rq.getBool("strict_calibration", false);
    crash.peephole = opts.peephole;
    crash.strictCalibration = opts.strictCalibration;
    const double budget_ms = rq.getNumber("budget_ms", cfg_.budgetMs);
    if (budget_ms > 0.0) {
        opts.budget = CompileBudget::withDeadlineMs(budget_ms);
        crash.budgetMs = budget_ms;
    }

    // The deterministic synthetic crash (TRIQ_FAULT=panic or a request
    // "fault":"panic"): exercises the bundle-dump + keep-serving path.
    if (inj.armsPanic())
        panic("synthetic fault-injection panic (fault class 'panic')");

    // Compile through the hot process-wide cache. A budget-armed
    // compile bypasses it (determinism contract), which
    // compileThroughCache handles internally.
    const bool cache_on = envInt("TRIQ_CACHE", 1, 0) != 0;
    const double drift = rq.getNumber("drift", -1.0);
    CachedCompile cc =
        compileThroughCache(cache_on ? &cache_ : nullptr, program, *dev,
                            day, calib, opts, drift);

    JsonWriter w;
    w.beginObject();
    if (!p.idJson.empty())
        w.key("id").raw(p.idJson);
    w.key("ok").value(true).key("op").value(op);
    w.key("bench").value(display);
    w.key("device").value(dev->name()).key("day").value(day);
    w.key("level").value(level);
    w.key("source").value(cellSourceName(cc.source));
    w.key("fingerprint").value(cc.fingerprint.str());
    w.key("esp").value(cc.esp);
    w.key("esp_at_compile").value(cc.espAtCompile);
    w.key("swaps").value(cc.result->swapCount);
    w.key("two_q").value(cc.result->stats.twoQ);
    w.key("pulses_1q").value(cc.result->stats.pulses1q);
    w.key("compile_ms").value(cc.result->compileMs);
    w.key("degraded").value(cc.result->report.degraded);
    w.key("deadline_hit").value(cc.result->report.deadlineHit);
    // Mapper-search observability: lets clients (and the loadgen
    // report) see engine fallbacks and search-effort regressions in
    // production traffic, not just in benches. Cache/drift-reused
    // artifacts carry the search stats of the compile that produced
    // them.
    w.key("mapper_engine").value(cc.result->report.mapperEngine);
    w.key("mapper_nodes")
        .value(static_cast<double>(cc.result->report.mapperNodes));
    w.key("mapper_optimal").value(cc.result->report.mapperOptimal);
    w.key("mapper_bound_pruned")
        .value(static_cast<double>(cc.result->report.mapperBoundPruned));
    w.key("mapper_symmetry_pruned")
        .value(static_cast<double>(
            cc.result->report.mapperSymmetryPruned));
    w.key("mapper_dominance_pruned")
        .value(static_cast<double>(
            cc.result->report.mapperDominancePruned));
    w.key("mapper_warm_start")
        .value(cc.result->report.mapperWarmStarted);
    if (rq.getBool("assembly", false))
        w.key("assembly").value(cc.result->assembly);

    if (op == "simulate") {
        int trials = static_cast<int>(rq.getNumber("trials", 1000.0));
        trials = std::max(1, std::min(trials, cfg_.maxTrials));
        const uint64_t seed =
            static_cast<uint64_t>(rq.getNumber("seed", 12345.0));
        crash.trials = trials;
        crash.seed = seed;
        // Serial per request: cross-request concurrency comes from the
        // server's own workers, and the shared process pool must not
        // be entered from several workers at once.
        ExecOptions eo;
        eo.threads = 1;
        eo.kernelThreads = 1; // same rule for intra-state kernel sharding
        crash.simThreads = 1;
        ExecutionResult run;
        try {
            run = executeNoisy(cc.result->hwCircuit, *dev, calib, trials,
                               seed, eo);
        } catch (const ResourceError &e) {
            // Predicted-overrun refusal or a translated bad_alloc from
            // inside the simulator: a resource outcome, not a TriQ bug
            // — answer structurally, no crash bundle, keep serving.
            throw refuse("sim.oom", e.what(),
                         "\"attempted_bytes\": " +
                             std::to_string(e.attemptedBytes) +
                             ", \"budget_bytes\": " +
                             std::to_string(e.budgetBytes));
        }
        crash.schedMode = run.sched.mode();
        crash.schedThreads = run.sched.threads;
        crash.schedItemsPerTask = run.sched.itemsPerTask;
        w.key("trials").value(run.trials);
        w.key("success_rate").value(run.successRate);
        w.key("correct_is_modal").value(run.correctIsModal);
        w.key("sim_esp").value(run.esp);
        w.key("no_error_prob").value(run.noErrorProb);
        w.key("trajectories").value(run.simulatedTrajectories);
    }
    w.endObject();
    return w.str();
}

std::string
Server::errorReply(const std::string &id_json, const std::string &code,
                   const std::string &message,
                   const std::string &extra_json) const
{
    JsonWriter w;
    w.beginObject();
    if (!id_json.empty())
        w.key("id").raw(id_json);
    else
        w.key("id").null();
    w.key("ok").value(false);
    w.key("error").beginObject();
    w.key("code").value(code).key("message").value(message);
    if (!extra_json.empty())
        w.raw(extra_json);
    w.endObject().endObject();
    return w.str();
}

void
Server::recordLatency(double ms)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    ++counters_.latencyCount;
    if (latencies_.size() < kLatencyRing) {
        latencies_.push_back(ms);
    } else {
        latencies_[latencyNext_] = ms;
        latencyNext_ = (latencyNext_ + 1) % kLatencyRing;
    }
}

ServerStats
Server::stats() const
{
    int queue_depth, active;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_depth = queued_;
        active = active_;
    }
    ServerStats out;
    std::vector<double> sample;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        out = counters_;
        sample = latencies_;
    }
    out.queueDepth = queue_depth;
    out.active = active;
    out.uptimeMs = msSince(startTime_);
    out.p50Ms = percentile(sample, 0.50);
    out.p99Ms = percentile(sample, 0.99);
    out.maxMs = sample.empty()
                    ? 0.0
                    : *std::max_element(sample.begin(), sample.end());
    out.cache = cache_.stats();
    return out;
}

std::string
Server::statsJson() const
{
    ServerStats s = stats();
    JsonWriter w;
    w.beginObject();
    w.key("uptime_ms").value(s.uptimeMs);
    w.key("received").value(s.received);
    w.key("completed").value(s.completed);
    w.key("failed").value(s.failed);
    w.key("rejected").value(s.rejected);
    w.key("budget_rejected").value(s.budgetRejected);
    w.key("timeouts").value(s.timeouts);
    w.key("cancelled").value(s.cancelled);
    w.key("crashes").value(s.crashes);
    w.key("queue_depth").value(s.queueDepth);
    w.key("active").value(s.active);
    w.key("latency_ms")
        .beginObject()
        .key("count")
        .value(s.latencyCount)
        .key("p50")
        .value(s.p50Ms)
        .key("p99")
        .value(s.p99Ms)
        .key("max")
        .value(s.maxMs)
        .endObject();
    w.key("cache")
        .beginObject()
        .key("lookups")
        .value(s.cache.lookups)
        .key("hits")
        .value(s.cache.hits)
        .key("misses")
        .value(s.cache.misses)
        .key("inserts")
        .value(s.cache.inserts)
        .key("evictions")
        .value(s.cache.evictions)
        .endObject();
    w.endObject();
    return w.str();
}

} // namespace triq
