#include "service/wire.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/diagnostics.hh"
#include "common/logging.hh"

namespace triq
{

// ---------------------------------------------------------------------
// JsonValue accessors.
// ---------------------------------------------------------------------

const JsonValue *
JsonValue::find(const std::string &k) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[key, val] : members)
        if (key == k)
            return &val;
    return nullptr;
}

std::string
JsonValue::getString(const std::string &k, const std::string &fallback) const
{
    const JsonValue *v = find(k);
    return v && v->isString() ? v->string : fallback;
}

double
JsonValue::getNumber(const std::string &k, double fallback) const
{
    const JsonValue *v = find(k);
    return v && v->isNumber() ? v->number : fallback;
}

bool
JsonValue::getBool(const std::string &k, bool fallback) const
{
    const JsonValue *v = find(k);
    return v && v->isBool() ? v->boolean : fallback;
}

// ---------------------------------------------------------------------
// Parser: recursive descent, no exceptions, bounded depth.
// ---------------------------------------------------------------------

namespace
{

class Parser
{
  public:
    Parser(const std::string &text, int max_depth)
        : text_(text), maxDepth_(max_depth)
    {
    }

    JsonParseResult
    run()
    {
        JsonParseResult res;
        skipWs();
        if (!parseValue(res.value, 0)) {
            res.error = error_;
            res.errorAt = errorAt_;
            return res;
        }
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing garbage after JSON value");
            res.error = error_;
            res.errorAt = errorAt_;
            return res;
        }
        res.ok = true;
        return res;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        // Keep the first (deepest-relevant) failure only.
        if (error_.empty()) {
            error_ = msg;
            errorAt_ = pos_;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    literal(const char *word)
    {
        size_t n = 0;
        while (word[n])
            ++n;
        if (text_.compare(pos_, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += n;
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > maxDepth_)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default:
            if (c == '-' || (c >= '0' && c <= '9')) {
                out.kind = JsonValue::Kind::Number;
                return parseNumber(out.number);
            }
            return fail("unexpected character");
        }
    }

    bool
    parseObject(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after object key");
            ++pos_;
            skipWs();
            JsonValue val;
            if (!parseValue(val, depth + 1))
                return false;
            out.members.emplace_back(std::move(key), std::move(val));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue val;
            if (!parseValue(val, depth + 1))
                return false;
            out.array.push_back(std::move(val));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // '"'
        while (pos_ < text_.size()) {
            unsigned char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (pos_ + 1 >= text_.size())
                    return fail("unterminated escape");
                char e = text_[pos_ + 1];
                pos_ += 2;
                switch (e) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_ + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= h - '0';
                        else if (h >= 'a' && h <= 'f')
                            code |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            code |= h - 'A' + 10;
                        else
                            return fail("bad \\u escape digit");
                    }
                    pos_ += 4;
                    // UTF-8 encode the BMP code point (surrogate pairs
                    // are passed through as two separate encodings —
                    // the protocol never needs astral characters).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                continue;
            }
            // Raw control bytes are invalid JSON; rejecting them keeps
            // spliced binary garbage from masquerading as a valid
            // frame (the fault-mode loadgen sends exactly that).
            if (c < 0x20)
                return fail("raw control byte in string");
            out += static_cast<char>(c);
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(double &out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        out = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size() || tok.empty())
            return fail("malformed number");
        if (!std::isfinite(out))
            return fail("number out of range");
        return true;
    }

    const std::string &text_;
    size_t pos_ = 0;
    int maxDepth_;
    std::string error_;
    size_t errorAt_ = 0;
};

} // namespace

JsonParseResult
parseJson(const std::string &text, int max_depth)
{
    return Parser(text, max_depth).run();
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

void
JsonWriter::separate()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (!hasItem_.empty()) {
        if (hasItem_.back())
            out_ += ", ";
        hasItem_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    hasItem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (hasItem_.empty())
        panic("JsonWriter: endObject without beginObject");
    hasItem_.pop_back();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    hasItem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (hasItem_.empty())
        panic("JsonWriter: endArray without beginArray");
    hasItem_.pop_back();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    separate();
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += "\": ";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    out_ += '"';
    out_ += jsonEscape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    if (!std::isfinite(v)) {
        out_ += "null";
        return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(long v)
{
    separate();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separate();
    out_ += "null";
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &json)
{
    separate();
    out_ += json;
    return *this;
}

} // namespace triq
