#include "service/sweep.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/env.hh"
#include "common/fault_injector.hh"
#include "common/logging.hh"
#include "common/sched.hh"
#include "common/thread_pool.hh"
#include "core/decompose.hh"
#include "core/esp.hh"
#include "service/sweep_journal.hh"

namespace triq
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** Estimated cost of an exact-fingerprint cache hit (lookup + copy). */
constexpr double kCacheHitUs = 20.0;

/** Run the day's cells per the scheduler's plan (see executor.cc). */
void
runPerPlan(const SchedDecision &dec, int items,
           const std::function<void(int)> &fn)
{
    if (!dec.threaded) {
        for (int i = 0; i < items; ++i)
            fn(i);
        return;
    }
    ThreadPool &pool = processPool(dec.threads);
    parallelForRanges(pool, items, dec.itemsPerTask,
                      [&fn](int lo, int hi) {
                          for (int i = lo; i < hi; ++i)
                              fn(i);
                      });
}

/** Fold one day's fan-out decision into the sweep-level stats. */
void
recordDecision(SweepStats &stats, const SchedDecision &dec, bool first)
{
    if (first)
        stats.schedMode = dec.mode();
    else if (stats.schedMode != dec.mode())
        stats.schedMode = "mixed";
    stats.threads = std::max(stats.threads, dec.threads);
    if (dec.tasks > stats.schedTasks) {
        stats.schedTasks = dec.tasks;
        stats.schedItemsPerTask = dec.itemsPerTask;
    }
    stats.schedPredictedMs += dec.predictedMs;
    stats.schedActualMs += dec.actualMs > 0.0 ? dec.actualMs : 0.0;
}

} // namespace

std::string
cellSourceName(CellSource s)
{
    switch (s) {
      case CellSource::Compiled:
        return "compiled";
      case CellSource::CacheHit:
        return "cache_hit";
      case CellSource::DriftReuse:
        return "drift_reuse";
      case CellSource::Skipped:
        return "skipped";
      case CellSource::Error:
        return "error";
    }
    panic("cellSourceName: unknown source");
}

int
defaultSweepThreads()
{
    // min 0: TRIQ_SWEEP_THREADS=0 is valid and means "adaptive", which
    // is also the unset default — the cost model already knows when
    // hardware threads are worth using.
    return envInt("TRIQ_SWEEP_THREADS", 0, 0);
}

double
defaultDriftThreshold()
{
    // Unset/malformed => -1 (drift reuse disabled).
    return envDouble("TRIQ_SWEEP_DRIFT", -1.0, 0.0);
}

CachedCompile
compileThroughCache(CompileCache *cache, const Circuit &program,
                    const Device &dev, int day, const Calibration &calib,
                    const CompileOptions &opts, double drift_threshold)
{
    CachedCompile out;
    Circuit lowered =
        decomposeToCnotBasis(program, dev.gateSet().nativeCphase);
    out.fingerprint = fingerprintCompile(lowered, dev, calib, opts);

    std::optional<CompileCache::Entry> drift_stale;
    bool drift_refused = false;
    if (cache) {
        if (auto hit = cache->find(out.fingerprint)) {
            out.result = hit->result;
            out.source = CellSource::CacheHit;
            out.espAtCompile = hit->espAtCompile;
            out.esp = estimatedSuccessProbability(
                out.result->hwCircuit, dev.topology(), calib);
            return out;
        }
        if (opts.level == OptLevel::OneQOptCN && drift_threshold >= 0.0) {
            double esp_new = 0.0;
            if (auto stale = cache->findDriftTolerant(
                    out.fingerprint, dev.topology(), calib,
                    drift_threshold, &esp_new, &drift_stale)) {
                out.result = stale->result;
                out.source = CellSource::DriftReuse;
                out.espAtCompile = stale->espAtCompile;
                out.esp = esp_new;
                return out;
            }
            drift_refused = esp_new > 0.0;
        }
    }

    // Incremental remapping on a refused drift reuse: warm-start the
    // mapper from the stale placement instead of the greedy seed.
    CompileOptions warm_opts = opts;
    if (drift_refused && drift_stale && drift_stale->result) {
        warm_opts.mapping.warmStart = drift_stale->result->initialMap;
        warm_opts.mapping.warmStartOrigin =
            "drift(day " + std::to_string(drift_stale->day) + ")";
    }
    auto compiled = std::make_shared<const CompileResult>(
        compileForDevice(program, dev, calib, warm_opts, &lowered));
    out.result = compiled;
    out.source = CellSource::Compiled;
    out.esp = estimatedSuccessProbability(compiled->hwCircuit,
                                          dev.topology(), calib);
    out.espAtCompile = out.esp;
    // A deadline-armed compile is wall-clock dependent; memoizing it
    // would let a degraded artifact impersonate a full-strength one.
    if (cache && !opts.budget.limited())
        cache->insert(out.fingerprint, compiled, out.espAtCompile, day);
    return out;
}

SweepResult
runSweep(const SweepConfig &config, CompileCache *cache)
{
    auto t_start = Clock::now();
    if (config.programs.empty() || config.devices.empty() ||
        config.days.empty() || config.levels.empty())
        fatal("runSweep: every grid dimension (programs, devices, days, "
              "levels) must be non-empty");

    // > 0 forces a worker count (1 = true serial path); <= 0 resolves
    // to adaptive, where the cost model below decides per day.
    int threads_req = config.threads;
    if (threads_req == 0)
        threads_req = defaultSweepThreads();
    if (threads_req < 0)
        threads_req = 0;
    const bool use_cache =
        config.useCache && cache != nullptr && cacheEnabledFromEnv();
    const double drift = config.driftThreshold <= -2.0
                             ? defaultDriftThreshold()
                             : config.driftThreshold;
    const bool budgeted = config.options.budget.limited();

    const int np = static_cast<int>(config.programs.size());
    const int nd = static_cast<int>(config.devices.size());
    const int nl = static_cast<int>(config.levels.size());

    // Stage 1 hoist — lower each program once per gate-set variant.
    // The study devices only differ in nativeCphase here, so this is
    // at most two decompositions per program however many devices and
    // days the grid spans.
    std::vector<std::array<std::unique_ptr<Circuit>, 2>> lowered(np);
    std::vector<std::array<uint64_t, 2>> program_fp(np);
    for (int pi = 0; pi < np; ++pi) {
        for (int variant = 0; variant < 2; ++variant) {
            bool needed = false;
            for (const Device &d : config.devices)
                if (static_cast<int>(d.gateSet().nativeCphase) == variant)
                    needed = true;
            if (!needed)
                continue;
            auto c = std::make_unique<Circuit>(decomposeToCnotBasis(
                config.programs[pi].circuit, variant != 0));
            program_fp[pi][variant] = circuitFingerprint(*c);
            lowered[pi][variant] = std::move(c);
        }
    }

    // Stage 2 hoist — one calibration + sanitize digest + device hash
    // per (device, day), shared by every program x level cell.
    std::vector<uint64_t> device_fp(nd);
    std::vector<uint64_t> avg_sig(nd);
    for (int di = 0; di < nd; ++di) {
        const Device &dev = config.devices[di];
        avg_sig[di] = calibrationSignature(dev.averageCalibration());
        // Must mirror fingerprintCompile: topology + gate set + average
        // calibration (the last keeps structural twins distinct).
        Fnv1a h;
        h.u64(topologyFingerprint(dev.topology()))
            .u64(gateSetFingerprint(dev.gateSet()))
            .u64(avg_sig[di]);
        device_fp[di] = h.value();
    }
    std::vector<int> days = config.days;
    std::sort(days.begin(), days.end());
    days.erase(std::unique(days.begin(), days.end()), days.end());
    // calib[di][day]: the raw snapshot plus its signature and digest.
    struct DayCalib
    {
        Calibration calib;
        uint64_t signature;
        uint64_t sanitizeDigest;
    };
    // The TRIQ_FAULT=calib contract applies to the sweep's calibration
    // feed too: corrupt it here, *before* signatures are taken, so the
    // engine's degradation paths (sanitize-and-warn, or per-cell Error
    // under strictCalibration) are reachable from any harness.
    FaultInjector fault_inj = FaultInjector::fromEnv();
    std::vector<std::map<int, DayCalib>> day_calib(nd);
    for (int di = 0; di < nd; ++di)
        for (int day : days) {
            DayCalib dc;
            dc.calib = config.devices[di].calibrate(day);
            if (fault_inj.armsCalibration())
                injectCalibrationFaults(dc.calib, fault_inj);
            dc.signature = calibrationSignature(dc.calib);
            dc.sanitizeDigest = calibrationSanitizeDigest(
                dc.calib, config.devices[di].topology());
            day_calib[di].emplace(day, std::move(dc));
        }

    std::vector<uint64_t> options_fp(nl);
    std::vector<CompileOptions> level_opts(nl);
    for (int li = 0; li < nl; ++li) {
        level_opts[li] = config.options;
        level_opts[li].level = config.levels[li];
        options_fp[li] = compileOptionsFingerprint(level_opts[li]);
    }

    // Build the grid in deterministic order.
    SweepResult out;
    out.cells.reserve(static_cast<size_t>(np) * nd * days.size() * nl);
    for (int pi = 0; pi < np; ++pi)
        for (int di = 0; di < nd; ++di)
            for (int day : days)
                for (int li = 0; li < nl; ++li) {
                    SweepCell cell;
                    cell.programIndex = pi;
                    cell.deviceIndex = di;
                    cell.day = day;
                    cell.level = config.levels[li];
                    const Device &dev = config.devices[di];
                    if (config.programs[pi].circuit.numQubits() >
                        dev.numQubits()) {
                        cell.source = CellSource::Skipped;
                        out.cells.push_back(std::move(cell));
                        continue;
                    }
                    int variant = dev.gateSet().nativeCphase ? 1 : 0;
                    const DayCalib &dc = day_calib[di].at(day);
                    CompileFingerprint fp;
                    fp.program = program_fp[pi][variant];
                    fp.device = device_fp[di];
                    fp.options = options_fp[li];
                    if (cell.level == OptLevel::OneQOptCN) {
                        fp.calibration = dc.signature;
                    } else {
                        Fnv1a h;
                        h.u64(avg_sig[di]).u64(dc.sanitizeDigest);
                        fp.calibration = h.value();
                    }
                    cell.fingerprint = fp;
                    cell.source = CellSource::Compiled; // resolved below
                    out.cells.push_back(std::move(cell));
                }

    // Crash-safe journal: restore already-completed cells from an
    // existing journal (--resume), then open the append-only writer
    // every cell resolved by *this* run is recorded into. Restored
    // artifacts warm the cache so cells computed after a kill get the
    // same source labels an uninterrupted run would give them.
    std::unique_ptr<SweepJournal> journal;
    std::map<int, int> day_index;
    for (size_t i = 0; i < days.size(); ++i)
        day_index[days[i]] = static_cast<int>(i);
    if (!config.journalPath.empty()) {
        const uint64_t grid_fp = sweepGridFingerprint(config);
        std::unordered_map<uint64_t, JournalArtifact> restored_art;
        bool appending = false;
        if (config.resume) {
            JournalData jd;
            if (loadSweepJournal(config.journalPath, jd)) {
                if (jd.gridFingerprint != grid_fp)
                    fatal("runSweep: journal '", config.journalPath,
                          "' was written for a different grid "
                          "(fingerprint mismatch); refusing to resume");
                appending = true;
                for (JournalArtifact &art : jd.artifacts) {
                    uint64_t k = art.fingerprint.combined();
                    restored_art.emplace(k, std::move(art));
                }
                // Fingerprints whose *compiled* cell record survived.
                // Only these may warm the cache: a kill between an
                // artifact write and its cell write leaves an orphan
                // artifact, and warming the cache from it would flip
                // the recomputed cell from "compiled" to "cache_hit",
                // breaking byte-identity with an uninterrupted run.
                std::unordered_set<uint64_t> compiled_fps;
                for (const JournalCell &jc : jd.cells) {
                    auto di = day_index.find(jc.day);
                    bool ok = jc.programIndex >= 0 &&
                              jc.programIndex < np &&
                              jc.deviceIndex >= 0 &&
                              jc.deviceIndex < nd &&
                              jc.levelIndex >= 0 && jc.levelIndex < nl &&
                              di != day_index.end();
                    if (ok) {
                        size_t ci =
                            ((static_cast<size_t>(jc.programIndex) * nd +
                              jc.deviceIndex) *
                                 days.size() +
                             di->second) *
                                nl +
                            jc.levelIndex;
                        SweepCell &cell = out.cells[ci];
                        // The grid fingerprint matched, so a computed
                        // cell fingerprint differing from the journaled
                        // one means the record is corrupt — recompute.
                        ok = cell.fingerprint == jc.fingerprint;
                        if (ok) {
                            cell.source = jc.source;
                            cell.esp = jc.esp;
                            cell.espAtCompile = jc.espAtCompile;
                            cell.error = jc.error;
                            cell.ms = 0.0;
                            cell.restored = true;
                            auto art = restored_art.find(
                                jc.fingerprint.combined());
                            if (art != restored_art.end())
                                cell.result = art->second.result;
                            if (jc.source == CellSource::Compiled)
                                compiled_fps.insert(
                                    jc.fingerprint.combined());
                            ++out.stats.restoredCells;
                        }
                    }
                    if (!ok)
                        warn("runSweep: ignoring journaled cell that "
                             "does not match this grid; recomputing it");
                }
                if (use_cache && !budgeted) {
                    // Warm the cache in day-ascending order: an
                    // uninterrupted run inserts day by day, and the
                    // drift path trusts insertion recency to find the
                    // *latest* artifact under a stable key. Hash-map
                    // order here could leave an older day "most
                    // recent" and flip a later drift_recompile into a
                    // drift_reuse, breaking byte-identity.
                    std::vector<const JournalArtifact *> warm;
                    for (const auto &[k, art] : restored_art)
                        if (art.cacheable && compiled_fps.count(k))
                            warm.push_back(&art);
                    std::stable_sort(warm.begin(), warm.end(),
                                     [](const JournalArtifact *a,
                                        const JournalArtifact *b) {
                                         return a->day < b->day;
                                     });
                    for (const JournalArtifact *art : warm)
                        cache->insert(art->fingerprint, art->result,
                                      art->espAtCompile, art->day);
                }
            } else {
                warn("runSweep: --resume found no usable journal at '",
                     config.journalPath, "'; starting fresh");
            }
        }
        journal = std::make_unique<SweepJournal>(config.journalPath,
                                                 grid_fp, appending);
        for (const auto &[k, art] : restored_art) {
            (void)k;
            journal->noteArtifact(art.fingerprint);
        }
    }

    auto journal_cell = [&](int ci) {
        if (!journal)
            return;
        const SweepCell &cell = out.cells[static_cast<size_t>(ci)];
        if (cell.restored)
            return;
        JournalCell jc;
        jc.programIndex = cell.programIndex;
        jc.deviceIndex = cell.deviceIndex;
        jc.day = cell.day;
        jc.levelIndex = ci % nl;
        jc.source = cell.source;
        jc.fingerprint = cell.fingerprint;
        jc.esp = cell.esp;
        jc.espAtCompile = cell.espAtCompile;
        jc.error = cell.error;
        // A cache hit's ESP is normally scored in the final pass;
        // journal records must be complete, so score it here with the
        // same pure function the final pass applies.
        if (cell.source == CellSource::CacheHit && cell.result)
            jc.esp = estimatedSuccessProbability(
                cell.result->hwCircuit,
                config.devices[cell.deviceIndex].topology(),
                day_calib[cell.deviceIndex].at(cell.day).calib);
        journal->recordCell(jc, cell.result, cell.day,
                            cell.source != CellSource::DriftReuse);
    };
    if (journal)
        for (int ci = 0; ci < static_cast<int>(out.cells.size()); ++ci)
            if (out.cells[static_cast<size_t>(ci)].source ==
                CellSource::Skipped)
                journal_cell(ci);

    // Drift-recompile accounting must be observable per day even
    // though workers run concurrently.
    std::mutex stats_mutex;

    const SchedCalib &scal = schedCalib();
    bool first_day = true;

    // Days ascend with a barrier between them: a later day's drift
    // check must see the earlier days' entries (the ROADMAP
    // calibration-feed loop).
    for (int day : days) {
        // Group this day's unresolved cells by fingerprint: one
        // representative compiles/looks up, members share its artifact.
        std::vector<int> reps;
        std::unordered_map<uint64_t, std::vector<int>> members;
        std::unordered_map<uint64_t, int> rep_of;
        for (int ci = 0; ci < static_cast<int>(out.cells.size()); ++ci) {
            SweepCell &cell = out.cells[ci];
            if (cell.day != day ||
                cell.source == CellSource::Skipped || cell.restored)
                continue;
            uint64_t k = cell.fingerprint.combined();
            auto it = rep_of.find(k);
            if (it == rep_of.end()) {
                // Dedup within the run only when caching is on: with
                // the cache disabled the engine must honestly compile
                // every cell (the A/B baseline).
                if (use_cache) {
                    rep_of.emplace(k, ci);
                    reps.push_back(ci);
                } else {
                    reps.push_back(ci);
                }
            } else {
                members[k].push_back(ci);
            }
        }

        // Cost model: a rep whose exact fingerprint is already cached
        // is a cheap lookup; anything else is priced as a cold compile
        // from its lowered circuit. Warm sweeps therefore correctly
        // estimate near-zero work and stay serial, while a cold day of
        // many distinct fingerprints fans out with cells batched so
        // each pool task amortizes its dispatch.
        double total_us = 0.0;
        for (int ci : reps) {
            const SweepCell &cell = out.cells[ci];
            const Device &dev = config.devices[cell.deviceIndex];
            int variant = dev.gateSet().nativeCphase ? 1 : 0;
            const Circuit &low = *lowered[cell.programIndex][variant];
            bool hit = use_cache && cache->contains(cell.fingerprint);
            total_us += hit ? kCacheHitUs
                            : estimateCompileUs(scal, dev.numQubits(),
                                                low.count2q(),
                                                low.numGates());
        }
        const int num_reps = static_cast<int>(reps.size());
        double us_per_item =
            num_reps > 0 ? total_us / num_reps : 0.0;
        SchedDecision dec =
            threads_req > 0
                ? planForced(scal, num_reps, us_per_item, threads_req,
                             processPoolStarted())
                : planParallel(scal, num_reps, us_per_item, 0,
                               processPoolStarted());
        auto t_day = Clock::now();

        runPerPlan(dec, num_reps, [&](int ri) {
            int ci = reps[ri];
            SweepCell &cell = out.cells[ci];
            const SweepProgram &prog =
                config.programs[cell.programIndex];
            const Device &dev = config.devices[cell.deviceIndex];
            const DayCalib &dc =
                day_calib[cell.deviceIndex].at(cell.day);
            int variant = dev.gateSet().nativeCphase ? 1 : 0;
            const Circuit &low =
                *lowered[cell.programIndex][variant];

            // The resolution proper lives in an inner lambda so that
            // its early returns (cache hit, drift reuse) still fall
            // through to the journal append below.
            auto resolve = [&] {
            auto t0 = Clock::now();
            bool drift_refused = false;
            std::optional<CompileCache::Entry> drift_stale;
            // A throwing cell (strict calibration rejecting a corrupt
            // feed, or any pipeline failure) is recorded and contained
            // *inside* the worker: letting it escape would poison
            // pool.wait() and void every other cell of the sweep.
            try {
            if (use_cache) {
                if (auto hit = cache->find(cell.fingerprint)) {
                    cell.result = hit->result;
                    cell.source = CellSource::CacheHit;
                    cell.espAtCompile = hit->espAtCompile;
                    cell.ms = msSince(t0);
                    return;
                }
                if (cell.level == OptLevel::OneQOptCN && drift >= 0.0) {
                    double esp_new = 0.0;
                    if (auto stale = cache->findDriftTolerant(
                            cell.fingerprint, dev.topology(), dc.calib,
                            drift, &esp_new, &drift_stale)) {
                        cell.result = stale->result;
                        cell.source = CellSource::DriftReuse;
                        cell.espAtCompile = stale->espAtCompile;
                        cell.esp = esp_new;
                        cell.ms = msSince(t0);
                        return;
                    }
                    drift_refused = esp_new > 0.0;
                }
            }

            CompileOptions opts = config.options;
            opts.level = cell.level;
            // Incremental remapping: a drift-invalidated placement is
            // usually within a few swaps of the new optimum, so the
            // recompile warm-starts the mapper search from it instead
            // of the greedy seed.
            if (drift_refused && drift_stale && drift_stale->result) {
                opts.mapping.warmStart = drift_stale->result->initialMap;
                opts.mapping.warmStartOrigin =
                    "drift(day " + std::to_string(drift_stale->day) + ")";
            }
            auto compiled = std::make_shared<const CompileResult>(
                compileForDevice(prog.circuit, dev, dc.calib, opts,
                                 &low));
            cell.result = compiled;
            cell.source = CellSource::Compiled;
            cell.espAtCompile = estimatedSuccessProbability(
                compiled->hwCircuit, dev.topology(), dc.calib);
            cell.esp = cell.espAtCompile;
            cell.ms = msSince(t0);
            if (use_cache && !budgeted)
                cache->insert(cell.fingerprint, compiled,
                              cell.espAtCompile, cell.day);
            {
                const CompileReport &rep = compiled->report;
                std::lock_guard<std::mutex> lock(stats_mutex);
                if (drift_refused)
                    ++out.stats.driftRecompiles;
                out.stats.mapperNodes += rep.mapperNodes;
                out.stats.mapperBoundPruned += rep.mapperBoundPruned;
                out.stats.mapperSymmetryPruned +=
                    rep.mapperSymmetryPruned;
                out.stats.mapperDominancePruned +=
                    rep.mapperDominancePruned;
                if (rep.mapperEngine != rep.requestedMapper)
                    ++out.stats.mapperFallbacks;
                if (rep.mapperWarmStarted)
                    ++out.stats.mapperWarmStarts;
            }
            } catch (const std::exception &e) {
                cell.result.reset();
                cell.source = CellSource::Error;
                cell.error = e.what();
                cell.esp = 0.0;
                cell.espAtCompile = 0.0;
                cell.ms = msSince(t0);
            }
            };
            resolve();
            journal_cell(ci);
        });
        dec.actualMs = msSince(t_day);
        recordDecision(out.stats, dec, first_day);
        first_day = false;

        // Members share their representative's artifact: within one
        // run that sharing *is* a cache hit (the entry the rep just
        // inserted or found).
        for (auto &[k, idxs] : members) {
            const SweepCell &rep = out.cells[rep_of.at(k)];
            for (int ci : idxs) {
                SweepCell &cell = out.cells[ci];
                cell.result = rep.result;
                cell.source = rep.source == CellSource::Compiled
                                  ? CellSource::CacheHit
                                  : rep.source;
                cell.espAtCompile = rep.espAtCompile;
                cell.error = rep.error; // Error reps poison their twins
                cell.ms = 0.0;
                // A DriftReuse member's own-calibration ESP is only
                // scored in the final pass; the journal record carries
                // it as written here and resume's final pass re-scores
                // it identically from the restored artifact.
                journal_cell(ci);
            }
        }
    }

    // Final pass: score every cell's artifact under its *own* day's
    // calibration (a cross-day hit keeps the same circuit but idles
    // under different error rates).
    for (SweepCell &cell : out.cells) {
        if (cell.source == CellSource::Skipped ||
            cell.source == CellSource::Error || !cell.result)
            continue;
        if (cell.source == CellSource::Compiled) {
            ++out.stats.compiles;
            continue; // esp already set, same calibration
        }
        const Device &dev = config.devices[cell.deviceIndex];
        cell.esp = estimatedSuccessProbability(
            cell.result->hwCircuit, dev.topology(),
            day_calib[cell.deviceIndex].at(cell.day).calib);
        if (cell.source == CellSource::CacheHit)
            ++out.stats.cacheHits;
        else if (cell.source == CellSource::DriftReuse)
            ++out.stats.driftReuses;
    }
    for (const SweepCell &cell : out.cells) {
        if (cell.source == CellSource::Skipped)
            ++out.stats.skipped;
        else if (cell.source == CellSource::Error)
            ++out.stats.errors;
        else
            ++out.stats.cells;
    }
    if (out.stats.errors > 0)
        warn("runSweep: ", out.stats.errors,
             " cell(s) failed and were recorded as errors; ",
             out.stats.cells, " cell(s) completed");
    // stats.threads was folded in per day by recordDecision (max over
    // the days' decisions; 1 when every day ran serial).
    out.stats.wallMs = msSince(t_start);
    return out;
}

} // namespace triq
