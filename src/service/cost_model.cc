#include "service/cost_model.hh"

#include <sstream>

#include "common/resource.hh"
#include "common/sched.hh"
#include "core/circuit.hh"

namespace triq
{

double
predictCompileUs(const Circuit &circuit, int device_qubits)
{
    return estimateCompileUs(schedCalib(), device_qubits,
                             circuit.count2q(), circuit.numGates());
}

AdmissionVerdict
checkAdmission(int active_qubits, int workers, int gates_2q, int gates,
               double timeout_ms, bool simulate)
{
    AdmissionVerdict v;
    const SchedCalib &scal = schedCalib();
    v.predictedCompileMs =
        estimateCompileUs(scal, active_qubits, gates_2q, gates) / 1000.0;
    ResourceGovernor &gov = processGovernor();
    v.budgetBytes = gov.budgetBytes();

    if (timeout_ms > 0.0 && v.predictedCompileMs > timeout_ms) {
        v.fits = false;
        std::ostringstream msg;
        msg << "predicted compile time " << v.predictedCompileMs
            << " ms exceeds the request deadline " << timeout_ms
            << " ms";
        v.reason = msg.str();
        return v;
    }

    if (!simulate)
        return v;

    v.predictedBytes = predictSimulationBytes(active_qubits, workers);
    if (v.budgetBytes == 0 || gov.wouldFit(v.predictedBytes))
        return v;
    // The full plan does not fit, but the executor degrades to a
    // serial low-memory plan before giving up — admit iff that fits.
    uint64_t low = predictLowMemSimulationBytes(active_qubits);
    if (gov.wouldFit(low))
        return v;
    v.fits = false;
    std::ostringstream msg;
    msg << "predicted simulation memory "
        << formatBytes(v.predictedBytes) << " (" << formatBytes(low)
        << " degraded) exceeds the memory budget "
        << formatBytes(v.budgetBytes);
    v.reason = msg.str();
    return v;
}

} // namespace triq
