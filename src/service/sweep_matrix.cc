#include "service/sweep_matrix.hh"

#include "common/diagnostics.hh"

namespace triq
{

const char *
optLevelToken(OptLevel level)
{
    switch (level) {
      case OptLevel::N:
        return "n";
      case OptLevel::OneQOpt:
        return "1q";
      case OptLevel::OneQOptC:
        return "c";
      case OptLevel::OneQOptCN:
        return "cn";
    }
    return "?";
}

void
writeSweepMatrix(std::ostream &os, const SweepConfig &config,
                 const SweepResult &result,
                 const CompileCache::Stats *cache_stats,
                 bool deterministic)
{
    os << "{\n  \"cells\": [\n";
    bool first = true;
    for (const SweepCell &c : result.cells) {
        if (!first)
            os << ",\n";
        first = false;
        os << "    {\"program\": \""
           << jsonEscape(config.programs[c.programIndex].name)
           << "\", \"device\": \""
           << jsonEscape(config.devices[c.deviceIndex].name())
           << "\", \"day\": " << c.day << ", \"level\": \""
           << optLevelToken(c.level) << "\", \"source\": \""
           << cellSourceName(c.source) << "\"";
        if (c.source == CellSource::Error) {
            os << ", \"error\": \"" << jsonEscape(c.error) << "\"";
        } else if (c.source != CellSource::Skipped) {
            os << ", \"fingerprint\": \"" << c.fingerprint.str()
               << "\", \"esp\": " << c.esp
               << ", \"esp_at_compile\": " << c.espAtCompile
               << ", \"cnots\": " << c.result->stats.twoQ
               << ", \"swaps\": " << c.result->swapCount
               << ", \"degraded\": "
               << (c.result->report.degraded ? "true" : "false");
            if (!deterministic) {
                // Mapper detail is only meaningful for cells this run
                // compiled (restored/reused cells carry no fresh
                // search), and lives outside the deterministic matrix:
                // the resume journal round-trips only `degraded`.
                const CompileReport &rep = c.result->report;
                os << ", \"ms\": " << c.ms << ", \"mapper_engine\": \""
                   << jsonEscape(rep.mapperEngine)
                   << "\", \"mapper_nodes\": " << rep.mapperNodes
                   << ", \"mapper_bound_pruned\": "
                   << rep.mapperBoundPruned
                   << ", \"mapper_warm_start\": "
                   << (rep.mapperWarmStarted ? "true" : "false");
            }
        }
        os << "}";
    }
    os << "\n  ],\n";
    os << "  \"stats\": {\"cells\": " << result.stats.cells
       << ", \"errors\": " << result.stats.errors
       << ", \"skipped\": " << result.stats.skipped
       << ", \"compiles\": " << result.stats.compiles
       << ", \"cache_hits\": " << result.stats.cacheHits
       << ", \"drift_reuses\": " << result.stats.driftReuses;
    if (!deterministic) {
        os << ", \"drift_recompiles\": " << result.stats.driftRecompiles
           << ", \"restored_cells\": " << result.stats.restoredCells
           << ", \"threads\": " << result.stats.threads
           << ", \"wall_ms\": " << result.stats.wallMs
           << ", \"sched_mode\": \"" << result.stats.schedMode << "\""
           << ", \"sched_items_per_task\": "
           << result.stats.schedItemsPerTask
           << ", \"sched_tasks\": " << result.stats.schedTasks
           << ", \"sched_predicted_ms\": " << result.stats.schedPredictedMs
           << ", \"sched_actual_ms\": " << result.stats.schedActualMs
           << ", \"mapper_nodes\": " << result.stats.mapperNodes
           << ", \"mapper_bound_pruned\": "
           << result.stats.mapperBoundPruned
           << ", \"mapper_symmetry_pruned\": "
           << result.stats.mapperSymmetryPruned
           << ", \"mapper_dominance_pruned\": "
           << result.stats.mapperDominancePruned
           << ", \"mapper_fallbacks\": " << result.stats.mapperFallbacks
           << ", \"mapper_warm_starts\": "
           << result.stats.mapperWarmStarts;
    }
    os << "}";
    if (cache_stats && !deterministic) {
        os << ",\n  \"cache\": {\"lookups\": " << cache_stats->lookups
           << ", \"hits\": " << cache_stats->hits
           << ", \"misses\": " << cache_stats->misses
           << ", \"inserts\": " << cache_stats->inserts
           << ", \"drift_checks\": " << cache_stats->driftChecks
           << ", \"drift_reuses\": " << cache_stats->driftReuses
           << ", \"drift_invalidations\": "
           << cache_stats->driftInvalidations << "}";
    }
    os << "\n}\n";
}

} // namespace triq
