/**
 * @file
 * Render a SweepResult as the triq-sweep JSON results matrix.
 *
 * Lives in the service layer (rather than the tool) so the
 * journal-resume byte-identity contract is testable in-process: the
 * matrix a resumed run renders must equal, byte for byte, the matrix
 * the uninterrupted run would have rendered.
 *
 * `deterministic` drops every wall-clock-dependent field (per-cell
 * "ms", the stats' wall/sched/thread numbers, drift_recompiles,
 * restored_cells and the whole cache-counter block), leaving only
 * fields that are pure functions of the grid inputs. triq-sweep
 * switches to this mode whenever a journal is in play — timings can
 * never be byte-identical across a kill and a resume.
 */

#ifndef TRIQ_SERVICE_SWEEP_MATRIX_HH
#define TRIQ_SERVICE_SWEEP_MATRIX_HH

#include <ostream>

#include "service/sweep.hh"

namespace triq
{

/** "n" / "1q" / "c" / "cn" — the manifest's level tokens. */
const char *optLevelToken(OptLevel level);

/**
 * Write the results matrix. `cache_stats` may be null (the "cache"
 * block is omitted; it is always omitted when `deterministic`).
 */
void writeSweepMatrix(std::ostream &os, const SweepConfig &config,
                      const SweepResult &result,
                      const CompileCache::Stats *cache_stats,
                      bool deterministic);

} // namespace triq

#endif // TRIQ_SERVICE_SWEEP_MATRIX_HH
