/**
 * @file
 * The triqd request engine: a long-lived compile-and-simulate service
 * wrapped in production armor (see DESIGN.md, "triqd server").
 *
 * quilc ships its industrial-strength compiler as a persistent daemon
 * because cold start dominates interactive use; this is the same shape
 * for TriQ. One Server owns the process-wide CompileCache and drives
 * requests through the existing hardened pipeline (budgets, calibration
 * sanitization, structured diagnostics, crash bundles), adding what a
 * one-shot CLI cannot have:
 *
 *  - Admission control: a bounded queue (TRIQ_SERVER_QUEUE). A request
 *    arriving at a full queue is rejected *immediately* with a
 *    structured `server.overloaded` error — overload sheds load, it
 *    never builds an unbounded backlog.
 *  - Fair queueing: queued requests are grouped per client and workers
 *    pop them round-robin across clients, so one client streaming a
 *    thousand compiles cannot starve an interactive neighbor. At most
 *    one request per client is ever in flight, which is what makes the
 *    per-client reply-ordering guarantee below hold with many workers.
 *  - Timeouts: a request that waited in the queue past its deadline
 *    (request `timeout_ms`, default TRIQ_SERVER_TIMEOUT_MS) is answered
 *    with `server.timeout` instead of being run pointlessly.
 *  - Graceful degradation: every failure mode is a one-line JSON error
 *    reply, never a dead connection or a dead daemon. PanicErrors
 *    (TriQ bugs) additionally dump a crash-report bundle tagged with
 *    the request id, then the daemon keeps serving.
 *  - Graceful drain: drain() stops admission, lets in-flight work
 *    finish, cancels whatever is still queued when the drain deadline
 *    (TRIQ_SERVER_DRAIN_MS) fires, and leaves the metrics readable.
 *    A second, generous hard cap (TRIQ_SERVER_DRAIN_HARD_MS) bounds
 *    even a wedged in-flight request, so SIGTERM always terminates.
 *
 * The engine is transport-free: submit() takes a raw frame plus a
 * respond callback, so the same code serves a Unix socket (triqd), a
 * stdin/stdout pipe (triqd --stdio) and the in-process test suites.
 *
 * Protocol: newline-delimited JSON, one request per line, one reply
 * line per request (correlate by `id` — replies may be reordered
 * across clients, never within one client's serial request stream).
 *
 *   {"id":"r1","op":"compile","bench":"BV4","device":"IBMQ5",
 *    "level":"cn","day":3}
 *   {"id":"r2","op":"simulate","bench":"QFT","device":"UMDTI",
 *    "trials":500,"seed":7}
 *   {"id":"r3","op":"stats"}
 *   {"id":"r4","op":"ping"}
 *
 * Reply: {"id":"r1","ok":true,...} or
 *        {"id":"r1","ok":false,"error":{"code":"...","message":"..."}}.
 *
 * Error taxonomy (stable codes, see DESIGN.md for the full table):
 *   proto.parse proto.oversized proto.bad-request   — bad frames
 *   input.parse input.invalid input.too-large       — bad programs/data
 *   server.overloaded server.timeout server.draining — load shedding
 *   server.budget — predictive admission: the request's simulation
 *     state provably cannot fit TRIQ_MEM_BUDGET even in the executor's
 *     degraded low-memory plan (+ predicted_bytes / budget_bytes /
 *     predicted_compile_ms); the daemon keeps serving everyone else
 *   sim.oom — the admitted simulation still could not get its memory
 *     (reservation refused mid-flight, or the allocator failed); a
 *     structured resource outcome (+ attempted_bytes / budget_bytes),
 *     never an abort
 *   internal.panic                                  — a TriQ bug
 *     (+ crash_dir: the replayable bundle, tagged with the request id)
 */

#ifndef TRIQ_SERVICE_SERVER_HH
#define TRIQ_SERVICE_SERVER_HH

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/compile_cache.hh"
#include "service/wire.hh"

namespace triq
{

struct CrashBundle;

/** Tuning knobs; non-positive fields fall back to TRIQ_SERVER_* env. */
struct ServerConfig
{
    /** Worker threads executing requests (TRIQ_SERVER_THREADS, def 2). */
    int workers = 0;

    /**
     * Max requests queued across all clients (TRIQ_SERVER_QUEUE,
     * default 64). Arrivals past the cap are rejected immediately.
     */
    int queueCapacity = 0;

    /**
     * Queue-wait deadline in ms (TRIQ_SERVER_TIMEOUT_MS, default
     * 10000). A request may override it down or up with `timeout_ms`.
     */
    double timeoutMs = -1.0;

    /**
     * Drain deadline in ms (TRIQ_SERVER_DRAIN_MS, default 2000): how
     * long drain() waits for queued work before cancelling it.
     */
    double drainMs = -1.0;

    /**
     * Hard in-flight cap in ms (TRIQ_SERVER_DRAIN_HARD_MS, default
     * 30000): after cancelling queued work, how long drain() waits for
     * in-flight requests before abandoning their workers. In-flight
     * work is normally bounded by budgets and trial caps, so this only
     * fires for a genuinely wedged request — it guarantees SIGTERM
     * terminates the daemon regardless.
     */
    double drainHardMs = -1.0;

    /** Frame size cap in bytes (TRIQ_SERVER_MAX_BYTES, default 1 MiB). */
    long maxRequestBytes = 0;

    /**
     * Default per-request compile budget in ms (TRIQ_SERVER_BUDGET_MS,
     * default 0 = unlimited). Armed budgets make the pipeline anytime
     * but bypass the compile cache (the determinism contract), so the
     * default favors cache heat; requests can arm one with `budget_ms`.
     */
    double budgetMs = -1.0;

    /** Trial cap for simulate requests (default 65536). */
    int maxTrials = 0;

    /** Crash-bundle directory base ("" = triq-crash-<pid>). */
    std::string crashDir;

    /** Resolve every non-positive field from its env knob / default. */
    void applyDefaults();
};

/** A point-in-time metrics snapshot (the `stats` reply body). */
struct ServerStats
{
    long received = 0;   //!< Frames submitted (any outcome).
    long completed = 0;  //!< Requests answered ok:true.
    long failed = 0;     //!< Structured error replies (bad input etc.).
    long rejected = 0;   //!< server.overloaded admissions.
    long budgetRejected = 0; //!< server.budget admissions (cost model).
    long timeouts = 0;   //!< server.timeout replies.
    long cancelled = 0;  //!< server.draining replies.
    long crashes = 0;    //!< internal.panic replies (bundles written).
    int queueDepth = 0;  //!< Requests currently queued.
    int active = 0;      //!< Requests currently executing.
    double uptimeMs = 0.0;

    /** Completed-request latency distribution (admission to reply). */
    long latencyCount = 0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    double maxMs = 0.0;

    CompileCache::Stats cache;
};

/** The transport-free triqd engine. */
class Server
{
  public:
    /** Callback delivering one reply line (no trailing newline). */
    using Respond = std::function<void(std::string)>;

    explicit Server(ServerConfig cfg = {});

    /** Drains (cancelling queued work) and joins the workers. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Spawn the worker threads. Idempotent; submit() calls it. */
    void start();

    /**
     * Submit one frame from `client` (any stable connection name; the
     * fairness unit). `respond` is invoked exactly once with the reply
     * line — inline for admission rejections, ping, stats and parse
     * errors; from a worker thread for queued work. Thread-safe.
     */
    void submit(const std::string &client, std::string line,
                Respond respond);

    /** Synchronous submit-and-wait (tests and the stdio transport). */
    std::string processLine(const std::string &client,
                            const std::string &line);

    /**
     * Stop admitting, finish in-flight and queued work within the
     * drain deadline, cancel the rest with `server.draining` replies,
     * then stop the workers. Idempotent; safe from signal-driven
     * shutdown paths (not from a worker thread).
     */
    void drain();

    /** True once drain() has begun; new submissions are cancelled. */
    bool draining() const;

    ServerStats stats() const;

    /** The stats reply body as a JSON object fragment. */
    std::string statsJson() const;

    const ServerConfig &config() const { return cfg_; }

    /** The hot process-wide artifact memo this server owns. */
    CompileCache &cache() { return cache_; }

  private:
    struct Pending
    {
        JsonValue request;
        std::string idJson; //!< Pre-rendered id fragment ("" = absent).
        std::string client;
        Respond respond;
        std::chrono::steady_clock::time_point enqueued;
        double timeoutMs = 0.0;
    };

    void workerLoop();
    bool popNext(Pending &out);
    void finish(Pending &&p);

    /** Any queued request whose client has nothing in flight? (locked) */
    bool hasEligibleLocked() const;

    /** Execute one admitted request; returns the reply line. */
    std::string execute(const Pending &p);

    /**
     * The compile/simulate pipeline glue. `crash` accumulates replay
     * context (post-injection program text, calibration, options) as
     * the request resolves; execute() dumps it if this panics.
     */
    std::string executeCompileOrSimulate(const Pending &p,
                                         CrashBundle &crash);

    std::string errorReply(const std::string &id_json,
                           const std::string &code,
                           const std::string &message,
                           const std::string &extra_json = "") const;

    void recordLatency(double ms);

    ServerConfig cfg_;
    CompileCache cache_;

    mutable std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable idle_;
    /** Per-client FIFO queues; fairness iterates round-robin. */
    std::map<std::string, std::deque<Pending>> queues_;
    /**
     * Clients with a request in flight. popNext skips them, so one
     * client never runs on two workers at once — the protocol's
     * within-client reply ordering depends on it.
     */
    std::set<std::string> activeClients_;
    /** Round-robin cursor: the client served last. */
    std::string lastClient_;
    int queued_ = 0;
    int active_ = 0;
    bool started_ = false;
    bool drainRequested_ = false;
    bool stopping_ = false;
    std::vector<std::thread> workers_;

    std::chrono::steady_clock::time_point startTime_;

    mutable std::mutex statsMutex_;
    ServerStats counters_;
    std::vector<double> latencies_; //!< Ring buffer, newest overwrite.
    size_t latencyNext_ = 0;
};

} // namespace triq

#endif // TRIQ_SERVICE_SERVER_HH
