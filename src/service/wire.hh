/**
 * @file
 * The triqd wire format: newline-delimited JSON, one value per frame.
 *
 * The server's input surface is adversarial by definition (anything
 * can connect to a socket), so the parser here is written like the
 * ScaffLite/QASM front ends: it never throws on bad input, never reads
 * past the buffer, bounds its recursion depth, and reports the first
 * problem as a position + message pair the caller can embed in a
 * structured error reply. Numbers are parsed as doubles (the protocol
 * has no integer wider than 2^53), strings accept the JSON escapes and
 * pass other bytes through untouched so a frame survives a round trip.
 *
 * Emission goes through JsonWriter, a minimal streaming object/array
 * builder that handles separators and escaping — every reply the
 * server sends is built with it, so a reply is well-formed JSON by
 * construction (the test_robustness fuzz suite re-parses every reply
 * with this same parser to enforce that).
 */

#ifndef TRIQ_SERVICE_WIRE_HH
#define TRIQ_SERVICE_WIRE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace triq
{

/** One parsed JSON value (object members keep insertion order). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Member lookup (objects only); nullptr when absent. */
    const JsonValue *find(const std::string &key) const;

    /** Member as string with a fallback (absent or wrong type). */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;

    /** Member as number with a fallback (absent or wrong type). */
    double getNumber(const std::string &key, double fallback = 0.0) const;

    /** Member as bool with a fallback (absent or wrong type). */
    bool getBool(const std::string &key, bool fallback = false) const;
};

/** Outcome of parseJson: a value or a position + message. */
struct JsonParseResult
{
    bool ok = false;
    JsonValue value;
    std::string error;  //!< First problem found ("" when ok).
    size_t errorAt = 0; //!< Byte offset of the problem.
};

/**
 * Parse one JSON value from `text` (leading/trailing whitespace
 * allowed; trailing garbage is an error). Never throws; recursion is
 * capped at `max_depth` so a deeply nested frame cannot blow the
 * stack.
 */
JsonParseResult parseJson(const std::string &text, int max_depth = 48);

/**
 * Streaming JSON builder. Usage:
 *   JsonWriter w;
 *   w.beginObject().key("id").value("r1").key("ok").value(true);
 *   w.endObject();
 *   send(w.str());
 * Numbers are emitted with enough precision to round-trip doubles;
 * non-finite doubles are emitted as null (JSON has no NaN).
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    JsonWriter &key(const std::string &k);
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(long v);
    JsonWriter &value(int v) { return value(static_cast<long>(v)); }
    JsonWriter &value(bool v);
    JsonWriter &null();
    /** Splice a pre-rendered JSON fragment (caller vouches for it). */
    JsonWriter &raw(const std::string &json);

    const std::string &str() const { return out_; }

  private:
    void separate();

    std::string out_;
    /** true = a value was already written at this nesting level. */
    std::vector<bool> hasItem_{};
    bool pendingKey_ = false;
};

} // namespace triq

#endif // TRIQ_SERVICE_WIRE_HH
