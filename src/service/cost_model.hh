/**
 * @file
 * Predictive per-request cost model for admission control: estimate,
 * *before any work starts*, how much memory a simulation will commit
 * and how long a compile will take, so triqd can reject a request the
 * process cannot afford with a structured `server.budget` error
 * instead of queueing it until the allocator (or the kernel) kills the
 * daemon.
 *
 * The memory formulas live in sim/sim_cost.hh — executeNoisy reserves
 * exactly what admission checks, so the layers cannot disagree.
 * Compile time reuses the SchedCalib machine constants via
 * estimateCompileUs — the same model the sweep scheduler already
 * trusts for serial-vs-threaded decisions. See DESIGN.md, "Resource
 * governor", for the formulas.
 */

#ifndef TRIQ_SERVICE_COST_MODEL_HH
#define TRIQ_SERVICE_COST_MODEL_HH

#include <cstdint>
#include <string>

#include "sim/sim_cost.hh"

namespace triq
{

class Circuit;

/**
 * Predicted compile time in microseconds for `circuit` onto a
 * `device_qubits`-qubit device, via the process SchedCalib.
 */
double predictCompileUs(const Circuit &circuit, int device_qubits);

/** One admission verdict; `fits` false means reject with the fields. */
struct AdmissionVerdict
{
    bool fits = true;
    uint64_t predictedBytes = 0; //!< Predicted peak committed memory.
    uint64_t budgetBytes = 0;    //!< Budget in force (0 = unlimited).
    double predictedCompileMs = 0.0;
    std::string reason; //!< Human-readable rejection reason ("" = fits).
};

/**
 * Check a compile/simulate request against the process memory budget:
 * `active_qubits` wide, fanned out over `workers` chunks, with the
 * compile of `gates` total gates (`gates_2q` two-qubit) predicted
 * against `timeout_ms` (<= 0 = no deadline). Considers the executor's
 * degraded low-memory plan before rejecting: a simulate request only
 * fails admission when even the fallback cannot fit.
 */
AdmissionVerdict checkAdmission(int active_qubits, int workers,
                                int gates_2q, int gates,
                                double timeout_ms, bool simulate);

} // namespace triq

#endif // TRIQ_SERVICE_COST_MODEL_HH
