/**
 * @file
 * Crash-safe sweep journal: an append-only JSONL file recording every
 * resolved sweep cell (and, once per fingerprint, the full compiled
 * artifact) so a killed `triq-sweep --journal` run can restart with
 * `--resume` and complete without recomputing finished cells — and
 * emit a final matrix byte-identical to an uninterrupted run.
 *
 * File format (one JSON object per line):
 *   {"type":"header","version":1,"grid":"<16 hex>"}
 *   {"type":"artifact","fp":["..","..","..",".."], circuit codec...,
 *    "esp_at_compile":"<f64 bits hex>","day":N}
 *   {"type":"cell","p":0,"d":1,"day":3,"l":2,"source":"compiled",
 *    "fp":[...],"esp":"<hex>","esp_at_compile":"<hex>","error":""}
 *
 * Durability: every record is one write(2) to an O_APPEND descriptor
 * followed by fdatasync, so a SIGKILL can lose at most the line being
 * written — and the loader tolerates exactly one truncated tail line.
 *
 * Exactness: doubles (gate parameters, ESPs, mapper objective) are
 * serialized as IEEE-754 bit patterns in hex, so a restored artifact
 * is bit-identical to the compiled one. Restored artifacts warm the
 * CompileCache on resume, which is what keeps the source labels
 * ("compiled" vs "cache_hit") of cells computed *after* the kill
 * identical to an uninterrupted run's.
 *
 * The `grid` header is a fingerprint of the entire sweep configuration
 * (programs, devices, days, levels, options, drift, cache flag);
 * --resume refuses a journal whose grid does not match, because cell
 * coordinates are only meaningful against the grid that wrote them.
 */

#ifndef TRIQ_SERVICE_SWEEP_JOURNAL_HH
#define TRIQ_SERVICE_SWEEP_JOURNAL_HH

#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "service/sweep.hh"

namespace triq
{

/** One journaled (resolved) cell, keyed by its grid coordinates. */
struct JournalCell
{
    int programIndex = 0;
    int deviceIndex = 0;
    int day = 0;
    int levelIndex = 0;
    CellSource source = CellSource::Skipped;
    CompileFingerprint fingerprint;
    double esp = 0.0;
    double espAtCompile = 0.0;
    std::string error;
};

/** One journaled artifact (exact CompileResult round trip). */
struct JournalArtifact
{
    CompileFingerprint fingerprint;
    std::shared_ptr<const CompileResult> result;
    double espAtCompile = 0.0;
    int day = 0;

    /**
     * False for an artifact journaled under a *drift-reuse* cell's
     * fingerprint: the artifact really lives under an older
     * calibration's key, so on resume it may be used to render the
     * restored cell but must NOT warm the compile cache under this
     * fingerprint — later cells would flip from drift_reuse to
     * cache_hit and break byte-identity with an uninterrupted run.
     */
    bool cacheable = true;
};

/** Everything a journal file holds after loading. */
struct JournalData
{
    uint64_t gridFingerprint = 0;
    std::vector<JournalCell> cells; //!< Deduplicated, last record wins.
    std::vector<JournalArtifact> artifacts;
};

/**
 * Fingerprint of the entire sweep grid configuration: program
 * circuits, device structure + average calibration, days, levels,
 * compile options, drift threshold and cache flag. Two configs with
 * equal fingerprints evaluate the same grid cell for cell.
 */
uint64_t sweepGridFingerprint(const SweepConfig &config);

/**
 * The append-only writer. Thread-safe: runSweep's workers record
 * cells concurrently. Each record is one write + fdatasync.
 */
class SweepJournal
{
  public:
    /**
     * Open `path` for journaling. Fresh mode truncates and writes a
     * new header; resume mode appends (the caller has already loaded
     * and validated the existing records). @throws FatalError when the
     * file cannot be opened.
     */
    SweepJournal(const std::string &path, uint64_t grid_fingerprint,
                 bool resume);

    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /**
     * Mark `fp` as already journaled (loaded from an existing journal
     * on resume), so recordCell does not re-write its artifact.
     */
    void noteArtifact(const CompileFingerprint &fp);

    /**
     * Append one resolved cell — and, first, its artifact if `result`
     * is non-null and this fingerprint has not been journaled yet.
     * Both records are fsync'd before the call returns.
     * `artifact_cacheable` must be false for drift-reuse cells (see
     * JournalArtifact::cacheable).
     */
    void recordCell(const JournalCell &cell,
                    const std::shared_ptr<const CompileResult> &result,
                    int artifact_day, bool artifact_cacheable);

    /** Cell+artifact records written by this writer (tests/bench). */
    long recordsWritten() const;

  private:
    void writeLine(const std::string &line);

    mutable std::mutex mutex_;
    int fd_ = -1;
    long written_ = 0;
    std::unordered_set<uint64_t> journaledArtifacts_;
};

/**
 * Load a journal file. Returns false (with a warn) when the file is
 * missing or has no valid header. A truncated tail line — the one a
 * SIGKILL can leave behind — is skipped silently; any other malformed
 * line is skipped with a warning. Duplicate cell coordinates keep the
 * last record.
 */
bool loadSweepJournal(const std::string &path, JournalData &out);

} // namespace triq

#endif // TRIQ_SERVICE_SWEEP_JOURNAL_HH
