#include "service/compile_cache.hh"

#include "common/env.hh"
#include "core/esp.hh"

namespace triq
{

std::optional<CompileCache::Entry>
CompileCache::find(const CompileFingerprint &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.lookups;
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    ++stats_.hits;
    return it->second;
}

bool
CompileCache::contains(const CompileFingerprint &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.find(key) != map_.end();
}

void
CompileCache::insert(const CompileFingerprint &key,
                     std::shared_ptr<const CompileResult> result,
                     double esp_at_compile, int day)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry e;
    e.result = std::move(result);
    e.espAtCompile = esp_at_compile;
    e.calibrationSig = key.calibration;
    e.day = day;
    auto [it, fresh] = map_.insert_or_assign(key, std::move(e));
    (void)it;
    ++stats_.inserts;
    if (fresh) {
        order_.push_back(key);
        evictIfFullLocked();
    }
    newestByStable_[key.stableKey()] = key;
}

std::optional<CompileCache::Entry>
CompileCache::findDriftTolerant(const CompileFingerprint &key,
                                const Topology &topo,
                                const Calibration &new_calib,
                                double threshold, double *esp_new_out,
                                std::optional<Entry> *stale_out)
{
    if (esp_new_out)
        *esp_new_out = 0.0;

    Entry candidate;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.driftChecks;
        if (threshold < 0.0)
            return std::nullopt;
        auto ns = newestByStable_.find(key.stableKey());
        if (ns == newestByStable_.end())
            return std::nullopt;
        auto it = map_.find(ns->second);
        if (it == map_.end())
            return std::nullopt; // evicted
        candidate = it->second;
    }
    if (stale_out)
        *stale_out = candidate;

    // ESP evaluation outside the lock: it walks the whole routed
    // circuit, and concurrent sweep workers must not serialize on it.
    double esp_new = estimatedSuccessProbability(
        candidate.result->hwCircuit, topo, new_calib);
    if (esp_new_out)
        *esp_new_out = esp_new;

    bool within =
        esp_new >= candidate.espAtCompile * (1.0 - threshold);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (within)
            ++stats_.driftReuses;
        else
            ++stats_.driftInvalidations;
    }
    if (!within)
        return std::nullopt;
    return candidate;
}

CompileCache::Stats
CompileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

size_t
CompileCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

void
CompileCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    newestByStable_.clear();
    order_.clear();
}

void
CompileCache::evictIfFullLocked()
{
    if (maxEntries_ == 0)
        return;
    while (map_.size() > maxEntries_ && !order_.empty()) {
        CompileFingerprint victim = order_.front();
        order_.pop_front();
        auto it = map_.find(victim);
        if (it == map_.end())
            continue;
        auto ns = newestByStable_.find(victim.stableKey());
        if (ns != newestByStable_.end() && ns->second == victim)
            newestByStable_.erase(ns);
        map_.erase(it);
        ++stats_.evictions;
    }
}

bool
cacheEnabledFromEnv()
{
    return envInt("TRIQ_CACHE", 1, 0) != 0;
}

} // namespace triq
