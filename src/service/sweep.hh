/**
 * @file
 * The parallel sweep engine: evaluate a grid of
 * (program x device x calibration-day x OptLevel) compilation cells —
 * the shape of the paper's entire evaluation (Figs. 7-12: 12
 * benchmarks x 7 machines x 4 levels x many days) — with staged
 * hoisting, a content-addressed compile cache, and drift-aware
 * recompilation.
 *
 * Pipeline staging (shared work is computed once, not per cell):
 *   1. per (program, native-CPHASE variant): lower to the CNOT basis;
 *   2. per (device, day): synthesize/validate the calibration and
 *      digest its sanitization outcome;
 *   3. per fingerprint: map/route/schedule/translate — at most one
 *      compile per distinct fingerprint, however many cells share it;
 *      results are memoized in the CompileCache across sweeps.
 *
 * Days are processed in ascending order with a barrier between them,
 * so a later day's drift check always sees the earlier days' entries —
 * exactly the "calibration feed arrives, decide what to recompile"
 * loop of the ROADMAP. Within a day, distinct fingerprints compile in
 * parallel on the src/common thread pool; everything the engine
 * produces is deterministic and independent of the thread count.
 *
 * Scheduling: each day's distinct-fingerprint compiles go through the
 * adaptive cost model (common/sched.hh) — it estimates per-cell
 * compile cost from the lowered circuit, decides serial vs. threaded
 * per day, and batches many small cells into one pool task so the
 * dispatch overhead is amortized. The decision (mode, batch size,
 * predicted vs. actual ms) is recorded in SweepStats.
 *
 * Environment knobs (defaults; explicit SweepConfig fields override):
 *   TRIQ_SWEEP_THREADS  worker threads; 0 or unset = adaptive (the
 *                       cost model picks up to hardware threads)
 *   TRIQ_CACHE          0 disables the compile cache (default on)
 *   TRIQ_SWEEP_DRIFT    drift threshold in [0,1]; negative/unset
 *                       disables drift reuse (default off)
 */

#ifndef TRIQ_SERVICE_SWEEP_HH
#define TRIQ_SERVICE_SWEEP_HH

#include <memory>
#include <string>
#include <vector>

#include "device/machines.hh"
#include "service/compile_cache.hh"

namespace triq
{

/** One program of a sweep grid, with a display name. */
struct SweepProgram
{
    std::string name;
    Circuit circuit;
};

/** The grid and the engine's tuning knobs. */
struct SweepConfig
{
    std::vector<SweepProgram> programs;
    std::vector<Device> devices;
    std::vector<int> days;        //!< Deduplicated, processed ascending.
    std::vector<OptLevel> levels;

    /**
     * Worker threads for the per-day compile fan-out. > 0 forces that
     * many workers (1 = true serial path, no pool); < 0 forces
     * adaptive mode; 0 reads TRIQ_SWEEP_THREADS, where 0/unset again
     * means adaptive (the common/sched.hh cost model decides per day).
     * Results are identical for every value.
     */
    int threads = 0;

    /** Use the compile cache. Overridden to off by TRIQ_CACHE=0. */
    bool useCache = true;

    /**
     * Max tolerated relative ESP degradation before a noise-aware
     * (CN) cell is recompiled for a new calibration day; within it the
     * previous compilation is reused (marked DriftReuse). Negative
     * disables drift reuse: every new day recompiles its CN cells.
     * -2 (the default) reads TRIQ_SWEEP_DRIFT.
     */
    double driftThreshold = -2.0;

    /**
     * Base CompileOptions for every cell; `level` is overridden per
     * cell. When `budget` is armed, compiled cells are *not* inserted
     * into the cache (a deadline makes the artifact wall-clock
     * dependent, which would break the bit-identity contract), but the
     * budget is respected by every compile — including drift-triggered
     * recompiles — with degradations recorded in the cell's
     * CompileReport as usual.
     */
    CompileOptions options;

    /**
     * Crash-safe journal path ("" = no journal). Every resolved cell
     * is appended and fsync'd as it completes (see
     * service/sweep_journal.hh), so a killed sweep loses at most the
     * cell being written.
     */
    std::string journalPath;

    /**
     * Resume from `journalPath`: cells already journaled are restored
     * (their artifacts warm the compile cache) instead of recomputed,
     * and the journal is appended to rather than truncated. The final
     * matrix is byte-identical to an uninterrupted journaled run.
     * Requires the journal's grid fingerprint to match this config.
     */
    bool resume = false;
};

/** How a cell's artifact was obtained. */
enum class CellSource
{
    Compiled,   //!< Cold compile (engine ran the full pipeline).
    CacheHit,   //!< Exact-fingerprint hit: bit-identical to a cold compile.
    DriftReuse, //!< Stale CN artifact reused within the drift threshold.
    Skipped,    //!< Program needs more qubits than the device has.

    /**
     * The cell's compile threw (e.g. strict calibration rejected a
     * corrupt feed). The error is recorded in SweepCell::error and the
     * sweep carries on — one poisoned (device, day) must not void the
     * rest of a grid that took hours to evaluate.
     */
    Error,
};

/**
 * Display name ("compiled", "cache_hit", "drift_reuse", "skipped",
 * "error").
 */
std::string cellSourceName(CellSource s);

/** One evaluated grid cell. */
struct SweepCell
{
    int programIndex = 0;
    int deviceIndex = 0;
    int day = 0;
    OptLevel level = OptLevel::OneQOptCN;

    CellSource source = CellSource::Skipped;

    /** The artifact; shared with every cell of equal fingerprint. */
    std::shared_ptr<const CompileResult> result;

    /** The cell's fingerprint (zeros when Skipped). */
    CompileFingerprint fingerprint;

    /** Predicted ESP of the artifact under *this cell's* calibration. */
    double esp = 0.0;

    /**
     * Predicted ESP under the calibration the artifact was compiled
     * against. Equal to `esp` except for DriftReuse cells, where the
     * gap is the measured drift.
     */
    double espAtCompile = 0.0;

    /** Wall-clock spent obtaining this cell (compile or lookup), ms. */
    double ms = 0.0;

    /** Why the cell failed ("" unless source == CellSource::Error). */
    std::string error;

    /**
     * True when this cell was restored from a resume journal instead
     * of being computed in this run. `source`, `esp`, `espAtCompile`
     * and `error` carry the original run's values; `ms` is 0.
     */
    bool restored = false;
};

/** Aggregate counters of one runSweep call. */
struct SweepStats
{
    int cells = 0;      //!< Evaluated cells (excluding Skipped/Error).
    int skipped = 0;    //!< Program-too-large cells.
    int errors = 0;     //!< Cells whose compile threw (CellSource::Error).
    int compiles = 0;   //!< Cold compiles actually run.
    int cacheHits = 0;  //!< Exact-fingerprint reuses.
    int driftReuses = 0;    //!< Within-threshold stale reuses.
    int driftRecompiles = 0; //!< CN recompiles forced past the threshold.
    int restoredCells = 0;   //!< Cells restored from a resume journal.

    /**
     * Mapper-search aggregates over the cells *compiled by this run*
     * (cache hits, drift reuses and restored cells carry no fresh
     * search): total B&B nodes, per-pruning-rule cut counts, cells
     * whose mapper degraded below the requested engine, and drift
     * recompiles that warm-started from the stale placement. These make
     * search regressions observable in production sweeps, not just in
     * the micro_mapper bench.
     */
    long mapperNodes = 0;
    long mapperBoundPruned = 0;
    long mapperSymmetryPruned = 0;
    long mapperDominancePruned = 0;
    int mapperFallbacks = 0;
    int mapperWarmStarts = 0;
    double wallMs = 0.0;     //!< End-to-end engine wall clock.
    int threads = 1;         //!< Workers actually used (max over days).

    /**
     * The scheduler's per-day fan-out decisions, aggregated:
     * "serial"/"threaded" when every day agreed, "mixed" otherwise;
     * batch size and task count from the largest day; predicted and
     * actual milliseconds summed over the per-day fan-outs.
     */
    std::string schedMode = "serial";
    int schedItemsPerTask = 1;  //!< Cells carried per pool task.
    int schedTasks = 0;         //!< Pool tasks enqueued (0 = serial).
    double schedPredictedMs = 0.0;
    double schedActualMs = 0.0;
};

/** Everything runSweep produces. */
struct SweepResult
{
    /** Cells in grid order: programs x devices x days x levels. */
    std::vector<SweepCell> cells;
    SweepStats stats;
};

/**
 * Evaluate the grid. @param cache The memo to consult and fill; may be
 * null (every cell compiles cold, as if the cache were disabled).
 * @throws FatalError when the grid is empty in any dimension.
 */
SweepResult runSweep(const SweepConfig &config, CompileCache *cache);

/** Result of one cell compiled through compileThroughCache. */
struct CachedCompile
{
    std::shared_ptr<const CompileResult> result;
    CellSource source = CellSource::Compiled;
    CompileFingerprint fingerprint;
    double esp = 0.0;          //!< Under `calib`.
    double espAtCompile = 0.0; //!< Under the artifact's own calibration.
};

/**
 * Single-cell front door to the cache (the bench_util entry point):
 * fingerprint, look up, optionally drift-check, compile on miss,
 * memoize. Exactly the per-cell step runSweep runs for each distinct
 * fingerprint.
 *
 * @param cache The memo; null forces a cold compile.
 * @param program The *source* program (lowering is done here).
 * @param drift_threshold As SweepConfig::driftThreshold; pass a
 *        negative value for exact-only matching.
 */
CachedCompile compileThroughCache(CompileCache *cache,
                                  const Circuit &program,
                                  const Device &dev, int day,
                                  const Calibration &calib,
                                  const CompileOptions &opts,
                                  double drift_threshold = -1.0);

/** TRIQ_SWEEP_THREADS; 0 or unset = adaptive (returns 0). */
int defaultSweepThreads();

/** TRIQ_SWEEP_DRIFT, default = disabled (-1). */
double defaultDriftThreshold();

} // namespace triq

#endif // TRIQ_SERVICE_SWEEP_HH
