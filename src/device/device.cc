#include "device/device.hh"

#include <utility>

#include "common/logging.hh"

namespace triq
{

Device::Device(std::string name, Topology topo, GateSet gate_set,
               NoiseSpec noise)
    : name_(std::move(name)), topo_(std::move(topo)), gateSet_(gate_set),
      noise_(noise)
{
    if (!topo_.connected())
        fatal("Device ", name_, ": topology is not connected");
}

Calibration
Device::calibrate(int day) const
{
    return synthesizeCalibration(topo_, noise_, name_, day);
}

Calibration
Device::averageCalibration() const
{
    return triq::averageCalibration(topo_, noise_);
}

} // namespace triq
