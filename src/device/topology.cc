#include "device/topology.hh"

#include <queue>

#include "common/logging.hh"

namespace triq
{

Topology::Topology(int num_qubits)
    : numQubits_(num_qubits), adj_(num_qubits),
      edgeId_(num_qubits, std::vector<int>(num_qubits, -1))
{
    if (num_qubits < 0)
        panic("Topology: negative qubit count ", num_qubits);
}

int
Topology::addEdge(HwQubit a, HwQubit b, bool directed)
{
    if (a < 0 || a >= numQubits_ || b < 0 || b >= numQubits_)
        fatal("Topology::addEdge: qubit out of range (", a, ",", b, ")");
    if (a == b)
        fatal("Topology::addEdge: self loop on qubit ", a);
    if (edgeId_[a][b] != -1)
        fatal("Topology::addEdge: duplicate edge (", a, ",", b, ")");
    int id = static_cast<int>(edges_.size());
    edges_.push_back({a, b, directed});
    adj_[a].push_back(b);
    adj_[b].push_back(a);
    edgeId_[a][b] = id;
    edgeId_[b][a] = id;
    return id;
}

const Coupling &
Topology::edge(int id) const
{
    if (id < 0 || id >= numEdges())
        panic("Topology::edge: bad edge id ", id);
    return edges_[id];
}

const std::vector<HwQubit> &
Topology::neighbors(HwQubit q) const
{
    if (q < 0 || q >= numQubits_)
        panic("Topology::neighbors: qubit out of range ", q);
    return adj_[q];
}

int
Topology::edgeBetween(HwQubit a, HwQubit b) const
{
    if (a < 0 || a >= numQubits_ || b < 0 || b >= numQubits_)
        panic("Topology::edgeBetween: qubit out of range (", a, ",", b, ")");
    return edgeId_[a][b];
}

bool
Topology::adjacent(HwQubit a, HwQubit b) const
{
    return edgeBetween(a, b) != -1;
}

bool
Topology::orientationNative(HwQubit a, HwQubit b) const
{
    int id = edgeBetween(a, b);
    if (id == -1)
        return false;
    const Coupling &c = edges_[id];
    return !c.directed || c.a == a;
}

int
Topology::distance(HwQubit a, HwQubit b) const
{
    if (a == b)
        return 0;
    std::vector<int> dist(numQubits_, -1);
    std::queue<HwQubit> q;
    dist[a] = 0;
    q.push(a);
    while (!q.empty()) {
        HwQubit u = q.front();
        q.pop();
        for (HwQubit v : adj_[u]) {
            if (dist[v] == -1) {
                dist[v] = dist[u] + 1;
                if (v == b)
                    return dist[v];
                q.push(v);
            }
        }
    }
    return -1;
}

bool
Topology::fullyConnected() const
{
    return numEdges() == numQubits_ * (numQubits_ - 1) / 2;
}

bool
Topology::connected() const
{
    if (numQubits_ == 0)
        return true;
    int reached = 0;
    std::vector<bool> seen(numQubits_, false);
    std::queue<HwQubit> q;
    seen[0] = true;
    q.push(0);
    while (!q.empty()) {
        HwQubit u = q.front();
        q.pop();
        ++reached;
        for (HwQubit v : adj_[u]) {
            if (!seen[v]) {
                seen[v] = true;
                q.push(v);
            }
        }
    }
    return reached == numQubits_;
}

Topology
Topology::line(int n, bool directed)
{
    Topology t(n);
    for (int i = 0; i + 1 < n; ++i)
        t.addEdge(i, i + 1, directed);
    return t;
}

Topology
Topology::ring(int n, bool directed)
{
    if (n < 3)
        fatal("Topology::ring: need at least 3 qubits, got ", n);
    Topology t(n);
    for (int i = 0; i < n; ++i)
        t.addEdge(i, (i + 1) % n, directed);
    return t;
}

Topology
Topology::full(int n)
{
    Topology t(n);
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            t.addEdge(i, j, false);
    return t;
}

Topology
Topology::grid(int rows, int cols, bool directed)
{
    Topology t(rows * cols);
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                t.addEdge(id(r, c), id(r, c + 1), directed);
            if (r + 1 < rows)
                t.addEdge(id(r, c), id(r + 1, c), directed);
        }
    }
    return t;
}

} // namespace triq
