#include "device/machines.hh"

#include "common/logging.hh"

namespace triq
{

namespace
{

/** Superconducting (IBM) gate durations, microseconds. */
constexpr GateDurations kIbmDurations{0.10, 0.40, 3.0};

/** Superconducting (Rigetti) gate durations, microseconds. */
constexpr GateDurations kRigettiDurations{0.06, 0.25, 2.0};

/** Trapped-ion gate durations, microseconds. */
constexpr GateDurations kUmdDurations{10.0, 250.0, 100.0};

/**
 * Spread parameters. IBM/Rigetti 2Q and readout errors vary up to ~9x
 * across qubits and calibration days (Sec. 3.3); the ion trap fluctuates
 * only 1-3% absolute due to motional mode drift.
 */
constexpr double kScSpatialSigma = 0.55;
constexpr double kScTemporalSigma = 0.35;
constexpr double kTiSpatialSigma = 0.60;
constexpr double kTiTemporalSigma = 0.15;

NoiseSpec
scNoise(double e1, double e2, double ro, double t2_us,
        const GateDurations &dur)
{
    return {e1, e2, ro, t2_us, kScSpatialSigma, kScTemporalSigma, dur};
}

} // namespace

Device
makeIbmQ5()
{
    // Bowtie: triangles (0,1,2) and (2,3,4); native control listed first.
    Topology t(5);
    t.addEdge(1, 0, true);
    t.addEdge(2, 0, true);
    t.addEdge(2, 1, true);
    t.addEdge(3, 2, true);
    t.addEdge(3, 4, true);
    t.addEdge(4, 2, true);
    return Device("IBMQ5", std::move(t), GateSet::ibm(),
                  scNoise(0.0020, 0.0476, 0.0621, 40.0, kIbmDurations));
}

Device
makeIbmQ14()
{
    // Melbourne 2x7 ladder, 18 directed CNOTs (published coupling map).
    Topology t(14);
    t.addEdge(1, 0, true);
    t.addEdge(1, 2, true);
    t.addEdge(2, 3, true);
    t.addEdge(4, 3, true);
    t.addEdge(4, 10, true);
    t.addEdge(5, 4, true);
    t.addEdge(5, 6, true);
    t.addEdge(5, 9, true);
    t.addEdge(6, 8, true);
    t.addEdge(7, 8, true);
    t.addEdge(9, 8, true);
    t.addEdge(9, 10, true);
    t.addEdge(11, 3, true);
    t.addEdge(11, 10, true);
    t.addEdge(11, 12, true);
    t.addEdge(12, 2, true);
    t.addEdge(13, 1, true);
    t.addEdge(13, 12, true);
    return Device("IBMQ14", std::move(t), GateSet::ibm(),
                  scNoise(0.0119, 0.0795, 0.0909, 30.0, kIbmDurations));
}

Device
makeIbmQ16()
{
    // Rueschlikon 2x8 ladder, 22 directed CNOTs (published coupling map).
    Topology t(16);
    t.addEdge(1, 0, true);
    t.addEdge(1, 2, true);
    t.addEdge(2, 3, true);
    t.addEdge(3, 4, true);
    t.addEdge(3, 14, true);
    t.addEdge(5, 4, true);
    t.addEdge(6, 5, true);
    t.addEdge(6, 7, true);
    t.addEdge(6, 11, true);
    t.addEdge(7, 10, true);
    t.addEdge(8, 7, true);
    t.addEdge(9, 8, true);
    t.addEdge(9, 10, true);
    t.addEdge(11, 10, true);
    t.addEdge(12, 5, true);
    t.addEdge(12, 11, true);
    t.addEdge(12, 13, true);
    t.addEdge(13, 4, true);
    t.addEdge(13, 14, true);
    t.addEdge(15, 0, true);
    t.addEdge(15, 2, true);
    t.addEdge(15, 14, true);
    return Device("IBMQ16", std::move(t), GateSet::ibm(),
                  scNoise(0.0022, 0.0714, 0.0415, 40.0, kIbmDurations));
}

Device
makeRigettiAgave()
{
    // 8-qubit ring, but only 4 qubits were usable during the study; the
    // available segment is a line.
    Topology t = Topology::line(4);
    return Device("Agave", std::move(t), GateSet::rigetti(),
                  scNoise(0.0368, 0.1080, 0.1637, 15.0, kRigettiDurations));
}

namespace
{

Topology
aspenTopology()
{
    // Two octagons 0..7 and 8..15 bridged by two links, 18 edges total.
    Topology t(16);
    for (int i = 0; i < 8; ++i)
        t.addEdge(i, (i + 1) % 8);
    for (int i = 0; i < 8; ++i)
        t.addEdge(8 + i, 8 + (i + 1) % 8);
    t.addEdge(1, 14);
    t.addEdge(2, 13);
    return t;
}

} // namespace

Device
makeRigettiAspen1()
{
    return Device("Aspen1", aspenTopology(), GateSet::rigetti(),
                  scNoise(0.0343, 0.0892, 0.0556, 20.0, kRigettiDurations));
}

Device
makeRigettiAspen3()
{
    return Device("Aspen3", aspenTopology(), GateSet::rigetti(),
                  scNoise(0.0379, 0.0537, 0.0665, 20.0, kRigettiDurations));
}

Device
makeUmdTi()
{
    NoiseSpec spec{0.0020, 0.0100, 0.0060, 1.5e6,
                   kTiSpatialSigma, kTiTemporalSigma, kUmdDurations};
    // Ion-trap error structure is drift-dominated: the good pairs
    // reshuffle between calibration cycles (Sec. 3.3).
    spec.chronicSpatial = false;
    return Device("UMDTI", Topology::full(5), GateSet::umd(), spec);
}

std::vector<Device>
allStudyDevices()
{
    std::vector<Device> out;
    out.push_back(makeIbmQ5());
    out.push_back(makeIbmQ14());
    out.push_back(makeIbmQ16());
    out.push_back(makeRigettiAgave());
    out.push_back(makeRigettiAspen1());
    out.push_back(makeRigettiAspen3());
    out.push_back(makeUmdTi());
    return out;
}

Device
makeExample8()
{
    // Fig. 6(a): qubits 0..3 on the top row, 4..7 on the bottom row.
    Topology t(8);
    t.addEdge(0, 1); // r = 0.9
    t.addEdge(1, 2); // r = 0.8
    t.addEdge(2, 3); // r = 0.9
    t.addEdge(4, 5); // r = 0.9
    t.addEdge(5, 6); // r = 0.8
    t.addEdge(6, 7); // r = 0.9
    t.addEdge(0, 4); // r = 0.9
    t.addEdge(1, 5); // r = 0.9
    t.addEdge(2, 6); // r = 0.7
    t.addEdge(3, 7); // r = 0.8
    // Mean 2Q error matching the figure's average reliability.
    NoiseSpec spec{0.001, 0.15, 0.02, 100.0, 0.0, 0.0, kIbmDurations};
    return Device("Example8", std::move(t),
                  {Vendor::IBM, TwoQKind::CNOT, OneQKind::IbmU, true}, spec);
}

std::vector<double>
fig6Reliabilities()
{
    return {0.9, 0.8, 0.9, 0.9, 0.8, 0.9, 0.9, 0.9, 0.7, 0.8};
}

Device
makeGoogle72()
{
    // Bristlecone-class 72-qubit grid. Error statistics sampled from
    // IBM-like distributions, as in the paper's scaling methodology.
    return Device("Google72", Topology::grid(6, 12), GateSet::ibm(),
                  scNoise(0.0020, 0.0500, 0.0500, 40.0, kIbmDurations));
}

} // namespace triq
