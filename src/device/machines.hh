/**
 * @file
 * The machines of the study (Fig. 1) plus auxiliary devices used by
 * specific experiments (the Fig. 6 example, the 72-qubit scaling target).
 *
 * Topologies follow the published coupling maps of the era; error means,
 * coherence times, qubit counts and 2Q-gate counts match Fig. 1 exactly.
 */

#ifndef TRIQ_DEVICE_MACHINES_HH
#define TRIQ_DEVICE_MACHINES_HH

#include <vector>

#include "device/device.hh"

namespace triq
{

/** IBM Q5 Tenerife: 5 qubits, 6 directed CNOTs, two triangles (bowtie). */
Device makeIbmQ5();

/** IBM Q14 Melbourne: 14 qubits, 18 directed CNOTs, 2x7 ladder. */
Device makeIbmQ14();

/** IBM Q16 Rueschlikon: 16 qubits, 22 directed CNOTs, 2x8 ladder. */
Device makeIbmQ16();

/**
 * Rigetti Agave: 8-qubit ring of which 4 qubits (a line) were available
 * during the study; modeled as the available 4-qubit line.
 */
Device makeRigettiAgave();

/** Rigetti Aspen1: 16 qubits, two octagons bridged by two links. */
Device makeRigettiAspen1();

/** Rigetti Aspen3: same topology as Aspen1, better 2Q error rates. */
Device makeRigettiAspen3();

/** UMD trapped-ion machine: 5 fully connected Yb+ ion qubits. */
Device makeUmdTi();

/** All seven study machines, in Fig. 1 order. */
std::vector<Device> allStudyDevices();

/**
 * The 8-qubit 2x4 example device of Fig. 6, with the figure's exact
 * per-edge 2Q reliabilities available via fig6Reliabilities().
 */
Device makeExample8();

/** Per-edge 2Q *reliabilities* (1 - error) of the Fig. 6 example. */
std::vector<double> fig6Reliabilities();

/**
 * A 72-qubit Bristlecone-class grid (6x12) used for the Sec. 6.5
 * compile-time scaling study. Error rates are sampled from IBM-like
 * statistics, mirroring the paper's methodology.
 */
Device makeGoogle72();

} // namespace triq

#endif // TRIQ_DEVICE_MACHINES_HH
