/**
 * @file
 * Qubit connectivity graphs for the devices in the study.
 *
 * A Topology is an undirected multigraph-free graph over hardware qubits.
 * Each edge is a hardware-supported 2Q interaction. For IBM devices of the
 * paper's era, CNOTs had a fixed control->target direction; edges carry an
 * optional direction flag so the translation pass can insert the 1Q gates
 * needed to reverse a CNOT.
 */

#ifndef TRIQ_DEVICE_TOPOLOGY_HH
#define TRIQ_DEVICE_TOPOLOGY_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace triq
{

/** One hardware-supported 2Q coupling. */
struct Coupling
{
    /** Endpoints; for directed couplings, `a` is the native control. */
    HwQubit a;
    HwQubit b;

    /** True when the hardware only drives the gate in the a->b direction. */
    bool directed;
};

/**
 * Undirected qubit connectivity graph with optional per-edge direction.
 */
class Topology
{
  public:
    /** Construct a topology over n qubits with no couplings. */
    explicit Topology(int num_qubits = 0);

    /** Number of hardware qubits. */
    int numQubits() const { return numQubits_; }

    /** Number of couplings (hardware 2Q gates). */
    int numEdges() const { return static_cast<int>(edges_.size()); }

    /**
     * Add a coupling between qubits a and b.
     *
     * @param a First endpoint (native control when directed).
     * @param b Second endpoint.
     * @param directed True when hardware fixes the gate direction a->b.
     * @return The new edge id.
     */
    int addEdge(HwQubit a, HwQubit b, bool directed = false);

    /** All couplings, indexed by edge id. */
    const std::vector<Coupling> &edges() const { return edges_; }

    /** Coupling by edge id. */
    const Coupling &edge(int id) const;

    /** Neighbors of qubit q (undirected view). */
    const std::vector<HwQubit> &neighbors(HwQubit q) const;

    /** Edge id connecting a and b, or -1 when not adjacent. */
    int edgeBetween(HwQubit a, HwQubit b) const;

    /** True when a and b share a coupling. */
    bool adjacent(HwQubit a, HwQubit b) const;

    /**
     * True when the a->b orientation is natively drivable: the edge is
     * undirected, or directed with native control a.
     */
    bool orientationNative(HwQubit a, HwQubit b) const;

    /** Hop distance between qubits (BFS); -1 when disconnected. */
    int distance(HwQubit a, HwQubit b) const;

    /** True when every qubit pair is directly coupled. */
    bool fullyConnected() const;

    /** True when the whole graph is one connected component. */
    bool connected() const;

    // Factory helpers for the standard shapes used in the study.

    /** Path 0-1-...-(n-1). */
    static Topology line(int n, bool directed = false);

    /** Cycle 0-1-...-(n-1)-0. */
    static Topology ring(int n, bool directed = false);

    /** Complete graph K_n (trapped-ion style). */
    static Topology full(int n);

    /**
     * Rectangular grid with rows x cols qubits in row-major order and
     * near-neighbor links (used for the Fig. 6 example and the 72-qubit
     * scaling study).
     */
    static Topology grid(int rows, int cols, bool directed = false);

  private:
    int numQubits_;
    std::vector<Coupling> edges_;
    std::vector<std::vector<HwQubit>> adj_;
    std::vector<std::vector<int>> edgeId_;
};

} // namespace triq

#endif // TRIQ_DEVICE_TOPOLOGY_HH
