#include "device/gateset.hh"

namespace triq
{

std::string
GateSet::describe() const
{
    std::string one, two;
    switch (oneQ) {
      case OneQKind::IbmU:
        one = "U1/U2/U3";
        break;
      case OneQKind::RigettiRxRz:
        one = "Rz,Rx(+-pi/2)";
        break;
      case OneQKind::UmdRxyRz:
        one = "Rz,Rxy(theta,phi)";
        break;
      case OneQKind::GenericRot:
        one = "Rx/Ry/Rz";
        break;
    }
    switch (twoQ) {
      case TwoQKind::CNOT:
        two = "CNOT";
        break;
      case TwoQKind::CZ:
        two = "CZ";
        break;
      case TwoQKind::XX:
        two = "XX";
        break;
    }
    if (nativeCphase)
        two += "+CPHASE";
    return vendorName(vendor) + " { 1Q: " + one + ", 2Q: " + two + " }";
}

GateSet
GateSet::ibm()
{
    return {Vendor::IBM, TwoQKind::CNOT, OneQKind::IbmU, true};
}

GateSet
GateSet::rigetti()
{
    return {Vendor::Rigetti, TwoQKind::CZ, OneQKind::RigettiRxRz, true};
}

GateSet
GateSet::rigettiExtended()
{
    GateSet gs = rigetti();
    gs.nativeCphase = true;
    return gs;
}

GateSet
GateSet::umd()
{
    return {Vendor::UMD, TwoQKind::XX, OneQKind::UmdRxyRz, true};
}

std::string
vendorName(Vendor v)
{
    switch (v) {
      case Vendor::IBM:
        return "IBM";
      case Vendor::Rigetti:
        return "Rigetti";
      case Vendor::UMD:
        return "UMD";
    }
    return "?";
}

} // namespace triq
