/**
 * @file
 * A Device bundles everything TriQ needs to know about one machine:
 * connectivity, software-visible gate set, and nominal noise behaviour.
 * This is exactly the "device-specific inputs" box of Fig. 4 — the core
 * compiler never hard-codes a vendor, it only reads these inputs.
 */

#ifndef TRIQ_DEVICE_DEVICE_HH
#define TRIQ_DEVICE_DEVICE_HH

#include <string>

#include "device/calibration.hh"
#include "device/gateset.hh"
#include "device/topology.hh"

namespace triq
{

/**
 * One target machine: name, topology, gate set and noise specification.
 *
 * Devices are immutable after construction; calibration snapshots are
 * derived on demand per "day".
 */
class Device
{
  public:
    /**
     * @param name Unique display name (also seeds calibration synthesis).
     * @param topo Hardware connectivity.
     * @param gate_set Software-visible gate interface.
     * @param noise Nominal error means, coherence, spreads, durations.
     */
    Device(std::string name, Topology topo, GateSet gate_set,
           NoiseSpec noise);

    const std::string &name() const { return name_; }
    Vendor vendor() const { return gateSet_.vendor; }
    const Topology &topology() const { return topo_; }
    const GateSet &gateSet() const { return gateSet_; }
    const NoiseSpec &noiseSpec() const { return noise_; }

    int numQubits() const { return topo_.numQubits(); }

    /** Synthesized calibration snapshot for the given day (Sec. 5). */
    Calibration calibrate(int day) const;

    /** Noise-unaware average calibration (drives TriQ-1QOptC). */
    Calibration averageCalibration() const;

  private:
    std::string name_;
    Topology topo_;
    GateSet gateSet_;
    NoiseSpec noise_;
};

} // namespace triq

#endif // TRIQ_DEVICE_DEVICE_HH
