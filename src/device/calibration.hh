/**
 * @file
 * Calibration data: per-qubit and per-edge error rates, coherence times
 * and gate durations.
 *
 * The paper consumes daily machine calibration feeds (IBM posts them
 * twice a day; Rigetti/UMD supplied theirs directly). This repo has no
 * hardware, so calibrations are *synthesized*: each device carries nominal
 * Fig.-1 error means plus spread parameters, and a deterministic
 * (device, day)-seeded log-normal model produces per-qubit/per-edge
 * snapshots whose spatial x temporal spread matches the paper's
 * observations (up to ~9x across qubits and days on IBM/Rigetti, 1-3%
 * fluctuation on the trapped-ion machine; see Fig. 3).
 */

#ifndef TRIQ_DEVICE_CALIBRATION_HH
#define TRIQ_DEVICE_CALIBRATION_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/diagnostics.hh"

namespace triq
{

class FaultInjector;
class Topology;

/**
 * How Calibration::validate treats invalid data: Strict records errors
 * and leaves the snapshot untouched (reject); Sanitize clamps each bad
 * value to the nearest physical one and records a warning (repair).
 */
enum class ValidateMode
{
    Strict,
    Sanitize,
};

/** Wall-clock gate durations in microseconds. */
struct GateDurations
{
    double oneQ;    //!< 1Q pulse duration.
    double twoQ;    //!< 2Q gate duration.
    double readout; //!< Measurement duration.
};

/**
 * One calibration snapshot for a device.
 *
 * Error rates are probabilities in [0, 1]. 2Q errors are indexed by
 * topology edge id; 1Q/readout errors and coherence by qubit id.
 */
struct Calibration
{
    int numQubits = 0;

    std::vector<double> err1q; //!< Per-qubit 1Q gate error.
    std::vector<double> errRO; //!< Per-qubit readout error.
    std::vector<double> t2Us;  //!< Per-qubit coherence time (us).
    std::vector<double> err2q; //!< Per-edge 2Q gate error.

    GateDurations durations{0.0, 0.0, 0.0};

    /**
     * Crosstalk multiplier: when two 2Q gates overlap in time on
     * spatially adjacent edges, each gate's error probability scales by
     * (1 + crosstalkFactor). Zero (the default) reproduces the paper's
     * independent-error model; the ablation harness explores nonzero
     * values.
     */
    double crosstalkFactor = 0.0;

    /** Arithmetic mean of per-qubit 1Q errors. */
    double avg1q() const;

    /** Arithmetic mean of per-edge 2Q errors. */
    double avg2q() const;

    /** Arithmetic mean of per-qubit readout errors. */
    double avgRO() const;

    /** Serialize to a simple line-oriented text format. */
    void save(std::ostream &os) const;

    /** Parse the format written by save(). Throws FatalError on bad data. */
    static Calibration load(std::istream &is);

    /**
     * Check every field for physical validity: error rates must be
     * finite and in [0, 1), coherence times and gate durations finite
     * and positive, the crosstalk factor finite and non-negative, and
     * the per-qubit vectors sized to `numQubits`.
     *
     * In Sanitize mode each violation is repaired in place (clamped or
     * resized with pessimistic fill values) and recorded as a warning;
     * in Strict mode violations are recorded as errors and the data is
     * left untouched. Structural problems that no clamp can fix (a
     * negative qubit count) are errors in both modes.
     *
     * @return Number of repairs performed (always 0 in Strict mode).
     */
    int validate(ValidateMode mode, Diagnostics &diags);

    /**
     * validate() plus topology cross-checks: the snapshot's qubit count
     * must match the topology's, err2q must cover every edge, and the
     * topology must be connected (a disconnected device cannot route,
     * so it is an error in both modes).
     */
    int validate(const Topology &topo, ValidateMode mode,
                 Diagnostics &diags);
};

/**
 * Corrupt calibration fields through a FaultInjector (no-op unless the
 * injector arms calibration faults). Pairs with validate(Sanitize) to
 * prove the pipeline degrades instead of crashing on corrupt feeds.
 *
 * @return Number of values corrupted.
 */
int injectCalibrationFaults(Calibration &calib, FaultInjector &inj);

/**
 * Noise specification: nominal device characteristics (Fig. 1) plus the
 * spread parameters of the synthetic calibration model.
 */
struct NoiseSpec
{
    double mean1q; //!< Nominal 1Q error rate.
    double mean2q; //!< Nominal 2Q error rate.
    double meanRO; //!< Nominal readout error rate.

    double coherenceUs; //!< Nominal T2 coherence time in microseconds.

    /** Multiplicative spread (sigma of ln X) across qubits/edges. */
    double spatialSigma;

    /** Multiplicative spread across calibration days. */
    double temporalSigma;

    GateDurations durations;

    /** Crosstalk multiplier propagated into calibrations (see above). */
    double crosstalkFactor = 0.0;

    /**
     * True when the spatial error pattern is stable across days
     * (superconducting devices: lithographic defects make the same
     * qubits chronically bad). False when it reshuffles every
     * calibration cycle (trapped ions: laser control and motional mode
     * drift dominate, so which pairs are good changes day to day).
     */
    bool chronicSpatial = true;
};

/**
 * Synthesize the calibration snapshot of `device_name` on day `day`.
 *
 * Deterministic: the same (topology, spec, device_name, day) always
 * produces the same snapshot. Spatial structure (which qubits/edges are
 * chronically good or bad) is stable across days; a per-day multiplier
 * models drift.
 *
 * @param topo Device connectivity (sizes the per-edge vectors).
 * @param spec Nominal means and spread parameters.
 * @param device_name Seed component; distinct devices get distinct data.
 * @param day Calibration-cycle index (0, 1, 2, ...).
 */
Calibration synthesizeCalibration(const Topology &topo, const NoiseSpec &spec,
                                  const std::string &device_name, int day);

/**
 * The noise-unaware "average" calibration used by TriQ-1QOptC (Sec. 4.2):
 * every edge carries the device-mean 2Q error, every qubit the mean 1Q
 * and readout error.
 */
Calibration averageCalibration(const Topology &topo, const NoiseSpec &spec);

} // namespace triq

#endif // TRIQ_DEVICE_CALIBRATION_HH
