#include "device/calibration.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/fault_injector.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "device/topology.hh"

namespace triq
{

namespace
{

/** Keep synthesized error rates physical and nonzero. */
double
clampError(double e)
{
    return std::clamp(e, 1e-5, 0.5);
}

/**
 * Log-normal sample whose *mean* is `target_mean` given total sigma.
 * (Log-normal mean = median * exp(sigma^2 / 2).)
 */
double
meanPreservingMedian(double target_mean, double sigma)
{
    return target_mean * std::exp(-0.5 * sigma * sigma);
}

} // namespace

double
Calibration::avg1q() const
{
    double s = 0.0;
    for (double e : err1q)
        s += e;
    return err1q.empty() ? 0.0 : s / static_cast<double>(err1q.size());
}

double
Calibration::avg2q() const
{
    double s = 0.0;
    for (double e : err2q)
        s += e;
    return err2q.empty() ? 0.0 : s / static_cast<double>(err2q.size());
}

double
Calibration::avgRO() const
{
    double s = 0.0;
    for (double e : errRO)
        s += e;
    return errRO.empty() ? 0.0 : s / static_cast<double>(errRO.size());
}

void
Calibration::save(std::ostream &os) const
{
    // Full round-trip precision: error rates feed reliability products
    // where tiny differences change mapper decisions.
    os << std::setprecision(17);
    os << "calibration v2\n";
    os << "qubits " << numQubits << "\n";
    os << "edges " << err2q.size() << "\n";
    os << "durations " << durations.oneQ << " " << durations.twoQ << " "
       << durations.readout << "\n";
    os << "crosstalk " << crosstalkFactor << "\n";
    os << "err1q";
    for (double e : err1q)
        os << " " << e;
    os << "\nerrRO";
    for (double e : errRO)
        os << " " << e;
    os << "\nt2us";
    for (double t : t2Us)
        os << " " << t;
    os << "\nerr2q";
    for (double e : err2q)
        os << " " << e;
    os << "\n";
}

Calibration
Calibration::load(std::istream &is)
{
    Calibration c;
    std::string word, version;
    if (!(is >> word >> version) || word != "calibration" ||
        (version != "v1" && version != "v2"))
        fatal("Calibration::load: bad header");
    size_t nedges = 0;
    auto expect = [&](const char *key) {
        if (!(is >> word) || word != key)
            fatal("Calibration::load: expected '", key, "', got '", word,
                  "'");
    };
    expect("qubits");
    if (!(is >> c.numQubits) || c.numQubits < 0)
        fatal("Calibration::load: bad qubit count");
    // Plausibility caps: a corrupt count must produce a diagnostic, not
    // a multi-gigabyte resize.
    if (c.numQubits > 1000000)
        fatal("Calibration::load: implausible qubit count ", c.numQubits);
    expect("edges");
    if (!(is >> nedges) || nedges > 10000000)
        fatal("Calibration::load: bad edge count");
    expect("durations");
    if (!(is >> c.durations.oneQ >> c.durations.twoQ >> c.durations.readout))
        fatal("Calibration::load: bad durations");
    if (version == "v2") {
        expect("crosstalk");
        if (!(is >> c.crosstalkFactor))
            fatal("Calibration::load: bad crosstalk factor");
    }
    auto read_vec = [&](const char *key, std::vector<double> &v, size_t n) {
        expect(key);
        v.resize(n);
        for (size_t i = 0; i < n; ++i)
            if (!(is >> v[i]))
                fatal("Calibration::load: truncated ", key);
    };
    size_t nq = static_cast<size_t>(c.numQubits);
    read_vec("err1q", c.err1q, nq);
    read_vec("errRO", c.errRO, nq);
    read_vec("t2us", c.t2Us, nq);
    read_vec("err2q", c.err2q, nedges);
    return c;
}

namespace
{

/** Error rates clamp into [0, kMaxErrRate]: strictly below 1 so every
 *  reliability stays positive and -log costs stay finite downstream. */
constexpr double kMaxErrRate = 0.999999;

/** Pessimistic-but-valid replacements for unrepairable garbage. */
constexpr double kFallbackErrRate = 0.5;
constexpr double kFallbackT2Us = 1.0;

/** One value-level check/repair; returns true when `v` was bad. */
bool
checkRate(double &v, ValidateMode mode, Diagnostics &diags,
          const char *field, size_t index)
{
    std::string where =
        std::string(field) + "[" + std::to_string(index) + "]";
    if (!std::isfinite(v)) {
        if (mode == ValidateMode::Sanitize) {
            diags.warning("calib.nan-error-rate",
                          where + " is not finite; clamped to " +
                              std::to_string(kFallbackErrRate));
            v = kFallbackErrRate;
        } else {
            diags.error("calib.nan-error-rate", where + " is not finite");
        }
        return true;
    }
    if (v < 0.0 || v > kMaxErrRate) {
        double clamped = std::clamp(v, 0.0, kMaxErrRate);
        if (mode == ValidateMode::Sanitize) {
            diags.warning("calib.error-rate-out-of-range",
                          where + " = " + std::to_string(v) +
                              " outside [0, 1); clamped to " +
                              std::to_string(clamped));
            v = clamped;
        } else {
            diags.error("calib.error-rate-out-of-range",
                        where + " = " + std::to_string(v) +
                            " outside [0, 1)");
        }
        return true;
    }
    return false;
}

/** Positive-finite check for durations and coherence times. */
bool
checkPositive(double &v, double fallback, ValidateMode mode,
              Diagnostics &diags, const std::string &where)
{
    if (std::isfinite(v) && v > 0.0)
        return false;
    if (mode == ValidateMode::Sanitize) {
        diags.warning("calib.nonpositive-duration",
                      where + " = " + std::to_string(v) +
                          " must be positive; replaced with " +
                          std::to_string(fallback));
        v = fallback;
    } else {
        diags.error("calib.nonpositive-duration",
                    where + " = " + std::to_string(v) +
                        " must be positive");
    }
    return true;
}

/** Per-qubit vector sized to n? Sanitize resizes with `fill`. */
bool
checkSize(std::vector<double> &v, size_t n, double fill, ValidateMode mode,
          Diagnostics &diags, const char *field)
{
    if (v.size() == n)
        return false;
    if (mode == ValidateMode::Sanitize) {
        diags.warning("calib.size-mismatch",
                      std::string(field) + " has " +
                          std::to_string(v.size()) + " entries, expected " +
                          std::to_string(n) + "; resized");
        v.resize(n, fill);
    } else {
        diags.error("calib.size-mismatch",
                    std::string(field) + " has " +
                        std::to_string(v.size()) + " entries, expected " +
                        std::to_string(n));
    }
    return true;
}

} // namespace

int
Calibration::validate(ValidateMode mode, Diagnostics &diags)
{
    int repairs = 0;
    auto count = [&](bool bad) {
        if (bad && mode == ValidateMode::Sanitize)
            ++repairs;
    };

    if (numQubits < 0) {
        // No clamp makes a negative qubit count meaningful.
        diags.error("calib.negative-qubit-count",
                    "qubit count " + std::to_string(numQubits) +
                        " is negative");
        return repairs;
    }

    size_t nq = static_cast<size_t>(numQubits);
    count(checkSize(err1q, nq, kFallbackErrRate, mode, diags, "err1q"));
    count(checkSize(errRO, nq, kFallbackErrRate, mode, diags, "errRO"));
    count(checkSize(t2Us, nq, kFallbackT2Us, mode, diags, "t2us"));

    for (size_t i = 0; i < err1q.size(); ++i)
        count(checkRate(err1q[i], mode, diags, "err1q", i));
    for (size_t i = 0; i < errRO.size(); ++i)
        count(checkRate(errRO[i], mode, diags, "errRO", i));
    for (size_t i = 0; i < err2q.size(); ++i)
        count(checkRate(err2q[i], mode, diags, "err2q", i));
    for (size_t i = 0; i < t2Us.size(); ++i)
        count(checkPositive(t2Us[i], kFallbackT2Us, mode, diags,
                            "t2us[" + std::to_string(i) + "]"));

    count(checkPositive(durations.oneQ, 0.05, mode, diags,
                        "durations.oneQ"));
    count(checkPositive(durations.twoQ, 0.3, mode, diags,
                        "durations.twoQ"));
    count(checkPositive(durations.readout, 1.0, mode, diags,
                        "durations.readout"));

    if (!std::isfinite(crosstalkFactor) || crosstalkFactor < 0.0) {
        if (mode == ValidateMode::Sanitize) {
            diags.warning("calib.bad-crosstalk",
                          "crosstalk factor " +
                              std::to_string(crosstalkFactor) +
                              " invalid; reset to 0");
            crosstalkFactor = 0.0;
            ++repairs;
        } else {
            diags.error("calib.bad-crosstalk",
                        "crosstalk factor " +
                            std::to_string(crosstalkFactor) +
                            " must be finite and non-negative");
        }
    }
    return repairs;
}

int
Calibration::validate(const Topology &topo, ValidateMode mode,
                      Diagnostics &diags)
{
    if (numQubits != topo.numQubits()) {
        diags.error("calib.qubit-count-mismatch",
                    "calibration covers " + std::to_string(numQubits) +
                        " qubits but the topology has " +
                        std::to_string(topo.numQubits()));
        return 0;
    }
    if (!topo.connected())
        diags.error("topo.disconnected",
                    "device topology is not connected; no SWAP chain can "
                    "join its components");

    int repairs = 0;
    size_t ne = static_cast<size_t>(topo.numEdges());
    if (err2q.size() != ne) {
        if (mode == ValidateMode::Sanitize) {
            diags.warning("calib.missing-edges",
                          "err2q covers " + std::to_string(err2q.size()) +
                              " edges, topology has " + std::to_string(ne) +
                              "; missing entries filled pessimistically");
            err2q.resize(ne, kFallbackErrRate);
            ++repairs;
        } else {
            diags.error("calib.missing-edges",
                        "err2q covers " + std::to_string(err2q.size()) +
                            " edges, topology has " + std::to_string(ne));
        }
    }
    return repairs + validate(mode, diags);
}

int
injectCalibrationFaults(Calibration &calib, FaultInjector &inj)
{
    if (!inj.armsCalibration())
        return 0;
    int hits = 0;
    hits += inj.corruptValues(calib.err1q);
    hits += inj.corruptValues(calib.errRO);
    hits += inj.corruptValues(calib.err2q);
    hits += inj.corruptValues(calib.t2Us);
    if (inj.corruptScalar(calib.durations.twoQ))
        ++hits;
    return hits;
}

Calibration
synthesizeCalibration(const Topology &topo, const NoiseSpec &spec,
                      const std::string &device_name, int day)
{
    Calibration c;
    c.numQubits = topo.numQubits();
    c.durations = spec.durations;
    c.crosstalkFactor = spec.crosstalkFactor;

    // Spatial structure: which qubits/edges are good or bad. Chronic
    // (day-independent) for superconducting devices; reshuffled per
    // calibration cycle for drift-dominated (trapped-ion) devices.
    Rng spatial(spec.chronicSpatial
                    ? device_name + "/spatial"
                    : device_name + "/spatial/day" + std::to_string(day));
    // Daily drift multipliers.
    Rng daily(device_name + "/day" + std::to_string(day));

    const double ss = spec.spatialSigma;
    const double ts = spec.temporalSigma;

    c.err1q.resize(c.numQubits);
    c.errRO.resize(c.numQubits);
    c.t2Us.resize(c.numQubits);
    for (int q = 0; q < c.numQubits; ++q) {
        // 1Q errors vary less than 2Q errors on real hardware; halve the
        // spreads for them.
        double base1 =
            spatial.logNormal(meanPreservingMedian(spec.mean1q, 0.5 * ss),
                              0.5 * ss);
        double basero =
            spatial.logNormal(meanPreservingMedian(spec.meanRO, 0.5 * ss),
                              0.5 * ss);
        double baset2 = spatial.logNormal(spec.coherenceUs, 0.15);
        c.err1q[q] = clampError(base1 * daily.logNormal(1.0, 0.5 * ts));
        c.errRO[q] = clampError(basero * daily.logNormal(1.0, 0.5 * ts));
        c.t2Us[q] = baset2 * daily.logNormal(1.0, 0.1);
    }

    c.err2q.resize(topo.numEdges());
    for (int e = 0; e < topo.numEdges(); ++e) {
        double base =
            spatial.logNormal(meanPreservingMedian(spec.mean2q, ss), ss);
        c.err2q[e] = clampError(base * daily.logNormal(1.0, ts));
    }

    // The synthetic feed honors the same contract a real vendor feed
    // must pass: every snapshot leaves here sanitized. A nonsensical
    // NoiseSpec (NaN means, zero durations) degrades to clamped values
    // with warnings instead of poisoning the mapper.
    Diagnostics diags(device_name + "/day" + std::to_string(day));
    if (c.validate(topo, ValidateMode::Sanitize, diags) > 0)
        warn("synthesizeCalibration: repaired snapshot:\n", diags.text());
    return c;
}

Calibration
averageCalibration(const Topology &topo, const NoiseSpec &spec)
{
    Calibration c;
    c.numQubits = topo.numQubits();
    c.durations = spec.durations;
    c.crosstalkFactor = spec.crosstalkFactor;
    c.err1q.assign(c.numQubits, spec.mean1q);
    c.errRO.assign(c.numQubits, spec.meanRO);
    c.t2Us.assign(c.numQubits, spec.coherenceUs);
    c.err2q.assign(topo.numEdges(), spec.mean2q);

    Diagnostics diags("average-calibration");
    if (c.validate(topo, ValidateMode::Sanitize, diags) > 0)
        warn("averageCalibration: repaired snapshot:\n", diags.text());
    return c;
}

} // namespace triq
