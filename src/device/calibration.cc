#include "device/calibration.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "device/topology.hh"

namespace triq
{

namespace
{

/** Keep synthesized error rates physical and nonzero. */
double
clampError(double e)
{
    return std::clamp(e, 1e-5, 0.5);
}

/**
 * Log-normal sample whose *mean* is `target_mean` given total sigma.
 * (Log-normal mean = median * exp(sigma^2 / 2).)
 */
double
meanPreservingMedian(double target_mean, double sigma)
{
    return target_mean * std::exp(-0.5 * sigma * sigma);
}

} // namespace

double
Calibration::avg1q() const
{
    double s = 0.0;
    for (double e : err1q)
        s += e;
    return err1q.empty() ? 0.0 : s / static_cast<double>(err1q.size());
}

double
Calibration::avg2q() const
{
    double s = 0.0;
    for (double e : err2q)
        s += e;
    return err2q.empty() ? 0.0 : s / static_cast<double>(err2q.size());
}

double
Calibration::avgRO() const
{
    double s = 0.0;
    for (double e : errRO)
        s += e;
    return errRO.empty() ? 0.0 : s / static_cast<double>(errRO.size());
}

void
Calibration::save(std::ostream &os) const
{
    // Full round-trip precision: error rates feed reliability products
    // where tiny differences change mapper decisions.
    os << std::setprecision(17);
    os << "calibration v2\n";
    os << "qubits " << numQubits << "\n";
    os << "edges " << err2q.size() << "\n";
    os << "durations " << durations.oneQ << " " << durations.twoQ << " "
       << durations.readout << "\n";
    os << "crosstalk " << crosstalkFactor << "\n";
    os << "err1q";
    for (double e : err1q)
        os << " " << e;
    os << "\nerrRO";
    for (double e : errRO)
        os << " " << e;
    os << "\nt2us";
    for (double t : t2Us)
        os << " " << t;
    os << "\nerr2q";
    for (double e : err2q)
        os << " " << e;
    os << "\n";
}

Calibration
Calibration::load(std::istream &is)
{
    Calibration c;
    std::string word, version;
    if (!(is >> word >> version) || word != "calibration" ||
        (version != "v1" && version != "v2"))
        fatal("Calibration::load: bad header");
    size_t nedges = 0;
    auto expect = [&](const char *key) {
        if (!(is >> word) || word != key)
            fatal("Calibration::load: expected '", key, "', got '", word,
                  "'");
    };
    expect("qubits");
    if (!(is >> c.numQubits) || c.numQubits < 0)
        fatal("Calibration::load: bad qubit count");
    expect("edges");
    if (!(is >> nedges))
        fatal("Calibration::load: bad edge count");
    expect("durations");
    if (!(is >> c.durations.oneQ >> c.durations.twoQ >> c.durations.readout))
        fatal("Calibration::load: bad durations");
    if (version == "v2") {
        expect("crosstalk");
        if (!(is >> c.crosstalkFactor))
            fatal("Calibration::load: bad crosstalk factor");
    }
    auto read_vec = [&](const char *key, std::vector<double> &v, size_t n) {
        expect(key);
        v.resize(n);
        for (size_t i = 0; i < n; ++i)
            if (!(is >> v[i]))
                fatal("Calibration::load: truncated ", key);
    };
    size_t nq = static_cast<size_t>(c.numQubits);
    read_vec("err1q", c.err1q, nq);
    read_vec("errRO", c.errRO, nq);
    read_vec("t2us", c.t2Us, nq);
    read_vec("err2q", c.err2q, nedges);
    return c;
}

Calibration
synthesizeCalibration(const Topology &topo, const NoiseSpec &spec,
                      const std::string &device_name, int day)
{
    Calibration c;
    c.numQubits = topo.numQubits();
    c.durations = spec.durations;
    c.crosstalkFactor = spec.crosstalkFactor;

    // Spatial structure: which qubits/edges are good or bad. Chronic
    // (day-independent) for superconducting devices; reshuffled per
    // calibration cycle for drift-dominated (trapped-ion) devices.
    Rng spatial(spec.chronicSpatial
                    ? device_name + "/spatial"
                    : device_name + "/spatial/day" + std::to_string(day));
    // Daily drift multipliers.
    Rng daily(device_name + "/day" + std::to_string(day));

    const double ss = spec.spatialSigma;
    const double ts = spec.temporalSigma;

    c.err1q.resize(c.numQubits);
    c.errRO.resize(c.numQubits);
    c.t2Us.resize(c.numQubits);
    for (int q = 0; q < c.numQubits; ++q) {
        // 1Q errors vary less than 2Q errors on real hardware; halve the
        // spreads for them.
        double base1 =
            spatial.logNormal(meanPreservingMedian(spec.mean1q, 0.5 * ss),
                              0.5 * ss);
        double basero =
            spatial.logNormal(meanPreservingMedian(spec.meanRO, 0.5 * ss),
                              0.5 * ss);
        double baset2 = spatial.logNormal(spec.coherenceUs, 0.15);
        c.err1q[q] = clampError(base1 * daily.logNormal(1.0, 0.5 * ts));
        c.errRO[q] = clampError(basero * daily.logNormal(1.0, 0.5 * ts));
        c.t2Us[q] = baset2 * daily.logNormal(1.0, 0.1);
    }

    c.err2q.resize(topo.numEdges());
    for (int e = 0; e < topo.numEdges(); ++e) {
        double base =
            spatial.logNormal(meanPreservingMedian(spec.mean2q, ss), ss);
        c.err2q[e] = clampError(base * daily.logNormal(1.0, ts));
    }
    return c;
}

Calibration
averageCalibration(const Topology &topo, const NoiseSpec &spec)
{
    Calibration c;
    c.numQubits = topo.numQubits();
    c.durations = spec.durations;
    c.crosstalkFactor = spec.crosstalkFactor;
    c.err1q.assign(c.numQubits, spec.mean1q);
    c.errRO.assign(c.numQubits, spec.meanRO);
    c.t2Us.assign(c.numQubits, spec.coherenceUs);
    c.err2q.assign(topo.numEdges(), spec.mean2q);
    return c;
}

} // namespace triq
