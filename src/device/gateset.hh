/**
 * @file
 * Software-visible gate set descriptions (Fig. 2 of the paper).
 *
 * Each vendor exposes one 2Q primitive and a family of 1Q operations.
 * Z-axis rotations are "virtual" (implemented by classical phase-frame
 * bookkeeping) and therefore error-free and duration-free on all three
 * vendors; the 1Q optimization pass exploits this.
 */

#ifndef TRIQ_DEVICE_GATESET_HH
#define TRIQ_DEVICE_GATESET_HH

#include <string>

namespace triq
{

/** The three organizations whose machines the study runs on. */
enum class Vendor
{
    IBM,     //!< Superconducting transmons, cross-resonance CNOT.
    Rigetti, //!< Superconducting transmons, CZ.
    UMD,     //!< Trapped Yb+ ions, Ising XX.
};

/** The software-visible 2Q primitive. */
enum class TwoQKind
{
    CNOT, //!< IBM: CNOT built from cross resonance, directionally biased.
    CZ,   //!< Rigetti: controlled-Z.
    XX,   //!< UMD: Moelmer-Soerensen Ising interaction XX(chi).
};

/** The software-visible 1Q family. */
enum class OneQKind
{
    IbmU,        //!< U1(l) free, U2(p,l) one pulse, U3(t,p,l) two pulses.
    RigettiRxRz, //!< Rz free, Rx(+-pi/2) pulses.
    UmdRxyRz,    //!< Rz free, arbitrary Rxy(theta, phi) single pulse.
    GenericRot,  //!< Technology-independent Rx/Ry/Rz (TriQ-N codegen).
};

/**
 * Description of a machine's programmable interface.
 */
struct GateSet
{
    Vendor vendor;
    TwoQKind twoQ;
    OneQKind oneQ;

    /** True when Rz is compiled away into the classical phase frame. */
    bool virtualZ;

    /**
     * True when arbitrary-angle controlled-phase gates are software
     * visible as a single 2Q operation. The paper observes (Sec. 6.4)
     * that the Aspen machines have "more powerful native operations"
     * that were not software-visible during the study and that
     * "exposing them to the compiler would enable higher success
     * rates"; this flag models that what-if (CPHASE is native on
     * parametric CZ hardware and in the Quil ISA).
     */
    bool nativeCphase = false;

    /** Human-readable summary for reports. */
    std::string describe() const;

    /** The IBM Q interface: U1/U2/U3 + directed CNOT. */
    static GateSet ibm();

    /** The Rigetti interface: Rz/Rx(+-pi/2) + CZ. */
    static GateSet rigetti();

    /** Rigetti with parametric CPHASE exposed (the Sec. 6.4 what-if). */
    static GateSet rigettiExtended();

    /** The UMD trapped-ion interface: Rz/Rxy + XX. */
    static GateSet umd();
};

/** Short display name for a vendor. */
std::string vendorName(Vendor v);

} // namespace triq

#endif // TRIQ_DEVICE_GATESET_HH
