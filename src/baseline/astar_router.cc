#include "baseline/astar_router.hh"

#include <algorithm>
#include <map>
#include <queue>

#include "common/logging.hh"

namespace triq
{

namespace
{

/** All-pairs hop distances (BFS from every qubit). */
std::vector<std::vector<int>>
allPairsDistance(const Topology &topo)
{
    const int n = topo.numQubits();
    std::vector<std::vector<int>> dist(
        static_cast<size_t>(n), std::vector<int>(n, -1));
    for (int s = 0; s < n; ++s) {
        std::queue<int> q;
        dist[static_cast<size_t>(s)][static_cast<size_t>(s)] = 0;
        q.push(s);
        while (!q.empty()) {
            int u = q.front();
            q.pop();
            for (int v : topo.neighbors(u))
                if (dist[static_cast<size_t>(s)][static_cast<size_t>(v)] ==
                    -1) {
                    dist[static_cast<size_t>(s)][static_cast<size_t>(v)] =
                        dist[static_cast<size_t>(s)]
                            [static_cast<size_t>(u)] +
                        1;
                    q.push(v);
                }
        }
    }
    return dist;
}

/** One pending layer gate as (control, target) program qubits. */
struct LayerGate
{
    ProgQubit c;
    ProgQubit t;
};

/** Router state shared across layers. */
class AstarRouter
{
  public:
    AstarRouter(const Circuit &program, const Topology &topo, long budget)
        : topo_(topo), dist_(allPairsDistance(topo)), budget_(budget),
          out_(topo.numQubits(), program.name()),
          progToHw_(static_cast<size_t>(program.numQubits())),
          hwToProg_(static_cast<size_t>(topo.numQubits()), -1)
    {
        for (size_t p = 0; p < progToHw_.size(); ++p) {
            progToHw_[p] = static_cast<HwQubit>(p);
            hwToProg_[p] = static_cast<ProgQubit>(p);
        }
    }

    AstarRoutingResult
    run(const Circuit &program)
    {
        AstarRoutingResult res;
        res.initialMap = progToHw_;
        for (const auto &g : program.gates()) {
            switch (g.arity()) {
              case 0:
                flushLayer();
                out_.add(g);
                break;
              case 1: {
                if (touchesLayer(g))
                    flushLayer();
                Gate hw = g;
                hw.qubits[0] = progToHw_[static_cast<size_t>(g.qubit(0))];
                out_.add(hw);
                break;
              }
              case 2:
                if (g.kind != GateKind::Cnot)
                    panic("routeAstarLayered: expected CNOT basis, got ",
                          g.str());
                if (touchesLayer(g))
                    flushLayer();
                layer_.push_back({g.qubit(0), g.qubit(1)});
                break;
              default:
                panic("routeAstarLayered: composite gate ", g.str());
            }
        }
        flushLayer();
        res.circuit = std::move(out_);
        res.swapCount = swapCount_;
        res.finalMap = progToHw_;
        res.expansions = expansions_;
        return res;
    }

  private:
    const Topology &topo_;
    std::vector<std::vector<int>> dist_;
    long budget_;
    Circuit out_;
    std::vector<HwQubit> progToHw_;
    std::vector<ProgQubit> hwToProg_;
    std::vector<LayerGate> layer_;
    int swapCount_ = 0;
    long expansions_ = 0;

    bool
    touchesLayer(const Gate &g) const
    {
        for (const auto &lg : layer_)
            for (int i = 0; i < g.arity(); ++i)
                if (g.qubit(i) == lg.c || g.qubit(i) == lg.t)
                    return true;
        return false;
    }

    int
    heuristic(const std::vector<ProgQubit> &hw_to_prog) const
    {
        // Sum of (distance - 1) over layer gates given the placement.
        std::vector<HwQubit> where(progToHw_.size(), -1);
        for (size_t h = 0; h < hw_to_prog.size(); ++h)
            if (hw_to_prog[h] != -1)
                where[static_cast<size_t>(hw_to_prog[h])] =
                    static_cast<HwQubit>(h);
        int sum = 0;
        for (const auto &lg : layer_) {
            HwQubit a = where[static_cast<size_t>(lg.c)];
            HwQubit b = where[static_cast<size_t>(lg.t)];
            sum += dist_[static_cast<size_t>(a)][static_cast<size_t>(b)] -
                   1;
        }
        return sum;
    }

    void
    applySwap(HwQubit a, HwQubit b)
    {
        out_.add(Gate::swap(a, b));
        ++swapCount_;
        ProgQubit pa = hwToProg_[static_cast<size_t>(a)];
        ProgQubit pb = hwToProg_[static_cast<size_t>(b)];
        std::swap(hwToProg_[static_cast<size_t>(a)],
                  hwToProg_[static_cast<size_t>(b)]);
        if (pa != -1)
            progToHw_[static_cast<size_t>(pa)] = b;
        if (pb != -1)
            progToHw_[static_cast<size_t>(pb)] = a;
    }

    /** A* over swap sequences until every layer gate is adjacent. */
    void
    flushLayer()
    {
        if (layer_.empty())
            return;
        struct Node
        {
            std::vector<ProgQubit> hwToProg;
            int g;
            int parent;  // Index into `nodes`, -1 for the root.
            int edge;    // Topology edge swapped to reach this node.
        };
        std::vector<Node> nodes;
        nodes.push_back({hwToProg_, 0, -1, -1});
        using QEntry = std::pair<int, int>; // (f, node index)
        std::priority_queue<QEntry, std::vector<QEntry>,
                            std::greater<QEntry>>
            open;
        std::map<std::vector<ProgQubit>, int> best_g;
        best_g[hwToProg_] = 0;
        open.push({heuristic(hwToProg_), 0});
        int goal = -1;
        long local_expansions = 0;
        while (!open.empty()) {
            auto [f, idx] = open.top();
            open.pop();
            const Node node = nodes[static_cast<size_t>(idx)];
            auto it = best_g.find(node.hwToProg);
            if (it != best_g.end() && it->second < node.g)
                continue; // Stale entry.
            if (heuristic(node.hwToProg) == 0) {
                goal = idx;
                break;
            }
            if (++local_expansions > budget_) {
                goal = -1;
                break;
            }
            for (int e = 0; e < topo_.numEdges(); ++e) {
                const Coupling &cp = topo_.edge(e);
                std::vector<ProgQubit> next = node.hwToProg;
                std::swap(next[static_cast<size_t>(cp.a)],
                          next[static_cast<size_t>(cp.b)]);
                int ng = node.g + 1;
                auto bit = best_g.find(next);
                if (bit != best_g.end() && bit->second <= ng)
                    continue;
                best_g[next] = ng;
                nodes.push_back({std::move(next), ng,
                                 idx, e});
                open.push({ng + heuristic(nodes.back().hwToProg),
                           static_cast<int>(nodes.size()) - 1});
            }
        }
        expansions_ += local_expansions;
        if (goal != -1) {
            // Replay the swap path in order.
            std::vector<int> edges;
            for (int cur = goal; cur != 0;
                 cur = nodes[static_cast<size_t>(cur)].parent)
                edges.push_back(nodes[static_cast<size_t>(cur)].edge);
            std::reverse(edges.begin(), edges.end());
            for (int e : edges) {
                const Coupling &cp = topo_.edge(e);
                applySwap(cp.a, cp.b);
            }
        } else {
            // Budget exhausted: greedy fallback, one gate at a time.
            warn("routeAstarLayered: A* budget exhausted; "
                 "falling back to greedy routing for one layer");
            for (const auto &lg : layer_)
                greedyRoute(lg);
        }
        // Emit the layer's gates at their (now adjacent) positions.
        for (const auto &lg : layer_) {
            HwQubit a = progToHw_[static_cast<size_t>(lg.c)];
            HwQubit b = progToHw_[static_cast<size_t>(lg.t)];
            if (!topo_.adjacent(a, b))
                panic("routeAstarLayered: layer gate not adjacent after "
                      "routing");
            out_.add(Gate::cnot(a, b));
        }
        layer_.clear();
    }

    /** Move lg.c along a BFS-shortest path until adjacent to lg.t. */
    void
    greedyRoute(const LayerGate &lg)
    {
        int steps = 0;
        while (!topo_.adjacent(progToHw_[static_cast<size_t>(lg.c)],
                               progToHw_[static_cast<size_t>(lg.t)])) {
            if (++steps > topo_.numQubits() * topo_.numQubits())
                panic("routeAstarLayered: greedy fallback diverged");
            HwQubit hc = progToHw_[static_cast<size_t>(lg.c)];
            HwQubit ht = progToHw_[static_cast<size_t>(lg.t)];
            HwQubit best = -1;
            for (HwQubit nb : topo_.neighbors(hc))
                if (best == -1 ||
                    dist_[static_cast<size_t>(nb)]
                         [static_cast<size_t>(ht)] <
                        dist_[static_cast<size_t>(best)]
                             [static_cast<size_t>(ht)])
                    best = nb;
            applySwap(hc, best);
        }
    }
};

} // namespace

AstarRoutingResult
routeAstarLayered(const Circuit &program, const Topology &topo,
                  long expansion_budget)
{
    if (program.numQubits() > topo.numQubits())
        fatal("routeAstarLayered: program needs ", program.numQubits(),
              " qubits, device has ", topo.numQubits());
    AstarRouter router(program, topo, expansion_budget);
    return router.run(program);
}

} // namespace triq
