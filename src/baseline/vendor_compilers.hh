/**
 * @file
 * Models of the vendor compilers the paper compares against (Table 1):
 *
 *  - QiskitLike: IBM Qiskit 0.6. Lexicographic ("first few qubits")
 *    initial layout, greedy stochastic swap insertion driven purely by
 *    hop distance, no noise awareness, standard u1/u2/u3 1Q combining.
 *
 *  - QuilLike: Rigetti Quil 1.9. Simple identity layout, naive
 *    nearest-path swaps, no noise awareness, Rz/Rx compression.
 *
 * Both are built from the same pass library as TriQ, configured the way
 * Sec. 6.3 describes the vendor flows, so the comparison isolates the
 * mapping/routing/noise policies rather than code-quality differences.
 */

#ifndef TRIQ_BASELINE_VENDOR_COMPILERS_HH
#define TRIQ_BASELINE_VENDOR_COMPILERS_HH

#include "core/compiler.hh"

namespace triq
{

/**
 * Compile with the Qiskit-0.6 model.
 * @param seed Seed for the stochastic swap tie-breaking.
 */
CompileResult compileQiskitLike(const Circuit &program, const Device &dev,
                                uint64_t seed = 7);

/** Compile with the Quil-1.9 model. */
CompileResult compileQuilLike(const Circuit &program, const Device &dev,
                              uint64_t seed = 7);

} // namespace triq

#endif // TRIQ_BASELINE_VENDOR_COMPILERS_HH
