#include "baseline/vendor_compilers.hh"

#include <chrono>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/backend.hh"
#include "core/decompose.hh"
#include "core/router.hh"

namespace triq
{

namespace
{

/**
 * Compile with identity layout and hop-count routing. The routing
 * reliability matrix is built from the device's *average* calibration
 * with a small seeded jitter on each edge: with uniform edge costs the
 * most-reliable path degenerates to fewest-hops, and the jitter
 * reproduces the stochastic tie-breaking of the vendor routers.
 */
CompileResult
compileVendorStyle(const Circuit &program, const Device &dev, uint64_t seed)
{
    using Clock = std::chrono::steady_clock;
    auto t0 = Clock::now();

    if (program.numQubits() > dev.numQubits())
        fatal("vendor compiler: ", program.name(), " needs ",
              program.numQubits(), " qubits; ", dev.name(), " has ",
              dev.numQubits());

    Circuit cnot_basis = decomposeToCnotBasis(program);

    Calibration avg = dev.averageCalibration();
    Rng rng(dev.name() + "/vendor/" + std::to_string(seed));
    for (auto &e : avg.err2q)
        e *= rng.uniform(0.95, 1.05);
    ReliabilityMatrix rel(dev.topology(), avg, dev.vendor());

    ProgramInfo info = ProgramInfo::fromCircuit(cnot_basis);
    Mapping mapping = trivialMapping(info, rel);
    RoutingResult routed =
        routeCircuit(cnot_basis, mapping, dev.topology(), rel);

    TranslateOptions topts;
    topts.fuseOneQubit = true; // Vendor flows do combine 1Q gates.
    TranslateResult tr = translateForDevice(routed.circuit, dev.topology(),
                                            dev.gateSet(), topts);

    CompileResult out;
    out.hwCircuit = std::move(tr.circuit);
    out.initialMap = routed.initialMap;
    out.finalMap = routed.finalMap;
    out.swapCount = routed.swapCount;
    out.stats = tr.stats;
    out.mapperObjective = mapping.minReliability;
    out.assembly = emitAssembly(out.hwCircuit, dev.vendor());
    out.compileMs =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    return out;
}

} // namespace

CompileResult
compileQiskitLike(const Circuit &program, const Device &dev, uint64_t seed)
{
    if (dev.vendor() != Vendor::IBM)
        fatal("compileQiskitLike targets IBM devices; got ", dev.name());
    return compileVendorStyle(program, dev, seed);
}

CompileResult
compileQuilLike(const Circuit &program, const Device &dev, uint64_t seed)
{
    if (dev.vendor() != Vendor::Rigetti)
        fatal("compileQuilLike targets Rigetti devices; got ", dev.name());
    return compileVendorStyle(program, dev, seed);
}

} // namespace triq
