/**
 * @file
 * An A*-based layered router in the spirit of Zulehner, Paler and
 * Wille's IBM QX mapping method ([71] in the paper). Sec. 8 compares
 * TriQ against its open-source implementation and reports a geomean
 * 1.2x (up to 2x) 2Q-gate-count reduction in TriQ's favor.
 *
 * Model reproduced here: the circuit is processed as layers of
 * mutually disjoint 2Q gates; for each layer an A* search over SWAP
 * insertions finds a minimal swap sequence making every layer gate
 * adjacent (heuristic: sum of remaining hop distances). Hop counts
 * only — no noise awareness, no global placement optimization, which
 * is exactly the gap TriQ exploits.
 */

#ifndef TRIQ_BASELINE_ASTAR_ROUTER_HH
#define TRIQ_BASELINE_ASTAR_ROUTER_HH

#include "core/circuit.hh"
#include "device/topology.hh"

namespace triq
{

/** Output of the layered A* router. */
struct AstarRoutingResult
{
    /** Routed circuit over hardware qubits (1Q, adjacent CNOT, SWAP,
     * Measure, Barrier). */
    Circuit circuit;

    /** SWAPs inserted. */
    int swapCount = 0;

    /** Placement before/after (identity initial placement, as in the
     * original tool's default). */
    std::vector<HwQubit> initialMap;
    std::vector<HwQubit> finalMap;

    /** Total A* node expansions across all layers. */
    long expansions = 0;
};

/**
 * Route a CNOT-basis program with identity initial placement and
 * per-layer A* swap search.
 *
 * @param program CNOT-basis circuit over program qubits.
 * @param topo Device connectivity.
 * @param expansion_budget Per-layer A* node budget; when exhausted the
 *        router falls back to greedy nearest-path swaps for that layer.
 */
AstarRoutingResult routeAstarLayered(const Circuit &program,
                                     const Topology &topo,
                                     long expansion_budget = 200000);

} // namespace triq

#endif // TRIQ_BASELINE_ASTAR_ROUTER_HH
