#include "core/fingerprint.hh"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/logging.hh"
#include "device/device.hh"

namespace triq
{

namespace
{

constexpr uint64_t kFnvPrime = 1099511628211ULL;

/** Domain-separation tags so structurally similar inputs can't alias. */
enum : uint64_t
{
    kTagCircuit = 0xC1,
    kTagTopology = 0x70,
    kTagGateSet = 0x65,
    kTagCalibration = 0xCA,
    kTagOptions = 0x0F,
    kTagSanitize = 0x5A,
};

/** Full-precision double rendering for the canonical artifact text. */
std::string
fmtExact(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

Fnv1a &
Fnv1a::bytes(const void *data, size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h_ ^= p[i];
        h_ *= kFnvPrime;
    }
    return *this;
}

Fnv1a &
Fnv1a::u64(uint64_t v)
{
    return bytes(&v, sizeof(v));
}

Fnv1a &
Fnv1a::f64(double v)
{
    if (v == 0.0)
        v = 0.0; // collapse -0.0 and +0.0 to one bit pattern
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return u64(bits);
}

Fnv1a &
Fnv1a::str(const std::string &s)
{
    u64(s.size());
    return bytes(s.data(), s.size());
}

uint64_t
circuitFingerprint(const Circuit &c)
{
    Fnv1a h;
    h.u64(kTagCircuit).i64(c.numQubits()).i64(c.numGates());
    for (const Gate &g : c.gates()) {
        h.u64(static_cast<uint64_t>(g.kind));
        for (int i = 0; i < 3; ++i)
            h.i64(g.qubits[i]);
        for (int i = 0; i < 3; ++i)
            h.f64(g.params[i]);
    }
    return h.value();
}

uint64_t
topologyFingerprint(const Topology &topo)
{
    Fnv1a h;
    h.u64(kTagTopology).i64(topo.numQubits()).i64(topo.numEdges());
    for (const Coupling &e : topo.edges())
        h.i64(e.a).i64(e.b).b(e.directed);
    return h.value();
}

uint64_t
gateSetFingerprint(const GateSet &gs)
{
    Fnv1a h;
    h.u64(kTagGateSet)
        .u64(static_cast<uint64_t>(gs.vendor))
        .u64(static_cast<uint64_t>(gs.twoQ))
        .u64(static_cast<uint64_t>(gs.oneQ))
        .b(gs.virtualZ)
        .b(gs.nativeCphase);
    return h.value();
}

uint64_t
calibrationSignature(const Calibration &calib)
{
    Fnv1a h;
    h.u64(kTagCalibration).i64(calib.numQubits);
    auto vec = [&](const std::vector<double> &v) {
        h.u64(v.size());
        for (double x : v)
            h.f64(x);
    };
    vec(calib.err1q);
    vec(calib.errRO);
    vec(calib.t2Us);
    vec(calib.err2q);
    h.f64(calib.durations.oneQ)
        .f64(calib.durations.twoQ)
        .f64(calib.durations.readout)
        .f64(calib.crosstalkFactor);
    return h.value();
}

uint64_t
compileOptionsFingerprint(const CompileOptions &opts)
{
    Fnv1a h;
    h.u64(kTagOptions)
        .u64(static_cast<uint64_t>(opts.level))
        .u64(static_cast<uint64_t>(opts.mapping.kind))
        .u64(static_cast<uint64_t>(opts.mapping.objective))
        .i64(opts.mapping.nodeBudget)
        .b(opts.mapping.includeReadout)
        .u64(opts.mapping.smtTimeoutMs)
        .b(opts.peephole)
        .b(opts.emitAssembly)
        .b(opts.strictCalibration);
    return h.value();
}

uint64_t
CompileFingerprint::combined() const
{
    Fnv1a h;
    h.u64(program).u64(device).u64(calibration).u64(options);
    return h.value();
}

uint64_t
CompileFingerprint::stableKey() const
{
    Fnv1a h;
    h.u64(program).u64(device).u64(options);
    return h.value();
}

std::string
CompileFingerprint::str() const
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(combined()));
    return buf;
}

uint64_t
calibrationSanitizeDigest(const Calibration &calib, const Topology &topo)
{
    Calibration copy = calib;
    Diagnostics diags("calibration");
    int repairs = 0;
    // A structurally broken snapshot (errors even in Sanitize mode)
    // digests over its error diagnostics; compileForDevice will reject
    // it anyway, so the digest only needs to be *distinct*, not useful.
    try {
        repairs = copy.validate(topo, ValidateMode::Sanitize, diags);
    } catch (const FatalError &) {
        repairs = -1;
    }
    Fnv1a h;
    h.u64(kTagSanitize).i64(repairs);
    for (const Diagnostic &d : diags.all())
        h.u64(static_cast<uint64_t>(d.severity))
            .str(d.code)
            .str(d.message)
            .str(d.origin);
    return h.value();
}

CompileFingerprint
fingerprintCompile(const Circuit &lowered, const Device &dev,
                   const Calibration &day_calib,
                   const CompileOptions &opts)
{
    CompileFingerprint fp;
    fp.program = circuitFingerprint(lowered);
    {
        // The average-calibration signature is a per-device constant;
        // folding it in keeps structural twins (Aspen1 vs Aspen3 share
        // a topology and gate set) from aliasing in the
        // calibration-independent stableKey the drift path searches.
        Fnv1a h;
        h.u64(topologyFingerprint(dev.topology()))
            .u64(gateSetFingerprint(dev.gateSet()))
            .u64(calibrationSignature(dev.averageCalibration()));
        fp.device = h.value();
    }
    fp.options = compileOptionsFingerprint(opts);
    if (opts.level == OptLevel::OneQOptCN) {
        // Noise-aware: the mapping reads the day's snapshot.
        fp.calibration = calibrationSignature(day_calib);
    } else {
        // Noise-unaware levels map against the device average; the day
        // snapshot only shapes the report through the sanitize pass.
        Fnv1a h;
        h.u64(calibrationSignature(dev.averageCalibration()))
            .u64(calibrationSanitizeDigest(day_calib, dev.topology()));
        fp.calibration = h.value();
    }
    return fp;
}

std::string
canonicalCompileResultText(const CompileResult &res, bool include_timings)
{
    std::ostringstream os;
    os << "circuit " << res.hwCircuit.numQubits() << " "
       << res.hwCircuit.numGates() << "\n";
    for (const Gate &g : res.hwCircuit.gates()) {
        os << gateName(g.kind);
        for (int i = 0; i < g.arity(); ++i)
            os << " q" << g.qubit(i);
        int np = gateNumParams(g.kind);
        for (int i = 0; i < np; ++i)
            os << " " << fmtExact(g.params[i]);
        os << "\n";
    }
    auto map = [&](const char *label, const std::vector<HwQubit> &m) {
        os << label;
        for (HwQubit q : m)
            os << " " << q;
        os << "\n";
    };
    map("initial_map", res.initialMap);
    map("final_map", res.finalMap);
    os << "swaps " << res.swapCount << "\n"
       << "pulses1q " << res.stats.pulses1q << "\n"
       << "virtualZ " << res.stats.virtualZ << "\n"
       << "twoQ " << res.stats.twoQ << "\n"
       << "mapper_objective " << fmtExact(res.mapperObjective) << "\n"
       << "assembly_bytes " << res.assembly.size() << "\n"
       << res.assembly;
    const CompileReport &r = res.report;
    os << "report.requested_mapper " << r.requestedMapper << "\n"
       << "report.engine " << r.mapperEngine << "\n"
       << "report.nodes " << r.mapperNodes << "\n"
       << "report.optimal " << r.mapperOptimal << "\n"
       << "report.degraded " << r.degraded << "\n"
       << "report.deadline_hit " << r.deadlineHit << "\n"
       << "report.calibration_repairs " << r.calibrationRepairs << "\n";
    for (const auto &d : r.degradations)
        os << "report.degradation " << d << "\n";
    for (const auto &p : r.passes) {
        os << "report.pass " << p.pass;
        if (include_timings)
            os << " " << p.ms;
        os << "\n";
    }
    for (const Diagnostic &d : r.calibrationDiags.all())
        os << "report.diag " << d.str() << "\n";
    if (include_timings)
        os << "compile_ms " << res.compileMs << "\n";
    return os.str();
}

uint64_t
compileResultDigest(const CompileResult &res)
{
    Fnv1a h;
    h.str(canonicalCompileResultText(res, false));
    return h.value();
}

} // namespace triq
