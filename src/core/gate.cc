#include "core/gate.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace triq
{

int
gateArity(GateKind k)
{
    switch (k) {
      case GateKind::Barrier:
        return 0;
      case GateKind::I:
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::H:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::T:
      case GateKind::Tdg:
      case GateKind::Rx:
      case GateKind::Ry:
      case GateKind::Rz:
      case GateKind::Rxy:
      case GateKind::U1:
      case GateKind::U2:
      case GateKind::U3:
      case GateKind::Measure:
        return 1;
      case GateKind::Cnot:
      case GateKind::Cz:
      case GateKind::Cphase:
      case GateKind::Swap:
      case GateKind::Xx:
        return 2;
      case GateKind::Ccx:
      case GateKind::Ccz:
      case GateKind::Cswap:
        return 3;
    }
    panic("gateArity: unknown kind ", static_cast<int>(k));
}

int
gateNumParams(GateKind k)
{
    switch (k) {
      case GateKind::Rx:
      case GateKind::Ry:
      case GateKind::Rz:
      case GateKind::U1:
      case GateKind::Cphase:
      case GateKind::Xx:
        return 1;
      case GateKind::Rxy:
      case GateKind::U2:
        return 2;
      case GateKind::U3:
        return 3;
      default:
        return 0;
    }
}

std::string
gateName(GateKind k)
{
    switch (k) {
      case GateKind::I:
        return "id";
      case GateKind::X:
        return "x";
      case GateKind::Y:
        return "y";
      case GateKind::Z:
        return "z";
      case GateKind::H:
        return "h";
      case GateKind::S:
        return "s";
      case GateKind::Sdg:
        return "sdg";
      case GateKind::T:
        return "t";
      case GateKind::Tdg:
        return "tdg";
      case GateKind::Rx:
        return "rx";
      case GateKind::Ry:
        return "ry";
      case GateKind::Rz:
        return "rz";
      case GateKind::Rxy:
        return "rxy";
      case GateKind::U1:
        return "u1";
      case GateKind::U2:
        return "u2";
      case GateKind::U3:
        return "u3";
      case GateKind::Cnot:
        return "cnot";
      case GateKind::Cz:
        return "cz";
      case GateKind::Cphase:
        return "cphase";
      case GateKind::Swap:
        return "swap";
      case GateKind::Xx:
        return "xx";
      case GateKind::Ccx:
        return "ccx";
      case GateKind::Ccz:
        return "ccz";
      case GateKind::Cswap:
        return "cswap";
      case GateKind::Measure:
        return "measure";
      case GateKind::Barrier:
        return "barrier";
    }
    panic("gateName: unknown kind ", static_cast<int>(k));
}

bool
isOneQubitGate(GateKind k)
{
    return gateArity(k) == 1 && k != GateKind::Measure;
}

bool
isTwoQubitGate(GateKind k)
{
    return gateArity(k) == 2;
}

bool
isCompositeGate(GateKind k)
{
    return gateArity(k) == 3;
}

bool
isUnitaryGate(GateKind k)
{
    return k != GateKind::Measure && k != GateKind::Barrier;
}

bool
isVirtualZGate(GateKind k)
{
    switch (k) {
      case GateKind::Z:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::T:
      case GateKind::Tdg:
      case GateKind::Rz:
      case GateKind::U1:
        return true;
      default:
        return false;
    }
}

ProgQubit
Gate::qubit(int i) const
{
    if (i < 0 || i >= arity())
        panic("Gate::qubit: operand index ", i, " out of range for ",
              gateName(kind));
    return qubits[static_cast<size_t>(i)];
}

bool
Gate::actsOn(ProgQubit q) const
{
    for (int i = 0; i < arity(); ++i)
        if (qubits[static_cast<size_t>(i)] == q)
            return true;
    return false;
}

std::string
Gate::str() const
{
    std::string s = gateName(kind);
    int np = gateNumParams(kind);
    if (np > 0) {
        s += "(";
        for (int i = 0; i < np; ++i) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.4f",
                          params[static_cast<size_t>(i)]);
            s += buf;
            if (i + 1 < np)
                s += ", ";
        }
        s += ")";
    }
    for (int i = 0; i < arity(); ++i) {
        s += i == 0 ? " q" : ", q";
        s += std::to_string(qubits[static_cast<size_t>(i)]);
    }
    return s;
}

namespace
{

Gate
make(GateKind k, std::initializer_list<ProgQubit> qs,
     std::initializer_list<double> ps = {})
{
    Gate g;
    g.kind = k;
    int i = 0;
    for (ProgQubit q : qs)
        g.qubits[static_cast<size_t>(i++)] = q;
    i = 0;
    for (double p : ps)
        g.params[static_cast<size_t>(i++)] = p;
    // Reject duplicate operands ("cnot q2, q2" is meaningless).
    for (int a = 0; a < g.arity(); ++a)
        for (int b = a + 1; b < g.arity(); ++b)
            if (g.qubits[static_cast<size_t>(a)] ==
                g.qubits[static_cast<size_t>(b)])
                fatal("Gate: duplicate operand q",
                      g.qubits[static_cast<size_t>(a)], " in ", gateName(k));
    return g;
}

} // namespace

Gate Gate::i(ProgQubit q) { return make(GateKind::I, {q}); }
Gate Gate::x(ProgQubit q) { return make(GateKind::X, {q}); }
Gate Gate::y(ProgQubit q) { return make(GateKind::Y, {q}); }
Gate Gate::z(ProgQubit q) { return make(GateKind::Z, {q}); }
Gate Gate::h(ProgQubit q) { return make(GateKind::H, {q}); }
Gate Gate::s(ProgQubit q) { return make(GateKind::S, {q}); }
Gate Gate::sdg(ProgQubit q) { return make(GateKind::Sdg, {q}); }
Gate Gate::t(ProgQubit q) { return make(GateKind::T, {q}); }
Gate Gate::tdg(ProgQubit q) { return make(GateKind::Tdg, {q}); }

Gate
Gate::rx(ProgQubit q, double theta)
{
    return make(GateKind::Rx, {q}, {theta});
}

Gate
Gate::ry(ProgQubit q, double theta)
{
    return make(GateKind::Ry, {q}, {theta});
}

Gate
Gate::rz(ProgQubit q, double theta)
{
    return make(GateKind::Rz, {q}, {theta});
}

Gate
Gate::rxy(ProgQubit q, double theta, double phi)
{
    return make(GateKind::Rxy, {q}, {theta, phi});
}

Gate
Gate::u1(ProgQubit q, double lambda)
{
    return make(GateKind::U1, {q}, {lambda});
}

Gate
Gate::u2(ProgQubit q, double phi, double lambda)
{
    return make(GateKind::U2, {q}, {phi, lambda});
}

Gate
Gate::u3(ProgQubit q, double theta, double phi, double lambda)
{
    return make(GateKind::U3, {q}, {theta, phi, lambda});
}

Gate
Gate::cnot(ProgQubit control, ProgQubit target)
{
    return make(GateKind::Cnot, {control, target});
}

Gate
Gate::cz(ProgQubit a, ProgQubit b)
{
    return make(GateKind::Cz, {a, b});
}

Gate
Gate::cphase(ProgQubit a, ProgQubit b, double lambda)
{
    return make(GateKind::Cphase, {a, b}, {lambda});
}

Gate
Gate::swap(ProgQubit a, ProgQubit b)
{
    return make(GateKind::Swap, {a, b});
}

Gate
Gate::xx(ProgQubit a, ProgQubit b, double chi)
{
    return make(GateKind::Xx, {a, b}, {chi});
}

Gate
Gate::ccx(ProgQubit c0, ProgQubit c1, ProgQubit target)
{
    return make(GateKind::Ccx, {c0, c1, target});
}

Gate
Gate::ccz(ProgQubit a, ProgQubit b, ProgQubit c)
{
    return make(GateKind::Ccz, {a, b, c});
}

Gate
Gate::cswap(ProgQubit control, ProgQubit a, ProgQubit b)
{
    return make(GateKind::Cswap, {control, a, b});
}

Gate
Gate::measure(ProgQubit q)
{
    return make(GateKind::Measure, {q});
}

Gate
Gate::barrier()
{
    return make(GateKind::Barrier, {});
}

bool
operator==(const Gate &a, const Gate &b)
{
    if (a.kind != b.kind)
        return false;
    for (int i = 0; i < gateArity(a.kind); ++i)
        if (a.qubits[static_cast<size_t>(i)] !=
            b.qubits[static_cast<size_t>(i)])
            return false;
    for (int i = 0; i < gateNumParams(a.kind); ++i)
        if (std::abs(a.params[static_cast<size_t>(i)] -
                     b.params[static_cast<size_t>(i)]) > kEps)
            return false;
    return true;
}

} // namespace triq
