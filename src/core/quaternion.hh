/**
 * @file
 * Unit rotation quaternions: the canonical representation TriQ uses to
 * coalesce runs of 1Q gates (Sec. 4.5).
 *
 * Convention: the quaternion (w, x, y, z) represents the SU(2) matrix
 *   U = w*I - i*(x*X + y*Y + z*Z),
 * so a rotation by angle theta about unit axis n is
 *   (cos(theta/2), sin(theta/2)*n).
 * Hamilton multiplication then matches matrix multiplication up to global
 * phase, which is physically irrelevant.
 */

#ifndef TRIQ_CORE_QUATERNION_HH
#define TRIQ_CORE_QUATERNION_HH

#include "core/gate.hh"

namespace triq
{

/** Euler angles (alpha, beta, gamma) for Rz(a) * Rmid(b) * Rz(g). */
struct EulerAngles
{
    double alpha;
    double beta;
    double gamma;
};

/** A unit quaternion encoding a Bloch-sphere rotation. */
struct Quaternion
{
    double w = 1.0;
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    /** The identity rotation. */
    static Quaternion identity();

    /** Rotation by `theta` about unit axis (ax, ay, az). */
    static Quaternion fromAxisAngle(double ax, double ay, double az,
                                    double theta);

    /**
     * Rotation of a 1Q unitary IR gate (H, X, Rz, U3, ...).
     * @pre isOneQubitGate(g.kind).
     */
    static Quaternion fromGate(const Gate &g);

    /** Hamilton product: `this` applied after `rhs` (matrix order). */
    Quaternion operator*(const Quaternion &rhs) const;

    /** Inverse rotation (conjugate for unit quaternions). */
    Quaternion inverse() const;

    /** Renormalize to unit length (guards against drift). */
    Quaternion normalized() const;

    /** Euclidean norm. */
    double norm() const;

    /**
     * True when this rotation is the identity up to global phase
     * (i.e. q == +-identity) within tolerance.
     */
    bool isIdentity(double tol = 1e-7) const;

    /**
     * True when the rotation is about the Z axis only (a virtual-Z
     * candidate) within tolerance.
     */
    bool isZRotation(double tol = 1e-7) const;

    /**
     * Decompose as Rz(alpha) * Ry(beta) * Rz(gamma) with beta in [0, pi].
     * Degenerate cases (beta ~ 0 or pi) put the full Z rotation in alpha.
     */
    EulerAngles toZYZ() const;

    /** Decompose as Rz(alpha) * Rx(beta) * Rz(gamma), beta in [0, pi]. */
    EulerAngles toZXZ() const;

    /** Rotation-distance equality up to sign (q and -q are the same). */
    bool approxEqual(const Quaternion &rhs, double tol = 1e-7) const;
};

} // namespace triq

#endif // TRIQ_CORE_QUATERNION_HH
