#include "core/backend.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace triq
{

namespace
{

std::string
num(double v)
{
    // Shortest representation that round-trips exactly: emitted angles
    // must survive a parse-back without accumulating phase error.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

std::string
toOpenQasm(const Circuit &c)
{
    std::ostringstream os;
    os << "OPENQASM 2.0;\n";
    os << "include \"qelib1.inc\";\n";
    os << "// " << (c.name().empty() ? "triq output" : c.name()) << "\n";
    os << "qreg q[" << c.numQubits() << "];\n";
    os << "creg c[" << c.numQubits() << "];\n";
    for (const auto &g : c.gates()) {
        switch (g.kind) {
          case GateKind::U1:
          case GateKind::Rz:
            os << "u1(" << num(g.params[0]) << ") q[" << g.qubit(0)
               << "];\n";
            break;
          case GateKind::U2:
            os << "u2(" << num(g.params[0]) << "," << num(g.params[1])
               << ") q[" << g.qubit(0) << "];\n";
            break;
          case GateKind::U3:
            os << "u3(" << num(g.params[0]) << "," << num(g.params[1])
               << "," << num(g.params[2]) << ") q[" << g.qubit(0)
               << "];\n";
            break;
          case GateKind::Cnot:
            os << "cx q[" << g.qubit(0) << "],q[" << g.qubit(1) << "];\n";
            break;
          case GateKind::Measure:
            os << "measure q[" << g.qubit(0) << "] -> c[" << g.qubit(0)
               << "];\n";
            break;
          case GateKind::Barrier:
            os << "barrier q;\n";
            break;
          default:
            fatal("toOpenQasm: gate ", g.str(),
                  " is not in the IBM software-visible set");
        }
    }
    return os.str();
}

std::string
toQuil(const Circuit &c)
{
    std::ostringstream os;
    os << "# " << (c.name().empty() ? "triq output" : c.name()) << "\n";
    os << "DECLARE ro BIT[" << c.numQubits() << "]\n";
    for (const auto &g : c.gates()) {
        switch (g.kind) {
          case GateKind::Rz:
          case GateKind::U1:
            os << "RZ(" << num(g.params[0]) << ") " << g.qubit(0) << "\n";
            break;
          case GateKind::Rx:
            os << "RX(" << num(g.params[0]) << ") " << g.qubit(0) << "\n";
            break;
          case GateKind::Cz:
            os << "CZ " << g.qubit(0) << " " << g.qubit(1) << "\n";
            break;
          case GateKind::Cphase:
            os << "CPHASE(" << num(g.params[0]) << ") " << g.qubit(0)
               << " " << g.qubit(1) << "\n";
            break;
          case GateKind::Measure:
            os << "MEASURE " << g.qubit(0) << " ro[" << g.qubit(0)
               << "]\n";
            break;
          case GateKind::Barrier:
            break; // Quil has no explicit barrier; ordering suffices.
          default:
            fatal("toQuil: gate ", g.str(),
                  " is not in the Rigetti software-visible set");
        }
    }
    return os.str();
}

std::string
toUmdAsm(const Circuit &c)
{
    std::ostringstream os;
    os << "; TriQ UMD-TI assembly: "
       << (c.name().empty() ? "triq output" : c.name()) << "\n";
    os << "ions " << c.numQubits() << "\n";
    for (const auto &g : c.gates()) {
        switch (g.kind) {
          case GateKind::Rz:
          case GateKind::U1:
            os << "rz " << g.qubit(0) << " " << num(g.params[0]) << "\n";
            break;
          case GateKind::Rxy:
            os << "rxy " << g.qubit(0) << " " << num(g.params[0]) << " "
               << num(g.params[1]) << "\n";
            break;
          case GateKind::Xx:
            os << "ms " << g.qubit(0) << " " << g.qubit(1) << " "
               << num(g.params[0]) << "\n";
            break;
          case GateKind::Measure:
            os << "detect " << g.qubit(0) << "\n";
            break;
          case GateKind::Barrier:
            os << "sync\n";
            break;
          default:
            fatal("toUmdAsm: gate ", g.str(),
                  " is not in the UMD software-visible set");
        }
    }
    return os.str();
}

std::string
emitAssembly(const Circuit &c, Vendor vendor)
{
    switch (vendor) {
      case Vendor::IBM:
        return toOpenQasm(c);
      case Vendor::Rigetti:
        return toQuil(c);
      case Vendor::UMD:
        return toUmdAsm(c);
    }
    panic("emitAssembly: unknown vendor");
}

} // namespace triq
