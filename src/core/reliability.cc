#include "core/reliability.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace triq
{

namespace
{

/** Reliability contribution of the 4 H gates that reverse a CNOT. */
double
orientationFix(double e1_control, double e1_target)
{
    double rc = 1.0 - e1_control;
    double rt = 1.0 - e1_target;
    return rc * rc * rt * rt;
}

} // namespace

ReliabilityMatrix::ReliabilityMatrix(const Topology &topo,
                                     const Calibration &calib, Vendor vendor)
    : numQubits_(topo.numQubits()), vendor_(vendor), topo_(topo)
{
    if (calib.numQubits != numQubits_)
        fatal("ReliabilityMatrix: calibration covers ", calib.numQubits,
              " qubits, topology has ", numQubits_);
    if (static_cast<int>(calib.err2q.size()) != topo.numEdges())
        fatal("ReliabilityMatrix: calibration covers ", calib.err2q.size(),
              " edges, topology has ", topo.numEdges());

    const int n = numQubits_;
    gateRel_.assign(n, std::vector<double>(n, 0.0));
    swapRel_.assign(topo.numEdges(), 0.0);
    for (int e = 0; e < topo.numEdges(); ++e) {
        const Coupling &cp = topo.edge(e);
        double r2 = 1.0 - calib.err2q[static_cast<size_t>(e)];
        double fix = orientationFix(calib.err1q[static_cast<size_t>(cp.a)],
                                    calib.err1q[static_cast<size_t>(cp.b)]);
        // Native orientation needs no fix; the reverse does (IBM only).
        double fwd = r2;
        double rev = r2;
        if (vendor_ == Vendor::IBM && cp.directed)
            rev *= fix;
        gateRel_[static_cast<size_t>(cp.a)][static_cast<size_t>(cp.b)] = fwd;
        gateRel_[static_cast<size_t>(cp.b)][static_cast<size_t>(cp.a)] = rev;
        // A SWAP is three CNOTs; on a directed edge the middle one is
        // reversed and needs an orientation fix.
        double sw = r2 * r2 * r2;
        if (vendor_ == Vendor::IBM && cp.directed)
            sw *= fix;
        swapRel_[static_cast<size_t>(e)] = sw;
    }

    // All-pairs most-reliable swap paths: Floyd-Warshall over -log r.
    constexpr double inf = std::numeric_limits<double>::infinity();
    std::vector<std::vector<double>> dist(
        static_cast<size_t>(n), std::vector<double>(n, inf));
    next_.assign(n, std::vector<int>(n, -1));
    for (int i = 0; i < n; ++i) {
        dist[static_cast<size_t>(i)][static_cast<size_t>(i)] = 0.0;
        next_[static_cast<size_t>(i)][static_cast<size_t>(i)] = i;
    }
    for (int e = 0; e < topo.numEdges(); ++e) {
        const Coupling &cp = topo.edge(e);
        double w = -std::log(std::max(swapRel_[static_cast<size_t>(e)],
                                      1e-300));
        size_t a = static_cast<size_t>(cp.a), b = static_cast<size_t>(cp.b);
        dist[a][b] = dist[b][a] = w;
        next_[a][b] = cp.b;
        next_[b][a] = cp.a;
    }
    for (int k = 0; k < n; ++k)
        for (int i = 0; i < n; ++i) {
            if (dist[static_cast<size_t>(i)][static_cast<size_t>(k)] == inf)
                continue;
            for (int j = 0; j < n; ++j) {
                double alt =
                    dist[static_cast<size_t>(i)][static_cast<size_t>(k)] +
                    dist[static_cast<size_t>(k)][static_cast<size_t>(j)];
                if (alt <
                    dist[static_cast<size_t>(i)][static_cast<size_t>(j)] -
                        1e-15) {
                    dist[static_cast<size_t>(i)][static_cast<size_t>(j)] =
                        alt;
                    next_[static_cast<size_t>(i)][static_cast<size_t>(j)] =
                        next_[static_cast<size_t>(i)]
                             [static_cast<size_t>(k)];
                }
            }
        }
    pathRel_.assign(n, std::vector<double>(n, 0.0));
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            if (dist[static_cast<size_t>(i)][static_cast<size_t>(j)] != inf)
                pathRel_[static_cast<size_t>(i)][static_cast<size_t>(j)] =
                    std::exp(
                        -dist[static_cast<size_t>(i)]
                             [static_cast<size_t>(j)]);

    // End-to-end pair reliabilities: swap c next to some neighbor t' of
    // t, then run the direct gate t' -> t.
    pairRel_.assign(n, std::vector<double>(n, 0.0));
    via_.assign(n, std::vector<int>(n, -1));
    for (int c = 0; c < n; ++c) {
        for (int t = 0; t < n; ++t) {
            if (c == t)
                continue;
            double best = 0.0;
            int best_via = -1;
            for (HwQubit tp : topo.neighbors(t)) {
                double r =
                    pathRel_[static_cast<size_t>(c)]
                            [static_cast<size_t>(tp)] *
                    gateRel_[static_cast<size_t>(tp)]
                            [static_cast<size_t>(t)];
                if (r > best) {
                    best = r;
                    best_via = tp;
                }
            }
            pairRel_[static_cast<size_t>(c)][static_cast<size_t>(t)] = best;
            via_[static_cast<size_t>(c)][static_cast<size_t>(t)] = best_via;
        }
    }

    readoutRel_.resize(static_cast<size_t>(n));
    for (int q = 0; q < n; ++q)
        readoutRel_[static_cast<size_t>(q)] =
            1.0 - calib.errRO[static_cast<size_t>(q)];
}

void
ReliabilityMatrix::checkQubit(HwQubit q) const
{
    if (q < 0 || q >= numQubits_)
        panic("ReliabilityMatrix: qubit ", q, " out of range");
}

double
ReliabilityMatrix::pairReliability(HwQubit c, HwQubit t) const
{
    checkQubit(c);
    checkQubit(t);
    if (c == t)
        panic("ReliabilityMatrix::pairReliability: identical qubits ", c);
    return pairRel_[static_cast<size_t>(c)][static_cast<size_t>(t)];
}

double
ReliabilityMatrix::gateReliability(HwQubit c, HwQubit t) const
{
    checkQubit(c);
    checkQubit(t);
    return gateRel_[static_cast<size_t>(c)][static_cast<size_t>(t)];
}

double
ReliabilityMatrix::swapReliability(HwQubit a, HwQubit b) const
{
    int e = topo_.edgeBetween(a, b);
    if (e == -1)
        panic("ReliabilityMatrix::swapReliability: (", a, ",", b,
              ") not adjacent");
    return swapRel_[static_cast<size_t>(e)];
}

double
ReliabilityMatrix::swapPathReliability(HwQubit c, HwQubit t) const
{
    checkQubit(c);
    checkQubit(t);
    return pathRel_[static_cast<size_t>(c)][static_cast<size_t>(t)];
}

std::vector<HwQubit>
ReliabilityMatrix::swapPath(HwQubit c, HwQubit t) const
{
    checkQubit(c);
    checkQubit(t);
    if (c == t)
        return {};
    if (next_[static_cast<size_t>(c)][static_cast<size_t>(t)] == -1)
        panic("ReliabilityMatrix::swapPath: ", c, " and ", t,
              " are disconnected");
    std::vector<HwQubit> path{c};
    HwQubit cur = c;
    while (cur != t) {
        cur = next_[static_cast<size_t>(cur)][static_cast<size_t>(t)];
        path.push_back(cur);
        if (static_cast<int>(path.size()) > numQubits_)
            panic("ReliabilityMatrix::swapPath: path reconstruction loop");
    }
    return path;
}

HwQubit
ReliabilityMatrix::bestNeighbor(HwQubit c, HwQubit t) const
{
    checkQubit(c);
    checkQubit(t);
    if (c == t)
        panic("ReliabilityMatrix::bestNeighbor: identical qubits");
    return via_[static_cast<size_t>(c)][static_cast<size_t>(t)];
}

double
ReliabilityMatrix::readoutReliability(HwQubit q) const
{
    checkQubit(q);
    return readoutRel_[static_cast<size_t>(q)];
}

double
ReliabilityMatrix::bestPairReliability(HwQubit h) const
{
    checkQubit(h);
    double best = 0.0;
    for (int x = 0; x < numQubits_; ++x) {
        if (x == h)
            continue;
        best = std::max(
            best,
            std::max(pairRel_[static_cast<size_t>(h)][static_cast<size_t>(x)],
                     pairRel_[static_cast<size_t>(x)][static_cast<size_t>(h)]));
    }
    return best;
}

std::vector<int>
ReliabilityMatrix::equivalenceClasses() const
{
    const int n = numQubits_;
    auto sym = [this](int a, int b) {
        return std::max(
            pairRel_[static_cast<size_t>(a)][static_cast<size_t>(b)],
            pairRel_[static_cast<size_t>(b)][static_cast<size_t>(a)]);
    };
    std::vector<int> cls(static_cast<size_t>(n), -1);
    std::vector<int> reps; // lowest qubit index of each class
    for (int h = 0; h < n; ++h) {
        for (size_t c = 0; c < reps.size() && cls[static_cast<size_t>(h)] < 0;
             ++c) {
            int r = reps[c];
            // Exact equality on purpose: the classes exist to prune
            // *provably* interchangeable qubits; near-equal rows are
            // the bound's and dominance's job.
            if (readoutRel_[static_cast<size_t>(h)] !=
                readoutRel_[static_cast<size_t>(r)])
                continue;
            bool eq = true;
            for (int x = 0; x < n && eq; ++x) {
                if (x == h || x == r)
                    continue;
                eq = sym(h, x) == sym(r, x);
            }
            if (eq)
                cls[static_cast<size_t>(h)] = static_cast<int>(c);
        }
        if (cls[static_cast<size_t>(h)] < 0) {
            cls[static_cast<size_t>(h)] = static_cast<int>(reps.size());
            reps.push_back(h);
        }
    }
    return cls;
}

double
ReliabilityMatrix::maxPairReliability() const
{
    double best = 0.0;
    for (int i = 0; i < numQubits_; ++i)
        for (int j = 0; j < numQubits_; ++j)
            if (i != j)
                best = std::max(
                    best,
                    pairRel_[static_cast<size_t>(i)][static_cast<size_t>(j)]);
    return best;
}

} // namespace triq
