#include "core/unitary.hh"

#include <cmath>

#include "common/logging.hh"

namespace triq
{

namespace
{

Matrix
oneQubitMatrix(const Gate &g)
{
    const Cplx i1(0, 1);
    const double t = g.params[0];
    const double isq = 1.0 / std::sqrt(2.0);
    switch (g.kind) {
      case GateKind::I:
        return Matrix::identity(2);
      case GateKind::X:
        return {{0, 1}, {1, 0}};
      case GateKind::Y:
        return {{0, -i1}, {i1, 0}};
      case GateKind::Z:
        return {{1, 0}, {0, -1}};
      case GateKind::H:
        return {{isq, isq}, {isq, -isq}};
      case GateKind::S:
        return {{1, 0}, {0, i1}};
      case GateKind::Sdg:
        return {{1, 0}, {0, -i1}};
      case GateKind::T:
        return {{1, 0}, {0, std::exp(i1 * (kPi / 4))}};
      case GateKind::Tdg:
        return {{1, 0}, {0, std::exp(-i1 * (kPi / 4))}};
      case GateKind::Rx: {
        Cplx c = std::cos(t / 2), s = -i1 * std::sin(t / 2);
        return {{c, s}, {s, c}};
      }
      case GateKind::Ry: {
        double c = std::cos(t / 2), s = std::sin(t / 2);
        return {{c, -s}, {s, c}};
      }
      case GateKind::Rz:
        return {{std::exp(-i1 * (t / 2)), 0}, {0, std::exp(i1 * (t / 2))}};
      case GateKind::Rxy: {
        // Rz(phi) Rx(theta) Rz(-phi).
        double phi = g.params[1];
        Cplx c = std::cos(t / 2);
        Cplx s = -i1 * std::sin(t / 2);
        return {{c, s * std::exp(-i1 * phi)}, {s * std::exp(i1 * phi), c}};
      }
      case GateKind::U1:
        return {{1, 0}, {0, std::exp(i1 * t)}};
      case GateKind::U2: {
        double p = g.params[0], l = g.params[1];
        return {{Cplx(isq, 0), -std::exp(i1 * l) * isq},
                {std::exp(i1 * p) * isq, std::exp(i1 * (p + l)) * isq}};
      }
      case GateKind::U3: {
        double p = g.params[1], l = g.params[2];
        double c = std::cos(t / 2), s = std::sin(t / 2);
        return {{Cplx(c, 0), -std::exp(i1 * l) * s},
                {std::exp(i1 * p) * s, std::exp(i1 * (p + l)) * c}};
      }
      default:
        panic("oneQubitMatrix: unhandled ", gateName(g.kind));
    }
}

Matrix
twoQubitMatrix(const Gate &g)
{
    const Cplx i1(0, 1);
    Matrix m = Matrix::identity(4);
    switch (g.kind) {
      case GateKind::Cnot:
        // Operand 0 = control = bit 0; operand 1 = target = bit 1.
        m = Matrix(4, 4);
        m(0, 0) = 1;
        m(2, 2) = 1;
        m(3, 1) = 1;
        m(1, 3) = 1;
        return m;
      case GateKind::Cz:
        m(3, 3) = -1;
        return m;
      case GateKind::Cphase:
        m(3, 3) = std::exp(i1 * g.params[0]);
        return m;
      case GateKind::Swap:
        m = Matrix(4, 4);
        m(0, 0) = 1;
        m(3, 3) = 1;
        m(1, 2) = 1;
        m(2, 1) = 1;
        return m;
      case GateKind::Xx: {
        // exp(-i chi X(x)X) = cos(chi) I - i sin(chi) XX.
        double chi = g.params[0];
        Matrix out = Matrix::identity(4) * Cplx(std::cos(chi), 0);
        Cplx s = -i1 * std::sin(chi);
        out(0, 3) += s;
        out(1, 2) += s;
        out(2, 1) += s;
        out(3, 0) += s;
        return out;
      }
      default:
        panic("twoQubitMatrix: unhandled ", gateName(g.kind));
    }
}

Matrix
threeQubitMatrix(const Gate &g)
{
    Matrix m = Matrix::identity(8);
    switch (g.kind) {
      case GateKind::Ccx:
        // Controls = bits 0,1; target = bit 2. Swap |011> <-> |111>.
        m(3, 3) = 0;
        m(7, 7) = 0;
        m(3, 7) = 1;
        m(7, 3) = 1;
        return m;
      case GateKind::Ccz:
        m(7, 7) = -1;
        return m;
      case GateKind::Cswap:
        // Control = bit 0; swap bits 1 and 2 when control set.
        m(3, 3) = 0;
        m(5, 5) = 0;
        m(3, 5) = 1;
        m(5, 3) = 1;
        return m;
      default:
        panic("threeQubitMatrix: unhandled ", gateName(g.kind));
    }
}

} // namespace

Matrix
gateMatrix(const Gate &g)
{
    if (!isUnitaryGate(g.kind))
        panic("gateMatrix: non-unitary gate ", g.str());
    switch (g.arity()) {
      case 1:
        return oneQubitMatrix(g);
      case 2:
        return twoQubitMatrix(g);
      case 3:
        return threeQubitMatrix(g);
      default:
        panic("gateMatrix: unexpected arity for ", g.str());
    }
}

Matrix
embedGate(int n, const Gate &g)
{
    if (n > 12)
        panic("embedGate: register too large (", n, " qubits)");
    Matrix local = gateMatrix(g);
    int k = g.arity();
    int dim = 1 << n;
    Matrix out(dim, dim);
    // For each basis column, scatter the local matrix across the operand
    // bits while keeping spectator bits fixed.
    for (int col = 0; col < dim; ++col) {
        int lcol = 0;
        for (int i = 0; i < k; ++i)
            lcol |= ((col >> g.qubit(i)) & 1) << i;
        int base = col;
        for (int i = 0; i < k; ++i)
            base &= ~(1 << g.qubit(i));
        for (int lrow = 0; lrow < (1 << k); ++lrow) {
            Cplx v = local(lrow, lcol);
            if (v == Cplx(0, 0))
                continue;
            int row = base;
            for (int i = 0; i < k; ++i)
                row |= ((lrow >> i) & 1) << g.qubit(i);
            out(row, col) = v;
        }
    }
    return out;
}

Matrix
circuitUnitary(const Circuit &c)
{
    if (c.numQubits() > 12)
        panic("circuitUnitary: register too large (", c.numQubits(),
              " qubits)");
    Matrix u = Matrix::identity(1 << c.numQubits());
    for (const auto &g : c.gates()) {
        if (g.kind == GateKind::Barrier)
            continue;
        if (g.kind == GateKind::Measure)
            panic("circuitUnitary: circuit contains Measure");
        u = embedGate(c.numQubits(), g) * u;
    }
    return u;
}

bool
sameUnitary(const Circuit &a, const Circuit &b, double tol)
{
    if (a.numQubits() != b.numQubits())
        return false;
    auto strip = [](const Circuit &c) {
        Circuit out(c.numQubits(), c.name());
        for (const auto &g : c.gates())
            if (isUnitaryGate(g.kind))
                out.add(g);
        return out;
    };
    return circuitUnitary(strip(a)).equalUpToPhase(circuitUnitary(strip(b)),
                                                   tol);
}

} // namespace triq
