/**
 * @file
 * Peephole circuit optimization: cancellation of adjacent self-inverse
 * gate pairs (CNOT-CNOT, CZ-CZ, H-H, X-X, SWAP-SWAP) separated only by
 * gates on disjoint qubits.
 *
 * TriQ as published optimizes 1Q runs and communication but performs no
 * 2Q-2Q cancellation (Sec. 8 contrasts it with circuit-rewriting
 * optimizers). This pass is the natural extension: benchmarks such as
 * QFT+IQFT expose inverse gate pairs at pass boundaries. It runs before
 * mapping, on the CNOT-basis IR; the ablation harness
 * (bench/ablation_passes) quantifies its effect.
 */

#ifndef TRIQ_CORE_PEEPHOLE_HH
#define TRIQ_CORE_PEEPHOLE_HH

#include "core/circuit.hh"

namespace triq
{

/** Statistics from a peephole run. */
struct PeepholeStats
{
    /** Gates removed by pair cancellation. */
    int cancelled = 0;

    /** Rewrite iterations until fixpoint. */
    int iterations = 0;
};

/**
 * Cancel adjacent self-inverse pairs until fixpoint.
 *
 * Two gates cancel when they are structurally identical, self-inverse,
 * and every gate between them acts on disjoint qubits (Barrier and
 * Measure block cancellation across them).
 *
 * @param c Input circuit (any basis).
 * @param stats_out Optional statistics sink.
 * @return The optimized circuit; always unitary-equivalent to `c`.
 */
Circuit cancelInversePairs(const Circuit &c,
                           PeepholeStats *stats_out = nullptr);

} // namespace triq

#endif // TRIQ_CORE_PEEPHOLE_HH
