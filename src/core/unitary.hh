/**
 * @file
 * Gate and circuit unitaries, used by tests and equivalence checks to
 * prove that decompositions and optimizations preserve semantics.
 *
 * Basis convention: qubit q is bit q of the computational-basis index
 * (qubit 0 is the least significant bit). Within a gate's local matrix,
 * operand i is bit i.
 */

#ifndef TRIQ_CORE_UNITARY_HH
#define TRIQ_CORE_UNITARY_HH

#include "common/matrix.hh"
#include "core/circuit.hh"

namespace triq
{

/**
 * The local unitary of a gate: a 2^arity x 2^arity matrix over the
 * gate's operands (operand i = bit i).
 * @pre isUnitaryGate(g.kind).
 */
Matrix gateMatrix(const Gate &g);

/**
 * Embed a gate's unitary into an n-qubit register (2^n x 2^n).
 * @pre isUnitaryGate(g.kind) and all operands < n.
 */
Matrix embedGate(int n, const Gate &g);

/**
 * The full unitary of a circuit (Barriers skipped).
 * @pre no Measure gates; numQubits <= 12 (matrix is 2^n x 2^n).
 */
Matrix circuitUnitary(const Circuit &c);

/**
 * True when two circuits implement the same unitary up to global phase.
 * Measure/Barrier gates are ignored for the comparison.
 */
bool sameUnitary(const Circuit &a, const Circuit &b, double tol = 1e-7);

} // namespace triq

#endif // TRIQ_CORE_UNITARY_HH
