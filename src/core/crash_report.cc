#include "core/crash_report.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

extern "C" {
extern char **environ;
}

namespace triq
{

namespace fs = std::filesystem;

namespace
{

constexpr const char *kProgramFile = "program.txt";
constexpr const char *kCalibrationFile = "calibration.txt";
constexpr const char *kOptionsFile = "options.txt";
constexpr const char *kEnvironmentFile = "environment.txt";
constexpr const char *kErrorFile = "error.txt";

void
writeFile(const fs::path &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("crash report: cannot write '", path.string(), "'");
    out << content;
    if (!out)
        fatal("crash report: write to '", path.string(), "' failed");
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("crash report: cannot read '", path.string(), "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

void
CrashBundle::write(const std::string &dir) const
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        fatal("crash report: cannot create '", dir, "': ", ec.message());

    std::ostringstream opts;
    opts.precision(17);
    opts << "bench=" << benchName << "\n"
         << "qasm=" << (qasm ? 1 : 0) << "\n"
         << "device=" << device << "\n"
         << "day=" << day << "\n"
         << "level=" << level << "\n"
         << "mapper=" << mapper << "\n"
         << "peephole=" << (peephole ? 1 : 0) << "\n"
         << "strict_calibration=" << (strictCalibration ? 1 : 0) << "\n"
         << "budget_ms=" << budgetMs << "\n"
         << "node_budget=" << nodeBudget << "\n"
         << "seed=" << seed << "\n"
         << "trials=" << trials << "\n"
         << "sim_threads=" << simThreads << "\n"
         << "sim_fusion=" << simFusion << "\n";
    if (!requestId.empty())
        opts << "request_id=" << requestId << "\n";
    if (!schedMode.empty())
        opts << "sched_mode=" << schedMode << "\n"
             << "sched_threads=" << schedThreads << "\n"
             << "sched_items_per_task=" << schedItemsPerTask << "\n";
    writeFile(fs::path(dir) / kOptionsFile, opts.str());

    if (!envKnobs.empty()) {
        std::ostringstream env;
        for (const std::string &kv : envKnobs)
            env << kv << "\n";
        writeFile(fs::path(dir) / kEnvironmentFile, env.str());
    }

    if (hasProgram)
        writeFile(fs::path(dir) / kProgramFile, programText);
    if (hasCalibration) {
        std::ostringstream cal;
        calibration.save(cal);
        writeFile(fs::path(dir) / kCalibrationFile, cal.str());
    }
    writeFile(fs::path(dir) / kErrorFile,
              error.empty() ? std::string("(no message)\n") : error + "\n");
}

CrashBundle
CrashBundle::load(const std::string &dir)
{
    if (!fs::is_directory(dir))
        fatal("crash report: '", dir, "' is not a directory");

    CrashBundle b;
    std::istringstream opts(readFile(fs::path(dir) / kOptionsFile));
    std::string line;
    int lineno = 0;
    while (std::getline(opts, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal("crash report: malformed options.txt line ", lineno,
                  ": '", line, "'");
        std::string key = line.substr(0, eq);
        std::string val = line.substr(eq + 1);
        if (key == "bench")
            b.benchName = val;
        else if (key == "qasm")
            b.qasm = val == "1";
        else if (key == "device")
            b.device = val;
        else if (key == "day")
            b.day = std::atoi(val.c_str());
        else if (key == "level")
            b.level = val;
        else if (key == "mapper")
            b.mapper = val;
        else if (key == "peephole")
            b.peephole = val == "1";
        else if (key == "strict_calibration")
            b.strictCalibration = val == "1";
        else if (key == "budget_ms")
            b.budgetMs = std::atof(val.c_str());
        else if (key == "node_budget")
            b.nodeBudget = std::atol(val.c_str());
        else if (key == "seed")
            b.seed = std::strtoull(val.c_str(), nullptr, 10);
        else if (key == "trials")
            b.trials = std::atoi(val.c_str());
        else if (key == "sim_threads")
            b.simThreads = std::atoi(val.c_str());
        else if (key == "sim_fusion")
            b.simFusion = std::atoi(val.c_str());
        else if (key == "request_id")
            b.requestId = val;
        else if (key == "sched_mode")
            b.schedMode = val;
        else if (key == "sched_threads")
            b.schedThreads = std::atoi(val.c_str());
        else if (key == "sched_items_per_task")
            b.schedItemsPerTask = std::atoi(val.c_str());
        // Unknown keys are skipped so newer bundles load in older
        // builds; the replay just ignores options it predates.
    }

    if (fs::exists(fs::path(dir) / kEnvironmentFile)) {
        std::istringstream env(readFile(fs::path(dir) / kEnvironmentFile));
        std::string kv;
        while (std::getline(env, kv))
            if (!kv.empty() && kv.find('=') != std::string::npos)
                b.envKnobs.push_back(kv);
    }

    if (fs::exists(fs::path(dir) / kProgramFile)) {
        b.programText = readFile(fs::path(dir) / kProgramFile);
        b.hasProgram = true;
    }
    if (fs::exists(fs::path(dir) / kCalibrationFile)) {
        std::istringstream cal(readFile(fs::path(dir) / kCalibrationFile));
        b.calibration = Calibration::load(cal);
        b.hasCalibration = true;
    }
    if (!b.hasProgram && b.benchName.empty())
        fatal("crash report: '", dir,
              "' has neither program.txt nor a bench= option");
    return b;
}

std::vector<std::string>
captureTriqEnv()
{
    std::vector<std::string> out;
    for (char **e = environ; e && *e; ++e)
        if (std::strncmp(*e, "TRIQ_", 5) == 0)
            out.emplace_back(*e);
    std::sort(out.begin(), out.end());
    return out;
}

int
applyTriqEnv(const std::vector<std::string> &env_knobs)
{
    int applied = 0;
    for (const std::string &kv : env_knobs) {
        size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0)
            continue;
        std::string name = kv.substr(0, eq);
        if (name == "TRIQ_FAULT" || name == "TRIQ_FAULT_SEED")
            continue; // bundled inputs are already post-injection
#ifndef _WIN32
        if (setenv(name.c_str(), kv.c_str() + eq + 1, 1) == 0)
            ++applied;
#else
        if (_putenv(kv.c_str()) == 0)
            ++applied;
#endif
    }
    return applied;
}

std::string
defaultCrashDir()
{
#ifdef _WIN32
    int pid = _getpid();
#else
    int pid = static_cast<int>(getpid());
#endif
    return "triq-crash-" + std::to_string(pid);
}

std::string
resolveCrashDir(const std::string &base)
{
    std::error_code ec;
    if (!fs::exists(base, ec))
        return base;
    // PIDs recycle, so "triq-crash-<pid>" can already hold someone
    // else's bundle; never overwrite evidence — probe for the first
    // free monotonic suffix.
    for (int i = 1; i < 10000; ++i) {
        std::string candidate = base + "." + std::to_string(i);
        if (!fs::exists(candidate, ec))
            return candidate;
    }
    fatal("crash report: no free directory name after '", base,
          "' (10000 suffixes tried)");
}

} // namespace triq
