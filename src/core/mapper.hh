/**
 * @file
 * Qubit mapping (Sec. 4.3): choose an injective program-qubit ->
 * hardware-qubit assignment maximizing the *minimum* reliability of any
 * mapped operation (2Q pairs via the reliability matrix, readouts via
 * the readout vector). The max-min objective is what makes the search
 * prunable: as soon as a partial placement drops below the incumbent it
 * can be discarded, unlike the whole-graph reliability product of prior
 * work.
 *
 * Four interchangeable engines:
 *  - Trivial: identity placement (the paper's "default qubit mapping");
 *  - Greedy: reliability-ordered constructive placement + local search;
 *  - BranchAndBound: exact max-min search with incumbent pruning and a
 *    node budget (falls back to the greedy incumbent when exhausted);
 *  - Smt: the paper-faithful Z3 optimization encoding (available when
 *    the library is built with Z3; otherwise falls back to B&B).
 */

#ifndef TRIQ_CORE_MAPPER_HH
#define TRIQ_CORE_MAPPER_HH

#include <string>
#include <vector>

#include "common/budget.hh"
#include "core/circuit.hh"
#include "core/reliability.hh"

namespace triq
{

/** Interaction summary of a program: what the mapper needs to know. */
struct ProgramInfo
{
    /** One distinct interacting program-qubit pair with its 2Q count. */
    struct Pair
    {
        ProgQubit a;
        ProgQubit b;
        int weight;
    };

    int numProgQubits = 0;
    std::vector<Pair> pairs;
    std::vector<ProgQubit> measured;

    /**
     * Extract the interaction graph of a CNOT-basis circuit: distinct
     * unordered 2Q pairs with multiplicity, plus measured qubits.
     */
    static ProgramInfo fromCircuit(const Circuit &c);
};

/** Mapping engine selector. */
enum class MapperKind
{
    Trivial,
    Greedy,
    BranchAndBound,
    Smt,
};

/** Parse "trivial" / "greedy" / "bnb" / "smt". */
MapperKind mapperKindFromString(const std::string &s);

/** Inverse of mapperKindFromString: the engine's display name. */
std::string mapperKindName(MapperKind kind);

/**
 * Mapping objective. The paper (Sec. 4.3) argues for max-min over the
 * whole-graph reliability product of prior work because partial
 * placements can be pruned as soon as any operation drops below the
 * incumbent; the product objective needs most qubits placed before a
 * bound is meaningful. Both are implemented so the trade-off can be
 * measured (bench/ablation_mapper).
 */
enum class MappingObjective
{
    MaxMin,  //!< Maximize the minimum operation reliability (paper).
    Product, //!< Maximize the weighted reliability product ([46]-style).
};

/** Options controlling the mapping search. */
struct MappingOptions
{
    MapperKind kind = MapperKind::BranchAndBound;

    MappingObjective objective = MappingObjective::MaxMin;

    /** Max B&B nodes before falling back to the incumbent. */
    long nodeBudget = 2000000;

    /** Include readout reliabilities in the max-min objective. */
    bool includeReadout = true;

    /** Z3 soft timeout in milliseconds (Smt engine only). */
    unsigned smtTimeoutMs = 60000;

    /**
     * Planner-grade pruning toggles for the B&B engines (all on by
     * default; each can also be vetoed at runtime with
     * TRIQ_MAPPER_BOUND / TRIQ_MAPPER_SYMMETRY / TRIQ_MAPPER_DOMINANCE
     * = 0). All three are *sound*: they never change the optimal
     * objective value, only the number of nodes needed to prove it.
     * Turning them off reproduces the legacy search, which is what the
     * micro_mapper ablation rows measure against.
     */
    bool useStrongBound = true;  //!< Row-relaxation admissible bound.
    bool useSymmetry = true;     //!< Equivalence-class representatives.
    bool useDominance = true;    //!< Sibling-dominance substitution.

    /**
     * Optional warm-start placement (program -> hardware, injective,
     * sized numProgQubits). When valid it is polished by local search
     * and the *better* of it and the constructive greedy seed becomes
     * the anytime incumbent — the use case is incremental remapping
     * after calibration drift, where yesterday's mapping is usually
     * within a few swaps of today's optimum, so the incumbent starts
     * tight and the B&B proof tree collapses. Because the warm
     * incumbent is never below the cold one and pruning is sound, the
     * returned objective value is never worse than a cold search's at
     * any node budget. Empty or invalid vectors are ignored (falling
     * back to the greedy seed), and TRIQ_MAPPER_WARM=0 disables warm
     * starting globally.
     */
    std::vector<HwQubit> warmStart;

    /** Provenance label for the warm start (e.g. "drift(day 3)"). */
    std::string warmStartOrigin;

    /**
     * Wall-clock budget for the search. Every engine is *anytime* under
     * it: when the deadline fires mid-search the best incumbent found
     * so far is returned (marked Mapping::timedOut) instead of running
     * unbounded or throwing. Default-constructed = unlimited, which
     * reproduces the unbudgeted search bit for bit.
     */
    CompileBudget budget;
};

/** Result of a mapping run. */
struct Mapping
{
    /** progToHw[p] = hardware qubit for program qubit p. */
    std::vector<HwQubit> progToHw;

    /** Achieved min-reliability objective. */
    double minReliability = 0.0;

    /** Secondary score: weighted log-product of all op reliabilities. */
    double logProduct = 0.0;

    /** Search nodes explored (B&B) or 0. */
    long nodesExplored = 0;

    /** Candidate placements cut by the admissible/incumbent bound. */
    long boundPruned = 0;

    /** Candidates skipped as equivalence-class duplicates. */
    long symmetryPruned = 0;

    /** Candidates cut by sibling-dominance substitution. */
    long dominancePruned = 0;

    /**
     * Which upper bound the B&B engine ran with: "row-relax" (the
     * per-qubit best-edge relaxation), "legacy" (static suffix
     * potential / bare incumbent cut), or "" for non-B&B engines.
     */
    std::string boundType;

    /** True when the search was seeded from MappingOptions::warmStart. */
    bool warmStarted = false;

    /** Copied from MappingOptions::warmStartOrigin when warmStarted. */
    std::string warmStartOrigin;

    /** True when the engine proved max-min optimality. */
    bool optimal = false;

    /**
     * The engine that actually produced this map ("trivial", "greedy",
     * "bnb", "smt") — may differ from MappingOptions::kind when the
     * fallback ladder Z3 -> B&B -> greedy degraded the request.
     */
    std::string engine;

    /** True when the budget deadline fired during the search. */
    bool timedOut = false;

    /**
     * Degradation trail: one human-readable entry per fallback or
     * early stop (empty for a clean full-strength run). Feeds
     * CompileReport::degradations.
     */
    std::vector<std::string> notes;

    /** Inverse view: hwToProg[h] = program qubit at h, or -1. */
    std::vector<ProgQubit> hwToProg(int num_hw) const;
};

/**
 * The max-min objective value of a complete assignment.
 * Returns 1.0 for programs with no 2Q pairs and no measured qubits.
 */
double mappingMinReliability(const ProgramInfo &info,
                             const ReliabilityMatrix &rel,
                             const std::vector<HwQubit> &prog_to_hw,
                             bool include_readout);

/** Weighted log-product secondary score of a complete assignment. */
double mappingLogProduct(const ProgramInfo &info,
                         const ReliabilityMatrix &rel,
                         const std::vector<HwQubit> &prog_to_hw,
                         bool include_readout);

/**
 * Map a program onto hardware.
 * @throws FatalError when the program needs more qubits than the device
 *         provides.
 */
Mapping mapQubits(const ProgramInfo &info, const ReliabilityMatrix &rel,
                  const MappingOptions &opts);

/** The identity ("default") placement: program qubit p -> hardware p. */
Mapping trivialMapping(const ProgramInfo &info,
                       const ReliabilityMatrix &rel);

/** True when the build has the Z3-backed Smt engine compiled in. */
bool smtMapperAvailable();

} // namespace triq

#endif // TRIQ_CORE_MAPPER_HH
