/**
 * @file
 * Decomposition of composite IR operations into the technology-
 * independent {1Q, CNOT} basis (Sec. 4.1: "ScaffCC automatically
 * decomposes higher-level QC operations such as Toffoli gates into
 * native 1Q and 2Q representations").
 *
 * All compiler passes downstream of this one (mapping, routing,
 * translation) assume the circuit contains only 1Q unitaries, CNOT,
 * Measure and Barrier.
 */

#ifndef TRIQ_CORE_DECOMPOSE_HH
#define TRIQ_CORE_DECOMPOSE_HH

#include "core/circuit.hh"

namespace triq
{

/**
 * Rewrite a circuit into the {1Q, CNOT, Measure, Barrier} basis.
 *
 * Handled rewrites (all verified unitary-equivalent in the test suite):
 *  - Ccx (Toffoli): the standard 6-CNOT, 7-T/Tdg network;
 *  - Ccz: H-conjugated Toffoli;
 *  - Cswap (Fredkin): CNOT + Toffoli + CNOT;
 *  - Cphase(lambda): 2 CNOTs + 3 virtual-Z rotations;
 *  - Cz: H-conjugated CNOT;
 *  - Swap: 3 CNOTs;
 *  - Xx(chi): H/Rz-conjugated 2-CNOT network.
 *
 * @param keep_cphase Preserve controlled-phase structure for targets
 *        whose gate set exposes native CPHASE (Sec. 6.4 what-if): Cz
 *        becomes Cphase(pi) and Cphase passes through, halving the 2Q
 *        cost of phase-heavy programs like QFT on such targets.
 */
Circuit decomposeToCnotBasis(const Circuit &c, bool keep_cphase = false);

/**
 * True when the circuit contains only 1Q gates, CNOT, Measure and
 * Barrier — plus Cphase when `allow_cphase` is set.
 */
bool isCnotBasis(const Circuit &c, bool allow_cphase = false);

} // namespace triq

#endif // TRIQ_CORE_DECOMPOSE_HH
