#include "core/mapper.hh"

#include "core/mapper_smt.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "common/logging.hh"

namespace triq
{

ProgramInfo
ProgramInfo::fromCircuit(const Circuit &c)
{
    ProgramInfo info;
    info.numProgQubits = c.numQubits();
    std::map<std::pair<ProgQubit, ProgQubit>, int> counts;
    for (const auto &g : c.gates()) {
        if (isTwoQubitGate(g.kind)) {
            ProgQubit a = g.qubit(0), b = g.qubit(1);
            if (a > b)
                std::swap(a, b);
            ++counts[{a, b}];
        }
    }
    for (const auto &[key, w] : counts)
        info.pairs.push_back({key.first, key.second, w});
    info.measured = c.measuredQubits();
    return info;
}

MapperKind
mapperKindFromString(const std::string &s)
{
    if (s == "trivial")
        return MapperKind::Trivial;
    if (s == "greedy")
        return MapperKind::Greedy;
    if (s == "bnb")
        return MapperKind::BranchAndBound;
    if (s == "smt")
        return MapperKind::Smt;
    fatal("unknown mapper kind '", s, "'");
}

std::string
mapperKindName(MapperKind kind)
{
    switch (kind) {
      case MapperKind::Trivial:
        return "trivial";
      case MapperKind::Greedy:
        return "greedy";
      case MapperKind::BranchAndBound:
        return "bnb";
      case MapperKind::Smt:
        return "smt";
    }
    panic("mapperKindName: unknown kind");
}

std::vector<ProgQubit>
Mapping::hwToProg(int num_hw) const
{
    std::vector<ProgQubit> inv(static_cast<size_t>(num_hw), -1);
    for (size_t p = 0; p < progToHw.size(); ++p) {
        HwQubit h = progToHw[p];
        if (h < 0 || h >= num_hw)
            panic("Mapping::hwToProg: hardware qubit ", h, " out of range");
        if (inv[static_cast<size_t>(h)] != -1)
            panic("Mapping::hwToProg: non-injective mapping at hw qubit ",
                  h);
        inv[static_cast<size_t>(h)] = static_cast<ProgQubit>(p);
    }
    return inv;
}

namespace
{

/**
 * Reliability of one mapped interacting pair. The matrix entry is
 * direction-sensitive (it moves the *control* next to the target, and
 * IBM orientation fixes are asymmetric); since the translation pass can
 * reverse any CNOT with free/cheap 1Q gates, the mapper scores a pair
 * by its better direction. The search and the evaluation must agree on
 * this, or branch-and-bound pruning would be unsound.
 */
double
pairScore(const ReliabilityMatrix &rel, HwQubit a, HwQubit b)
{
    return std::max(rel.pairReliability(a, b), rel.pairReliability(b, a));
}

} // namespace

double
mappingMinReliability(const ProgramInfo &info, const ReliabilityMatrix &rel,
                      const std::vector<HwQubit> &prog_to_hw,
                      bool include_readout)
{
    double m = 1.0;
    for (const auto &p : info.pairs)
        m = std::min(m,
                     pairScore(rel, prog_to_hw[static_cast<size_t>(p.a)],
                               prog_to_hw[static_cast<size_t>(p.b)]));
    if (include_readout)
        for (ProgQubit q : info.measured)
            m = std::min(m, rel.readoutReliability(
                                prog_to_hw[static_cast<size_t>(q)]));
    return m;
}

double
mappingLogProduct(const ProgramInfo &info, const ReliabilityMatrix &rel,
                  const std::vector<HwQubit> &prog_to_hw,
                  bool include_readout)
{
    double s = 0.0;
    for (const auto &p : info.pairs) {
        double r = pairScore(rel, prog_to_hw[static_cast<size_t>(p.a)],
                             prog_to_hw[static_cast<size_t>(p.b)]);
        s += p.weight * std::log(std::max(r, 1e-300));
    }
    if (include_readout)
        for (ProgQubit q : info.measured)
            s += std::log(std::max(
                rel.readoutReliability(prog_to_hw[static_cast<size_t>(q)]),
                1e-300));
    return s;
}

namespace
{

/** Per-program-qubit total interaction weight. */
std::vector<int>
interactionWeights(const ProgramInfo &info)
{
    std::vector<int> w(static_cast<size_t>(info.numProgQubits), 0);
    for (const auto &p : info.pairs) {
        w[static_cast<size_t>(p.a)] += p.weight;
        w[static_cast<size_t>(p.b)] += p.weight;
    }
    return w;
}

/**
 * Placement order: BFS over the interaction graph from the
 * heaviest-interacting qubit, heavier frontier nodes first. Isolated
 * (including measured-only) qubits go last.
 */
std::vector<ProgQubit>
placementOrder(const ProgramInfo &info)
{
    const int n = info.numProgQubits;
    std::vector<int> weight = interactionWeights(info);
    std::vector<std::vector<ProgQubit>> adj(static_cast<size_t>(n));
    for (const auto &p : info.pairs) {
        adj[static_cast<size_t>(p.a)].push_back(p.b);
        adj[static_cast<size_t>(p.b)].push_back(p.a);
    }
    std::vector<bool> placed(static_cast<size_t>(n), false);
    std::vector<ProgQubit> order;
    order.reserve(static_cast<size_t>(n));
    auto heaviest_unplaced = [&]() {
        ProgQubit best = -1;
        for (int q = 0; q < n; ++q)
            if (!placed[static_cast<size_t>(q)] &&
                (best == -1 || weight[static_cast<size_t>(q)] >
                                   weight[static_cast<size_t>(best)]))
                best = q;
        return best;
    };
    while (static_cast<int>(order.size()) < n) {
        ProgQubit seed = heaviest_unplaced();
        std::vector<ProgQubit> frontier{seed};
        placed[static_cast<size_t>(seed)] = true;
        while (!frontier.empty()) {
            // Pop the heaviest frontier qubit.
            auto it = std::max_element(
                frontier.begin(), frontier.end(),
                [&](ProgQubit a, ProgQubit b) {
                    return weight[static_cast<size_t>(a)] <
                           weight[static_cast<size_t>(b)];
                });
            ProgQubit q = *it;
            frontier.erase(it);
            order.push_back(q);
            for (ProgQubit nb : adj[static_cast<size_t>(q)]) {
                if (!placed[static_cast<size_t>(nb)]) {
                    placed[static_cast<size_t>(nb)] = true;
                    frontier.push_back(nb);
                }
            }
        }
    }
    return order;
}

/** Shared state for incremental objective evaluation during search. */
struct SearchContext
{
    const ProgramInfo &info;
    const ReliabilityMatrix &rel;
    bool includeReadout;
    std::vector<ProgQubit> order;
    // For each position k in `order`, the pairs whose *second* endpoint
    // is order[k] and whose other endpoint was placed earlier.
    std::vector<std::vector<ProgramInfo::Pair>> backPairs;
    std::vector<bool> measuredFlag;

    SearchContext(const ProgramInfo &i, const ReliabilityMatrix &r,
                  bool include_ro)
        : info(i), rel(r), includeReadout(include_ro),
          order(placementOrder(i)),
          backPairs(order.size()),
          measuredFlag(static_cast<size_t>(i.numProgQubits), false)
    {
        std::vector<int> pos(static_cast<size_t>(i.numProgQubits), 0);
        for (size_t k = 0; k < order.size(); ++k)
            pos[static_cast<size_t>(order[k])] = static_cast<int>(k);
        for (const auto &p : i.pairs) {
            size_t k = static_cast<size_t>(
                std::max(pos[static_cast<size_t>(p.a)],
                         pos[static_cast<size_t>(p.b)]));
            backPairs[k].push_back(p);
        }
        for (ProgQubit q : i.measured)
            measuredFlag[static_cast<size_t>(q)] = true;
    }

    /**
     * Min reliability contributed by placing order[k] at hw qubit h,
     * given earlier placements in `map` (program -> hw, -1 unplaced).
     */
    double
    placementScore(size_t k, HwQubit h,
                   const std::vector<HwQubit> &map) const
    {
        double m = 1.0;
        ProgQubit q = order[k];
        for (const auto &p : backPairs[k]) {
            ProgQubit other = p.a == q ? p.b : p.a;
            HwQubit oh = map[static_cast<size_t>(other)];
            m = std::min(m, pairScore(rel, oh, h));
        }
        if (includeReadout && measuredFlag[static_cast<size_t>(q)])
            m = std::min(m, rel.readoutReliability(h));
        return m;
    }
};

Mapping
finishMapping(const ProgramInfo &info, const ReliabilityMatrix &rel,
              std::vector<HwQubit> map, bool include_ro, bool optimal,
              long nodes, const char *engine)
{
    Mapping m;
    m.progToHw = std::move(map);
    m.minReliability =
        mappingMinReliability(info, rel, m.progToHw, include_ro);
    m.logProduct = mappingLogProduct(info, rel, m.progToHw, include_ro);
    m.optimal = optimal;
    m.nodesExplored = nodes;
    m.engine = engine;
    return m;
}

/** Constructive greedy placement. */
std::vector<HwQubit>
greedyPlace(const SearchContext &ctx)
{
    const int m = ctx.rel.numQubits();
    std::vector<HwQubit> map(static_cast<size_t>(ctx.info.numProgQubits),
                             -1);
    std::vector<bool> used(static_cast<size_t>(m), false);
    for (size_t k = 0; k < ctx.order.size(); ++k) {
        HwQubit best = -1;
        double best_score = -1.0;
        double best_tie = -1.0;
        for (HwQubit h = 0; h < m; ++h) {
            if (used[static_cast<size_t>(h)])
                continue;
            double score = ctx.placementScore(k, h, map);
            // Tie-break: prefer reliable readout neighborhoods.
            double tie = ctx.rel.readoutReliability(h);
            if (score > best_score + 1e-15 ||
                (score > best_score - 1e-15 && tie > best_tie)) {
                best = h;
                best_score = score;
                best_tie = tie;
            }
        }
        map[static_cast<size_t>(ctx.order[k])] = best;
        used[static_cast<size_t>(best)] = true;
    }
    return map;
}

/**
 * Hill-climbing improvement: move a program qubit to a free hardware
 * qubit or swap two placements when it improves the objective pair
 * lexicographically (primary metric first, the other as tie-break).
 * Anytime: returns false when the budget deadline fired before the
 * climb converged (the map still holds the best placement reached).
 */
bool
localSearch(const ProgramInfo &info, const ReliabilityMatrix &rel,
            bool include_ro, MappingObjective objective,
            std::vector<HwQubit> &map,
            const CompileBudget &budget = CompileBudget())
{
    const int mhw = rel.numQubits();
    const int n = info.numProgQubits;
    auto score = [&](const std::vector<HwQubit> &mp) {
        double mn = mappingMinReliability(info, rel, mp, include_ro);
        double lp = mappingLogProduct(info, rel, mp, include_ro);
        return objective == MappingObjective::MaxMin
                   ? std::pair<double, double>(mn, lp)
                   : std::pair<double, double>(lp, mn);
    };
    auto better = [](const std::pair<double, double> &a,
                     const std::pair<double, double> &b) {
        if (a.first > b.first + 1e-15)
            return true;
        if (a.first < b.first - 1e-15)
            return false;
        return a.second > b.second + 1e-12;
    };
    std::vector<ProgQubit> inv(static_cast<size_t>(mhw), -1);
    for (int p = 0; p < n; ++p)
        inv[static_cast<size_t>(map[static_cast<size_t>(p)])] = p;
    auto cur = score(map);
    for (int pass = 0; pass < 32; ++pass) {
        bool improved = false;
        for (int p = 0; p < n; ++p) {
            if (budget.expired())
                return false;
            for (HwQubit h = 0; h < mhw; ++h) {
                HwQubit old = map[static_cast<size_t>(p)];
                if (h == old)
                    continue;
                ProgQubit occupant = inv[static_cast<size_t>(h)];
                map[static_cast<size_t>(p)] = h;
                if (occupant != -1)
                    map[static_cast<size_t>(occupant)] = old;
                auto cand = score(map);
                if (better(cand, cur)) {
                    cur = cand;
                    improved = true;
                    inv[static_cast<size_t>(h)] = p;
                    inv[static_cast<size_t>(old)] = occupant;
                } else {
                    map[static_cast<size_t>(p)] = old;
                    if (occupant != -1)
                        map[static_cast<size_t>(occupant)] = h;
                }
            }
        }
        if (!improved)
            break;
    }
    return true;
}

/**
 * Exact product-objective search with optimistic suffix bounds: the
 * [46]-style whole-graph objective the paper contrasts with max-min.
 * Pruning needs an upper bound on the unplaced suffix (every remaining
 * operation at the device's best reliability), which is far weaker than
 * the max-min rule "any single bad operation kills the branch" — the
 * ablation harness measures the node-count difference.
 */
struct BnbProductSearch
{
    const SearchContext &ctx;
    long budget;
    const CompileBudget &clock;
    long nodes = 0;
    bool exhausted = false;
    bool timedOut = false;
    double bestSum;
    std::vector<HwQubit> bestMap;
    std::vector<HwQubit> map;
    std::vector<bool> used;
    // suffixPotential[k]: upper bound on the objective contribution of
    // placements k..end.
    std::vector<double> suffixPotential;
    double maxRoLog;

    BnbProductSearch(const SearchContext &c, long node_budget,
                     const CompileBudget &clk, double incumbent,
                     std::vector<HwQubit> incumbent_map)
        : ctx(c), budget(node_budget), clock(clk), bestSum(incumbent),
          bestMap(std::move(incumbent_map)),
          map(static_cast<size_t>(c.info.numProgQubits), -1),
          used(static_cast<size_t>(c.rel.numQubits()), false)
    {
        double max_pair_log =
            std::log(std::max(ctx.rel.maxPairReliability(), 1e-300));
        double best_ro = 0.0;
        for (int h = 0; h < ctx.rel.numQubits(); ++h)
            best_ro = std::max(best_ro, ctx.rel.readoutReliability(h));
        maxRoLog = std::log(std::max(best_ro, 1e-300));
        suffixPotential.assign(ctx.order.size() + 1, 0.0);
        for (size_t k = ctx.order.size(); k-- > 0;) {
            double pot = suffixPotential[k + 1];
            for (const auto &p : ctx.backPairs[k])
                pot += p.weight * max_pair_log;
            if (ctx.includeReadout &&
                ctx.measuredFlag[static_cast<size_t>(ctx.order[k])])
                pot += maxRoLog;
            suffixPotential[k] = pot;
        }
    }

    /** Objective contribution of placing order[k] at h. */
    double
    contribution(size_t k, HwQubit h) const
    {
        double s = 0.0;
        ProgQubit q = ctx.order[k];
        for (const auto &p : ctx.backPairs[k]) {
            ProgQubit other = p.a == q ? p.b : p.a;
            HwQubit oh = map[static_cast<size_t>(other)];
            s += p.weight *
                 std::log(std::max(pairScore(ctx.rel, oh, h), 1e-300));
        }
        if (ctx.includeReadout &&
            ctx.measuredFlag[static_cast<size_t>(q)])
            s += std::log(
                std::max(ctx.rel.readoutReliability(h), 1e-300));
        return s;
    }

    void
    dfs(size_t k, double cur_sum)
    {
        if (exhausted)
            return;
        if (k == ctx.order.size()) {
            if (cur_sum > bestSum + 1e-12) {
                bestSum = cur_sum;
                bestMap = map;
            }
            return;
        }
        if (++nodes > budget) {
            exhausted = true;
            return;
        }
        // Poll the wall clock sparsely: a clock read per node would
        // dominate the search itself.
        if ((nodes & 0xFFF) == 0 && clock.expired()) {
            exhausted = true;
            timedOut = true;
            return;
        }
        std::vector<std::pair<double, HwQubit>> cands;
        for (HwQubit h = 0; h < ctx.rel.numQubits(); ++h) {
            if (used[static_cast<size_t>(h)])
                continue;
            double ns = cur_sum + contribution(k, h);
            if (ns + suffixPotential[k + 1] > bestSum + 1e-12)
                cands.emplace_back(ns, h);
        }
        std::sort(cands.begin(), cands.end(),
                  [](const auto &a, const auto &b) {
                      return a.first > b.first;
                  });
        for (const auto &[ns, h] : cands) {
            if (ns + suffixPotential[k + 1] <= bestSum + 1e-12)
                continue;
            map[static_cast<size_t>(ctx.order[k])] = h;
            used[static_cast<size_t>(h)] = true;
            dfs(k + 1, ns);
            used[static_cast<size_t>(h)] = false;
            map[static_cast<size_t>(ctx.order[k])] = -1;
            if (exhausted)
                return;
        }
    }
};

/** Exact max-min search with incumbent pruning. */
struct BnbSearch
{
    const SearchContext &ctx;
    long budget;
    const CompileBudget &clock;
    long nodes = 0;
    bool exhausted = false;
    bool timedOut = false;
    double bestMin;
    std::vector<HwQubit> bestMap;
    std::vector<HwQubit> map;
    std::vector<bool> used;

    BnbSearch(const SearchContext &c, long node_budget,
              const CompileBudget &clk, double incumbent,
              std::vector<HwQubit> incumbent_map)
        : ctx(c), budget(node_budget), clock(clk), bestMin(incumbent),
          bestMap(std::move(incumbent_map)),
          map(static_cast<size_t>(c.info.numProgQubits), -1),
          used(static_cast<size_t>(c.rel.numQubits()), false)
    {
    }

    void
    dfs(size_t k, double cur_min)
    {
        if (exhausted)
            return;
        if (k == ctx.order.size()) {
            if (cur_min > bestMin + 1e-15) {
                bestMin = cur_min;
                bestMap = map;
            }
            return;
        }
        if (++nodes > budget) {
            exhausted = true;
            return;
        }
        // Poll the wall clock sparsely: a clock read per node would
        // dominate the search itself.
        if ((nodes & 0xFFF) == 0 && clock.expired()) {
            exhausted = true;
            timedOut = true;
            return;
        }
        ProgQubit q = ctx.order[k];
        // Order candidates by score so good branches are explored first.
        std::vector<std::pair<double, HwQubit>> cands;
        for (HwQubit h = 0; h < ctx.rel.numQubits(); ++h) {
            if (used[static_cast<size_t>(h)])
                continue;
            double s = ctx.placementScore(k, h, map);
            double nm = std::min(cur_min, s);
            if (nm > bestMin + 1e-15)
                cands.emplace_back(nm, h);
        }
        std::sort(cands.begin(), cands.end(),
                  [](const auto &a, const auto &b) {
                      return a.first > b.first;
                  });
        for (const auto &[nm, h] : cands) {
            if (nm <= bestMin + 1e-15)
                continue; // Incumbent improved since candidate listing.
            map[static_cast<size_t>(q)] = h;
            used[static_cast<size_t>(h)] = true;
            dfs(k + 1, nm);
            used[static_cast<size_t>(h)] = false;
            map[static_cast<size_t>(q)] = -1;
            if (exhausted)
                return;
        }
    }
};

} // namespace

Mapping
trivialMapping(const ProgramInfo &info, const ReliabilityMatrix &rel)
{
    if (info.numProgQubits > rel.numQubits())
        fatal("trivialMapping: program needs ", info.numProgQubits,
              " qubits, device has ", rel.numQubits());
    std::vector<HwQubit> map(static_cast<size_t>(info.numProgQubits));
    std::iota(map.begin(), map.end(), 0);
    return finishMapping(info, rel, std::move(map), true, false, 0,
                         "trivial");
}

Mapping
mapQubits(const ProgramInfo &info, const ReliabilityMatrix &rel,
          const MappingOptions &opts)
{
    if (info.numProgQubits > rel.numQubits())
        fatal("mapQubits: program needs ", info.numProgQubits,
              " qubits, device has only ", rel.numQubits());
    if (info.numProgQubits == 0)
        return finishMapping(info, rel, {}, opts.includeReadout, true, 0,
                             "trivial");

    switch (opts.kind) {
      case MapperKind::Trivial:
        return trivialMapping(info, rel);
      case MapperKind::Greedy: {
        SearchContext ctx(info, rel, opts.includeReadout);
        auto map = greedyPlace(ctx);
        bool converged = localSearch(info, rel, opts.includeReadout,
                                     opts.objective, map, opts.budget);
        Mapping m = finishMapping(info, rel, std::move(map),
                                  opts.includeReadout, false, 0,
                                  "greedy");
        if (!converged) {
            m.timedOut = true;
            m.notes.push_back("deadline fired during greedy local "
                              "search; returning best placement so far");
        }
        return m;
      }
      case MapperKind::BranchAndBound: {
        SearchContext ctx(info, rel, opts.includeReadout);
        auto seed = greedyPlace(ctx);
        bool converged = localSearch(info, rel, opts.includeReadout,
                                     opts.objective, seed, opts.budget);
        // The greedy incumbent is the anytime floor: if the deadline
        // already fired, skip the exact search and return it.
        if (!converged || opts.budget.expired()) {
            Mapping m = finishMapping(info, rel, std::move(seed),
                                      opts.includeReadout, false, 0,
                                      "greedy");
            m.timedOut = true;
            m.notes.push_back(
                "deadline fired before branch-and-bound could run; "
                "degraded to the greedy incumbent");
            return m;
        }
        if (opts.objective == MappingObjective::Product) {
            double incumbent = mappingLogProduct(info, rel, seed,
                                                 opts.includeReadout);
            BnbProductSearch search(ctx, opts.nodeBudget, opts.budget,
                                    incumbent, seed);
            search.dfs(0, 0.0);
            Mapping m = finishMapping(info, rel, search.bestMap,
                                      opts.includeReadout,
                                      !search.exhausted, search.nodes,
                                      "bnb");
            m.timedOut = search.timedOut;
            if (search.timedOut)
                m.notes.push_back(
                    "deadline fired during branch-and-bound; returning "
                    "the best incumbent found");
            else if (search.exhausted)
                m.notes.push_back("branch-and-bound node budget "
                                  "exhausted; returning the incumbent");
            return m;
        }
        double incumbent = mappingMinReliability(info, rel, seed,
                                                 opts.includeReadout);
        // Search strictly above the incumbent; the incumbent map is
        // returned when nothing better exists.
        BnbSearch search(ctx, opts.nodeBudget, opts.budget, incumbent,
                         seed);
        search.dfs(0, 1.0);
        Mapping m = finishMapping(info, rel, search.bestMap,
                                  opts.includeReadout, !search.exhausted,
                                  search.nodes, "bnb");
        m.timedOut = search.timedOut;
        if (search.timedOut)
            m.notes.push_back("deadline fired during branch-and-bound; "
                              "returning the best incumbent found");
        else if (search.exhausted)
            m.notes.push_back("branch-and-bound node budget exhausted; "
                              "returning the incumbent");
        return m;
      }
      case MapperKind::Smt:
        if (opts.objective == MappingObjective::Product) {
            warn("SMT mapper supports only the max-min objective; "
                 "using branch-and-bound for the product objective");
            MappingOptions fb = opts;
            fb.kind = MapperKind::BranchAndBound;
            Mapping m = mapQubits(info, rel, fb);
            m.notes.insert(m.notes.begin(),
                           "SMT engine cannot optimize the product "
                           "objective; degraded to branch-and-bound");
            return m;
        }
        return mapQubitsSmtOrFallback(info, rel, opts);
    }
    panic("mapQubits: unknown mapper kind");
}

} // namespace triq
