#include "core/mapper.hh"

#include "core/mapper_smt.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <numeric>

#include "common/env.hh"
#include "common/logging.hh"

namespace triq
{

ProgramInfo
ProgramInfo::fromCircuit(const Circuit &c)
{
    ProgramInfo info;
    info.numProgQubits = c.numQubits();
    std::map<std::pair<ProgQubit, ProgQubit>, int> counts;
    for (const auto &g : c.gates()) {
        if (isTwoQubitGate(g.kind)) {
            ProgQubit a = g.qubit(0), b = g.qubit(1);
            if (a > b)
                std::swap(a, b);
            ++counts[{a, b}];
        }
    }
    for (const auto &[key, w] : counts)
        info.pairs.push_back({key.first, key.second, w});
    info.measured = c.measuredQubits();
    return info;
}

MapperKind
mapperKindFromString(const std::string &s)
{
    if (s == "trivial")
        return MapperKind::Trivial;
    if (s == "greedy")
        return MapperKind::Greedy;
    if (s == "bnb")
        return MapperKind::BranchAndBound;
    if (s == "smt")
        return MapperKind::Smt;
    fatal("unknown mapper kind '", s, "'");
}

std::string
mapperKindName(MapperKind kind)
{
    switch (kind) {
      case MapperKind::Trivial:
        return "trivial";
      case MapperKind::Greedy:
        return "greedy";
      case MapperKind::BranchAndBound:
        return "bnb";
      case MapperKind::Smt:
        return "smt";
    }
    panic("mapperKindName: unknown kind");
}

std::vector<ProgQubit>
Mapping::hwToProg(int num_hw) const
{
    std::vector<ProgQubit> inv(static_cast<size_t>(num_hw), -1);
    for (size_t p = 0; p < progToHw.size(); ++p) {
        HwQubit h = progToHw[p];
        if (h < 0 || h >= num_hw)
            panic("Mapping::hwToProg: hardware qubit ", h, " out of range");
        if (inv[static_cast<size_t>(h)] != -1)
            panic("Mapping::hwToProg: non-injective mapping at hw qubit ",
                  h);
        inv[static_cast<size_t>(h)] = static_cast<ProgQubit>(p);
    }
    return inv;
}

namespace
{

/**
 * Reliability of one mapped interacting pair. The matrix entry is
 * direction-sensitive (it moves the *control* next to the target, and
 * IBM orientation fixes are asymmetric); since the translation pass can
 * reverse any CNOT with free/cheap 1Q gates, the mapper scores a pair
 * by its better direction. The search and the evaluation must agree on
 * this, or branch-and-bound pruning would be unsound.
 */
double
pairScore(const ReliabilityMatrix &rel, HwQubit a, HwQubit b)
{
    return std::max(rel.pairReliability(a, b), rel.pairReliability(b, a));
}

} // namespace

double
mappingMinReliability(const ProgramInfo &info, const ReliabilityMatrix &rel,
                      const std::vector<HwQubit> &prog_to_hw,
                      bool include_readout)
{
    double m = 1.0;
    for (const auto &p : info.pairs)
        m = std::min(m,
                     pairScore(rel, prog_to_hw[static_cast<size_t>(p.a)],
                               prog_to_hw[static_cast<size_t>(p.b)]));
    if (include_readout)
        for (ProgQubit q : info.measured)
            m = std::min(m, rel.readoutReliability(
                                prog_to_hw[static_cast<size_t>(q)]));
    return m;
}

double
mappingLogProduct(const ProgramInfo &info, const ReliabilityMatrix &rel,
                  const std::vector<HwQubit> &prog_to_hw,
                  bool include_readout)
{
    double s = 0.0;
    for (const auto &p : info.pairs) {
        double r = pairScore(rel, prog_to_hw[static_cast<size_t>(p.a)],
                             prog_to_hw[static_cast<size_t>(p.b)]);
        s += p.weight * std::log(std::max(r, 1e-300));
    }
    if (include_readout)
        for (ProgQubit q : info.measured)
            s += std::log(std::max(
                rel.readoutReliability(prog_to_hw[static_cast<size_t>(q)]),
                1e-300));
    return s;
}

namespace
{

/** Per-program-qubit total interaction weight. */
std::vector<int>
interactionWeights(const ProgramInfo &info)
{
    std::vector<int> w(static_cast<size_t>(info.numProgQubits), 0);
    for (const auto &p : info.pairs) {
        w[static_cast<size_t>(p.a)] += p.weight;
        w[static_cast<size_t>(p.b)] += p.weight;
    }
    return w;
}

/**
 * Placement order: BFS over the interaction graph from the
 * heaviest-interacting qubit, heavier frontier nodes first. Isolated
 * (including measured-only) qubits go last.
 */
std::vector<ProgQubit>
placementOrder(const ProgramInfo &info)
{
    const int n = info.numProgQubits;
    std::vector<int> weight = interactionWeights(info);
    std::vector<std::vector<ProgQubit>> adj(static_cast<size_t>(n));
    for (const auto &p : info.pairs) {
        adj[static_cast<size_t>(p.a)].push_back(p.b);
        adj[static_cast<size_t>(p.b)].push_back(p.a);
    }
    std::vector<bool> placed(static_cast<size_t>(n), false);
    std::vector<ProgQubit> order;
    order.reserve(static_cast<size_t>(n));
    auto heaviest_unplaced = [&]() {
        ProgQubit best = -1;
        for (int q = 0; q < n; ++q)
            if (!placed[static_cast<size_t>(q)] &&
                (best == -1 || weight[static_cast<size_t>(q)] >
                                   weight[static_cast<size_t>(best)]))
                best = q;
        return best;
    };
    while (static_cast<int>(order.size()) < n) {
        ProgQubit seed = heaviest_unplaced();
        std::vector<ProgQubit> frontier{seed};
        placed[static_cast<size_t>(seed)] = true;
        while (!frontier.empty()) {
            // Pop the heaviest frontier qubit.
            auto it = std::max_element(
                frontier.begin(), frontier.end(),
                [&](ProgQubit a, ProgQubit b) {
                    return weight[static_cast<size_t>(a)] <
                           weight[static_cast<size_t>(b)];
                });
            ProgQubit q = *it;
            frontier.erase(it);
            order.push_back(q);
            for (ProgQubit nb : adj[static_cast<size_t>(q)]) {
                if (!placed[static_cast<size_t>(nb)]) {
                    placed[static_cast<size_t>(nb)] = true;
                    frontier.push_back(nb);
                }
            }
        }
    }
    return order;
}

/** Shared state for incremental objective evaluation during search. */
struct SearchContext
{
    const ProgramInfo &info;
    const ReliabilityMatrix &rel;
    bool includeReadout;
    std::vector<ProgQubit> order;
    // For each position k in `order`, the pairs whose *second* endpoint
    // is order[k] and whose other endpoint was placed earlier.
    std::vector<std::vector<ProgramInfo::Pair>> backPairs;
    std::vector<bool> measuredFlag;

    SearchContext(const ProgramInfo &i, const ReliabilityMatrix &r,
                  bool include_ro)
        : info(i), rel(r), includeReadout(include_ro),
          order(placementOrder(i)),
          backPairs(order.size()),
          measuredFlag(static_cast<size_t>(i.numProgQubits), false)
    {
        std::vector<int> pos(static_cast<size_t>(i.numProgQubits), 0);
        for (size_t k = 0; k < order.size(); ++k)
            pos[static_cast<size_t>(order[k])] = static_cast<int>(k);
        for (const auto &p : i.pairs) {
            size_t k = static_cast<size_t>(
                std::max(pos[static_cast<size_t>(p.a)],
                         pos[static_cast<size_t>(p.b)]));
            backPairs[k].push_back(p);
        }
        for (ProgQubit q : i.measured)
            measuredFlag[static_cast<size_t>(q)] = true;
    }

    /**
     * Min reliability contributed by placing order[k] at hw qubit h,
     * given earlier placements in `map` (program -> hw, -1 unplaced).
     */
    double
    placementScore(size_t k, HwQubit h,
                   const std::vector<HwQubit> &map) const
    {
        double m = 1.0;
        ProgQubit q = order[k];
        for (const auto &p : backPairs[k]) {
            ProgQubit other = p.a == q ? p.b : p.a;
            HwQubit oh = map[static_cast<size_t>(other)];
            m = std::min(m, pairScore(rel, oh, h));
        }
        if (includeReadout && measuredFlag[static_cast<size_t>(q)])
            m = std::min(m, rel.readoutReliability(h));
        return m;
    }
};

Mapping
finishMapping(const ProgramInfo &info, const ReliabilityMatrix &rel,
              std::vector<HwQubit> map, bool include_ro, bool optimal,
              long nodes, const char *engine)
{
    Mapping m;
    m.progToHw = std::move(map);
    m.minReliability =
        mappingMinReliability(info, rel, m.progToHw, include_ro);
    m.logProduct = mappingLogProduct(info, rel, m.progToHw, include_ro);
    m.optimal = optimal;
    m.nodesExplored = nodes;
    m.engine = engine;
    return m;
}

/** Constructive greedy placement. */
std::vector<HwQubit>
greedyPlace(const SearchContext &ctx)
{
    const int m = ctx.rel.numQubits();
    std::vector<HwQubit> map(static_cast<size_t>(ctx.info.numProgQubits),
                             -1);
    std::vector<bool> used(static_cast<size_t>(m), false);
    for (size_t k = 0; k < ctx.order.size(); ++k) {
        HwQubit best = -1;
        double best_score = -1.0;
        double best_tie = -1.0;
        for (HwQubit h = 0; h < m; ++h) {
            if (used[static_cast<size_t>(h)])
                continue;
            double score = ctx.placementScore(k, h, map);
            // Tie-break: prefer reliable readout neighborhoods.
            double tie = ctx.rel.readoutReliability(h);
            if (score > best_score + 1e-15 ||
                (score > best_score - 1e-15 && tie > best_tie)) {
                best = h;
                best_score = score;
                best_tie = tie;
            }
        }
        map[static_cast<size_t>(ctx.order[k])] = best;
        used[static_cast<size_t>(best)] = true;
    }
    return map;
}

/**
 * Hill-climbing improvement: move a program qubit to a free hardware
 * qubit or swap two placements when it improves the objective pair
 * lexicographically (primary metric first, the other as tie-break).
 * Anytime: returns false when the budget deadline fired before the
 * climb converged (the map still holds the best placement reached).
 */
bool
localSearch(const ProgramInfo &info, const ReliabilityMatrix &rel,
            bool include_ro, MappingObjective objective,
            std::vector<HwQubit> &map,
            const CompileBudget &budget = CompileBudget())
{
    const int mhw = rel.numQubits();
    const int n = info.numProgQubits;
    auto score = [&](const std::vector<HwQubit> &mp) {
        double mn = mappingMinReliability(info, rel, mp, include_ro);
        double lp = mappingLogProduct(info, rel, mp, include_ro);
        return objective == MappingObjective::MaxMin
                   ? std::pair<double, double>(mn, lp)
                   : std::pair<double, double>(lp, mn);
    };
    auto better = [](const std::pair<double, double> &a,
                     const std::pair<double, double> &b) {
        if (a.first > b.first + 1e-15)
            return true;
        if (a.first < b.first - 1e-15)
            return false;
        return a.second > b.second + 1e-12;
    };
    std::vector<ProgQubit> inv(static_cast<size_t>(mhw), -1);
    for (int p = 0; p < n; ++p)
        inv[static_cast<size_t>(map[static_cast<size_t>(p)])] = p;
    auto cur = score(map);
    for (int pass = 0; pass < 32; ++pass) {
        bool improved = false;
        for (int p = 0; p < n; ++p) {
            if (budget.expired())
                return false;
            for (HwQubit h = 0; h < mhw; ++h) {
                HwQubit old = map[static_cast<size_t>(p)];
                if (h == old)
                    continue;
                ProgQubit occupant = inv[static_cast<size_t>(h)];
                map[static_cast<size_t>(p)] = h;
                if (occupant != -1)
                    map[static_cast<size_t>(occupant)] = old;
                auto cand = score(map);
                if (better(cand, cur)) {
                    cur = cand;
                    improved = true;
                    inv[static_cast<size_t>(h)] = p;
                    inv[static_cast<size_t>(old)] = occupant;
                } else {
                    map[static_cast<size_t>(p)] = old;
                    if (occupant != -1)
                        map[static_cast<size_t>(occupant)] = h;
                }
            }
        }
        if (!improved)
            break;
    }
    return true;
}

/**
 * Shared node-accounting core of the exact searches. One place owns
 * the node budget, the sparse wall-clock poll, and the pruning
 * counters, so the two objective-specific engines cannot drift apart
 * in their anytime behavior (the deadline-check stride used to be
 * copy-pasted in both).
 */
struct SearchCore
{
    long budget;
    const CompileBudget &clock;
    long nodes = 0;
    long boundPruned = 0;
    long symmetryPruned = 0;
    long dominancePruned = 0;
    bool exhausted = false;
    bool timedOut = false;

    SearchCore(long node_budget, const CompileBudget &clk)
        : budget(node_budget), clock(clk)
    {
    }

    /** Charge one node expansion; false when the search must stop. */
    bool
    tick()
    {
        if (++nodes > budget) {
            exhausted = true;
            return false;
        }
        // Poll the wall clock sparsely: a clock read per node would
        // dominate the search itself.
        if ((nodes & 0xFFF) == 0 && clock.expired()) {
            exhausted = true;
            timedOut = true;
            return false;
        }
        return true;
    }
};

/**
 * Precomputed pruning machinery shared by both B&B engines.
 *
 * Bound (degree-aware row relaxation). rowMax[h] is the best symmetric
 * pair reliability reachable through hardware qubit h, so any single
 * mapped 2Q op with an endpoint on h scores <= rowMax[h]. The sharper
 * observation is that a program qubit with f *forward* pairs (partners
 * still unplaced when it is placed at h) forces f distinct sites, so
 * the worst of those f pair scores is <= the f-th best entry of h's
 * partner-score row — on sparse devices the f-th best is a swap chain,
 * far below the best edge, which is what makes the cap bite.
 *  - Max-min: for every program qubit q, the final objective is
 *    <= kth-best(h, fwdDeg) when q has forward pairs, <= rowMax[h]
 *    when its pairs are all backward, and <= ro(h) when q is measured;
 *    maximizing those caps over all hardware sites gives an admissible
 *    per-qubit cap, and suffixCap[k] (the min of caps over order
 *    positions >= k) bounds any completion of a prefix in one
 *    comparison. At search time each candidate additionally gets the
 *    *free-site* version of its cap (f-th best partner score over the
 *    sites actually still free), which is inherited down the subtree —
 *    the free set only shrinks, so a placement-time cap stays
 *    admissible for every descendant.
 *  - Product: each still-unscored pair is attributed to its earlier
 *    placement-order endpoint and charged weight * logRowMax of that
 *    endpoint's row — the actual row once the endpoint is placed
 *    (dyn_pot), the max_h fold otherwise (capE/suffixCapE). Every
 *    charge is <= the legacy global-max suffix potential's charge for
 *    the same op, so this bound is pointwise at least as tight.
 *
 * Symmetry. hwClass comes from ReliabilityMatrix::equivalenceClasses();
 * expanding more than one free member of a class at a node only
 * re-derives permuted copies of the same subtree, so the candidate scan
 * keeps the lowest-indexed free member per class.
 *
 * Dominance. domGE[h2][h1] = h2's scoring row is pointwise >= h1's on
 * every third qubit (readout included). At depths where the qubit being
 * placed has no *forward* pairs, a candidate h2 whose placement score
 * is <= an already-expanded sibling h1's can be pruned: any completion
 * under h2 maps to a pointwise-no-worse completion under h1 by swapping
 * the two hardware qubits in the remainder. The no-forward-pairs
 * restriction is what keeps this sound — the current qubit's own future
 * pairs would need the opposite row inequality.
 */
struct PruneTables
{
    bool useBound = false;
    bool useSymmetry = false;
    bool useDominance = false;

    std::vector<double> rowMax, logRowMax, ro, logRo;
    // Per hardware qubit: every other qubit with its symmetric pair
    // score, sorted best-first (ties by index, for determinism).
    std::vector<std::vector<std::pair<double, HwQubit>>> partnerScore;
    // Number of *forward* pairs of order[k]: partners placed later.
    std::vector<int> fwdDeg;
    // Max-min: admissible cap on the final objective chargeable to the
    // unplaced order-position suffix [k..end); size order+1, last 1.0.
    std::vector<double> suffixCap;
    // Product: forward weight of order[k] (pairs whose earlier endpoint
    // is order[k]) and the admissible suffix potential (size order+1).
    std::vector<double> attrW;
    std::vector<double> suffixCapE;
    // Highest order position among partners of order[k] (-1: no pairs).
    std::vector<int> lastPartnerPos;
    // First position of the trailing run of pair-free qubits.
    size_t firstIsolated = 0;
    std::vector<int> hwClass;
    int numClasses = 0;
    std::vector<std::vector<uint8_t>> domGE;

    bool
    hasForward(size_t k) const
    {
        return lastPartnerPos[k] > static_cast<int>(k);
    }

    /** f-th best partner score of h over all sites (f >= 1). */
    double
    kthBestAll(HwQubit h, int f) const
    {
        const auto &row = partnerScore[static_cast<size_t>(h)];
        return static_cast<size_t>(f) <= row.size()
                   ? row[static_cast<size_t>(f - 1)].first
                   : 0.0;
    }

    /**
     * f-th best partner score of h over the currently *free* sites
     * (f >= 1): the f forward partners of a qubit placed at h must
     * occupy f distinct free sites, so the worst of their pair scores
     * cannot exceed this.
     */
    double
    kthBestFree(HwQubit h, int f, const std::vector<bool> &used) const
    {
        int seen = 0;
        for (const auto &[score, x] : partnerScore[static_cast<size_t>(h)]) {
            if (used[static_cast<size_t>(x)])
                continue;
            if (++seen == f)
                return score;
        }
        return 0.0;
    }
};

PruneTables
buildPruneTables(const SearchContext &ctx, bool use_bound,
                 bool use_symmetry, bool use_dominance)
{
    PruneTables t;
    t.useBound = use_bound;
    t.useSymmetry = use_symmetry;
    t.useDominance = use_dominance;
    const int mhw = ctx.rel.numQubits();
    const size_t n = ctx.order.size();

    t.rowMax.resize(static_cast<size_t>(mhw));
    t.logRowMax.resize(static_cast<size_t>(mhw));
    t.ro.resize(static_cast<size_t>(mhw));
    t.logRo.resize(static_cast<size_t>(mhw));
    for (HwQubit h = 0; h < mhw; ++h) {
        t.rowMax[static_cast<size_t>(h)] = ctx.rel.bestPairReliability(h);
        t.logRowMax[static_cast<size_t>(h)] =
            std::log(std::max(t.rowMax[static_cast<size_t>(h)], 1e-300));
        t.ro[static_cast<size_t>(h)] = ctx.rel.readoutReliability(h);
        t.logRo[static_cast<size_t>(h)] =
            std::log(std::max(t.ro[static_cast<size_t>(h)], 1e-300));
    }

    std::vector<int> pos(static_cast<size_t>(ctx.info.numProgQubits), 0);
    for (size_t k = 0; k < n; ++k)
        pos[static_cast<size_t>(ctx.order[k])] = static_cast<int>(k);
    t.lastPartnerPos.assign(n, -1);
    t.attrW.assign(n, 0.0);
    t.fwdDeg.assign(n, 0);
    for (const auto &p : ctx.info.pairs) {
        int pa = pos[static_cast<size_t>(p.a)];
        int pb = pos[static_cast<size_t>(p.b)];
        int lo = std::min(pa, pb), hi = std::max(pa, pb);
        t.lastPartnerPos[static_cast<size_t>(lo)] =
            std::max(t.lastPartnerPos[static_cast<size_t>(lo)], hi);
        t.lastPartnerPos[static_cast<size_t>(hi)] =
            std::max(t.lastPartnerPos[static_cast<size_t>(hi)], lo);
        t.attrW[static_cast<size_t>(lo)] += p.weight;
        ++t.fwdDeg[static_cast<size_t>(lo)];
    }
    t.firstIsolated = n;
    while (t.firstIsolated > 0 &&
           t.lastPartnerPos[t.firstIsolated - 1] == -1)
        --t.firstIsolated;

    if (use_bound) {
        t.partnerScore.resize(static_cast<size_t>(mhw));
        for (HwQubit h = 0; h < mhw; ++h) {
            auto &row = t.partnerScore[static_cast<size_t>(h)];
            row.reserve(static_cast<size_t>(mhw - 1));
            for (HwQubit x = 0; x < mhw; ++x)
                if (x != h)
                    row.push_back({pairScore(ctx.rel, h, x), x});
            std::sort(row.begin(), row.end(),
                      [](const auto &a, const auto &b) {
                          if (a.first != b.first)
                              return a.first > b.first;
                          return a.second < b.second;
                      });
        }
        t.suffixCap.assign(n + 1, 1.0);
        t.suffixCapE.assign(n + 1, 0.0);
        for (size_t k = n; k-- > 0;) {
            ProgQubit q = ctx.order[k];
            bool has_pair = t.lastPartnerPos[k] != -1;
            bool measured = ctx.includeReadout &&
                            ctx.measuredFlag[static_cast<size_t>(q)];
            double cap_q = has_pair || measured ? 0.0 : 1.0;
            double cap_e = measured || t.attrW[k] > 0.0
                               ? -std::numeric_limits<double>::infinity()
                               : 0.0;
            for (HwQubit h = 0; h < mhw; ++h) {
                if (has_pair || measured) {
                    double c = 1.0;
                    if (t.fwdDeg[k] > 0)
                        c = std::min(c, t.kthBestAll(h, t.fwdDeg[k]));
                    else if (has_pair)
                        c = std::min(c, t.rowMax[static_cast<size_t>(h)]);
                    if (measured)
                        c = std::min(c, t.ro[static_cast<size_t>(h)]);
                    cap_q = std::max(cap_q, c);
                }
                if (measured || t.attrW[k] > 0.0) {
                    double e =
                        t.attrW[k] * t.logRowMax[static_cast<size_t>(h)];
                    if (measured)
                        e += t.logRo[static_cast<size_t>(h)];
                    cap_e = std::max(cap_e, e);
                }
            }
            t.suffixCap[k] = std::min(t.suffixCap[k + 1], cap_q);
            t.suffixCapE[k] = t.suffixCapE[k + 1] + cap_e;
        }
    }

    if (use_symmetry) {
        t.hwClass = ctx.rel.equivalenceClasses();
        for (int c : t.hwClass)
            t.numClasses = std::max(t.numClasses, c + 1);
    }

    if (use_dominance) {
        t.domGE.assign(static_cast<size_t>(mhw),
                       std::vector<uint8_t>(static_cast<size_t>(mhw), 0));
        for (HwQubit h2 = 0; h2 < mhw; ++h2)
            for (HwQubit h1 = 0; h1 < mhw; ++h1) {
                if (h1 == h2)
                    continue;
                if (ctx.includeReadout &&
                    t.ro[static_cast<size_t>(h2)] <
                        t.ro[static_cast<size_t>(h1)])
                    continue;
                bool ge = true;
                for (HwQubit x = 0; x < mhw && ge; ++x) {
                    if (x == h1 || x == h2)
                        continue;
                    ge = pairScore(ctx.rel, h2, x) >=
                         pairScore(ctx.rel, h1, x);
                }
                t.domGE[static_cast<size_t>(h2)][static_cast<size_t>(h1)] =
                    ge ? 1 : 0;
            }
    }
    return t;
}

/**
 * The free hardware qubits sorted best-readout-first (ties by index):
 * the assignment order used by the exact isolated-suffix closure.
 */
std::vector<HwQubit>
freeByReadout(const SearchContext &ctx, const std::vector<bool> &used)
{
    std::vector<HwQubit> free_hw;
    for (HwQubit h = 0; h < ctx.rel.numQubits(); ++h)
        if (!used[static_cast<size_t>(h)])
            free_hw.push_back(h);
    std::sort(free_hw.begin(), free_hw.end(),
              [&](HwQubit a, HwQubit b) {
                  double ra = ctx.rel.readoutReliability(a);
                  double rb = ctx.rel.readoutReliability(b);
                  if (ra != rb)
                      return ra > rb;
                  return a < b;
              });
    return free_hw;
}

/** Exact max-min search with incumbent + admissible-bound pruning. */
struct BnbSearch
{
    const SearchContext &ctx;
    const PruneTables &tab;
    SearchCore core;
    double bestMin;
    std::vector<HwQubit> bestMap;
    std::vector<HwQubit> map;
    std::vector<bool> used;

    BnbSearch(const SearchContext &c, const PruneTables &t,
              long node_budget, const CompileBudget &clk,
              double incumbent, std::vector<HwQubit> incumbent_map)
        : ctx(c), tab(t), core(node_budget, clk), bestMin(incumbent),
          bestMap(std::move(incumbent_map)),
          map(static_cast<size_t>(c.info.numProgQubits), -1),
          used(static_cast<size_t>(c.rel.numQubits()), false)
    {
    }

    /**
     * Exact closure for the trailing pair-free qubits: only their
     * readouts can score, so handing the r measured ones the r best
     * free readouts is optimal — one node instead of a factorial tail.
     */
    void
    closeIsolatedSuffix(size_t k, double cur_min)
    {
        std::vector<HwQubit> free_hw = freeByReadout(ctx, used);
        size_t r = 0;
        for (size_t j = k; j < ctx.order.size(); ++j)
            if (ctx.includeReadout &&
                ctx.measuredFlag[static_cast<size_t>(ctx.order[j])])
                ++r;
        double value = cur_min;
        if (r > 0)
            value = std::min(value, ctx.rel.readoutReliability(
                                        free_hw[r - 1]));
        if (value <= bestMin + 1e-15)
            return;
        size_t mi = 0, oi = r;
        for (size_t j = k; j < ctx.order.size(); ++j) {
            ProgQubit q = ctx.order[j];
            bool meas = ctx.includeReadout &&
                        ctx.measuredFlag[static_cast<size_t>(q)];
            map[static_cast<size_t>(q)] = free_hw[meas ? mi++ : oi++];
        }
        bestMin = value;
        bestMap = map;
        for (size_t j = k; j < ctx.order.size(); ++j)
            map[static_cast<size_t>(ctx.order[j])] = -1;
    }

    /**
     * @param inherited Min over the placed prefix of each qubit's
     *        placement-time free-site degree cap — an admissible bound
     *        on the final objective that only tightens down the path
     *        (the free set shrinks, so caps taken earlier stay valid).
     */
    void
    dfs(size_t k, double cur_min, double inherited)
    {
        if (core.exhausted)
            return;
        if (k == ctx.order.size()) {
            if (cur_min > bestMin + 1e-15) {
                bestMin = cur_min;
                bestMap = map;
            }
            return;
        }
        if (!core.tick())
            return;
        if (tab.useBound && k == tab.firstIsolated) {
            closeIsolatedSuffix(k, cur_min);
            return;
        }
        ProgQubit q = ctx.order[k];
        // Node-constant bound: the unplaced-suffix cap and the prefix's
        // inherited degree caps.
        const double static_cap =
            tab.useBound ? std::min(tab.suffixCap[k + 1], inherited)
                         : 1.0;
        const int fdeg = tab.fwdDeg[k];
        const bool fwd = tab.hasForward(k);
        // Order candidates by score so good branches are explored first.
        struct Cand
        {
            double nm;  // objective prefix after this placement
            double ub;  // admissible bound on any completion below it
            double cap; // this site's own forward-degree cap
            HwQubit h;
        };
        std::vector<Cand> cands;
        std::vector<uint8_t> class_seen;
        if (tab.useSymmetry)
            class_seen.assign(static_cast<size_t>(tab.numClasses), 0);
        for (HwQubit h = 0; h < ctx.rel.numQubits(); ++h) {
            if (used[static_cast<size_t>(h)])
                continue;
            if (tab.useSymmetry) {
                uint8_t &seen = class_seen[static_cast<size_t>(
                    tab.hwClass[static_cast<size_t>(h)])];
                if (seen) {
                    ++core.symmetryPruned;
                    continue;
                }
                seen = 1;
            }
            double s = ctx.placementScore(k, h, map);
            double nm = std::min(cur_min, s);
            double ub = std::min(nm, static_cap);
            double cap = 1.0;
            if (tab.useBound && fdeg > 0) {
                // q's fdeg forward partners need fdeg distinct free
                // sites, so the worst of those pairs cannot beat the
                // fdeg-th best free partner of h.
                cap = tab.kthBestFree(h, fdeg, used);
                ub = std::min(ub, cap);
            }
            if (ub > bestMin + 1e-15)
                cands.push_back({nm, ub, cap, h});
            else
                ++core.boundPruned;
        }
        std::sort(cands.begin(), cands.end(),
                  [](const Cand &a, const Cand &b) {
                      return a.nm > b.nm;
                  });
        std::vector<HwQubit> expanded;
        for (const auto &c : cands) {
            if (c.ub <= bestMin + 1e-15) {
                // Incumbent improved since candidate listing.
                ++core.boundPruned;
                continue;
            }
            if (tab.useDominance && !fwd) {
                bool dominated = false;
                for (HwQubit h1 : expanded)
                    if (tab.domGE[static_cast<size_t>(c.h)]
                                 [static_cast<size_t>(h1)]) {
                        dominated = true;
                        break;
                    }
                if (dominated) {
                    ++core.dominancePruned;
                    continue;
                }
            }
            map[static_cast<size_t>(q)] = c.h;
            used[static_cast<size_t>(c.h)] = true;
            dfs(k + 1, c.nm, std::min(inherited, c.cap));
            used[static_cast<size_t>(c.h)] = false;
            map[static_cast<size_t>(q)] = -1;
            if (core.exhausted)
                return;
            if (tab.useDominance && !fwd)
                expanded.push_back(c.h);
        }
    }
};

/**
 * Exact product-objective search: the [46]-style whole-graph objective
 * the paper contrasts with max-min. With the row relaxation off it
 * falls back to the legacy static suffix potential (every remaining
 * operation at the device-wide best reliability), which is what the
 * micro_mapper ablation rows measure against.
 */
struct BnbProductSearch
{
    const SearchContext &ctx;
    const PruneTables &tab;
    SearchCore core;
    double bestSum;
    std::vector<HwQubit> bestMap;
    std::vector<HwQubit> map;
    std::vector<bool> used;
    // Legacy bound: suffixPotential[k] caps the contribution of
    // placements k..end at the device-wide best reliabilities.
    std::vector<double> suffixPotential;

    BnbProductSearch(const SearchContext &c, const PruneTables &t,
                     long node_budget, const CompileBudget &clk,
                     double incumbent, std::vector<HwQubit> incumbent_map)
        : ctx(c), tab(t), core(node_budget, clk), bestSum(incumbent),
          bestMap(std::move(incumbent_map)),
          map(static_cast<size_t>(c.info.numProgQubits), -1),
          used(static_cast<size_t>(c.rel.numQubits()), false)
    {
        if (!tab.useBound) {
            double max_pair_log =
                std::log(std::max(ctx.rel.maxPairReliability(), 1e-300));
            double best_ro = 0.0;
            for (int h = 0; h < ctx.rel.numQubits(); ++h)
                best_ro =
                    std::max(best_ro, ctx.rel.readoutReliability(h));
            double max_ro_log = std::log(std::max(best_ro, 1e-300));
            suffixPotential.assign(ctx.order.size() + 1, 0.0);
            for (size_t k = ctx.order.size(); k-- > 0;) {
                double pot = suffixPotential[k + 1];
                for (const auto &p : ctx.backPairs[k])
                    pot += p.weight * max_pair_log;
                if (ctx.includeReadout &&
                    ctx.measuredFlag[static_cast<size_t>(ctx.order[k])])
                    pot += max_ro_log;
                suffixPotential[k] = pot;
            }
        }
    }

    /** Objective contribution of placing order[k] at h. */
    double
    contribution(size_t k, HwQubit h) const
    {
        double s = 0.0;
        ProgQubit q = ctx.order[k];
        for (const auto &p : ctx.backPairs[k]) {
            ProgQubit other = p.a == q ? p.b : p.a;
            HwQubit oh = map[static_cast<size_t>(other)];
            s += p.weight *
                 std::log(std::max(pairScore(ctx.rel, oh, h), 1e-300));
        }
        if (ctx.includeReadout &&
            ctx.measuredFlag[static_cast<size_t>(q)])
            s += std::log(
                std::max(ctx.rel.readoutReliability(h), 1e-300));
        return s;
    }

    /**
     * Row-relaxation charge released by scoring order[k]'s back pairs:
     * each was provisionally counted in dyn_pot at its earlier
     * endpoint's rowMax when that endpoint was placed.
     */
    double
    backAdjust(size_t k) const
    {
        double adj = 0.0;
        ProgQubit q = ctx.order[k];
        for (const auto &p : ctx.backPairs[k]) {
            ProgQubit other = p.a == q ? p.b : p.a;
            adj += p.weight *
                   tab.logRowMax[static_cast<size_t>(
                       map[static_cast<size_t>(other)])];
        }
        return adj;
    }

    /** Product-objective twin of BnbSearch::closeIsolatedSuffix. */
    void
    closeIsolatedSuffix(size_t k, double cur_sum)
    {
        std::vector<HwQubit> free_hw = freeByReadout(ctx, used);
        size_t r = 0;
        for (size_t j = k; j < ctx.order.size(); ++j)
            if (ctx.includeReadout &&
                ctx.measuredFlag[static_cast<size_t>(ctx.order[j])])
                ++r;
        double value = cur_sum;
        for (size_t i = 0; i < r; ++i)
            value += std::log(std::max(
                ctx.rel.readoutReliability(free_hw[i]), 1e-300));
        if (value <= bestSum + 1e-12)
            return;
        size_t mi = 0, oi = r;
        for (size_t j = k; j < ctx.order.size(); ++j) {
            ProgQubit q = ctx.order[j];
            bool meas = ctx.includeReadout &&
                        ctx.measuredFlag[static_cast<size_t>(q)];
            map[static_cast<size_t>(q)] = free_hw[meas ? mi++ : oi++];
        }
        bestSum = value;
        bestMap = map;
        for (size_t j = k; j < ctx.order.size(); ++j)
            map[static_cast<size_t>(ctx.order[j])] = -1;
    }

    /**
     * @param dyn_pot Row-relaxation potential of the placed prefix:
     *        sum over placed qubits' still-unscored pairs of
     *        weight * logRowMax at the qubit's actual hardware row.
     */
    void
    dfs(size_t k, double cur_sum, double dyn_pot)
    {
        if (core.exhausted)
            return;
        if (k == ctx.order.size()) {
            if (cur_sum > bestSum + 1e-12) {
                bestSum = cur_sum;
                bestMap = map;
            }
            return;
        }
        if (!core.tick())
            return;
        if (tab.useBound && k == tab.firstIsolated) {
            closeIsolatedSuffix(k, cur_sum);
            return;
        }
        const double back_adj = tab.useBound ? backAdjust(k) : 0.0;
        const bool fwd = tab.hasForward(k);
        struct Cand
        {
            double ns;  // objective prefix after this placement
            double ub;  // admissible bound on any completion below it
            double pot; // dyn_pot to carry into the child
            HwQubit h;
        };
        std::vector<Cand> cands;
        std::vector<uint8_t> class_seen;
        if (tab.useSymmetry)
            class_seen.assign(static_cast<size_t>(tab.numClasses), 0);
        for (HwQubit h = 0; h < ctx.rel.numQubits(); ++h) {
            if (used[static_cast<size_t>(h)])
                continue;
            if (tab.useSymmetry) {
                uint8_t &seen = class_seen[static_cast<size_t>(
                    tab.hwClass[static_cast<size_t>(h)])];
                if (seen) {
                    ++core.symmetryPruned;
                    continue;
                }
                seen = 1;
            }
            double ns = cur_sum + contribution(k, h);
            double ub;
            double child_pot = 0.0;
            if (tab.useBound) {
                child_pot = dyn_pot - back_adj +
                            tab.attrW[k] *
                                tab.logRowMax[static_cast<size_t>(h)];
                ub = ns + child_pot + tab.suffixCapE[k + 1];
            } else {
                ub = ns + suffixPotential[k + 1];
            }
            if (ub > bestSum + 1e-12)
                cands.push_back({ns, ub, child_pot, h});
            else
                ++core.boundPruned;
        }
        std::sort(cands.begin(), cands.end(),
                  [](const Cand &a, const Cand &b) {
                      return a.ns > b.ns;
                  });
        std::vector<HwQubit> expanded;
        for (const auto &c : cands) {
            if (c.ub <= bestSum + 1e-12) {
                // Incumbent improved since candidate listing.
                ++core.boundPruned;
                continue;
            }
            if (tab.useDominance && !fwd) {
                bool dominated = false;
                for (HwQubit h1 : expanded)
                    if (tab.domGE[static_cast<size_t>(c.h)]
                                 [static_cast<size_t>(h1)]) {
                        dominated = true;
                        break;
                    }
                if (dominated) {
                    ++core.dominancePruned;
                    continue;
                }
            }
            map[static_cast<size_t>(ctx.order[k])] = c.h;
            used[static_cast<size_t>(c.h)] = true;
            dfs(k + 1, c.ns, c.pot);
            used[static_cast<size_t>(c.h)] = false;
            map[static_cast<size_t>(ctx.order[k])] = -1;
            if (core.exhausted)
                return;
            if (tab.useDominance && !fwd)
                expanded.push_back(c.h);
        }
    }
};

/** True when `map` is a complete injective placement for the program. */
bool
validPlacement(const std::vector<HwQubit> &map, int n_prog, int n_hw)
{
    if (static_cast<int>(map.size()) != n_prog)
        return false;
    std::vector<bool> used(static_cast<size_t>(n_hw), false);
    for (HwQubit h : map) {
        if (h < 0 || h >= n_hw || used[static_cast<size_t>(h)])
            return false;
        used[static_cast<size_t>(h)] = true;
    }
    return true;
}

/**
 * A warm start is a floor, not a ceiling: when yesterday's placement
 * polishes into a worse local optimum than today's constructive seed
 * would, keep the greedy seed instead. This is what makes the
 * warm-start contract ("never worse than a cold search") a theorem —
 * the warm incumbent is >= the cold incumbent, and a higher incumbent
 * with sound pruning dominates at every node budget. Replaces `seed`
 * when the greedy one scores higher; returns false when the deadline
 * fired during the extra polish.
 */
bool
keepBetterSeed(const ProgramInfo &info, const ReliabilityMatrix &rel,
               const MappingOptions &opts, const SearchContext &ctx,
               std::vector<HwQubit> &seed)
{
    std::vector<HwQubit> cold = greedyPlace(ctx);
    bool converged = localSearch(info, rel, opts.includeReadout,
                                 opts.objective, cold, opts.budget);
    auto value = [&](const std::vector<HwQubit> &m) {
        return opts.objective == MappingObjective::MaxMin
                   ? mappingMinReliability(info, rel, m,
                                           opts.includeReadout)
                   : mappingLogProduct(info, rel, m,
                                       opts.includeReadout);
    };
    if (value(cold) > value(seed))
        seed = std::move(cold);
    return converged;
}

} // namespace

Mapping
trivialMapping(const ProgramInfo &info, const ReliabilityMatrix &rel)
{
    if (info.numProgQubits > rel.numQubits())
        fatal("trivialMapping: program needs ", info.numProgQubits,
              " qubits, device has ", rel.numQubits());
    std::vector<HwQubit> map(static_cast<size_t>(info.numProgQubits));
    std::iota(map.begin(), map.end(), 0);
    return finishMapping(info, rel, std::move(map), true, false, 0,
                         "trivial");
}

Mapping
mapQubits(const ProgramInfo &info, const ReliabilityMatrix &rel,
          const MappingOptions &opts)
{
    if (info.numProgQubits > rel.numQubits())
        fatal("mapQubits: program needs ", info.numProgQubits,
              " qubits, device has only ", rel.numQubits());
    if (info.numProgQubits == 0)
        return finishMapping(info, rel, {}, opts.includeReadout, true, 0,
                             "trivial");

    // Warm-start handling is shared by the seeded engines: a valid
    // placement (typically a drift-stale mapping from the compile
    // cache) replaces the constructive greedy seed as the anytime
    // incumbent. Invalid warm starts degrade to greedy with a note.
    bool warm_requested = !opts.warmStart.empty();
    bool warm = warm_requested &&
                validPlacement(opts.warmStart, info.numProgQubits,
                               rel.numQubits()) &&
                envInt("TRIQ_MAPPER_WARM", 1, 0) != 0;
    auto mark_warm = [&](Mapping &m) {
        m.warmStarted = warm;
        if (warm)
            m.warmStartOrigin = opts.warmStartOrigin;
        else if (warm_requested &&
                 !validPlacement(opts.warmStart, info.numProgQubits,
                                 rel.numQubits()))
            m.notes.push_back("invalid warm-start placement ignored; "
                              "seeded from greedy instead");
    };

    switch (opts.kind) {
      case MapperKind::Trivial:
        return trivialMapping(info, rel);
      case MapperKind::Greedy: {
        SearchContext ctx(info, rel, opts.includeReadout);
        auto map = warm ? opts.warmStart : greedyPlace(ctx);
        bool converged = localSearch(info, rel, opts.includeReadout,
                                     opts.objective, map, opts.budget);
        if (warm && converged)
            converged = keepBetterSeed(info, rel, opts, ctx, map);
        Mapping m = finishMapping(info, rel, std::move(map),
                                  opts.includeReadout, false, 0,
                                  "greedy");
        mark_warm(m);
        if (!converged) {
            m.timedOut = true;
            m.notes.push_back("deadline fired during greedy local "
                              "search; returning best placement so far");
        }
        return m;
      }
      case MapperKind::BranchAndBound: {
        SearchContext ctx(info, rel, opts.includeReadout);
        auto seed = warm ? opts.warmStart : greedyPlace(ctx);
        bool converged = localSearch(info, rel, opts.includeReadout,
                                     opts.objective, seed, opts.budget);
        if (warm && converged)
            converged = keepBetterSeed(info, rel, opts, ctx, seed);
        // The seed is the anytime floor: if the deadline already
        // fired, skip the exact search and return it.
        if (!converged || opts.budget.expired()) {
            Mapping m = finishMapping(info, rel, std::move(seed),
                                      opts.includeReadout, false, 0,
                                      warm ? "warm" : "greedy");
            m.timedOut = true;
            mark_warm(m);
            m.notes.push_back(
                "deadline fired before branch-and-bound could run; "
                "degraded to the seed incumbent");
            return m;
        }
        bool use_bound = opts.useStrongBound &&
                         envInt("TRIQ_MAPPER_BOUND", 1, 0) != 0;
        bool use_sym = opts.useSymmetry &&
                       envInt("TRIQ_MAPPER_SYMMETRY", 1, 0) != 0;
        bool use_dom = opts.useDominance &&
                       envInt("TRIQ_MAPPER_DOMINANCE", 1, 0) != 0;
        PruneTables tab =
            buildPruneTables(ctx, use_bound, use_sym, use_dom);
        auto finish = [&](const SearchCore &core,
                          std::vector<HwQubit> best_map) {
            Mapping m = finishMapping(info, rel, std::move(best_map),
                                      opts.includeReadout,
                                      !core.exhausted, core.nodes,
                                      "bnb");
            m.timedOut = core.timedOut;
            m.boundPruned = core.boundPruned;
            m.symmetryPruned = core.symmetryPruned;
            m.dominancePruned = core.dominancePruned;
            m.boundType = use_bound ? "row-relax" : "legacy";
            mark_warm(m);
            if (core.timedOut)
                m.notes.push_back(
                    "deadline fired during branch-and-bound; returning "
                    "the best incumbent found");
            else if (core.exhausted)
                m.notes.push_back("branch-and-bound node budget "
                                  "exhausted; returning the incumbent");
            return m;
        };
        if (opts.objective == MappingObjective::Product) {
            double incumbent = mappingLogProduct(info, rel, seed,
                                                 opts.includeReadout);
            BnbProductSearch search(ctx, tab, opts.nodeBudget,
                                    opts.budget, incumbent, seed);
            search.dfs(0, 0.0, 0.0);
            return finish(search.core, search.bestMap);
        }
        double incumbent = mappingMinReliability(info, rel, seed,
                                                 opts.includeReadout);
        // Search strictly above the incumbent; the incumbent map is
        // returned when nothing better exists.
        BnbSearch search(ctx, tab, opts.nodeBudget, opts.budget,
                         incumbent, seed);
        search.dfs(0, 1.0, 1.0);
        return finish(search.core, search.bestMap);
      }
      case MapperKind::Smt:
        if (opts.objective == MappingObjective::Product) {
            warn("SMT mapper supports only the max-min objective; "
                 "using branch-and-bound for the product objective");
            MappingOptions fb = opts;
            fb.kind = MapperKind::BranchAndBound;
            Mapping m = mapQubits(info, rel, fb);
            m.notes.insert(m.notes.begin(),
                           "SMT engine cannot optimize the product "
                           "objective; degraded to branch-and-bound");
            return m;
        }
        return mapQubitsSmtOrFallback(info, rel, opts);
    }
    panic("mapQubits: unknown mapper kind");
}

} // namespace triq
