/**
 * @file
 * The TriQ compiler driver: wires the passes of Fig. 4 together and
 * exposes the four optimization levels of Table 1.
 *
 *   TriQ-N        no optimization, default (identity) qubit mapping,
 *                 per-gate naive translation;
 *   TriQ-1QOpt    1Q fusion, default mapping;
 *   TriQ-1QOptC   1Q fusion + communication-optimized mapping/routing
 *                 using a reliability matrix built from *average* error
 *                 rates (noise-unaware);
 *   TriQ-1QOptCN  1Q fusion + mapping/routing driven by the day's
 *                 calibration data (noise-aware).
 */

#ifndef TRIQ_CORE_COMPILER_HH
#define TRIQ_CORE_COMPILER_HH

#include <string>

#include "core/circuit.hh"
#include "core/mapper.hh"
#include "core/translate.hh"
#include "device/device.hh"

namespace triq
{

/** Table-1 optimization levels. */
enum class OptLevel
{
    N,        //!< TriQ-N
    OneQOpt,  //!< TriQ-1QOpt
    OneQOptC, //!< TriQ-1QOptC
    OneQOptCN //!< TriQ-1QOptCN
};

/** Display name, e.g. "TriQ-1QOptCN". */
std::string optLevelName(OptLevel level);

/** Compiler configuration. */
struct CompileOptions
{
    OptLevel level = OptLevel::OneQOptCN;

    /** Mapping engine configuration (used by the C/CN levels). */
    MappingOptions mapping;

    /**
     * Run the peephole inverse-pair cancellation pass before mapping.
     * Off by default: the published TriQ performs no 2Q-2Q rewriting;
     * bench/ablation_passes measures what it adds.
     */
    bool peephole = false;

    /** Emit vendor assembly text into CompileResult::assembly. */
    bool emitAssembly = true;
};

/** Everything the toolflow produces for one (program, device) pair. */
struct CompileResult
{
    /** Translated circuit over hardware qubits. */
    Circuit hwCircuit;

    /** Program-qubit placement before/after execution. */
    std::vector<HwQubit> initialMap;
    std::vector<HwQubit> finalMap;

    /** SWAPs inserted by the router. */
    int swapCount = 0;

    /** Emission statistics (pulses, virtual-Z count, 2Q count). */
    TranslateStats stats;

    /** Mapper's achieved max-min objective. */
    double mapperObjective = 0.0;

    /** Wall-clock compile time, milliseconds. */
    double compileMs = 0.0;

    /** Vendor-format executable text (empty if not requested). */
    std::string assembly;
};

/**
 * Compile a program for a device.
 *
 * @param program Program circuit (may contain composite gates).
 * @param dev Target machine.
 * @param calib The day's calibration snapshot; only the CN level reads
 *              the per-qubit/per-edge detail, other levels use the
 *              device's average statistics.
 * @param opts Level and mapper configuration.
 */
CompileResult compileForDevice(const Circuit &program, const Device &dev,
                               const Calibration &calib,
                               const CompileOptions &opts);

} // namespace triq

#endif // TRIQ_CORE_COMPILER_HH
