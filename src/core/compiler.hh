/**
 * @file
 * The TriQ compiler driver: wires the passes of Fig. 4 together and
 * exposes the four optimization levels of Table 1.
 *
 *   TriQ-N        no optimization, default (identity) qubit mapping,
 *                 per-gate naive translation;
 *   TriQ-1QOpt    1Q fusion, default mapping;
 *   TriQ-1QOptC   1Q fusion + communication-optimized mapping/routing
 *                 using a reliability matrix built from *average* error
 *                 rates (noise-unaware);
 *   TriQ-1QOptCN  1Q fusion + mapping/routing driven by the day's
 *                 calibration data (noise-aware).
 */

#ifndef TRIQ_CORE_COMPILER_HH
#define TRIQ_CORE_COMPILER_HH

#include <string>

#include "core/circuit.hh"
#include "core/mapper.hh"
#include "core/translate.hh"
#include "device/device.hh"

namespace triq
{

/** Table-1 optimization levels. */
enum class OptLevel
{
    N,        //!< TriQ-N
    OneQOpt,  //!< TriQ-1QOpt
    OneQOptC, //!< TriQ-1QOptC
    OneQOptCN //!< TriQ-1QOptCN
};

/** Display name, e.g. "TriQ-1QOptCN". */
std::string optLevelName(OptLevel level);

/** Compiler configuration. */
struct CompileOptions
{
    OptLevel level = OptLevel::OneQOptCN;

    /** Mapping engine configuration (used by the C/CN levels). */
    MappingOptions mapping;

    /**
     * Run the peephole inverse-pair cancellation pass before mapping.
     * Off by default: the published TriQ performs no 2Q-2Q rewriting;
     * bench/ablation_passes measures what it adds.
     */
    bool peephole = false;

    /** Emit vendor assembly text into CompileResult::assembly. */
    bool emitAssembly = true;

    /**
     * Wall-clock budget for the whole compilation. Unlimited by
     * default (bit-for-bit identical to the unbudgeted pipeline). With
     * a deadline armed the pipeline is *anytime*: optional optimization
     * passes are skipped and the mapper returns its best incumbent when
     * the deadline fires, but a mappable program always yields a valid
     * routed circuit — the degradations are recorded in
     * CompileResult::report.
     */
    CompileBudget budget;

    /**
     * Calibration input policy: false (default) sanitizes bad values
     * (clamp + warning diagnostics in the report); true rejects them
     * with FatalError (the `triqc --strict-calibration` contract).
     */
    bool strictCalibration = false;
};

/**
 * Structured account of how one compilation went: which engines ran,
 * how long each pass took, and every graceful degradation taken. The
 * report is how a caller distinguishes "full-strength result" from
 * "valid but degraded under the budget" without either case throwing.
 */
struct CompileReport
{
    /** One pipeline pass and its wall-clock cost. */
    struct PassTiming
    {
        std::string pass;
        double ms = 0.0;
    };

    /** Per-pass timings in execution order. */
    std::vector<PassTiming> passes;

    /** Mapping engine requested (MappingOptions::kind display name). */
    std::string requestedMapper;

    /** Mapping engine that actually produced the placement. */
    std::string mapperEngine;

    /** Search nodes explored by the mapper (0 for greedy/trivial). */
    long mapperNodes = 0;

    /** True when the mapper proved its objective optimal. */
    bool mapperOptimal = false;

    /** B&B bound used: "row-relax", "legacy", or "" (non-B&B engine). */
    std::string mapperBoundType;

    /** Candidate placements cut by the admissible/incumbent bound. */
    long mapperBoundPruned = 0;

    /** Candidates skipped as equivalence-class duplicates. */
    long mapperSymmetryPruned = 0;

    /** Candidates cut by sibling-dominance substitution. */
    long mapperDominancePruned = 0;

    /** True when the search was seeded from a warm-start placement. */
    bool mapperWarmStarted = false;

    /** Warm-start provenance (e.g. "drift(day 3)"), "" when cold. */
    std::string mapperWarmStartOrigin;

    /** True when any fallback or early stop was taken. */
    bool degraded = false;

    /** True when the wall-clock deadline fired somewhere. */
    bool deadlineHit = false;

    /** One entry per degradation, in pipeline order. */
    std::vector<std::string> degradations;

    /** Calibration values clamped/repaired by input sanitization. */
    int calibrationRepairs = 0;

    /** Sanitization warnings (and any errors in strict mode). */
    Diagnostics calibrationDiags{"calibration"};

    /** Multi-line human-readable rendering. */
    std::string str() const;

    /** JSON object rendering (the `triqc --diag-json` report field). */
    std::string json() const;
};

/** Everything the toolflow produces for one (program, device) pair. */
struct CompileResult
{
    /** Translated circuit over hardware qubits. */
    Circuit hwCircuit;

    /** Program-qubit placement before/after execution. */
    std::vector<HwQubit> initialMap;
    std::vector<HwQubit> finalMap;

    /** SWAPs inserted by the router. */
    int swapCount = 0;

    /** Emission statistics (pulses, virtual-Z count, 2Q count). */
    TranslateStats stats;

    /** Mapper's achieved max-min objective. */
    double mapperObjective = 0.0;

    /** Wall-clock compile time, milliseconds. */
    double compileMs = 0.0;

    /** Vendor-format executable text (empty if not requested). */
    std::string assembly;

    /** How the compilation went: engines, timings, degradations. */
    CompileReport report;
};

/**
 * Compile a program for a device.
 *
 * @param program Program circuit (may contain composite gates).
 * @param dev Target machine.
 * @param calib The day's calibration snapshot; only the CN level reads
 *              the per-qubit/per-edge detail, other levels use the
 *              device's average statistics.
 * @param opts Level and mapper configuration.
 * @param lowered Optional hoisted decomposition: when non-null it must
 *        equal decomposeToCnotBasis(program, dev.gateSet().nativeCphase)
 *        and the driver uses it instead of recomputing — the sweep
 *        engine (src/service) lowers each program once per gate-set
 *        variant and shares the result across every (day, level) cell.
 *        Decomposition is deterministic, so the compiled artifact is
 *        bit-identical either way.
 */
CompileResult compileForDevice(const Circuit &program, const Device &dev,
                               const Calibration &calib,
                               const CompileOptions &opts,
                               const Circuit *lowered = nullptr);

} // namespace triq

#endif // TRIQ_CORE_COMPILER_HH
