#include "core/translate.hh"

#include <cmath>

#include "common/logging.hh"
#include "core/quaternion.hh"

namespace triq
{

namespace
{

/** Angle tolerance for recognizing special rotations. */
constexpr double kTol = 1e-7;

/** Streaming translator: accumulates 1Q rotations and flushes them. */
class Translator
{
  public:
    Translator(const Topology &topo, const GateSet &gs, bool fuse,
               int num_qubits, const std::string &name)
        : topo_(topo), gs_(gs), fuse_(fuse), out_(num_qubits, name),
          pending_(static_cast<size_t>(num_qubits),
                   Quaternion::identity())
    {
    }

    void
    onOneQubit(const Gate &g)
    {
        size_t q = static_cast<size_t>(g.qubit(0));
        pending_[q] = (Quaternion::fromGate(g) * pending_[q]).normalized();
        if (!fuse_)
            flush(g.qubit(0));
    }

    void
    onCnot(HwQubit c, HwQubit t)
    {
        if (!topo_.adjacent(c, t))
            panic("translate: CNOT between non-adjacent qubits ", c, ",",
                  t);
        switch (gs_.twoQ) {
          case TwoQKind::CNOT:
            if (topo_.orientationNative(c, t)) {
                flush(c);
                flush(t);
                emit2q(Gate::cnot(c, t));
            } else {
                // Reverse via H conjugation on both qubits; the H's fold
                // into the neighboring 1Q runs.
                absorb(c, hQuat());
                absorb(t, hQuat());
                flush(c);
                flush(t);
                emit2q(Gate::cnot(t, c));
                pending_[static_cast<size_t>(c)] = hQuat();
                pending_[static_cast<size_t>(t)] = hQuat();
                if (!fuse_) {
                    flush(c);
                    flush(t);
                }
            }
            return;
          case TwoQKind::CZ:
            // CNOT(c,t) = (I x H) CZ (I x H).
            absorb(t, hQuat());
            flush(c);
            flush(t);
            emit2q(Gate::cz(c, t));
            pending_[static_cast<size_t>(t)] = hQuat();
            if (!fuse_) {
                flush(c);
                flush(t);
            }
            return;
          case TwoQKind::XX: {
            // CNOT(c,t) = [Ry(-pi/2) Rx(-pi/2)]_c [Rx(-pi/2)]_t
            //             . XX(pi/4) . [Ry(pi/2)]_c   (up to phase).
            // The exact sign placement is locked in by the unitary
            // equivalence test in tests/test_translate.cc.
            absorb(c, Quaternion::fromGate(Gate::ry(0, kPi / 2)));
            flush(c);
            flush(t);
            emit2q(Gate::xx(c, t, kPi / 4));
            Quaternion post_c =
                Quaternion::fromGate(Gate::ry(0, -kPi / 2)) *
                Quaternion::fromGate(Gate::rx(0, -kPi / 2));
            pending_[static_cast<size_t>(c)] = post_c.normalized();
            pending_[static_cast<size_t>(t)] =
                Quaternion::fromGate(Gate::rx(0, -kPi / 2));
            if (!fuse_) {
                flush(c);
                flush(t);
            }
            return;
          }
        }
        panic("translate: unknown 2Q kind");
    }

    void
    onCphase(HwQubit a, HwQubit b, double lambda)
    {
        if (gs_.nativeCphase) {
            if (!topo_.adjacent(a, b))
                panic("translate: CPHASE between non-adjacent qubits ",
                      a, ",", b);
            flush(a);
            flush(b);
            emit2q(Gate::cphase(a, b, lambda));
            return;
        }
        // CP(l) = Rz(l/2)_a . CNOT . Rz(-l/2)_b . CNOT . Rz(l/2)_b;
        // the rotations are virtual and fold into neighboring runs.
        absorb(a, Quaternion::fromGate(Gate::rz(0, lambda / 2)));
        onCnot(a, b);
        absorb(b, Quaternion::fromGate(Gate::rz(0, -lambda / 2)));
        onCnot(a, b);
        absorb(b, Quaternion::fromGate(Gate::rz(0, lambda / 2)));
        if (!fuse_)
            flush(b);
    }

    void
    onSwap(HwQubit a, HwQubit b)
    {
        // SWAP = CNOT(a,b) CNOT(b,a) CNOT(a,b); orientation fixes and
        // vendor lowering are handled by onCnot.
        onCnot(a, b);
        onCnot(b, a);
        onCnot(a, b);
    }

    void
    onMeasure(HwQubit q)
    {
        flush(q);
        out_.add(Gate::measure(q));
    }

    void
    onBarrier()
    {
        flushAll();
        out_.add(Gate::barrier());
    }

    TranslateResult
    finish()
    {
        flushAll();
        return {std::move(out_), stats_};
    }

  private:
    const Topology &topo_;
    const GateSet &gs_;
    bool fuse_;
    Circuit out_;
    TranslateStats stats_;
    std::vector<Quaternion> pending_;

    static Quaternion
    hQuat()
    {
        return Quaternion::fromAxisAngle(1, 0, 1, kPi);
    }

    void
    absorb(HwQubit q, const Quaternion &rot)
    {
        size_t i = static_cast<size_t>(q);
        pending_[i] = (rot * pending_[i]).normalized();
    }

    void
    emit2q(const Gate &g)
    {
        out_.add(g);
        ++stats_.twoQ;
    }

    void
    emitRz(HwQubit q, double angle)
    {
        if (isZeroAngle(angle, kTol))
            return;
        out_.add(Gate::rz(q, wrapAngle(angle)));
        ++stats_.virtualZ;
    }

    void
    flushAll()
    {
        for (int q = 0; q < out_.numQubits(); ++q)
            flush(q);
    }

    void
    flush(HwQubit q)
    {
        size_t i = static_cast<size_t>(q);
        Quaternion rot = pending_[i];
        pending_[i] = Quaternion::identity();
        if (rot.isIdentity(kTol))
            return;
        if (rot.isZRotation(kTol)) {
            emitRz(q, 2.0 * std::atan2(rot.z, rot.w));
            return;
        }
        switch (gs_.oneQ) {
          case OneQKind::IbmU: {
            EulerAngles e = rot.toZYZ();
            if (std::abs(e.beta - kPi / 2) < kTol) {
                out_.add(Gate::u2(q, e.alpha, e.gamma));
                stats_.pulses1q += 1;
            } else {
                out_.add(Gate::u3(q, e.beta, e.alpha, e.gamma));
                stats_.pulses1q += 2;
            }
            return;
          }
          case OneQKind::RigettiRxRz: {
            EulerAngles e = rot.toZXZ();
            if (std::abs(e.beta - kPi / 2) < kTol) {
                emitRz(q, e.gamma);
                out_.add(Gate::rx(q, kPi / 2));
                stats_.pulses1q += 1;
                emitRz(q, e.alpha);
            } else {
                // Rx(b) = Rz(-pi/2) Rx(pi/2) Rz(pi-b) Rx(pi/2) Rz(-pi/2).
                emitRz(q, e.gamma - kPi / 2);
                out_.add(Gate::rx(q, kPi / 2));
                stats_.pulses1q += 1;
                emitRz(q, kPi - e.beta);
                out_.add(Gate::rx(q, kPi / 2));
                stats_.pulses1q += 1;
                emitRz(q, e.alpha - kPi / 2);
            }
            return;
          }
          case OneQKind::UmdRxyRz: {
            EulerAngles e = rot.toZXZ();
            out_.add(Gate::rxy(q, e.beta, -e.gamma));
            stats_.pulses1q += 1;
            emitRz(q, e.alpha + e.gamma);
            return;
          }
          case OneQKind::GenericRot: {
            EulerAngles e = rot.toZYZ();
            emitRz(q, e.gamma);
            out_.add(Gate::ry(q, e.beta));
            stats_.pulses1q += 1;
            emitRz(q, e.alpha);
            return;
          }
        }
        panic("translate: unknown 1Q kind");
    }
};

} // namespace

TranslateResult
translateForDevice(const Circuit &routed, const Topology &topo,
                   const GateSet &gs, const TranslateOptions &opts)
{
    if (routed.numQubits() != topo.numQubits())
        fatal("translateForDevice: circuit width ", routed.numQubits(),
              " does not match device width ", topo.numQubits());
    Translator tr(topo, gs, opts.fuseOneQubit, routed.numQubits(),
                  routed.name());
    for (const auto &g : routed.gates()) {
        switch (g.kind) {
          case GateKind::Cnot:
            tr.onCnot(g.qubit(0), g.qubit(1));
            break;
          case GateKind::Cphase:
            tr.onCphase(g.qubit(0), g.qubit(1), g.params[0]);
            break;
          case GateKind::Swap:
            tr.onSwap(g.qubit(0), g.qubit(1));
            break;
          case GateKind::Measure:
            tr.onMeasure(g.qubit(0));
            break;
          case GateKind::Barrier:
            tr.onBarrier();
            break;
          default:
            if (isOneQubitGate(g.kind))
                tr.onOneQubit(g);
            else
                panic("translateForDevice: unexpected gate ", g.str(),
                      "; input must be routed CNOT-basis");
        }
    }
    return tr.finish();
}

TranslateStats
countTranslatedStats(const Circuit &translated)
{
    TranslateStats st;
    for (const auto &g : translated.gates()) {
        if (isTwoQubitGate(g.kind)) {
            ++st.twoQ;
        } else if (isVirtualZGate(g.kind)) {
            ++st.virtualZ;
        } else if (isOneQubitGate(g.kind) && g.kind != GateKind::I) {
            st.pulses1q += g.kind == GateKind::U3 ? 2 : 1;
        }
    }
    return st;
}

} // namespace triq
