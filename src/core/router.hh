/**
 * @file
 * Gate and communication scheduling (Sec. 4.4): process gates in
 * program (topological) order, and when a 2Q gate's operands are not
 * adjacent, insert SWAPs along the most reliable path from the
 * reliability matrix, updating the mapping as qubits move.
 */

#ifndef TRIQ_CORE_ROUTER_HH
#define TRIQ_CORE_ROUTER_HH

#include "core/circuit.hh"
#include "core/mapper.hh"
#include "core/reliability.hh"

namespace triq
{

/** Output of the routing pass. */
struct RoutingResult
{
    /**
     * The routed circuit over *hardware* qubits. Contains 1Q gates,
     * CNOTs between adjacent qubits, SWAPs between adjacent qubits,
     * Measure and Barrier. Width = device qubit count.
     */
    Circuit circuit;

    /** Placement before the first gate. */
    std::vector<HwQubit> initialMap;

    /** Placement after the last gate (differs when SWAPs occurred). */
    std::vector<HwQubit> finalMap;

    /** Number of SWAP operations inserted. */
    int swapCount = 0;
};

/**
 * Route a CNOT-basis program through the device.
 *
 * @param program CNOT-basis circuit over program qubits.
 * @param mapping Initial placement from the mapper.
 * @param topo Device connectivity.
 * @param rel Reliability matrix guiding path selection (noise-aware or
 *            average depending on the optimization level).
 */
RoutingResult routeCircuit(const Circuit &program, const Mapping &mapping,
                           const Topology &topo,
                           const ReliabilityMatrix &rel);

} // namespace triq

#endif // TRIQ_CORE_ROUTER_HH
