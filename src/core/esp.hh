/**
 * @file
 * Estimated success probability (ESP): the analytical reliability
 * product the mapper's objective approximates. ESP multiplies the
 * success probability of every physical operation in a translated
 * circuit and folds in coherence-limited idling; it predicts the
 * *ordering* of real success rates and is used for cross-checks and
 * fast sweeps where full noisy simulation is unnecessary.
 */

#ifndef TRIQ_CORE_ESP_HH
#define TRIQ_CORE_ESP_HH

#include "core/circuit.hh"
#include "device/calibration.hh"
#include "device/topology.hh"

namespace triq
{

/**
 * Error probability of one translated gate under a calibration.
 *
 * 1Q gates: per-pulse 1Q error (U3 counts two pulses); virtual-Z gates
 * are error-free. 2Q gates: the edge's 2Q error (SWAP counts three).
 * Measure: the qubit's readout error.
 */
double gateErrorProb(const Gate &g, const Topology &topo,
                     const Calibration &calib);

/**
 * ESP of a translated hardware circuit: product over gates of
 * (1 - error), times exp(-idle/T2) coherence factors from the ASAP
 * schedule.
 */
double estimatedSuccessProbability(const Circuit &translated,
                                   const Topology &topo,
                                   const Calibration &calib);

} // namespace triq

#endif // TRIQ_CORE_ESP_HH
