/**
 * @file
 * The 2Q reliability matrix of Sec. 4.2.
 *
 * For every ordered hardware-qubit pair (c, t) the matrix holds the
 * end-to-end reliability of performing a 2Q gate from c to t, including
 * the SWAP chain needed to co-locate them. The computation:
 *
 *  1. each topology edge gets a direct-gate reliability from calibration
 *     (including, on IBM machines, the 1Q gates needed to orient a
 *     directed CNOT);
 *  2. a SWAP across an edge costs three 2Q gates, so its reliability is
 *     the cube of the edge reliability (times orientation fixes);
 *  3. an all-pairs most-reliable-path computation (Floyd-Warshall over
 *     -log reliabilities) yields the best swap chain between any pair;
 *  4. entry (c, t) maximizes, over neighbors t' of t, the product of the
 *     swap-path reliability c->t' and the direct gate t'->t.
 *
 * The same object records per-qubit readout reliabilities.
 */

#ifndef TRIQ_CORE_RELIABILITY_HH
#define TRIQ_CORE_RELIABILITY_HH

#include <vector>

#include "device/calibration.hh"
#include "device/gateset.hh"
#include "device/topology.hh"

namespace triq
{

/** End-to-end 2Q and readout reliability summary for one device. */
class ReliabilityMatrix
{
  public:
    /**
     * Build the matrix.
     *
     * @param topo Device connectivity.
     * @param calib Error rates (a daily snapshot, or the average
     *              calibration for noise-unaware compilation).
     * @param vendor Controls whether directed-CNOT orientation fixes
     *               contribute 1Q error terms (IBM only).
     */
    ReliabilityMatrix(const Topology &topo, const Calibration &calib,
                      Vendor vendor);

    int numQubits() const { return numQubits_; }

    /** End-to-end reliability of a 2Q gate from c to t (Fig. 6). */
    double pairReliability(HwQubit c, HwQubit t) const;

    /** Direct-gate reliability across an edge, oriented c -> t. */
    double gateReliability(HwQubit c, HwQubit t) const;

    /** Reliability of one SWAP across the edge between a and b. */
    double swapReliability(HwQubit a, HwQubit b) const;

    /** Product of swap reliabilities along the best path c -> t. */
    double swapPathReliability(HwQubit c, HwQubit t) const;

    /**
     * The best swap path from c to t as a qubit sequence (c first,
     * t last). Empty when c == t.
     */
    std::vector<HwQubit> swapPath(HwQubit c, HwQubit t) const;

    /**
     * The neighbor t' of t through which the (c, t) entry achieves its
     * maximum (returns c when c and t are already adjacent and the
     * direct gate is best).
     */
    HwQubit bestNeighbor(HwQubit c, HwQubit t) const;

    /** Readout reliability (1 - readout error) of qubit q. */
    double readoutReliability(HwQubit q) const;

    /** The largest pair reliability anywhere in the matrix. */
    double maxPairReliability() const;

    /**
     * The best symmetric pair reliability achievable *through* qubit h:
     * max over partners x of max(pair(h,x), pair(x,h)). This is the
     * optimistic cap the mapper's admissible bound charges for any
     * not-yet-scored 2Q operation incident to a qubit placed at h.
     */
    double bestPairReliability(HwQubit h) const;

    /**
     * Hardware-qubit equivalence classes with respect to the mapper's
     * scoring function: h1 and h2 share a class iff they have equal
     * readout reliability and, for every third qubit x, equal symmetric
     * pair scores max(pair(h1,x), pair(x,h1)) == max(pair(h2,x),
     * pair(x,h2)). Swapping two same-class qubits in any placement
     * leaves every mapped-operation score unchanged, so a search need
     * only expand one representative per class at each depth
     * (automorphism-lite: exact row/column signature equality, which is
     * what uniform calibrations — the noise-unaware levels and
     * synthetic DSE devices — actually produce).
     *
     * @return classOf[h] = class id in [0, numClasses), ids assigned in
     *         ascending order of each class's lowest qubit index.
     */
    std::vector<int> equivalenceClasses() const;

  private:
    int numQubits_;
    Vendor vendor_;
    const Topology &topo_;
    // Direct oriented gate reliability; index [c][t] (0 when not adjacent).
    std::vector<std::vector<double>> gateRel_;
    // Swap reliability per edge id.
    std::vector<double> swapRel_;
    // Most-reliable swap-path product between any pair.
    std::vector<std::vector<double>> pathRel_;
    // Floyd-Warshall successor matrix for path reconstruction:
    // next_[i][j] = first hop on the best path i -> j.
    std::vector<std::vector<int>> next_;
    // Final end-to-end matrix and argmax neighbor.
    std::vector<std::vector<double>> pairRel_;
    std::vector<std::vector<int>> via_;
    std::vector<double> readoutRel_;

    void checkQubit(HwQubit q) const;
};

} // namespace triq

#endif // TRIQ_CORE_RELIABILITY_HH
