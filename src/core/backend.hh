/**
 * @file
 * Executable-format backends (Sec. 4.6). All analysis and optimization
 * lives upstream; these writers only serialize a translated circuit
 * into the syntax each platform accepts:
 *   IBM     -> OpenQASM 2.0
 *   Rigetti -> Quil
 *   UMD     -> the trapped-ion machine's low-level assembly
 */

#ifndef TRIQ_CORE_BACKEND_HH
#define TRIQ_CORE_BACKEND_HH

#include <string>

#include "core/circuit.hh"
#include "device/gateset.hh"

namespace triq
{

/**
 * Serialize an IBM-translated circuit ({U1,U2,U3,Rz,Cnot,Measure,
 * Barrier}) as OpenQASM 2.0.
 */
std::string toOpenQasm(const Circuit &c);

/** Serialize a Rigetti-translated circuit ({Rz,Rx,Cz,Measure}) as Quil. */
std::string toQuil(const Circuit &c);

/**
 * Serialize a UMD-translated circuit ({Rz,Rxy,Xx,Measure}) in the
 * trapped-ion machine's assembly syntax.
 */
std::string toUmdAsm(const Circuit &c);

/** Dispatch on vendor. */
std::string emitAssembly(const Circuit &c, Vendor vendor);

} // namespace triq

#endif // TRIQ_CORE_BACKEND_HH
