/**
 * @file
 * ASCII circuit rendering: one wire per qubit, one column per
 * dependency level (the paper's Fig. 5 style, in text).
 */

#ifndef TRIQ_CORE_DRAW_HH
#define TRIQ_CORE_DRAW_HH

#include <string>

#include "core/circuit.hh"

namespace triq
{

/**
 * Render a circuit as ASCII art. Example (BV2):
 *
 *   q0: -H--*--H--M-
 *           |
 *   q1: -X--X--------
 *
 * Controls draw as '*', CNOT/Toffoli targets as 'X', swap endpoints as
 * 'x', measurement as 'M', barriers as a '#' column; parameters are
 * omitted (gate mnemonics only).
 *
 * @param c The circuit (any basis).
 * @param max_columns Columns before the drawing is truncated with an
 *        ellipsis marker (wide circuits become unreadable anyway).
 */
std::string drawCircuit(const Circuit &c, int max_columns = 64);

} // namespace triq

#endif // TRIQ_CORE_DRAW_HH
