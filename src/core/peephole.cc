#include "core/peephole.hh"

#include <vector>

#include "common/logging.hh"

namespace triq
{

namespace
{

/** Gate kinds that are their own inverse. */
bool
isSelfInverse(GateKind k)
{
    switch (k) {
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::H:
      case GateKind::Cnot:
      case GateKind::Cz:
      case GateKind::Swap:
      case GateKind::Ccx:
      case GateKind::Ccz:
      case GateKind::Cswap:
        return true;
      default:
        return false;
    }
}

/** True when gates a and b act on disjoint qubit sets. */
bool
disjoint(const Gate &a, const Gate &b)
{
    for (int i = 0; i < a.arity(); ++i)
        if (b.actsOn(a.qubit(i)))
            return false;
    return true;
}

/** One cancellation sweep; returns the number of gates removed. */
int
sweep(std::vector<Gate> &gates)
{
    std::vector<bool> dead(gates.size(), false);
    int removed = 0;
    for (size_t i = 0; i < gates.size(); ++i) {
        if (dead[i] || !isSelfInverse(gates[i].kind))
            continue;
        // Scan forward for a cancelling partner; stop at the first gate
        // sharing a qubit (or any fence).
        for (size_t j = i + 1; j < gates.size(); ++j) {
            if (dead[j])
                continue;
            const Gate &g = gates[j];
            if (g.kind == GateKind::Barrier)
                break;
            if (gates[i] == g) {
                dead[i] = dead[j] = true;
                removed += 2;
                break;
            }
            if (!disjoint(gates[i], g))
                break;
        }
    }
    if (removed > 0) {
        std::vector<Gate> kept;
        kept.reserve(gates.size() - static_cast<size_t>(removed));
        for (size_t i = 0; i < gates.size(); ++i)
            if (!dead[i])
                kept.push_back(gates[i]);
        gates = std::move(kept);
    }
    return removed;
}

} // namespace

Circuit
cancelInversePairs(const Circuit &c, PeepholeStats *stats_out)
{
    std::vector<Gate> gates = c.gates();
    PeepholeStats stats;
    while (true) {
        int removed = sweep(gates);
        ++stats.iterations;
        stats.cancelled += removed;
        if (removed == 0)
            break;
        if (stats.iterations > c.numGates() + 1)
            panic("cancelInversePairs: failed to reach fixpoint");
    }
    Circuit out(c.numQubits(), c.name());
    for (const auto &g : gates)
        out.add(g);
    if (stats_out)
        *stats_out = stats;
    return out;
}

} // namespace triq
