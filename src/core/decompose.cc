#include "core/decompose.hh"

#include "common/logging.hh"

namespace triq
{

namespace
{

void
emitCcx(Circuit &out, ProgQubit c0, ProgQubit c1, ProgQubit t)
{
    // Standard 6-CNOT Toffoli (Nielsen & Chuang Fig. 4.9).
    out.add(Gate::h(t));
    out.add(Gate::cnot(c1, t));
    out.add(Gate::tdg(t));
    out.add(Gate::cnot(c0, t));
    out.add(Gate::t(t));
    out.add(Gate::cnot(c1, t));
    out.add(Gate::tdg(t));
    out.add(Gate::cnot(c0, t));
    out.add(Gate::t(c1));
    out.add(Gate::t(t));
    out.add(Gate::h(t));
    out.add(Gate::cnot(c0, c1));
    out.add(Gate::t(c0));
    out.add(Gate::tdg(c1));
    out.add(Gate::cnot(c0, c1));
}

void
emitCphase(Circuit &out, ProgQubit a, ProgQubit b, double lambda)
{
    // CP(l) = U1(l/2) a ; CNOT a,b ; U1(-l/2) b ; CNOT a,b ; U1(l/2) b.
    out.add(Gate::u1(a, lambda / 2));
    out.add(Gate::cnot(a, b));
    out.add(Gate::u1(b, -lambda / 2));
    out.add(Gate::cnot(a, b));
    out.add(Gate::u1(b, lambda / 2));
}

void
emitSwap(Circuit &out, ProgQubit a, ProgQubit b)
{
    out.add(Gate::cnot(a, b));
    out.add(Gate::cnot(b, a));
    out.add(Gate::cnot(a, b));
}

void
emitGate(Circuit &out, const Gate &g, bool keep_cphase)
{
    switch (g.kind) {
      case GateKind::Ccx:
        emitCcx(out, g.qubit(0), g.qubit(1), g.qubit(2));
        return;
      case GateKind::Ccz:
        out.add(Gate::h(g.qubit(2)));
        emitCcx(out, g.qubit(0), g.qubit(1), g.qubit(2));
        out.add(Gate::h(g.qubit(2)));
        return;
      case GateKind::Cswap:
        // Fredkin(c; a, b) = CNOT(b,a) Toffoli(c,a,b) CNOT(b,a).
        out.add(Gate::cnot(g.qubit(2), g.qubit(1)));
        emitCcx(out, g.qubit(0), g.qubit(1), g.qubit(2));
        out.add(Gate::cnot(g.qubit(2), g.qubit(1)));
        return;
      case GateKind::Cphase:
        if (keep_cphase)
            out.add(g);
        else
            emitCphase(out, g.qubit(0), g.qubit(1), g.params[0]);
        return;
      case GateKind::Cz:
        if (keep_cphase) {
            out.add(Gate::cphase(g.qubit(0), g.qubit(1), kPi));
        } else {
            out.add(Gate::h(g.qubit(1)));
            out.add(Gate::cnot(g.qubit(0), g.qubit(1)));
            out.add(Gate::h(g.qubit(1)));
        }
        return;
      case GateKind::Swap:
        emitSwap(out, g.qubit(0), g.qubit(1));
        return;
      case GateKind::Xx: {
        // exp(-i chi XX) = (H(x)H) . CNOT . (I(x)Rz(2 chi)) . CNOT . (H(x)H)
        ProgQubit a = g.qubit(0), b = g.qubit(1);
        double chi = g.params[0];
        out.add(Gate::h(a));
        out.add(Gate::h(b));
        out.add(Gate::cnot(a, b));
        out.add(Gate::rz(b, 2 * chi));
        out.add(Gate::cnot(a, b));
        out.add(Gate::h(a));
        out.add(Gate::h(b));
        return;
      }
      default:
        out.add(g);
        return;
    }
}

} // namespace

Circuit
decomposeToCnotBasis(const Circuit &c, bool keep_cphase)
{
    Circuit out(c.numQubits(), c.name());
    for (const auto &g : c.gates())
        emitGate(out, g, keep_cphase);
    if (!isCnotBasis(out, keep_cphase))
        panic("decomposeToCnotBasis: rewrite left a non-CNOT-basis gate");
    return out;
}

bool
isCnotBasis(const Circuit &c, bool allow_cphase)
{
    for (const auto &g : c.gates()) {
        if (isOneQubitGate(g.kind) || g.kind == GateKind::Cnot ||
            g.kind == GateKind::Measure || g.kind == GateKind::Barrier)
            continue;
        if (allow_cphase && g.kind == GateKind::Cphase)
            continue;
        return false;
    }
    return true;
}

} // namespace triq
