/**
 * @file
 * Internal interface between the mapper dispatcher and the optional
 * Z3-backed SMT engine (Sec. 4.3 uses the Z3 C++ API, v4.8.3-era).
 * Not part of the public API; include core/mapper.hh instead.
 */

#ifndef TRIQ_CORE_MAPPER_SMT_HH
#define TRIQ_CORE_MAPPER_SMT_HH

#include "core/mapper.hh"

namespace triq
{

/**
 * Solve the max-min mapping problem with Z3 when compiled in; otherwise
 * warn once and delegate to the branch-and-bound engine.
 */
Mapping mapQubitsSmtOrFallback(const ProgramInfo &info,
                               const ReliabilityMatrix &rel,
                               const MappingOptions &opts);

} // namespace triq

#endif // TRIQ_CORE_MAPPER_SMT_HH
