/**
 * @file
 * ASAP timing of a circuit using the device's gate durations. Used to
 * estimate total runtime, per-qubit idle windows (which the noise model
 * converts into coherence-limited dephasing), and critical path.
 */

#ifndef TRIQ_CORE_SCHEDULE_HH
#define TRIQ_CORE_SCHEDULE_HH

#include <vector>

#include "core/circuit.hh"
#include "device/calibration.hh"

namespace triq
{

/** One idle window on a qubit between two of its gates. */
struct IdleGap
{
    /** Gate index after which the gap starts (a gate touching `qubit`). */
    int afterGate;

    /** The idling qubit. */
    int qubit;

    /** Gap length in microseconds. */
    double us;
};

/** Timing summary of a circuit. */
struct ScheduleInfo
{
    /** Start time (us) of each gate, ASAP. */
    std::vector<double> startUs;

    /** End-to-end duration (us). */
    double totalUs = 0.0;

    /** Per-qubit busy time (us). */
    std::vector<double> busyUs;

    /**
     * Idle windows between consecutive gates on the same qubit
     * (windows before a qubit's first gate are excluded: |0> idles
     * harmlessly).
     */
    std::vector<IdleGap> gaps;
};

/** Wall-clock duration of one gate (virtual-Z gates are free). */
double gateDurationUs(const Gate &g, const GateDurations &d);

/** Compute the ASAP schedule of `c` under durations `d`. */
ScheduleInfo scheduleCircuit(const Circuit &c, const GateDurations &d);

} // namespace triq

#endif // TRIQ_CORE_SCHEDULE_HH
