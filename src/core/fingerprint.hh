/**
 * @file
 * Content-addressed fingerprints of everything a compilation consumes,
 * plus a canonical serialization of everything it produces.
 *
 * The sweep engine (src/service) memoizes compilations by a stable key:
 * two cells share a cache entry exactly when every input that can
 * influence the compiled artifact hashes identically — the canonical
 * (lowered) IR, the device's topology and gate set, the calibration
 * data the chosen level actually reads, and the CompileOptions. The
 * canonical-text serialization is the identity oracle: a cache hit is
 * correct iff its canonical text equals a cold compile's (timings
 * excluded — they are wall-clock, not content).
 *
 * Hashes are 64-bit FNV-1a over the exact value bit patterns (doubles
 * hash by their IEEE-754 bits, not a decimal rendering), so the
 * fingerprint is deterministic across runs and platforms with IEEE
 * doubles, and any single-bit input change flips the key.
 */

#ifndef TRIQ_CORE_FINGERPRINT_HH
#define TRIQ_CORE_FINGERPRINT_HH

#include <cstdint>
#include <string>

#include "core/compiler.hh"
#include "device/calibration.hh"
#include "device/gateset.hh"
#include "device/topology.hh"

namespace triq
{

/** Incremental 64-bit FNV-1a hasher. */
class Fnv1a
{
  public:
    /** Hash of the empty input (the FNV-1a offset basis). */
    static constexpr uint64_t kOffsetBasis = 14695981039346656037ULL;

    uint64_t value() const { return h_; }

    Fnv1a &bytes(const void *data, size_t n);
    Fnv1a &u64(uint64_t v);
    Fnv1a &i64(int64_t v) { return u64(static_cast<uint64_t>(v)); }
    Fnv1a &b(bool v) { return u64(v ? 1 : 0); }

    /** IEEE-754 bit pattern; normalizes -0.0 to +0.0. */
    Fnv1a &f64(double v);

    /** Length-prefixed so "ab","c" != "a","bc". */
    Fnv1a &str(const std::string &s);

  private:
    uint64_t h_ = kOffsetBasis;
};

/**
 * Canonical IR hash of a circuit: register width plus every gate's
 * (kind, operands, parameter bit patterns) in program order. The name
 * is excluded — two identically lowered programs are the same content.
 */
uint64_t circuitFingerprint(const Circuit &c);

/** Topology hash: qubit count + every coupling (a, b, directed). */
uint64_t topologyFingerprint(const Topology &topo);

/** Gate-set hash: vendor, 1Q/2Q families, virtual-Z, native CPHASE. */
uint64_t gateSetFingerprint(const GateSet &gs);

/**
 * Calibration signature: every error rate, coherence time, duration
 * and the crosstalk factor, by bit pattern. Any drifted value changes
 * the signature.
 */
uint64_t calibrationSignature(const Calibration &calib);

/**
 * CompileOptions hash: level, mapping configuration, peephole,
 * assembly emission and calibration policy. The CompileBudget is
 * deliberately excluded — a deadline is a wall-clock property, not
 * content; budgeted compilations are instead never cached (see
 * service/compile_cache.hh).
 */
uint64_t compileOptionsFingerprint(const CompileOptions &opts);

/**
 * The four-component cache key of one compilation cell. Kept as
 * separate components (rather than one folded hash) so the cache can
 * index drift candidates by the calibration-independent part.
 */
struct CompileFingerprint
{
    uint64_t program = 0;     //!< circuitFingerprint of the lowered IR.
    uint64_t device = 0;      //!< topology + gate-set + avg-calib hash.
    uint64_t calibration = 0; //!< what the level reads (see below).
    uint64_t options = 0;     //!< compileOptionsFingerprint.

    /** All four components folded into one 64-bit id (for display). */
    uint64_t combined() const;

    /** The calibration-independent part: program + device + options. */
    uint64_t stableKey() const;

    /** 16-hex-digit rendering of combined(). */
    std::string str() const;

    bool
    operator==(const CompileFingerprint &o) const
    {
        return program == o.program && device == o.device &&
               calibration == o.calibration && options == o.options;
    }
};

/**
 * Fingerprint one (lowered program, device, calibration, options)
 * cell.
 *
 * The calibration component hashes exactly the data the level reads:
 * the noise-aware CN level sees the day's snapshot, so its signature
 * is folded in; every other level maps against the device-average
 * calibration, so the *average* signature is folded instead and the
 * day snapshot only contributes its sanitization digest (the repairs
 * and diagnostics the sanitize pass would record in the report). Two
 * days with identical sanitization therefore share one TriQ-N/1QOpt/C
 * entry — their compiled artifacts are provably identical.
 *
 * @param lowered The program already lowered by decomposeToCnotBasis
 *        with the device's native-CPHASE setting (the canonical IR).
 * @param day_calib The day's calibration snapshot (unsanitized, as
 *        handed to compileForDevice).
 */
CompileFingerprint fingerprintCompile(const Circuit &lowered,
                                      const Device &dev,
                                      const Calibration &day_calib,
                                      const CompileOptions &opts);

/**
 * Digest of what Calibration::validate(Sanitize) would report for this
 * snapshot: repair count plus every diagnostic's code/message/origin.
 * Clean snapshots (the synthesized feeds) digest to a constant.
 */
uint64_t calibrationSanitizeDigest(const Calibration &calib,
                                   const Topology &topo);

/**
 * Canonical text of a compiled artifact: the routed hardware circuit
 * (full-precision parameters), qubit maps, swap/emission statistics,
 * assembly, and the CompileReport minus its pass timings and
 * compileMs. Two CompileResults are the same artifact iff their
 * canonical texts are byte-identical — this is the determinism
 * contract the compile cache is tested against.
 *
 * @param include_timings Also render per-pass ms and compileMs (for
 *        human diffing; never used for identity).
 */
std::string canonicalCompileResultText(const CompileResult &res,
                                       bool include_timings = false);

/** FNV-1a of canonicalCompileResultText (timings excluded). */
uint64_t compileResultDigest(const CompileResult &res);

} // namespace triq

#endif // TRIQ_CORE_FINGERPRINT_HH
