#include "core/esp.hh"

#include <cmath>

#include "common/logging.hh"
#include "core/schedule.hh"

namespace triq
{

double
gateErrorProb(const Gate &g, const Topology &topo, const Calibration &calib)
{
    if (g.kind == GateKind::Barrier || g.kind == GateKind::I ||
        isVirtualZGate(g.kind))
        return 0.0;
    if (g.kind == GateKind::Measure)
        return calib.errRO[static_cast<size_t>(g.qubit(0))];
    if (isOneQubitGate(g.kind)) {
        double e1 = calib.err1q[static_cast<size_t>(g.qubit(0))];
        // U3 is two physical pulses; everything else is one.
        return g.kind == GateKind::U3 ? 1.0 - (1.0 - e1) * (1.0 - e1)
                                      : e1;
    }
    if (isTwoQubitGate(g.kind)) {
        int e = topo.edgeBetween(g.qubit(0), g.qubit(1));
        if (e == -1)
            fatal("gateErrorProb: 2Q gate on non-adjacent qubits ",
                  g.str());
        double e2 = calib.err2q[static_cast<size_t>(e)];
        double r = 1.0 - e2;
        return g.kind == GateKind::Swap ? 1.0 - r * r * r : e2;
    }
    fatal("gateErrorProb: composite gate ", g.str(),
          " must be decomposed first");
}

double
estimatedSuccessProbability(const Circuit &translated, const Topology &topo,
                            const Calibration &calib)
{
    double esp = 1.0;
    for (const auto &g : translated.gates())
        esp *= 1.0 - gateErrorProb(g, topo, calib);

    // Coherence: idle windows decay as exp(-t_idle / T2).
    ScheduleInfo sched = scheduleCircuit(translated, calib.durations);
    for (const auto &gap : sched.gaps) {
        double t2 = calib.t2Us[static_cast<size_t>(gap.qubit)];
        if (t2 > 0.0)
            esp *= std::exp(-gap.us / t2);
    }
    return esp;
}

} // namespace triq
