/**
 * @file
 * The gate-level intermediate representation of the TriQ toolflow.
 *
 * The frontend lowers programs into a flat sequence of Gate records.
 * Multi-qubit composites (Toffoli, Fredkin, CCZ) exist only transiently:
 * the decomposition pass rewrites them into 1Q + 2Q gates before mapping,
 * mirroring ScaffCC's behaviour (Sec. 4.1).
 */

#ifndef TRIQ_CORE_GATE_HH
#define TRIQ_CORE_GATE_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace triq
{

/** Every operation the IR can express. */
enum class GateKind : uint8_t
{
    // Fixed 1Q gates.
    I,
    X,
    Y,
    Z,
    H,
    S,
    Sdg,
    T,
    Tdg,
    // Parametrized 1Q rotations.
    Rx,  //!< Rx(theta)
    Ry,  //!< Ry(theta)
    Rz,  //!< Rz(theta) — virtual (error-free) on all three vendors.
    Rxy, //!< Rxy(theta, phi): rotation by theta about cos(phi)X+sin(phi)Y.
    U1,  //!< IBM U1(lambda) == Rz up to phase; zero pulses.
    U2,  //!< IBM U2(phi, lambda); one X/Y pulse.
    U3,  //!< IBM U3(theta, phi, lambda); two X/Y pulses.
    // 2Q gates.
    Cnot,
    Cz,
    Cphase, //!< Controlled-phase(lambda), used by QFT.
    Swap,
    Xx, //!< Ising XX(chi), the trapped-ion native entangler.
    // 3Q composites (must be decomposed before mapping).
    Ccx,   //!< Toffoli.
    Ccz,
    Cswap, //!< Fredkin.
    // Non-unitary.
    Measure,
    Barrier, //!< Scheduling fence; spans the whole register.
};

/** Number of qubit operands a gate kind takes (0 for Barrier). */
int gateArity(GateKind k);

/** Number of angle parameters a gate kind takes. */
int gateNumParams(GateKind k);

/** Lower-case mnemonic, e.g. "cnot". */
std::string gateName(GateKind k);

/** True for 1Q unitary kinds. */
bool isOneQubitGate(GateKind k);

/** True for 2Q unitary kinds. */
bool isTwoQubitGate(GateKind k);

/** True for the 3Q composite kinds. */
bool isCompositeGate(GateKind k);

/** True when the gate is unitary (not Measure/Barrier). */
bool isUnitaryGate(GateKind k);

/**
 * True for Z-axis rotations implemented in classical hardware and hence
 * error-free on all three vendors (Sec. 4.5): Z, S, Sdg, T, Tdg, Rz, U1.
 */
bool isVirtualZGate(GateKind k);

/**
 * One IR operation: a kind, up to three qubit operands and up to three
 * angle parameters. Plain value type; circuits store these by value.
 */
struct Gate
{
    GateKind kind = GateKind::I;
    std::array<ProgQubit, 3> qubits{{-1, -1, -1}};
    std::array<double, 3> params{{0.0, 0.0, 0.0}};

    /** Operand count for this gate. */
    int arity() const { return gateArity(kind); }

    /** Qubit operand i. @pre i < arity(). */
    ProgQubit qubit(int i) const;

    /** True when q is among this gate's operands. */
    bool actsOn(ProgQubit q) const;

    /** Render like "cnot q1, q3" or "rz(1.5708) q0". */
    std::string str() const;

    // Named constructors for every kind, to keep call sites readable.
    static Gate i(ProgQubit q);
    static Gate x(ProgQubit q);
    static Gate y(ProgQubit q);
    static Gate z(ProgQubit q);
    static Gate h(ProgQubit q);
    static Gate s(ProgQubit q);
    static Gate sdg(ProgQubit q);
    static Gate t(ProgQubit q);
    static Gate tdg(ProgQubit q);
    static Gate rx(ProgQubit q, double theta);
    static Gate ry(ProgQubit q, double theta);
    static Gate rz(ProgQubit q, double theta);
    static Gate rxy(ProgQubit q, double theta, double phi);
    static Gate u1(ProgQubit q, double lambda);
    static Gate u2(ProgQubit q, double phi, double lambda);
    static Gate u3(ProgQubit q, double theta, double phi, double lambda);
    static Gate cnot(ProgQubit control, ProgQubit target);
    static Gate cz(ProgQubit a, ProgQubit b);
    static Gate cphase(ProgQubit a, ProgQubit b, double lambda);
    static Gate swap(ProgQubit a, ProgQubit b);
    static Gate xx(ProgQubit a, ProgQubit b, double chi);
    static Gate ccx(ProgQubit c0, ProgQubit c1, ProgQubit target);
    static Gate ccz(ProgQubit a, ProgQubit b, ProgQubit c);
    static Gate cswap(ProgQubit control, ProgQubit a, ProgQubit b);
    static Gate measure(ProgQubit q);
    static Gate barrier();
};

/** Structural equality (kind, operands, parameters within kEps). */
bool operator==(const Gate &a, const Gate &b);

} // namespace triq

#endif // TRIQ_CORE_GATE_HH
