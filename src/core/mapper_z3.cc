/**
 * @file
 * Z3-backed SMT mapping engine (enabled when built with TRIQ_HAVE_Z3).
 *
 * The max-min objective of Sec. 4.3 is solved as a sequence of SAT
 * checks: binary-search the achievable threshold theta over the sorted
 * distinct reliability values, asking at each step whether an injective
 * placement exists in which every interacting pair lands on a hardware
 * pair with end-to-end reliability >= theta (and every measured qubit
 * on a readout unit >= theta). This exploits exactly the property the
 * paper highlights: a max-min objective lets the solver discard bad
 * placements early, unlike a whole-graph product objective.
 */

#include "core/mapper_smt.hh"

#include "common/logging.hh"

#ifdef TRIQ_HAVE_Z3

#include <algorithm>
#include <vector>

#include <z3++.h>

namespace triq
{

bool
smtMapperAvailable()
{
    return true;
}

namespace
{

/** One SAT feasibility check at threshold theta. */
bool
feasibleAt(double theta, const ProgramInfo &info,
           const ReliabilityMatrix &rel, const MappingOptions &opts,
           std::vector<HwQubit> *model_out)
{
    const int n = info.numProgQubits;
    const int m = rel.numQubits();
    z3::context ctx;
    z3::solver solver(ctx);
    z3::params p(ctx);
    // A wall-clock budget tightens the per-check solver timeout so the
    // binary search cannot overshoot the deadline by a whole check.
    unsigned timeout_ms = opts.smtTimeoutMs;
    if (opts.budget.limited()) {
        double remaining = opts.budget.remainingMs();
        timeout_ms = remaining <= 1.0
                         ? 1u
                         : std::min<unsigned>(
                               timeout_ms,
                               static_cast<unsigned>(remaining));
    }
    p.set("timeout", timeout_ms);
    solver.set(p);

    std::vector<z3::expr> x;
    x.reserve(static_cast<size_t>(n));
    for (int q = 0; q < n; ++q) {
        x.push_back(ctx.int_const(("x" + std::to_string(q)).c_str()));
        solver.add(x.back() >= 0 && x.back() < m);
    }
    if (n > 1) {
        z3::expr_vector xs(ctx);
        for (const auto &e : x)
            xs.push_back(e);
        solver.add(z3::distinct(xs));
    }
    for (const auto &pr : info.pairs) {
        for (int i = 0; i < m; ++i) {
            for (int j = 0; j < m; ++j) {
                if (i == j)
                    continue;
                double r = std::max(rel.pairReliability(i, j),
                                    rel.pairReliability(j, i));
                if (r < theta)
                    solver.add(!(x[static_cast<size_t>(pr.a)] == i &&
                                 x[static_cast<size_t>(pr.b)] == j));
            }
        }
    }
    if (opts.includeReadout)
        for (ProgQubit q : info.measured)
            for (int i = 0; i < m; ++i)
                if (rel.readoutReliability(i) < theta)
                    solver.add(x[static_cast<size_t>(q)] != i);

    z3::check_result res = solver.check();
    if (res != z3::sat)
        return false;
    if (model_out) {
        z3::model model = solver.get_model();
        model_out->resize(static_cast<size_t>(n));
        for (int q = 0; q < n; ++q)
            (*model_out)[static_cast<size_t>(q)] = static_cast<HwQubit>(
                model.eval(x[static_cast<size_t>(q)], true)
                    .get_numeral_int());
    }
    return true;
}

} // namespace

/** Degrade one rung down the ladder: Z3 -> branch-and-bound. */
Mapping
fallBackToBnb(const ProgramInfo &info, const ReliabilityMatrix &rel,
              const MappingOptions &opts, const std::string &why)
{
    warn("SMT mapper: ", why, "; falling back to branch-and-bound");
    MappingOptions fb = opts;
    fb.kind = MapperKind::BranchAndBound;
    Mapping m = mapQubits(info, rel, fb);
    m.notes.insert(m.notes.begin(), "SMT engine degraded: " + why);
    return m;
}

Mapping
mapQubitsSmtOrFallback(const ProgramInfo &info, const ReliabilityMatrix &rel,
                       const MappingOptions &opts)
{
    const int m = rel.numQubits();

    if (opts.budget.expired())
        return fallBackToBnb(info, rel, opts,
                             "deadline fired before the solver started");

    // Candidate thresholds: distinct reliabilities that can be the min.
    std::vector<double> cands;
    for (int i = 0; i < m; ++i)
        for (int j = 0; j < m; ++j)
            if (i != j)
                cands.push_back(rel.pairReliability(i, j));
    if (opts.includeReadout)
        for (int i = 0; i < m; ++i)
            cands.push_back(rel.readoutReliability(i));
    std::sort(cands.begin(), cands.end());
    cands.erase(std::unique(cands.begin(), cands.end()), cands.end());

    try {
        // Binary search the largest feasible threshold.
        std::vector<HwQubit> best_model;
        if (!feasibleAt(cands.front(), info, rel, opts, &best_model)) {
            return fallBackToBnb(info, rel, opts,
                                 "even the weakest threshold is "
                                 "infeasible (or the first check timed "
                                 "out)");
        }
        size_t lo = 0, hi = cands.size() - 1; // lo always feasible.
        bool timed_out = false;
        while (lo < hi) {
            if (opts.budget.expired()) {
                // Anytime: keep the best model proven so far.
                timed_out = true;
                break;
            }
            size_t mid = (lo + hi + 1) / 2;
            std::vector<HwQubit> model;
            if (feasibleAt(cands[mid], info, rel, opts, &model)) {
                lo = mid;
                best_model = std::move(model);
            } else {
                hi = mid - 1;
            }
        }
        Mapping out;
        out.progToHw = std::move(best_model);
        out.minReliability = mappingMinReliability(info, rel, out.progToHw,
                                                   opts.includeReadout);
        out.logProduct = mappingLogProduct(info, rel, out.progToHw,
                                           opts.includeReadout);
        out.optimal = !timed_out;
        out.engine = "smt";
        out.timedOut = timed_out;
        if (timed_out)
            out.notes.push_back(
                "deadline fired during the SMT threshold search; "
                "returning the best model proven so far");
        return out;
    } catch (const z3::exception &e) {
        return fallBackToBnb(info, rel, opts,
                             std::string("Z3 error '") + e.msg() + "'");
    }
}

} // namespace triq

#else // !TRIQ_HAVE_Z3

namespace triq
{

bool
smtMapperAvailable()
{
    return false;
}

Mapping
mapQubitsSmtOrFallback(const ProgramInfo &info, const ReliabilityMatrix &rel,
                       const MappingOptions &opts)
{
    warn("SMT mapper requested but this build has no Z3; "
         "using branch-and-bound");
    MappingOptions fb = opts;
    fb.kind = MapperKind::BranchAndBound;
    Mapping m = mapQubits(info, rel, fb);
    m.notes.insert(m.notes.begin(),
                   "SMT engine degraded: this build has no Z3");
    return m;
}

} // namespace triq

#endif // TRIQ_HAVE_Z3
