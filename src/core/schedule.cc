#include "core/schedule.hh"

#include <algorithm>

#include "common/logging.hh"

namespace triq
{

double
gateDurationUs(const Gate &g, const GateDurations &d)
{
    if (g.kind == GateKind::Barrier || g.kind == GateKind::I)
        return 0.0;
    if (isVirtualZGate(g.kind))
        return 0.0; // Classical frame update.
    if (g.kind == GateKind::Measure)
        return d.readout;
    switch (g.arity()) {
      case 1:
        // U3 is two physical pulses.
        return g.kind == GateKind::U3 ? 2.0 * d.oneQ : d.oneQ;
      case 2:
        return g.kind == GateKind::Swap ? 3.0 * d.twoQ : d.twoQ;
      case 3:
        // Composite gates should be decomposed before scheduling; cost
        // them as a conservative bundle if one slips through.
        return 6.0 * d.twoQ + 8.0 * d.oneQ;
      default:
        panic("gateDurationUs: unexpected arity for ", g.str());
    }
}

ScheduleInfo
scheduleCircuit(const Circuit &c, const GateDurations &d)
{
    ScheduleInfo info;
    info.startUs.resize(static_cast<size_t>(c.numGates()), 0.0);
    info.busyUs.assign(static_cast<size_t>(c.numQubits()), 0.0);

    // Per-qubit frontier: when the qubit is next free, and which gate
    // held it last (-1 when untouched).
    std::vector<double> free_at(static_cast<size_t>(c.numQubits()), 0.0);
    std::vector<int> last_gate(static_cast<size_t>(c.numQubits()), -1);
    double barrier_at = 0.0;

    for (int i = 0; i < c.numGates(); ++i) {
        const Gate &g = c.gate(i);
        if (g.kind == GateKind::Barrier) {
            barrier_at = info.totalUs;
            info.startUs[static_cast<size_t>(i)] = barrier_at;
            continue;
        }
        double start = barrier_at;
        for (int k = 0; k < g.arity(); ++k)
            start = std::max(start,
                             free_at[static_cast<size_t>(g.qubit(k))]);
        double dur = gateDurationUs(g, d);
        info.startUs[static_cast<size_t>(i)] = start;
        for (int k = 0; k < g.arity(); ++k) {
            size_t q = static_cast<size_t>(g.qubit(k));
            if (last_gate[q] != -1 && start > free_at[q] + 1e-12)
                info.gaps.push_back(
                    {last_gate[q], g.qubit(k), start - free_at[q]});
            free_at[q] = start + dur;
            if (dur > 0.0)
                last_gate[q] = i;
            info.busyUs[q] += dur;
        }
        info.totalUs = std::max(info.totalUs, start + dur);
    }
    return info;
}

} // namespace triq
