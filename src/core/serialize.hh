/**
 * @file
 * Crosstalk-avoiding serialization: insert barriers so that 2Q gates
 * on spatially adjacent couplings never execute simultaneously.
 *
 * Trades duration (more idling, hence more decoherence) for isolation
 * (no simultaneous-drive error inflation). Worth it exactly when the
 * crosstalk penalty outweighs the added idle dephasing — the
 * schedule-aware compilation direction the paper's Sec. 7 discussion
 * points toward; bench/ablation_passes measures the trade.
 */

#ifndef TRIQ_CORE_SERIALIZE_HH
#define TRIQ_CORE_SERIALIZE_HH

#include "core/circuit.hh"
#include "device/topology.hh"

namespace triq
{

/**
 * Insert barriers so no two spatially adjacent 2Q gates share a
 * schedule slot.
 *
 * Greedy layering: 2Q gates accumulate into the current layer while
 * they are qubit-disjoint *and* not adjacent (sharing a coupling
 * endpoint neighborhood) with every gate already in it; otherwise a
 * barrier closes the layer. 1Q gates pass through untouched.
 *
 * @param hw Routed/translated circuit over hardware qubits.
 * @param topo Device connectivity.
 * @return The serialized circuit (same gates, extra barriers).
 */
Circuit serializeAdjacentTwoQ(const Circuit &hw, const Topology &topo);

} // namespace triq

#endif // TRIQ_CORE_SERIALIZE_HH
