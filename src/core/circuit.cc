#include "core/circuit.hh"

#include <algorithm>

#include "common/logging.hh"

namespace triq
{

Circuit::Circuit(int num_qubits, std::string name)
    : name_(std::move(name)), numQubits_(num_qubits)
{
    if (num_qubits < 0)
        fatal("Circuit: negative qubit count ", num_qubits);
}

int
Circuit::add(const Gate &g)
{
    for (int i = 0; i < g.arity(); ++i) {
        ProgQubit q = g.qubit(i);
        if (q < 0 || q >= numQubits_)
            fatal("Circuit::add: qubit q", q, " out of range [0,",
                  numQubits_, ") in gate ", g.str());
    }
    gates_.push_back(g);
    return static_cast<int>(gates_.size()) - 1;
}

void
Circuit::append(const Circuit &other)
{
    if (other.numQubits_ != numQubits_)
        fatal("Circuit::append: register width mismatch (", numQubits_,
              " vs ", other.numQubits_, ")");
    for (const auto &g : other.gates_)
        add(g);
}

const Gate &
Circuit::gate(int i) const
{
    if (i < 0 || i >= numGates())
        panic("Circuit::gate: index ", i, " out of range");
    return gates_[static_cast<size_t>(i)];
}

int
Circuit::count1q() const
{
    return countIf([](const Gate &g) { return isOneQubitGate(g.kind); });
}

int
Circuit::count2q() const
{
    return countIf([](const Gate &g) { return isTwoQubitGate(g.kind); });
}

std::vector<ProgQubit>
Circuit::measuredQubits() const
{
    std::set<ProgQubit> s;
    for (const auto &g : gates_)
        if (g.kind == GateKind::Measure)
            s.insert(g.qubit(0));
    return {s.begin(), s.end()};
}

std::vector<ProgQubit>
Circuit::activeQubits() const
{
    std::set<ProgQubit> s;
    for (const auto &g : gates_)
        for (int i = 0; i < g.arity(); ++i)
            s.insert(g.qubit(i));
    return {s.begin(), s.end()};
}

int
Circuit::depth() const
{
    std::vector<int> frontier(numQubits_, 0);
    int barrier_level = 0;
    int max_level = 0;
    for (const auto &g : gates_) {
        if (g.kind == GateKind::Barrier) {
            barrier_level = max_level;
            continue;
        }
        int lvl = barrier_level;
        for (int i = 0; i < g.arity(); ++i)
            lvl = std::max(lvl, frontier[static_cast<size_t>(g.qubit(i))]);
        ++lvl;
        for (int i = 0; i < g.arity(); ++i)
            frontier[static_cast<size_t>(g.qubit(i))] = lvl;
        max_level = std::max(max_level, lvl);
    }
    return max_level;
}

std::string
Circuit::str() const
{
    std::string s;
    s += "circuit " + (name_.empty() ? std::string("<anon>") : name_) +
         " (" + std::to_string(numQubits_) + " qubits)\n";
    for (const auto &g : gates_)
        s += "  " + g.str() + "\n";
    return s;
}

CircuitDag::CircuitDag(const Circuit &circuit)
    : preds_(circuit.numGates()), succs_(circuit.numGates()),
      level_(circuit.numGates(), 0), numLevels_(0)
{
    // last[q]: index of the most recent gate touching qubit q; -1 if none.
    std::vector<int> last(circuit.numQubits(), -1);
    int last_barrier = -1;
    for (int i = 0; i < circuit.numGates(); ++i) {
        const Gate &g = circuit.gate(i);
        std::vector<int> &p = preds_[static_cast<size_t>(i)];
        if (g.kind == GateKind::Barrier) {
            // Depend on every active frontier gate.
            for (int q = 0; q < circuit.numQubits(); ++q)
                if (last[static_cast<size_t>(q)] != -1)
                    p.push_back(last[static_cast<size_t>(q)]);
            if (p.empty() && last_barrier != -1)
                p.push_back(last_barrier);
            for (int q = 0; q < circuit.numQubits(); ++q)
                last[static_cast<size_t>(q)] = i;
            last_barrier = i;
        } else {
            for (int k = 0; k < g.arity(); ++k) {
                int idx = last[static_cast<size_t>(g.qubit(k))];
                if (idx == -1)
                    idx = last_barrier;
                if (idx != -1)
                    p.push_back(idx);
                last[static_cast<size_t>(g.qubit(k))] = i;
            }
        }
        std::sort(p.begin(), p.end());
        p.erase(std::unique(p.begin(), p.end()), p.end());
        int lvl = 0;
        for (int j : p) {
            succs_[static_cast<size_t>(j)].push_back(i);
            lvl = std::max(lvl, level_[static_cast<size_t>(j)] + 1);
        }
        level_[static_cast<size_t>(i)] = lvl;
        numLevels_ = std::max(numLevels_, lvl + 1);
    }
}

const std::vector<int> &
CircuitDag::preds(int i) const
{
    if (i < 0 || i >= static_cast<int>(preds_.size()))
        panic("CircuitDag::preds: index out of range");
    return preds_[static_cast<size_t>(i)];
}

const std::vector<int> &
CircuitDag::succs(int i) const
{
    if (i < 0 || i >= static_cast<int>(succs_.size()))
        panic("CircuitDag::succs: index out of range");
    return succs_[static_cast<size_t>(i)];
}

int
CircuitDag::level(int i) const
{
    if (i < 0 || i >= static_cast<int>(level_.size()))
        panic("CircuitDag::level: index out of range");
    return level_[static_cast<size_t>(i)];
}

std::vector<std::vector<int>>
CircuitDag::levels() const
{
    std::vector<std::vector<int>> out(static_cast<size_t>(numLevels_));
    for (size_t i = 0; i < level_.size(); ++i)
        out[static_cast<size_t>(level_[i])].push_back(static_cast<int>(i));
    return out;
}

} // namespace triq
