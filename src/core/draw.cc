#include "core/draw.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <vector>

#include "common/logging.hh"

namespace triq
{

namespace
{

/** Per-operand cell text for a gate. */
std::string
cellLabel(const Gate &g, int operand)
{
    switch (g.kind) {
      case GateKind::Measure:
        return "M";
      case GateKind::Cnot:
        return operand == 0 ? "*" : "X";
      case GateKind::Cz:
      case GateKind::Cphase:
        return "*";
      case GateKind::Swap:
        return "x";
      case GateKind::Xx:
        return "XX";
      case GateKind::Ccx:
        return operand < 2 ? "*" : "X";
      case GateKind::Ccz:
        return "*";
      case GateKind::Cswap:
        return operand == 0 ? "*" : "x";
      default: {
        std::string name = gateName(g.kind);
        for (auto &ch : name)
            ch = static_cast<char>(std::toupper(
                static_cast<unsigned char>(ch)));
        return name;
      }
    }
}

} // namespace

std::string
drawCircuit(const Circuit &c, int max_columns)
{
    const int nq = c.numQubits();
    if (nq == 0)
        return "(empty circuit)\n";
    CircuitDag dag(c);
    const int ncols = std::min(dag.numLevels(), max_columns);
    const bool truncated = dag.numLevels() > max_columns;

    // cells[level][qubit]: label, or "" when the wire passes through.
    std::vector<std::vector<std::string>> cells(
        static_cast<size_t>(ncols),
        std::vector<std::string>(static_cast<size_t>(nq)));
    // span[level] = (min qubit, max qubit) of multi-qubit gates, for
    // vertical connectors; -1 when none.
    std::vector<std::vector<std::pair<int, int>>> spans(
        static_cast<size_t>(ncols));
    std::vector<bool> barrier_col(static_cast<size_t>(ncols), false);

    for (int i = 0; i < c.numGates(); ++i) {
        int lvl = dag.level(i);
        if (lvl >= ncols)
            continue;
        const Gate &g = c.gate(i);
        if (g.kind == GateKind::Barrier) {
            barrier_col[static_cast<size_t>(lvl)] = true;
            continue;
        }
        int lo = nq, hi = -1;
        for (int k = 0; k < g.arity(); ++k) {
            int q = g.qubit(k);
            cells[static_cast<size_t>(lvl)][static_cast<size_t>(q)] =
                cellLabel(g, k);
            lo = std::min(lo, q);
            hi = std::max(hi, q);
        }
        if (g.arity() > 1)
            spans[static_cast<size_t>(lvl)].push_back({lo, hi});
    }

    // Column widths.
    std::vector<size_t> width(static_cast<size_t>(ncols), 1);
    for (int l = 0; l < ncols; ++l)
        for (int q = 0; q < nq; ++q)
            width[static_cast<size_t>(l)] = std::max(
                width[static_cast<size_t>(l)],
                cells[static_cast<size_t>(l)][static_cast<size_t>(q)]
                    .size());

    std::string out;
    std::string qlabel_pad(6, ' ');
    for (int q = 0; q < nq; ++q) {
        // Wire row.
        char buf[16];
        std::snprintf(buf, sizeof(buf), "q%-3d: ", q);
        std::string wire = buf;
        for (int l = 0; l < ncols; ++l) {
            size_t w = width[static_cast<size_t>(l)];
            const std::string &cell =
                cells[static_cast<size_t>(l)][static_cast<size_t>(q)];
            wire += '-';
            if (barrier_col[static_cast<size_t>(l)]) {
                wire += std::string(w, '#');
            } else if (cell.empty()) {
                // Pass-through: connector if a gate spans this wire.
                bool crossed = false;
                for (const auto &[lo, hi] :
                     spans[static_cast<size_t>(l)])
                    crossed = crossed || (q > lo && q < hi);
                std::string fill(w, '-');
                if (crossed)
                    fill[w / 2] = '|';
                wire += fill;
            } else {
                size_t pad = w - cell.size();
                wire += std::string(pad / 2, '-') + cell +
                        std::string(pad - pad / 2, '-');
            }
            wire += '-';
        }
        if (truncated)
            wire += " ...";
        out += wire + "\n";
        // Connector row between wires.
        if (q + 1 < nq) {
            std::string conn = qlabel_pad;
            for (int l = 0; l < ncols; ++l) {
                size_t w = width[static_cast<size_t>(l)];
                bool link = false;
                for (const auto &[lo, hi] :
                     spans[static_cast<size_t>(l)])
                    link = link || (q >= lo && q < hi);
                std::string fill(w + 2, ' ');
                if (link)
                    fill[1 + w / 2] = '|';
                conn += fill;
            }
            // Trim trailing spaces.
            while (!conn.empty() && conn.back() == ' ')
                conn.pop_back();
            if (!conn.empty())
                out += conn;
            out += "\n";
        }
    }
    return out;
}

} // namespace triq
