/**
 * @file
 * Crash-report bundles: one on-disk artifact that replays an internal
 * triqc failure.
 *
 * A PanicError means TriQ itself is broken (invariant violation), so
 * the message alone is useless to whoever has to debug it — they need
 * the *inputs* that drove the pipeline into the bad state. The driver
 * therefore snapshots everything the compilation consumed as it runs
 * (program text, calibration data, compile options, simulation seed),
 * and on panic dumps the snapshot to a `triq-crash-<pid>/` directory:
 *
 *   program.txt       program source, post fault-injection (when the
 *                     input was a file; built-in benchmarks are named
 *                     in options.txt instead)
 *   calibration.txt   calibration snapshot (triq-calgen format),
 *                     post fault-injection
 *   options.txt       key=value lines: device, level, mapper, budget,
 *                     seed, trials — every triqc flag that shapes the
 *                     pipeline — plus the request id when the crash
 *                     happened inside triqd, and the adaptive
 *                     scheduler's decision for the execution phase
 *                     when one had been taken before the panic
 *   environment.txt   every TRIQ_* environment knob that was set in
 *                     the crashing process, NAME=value per line
 *   error.txt         the panic message
 *
 * `triqc --replay <dir>` reconstructs the exact invocation from the
 * bundle — including re-applying the captured TRIQ_* knobs (except
 * TRIQ_FAULT*, since the bundle's inputs are already post-injection)
 * and pinning the recorded scheduler decision — so an internal error
 * reported from the field, or from a live triqd under load, reproduces
 * from one artifact with no access to the original machine,
 * environment variables or calibration feed.
 */

#ifndef TRIQ_CORE_CRASH_REPORT_HH
#define TRIQ_CORE_CRASH_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "device/calibration.hh"

namespace triq
{

/**
 * Everything needed to replay one triqc invocation.
 *
 * String-typed fields mirror the CLI surface (level "cn", mapper
 * "bnb") rather than the internal enums so a bundle stays readable and
 * diffable, and so load() can defer validation to the same
 * levelFromString/mapperKindFromString paths a normal invocation uses.
 */
struct CrashBundle
{
    /** Program source text ("" when a built-in benchmark was used). */
    std::string programText;
    bool hasProgram = false;

    /** Built-in benchmark name ("" when a file was compiled). */
    std::string benchName;

    /** True when programText is OpenQASM 2.0 rather than ScaffLite. */
    bool qasm = false;

    std::string device = "IBMQ5";
    int day = 0;

    /** Calibration snapshot as the pipeline saw it (post-injection). */
    Calibration calibration;
    bool hasCalibration = false;

    std::string level = "cn";
    std::string mapper = "bnb";
    bool peephole = false;
    bool strictCalibration = false;
    double budgetMs = 0.0;
    long nodeBudget = 0;

    /** Simulation knobs (--report path). */
    uint64_t seed = 12345;
    int trials = 2000;
    int simThreads = 0;
    int simFusion = 0;

    /**
     * Request id when the crash happened serving a triqd request
     * ("" for CLI crashes). Purely forensic: it ties the bundle back
     * to the client frame and the loadgen log that triggered it.
     */
    std::string requestId;

    /**
     * TRIQ_* environment knobs active in the crashing process, as
     * NAME=value entries (captureTriqEnv()). Replays re-apply them —
     * minus TRIQ_FAULT/TRIQ_FAULT_SEED, whose effects are already
     * baked into the bundled inputs — so knob-dependent behavior
     * (TRIQ_SCHED_CALIB, TRIQ_SIM_DEDUP, ...) reproduces faithfully.
     */
    std::vector<std::string> envKnobs;

    /**
     * The adaptive scheduler's decision for the execution phase, when
     * one had been taken before the panic ("" = none recorded). A
     * server-mode run under load may have fanned out differently than
     * a quiet replay would; pinning the decision removes that
     * difference. (Results are bit-identical either way — this is
     * about reproducing the *timing shape* that exposed the bug.)
     */
    std::string schedMode;
    int schedThreads = 0;
    int schedItemsPerTask = 1;

    /** The panic message (written to error.txt, not read back). */
    std::string error;

    /**
     * Write the bundle into `dir` (created, parents included).
     * Throws FatalError when the directory or a file cannot be written.
     */
    void write(const std::string &dir) const;

    /**
     * Load a bundle written by write(). Throws FatalError on a missing
     * directory, unreadable file or malformed options.txt.
     */
    static CrashBundle load(const std::string &dir);
};

/** The default bundle directory for this process: "triq-crash-<pid>". */
std::string defaultCrashDir();

/**
 * Snapshot every TRIQ_*-prefixed environment variable as NAME=value
 * entries, sorted by name (deterministic bundles diff cleanly).
 */
std::vector<std::string> captureTriqEnv();

/**
 * Re-apply captured knobs to this process's environment, skipping
 * TRIQ_FAULT and TRIQ_FAULT_SEED (bundled inputs are post-injection;
 * re-arming the injector would corrupt them a second time). Returns
 * the number of variables set.
 */
int applyTriqEnv(const std::vector<std::string> &env_knobs);

/**
 * Collision-proof `base`: returns `base` when free, else the first
 * free "base.N" (N = 1, 2, ...). PIDs recycle, so a fresh crash must
 * never overwrite an earlier process's bundle.
 */
std::string resolveCrashDir(const std::string &base);

} // namespace triq

#endif // TRIQ_CORE_CRASH_REPORT_HH
