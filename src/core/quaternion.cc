#include "core/quaternion.hh"

#include <cmath>

#include "common/logging.hh"

namespace triq
{

Quaternion
Quaternion::identity()
{
    return {1.0, 0.0, 0.0, 0.0};
}

Quaternion
Quaternion::fromAxisAngle(double ax, double ay, double az, double theta)
{
    double n = std::sqrt(ax * ax + ay * ay + az * az);
    if (n < kEps)
        panic("Quaternion::fromAxisAngle: zero axis");
    double c = std::cos(0.5 * theta);
    double s = std::sin(0.5 * theta) / n;
    return {c, s * ax, s * ay, s * az};
}

Quaternion
Quaternion::fromGate(const Gate &g)
{
    if (!isOneQubitGate(g.kind))
        panic("Quaternion::fromGate: not a 1Q gate: ", g.str());
    const double t = g.params[0];
    switch (g.kind) {
      case GateKind::I:
        return identity();
      case GateKind::X:
        return fromAxisAngle(1, 0, 0, kPi);
      case GateKind::Y:
        return fromAxisAngle(0, 1, 0, kPi);
      case GateKind::Z:
        return fromAxisAngle(0, 0, 1, kPi);
      case GateKind::H:
        // Rotation by pi about (x+z)/sqrt(2).
        return fromAxisAngle(1, 0, 1, kPi);
      case GateKind::S:
        return fromAxisAngle(0, 0, 1, kPi / 2);
      case GateKind::Sdg:
        return fromAxisAngle(0, 0, 1, -kPi / 2);
      case GateKind::T:
        return fromAxisAngle(0, 0, 1, kPi / 4);
      case GateKind::Tdg:
        return fromAxisAngle(0, 0, 1, -kPi / 4);
      case GateKind::Rx:
        return fromAxisAngle(1, 0, 0, t);
      case GateKind::Ry:
        return fromAxisAngle(0, 1, 0, t);
      case GateKind::Rz:
      case GateKind::U1:
        return fromAxisAngle(0, 0, 1, t);
      case GateKind::Rxy: {
        // Rotation by theta about the equatorial axis at azimuth phi.
        double phi = g.params[1];
        return fromAxisAngle(std::cos(phi), std::sin(phi), 0, t);
      }
      case GateKind::U2: {
        // U2(phi, lambda) ~ Rz(phi) Ry(pi/2) Rz(lambda).
        Quaternion a = fromAxisAngle(0, 0, 1, g.params[0]);
        Quaternion b = fromAxisAngle(0, 1, 0, kPi / 2);
        Quaternion c = fromAxisAngle(0, 0, 1, g.params[1]);
        return a * b * c;
      }
      case GateKind::U3: {
        // U3(theta, phi, lambda) ~ Rz(phi) Ry(theta) Rz(lambda).
        Quaternion a = fromAxisAngle(0, 0, 1, g.params[1]);
        Quaternion b = fromAxisAngle(0, 1, 0, g.params[0]);
        Quaternion c = fromAxisAngle(0, 0, 1, g.params[2]);
        return a * b * c;
      }
      default:
        panic("Quaternion::fromGate: unhandled kind ", gateName(g.kind));
    }
}

Quaternion
Quaternion::operator*(const Quaternion &rhs) const
{
    // Hamilton product; matches 2x2 matrix multiplication of the
    // corresponding SU(2) elements.
    return {
        w * rhs.w - x * rhs.x - y * rhs.y - z * rhs.z,
        w * rhs.x + x * rhs.w + y * rhs.z - z * rhs.y,
        w * rhs.y - x * rhs.z + y * rhs.w + z * rhs.x,
        w * rhs.z + x * rhs.y - y * rhs.x + z * rhs.w,
    };
}

Quaternion
Quaternion::inverse() const
{
    return {w, -x, -y, -z};
}

double
Quaternion::norm() const
{
    return std::sqrt(w * w + x * x + y * y + z * z);
}

Quaternion
Quaternion::normalized() const
{
    double n = norm();
    if (n < kEps)
        panic("Quaternion::normalized: zero quaternion");
    return {w / n, x / n, y / n, z / n};
}

bool
Quaternion::isIdentity(double tol) const
{
    return std::sqrt(x * x + y * y + z * z) < tol;
}

bool
Quaternion::isZRotation(double tol) const
{
    return std::sqrt(x * x + y * y) < tol;
}

EulerAngles
Quaternion::toZYZ() const
{
    // For q = Rz(a) Ry(b) Rz(g):
    //   w = cos(b/2) cos((a+g)/2), z = cos(b/2) sin((a+g)/2),
    //   y = sin(b/2) cos((a-g)/2), x = -sin(b/2) sin((a-g)/2).
    double cb = std::hypot(w, z);
    double sb = std::hypot(x, y);
    double beta = 2.0 * std::atan2(sb, cb);
    double sum, diff;
    if (sb < kEps) {
        // Pure Z rotation: fold everything into alpha.
        sum = 2.0 * std::atan2(z, w);
        diff = 0.0;
    } else if (cb < kEps) {
        // beta ~ pi: only the difference is defined.
        sum = 0.0;
        diff = 2.0 * std::atan2(-x, y);
    } else {
        sum = 2.0 * std::atan2(z, w);
        diff = 2.0 * std::atan2(-x, y);
    }
    return {wrapAngle(0.5 * (sum + diff)), beta,
            wrapAngle(0.5 * (sum - diff))};
}

EulerAngles
Quaternion::toZXZ() const
{
    // For q = Rz(a) Rx(b) Rz(g):
    //   w = cos(b/2) cos((a+g)/2), z = cos(b/2) sin((a+g)/2),
    //   x = sin(b/2) cos((a-g)/2), y = sin(b/2) sin((a-g)/2).
    double cb = std::hypot(w, z);
    double sb = std::hypot(x, y);
    double beta = 2.0 * std::atan2(sb, cb);
    double sum, diff;
    if (sb < kEps) {
        sum = 2.0 * std::atan2(z, w);
        diff = 0.0;
    } else if (cb < kEps) {
        sum = 0.0;
        diff = 2.0 * std::atan2(y, x);
    } else {
        sum = 2.0 * std::atan2(z, w);
        diff = 2.0 * std::atan2(y, x);
    }
    return {wrapAngle(0.5 * (sum + diff)), beta,
            wrapAngle(0.5 * (sum - diff))};
}

bool
Quaternion::approxEqual(const Quaternion &rhs, double tol) const
{
    auto close = [tol](const Quaternion &a, const Quaternion &b) {
        return std::abs(a.w - b.w) < tol && std::abs(a.x - b.x) < tol &&
               std::abs(a.y - b.y) < tol && std::abs(a.z - b.z) < tol;
    };
    Quaternion neg{-rhs.w, -rhs.x, -rhs.y, -rhs.z};
    return close(*this, rhs) || close(*this, neg);
}

} // namespace triq
