/**
 * @file
 * Circuit: an ordered gate list over a fixed qubit register, plus the
 * dependency DAG used for scheduling (Sec. 4.4).
 */

#ifndef TRIQ_CORE_CIRCUIT_HH
#define TRIQ_CORE_CIRCUIT_HH

#include <set>
#include <string>
#include <vector>

#include "core/gate.hh"

namespace triq
{

/**
 * A quantum program at the gate level.
 *
 * Gates are stored in program order; program order is always a valid
 * topological order of the dependency DAG. Qubits are indices in
 * [0, numQubits).
 */
class Circuit
{
  public:
    /** Construct a circuit over `num_qubits` qubits. */
    explicit Circuit(int num_qubits = 0, std::string name = "");

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    int numQubits() const { return numQubits_; }

    /** Append a gate; validates operand ranges. Returns gate index. */
    int add(const Gate &g);

    /** Append every gate of `other` (same register width required). */
    void append(const Circuit &other);

    int numGates() const { return static_cast<int>(gates_.size()); }
    const std::vector<Gate> &gates() const { return gates_; }
    const Gate &gate(int i) const;

    /** Count of 1Q unitary gates. */
    int count1q() const;

    /** Count of 2Q gates (a Swap counts once; translation expands it). */
    int count2q() const;

    /** Count of gates satisfying a predicate. */
    template <typename Pred>
    int
    countIf(Pred pred) const
    {
        int n = 0;
        for (const auto &g : gates_)
            if (pred(g))
                ++n;
        return n;
    }

    /** Qubits with a Measure gate, ascending. */
    std::vector<ProgQubit> measuredQubits() const;

    /** Qubits touched by at least one gate, ascending. */
    std::vector<ProgQubit> activeQubits() const;

    /**
     * Circuit depth: longest chain of unitary gates (Barrier fences,
     * Measure included as ordinary single-qubit events).
     */
    int depth() const;

    /** Multi-line textual dump (one gate per line). */
    std::string str() const;

  private:
    std::string name_;
    int numQubits_;
    std::vector<Gate> gates_;
};

/**
 * Dependency DAG of a circuit: gate i depends on the previous gate that
 * touched each of its operands (Barriers fence all qubits).
 */
class CircuitDag
{
  public:
    /** Build the DAG for `circuit` (kept by reference; do not mutate). */
    explicit CircuitDag(const Circuit &circuit);

    /** Immediate predecessors of gate i (deduplicated). */
    const std::vector<int> &preds(int i) const;

    /** Immediate successors of gate i (deduplicated). */
    const std::vector<int> &succs(int i) const;

    /** ASAP level of gate i (all preds at strictly lower levels). */
    int level(int i) const;

    /** Number of ASAP levels (0 for an empty circuit). */
    int numLevels() const { return numLevels_; }

    /** Gate indices grouped by ASAP level. */
    std::vector<std::vector<int>> levels() const;

  private:
    std::vector<std::vector<int>> preds_;
    std::vector<std::vector<int>> succs_;
    std::vector<int> level_;
    int numLevels_;
};

} // namespace triq

#endif // TRIQ_CORE_CIRCUIT_HH
