/**
 * @file
 * Gate implementation, 1Q optimization and lowering to the
 * software-visible gate set (Sec. 4.5).
 *
 * Input: a routed circuit over hardware qubits (1Q gates, adjacent
 * CNOTs, adjacent SWAPs, Measure, Barrier). Output: a circuit in the
 * vendor's software-visible gates only:
 *   IBM     {U1, U2, U3, Cnot, Measure, Barrier}
 *   Rigetti {Rz, Rx(+-pi/2), Cz, Measure, Barrier}
 *   UMD     {Rz, Rxy, Xx(pi/4), Measure, Barrier}
 *
 * When fusion is enabled (every TriQ level above TriQ-N), runs of 1Q
 * gates are composed into a single rotation quaternion and re-expressed
 * as two error-free virtual-Z rotations plus at most one X/Y-axis pulse
 * family, maximizing the number of error-free operations.
 */

#ifndef TRIQ_CORE_TRANSLATE_HH
#define TRIQ_CORE_TRANSLATE_HH

#include "core/circuit.hh"
#include "device/gateset.hh"
#include "device/topology.hh"

namespace triq
{

/** Translation controls. */
struct TranslateOptions
{
    /** Fuse 1Q runs via quaternions (TriQ-1QOpt and above). */
    bool fuseOneQubit = true;
};

/** Emission statistics (drives the Fig. 8 experiment). */
struct TranslateStats
{
    /** Physical X/Y pulses emitted (U2 = 1, U3 = 2, Rx/Rxy = 1). */
    int pulses1q = 0;

    /** Error-free virtual-Z rotations emitted. */
    int virtualZ = 0;

    /** Software-visible 2Q gates emitted. */
    int twoQ = 0;
};

/** Translation output. */
struct TranslateResult
{
    Circuit circuit;
    TranslateStats stats;
};

/**
 * Lower a routed hardware circuit to the device's software-visible
 * gates.
 *
 * @param routed Routed circuit (output of routeCircuit).
 * @param topo Device topology (for directed-CNOT orientation fixes).
 * @param gs Software-visible gate set of the target.
 * @param opts Fusion control.
 */
TranslateResult translateForDevice(const Circuit &routed,
                                   const Topology &topo, const GateSet &gs,
                                   const TranslateOptions &opts);

/**
 * Count the physical pulses of an already translated circuit (same
 * rules as TranslateStats; useful for externally produced circuits).
 */
TranslateStats countTranslatedStats(const Circuit &translated);

} // namespace triq

#endif // TRIQ_CORE_TRANSLATE_HH
