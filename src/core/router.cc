#include "core/router.hh"

#include "common/logging.hh"

namespace triq
{

namespace
{

/** Mutable placement state with swap support. */
struct Placement
{
    std::vector<HwQubit> progToHw;
    std::vector<ProgQubit> hwToProg;

    Placement(const Mapping &m, int num_hw)
        : progToHw(m.progToHw), hwToProg(m.hwToProg(num_hw))
    {
    }

    void
    swapHw(HwQubit a, HwQubit b)
    {
        ProgQubit pa = hwToProg[static_cast<size_t>(a)];
        ProgQubit pb = hwToProg[static_cast<size_t>(b)];
        std::swap(hwToProg[static_cast<size_t>(a)],
                  hwToProg[static_cast<size_t>(b)]);
        if (pa != -1)
            progToHw[static_cast<size_t>(pa)] = b;
        if (pb != -1)
            progToHw[static_cast<size_t>(pb)] = a;
    }

    HwQubit
    at(ProgQubit p) const
    {
        return progToHw[static_cast<size_t>(p)];
    }
};

} // namespace

RoutingResult
routeCircuit(const Circuit &program, const Mapping &mapping,
             const Topology &topo, const ReliabilityMatrix &rel)
{
    if (static_cast<int>(mapping.progToHw.size()) != program.numQubits())
        fatal("routeCircuit: mapping covers ", mapping.progToHw.size(),
              " qubits, program has ", program.numQubits());

    RoutingResult out;
    out.circuit = Circuit(topo.numQubits(), program.name());
    out.initialMap = mapping.progToHw;

    Placement place(mapping, topo.numQubits());
    const int max_route_steps = topo.numQubits() * topo.numQubits() + 4;

    for (const auto &g : program.gates()) {
        switch (g.arity()) {
          case 0:
            out.circuit.add(g);
            break;
          case 1: {
            Gate hw = g;
            hw.qubits[0] = place.at(g.qubit(0));
            out.circuit.add(hw);
            break;
          }
          case 2: {
            if (g.kind != GateKind::Cnot && g.kind != GateKind::Cphase)
                panic("routeCircuit: expected CNOT-basis input, found ",
                      g.str());
            ProgQubit pc = g.qubit(0), pt = g.qubit(1);
            int steps = 0;
            while (!topo.adjacent(place.at(pc), place.at(pt))) {
                if (++steps > max_route_steps)
                    panic("routeCircuit: routing failed to converge for ",
                          g.str());
                HwQubit hc = place.at(pc), ht = place.at(pt);
                // Move the control along the most reliable path toward
                // the best neighbor of the target (Sec. 4.2's argmax).
                HwQubit via = rel.bestNeighbor(hc, ht);
                if (via == -1)
                    panic("routeCircuit: no route from ", hc, " to ", ht);
                std::vector<HwQubit> path = rel.swapPath(hc, via);
                if (path.size() < 2)
                    panic("routeCircuit: degenerate path from ", hc,
                          " to ", via);
                HwQubit hop = path[1];
                out.circuit.add(Gate::swap(hc, hop));
                ++out.swapCount;
                place.swapHw(hc, hop);
            }
            {
                Gate hw = g;
                hw.qubits[0] = place.at(pc);
                hw.qubits[1] = place.at(pt);
                out.circuit.add(hw);
            }
            break;
          }
          default:
            panic("routeCircuit: composite gate ", g.str(),
                  " reached the router; run decomposeToCnotBasis first");
        }
    }

    out.finalMap = place.progToHw;
    return out;
}

} // namespace triq
