#include "core/compiler.hh"

#include <chrono>

#include "common/logging.hh"
#include "core/backend.hh"
#include "core/decompose.hh"
#include "core/peephole.hh"
#include "core/router.hh"

namespace triq
{

std::string
optLevelName(OptLevel level)
{
    switch (level) {
      case OptLevel::N:
        return "TriQ-N";
      case OptLevel::OneQOpt:
        return "TriQ-1QOpt";
      case OptLevel::OneQOptC:
        return "TriQ-1QOptC";
      case OptLevel::OneQOptCN:
        return "TriQ-1QOptCN";
    }
    panic("optLevelName: unknown level");
}

CompileResult
compileForDevice(const Circuit &program, const Device &dev,
                 const Calibration &calib, const CompileOptions &opts)
{
    using Clock = std::chrono::steady_clock;
    auto t0 = Clock::now();

    if (program.numQubits() > dev.numQubits())
        fatal("compileForDevice: ", program.name(), " needs ",
              program.numQubits(), " qubits; ", dev.name(), " has ",
              dev.numQubits());

    // 1. Lower composites to the technology-independent CNOT basis
    //    (keeping controlled-phase structure when the target exposes
    //    native CPHASE — the Sec. 6.4 what-if).
    Circuit cnot_basis =
        decomposeToCnotBasis(program, dev.gateSet().nativeCphase);
    if (opts.peephole)
        cnot_basis = cancelInversePairs(cnot_basis);

    // 2. Reliability matrix: the CN level sees the day's calibration;
    //    every other level sees average error rates (Sec. 4.2).
    const bool noise_aware = opts.level == OptLevel::OneQOptCN;
    Calibration avg = dev.averageCalibration();
    const Calibration &rel_calib = noise_aware ? calib : avg;
    ReliabilityMatrix rel(dev.topology(), rel_calib, dev.vendor());

    // 3. Qubit mapping (Sec. 4.3).
    ProgramInfo info = ProgramInfo::fromCircuit(cnot_basis);
    const bool comm_opt = opts.level == OptLevel::OneQOptC ||
                          opts.level == OptLevel::OneQOptCN;
    Mapping mapping = comm_opt ? mapQubits(info, rel, opts.mapping)
                               : trivialMapping(info, rel);

    // 4. Routing (Sec. 4.4).
    RoutingResult routed =
        routeCircuit(cnot_basis, mapping, dev.topology(), rel);

    // 5. Gate implementation + 1Q optimization (Sec. 4.5).
    TranslateOptions topts;
    topts.fuseOneQubit = opts.level != OptLevel::N;
    TranslateResult tr = translateForDevice(routed.circuit, dev.topology(),
                                            dev.gateSet(), topts);

    CompileResult out;
    out.hwCircuit = std::move(tr.circuit);
    out.initialMap = routed.initialMap;
    out.finalMap = routed.finalMap;
    out.swapCount = routed.swapCount;
    out.stats = tr.stats;
    out.mapperObjective = mapping.minReliability;

    // 6. Executable generation (Sec. 4.6).
    if (opts.emitAssembly)
        out.assembly = emitAssembly(out.hwCircuit, dev.vendor());

    out.compileMs = std::chrono::duration<double, std::milli>(
                        Clock::now() - t0)
                        .count();
    return out;
}

} // namespace triq
