#include "core/compiler.hh"

#include <chrono>
#include <sstream>

#include "common/logging.hh"
#include "core/backend.hh"
#include "core/decompose.hh"
#include "core/peephole.hh"
#include "core/router.hh"

namespace triq
{

std::string
CompileReport::str() const
{
    std::ostringstream os;
    os << "mapper:    " << requestedMapper;
    if (mapperEngine != requestedMapper)
        os << " -> " << mapperEngine << " (degraded)";
    os << (mapperOptimal ? " [optimal]" : "") << ", " << mapperNodes
       << " nodes";
    if (!mapperBoundType.empty()) {
        os << " (" << mapperBoundType << " bound; pruned "
           << mapperBoundPruned << " bound / " << mapperSymmetryPruned
           << " symmetry / " << mapperDominancePruned << " dominance)";
    }
    if (mapperWarmStarted) {
        os << " [warm start";
        if (!mapperWarmStartOrigin.empty())
            os << ": " << mapperWarmStartOrigin;
        os << "]";
    }
    os << "\n";
    os << "status:    "
       << (degraded ? (deadlineHit ? "degraded (deadline hit)"
                                   : "degraded")
                    : "full strength")
       << "\n";
    if (calibrationRepairs > 0)
        os << "calib:     " << calibrationRepairs
           << " value(s) sanitized\n";
    for (const auto &d : degradations)
        os << "  - " << d << "\n";
    os << "passes:\n";
    for (const auto &p : passes)
        os << "  " << p.pass << ": " << p.ms << " ms\n";
    return os.str();
}

std::string
CompileReport::json() const
{
    std::ostringstream os;
    os << "{\"requestedMapper\":\"" << jsonEscape(requestedMapper)
       << "\",\"mapperEngine\":\"" << jsonEscape(mapperEngine)
       << "\",\"mapperNodes\":" << mapperNodes
       << ",\"mapperOptimal\":" << (mapperOptimal ? "true" : "false")
       << ",\"mapperBoundType\":\"" << jsonEscape(mapperBoundType)
       << "\",\"mapperBoundPruned\":" << mapperBoundPruned
       << ",\"mapperSymmetryPruned\":" << mapperSymmetryPruned
       << ",\"mapperDominancePruned\":" << mapperDominancePruned
       << ",\"mapperWarmStarted\":"
       << (mapperWarmStarted ? "true" : "false")
       << ",\"mapperWarmStartOrigin\":\""
       << jsonEscape(mapperWarmStartOrigin)
       << "\",\"degraded\":" << (degraded ? "true" : "false")
       << ",\"deadlineHit\":" << (deadlineHit ? "true" : "false")
       << ",\"calibrationRepairs\":" << calibrationRepairs
       << ",\"degradations\":[";
    for (size_t i = 0; i < degradations.size(); ++i)
        os << (i ? "," : "") << "\"" << jsonEscape(degradations[i])
           << "\"";
    os << "],\"passes\":[";
    for (size_t i = 0; i < passes.size(); ++i)
        os << (i ? "," : "") << "{\"pass\":\"" << jsonEscape(passes[i].pass)
           << "\",\"ms\":" << passes[i].ms << "}";
    os << "],\"calibrationDiagnostics\":" << calibrationDiags.json()
       << "}";
    return os.str();
}

std::string
optLevelName(OptLevel level)
{
    switch (level) {
      case OptLevel::N:
        return "TriQ-N";
      case OptLevel::OneQOpt:
        return "TriQ-1QOpt";
      case OptLevel::OneQOptC:
        return "TriQ-1QOptC";
      case OptLevel::OneQOptCN:
        return "TriQ-1QOptCN";
    }
    panic("optLevelName: unknown level");
}

CompileResult
compileForDevice(const Circuit &program, const Device &dev,
                 const Calibration &calib, const CompileOptions &opts,
                 const Circuit *lowered)
{
    using Clock = std::chrono::steady_clock;
    auto t0 = Clock::now();
    auto last = t0;

    CompileReport report;
    report.requestedMapper = mapperKindName(opts.mapping.kind);
    auto mark = [&](const char *pass) {
        auto now = Clock::now();
        report.passes.push_back(
            {pass, std::chrono::duration<double, std::milli>(now - last)
                       .count()});
        last = now;
    };

    if (program.numQubits() > dev.numQubits())
        fatal("compileForDevice: ", program.name(), " needs ",
              program.numQubits(), " qubits; ", dev.name(), " has ",
              dev.numQubits());

    // 0. Input sanitization: never trust a calibration feed. Strict
    //    mode rejects bad values; the default clamps them and records
    //    the repairs in the report.
    Calibration day = calib;
    report.calibrationRepairs =
        day.validate(dev.topology(),
                     opts.strictCalibration ? ValidateMode::Strict
                                            : ValidateMode::Sanitize,
                     report.calibrationDiags);
    report.calibrationDiags.throwIfErrors(
        "compileForDevice: invalid calibration for " + dev.name());
    if (report.calibrationRepairs > 0) {
        report.degraded = true;
        report.degradations.push_back(
            "calibration sanitized: " +
            std::to_string(report.calibrationRepairs) +
            " invalid value(s) clamped");
    }
    mark("sanitize");

    // 1. Lower composites to the technology-independent CNOT basis
    //    (keeping controlled-phase structure when the target exposes
    //    native CPHASE — the Sec. 6.4 what-if). A caller that sweeps
    //    many cells of one program may hand in the decomposition it
    //    hoisted; the pass entry stays so reports keep one shape.
    Circuit cnot_basis =
        lowered ? *lowered
                : decomposeToCnotBasis(program, dev.gateSet().nativeCphase);
    mark("decompose");
    if (opts.peephole) {
        // Optional optimization: first thing dropped under deadline
        // pressure — correctness never depends on it.
        if (opts.budget.expired()) {
            report.degraded = true;
            report.deadlineHit = true;
            report.degradations.push_back(
                "deadline fired before the peephole pass; skipped");
        } else {
            cnot_basis = cancelInversePairs(cnot_basis);
            mark("peephole");
        }
    }

    // 2. Reliability matrix: the CN level sees the day's calibration;
    //    every other level sees average error rates (Sec. 4.2).
    const bool noise_aware = opts.level == OptLevel::OneQOptCN;
    Calibration avg = dev.averageCalibration();
    const Calibration &rel_calib = noise_aware ? day : avg;
    ReliabilityMatrix rel(dev.topology(), rel_calib, dev.vendor());
    mark("reliability-matrix");

    // 3. Qubit mapping (Sec. 4.3). The budget makes every engine
    //    anytime; the fallback ladder Z3 -> B&B -> greedy guarantees a
    //    valid placement whatever fires.
    ProgramInfo info = ProgramInfo::fromCircuit(cnot_basis);
    const bool comm_opt = opts.level == OptLevel::OneQOptC ||
                          opts.level == OptLevel::OneQOptCN;
    MappingOptions mopts = opts.mapping;
    mopts.budget = opts.budget;
    Mapping mapping = comm_opt ? mapQubits(info, rel, mopts)
                               : trivialMapping(info, rel);
    mark("mapping");
    report.mapperEngine = mapping.engine;
    report.mapperNodes = mapping.nodesExplored;
    report.mapperOptimal = mapping.optimal;
    report.mapperBoundType = mapping.boundType;
    report.mapperBoundPruned = mapping.boundPruned;
    report.mapperSymmetryPruned = mapping.symmetryPruned;
    report.mapperDominancePruned = mapping.dominancePruned;
    report.mapperWarmStarted = mapping.warmStarted;
    report.mapperWarmStartOrigin = mapping.warmStartOrigin;
    if (mapping.timedOut)
        report.deadlineHit = true;
    if (!mapping.notes.empty()) {
        report.degraded = true;
        for (const auto &n : mapping.notes)
            report.degradations.push_back("mapper: " + n);
    }

    // 4. Routing / communication scheduling (Sec. 4.4). Mandatory for
    //    validity: it always runs, even past the deadline (its cost is
    //    linear in the gate count).
    RoutingResult routed =
        routeCircuit(cnot_basis, mapping, dev.topology(), rel);
    mark("routing");
    if (opts.budget.expired() && !report.deadlineHit) {
        report.deadlineHit = true;
        report.degraded = true;
        report.degradations.push_back(
            "deadline fired during routing/translation; mandatory "
            "passes completed anyway");
    }

    // 5. Gate implementation + 1Q optimization (Sec. 4.5).
    TranslateOptions topts;
    topts.fuseOneQubit = opts.level != OptLevel::N;
    TranslateResult tr = translateForDevice(routed.circuit, dev.topology(),
                                            dev.gateSet(), topts);
    mark("translate");

    CompileResult out;
    out.hwCircuit = std::move(tr.circuit);
    out.initialMap = routed.initialMap;
    out.finalMap = routed.finalMap;
    out.swapCount = routed.swapCount;
    out.stats = tr.stats;
    out.mapperObjective = mapping.minReliability;

    // 6. Executable generation (Sec. 4.6).
    if (opts.emitAssembly) {
        out.assembly = emitAssembly(out.hwCircuit, dev.vendor());
        mark("emit");
    }

    out.compileMs = std::chrono::duration<double, std::milli>(
                        Clock::now() - t0)
                        .count();
    out.report = std::move(report);
    return out;
}

} // namespace triq
