#include "core/serialize.hh"

#include <vector>

#include "common/logging.hh"

namespace triq
{

namespace
{

/** True when g1 and g2 could crosstalk: disjoint but neighboring. */
bool
adjacentGates(const Topology &topo, const Gate &a, const Gate &b)
{
    for (int i = 0; i < a.arity(); ++i)
        for (int j = 0; j < b.arity(); ++j) {
            if (a.qubit(i) == b.qubit(j))
                return false; // Shared qubit: already serialized.
            if (topo.adjacent(a.qubit(i), b.qubit(j)))
                return true;
        }
    return false;
}

} // namespace

Circuit
serializeAdjacentTwoQ(const Circuit &hw, const Topology &topo)
{
    Circuit out(hw.numQubits(), hw.name());
    // 2Q gates currently free to run together (since the last fence or
    // data dependency).
    std::vector<Gate> layer;
    for (const auto &g : hw.gates()) {
        if (g.kind == GateKind::Barrier) {
            layer.clear();
            out.add(g);
            continue;
        }
        if (isTwoQubitGate(g.kind)) {
            bool conflict = false;
            bool shares = false;
            for (const auto &lg : layer) {
                if (adjacentGates(topo, lg, g))
                    conflict = true;
                for (int i = 0; i < g.arity(); ++i)
                    if (lg.actsOn(g.qubit(i)))
                        shares = true;
            }
            if (conflict) {
                out.add(Gate::barrier());
                layer.clear();
            } else if (shares) {
                // A data dependency already orders it after the layer;
                // it starts a new concurrency group on those qubits.
                layer.clear();
            }
            layer.push_back(g);
        }
        out.add(g);
    }
    return out;
}

} // namespace triq
