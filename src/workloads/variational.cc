#include "workloads/variational.hh"

#include <set>

#include "common/logging.hh"
#include "common/rng.hh"

namespace triq
{

int
MaxCutGraph::cutValue(uint64_t assignment) const
{
    int cut = 0;
    for (const auto &[a, b] : edges)
        cut += ((assignment >> a) & 1) != ((assignment >> b) & 1);
    return cut;
}

int
MaxCutGraph::maxCut() const
{
    if (numVertices > 24)
        fatal("MaxCutGraph::maxCut: instance too large for exhaustive "
              "search");
    int best = 0;
    for (uint64_t a = 0; a < (uint64_t{1} << numVertices); ++a)
        best = std::max(best, cutValue(a));
    return best;
}

MaxCutGraph
MaxCutGraph::ring(int n)
{
    if (n < 3)
        fatal("MaxCutGraph::ring: need at least 3 vertices");
    MaxCutGraph g;
    g.numVertices = n;
    for (int i = 0; i < n; ++i)
        g.edges.push_back({i, (i + 1) % n});
    return g;
}

MaxCutGraph
MaxCutGraph::random(int n, int num_edges, uint64_t seed)
{
    long max_edges = static_cast<long>(n) * (n - 1) / 2;
    if (n < 2 || num_edges < 1 || num_edges > max_edges)
        fatal("MaxCutGraph::random: infeasible instance (", n,
              " vertices, ", num_edges, " edges)");
    MaxCutGraph g;
    g.numVertices = n;
    Rng rng(seed);
    std::set<std::pair<int, int>> used;
    while (static_cast<int>(g.edges.size()) < num_edges) {
        int a = rng.uniformInt(n);
        int b = rng.uniformInt(n);
        if (a == b)
            continue;
        if (a > b)
            std::swap(a, b);
        if (used.insert({a, b}).second)
            g.edges.push_back({a, b});
    }
    return g;
}

Circuit
makeQaoaMaxCut(const MaxCutGraph &graph, const std::vector<double> &gammas,
               const std::vector<double> &betas)
{
    if (graph.numVertices < 2)
        fatal("makeQaoaMaxCut: need at least 2 vertices");
    if (gammas.empty() || gammas.size() != betas.size())
        fatal("makeQaoaMaxCut: gammas/betas must be non-empty and of "
              "equal length");
    Circuit c(graph.numVertices,
              "QAOA_p" + std::to_string(gammas.size()));
    for (int q = 0; q < graph.numVertices; ++q)
        c.add(Gate::h(q));
    for (size_t layer = 0; layer < gammas.size(); ++layer) {
        // Cost unitary: exp(-i gamma/2 Z_a Z_b) per edge.
        for (const auto &[a, b] : graph.edges) {
            c.add(Gate::cnot(a, b));
            c.add(Gate::rz(b, gammas[layer]));
            c.add(Gate::cnot(a, b));
        }
        // Mixer.
        for (int q = 0; q < graph.numVertices; ++q)
            c.add(Gate::rx(q, 2.0 * betas[layer]));
    }
    for (int q = 0; q < graph.numVertices; ++q)
        c.add(Gate::measure(q));
    return c;
}

double
expectedCutValue(const MaxCutGraph &graph,
                 const std::vector<std::pair<uint64_t, int>> &counts)
{
    long total = 0;
    double sum = 0.0;
    for (const auto &[key, count] : counts) {
        total += count;
        sum += static_cast<double>(count) * graph.cutValue(key);
    }
    if (total == 0)
        fatal("expectedCutValue: empty histogram");
    return sum / static_cast<double>(total);
}

Circuit
makeTfimTrotter(int n, int steps, double j_coupling, double h_field,
                double dt)
{
    if (n < 2 || steps < 1)
        fatal("makeTfimTrotter: need >= 2 spins and >= 1 step");
    Circuit c(n, "TFIM" + std::to_string(n) + "x" +
                     std::to_string(steps));
    for (int s = 0; s < steps; ++s) {
        // exp(+i J dt Z_i Z_{i+1}) per bond.
        for (int q = 0; q + 1 < n; ++q) {
            c.add(Gate::cnot(q, q + 1));
            c.add(Gate::rz(q + 1, -2.0 * j_coupling * dt));
            c.add(Gate::cnot(q, q + 1));
        }
        // exp(+i h dt X_i) per spin.
        for (int q = 0; q < n; ++q)
            c.add(Gate::rx(q, -2.0 * h_field * dt));
    }
    for (int q = 0; q < n; ++q)
        c.add(Gate::measure(q));
    return c;
}

} // namespace triq
