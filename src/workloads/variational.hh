/**
 * @file
 * Variational / simulation workloads of the application classes the
 * paper's introduction motivates (optimization, chemistry/physics):
 *
 *  - QAOA for MaxCut: alternating cost (ZZ phase) and mixer (Rx)
 *    layers over a graph; the figure of merit is the expected cut
 *    value of the sampled bitstrings, not a single correct answer.
 *  - Trotterized transverse-field Ising model (TFIM) evolution: the
 *    canonical near-term Hamiltonian-simulation circuit.
 *
 * Both produce plain gate-IR circuits, so the whole TriQ pipeline
 * (mapping, routing, vendor translation, noisy execution) applies
 * unchanged.
 */

#ifndef TRIQ_WORKLOADS_VARIATIONAL_HH
#define TRIQ_WORKLOADS_VARIATIONAL_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "core/circuit.hh"

namespace triq
{

/** An undirected graph for MaxCut instances. */
struct MaxCutGraph
{
    int numVertices = 0;
    std::vector<std::pair<int, int>> edges;

    /** Cut value of an assignment (bit v of `assignment` = side of v). */
    int cutValue(uint64_t assignment) const;

    /** The best cut value (exhaustive; numVertices <= 24). */
    int maxCut() const;

    /** A ring graph (max cut = n for even n). */
    static MaxCutGraph ring(int n);

    /** Erdos-Renyi-style random graph with `num_edges` distinct edges. */
    static MaxCutGraph random(int n, int num_edges, uint64_t seed);
};

/**
 * A depth-p QAOA circuit for MaxCut.
 *
 * Per layer k: exp(-i gamma_k/2 * ZZ) on every edge (two CNOTs and a
 * virtual Rz after decomposition), then Rx(2 beta_k) mixers.
 *
 * @param graph Problem instance.
 * @param gammas Cost angles (one per layer).
 * @param betas Mixer angles (size must match gammas).
 */
Circuit makeQaoaMaxCut(const MaxCutGraph &graph,
                       const std::vector<double> &gammas,
                       const std::vector<double> &betas);

/**
 * Expected cut value of an outcome histogram (as produced by
 * ExecutionResult::histogram for a QAOA circuit that measures all
 * qubits in ascending order).
 */
double expectedCutValue(const MaxCutGraph &graph,
                        const std::vector<std::pair<uint64_t, int>> &counts);

/**
 * Trotterized transverse-field Ising evolution on a line of n spins:
 * H = -J sum Z_i Z_{i+1} - h sum X_i, first-order steps of size dt.
 * Measures all qubits.
 */
Circuit makeTfimTrotter(int n, int steps, double j_coupling, double h_field,
                        double dt);

} // namespace triq

#endif // TRIQ_WORKLOADS_VARIATIONAL_HH
