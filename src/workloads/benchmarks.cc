#include "workloads/benchmarks.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"
#include "sim/statevector.hh"
#include "workloads/supremacy.hh"

namespace triq
{

namespace
{

/** Measure every qubit of `c`, in ascending order. */
void
measureAll(Circuit &c)
{
    for (int q = 0; q < c.numQubits(); ++q)
        c.add(Gate::measure(q));
}

/** Reverse a unitary circuit: reversed gate order, inverted gates. */
Circuit
inverted(const Circuit &c)
{
    Circuit out(c.numQubits(), c.name() + "_inv");
    for (int i = c.numGates() - 1; i >= 0; --i) {
        Gate g = c.gate(i);
        switch (g.kind) {
          case GateKind::H:
          case GateKind::X:
          case GateKind::Y:
          case GateKind::Z:
          case GateKind::I:
          case GateKind::Cnot:
          case GateKind::Cz:
          case GateKind::Swap:
          case GateKind::Ccx:
          case GateKind::Ccz:
          case GateKind::Cswap:
            break; // Self-inverse.
          case GateKind::S:
            g.kind = GateKind::Sdg;
            break;
          case GateKind::Sdg:
            g.kind = GateKind::S;
            break;
          case GateKind::T:
            g.kind = GateKind::Tdg;
            break;
          case GateKind::Tdg:
            g.kind = GateKind::T;
            break;
          case GateKind::Rx:
          case GateKind::Ry:
          case GateKind::Rz:
          case GateKind::U1:
          case GateKind::Cphase:
          case GateKind::Xx:
            g.params[0] = -g.params[0];
            break;
          case GateKind::Rxy:
            g.params[0] = -g.params[0];
            break;
          default:
            fatal("inverted: cannot invert ", g.str());
        }
        out.add(g);
    }
    return out;
}

} // namespace

Circuit
makeBV(int n, uint64_t hidden)
{
    if (n < 2)
        fatal("makeBV: need at least 2 qubits, got ", n);
    hidden &= (uint64_t{1} << (n - 1)) - 1;
    Circuit c(n, "BV" + std::to_string(n));
    const ProgQubit anc = n - 1;
    c.add(Gate::x(anc));
    for (int q = 0; q < n; ++q)
        c.add(Gate::h(q));
    for (int q = 0; q < n - 1; ++q)
        if ((hidden >> q) & 1)
            c.add(Gate::cnot(q, anc));
    for (int q = 0; q < n - 1; ++q)
        c.add(Gate::h(q));
    for (int q = 0; q < n - 1; ++q)
        c.add(Gate::measure(q));
    return c;
}

Circuit
makeHiddenShift(int n, uint64_t shift)
{
    if (n < 2 || n % 2 != 0)
        fatal("makeHiddenShift: need an even qubit count, got ", n);
    shift &= (uint64_t{1} << n) - 1;
    Circuit c(n, "HS" + std::to_string(n));
    auto oracle = [&]() {
        // Maiorana-McFarland bent function f(x) = sum x_{2i} x_{2i+1};
        // its dual is itself, so both oracles are the same CZ layer.
        for (int i = 0; i + 1 < n; i += 2)
            c.add(Gate::cz(i, i + 1));
    };
    for (int q = 0; q < n; ++q)
        c.add(Gate::h(q));
    for (int q = 0; q < n; ++q)
        if ((shift >> q) & 1)
            c.add(Gate::x(q));
    oracle();
    for (int q = 0; q < n; ++q)
        if ((shift >> q) & 1)
            c.add(Gate::x(q));
    for (int q = 0; q < n; ++q)
        c.add(Gate::h(q));
    oracle();
    for (int q = 0; q < n; ++q)
        c.add(Gate::h(q));
    measureAll(c);
    return c;
}

Circuit
makeToffoli()
{
    Circuit c(3, "Toffoli");
    c.add(Gate::x(0));
    c.add(Gate::x(1));
    c.add(Gate::ccx(0, 1, 2));
    measureAll(c);
    return c;
}

Circuit
makeFredkin()
{
    Circuit c(3, "Fredkin");
    c.add(Gate::x(0));
    c.add(Gate::x(1));
    c.add(Gate::cswap(0, 1, 2));
    measureAll(c);
    return c;
}

Circuit
makeOr()
{
    // OR(a, b) -> t via De Morgan: t = NOT(AND(NOT a, NOT b)).
    Circuit c(3, "Or");
    c.add(Gate::x(0)); // Input a = 1 (b stays 0).
    c.add(Gate::x(0));
    c.add(Gate::x(1));
    c.add(Gate::ccx(0, 1, 2));
    c.add(Gate::x(0));
    c.add(Gate::x(1));
    c.add(Gate::x(2));
    measureAll(c);
    return c;
}

Circuit
makePeres()
{
    // Peres(a, b, c) = Toffoli(a,b,c) then CNOT(a,b), on inputs a=b=1.
    Circuit c(3, "Peres");
    c.add(Gate::x(0));
    c.add(Gate::x(1));
    c.add(Gate::ccx(0, 1, 2));
    c.add(Gate::cnot(0, 1));
    measureAll(c);
    return c;
}

Circuit
qftCircuit(int n)
{
    if (n < 1)
        fatal("qftCircuit: need at least 1 qubit");
    Circuit c(n, "QFT" + std::to_string(n));
    for (int i = n - 1; i >= 0; --i) {
        c.add(Gate::h(i));
        for (int j = i - 1; j >= 0; --j)
            c.add(Gate::cphase(j, i, kPi / std::pow(2.0, i - j)));
    }
    return c;
}

Circuit
makeQft(int n, uint64_t x)
{
    x &= (uint64_t{1} << n) - 1;
    Circuit c(n, "QFT");
    for (int q = 0; q < n; ++q)
        if ((x >> q) & 1)
            c.add(Gate::x(q));
    Circuit fwd = qftCircuit(n);
    c.append(fwd);
    c.append(inverted(fwd));
    measureAll(c);
    return c;
}

Circuit
makeAdder()
{
    // One-bit Cuccaro ripple-carry adder: qubits (cin, b, a, cout),
    // inputs a = b = 1, cin = 0; leaves sum in b, carry in cout.
    Circuit c(4, "Adder");
    const ProgQubit cin = 0, b = 1, a = 2, cout = 3;
    c.add(Gate::x(a));
    c.add(Gate::x(b));
    // MAJ(cin, b, a)
    c.add(Gate::cnot(a, b));
    c.add(Gate::cnot(a, cin));
    c.add(Gate::ccx(cin, b, a));
    // Carry out
    c.add(Gate::cnot(a, cout));
    // UMA(cin, b, a)
    c.add(Gate::ccx(cin, b, a));
    c.add(Gate::cnot(a, cin));
    c.add(Gate::cnot(cin, b));
    measureAll(c);
    return c;
}

Circuit
makeToffoliChain(int k)
{
    if (k < 1)
        fatal("makeToffoliChain: need at least 1 iteration");
    Circuit c(3, "Toffoli_x" + std::to_string(k));
    c.add(Gate::x(0));
    c.add(Gate::x(1));
    for (int i = 0; i < k; ++i)
        c.add(Gate::ccx(0, 1, 2));
    measureAll(c);
    return c;
}

Circuit
makeFredkinChain(int k)
{
    if (k < 1)
        fatal("makeFredkinChain: need at least 1 iteration");
    Circuit c(3, "Fredkin_x" + std::to_string(k));
    c.add(Gate::x(0));
    c.add(Gate::x(1));
    for (int i = 0; i < k; ++i)
        c.add(Gate::cswap(0, 1, 2));
    measureAll(c);
    return c;
}

Circuit
makeGrover2(uint64_t marked)
{
    if (marked > 3)
        fatal("makeGrover2: marked item must be in [0, 3]");
    Circuit c(2, "Grover2");
    auto mask_x = [&](uint64_t pattern) {
        // Conjugate the CZ so it phase-flips |pattern>.
        for (int q = 0; q < 2; ++q)
            if (!((pattern >> q) & 1))
                c.add(Gate::x(q));
    };
    c.add(Gate::h(0));
    c.add(Gate::h(1));
    // Oracle: phase-flip the marked state.
    mask_x(marked);
    c.add(Gate::cz(0, 1));
    mask_x(marked);
    // Diffusion about the mean.
    c.add(Gate::h(0));
    c.add(Gate::h(1));
    c.add(Gate::x(0));
    c.add(Gate::x(1));
    c.add(Gate::cz(0, 1));
    c.add(Gate::x(0));
    c.add(Gate::x(1));
    c.add(Gate::h(0));
    c.add(Gate::h(1));
    measureAll(c);
    return c;
}

Circuit
makeGhzRoundTrip(int n)
{
    if (n < 2)
        fatal("makeGhzRoundTrip: need at least 2 qubits");
    Circuit c(n, "GHZ" + std::to_string(n));
    c.add(Gate::h(0));
    for (int q = 0; q + 1 < n; ++q)
        c.add(Gate::cnot(q, q + 1));
    c.add(Gate::barrier());
    for (int q = n - 2; q >= 0; --q)
        c.add(Gate::cnot(q, q + 1));
    c.add(Gate::h(0));
    c.add(Gate::x(0));
    measureAll(c);
    return c;
}

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names{
        "BV4", "BV6", "BV8", "HS2", "HS4", "HS6",
        "Toffoli", "Fredkin", "Or", "Peres", "QFT", "Adder"};
    return names;
}

Circuit
makeBenchmark(const std::string &name)
{
    if (name == "BV4")
        return makeBV(4);
    if (name == "BV6")
        return makeBV(6);
    if (name == "BV8")
        return makeBV(8);
    if (name == "HS2")
        return makeHiddenShift(2);
    if (name == "HS4")
        return makeHiddenShift(4);
    if (name == "HS6")
        return makeHiddenShift(6);
    if (name == "Toffoli")
        return makeToffoli();
    if (name == "Fredkin")
        return makeFredkin();
    if (name == "Or")
        return makeOr();
    if (name == "Peres")
        return makePeres();
    if (name == "QFT")
        return makeQft();
    if (name == "Adder")
        return makeAdder();
    // "Sup<rows>x<cols>d<depth>" — parameterized supremacy grids, the
    // Sec. 6.5 compile-time-scaling workloads (e.g. Sup6x12d8 is the
    // 72-qubit Bristlecone-class circuit). Deliberately not listed in
    // benchmarkNames(): "program all" sweeps must stay tractable.
    {
        int rows = 0, cols = 0, depth = 0;
        char tail = 0;
        if (std::sscanf(name.c_str(), "Sup%dx%dd%d%c", &rows, &cols,
                        &depth, &tail) == 3 &&
            rows >= 1 && cols >= 1 && depth >= 1)
            return makeSupremacy(rows, cols, depth);
    }
    fatal("makeBenchmark: unknown benchmark '", name, "'");
}

uint64_t
idealOutcome(const Circuit &benchmark)
{
    std::vector<double> dist = idealMeasurementDistribution(benchmark);
    uint64_t best = 0;
    double bestp = -1.0;
    for (uint64_t i = 0; i < dist.size(); ++i) {
        if (dist[i] > bestp) {
            bestp = dist[i];
            best = i;
        }
    }
    if (bestp < 0.99)
        fatal("idealOutcome: benchmark ", benchmark.name(),
              " is not deterministic (max outcome probability ", bestp,
              ")");
    return best;
}

} // namespace triq
