/**
 * @file
 * Quantum-supremacy-style random circuits (Sec. 6.5 scaling study).
 *
 * The generator mirrors the Google/Cirq construction the paper uses for
 * its compile-time scaling experiments: a rectangular grid of qubits, an
 * initial Hadamard layer, then alternating layers that activate one of
 * eight staggered CZ patterns while idle qubits receive a random 1Q gate
 * from {T, sqrt(X), sqrt(Y)}. At 72 qubits (6x12) and depth 128 this
 * yields roughly the paper's 2032 two-qubit gates.
 */

#ifndef TRIQ_WORKLOADS_SUPREMACY_HH
#define TRIQ_WORKLOADS_SUPREMACY_HH

#include <cstdint>

#include "core/circuit.hh"

namespace triq
{

/**
 * Generate a supremacy circuit on a rows x cols grid.
 *
 * @param rows Grid rows.
 * @param cols Grid columns (qubit (r, c) = index r*cols + c).
 * @param depth Number of entangling layers.
 * @param seed Seed for the random 1Q gate choices.
 * @param measure Append measurements on all qubits when true.
 */
Circuit makeSupremacy(int rows, int cols, int depth, uint64_t seed = 1,
                      bool measure = true);

} // namespace triq

#endif // TRIQ_WORKLOADS_SUPREMACY_HH
