#include "workloads/supremacy.hh"

#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace triq
{

Circuit
makeSupremacy(int rows, int cols, int depth, uint64_t seed, bool measure)
{
    if (rows < 1 || cols < 1 || depth < 1)
        fatal("makeSupremacy: bad shape ", rows, "x", cols, " depth ",
              depth);
    const int n = rows * cols;
    Circuit c(n, "Supremacy" + std::to_string(n) + "d" +
                     std::to_string(depth));
    Rng rng(seed);
    auto idx = [cols](int r, int col) { return r * cols + col; };

    for (int q = 0; q < n; ++q)
        c.add(Gate::h(q));

    // Track the previous 1Q gate per qubit so consecutive random gates
    // differ, as in the Google construction.
    std::vector<int> last1q(static_cast<size_t>(n), -1);

    for (int layer = 0; layer < depth; ++layer) {
        std::vector<bool> busy(static_cast<size_t>(n), false);
        const int pat = layer % 8;
        if (pat < 4) {
            // Horizontal pairs starting at columns c with c % 4 == pat.
            for (int r = 0; r < rows; ++r)
                for (int col = pat; col + 1 < cols; col += 4) {
                    c.add(Gate::cz(idx(r, col), idx(r, col + 1)));
                    busy[static_cast<size_t>(idx(r, col))] = true;
                    busy[static_cast<size_t>(idx(r, col + 1))] = true;
                }
        } else {
            // Vertical pairs starting at rows r with r % 4 == pat - 4.
            for (int col = 0; col < cols; ++col)
                for (int r = pat - 4; r + 1 < rows; r += 4) {
                    c.add(Gate::cz(idx(r, col), idx(r + 1, col)));
                    busy[static_cast<size_t>(idx(r, col))] = true;
                    busy[static_cast<size_t>(idx(r + 1, col))] = true;
                }
        }
        for (int q = 0; q < n; ++q) {
            if (busy[static_cast<size_t>(q)])
                continue;
            int pick;
            do {
                pick = rng.uniformInt(3);
            } while (pick == last1q[static_cast<size_t>(q)]);
            last1q[static_cast<size_t>(q)] = pick;
            switch (pick) {
              case 0:
                c.add(Gate::t(q));
                break;
              case 1:
                c.add(Gate::rx(q, kPi / 2));
                break;
              default:
                c.add(Gate::ry(q, kPi / 2));
                break;
            }
        }
    }
    if (measure)
        for (int q = 0; q < n; ++q)
            c.add(Gate::measure(q));
    return c;
}

} // namespace triq
