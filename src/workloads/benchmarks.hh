/**
 * @file
 * The benchmark programs of the study (Fig. 7): Bernstein-Vazirani,
 * Hidden Shift, Quantum Fourier Transform, a ripple-carry adder and
 * multi-qubit gates (Toffoli, Fredkin, Or, Peres), plus the iterated
 * Toffoli/Fredkin sequences used for the UMDTI length study (Fig. 11e-f).
 *
 * Every benchmark is constructed so its ideal output is a single
 * deterministic bitstring; "success rate" is the fraction of noisy
 * trials that return it.
 */

#ifndef TRIQ_WORKLOADS_BENCHMARKS_HH
#define TRIQ_WORKLOADS_BENCHMARKS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/circuit.hh"

namespace triq
{

/**
 * Bernstein-Vazirani on n qubits (n-1 data + 1 ancilla).
 * Recovers the hidden string in one query; ideal output = `hidden`
 * on the data qubits (bit i of `hidden` = data qubit i).
 * @param hidden Hidden bitstring; default all-ones (maximal CNOTs).
 */
Circuit makeBV(int n, uint64_t hidden = ~uint64_t{0});

/**
 * Hidden Shift for the Maiorana-McFarland bent function on n qubits
 * (n even): f(x) = sum x_{2i} x_{2i+1}. Ideal output = `shift`.
 */
Circuit makeHiddenShift(int n, uint64_t shift = ~uint64_t{0});

/** Toffoli gate with inputs |11>|0>; ideal output 111. */
Circuit makeToffoli();

/** Fredkin (controlled swap) with inputs |1>|10>; ideal output 101. */
Circuit makeFredkin();

/** Logical OR of inputs a=1, b=0 into a target; ideal output 101. */
Circuit makeOr();

/** Peres gate (Toffoli + CNOT) on |110>; ideal output 011. */
Circuit makePeres();

/**
 * QFT benchmark on n qubits: prepare |x>, apply QFT then its inverse;
 * ideal output = x. Default n = 4, x = 0b0101.
 */
Circuit makeQft(int n = 4, uint64_t x = 0b0101);

/**
 * One-bit Cuccaro ripple-carry adder over (cin, a, b, cout) computing
 * a + b + cin with a=1, b=1, cin=0; ideal output has sum=0, carry=1.
 */
Circuit makeAdder();

/** `k` back-to-back Toffolis on |110> (UMDTI length study). */
Circuit makeToffoliChain(int k);

/** `k` back-to-back Fredkins on |110> (UMDTI length study). */
Circuit makeFredkinChain(int k);

/** The plain n-qubit QFT circuit (building block; no measurement). */
Circuit qftCircuit(int n);

/**
 * Two-qubit Grover search for the `marked` item (0..3): a single
 * iteration finds it with certainty. Not part of the 12-benchmark
 * study set; the paper cites Grover as the application its iterated
 * Toffoli/Fredkin sequences model.
 */
Circuit makeGrover2(uint64_t marked = 0b11);

/**
 * GHZ prepare-and-uncompute on n qubits, ending in a deterministic
 * basis state (|0...01>) so hardware success is checkable.
 */
Circuit makeGhzRoundTrip(int n);

/** Names of the 12 study benchmarks in Fig. 7 order. */
const std::vector<std::string> &benchmarkNames();

/**
 * Construct a study benchmark by name ("BV4", "HS6", "Toffoli",
 * "QFT", ...). @throws FatalError for unknown names.
 */
Circuit makeBenchmark(const std::string &name);

/**
 * The deterministic correct output of a benchmark as a bitstring over
 * its *measured* qubits (bit i = i-th measured qubit, ascending), found
 * by ideal simulation. @throws FatalError when the benchmark's ideal
 * output is not (nearly) deterministic.
 */
uint64_t idealOutcome(const Circuit &benchmark);

} // namespace triq

#endif // TRIQ_WORKLOADS_BENCHMARKS_HH
