#include "sim/compact.hh"

#include "common/logging.hh"

namespace triq
{

CompactCircuit
compactCircuit(const Circuit &hw)
{
    std::vector<ProgQubit> active = hw.activeQubits();
    if (active.empty())
        fatal("compactCircuit: circuit touches no qubits");
    CompactCircuit out;
    out.compactToHw.assign(active.begin(), active.end());
    out.hwToCompact.assign(static_cast<size_t>(hw.numQubits()), -1);
    for (size_t i = 0; i < active.size(); ++i)
        out.hwToCompact[static_cast<size_t>(active[i])] =
            static_cast<int>(i);
    out.circuit = Circuit(static_cast<int>(active.size()), hw.name());
    for (const auto &g : hw.gates()) {
        Gate cg = g;
        for (int k = 0; k < g.arity(); ++k)
            cg.qubits[static_cast<size_t>(k)] =
                out.hwToCompact[static_cast<size_t>(g.qubit(k))];
        out.circuit.add(cg);
    }
    return out;
}

} // namespace triq
