#include "sim/mitigation.hh"

#include <algorithm>

#include "common/logging.hh"

namespace triq
{

std::vector<double>
measuredReadoutErrors(const Circuit &hw, const Calibration &calib)
{
    std::vector<ProgQubit> measured = hw.measuredQubits();
    std::vector<double> out;
    out.reserve(measured.size());
    for (ProgQubit q : measured) {
        if (q < 0 || q >= calib.numQubits)
            fatal("measuredReadoutErrors: qubit ", q,
                  " outside calibration");
        out.push_back(calib.errRO[static_cast<size_t>(q)]);
    }
    return out;
}

std::vector<double>
mitigateReadoutHistogram(const std::unordered_map<uint64_t, int> &histogram,
                         const std::vector<double> &ro_errs)
{
    const size_t k = ro_errs.size();
    if (k == 0 || k > 20)
        fatal("mitigateReadoutHistogram: unsupported key width ", k);
    for (double e : ro_errs)
        if (e >= 0.5)
            fatal("mitigateReadoutHistogram: readout error ", e,
                  " >= 0.5 cannot be inverted");

    std::vector<double> p(uint64_t{1} << k, 0.0);
    long total = 0;
    for (const auto &[key, count] : histogram) {
        if (key >= p.size())
            fatal("mitigateReadoutHistogram: key ", key,
                  " outside 2^", k, " outcome space");
        p[key] += count;
        total += count;
    }
    if (total == 0)
        fatal("mitigateReadoutHistogram: empty histogram");
    for (auto &v : p)
        v /= static_cast<double>(total);

    // Apply the per-bit inverse confusion matrix
    //   M^-1 = 1/(1-2e) [[1-e, -e], [-e, 1-e]]
    // along each key axis.
    for (size_t bit = 0; bit < k; ++bit) {
        double e = ro_errs[bit];
        double inv = 1.0 / (1.0 - 2.0 * e);
        uint64_t stride = uint64_t{1} << bit;
        for (uint64_t base = 0; base < p.size(); ++base) {
            if (base & stride)
                continue;
            double p0 = p[base];
            double p1 = p[base | stride];
            p[base] = inv * ((1.0 - e) * p0 - e * p1);
            p[base | stride] = inv * ((1.0 - e) * p1 - e * p0);
        }
    }

    // Statistical noise can push entries slightly negative; project
    // back onto the simplex.
    double sum = 0.0;
    for (auto &v : p) {
        v = std::max(v, 0.0);
        sum += v;
    }
    if (sum <= 0.0)
        fatal("mitigateReadoutHistogram: degenerate correction");
    for (auto &v : p)
        v /= sum;
    return p;
}

double
mitigatedSuccess(const std::unordered_map<uint64_t, int> &histogram,
                 const std::vector<double> &ro_errs,
                 uint64_t correct_outcome)
{
    std::vector<double> p = mitigateReadoutHistogram(histogram, ro_errs);
    if (correct_outcome >= p.size())
        fatal("mitigatedSuccess: outcome outside key space");
    return p[correct_outcome];
}

} // namespace triq
